package gantt

import (
	"bytes"
	"strings"
	"testing"

	"storagesched/internal/model"
)

func figure1LeftSchedule() (*model.Instance, model.Assignment) {
	// The left schedule of Figure 1: task 1 alone (value (1,2) at
	// scale 4 with ε=1): p=(4,2,2), s=(1,4,4), tasks 2,3 share proc 1.
	in := model.NewInstance(2, []model.Time{4, 2, 2}, []model.Mem{1, 4, 4})
	return in, model.Assignment{0, 1, 1}
}

func TestRenderBasics(t *testing.T) {
	in, a := figure1LeftSchedule()
	var buf bytes.Buffer
	if err := RenderAssignment(&buf, in, a, Options{Width: 20, ShowMemory: true}); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"P0", "P1", "Cmax=4", "Mmax=8", "mem=1", "mem=8", "t0(s=1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Two processor rows + objective line.
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("output has %d lines, want 3:\n%s", lines, out)
	}
}

func TestRenderCustomNames(t *testing.T) {
	in, a := figure1LeftSchedule()
	var buf bytes.Buffer
	err := RenderAssignment(&buf, in, a, Options{Width: 20, Names: []string{"alpha", "beta", "gamma"}})
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "alpha") {
		t.Errorf("custom name missing:\n%s", buf.String())
	}
}

func TestRenderZeroWidthDefaults(t *testing.T) {
	in, a := figure1LeftSchedule()
	var buf bytes.Buffer
	if err := RenderAssignment(&buf, in, a, Options{}); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestRenderEmptySchedule(t *testing.T) {
	sc := model.NewSchedule(2, 0)
	var buf bytes.Buffer
	if err := Render(&buf, sc, Options{Width: 10}); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "Cmax=0") {
		t.Errorf("unexpected output:\n%s", buf.String())
	}
}

func TestBoxWidthsProportional(t *testing.T) {
	// One processor, two tasks 1:3 — the second box must be wider.
	in := model.NewInstance(1, []model.Time{10, 30}, []model.Mem{0, 0})
	var buf bytes.Buffer
	if err := RenderAssignment(&buf, in, model.Assignment{0, 0}, Options{Width: 40}); err != nil {
		t.Fatalf("Render: %v", err)
	}
	row := strings.SplitN(buf.String(), "\n", 2)[0]
	// Count '=' + brackets inside each box: first box spans 10
	// columns, second 30 (width 40, horizon 40).
	inner := row[strings.Index(row, "|")+1:]
	inner = inner[:strings.Index(inner, "|")]
	if len(inner) != 40 {
		t.Fatalf("canvas width %d, want 40", len(inner))
	}
	first := strings.Count(inner[:10], "=") + strings.Count(inner[:10], "[") + strings.Count(inner[:10], "]")
	second := strings.Count(inner[10:], "=") + strings.Count(inner[10:], "[") + strings.Count(inner[10:], "]")
	if first != 10 || second != 30 {
		t.Errorf("box fills = %d/%d, want 10/30 (row %q)", first, second, row)
	}
}

func TestMemoryBars(t *testing.T) {
	in := model.NewInstance(2, []model.Time{1, 1}, []model.Mem{6, 2})
	sc := model.FromAssignment(in, model.Assignment{0, 1})
	var buf bytes.Buffer
	if err := MemoryBars(&buf, sc, 8, 16); err != nil {
		t.Fatalf("MemoryBars: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "cap (|) = 8") {
		t.Errorf("missing cap line:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasSuffix(lines[0], "6") || !strings.HasSuffix(lines[1], "2") {
		t.Errorf("memory totals missing:\n%s", out)
	}
	// P0 bar (6/8 of width 16 = 12 chars) longer than P1 (4 chars).
	if strings.Count(lines[0], "#") <= strings.Count(lines[1], "#") {
		t.Errorf("bar lengths not ordered:\n%s", out)
	}
}

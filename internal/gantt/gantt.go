// Package gantt renders schedules as ASCII Gantt charts in the style
// of Figures 1 and 2 of the paper: one row per processor, box widths
// proportional to processing times, and each task labelled with its
// memory consumption.
package gantt

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"storagesched/internal/model"
)

// Options control the rendering.
type Options struct {
	// Width is the number of character columns the busiest processor
	// occupies; 0 means 60.
	Width int
	// ShowMemory appends the per-processor memory total at the end
	// of each row and labels each task box with its s value.
	ShowMemory bool
	// Names optionally labels tasks (index-aligned); falls back to
	// task ids.
	Names []string
}

// Render writes an ASCII Gantt chart of the schedule to w.
func Render(w io.Writer, sc *model.Schedule, opts Options) error {
	width := opts.Width
	if width <= 0 {
		width = 60
	}
	horizon := sc.Cmax()
	if horizon == 0 {
		horizon = 1
	}
	col := func(t model.Time) int {
		return int(int64(t) * int64(width) / int64(horizon))
	}

	type box struct {
		task  int
		start model.Time
		end   model.Time
	}
	byProc := make([][]box, sc.M)
	for i, q := range sc.Proc {
		if q < 0 {
			continue
		}
		byProc[q] = append(byProc[q], box{task: i, start: sc.Start[i], end: sc.Completion(i)})
	}
	memLoads := sc.MemLoads()

	for q := 0; q < sc.M; q++ {
		boxes := byProc[q]
		sort.Slice(boxes, func(a, b int) bool { return boxes[a].start < boxes[b].start })
		line := make([]byte, width+1)
		for i := range line {
			line[i] = ' '
		}
		labels := make([]string, 0, len(boxes))
		for _, b := range boxes {
			lo, hi := col(b.start), col(b.end)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > len(line) {
				hi = len(line)
			}
			for c := lo; c < hi; c++ {
				line[c] = '='
			}
			if lo < len(line) {
				line[lo] = '['
			}
			if hi-1 < len(line) && hi-1 >= 0 {
				line[hi-1] = ']'
			}
			name := fmt.Sprintf("t%d", b.task)
			if opts.Names != nil && b.task < len(opts.Names) && opts.Names[b.task] != "" {
				name = opts.Names[b.task]
			}
			if opts.ShowMemory {
				labels = append(labels, fmt.Sprintf("%s(s=%d)", name, sc.S[b.task]))
			} else {
				labels = append(labels, name)
			}
		}
		suffix := ""
		if opts.ShowMemory {
			suffix = fmt.Sprintf("  mem=%d", memLoads[q])
		}
		if _, err := fmt.Fprintf(w, "P%-2d |%s|%s  %s\n", q, string(line[:width]), suffix, strings.Join(labels, " ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "Cmax=%d Mmax=%d SumCi=%d\n", sc.Cmax(), sc.Mmax(), sc.SumCi())
	return err
}

// RenderAssignment renders an independent-task assignment by packing
// tasks back to back (order irrelevant to both objectives).
func RenderAssignment(w io.Writer, in *model.Instance, a model.Assignment, opts Options) error {
	return Render(w, model.FromAssignment(in, a), opts)
}

// MemoryBars writes one bar per processor showing cumulative memory
// against a cap (e.g. ∆·LB), marking the cap column with '|'.
func MemoryBars(w io.Writer, sc *model.Schedule, cap model.Mem, width int) error {
	if width <= 0 {
		width = 40
	}
	maxVal := cap
	for _, l := range sc.MemLoads() {
		if l > maxVal {
			maxVal = l
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	capCol := int(int64(cap) * int64(width) / int64(maxVal))
	for q, l := range sc.MemLoads() {
		fill := int(int64(l) * int64(width) / int64(maxVal))
		bar := make([]byte, width+1)
		for i := range bar {
			switch {
			case i < fill:
				bar[i] = '#'
			case i == capCol:
				bar[i] = '|'
			default:
				bar[i] = ' '
			}
		}
		if _, err := fmt.Fprintf(w, "P%-2d %s %d\n", q, string(bar), l); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "cap (|) = %d\n", cap)
	return err
}

package trace

import (
	"bytes"
	"strings"
	"testing"

	"storagesched/internal/gen"
	"storagesched/internal/model"
)

func TestInstanceCSVRoundTrip(t *testing.T) {
	in := gen.Uniform(20, 4, 3)
	in.Tasks[0].Name = "first"
	var buf bytes.Buffer
	if err := WriteInstanceCSV(&buf, in); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadInstanceCSV(&buf, 4)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if back.N() != in.N() || back.M != 4 {
		t.Fatalf("shape changed: n=%d m=%d", back.N(), back.M)
	}
	for i := range in.Tasks {
		if in.Tasks[i] != back.Tasks[i] {
			t.Errorf("task %d: %+v != %+v", i, in.Tasks[i], back.Tasks[i])
		}
	}
}

func TestReadInstanceCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "a,b,c\n1,2,3\n",
		"bad p":      "id,p,s\n0,x,3\n",
		"bad s":      "id,p,s\n0,2,x\n",
		"invalid p":  "id,p,s\n0,0,3\n", // p must be > 0
		"short row":  "id,p,s\n0,2\n",
	}
	for name, data := range cases {
		if _, err := ReadInstanceCSV(strings.NewReader(data), 2); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestScheduleCSVRoundTrip(t *testing.T) {
	in := gen.Uniform(15, 3, 5)
	sc := model.FromAssignment(in, make(model.Assignment, in.N()))
	var buf bytes.Buffer
	if err := WriteScheduleCSV(&buf, sc); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadScheduleCSV(&buf, 3)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if back.Cmax() != sc.Cmax() || back.Mmax() != sc.Mmax() || back.SumCi() != sc.SumCi() {
		t.Errorf("objectives changed on round trip")
	}
	if err := back.Validate(nil); err != nil {
		t.Errorf("round-tripped schedule invalid: %v", err)
	}
}

func TestReadScheduleCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "x\n",
		"bad proc":   "id,proc,start,p,s\n0,x,0,1,1\n",
		"bad start":  "id,proc,start,p,s\n0,0,x,1,1\n",
		"bad p":      "id,proc,start,p,s\n0,0,0,x,1\n",
		"bad s":      "id,proc,start,p,s\n0,0,0,1,x\n",
	}
	for name, data := range cases {
		if _, err := ReadScheduleCSV(strings.NewReader(data), 2); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCSVNameColumnOptional(t *testing.T) {
	data := "id,p,s\n0,5,2\n1,3,1\n"
	in, err := ReadInstanceCSV(strings.NewReader(data), 2)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if in.N() != 2 || in.Tasks[0].P != 5 || in.Tasks[1].S != 1 {
		t.Errorf("parsed wrong: %+v", in.Tasks)
	}
}

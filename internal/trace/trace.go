// Package trace reads and writes instances and schedules in CSV — the
// lowest-friction interchange with spreadsheet and plotting tools and
// with batch-system accounting dumps (the grid use case of the paper's
// introduction typically starts from such logs).
//
// Instance CSV: header "id,p,s[,name]" then one row per task.
// Schedule CSV: header "id,proc,start,p,s" then one row per task.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"storagesched/internal/model"
)

// WriteInstanceCSV emits the instance with an "id,p,s,name" header.
func WriteInstanceCSV(w io.Writer, in *model.Instance) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "p", "s", "name"}); err != nil {
		return err
	}
	for _, t := range in.Tasks {
		rec := []string{
			strconv.Itoa(t.ID),
			strconv.FormatInt(t.P, 10),
			strconv.FormatInt(t.S, 10),
			t.Name,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadInstanceCSV parses a task table. m is supplied by the caller
// (CSV logs carry tasks, not cluster shapes). Column order is fixed;
// the name column is optional.
func ReadInstanceCSV(r io.Reader, m int) (*model.Instance, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	header := rows[0]
	if len(header) < 3 || header[0] != "id" || header[1] != "p" || header[2] != "s" {
		return nil, fmt.Errorf("trace: unexpected header %v, want id,p,s[,name]", header)
	}
	in := &model.Instance{M: m}
	for i, row := range rows[1:] {
		if len(row) < 3 {
			return nil, fmt.Errorf("trace: row %d has %d fields", i+1, len(row))
		}
		p, err := strconv.ParseInt(row[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad p %q", i+1, row[1])
		}
		s, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad s %q", i+1, row[2])
		}
		t := model.Task{ID: len(in.Tasks), P: p, S: s}
		if len(row) >= 4 {
			t.Name = row[3]
		}
		in.Tasks = append(in.Tasks, t)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// WriteScheduleCSV emits "id,proc,start,p,s" rows.
func WriteScheduleCSV(w io.Writer, sc *model.Schedule) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "proc", "start", "p", "s"}); err != nil {
		return err
	}
	for i := 0; i < sc.N(); i++ {
		rec := []string{
			strconv.Itoa(i),
			strconv.Itoa(sc.Proc[i]),
			strconv.FormatInt(sc.Start[i], 10),
			strconv.FormatInt(sc.P[i], 10),
			strconv.FormatInt(sc.S[i], 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadScheduleCSV parses a schedule table for m processors.
func ReadScheduleCSV(r io.Reader, m int) (*model.Schedule, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(rows) == 0 || len(rows[0]) != 5 || rows[0][0] != "id" {
		return nil, fmt.Errorf("trace: unexpected schedule header")
	}
	sc := model.NewSchedule(m, len(rows)-1)
	for i, row := range rows[1:] {
		proc, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad proc %q", i+1, row[1])
		}
		start, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad start %q", i+1, row[2])
		}
		p, err := strconv.ParseInt(row[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad p %q", i+1, row[3])
		}
		s, err := strconv.ParseInt(row[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad s %q", i+1, row[4])
		}
		sc.Proc[i] = proc
		sc.Start[i] = start
		sc.P[i] = p
		sc.S[i] = s
	}
	return sc, nil
}

// Package bounds computes the lower bounds that drive every guarantee
// in the paper:
//
//   - the Graham memory lower bound LB = max(max_i s_i, Σ_i s_i / m)
//     used by RLS∆ (Algorithm 2) to cap per-processor memory at ∆·LB,
//   - the matching makespan lower bounds max(max_i p_i, Σ_i p_i / m)
//     for independent tasks, plus the critical path for DAGs (the two
//     "basic lower bounds" Graham's List Scheduling argument sums),
//   - the ideal-SPT lower bound on ΣCi.
//
// All divisions round up (a lower bound on an integer optimum may be
// taken as the ceiling).
package bounds

import (
	"storagesched/internal/dag"
	"storagesched/internal/model"
)

// ceilDiv returns ceil(a/b) for a >= 0, b > 0.
func ceilDiv(a int64, b int64) int64 {
	return (a + b - 1) / b
}

// MemLB returns the Graham lower bound on M*max for sizes s on m
// processors: max(max_i s_i, ceil(Σ s_i / m)). This is the LB computed
// at the top of Algorithm 2.
func MemLB(s []model.Mem, m int) model.Mem {
	var mx, sum model.Mem
	for _, x := range s {
		if x > mx {
			mx = x
		}
		sum += x
	}
	if avg := ceilDiv(sum, int64(m)); avg > mx {
		return avg
	}
	return mx
}

// MakespanLB returns the standard lower bound on C*max for independent
// tasks: max(max_i p_i, ceil(Σ p_i / m)).
func MakespanLB(p []model.Time, m int) model.Time {
	var mx, sum model.Time
	for _, x := range p {
		if x > mx {
			mx = x
		}
		sum += x
	}
	if avg := ceilDiv(sum, int64(m)); avg > mx {
		return avg
	}
	return mx
}

// Record collects every lower bound for one instance, so experiment
// tables can report ratios against the exact quantities the proofs use.
type Record struct {
	M int

	// Makespan bounds.
	WorkOverM    model.Time // ceil(Σ p_i / m)
	MaxP         model.Time // max_i p_i
	CriticalPath model.Time // longest chain (equals MaxP when edgeless)
	CmaxLB       model.Time // max of the above

	// Memory bounds.
	MemOverM model.Mem // ceil(Σ s_i / m)
	MaxS     model.Mem // max_i s_i
	MmaxLB   model.Mem // max of the above (the paper's LB)

	// ΣCi bound: SPT on m processors is optimal for P||ΣCi, so the
	// value of an SPT list schedule is itself the optimum; we record
	// it as a bound usable by Corollary 4 measurements.
	SumCiLB model.Time
}

// ForInstance computes the record for an independent-task instance.
func ForInstance(in *model.Instance) Record {
	r := Record{M: in.M}
	r.MaxP = in.MaxP()
	r.WorkOverM = ceilDiv(in.TotalWork(), int64(in.M))
	r.CriticalPath = r.MaxP
	r.CmaxLB = maxT(r.MaxP, r.WorkOverM)
	r.MaxS = in.MaxS()
	r.MemOverM = ceilDiv(in.TotalMem(), int64(in.M))
	r.MmaxLB = maxM(r.MaxS, r.MemOverM)
	r.SumCiLB = SumCiSPT(in.P(), in.M)
	return r
}

// ForGraph computes the record for a DAG instance; the critical path
// joins the makespan bounds.
func ForGraph(g *dag.Graph) (Record, error) {
	r := Record{M: g.M}
	cp, err := g.CriticalPath()
	if err != nil {
		return r, err
	}
	var maxP model.Time
	for _, p := range g.P {
		if p > maxP {
			maxP = p
		}
	}
	r.MaxP = maxP
	r.WorkOverM = ceilDiv(g.TotalWork(), int64(g.M))
	r.CriticalPath = cp
	r.CmaxLB = maxT(maxT(r.MaxP, r.WorkOverM), cp)
	r.MaxS = g.MaxS()
	r.MemOverM = ceilDiv(g.TotalMem(), int64(g.M))
	r.MmaxLB = maxM(r.MaxS, r.MemOverM)
	r.SumCiLB = SumCiSPT(g.P, g.M)
	return r, nil
}

// SumCiSPT returns the value of the SPT list schedule of p on m
// processors. SPT list scheduling is optimal for P||ΣCi (Conway et al.;
// recalled in Section 5.2), so this is the exact optimum on independent
// tasks and a lower bound with precedence constraints.
func SumCiSPT(p []model.Time, m int) model.Time {
	sorted := append([]model.Time(nil), p...)
	// Insertion-free sort: small n dominates usage, stdlib sort fine.
	sortTimes(sorted)
	loads := make([]model.Time, m)
	var total model.Time
	for _, x := range sorted {
		q := argminT(loads)
		loads[q] += x
		total += loads[q]
	}
	return total
}

func sortTimes(xs []model.Time) {
	// Simple branch to keep hot small cases fast.
	if len(xs) < 2 {
		return
	}
	quickSortTimes(xs, 0, len(xs)-1)
}

func quickSortTimes(xs []model.Time, lo, hi int) {
	for lo < hi {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && xs[j] < xs[j-1]; j-- {
					xs[j], xs[j-1] = xs[j-1], xs[j]
				}
			}
			return
		}
		mid := lo + (hi-lo)/2
		// Median-of-three pivot.
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSortTimes(xs, lo, j)
			lo = i
		} else {
			quickSortTimes(xs, i, hi)
			hi = j
		}
	}
}

func argminT(xs []model.Time) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

func maxT(a, b model.Time) model.Time {
	if a > b {
		return a
	}
	return b
}

func maxM(a, b model.Mem) model.Mem {
	if a > b {
		return a
	}
	return b
}

package bounds

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"storagesched/internal/dag"
	"storagesched/internal/model"
)

func TestMemLB(t *testing.T) {
	// max_i s_i dominates: one huge item.
	if got := MemLB([]model.Mem{10, 1, 1}, 4); got != 10 {
		t.Errorf("MemLB = %d, want 10", got)
	}
	// average dominates: many equal items.
	if got := MemLB([]model.Mem{3, 3, 3, 3}, 2); got != 6 {
		t.Errorf("MemLB = %d, want 6", got)
	}
	// ceiling: sum 7 over 2 -> 4.
	if got := MemLB([]model.Mem{3, 3, 1}, 2); got != 4 {
		t.Errorf("MemLB = %d, want 4 (ceil 7/2)", got)
	}
	if got := MemLB(nil, 3); got != 0 {
		t.Errorf("MemLB(empty) = %d, want 0", got)
	}
}

func TestMakespanLB(t *testing.T) {
	if got := MakespanLB([]model.Time{10, 1, 1}, 4); got != 10 {
		t.Errorf("MakespanLB = %d, want 10", got)
	}
	if got := MakespanLB([]model.Time{3, 3, 3, 3}, 2); got != 6 {
		t.Errorf("MakespanLB = %d, want 6", got)
	}
}

func TestForInstance(t *testing.T) {
	in := model.NewInstance(2, []model.Time{4, 2, 7}, []model.Mem{1, 5, 3})
	r := ForInstance(in)
	if r.MaxP != 7 || r.WorkOverM != 7 || r.CmaxLB != 7 {
		t.Errorf("makespan bounds wrong: %+v", r)
	}
	if r.MaxS != 5 || r.MemOverM != 5 || r.MmaxLB != 5 {
		t.Errorf("memory bounds wrong: %+v", r)
	}
	// SPT on 2 procs of {2,4,7}: loads (2),(4) -> then 7 on proc0:
	// completions 2, 4, 9 -> ΣCi = 15.
	if r.SumCiLB != 15 {
		t.Errorf("SumCiLB = %d, want 15", r.SumCiLB)
	}
}

func TestForGraph(t *testing.T) {
	g := dag.New(2, []model.Time{1, 2, 3, 1}, []model.Mem{1, 1, 1, 1})
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	r, err := ForGraph(g)
	if err != nil {
		t.Fatalf("ForGraph: %v", err)
	}
	if r.CriticalPath != 5 {
		t.Errorf("CriticalPath = %d, want 5", r.CriticalPath)
	}
	if r.CmaxLB != 5 { // cp 5 > work/m 4 > maxp 3
		t.Errorf("CmaxLB = %d, want 5", r.CmaxLB)
	}
	if r.MmaxLB != 2 { // ceil(4/2)
		t.Errorf("MmaxLB = %d, want 2", r.MmaxLB)
	}
}

func TestSumCiSPTMatchesBruteForceTinyCases(t *testing.T) {
	// SPT is optimal for P||ΣCi; verify against exhaustive search over
	// assignments and orders on tiny instances.
	cases := [][]model.Time{
		{3},
		{1, 2},
		{5, 1, 3},
		{2, 2, 2, 2},
		{9, 1, 1, 1, 4},
	}
	for _, p := range cases {
		for m := 1; m <= 3; m++ {
			want := bruteForceSumCi(p, m)
			if got := SumCiSPT(p, m); got != want {
				t.Errorf("SumCiSPT(%v, m=%d) = %d, want %d", p, m, got, want)
			}
		}
	}
}

// bruteForceSumCi enumerates all assignments; within a processor SPT
// order is optimal, so only assignments need enumeration.
func bruteForceSumCi(p []model.Time, m int) model.Time {
	n := len(p)
	assign := make([]int, n)
	best := model.Time(1) << 62
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			perProc := make([][]model.Time, m)
			for j, q := range assign {
				perProc[q] = append(perProc[q], p[j])
			}
			var total model.Time
			for _, ps := range perProc {
				sort.Slice(ps, func(a, b int) bool { return ps[a] < ps[b] })
				var clock model.Time
				for _, x := range ps {
					clock += x
					total += clock
				}
			}
			if total < best {
				best = total
			}
			return
		}
		for q := 0; q < m; q++ {
			assign[i] = q
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestPropertyLBsAreLowerBounds(t *testing.T) {
	// For any assignment, achieved objectives dominate the bounds.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		m := 1 + rng.Intn(6)
		p := make([]model.Time, n)
		s := make([]model.Mem, n)
		a := make(model.Assignment, n)
		for i := 0; i < n; i++ {
			p[i] = model.Time(1 + rng.Intn(50))
			s[i] = model.Mem(rng.Intn(50))
			a[i] = rng.Intn(m)
		}
		in := model.NewInstance(m, p, s)
		r := ForInstance(in)
		return in.Cmax(a) >= r.CmaxLB &&
			in.Mmax(a) >= r.MmaxLB &&
			in.SumCi(a) >= r.SumCiLB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertySortTimes(t *testing.T) {
	f := func(xs []int16) bool {
		ts := make([]model.Time, len(xs))
		for i, x := range xs {
			ts[i] = model.Time(x)
		}
		sortTimes(ts)
		for i := 1; i < len(ts); i++ {
			if ts[i-1] > ts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyGraphBoundsDominatedByListSchedule(t *testing.T) {
	// Critical path and work/m never exceed the Cmax of a greedy
	// sequential schedule (everything on one processor).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		p := make([]model.Time, n)
		s := make([]model.Mem, n)
		for i := range p {
			p[i] = model.Time(1 + rng.Intn(20))
			s[i] = model.Mem(rng.Intn(20))
		}
		g := dag.New(1+rng.Intn(4), p, s)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.2 {
					g.AddEdge(u, v)
				}
			}
		}
		r, err := ForGraph(g)
		if err != nil {
			return false
		}
		return r.CmaxLB <= g.TotalWork()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package hardness

import (
	"testing"

	"storagesched/internal/model"
	"storagesched/internal/pareto"
)

// Section 2.1: on independent tasks Cmax and Mmax are strictly
// symmetric. Swapping p and s in any hardness instance must mirror its
// Pareto front across the diagonal.

func swapValues(vs []model.Value) []model.Value {
	out := make([]model.Value, len(vs))
	for i, v := range vs {
		out[i] = model.Value{Cmax: model.Time(v.Mmax), Mmax: model.Mem(v.Cmax)}
	}
	// Mirrored front sorts in the opposite direction; re-sort.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].Cmax < out[i].Cmax {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func TestLemma1FrontSymmetric(t *testing.T) {
	scale := int64(64)
	in := Lemma1Instance(scale)
	front, err := pareto.Front(in)
	if err != nil {
		t.Fatal(err)
	}
	swFront, err := pareto.Front(in.Swapped())
	if err != nil {
		t.Fatal(err)
	}
	if !pareto.SameFront(swapValues(pareto.Values(front)), pareto.Values(swFront)) {
		t.Errorf("swapped front %v does not mirror %v",
			pareto.Values(swFront), pareto.Values(front))
	}
}

func TestLemma3FrontSymmetric(t *testing.T) {
	// The Lemma 3 instance is its own mirror up to task reordering
	// (p and s vectors are permutations of each other), so its front
	// must be symmetric about the diagonal.
	scale, eps := int64(64), int64(8)
	in := Lemma3Instance(scale, eps)
	front, err := pareto.Front(in)
	if err != nil {
		t.Fatal(err)
	}
	vals := pareto.Values(front)
	if !pareto.SameFront(swapValues(vals), vals) {
		t.Errorf("Lemma 3 front %v not diagonal-symmetric", vals)
	}
}

func TestLemma2FrontSymmetric(t *testing.T) {
	m, k := 2, 3
	scale := int64(m*k) * 16
	in := Lemma2Instance(m, k, scale)
	front, err := pareto.Front(in)
	if err != nil {
		t.Fatal(err)
	}
	swFront, err := pareto.Front(in.Swapped())
	if err != nil {
		t.Fatal(err)
	}
	if !pareto.SameFront(swapValues(pareto.Values(front)), pareto.Values(swFront)) {
		t.Errorf("swapped Lemma 2 front mismatch")
	}
}

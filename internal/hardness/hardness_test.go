package hardness

import (
	"testing"

	"storagesched/internal/pareto"
)

func TestLemma1FrontMatchesEnumeration(t *testing.T) {
	// Small scale keeps the enumeration instant; the front must be
	// exactly the two schedules of Figure 1.
	scale := int64(64)
	in := Lemma1Instance(scale)
	pts, err := pareto.Front(in)
	if err != nil {
		t.Fatalf("Front: %v", err)
	}
	if !pareto.SameFront(pareto.Values(pts), Lemma1Front(scale)) {
		t.Errorf("Lemma 1 front = %v, want %v", pareto.Values(pts), Lemma1Front(scale))
	}
}

func TestLemma1PanicsOnOddScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd scale accepted")
		}
	}()
	Lemma1Instance(63)
}

func TestLemma2FrontMatchesEnumerationSmall(t *testing.T) {
	// m=2..3, k=2..3 keeps n ≤ 11 so exact enumeration is feasible.
	for _, mc := range []struct{ m, k int }{{2, 2}, {2, 3}, {3, 2}} {
		scale := int64(mc.m*mc.k) * 8
		in := Lemma2Instance(mc.m, mc.k, scale)
		pts, err := pareto.Front(in)
		if err != nil {
			t.Fatalf("m=%d k=%d: Front: %v", mc.m, mc.k, err)
		}
		want := Lemma2Front(mc.m, mc.k, scale)
		if !pareto.SameFront(pareto.Values(pts), want) {
			t.Errorf("m=%d k=%d: front = %v, want %v", mc.m, mc.k, pareto.Values(pts), want)
		}
	}
}

func TestLemma2InstanceShape(t *testing.T) {
	m, k := 4, 5
	scale := int64(k*m) * 16
	in := Lemma2Instance(m, k, scale)
	if in.N() != k*m+m-1 {
		t.Errorf("n = %d, want %d", in.N(), k*m+m-1)
	}
	// Optimal makespan is 1 (scaled): solution 0 achieves it.
	front := Lemma2Front(m, k, scale)
	if front[0].Cmax != scale {
		t.Errorf("first front point Cmax = %d, want %d", front[0].Cmax, scale)
	}
	// Optimal memory is k+ε (scaled): solution k achieves it.
	if front[k].Mmax != scale*int64(k)+1 {
		t.Errorf("last front point Mmax = %d, want %d", front[k].Mmax, scale*int64(k)+1)
	}
	// Front values strictly trade off.
	for i := 1; i < len(front); i++ {
		if front[i].Cmax <= front[i-1].Cmax || front[i].Mmax >= front[i-1].Mmax {
			t.Errorf("front not strictly trading off at %d: %v -> %v", i, front[i-1], front[i])
		}
	}
}

func TestLemma2Panics(t *testing.T) {
	for _, fn := range []func(){
		func() { Lemma2Instance(1, 2, 64) },
		func() { Lemma2Instance(2, 1, 64) },
		func() { Lemma2Instance(2, 2, 63) }, // not a multiple of km
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLemma3FrontMatchesEnumeration(t *testing.T) {
	scale, eps := int64(64), int64(8)
	in := Lemma3Instance(scale, eps)
	pts, err := pareto.Front(in)
	if err != nil {
		t.Fatalf("Front: %v", err)
	}
	if !pareto.SameFront(pareto.Values(pts), Lemma3Front(scale, eps)) {
		t.Errorf("Lemma 3 front = %v, want %v", pareto.Values(pts), Lemma3Front(scale, eps))
	}
}

func TestLemma3MiddlePointDisappearsForLargeEps(t *testing.T) {
	// The paper remarks (1+ε, 1+ε) is Pareto optimal only for
	// ε < 1/2; at ε close to 1/2 it still is, and the instance
	// builder rejects ε ≥ 1/2 outright.
	defer func() {
		if recover() == nil {
			t.Fatal("eps >= scale/2 accepted")
		}
	}()
	Lemma3Instance(64, 32)
}

func TestLemma2FrontierPointsEndpoints(t *testing.T) {
	pts := Lemma2FrontierPoints(3, 2) // k = 2 only: i = 0, 1, 2
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	// i=0: (1, 1+(m-1)) = (1, 3); i=k: (1+1/m, 1) = (4/3, 1).
	if pts[0] != (RatioPoint{Rc: 1, Rm: 3}) {
		t.Errorf("i=0 point = %v, want (1,3)", pts[0])
	}
	last := pts[len(pts)-1]
	if last.Rm != 1 || last.Rc != 1+1.0/3 {
		t.Errorf("i=k point = %v, want (4/3,1)", last)
	}
}

func TestFrontierEnvelopeIsMonotone(t *testing.T) {
	for _, m := range []int{2, 3, 6} {
		env := FrontierEnvelope(m, 50)
		if env[0].Rc != 1 || env[0].Rm != float64(m) {
			t.Errorf("m=%d: envelope start = %v, want (1,%d)", m, env[0], m)
		}
		end := env[len(env)-1]
		if end.Rm != 1 || end.Rc != 1+1/float64(m) {
			t.Errorf("m=%d: envelope end = %v", m, end)
		}
		for i := 1; i < len(env); i++ {
			if env[i].Rc < env[i-1].Rc || env[i].Rm > env[i-1].Rm+1e-12 {
				continue
			}
			if env[i].Rc <= env[i-1].Rc || env[i].Rm >= env[i-1].Rm {
				t.Errorf("m=%d: envelope not strictly monotone at %d", m, i)
			}
		}
	}
}

func TestImpossibleKnownPoints(t *testing.T) {
	// Lemma 1: nothing beats (1,2) or (2,1); (1, 1.9) is impossible
	// for every m ≥ 2.
	if !Impossible(RatioPoint{Rc: 1, Rm: 1.9}, 2, 8) {
		t.Error("(1,1.9) should be impossible (Lemma 1)")
	}
	if !Impossible(RatioPoint{Rc: 1.9, Rm: 1}, 2, 8) {
		t.Error("(1.9,1) should be impossible (symmetric Lemma 1)")
	}
	// Lemma 3: (1.4, 1.4) impossible on 2 processors.
	if !Impossible(RatioPoint{Rc: 1.4, Rm: 1.4}, 2, 8) {
		t.Error("(1.4,1.4) should be impossible (Lemma 3)")
	}
	// (2, 2) is achievable (Corollary 1), so it must not be ruled
	// out for any m.
	for _, m := range []int{2, 3, 4, 5, 6} {
		if Impossible(RatioPoint{Rc: 2, Rm: 2}, m, 64) {
			t.Errorf("(2,2) wrongly ruled out for m=%d", m)
		}
	}
}

func TestSBOCurveOutsideImpossibleDomain(t *testing.T) {
	// The consistency check behind Figure 3: the achievable SBO
	// curve never enters the impossibility domain, for any m.
	curve := SBOCurve(0.05, 20, 200)
	for _, m := range []int{2, 3, 4, 5, 6} {
		for _, p := range curve {
			if Impossible(p, m, 64) {
				t.Errorf("SBO point (%.3f, %.3f) inside impossible domain for m=%d", p.Rc, p.Rm, m)
			}
		}
	}
}

func TestSBOCurveShape(t *testing.T) {
	curve := SBOCurve(1, 1, 1)
	for _, p := range curve {
		if p.Rc != 2 || p.Rm != 2 {
			t.Errorf("delta=1 point = %v, want (2,2)", p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad range accepted")
		}
	}()
	SBOCurve(-1, 2, 10)
}

func TestSwapRatio(t *testing.T) {
	p := RatioPoint{Rc: 1.2, Rm: 3.4}
	if got := SwapRatio(p); got.Rc != 3.4 || got.Rm != 1.2 {
		t.Errorf("SwapRatio = %v", got)
	}
}

func TestDefaultScaleDivisibility(t *testing.T) {
	// DefaultScale must be usable for every Lemma 2 configuration in
	// the experiments (m ≤ 6, k ≤ 8 -> km ≤ 48; 2^20 is divisible by
	// km only for power-of-two km, so experiments pick their own
	// multiples — but Lemma 1 and 3 must accept the default).
	Lemma1Instance(DefaultScale)
	Lemma3Instance(DefaultScale, 1)
}

// Package hardness constructs the Section 4 lower-bound instances of
// the paper and their closed-form Pareto fronts, plus the Figure 3
// impossibility frontier. Each instance family uses an infinitesimal
// ε, represented here by one integer unit against a large Scale, so
// that all arithmetic stays exact.
package hardness

import (
	"fmt"
	"math"

	"storagesched/internal/model"
)

// DefaultScale plays the role of "1" in the ε-instances; ε is the
// integer 1, so ε/1 = 2^-20 ≈ 10^-6.
const DefaultScale = int64(1) << 20

// Lemma1Instance is the Section 4.1 instance on 2 processors:
// p = (1, 1/2, 1/2), s = (ε, 1, 1). Scale must be even.
func Lemma1Instance(scale int64) *model.Instance {
	if scale < 2 || scale%2 != 0 {
		panic(fmt.Sprintf("hardness: Lemma 1 scale must be even and >= 2, got %d", scale))
	}
	return model.NewInstance(2,
		[]model.Time{scale, scale / 2, scale / 2},
		[]model.Mem{1, scale, scale})
}

// Lemma1Front returns the closed-form Pareto front of Lemma1Instance:
// the two schedules of Figure 1, (1, 2) and (3/2, 1+ε), in scaled
// integer coordinates. (The third schedule, (2, 2+ε), is dominated.)
func Lemma1Front(scale int64) []model.Value {
	return []model.Value{
		{Cmax: scale, Mmax: 2 * scale},
		{Cmax: 3 * scale / 2, Mmax: scale + 1},
	}
}

// Lemma2Instance is the Section 4.2 family on m processors with
// km + m − 1 tasks: the first m−1 tasks have p = 1, s = ε; the other
// km tasks have p = 1/km, s = 1. Scale must be a multiple of k·m.
func Lemma2Instance(m, k int, scale int64) *model.Instance {
	if m < 2 || k < 2 {
		panic(fmt.Sprintf("hardness: Lemma 2 needs m, k >= 2, got m=%d k=%d", m, k))
	}
	km := int64(k) * int64(m)
	if scale < km || scale%km != 0 {
		panic(fmt.Sprintf("hardness: Lemma 2 scale must be a positive multiple of k*m = %d, got %d", km, scale))
	}
	n := k*m + m - 1
	p := make([]model.Time, n)
	s := make([]model.Mem, n)
	for i := 0; i < m-1; i++ {
		p[i] = scale
		s[i] = 1 // ε
	}
	for i := m - 1; i < n; i++ {
		p[i] = scale / km
		s[i] = scale
	}
	return model.NewInstance(m, p, s)
}

// Lemma2Front returns the k+1 Pareto-optimal values of Lemma2Instance
// in scaled integers: solution i (0 ≤ i ≤ k) has makespan
// scale·(1 + i/(km)) and memory scale·(k + (k−i)(m−1)) for i < k,
// memory scale·k + 1 for i = k.
func Lemma2Front(m, k int, scale int64) []model.Value {
	km := int64(k) * int64(m)
	out := make([]model.Value, 0, k+1)
	for i := 0; i <= k; i++ {
		c := scale + int64(i)*(scale/km)
		var mem model.Mem
		if i < k {
			mem = scale * (int64(k) + int64(k-i)*int64(m-1))
		} else {
			mem = scale*int64(k) + 1
		}
		out = append(out, model.Value{Cmax: c, Mmax: mem})
	}
	return out
}

// Lemma3Instance is the Section 4.3 instance on 2 processors:
// p = (1, ε, 1−ε), s = (ε, 1, 1−ε). The same ε = eps/scale is used in
// both vectors; eps must satisfy 0 < eps < scale/2 for all three
// schedules to be Pareto optimal (the paper's remark).
func Lemma3Instance(scale, eps int64) *model.Instance {
	if eps <= 0 || 2*eps >= scale {
		panic(fmt.Sprintf("hardness: Lemma 3 needs 0 < eps < scale/2, got eps=%d scale=%d", eps, scale))
	}
	return model.NewInstance(2,
		[]model.Time{scale, eps, scale - eps},
		[]model.Mem{eps, scale, scale - eps})
}

// Lemma3Front returns the three Pareto-optimal values of
// Lemma3Instance: (1, 2−ε), (1+ε, 1+ε) and (2−ε, 1) scaled.
func Lemma3Front(scale, eps int64) []model.Value {
	return []model.Value{
		{Cmax: scale, Mmax: 2*scale - eps},
		{Cmax: scale + eps, Mmax: scale + eps},
		{Cmax: 2*scale - eps, Mmax: scale},
	}
}

// RatioPoint is a point in approximation-ratio space (ρ_Cmax, ρ_Mmax),
// the coordinate system of Figure 3.
type RatioPoint struct {
	Rc float64 // ratio on Cmax
	Rm float64 // ratio on Mmax
}

// Lemma2FrontierPoints returns the impossibility corner points of
// Lemma 2 for a given m, for all k in [2, kMax] and i in [0, k]:
// (1 + i/(km), 1 + (m−1)(1−i/k)). No algorithm can guarantee strictly
// better than any of these pairs on both coordinates.
func Lemma2FrontierPoints(m, kMax int) []RatioPoint {
	var pts []RatioPoint
	for k := 2; k <= kMax; k++ {
		for i := 0; i <= k; i++ {
			pts = append(pts, RatioPoint{
				Rc: 1 + float64(i)/float64(k*m),
				Rm: 1 + float64(m-1)*(1-float64(i)/float64(k)),
			})
		}
	}
	return pts
}

// FrontierEnvelope returns the continuous (k → ∞) frontier of Lemma 2
// for one m, sampled at `steps+1` points: the segment from (1, m) to
// (1 + 1/m, 1). Every rectangle [1, Rc) × [1, Rm) below it is
// impossible.
func FrontierEnvelope(m, steps int) []RatioPoint {
	pts := make([]RatioPoint, 0, steps+1)
	for t := 0; t <= steps; t++ {
		x := float64(t) / float64(steps) // i/k ∈ [0, 1]
		pts = append(pts, RatioPoint{
			Rc: 1 + x/float64(m),
			Rm: 1 + float64(m-1)*(1-x),
		})
	}
	return pts
}

// SwapRatio mirrors a ratio point across the diagonal — the symmetric
// results obtained "by swapping memory consumption and processing
// times" (end of Section 4.2).
func SwapRatio(p RatioPoint) RatioPoint { return RatioPoint{Rc: p.Rm, Rm: p.Rc} }

// Lemma3Point is the (3/2, 3/2) impossibility of Lemma 3 (m = 2).
func Lemma3Point() RatioPoint { return RatioPoint{Rc: 1.5, Rm: 1.5} }

// lemma2RatioFront returns the ratio-space Pareto front of the
// Lemma 2 instance for one (m, k) in the ε → 0 limit: corners
// (1 + i/(km), 1 + (m−1)(1−i/k)), i = 0..k.
func lemma2RatioFront(m, k int) []RatioPoint {
	front := make([]RatioPoint, 0, k+1)
	for i := 0; i <= k; i++ {
		front = append(front, RatioPoint{
			Rc: 1 + float64(i)/float64(k*m),
			Rm: 1 + float64(m-1)*(1-float64(i)/float64(k)),
		})
	}
	return front
}

// lemma3RatioFront is the Lemma 3 front in the ε → 1/2 limit:
// (1, 3/2), (3/2, 3/2), (3/2, 1).
func lemma3RatioFront() []RatioPoint {
	return []RatioPoint{{Rc: 1, Rm: 1.5}, {Rc: 1.5, Rm: 1.5}, {Rc: 1.5, Rm: 1}}
}

// impossibleForFront reports whether the guarantee pair p is ruled out
// by an instance whose ratio-space Pareto front is given: an algorithm
// with guarantee p must output, on that instance, a schedule with
// ratios componentwise ≤ p, which exists iff p weakly dominates some
// front point. (Points strictly inside every front corner — "better
// than" in the paper's wording — are therefore impossible.)
func impossibleForFront(p RatioPoint, front []RatioPoint) bool {
	for _, r := range front {
		if p.Rc >= r.Rc && p.Rm >= r.Rm {
			return false
		}
	}
	return true
}

func swapFront(front []RatioPoint) []RatioPoint {
	out := make([]RatioPoint, len(front))
	for i, r := range front {
		out[i] = SwapRatio(r)
	}
	return out
}

// Impossible reports whether a guarantee pair (Rc, Rm) is ruled out by
// the Section 4 instance families on m processors: the Lemma 2 family
// for every k ≤ kMax (in both orientations) and, when m = 2, the
// Lemma 3 instance. Lemma 1 is the k-free endpoint of Lemma 2 and
// needs no separate handling.
func Impossible(p RatioPoint, m, kMax int) bool {
	if m == 2 && impossibleForFront(p, lemma3RatioFront()) {
		return true
	}
	for k := 2; k <= kMax; k++ {
		front := lemma2RatioFront(m, k)
		if impossibleForFront(p, front) || impossibleForFront(p, swapFront(front)) {
			return true
		}
	}
	return false
}

// SBOCurve samples the achievable tradeoff curve of Section 3 that
// Figure 3 draws dashed: (1 + ∆ + ε, 1 + 1/∆ + ε) with the PTAS
// sub-algorithm; the ε-free limit (1 + ∆, 1 + 1/∆) is returned.
// Deltas are sampled geometrically over [deltaMin, deltaMax].
func SBOCurve(deltaMin, deltaMax float64, steps int) []RatioPoint {
	if deltaMin <= 0 || deltaMax < deltaMin || steps < 1 {
		panic(fmt.Sprintf("hardness: bad SBO curve range [%g, %g] x %d", deltaMin, deltaMax, steps))
	}
	pts := make([]RatioPoint, 0, steps+1)
	ratio := math.Pow(deltaMax/deltaMin, 1/float64(steps))
	d := deltaMin
	for t := 0; t <= steps; t++ {
		pts = append(pts, RatioPoint{Rc: 1 + d, Rm: 1 + 1/d})
		d *= ratio
	}
	return pts
}

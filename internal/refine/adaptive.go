package refine

import (
	"context"
	"fmt"
	"iter"

	"storagesched/internal/engine"
)

// SweepBatchAdaptive sweeps items twice through the batch engine: a
// coarse pass at the configured grid, then a refinement pass whose
// per-item Config overrides target the δ-intervals where each coarse
// front bends (see Grid). Each item's coarse and refined runs merge
// into one Result — coarse runs first, refined runs after, the front
// re-assembled over both — and the merged BatchResults are emitted in
// input order, exactly one per item, like SweepBatch's.
//
// The two passes share cfg's pool parameters and cache. Cache entries
// are keyed per pass: the coarse pass uses the item's base fingerprint
// — so warm entries written by plain SweepBatch runs of the same grid
// still hit, and vice versa — and the refinement pass the fingerprint
// of its override grid. A merged result is flagged CacheHit only when
// every pass that ran for the item was served from the cache.
//
// Unlike SweepBatch, the adaptive pipeline holds every item's coarse
// front artifacts until the refinement pass completes, so memory is
// O(items), not O(MaxPending): bound the batch size accordingly. Fatal
// errors (cancellation, an emit error) abort as in SweepBatch;
// per-item failures ride on BatchResult.Err and refinement simply
// skips them.
func SweepBatchAdaptive(ctx context.Context, items iter.Seq[engine.BatchItem], cfg engine.BatchConfig, rcfg Config, emit func(engine.BatchResult) error) error {
	if items == nil {
		return fmt.Errorf("refine: nil batch item sequence")
	}
	if emit == nil {
		return fmt.Errorf("refine: nil emit callback")
	}
	if _, err := rcfg.normalized(); err != nil {
		return err
	}

	// Materialize the sequence: the refinement pass revisits items by
	// index, so the streaming contract of SweepBatch cannot be kept.
	var all []engine.BatchItem
	for item := range items {
		all = append(all, item)
	}

	// Pass 1 — coarse. Results land at their input index.
	coarse := make([]engine.BatchResult, 0, len(all))
	if err := engine.SweepBatch(ctx, engine.BatchOfItems(all...), cfg, func(br engine.BatchResult) error {
		coarse = append(coarse, br)
		return nil
	}); err != nil {
		return err
	}

	// Plan the refinement grids and build the second-pass items: the
	// same instance or graph, with a Config override whose grid is the
	// planned one. The override starts from the item's effective coarse
	// config so family selections (SkipSBO, tie-breaks, sub-algorithms)
	// carry over; only the δ-grid changes.
	refItems := make([]engine.BatchItem, 0, len(all))
	refOf := make(map[int]int, len(all)) // input index -> refItems index
	for i, br := range coarse {
		if br.Err != nil {
			continue
		}
		grid, err := Grid(br.Result, all[i].Graph != nil, rcfg)
		if err != nil {
			return err
		}
		if len(grid) == 0 {
			continue
		}
		eff := cfg.Config
		if all[i].Override != nil {
			eff = *all[i].Override
		}
		eff.Deltas = grid
		refOf[i] = len(refItems)
		refItems = append(refItems, engine.BatchItem{
			Instance: all[i].Instance,
			Graph:    all[i].Graph,
			Override: &eff,
		})
	}

	// Pass 2 — refinement, through the same pool configuration and
	// cache. Every item carries an override, so cfg's base grid is
	// inert here.
	refined := make([]engine.BatchResult, 0, len(refItems))
	if len(refItems) > 0 {
		if err := engine.SweepBatch(ctx, engine.BatchOfItems(refItems...), cfg, func(br engine.BatchResult) error {
			refined = append(refined, br)
			return nil
		}); err != nil {
			return err
		}
	}

	// Merge and emit in input order. Front witnesses re-resolve over
	// the concatenated run list; AssembleFront prefers the lowest run
	// index for equal values, so coarse witnesses win ties.
	for i, br := range coarse {
		ri, ok := refOf[i]
		if ok && br.Err == nil {
			rr := refined[ri]
			if rr.Err != nil {
				// The planned grid is valid by construction, so a
				// refinement failure is exceptional; surface it on the
				// item rather than silently emitting the coarse half.
				br.Err = fmt.Errorf("refine: refinement pass for item %d: %w", i, rr.Err)
				br.Result = nil
				br.CacheHit = false
			} else {
				runs := make([]engine.Run, 0, len(br.Result.Runs)+len(rr.Result.Runs))
				runs = append(runs, br.Result.Runs...)
				runs = append(runs, rr.Result.Runs...)
				br.Result = &engine.Result{
					Bounds: br.Result.Bounds,
					Runs:   runs,
					Front:  engine.AssembleFront(runs),
				}
				br.CacheHit = br.CacheHit && rr.CacheHit
			}
		}
		if err := emit(br); err != nil {
			return err
		}
	}
	return nil
}

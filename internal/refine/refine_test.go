package refine

import (
	"math"
	"sort"
	"testing"

	"storagesched/internal/engine"
	"storagesched/internal/model"
)

// synthetic builds a Result with one successful run per δ and a front
// whose i-th point is witnessed by the run at witness[i]. Values are
// chosen by the caller; runs not referenced by the front still count
// as coarse grid points for dedup and bracketing.
func synthetic(deltas []float64, values []model.Value, witness []int) *engine.Result {
	res := &engine.Result{Runs: make([]engine.Run, len(deltas))}
	for i, d := range deltas {
		res.Runs[i] = engine.Run{Algorithm: engine.AlgSBO, Delta: d}
	}
	for i, w := range witness {
		res.Runs[w].Value = values[i]
		res.Front = append(res.Front, engine.FrontPoint{Value: values[i], RunIndex: w})
	}
	return res
}

// Regression (issue satellite): fronts with nothing to refine — nil
// Results, empty fronts, single-point fronts — must plan no work and
// must not divide by zero or panic.
func TestGridNothingToRefine(t *testing.T) {
	cases := map[string]*engine.Result{
		"nil result":   nil,
		"empty result": {},
		"empty front":  synthetic([]float64{1, 2, 4}, nil, nil),
		"single point": synthetic([]float64{1, 2, 4}, []model.Value{{Cmax: 10, Mmax: 10}}, []int{1}),
		"zero values": synthetic([]float64{1, 2},
			[]model.Value{{Cmax: 0, Mmax: 0}, {Cmax: 0, Mmax: 0}}, []int{0, 1}),
	}
	for name, res := range cases {
		for _, graph := range []bool{false, true} {
			grid, err := Grid(res, graph, Config{})
			if err != nil {
				t.Errorf("%s (graph=%v): unexpected error %v", name, graph, err)
			}
			if len(grid) != 0 {
				t.Errorf("%s (graph=%v): planned %v, want no refinement", name, graph, grid)
			}
		}
	}
}

func TestGridConfigErrors(t *testing.T) {
	res := synthetic([]float64{1, 4},
		[]model.Value{{Cmax: 10, Mmax: 20}, {Cmax: 20, Mmax: 5}}, []int{0, 1})
	for name, cfg := range map[string]Config{
		"negative gap":        {Gap: -0.1},
		"NaN gap":             {Gap: math.NaN()},
		"infinite gap":        {Gap: math.Inf(1)},
		"negative max points": {MaxPoints: -3},
	} {
		if _, err := Grid(res, false, cfg); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestGridSubdividesFlaggedSpan(t *testing.T) {
	// Front witnesses at δ=2 and δ=4 with a 50% gap; the unreferenced
	// run at δ=1 both brackets the span downward and is excluded from
	// the plan as an already-swept point.
	res := synthetic([]float64{1, 2, 4},
		[]model.Value{{Cmax: 10, Mmax: 10}, {Cmax: 20, Mmax: 5}}, []int{1, 2})
	grid, err := Grid(res, false, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) == 0 || len(grid) > DefaultMaxPoints {
		t.Fatalf("planned %d points, want 1..%d: %v", len(grid), DefaultMaxPoints, grid)
	}
	if !sort.Float64sAreSorted(grid) {
		t.Errorf("grid not sorted: %v", grid)
	}
	seen := map[float64]bool{1: true, 2: true, 4: true}
	for _, d := range grid {
		if d <= 1 || d >= 4 {
			t.Errorf("point %g outside the bracketed span (1, 4)", d)
		}
		if seen[d] {
			t.Errorf("point %g duplicates a swept or planned point", d)
		}
		seen[d] = true
	}
}

func TestGridBelowThresholdPlansNothing(t *testing.T) {
	// 50% gap, threshold 60%: nothing to do.
	res := synthetic([]float64{2, 4},
		[]model.Value{{Cmax: 10, Mmax: 10}, {Cmax: 20, Mmax: 5}}, []int{0, 1})
	grid, err := Grid(res, false, Config{Gap: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 0 {
		t.Errorf("gap below threshold still planned %v", grid)
	}
}

func TestGridDegenerateWitnessInterval(t *testing.T) {
	// Both witnesses at the same δ (two tie-breaks of one grid point)
	// and no other grid point to bracket with: nothing to subdivide.
	res := &engine.Result{Runs: []engine.Run{
		{Algorithm: engine.AlgRLS, Delta: 2, Value: model.Value{Cmax: 10, Mmax: 10}},
		{Algorithm: engine.AlgRLS, Delta: 2, Value: model.Value{Cmax: 20, Mmax: 5}},
	}}
	res.Front = []engine.FrontPoint{
		{Value: model.Value{Cmax: 10, Mmax: 10}, RunIndex: 0},
		{Value: model.Value{Cmax: 20, Mmax: 5}, RunIndex: 1},
	}
	grid, err := Grid(res, false, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 0 {
		t.Errorf("degenerate witness interval planned %v", grid)
	}
}

func TestGridGraphClampsToDeltaTwo(t *testing.T) {
	// A synthetic span reaching below δ=2: a graph refinement may only
	// plan RLS-eligible points, so everything below 2 is clamped away.
	res := synthetic([]float64{1, 2.5, 4},
		[]model.Value{{Cmax: 10, Mmax: 10}, {Cmax: 20, Mmax: 5}}, []int{0, 2})
	grid, err := Grid(res, true, Config{MaxPoints: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) == 0 {
		t.Fatal("no refinement planned")
	}
	for _, d := range grid {
		if d < 2 {
			t.Errorf("graph plan contains δ=%g < 2", d)
		}
	}
}

func TestGridBudgetSplitsAcrossSpans(t *testing.T) {
	// Two flagged gaps; the budget must cover both spans, not just the
	// higher-scoring one.
	res := synthetic([]float64{1, 2, 4},
		[]model.Value{
			{Cmax: 10, Mmax: 100},
			{Cmax: 20, Mmax: 50},
			{Cmax: 40, Mmax: 10},
		}, []int{0, 1, 2})
	grid, err := Grid(res, false, Config{MaxPoints: 6})
	if err != nil {
		t.Fatal(err)
	}
	var below, above int
	for _, d := range grid {
		if d < 2 {
			below++
		}
		if d > 2 {
			above++
		}
	}
	if below == 0 || above == 0 {
		t.Errorf("budget not split across both spans: %v", grid)
	}
}

func TestMaxRelGap(t *testing.T) {
	front := []engine.FrontPoint{
		{Value: model.Value{Cmax: 10, Mmax: 100}},
		{Value: model.Value{Cmax: 20, Mmax: 90}},
		{Value: model.Value{Cmax: 22, Mmax: 45}},
	}
	// Pair 1: max(10/20, 10/100) = 0.5; pair 2: max(2/22, 45/90) = 0.5.
	if got := MaxRelGap(front); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MaxRelGap = %g, want 0.5", got)
	}
	if got := MaxRelGap(front[:1]); got != 0 {
		t.Errorf("single-point front gap = %g, want 0", got)
	}
	if got := MaxRelGap(nil); got != 0 {
		t.Errorf("empty front gap = %g, want 0", got)
	}
}

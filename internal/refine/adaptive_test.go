package refine

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"reflect"
	"runtime"
	"testing"

	"storagesched/internal/cache"
	"storagesched/internal/engine"
	"storagesched/internal/gen"
)

// adaptiveWorkload is the mixed batch the driver tests sweep: two
// instances whose fronts bend, one graph, and one per-item override.
func adaptiveWorkload() []engine.BatchItem {
	override := engine.Config{Deltas: []float64{0.5, 2, 8}}
	return []engine.BatchItem{
		{Instance: gen.Uniform(200, 16, 1)},
		{Graph: gen.ForkJoin(8, 6, 10, 1), Override: &override},
		{Instance: gen.EmbeddedCode(200, 16, 1)},
	}
}

func sliceSeq(items []engine.BatchItem) iter.Seq[engine.BatchItem] {
	return engine.BatchOfItems(items...)
}

func adaptiveConfig(workers int) engine.BatchConfig {
	grid, err := engine.GeometricGrid(0.0625, 256, 6)
	if err != nil {
		panic(err)
	}
	return engine.BatchConfig{Config: engine.Config{Deltas: grid, Workers: workers}}
}

func collectAdaptive(t *testing.T, items []engine.BatchItem, cfg engine.BatchConfig, rcfg Config) []engine.BatchResult {
	t.Helper()
	var out []engine.BatchResult
	err := SweepBatchAdaptive(context.Background(), sliceSeq(items), cfg, rcfg, func(br engine.BatchResult) error {
		out = append(out, br)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAdaptiveDeterministicAcrossWorkers(t *testing.T) {
	items := adaptiveWorkload()
	rcfg := Config{Gap: 0.05, MaxPoints: 12}
	base := collectAdaptive(t, items, adaptiveConfig(1), rcfg)
	if len(base) != len(items) {
		t.Fatalf("emitted %d results, want %d", len(base), len(items))
	}
	for i, br := range base {
		if br.Index != i {
			t.Errorf("result %d has index %d, want input order", i, br.Index)
		}
		if br.Err != nil {
			t.Errorf("item %d failed: %v", i, br.Err)
		}
	}
	for _, workers := range []int{4, runtime.NumCPU()} {
		got := collectAdaptive(t, items, adaptiveConfig(workers), rcfg)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: adaptive results differ from the single-worker run", workers)
		}
	}
}

func TestAdaptiveMergePreservesCoarseRunsAndDominates(t *testing.T) {
	items := adaptiveWorkload()
	cfg := adaptiveConfig(0)
	var coarse []engine.BatchResult
	if err := engine.SweepBatch(context.Background(), sliceSeq(items), cfg, func(br engine.BatchResult) error {
		coarse = append(coarse, br)
		return br.Err
	}); err != nil {
		t.Fatal(err)
	}
	merged := collectAdaptive(t, items, cfg, Config{Gap: 0.05, MaxPoints: 12})

	refinedSomething := false
	for i := range items {
		c, m := coarse[i].Result, merged[i].Result
		if len(m.Runs) < len(c.Runs) {
			t.Fatalf("item %d: merged %d runs < coarse %d", i, len(m.Runs), len(c.Runs))
		}
		if !reflect.DeepEqual(m.Runs[:len(c.Runs)], c.Runs) {
			t.Errorf("item %d: coarse runs are not a prefix of the merged runs", i)
		}
		if len(m.Runs) > len(c.Runs) {
			refinedSomething = true
		}
		if !reflect.DeepEqual(m.Bounds, c.Bounds) {
			t.Errorf("item %d: merged bounds differ from coarse", i)
		}
		// Pointwise weak dominance: refinement may only improve the
		// front.
		for _, cp := range c.Front {
			ok := false
			for _, mp := range m.Front {
				if mp.Value.WeaklyDominates(cp.Value) {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("item %d: coarse front point %v not dominated by the adaptive front", i, cp.Value)
			}
		}
	}
	if !refinedSomething {
		t.Error("no item was refined; the workload should exercise the second pass")
	}
}

func TestAdaptiveNoFlaggedGapsEqualsCoarse(t *testing.T) {
	items := adaptiveWorkload()
	cfg := adaptiveConfig(0)
	var coarse []engine.BatchResult
	if err := engine.SweepBatch(context.Background(), sliceSeq(items), cfg, func(br engine.BatchResult) error {
		coarse = append(coarse, br)
		return br.Err
	}); err != nil {
		t.Fatal(err)
	}
	// A threshold no finite gap can exceed: the second pass must plan
	// nothing and the merged stream must equal the coarse one.
	got := collectAdaptive(t, items, cfg, Config{Gap: 0.999})
	if !reflect.DeepEqual(coarse, got) {
		t.Error("with no flagged gaps, adaptive results differ from plain SweepBatch")
	}
}

func TestAdaptiveItemErrorPassesThrough(t *testing.T) {
	boom := errors.New("bad source")
	items := []engine.BatchItem{
		{Instance: gen.Uniform(20, 3, 1)},
		{Err: boom, Tag: "poisoned"},
	}
	got := collectAdaptive(t, items, adaptiveConfig(0), Config{})
	if len(got) != 2 {
		t.Fatalf("emitted %d results, want 2", len(got))
	}
	if got[0].Err != nil {
		t.Errorf("good item failed: %v", got[0].Err)
	}
	if !errors.Is(got[1].Err, boom) {
		t.Errorf("poisoned item error = %v, want %v", got[1].Err, boom)
	}
	if got[1].Tag != "poisoned" {
		t.Errorf("poisoned item tag = %v, not echoed", got[1].Tag)
	}
}

func TestAdaptiveArgumentErrors(t *testing.T) {
	ctx := context.Background()
	emit := func(engine.BatchResult) error { return nil }
	cfg := adaptiveConfig(0)
	if err := SweepBatchAdaptive(ctx, nil, cfg, Config{}, emit); err == nil {
		t.Error("nil sequence accepted")
	}
	if err := SweepBatchAdaptive(ctx, sliceSeq(nil), cfg, Config{}, nil); err == nil {
		t.Error("nil emit accepted")
	}
	if err := SweepBatchAdaptive(ctx, sliceSeq(nil), cfg, Config{Gap: -1}, emit); err == nil {
		t.Error("invalid refine config accepted")
	}
}

func TestAdaptiveEmitErrorAborts(t *testing.T) {
	boom := errors.New("stop")
	err := SweepBatchAdaptive(context.Background(), sliceSeq(adaptiveWorkload()), adaptiveConfig(0), Config{},
		func(engine.BatchResult) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("emit error not propagated: %v", err)
	}
}

func TestAdaptiveCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := SweepBatchAdaptive(ctx, sliceSeq(adaptiveWorkload()), adaptiveConfig(0), Config{},
		func(engine.BatchResult) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled adaptive sweep returned %v, want context.Canceled", err)
	}
}

// The cache contract of the two-pass pipeline: the coarse pass shares
// entries with plain SweepBatch runs of the same grid, refined entries
// key on their own override fingerprint, and a fully warm adaptive run
// flags CacheHit on every item while reproducing the fronts exactly.
func TestAdaptiveCacheInteraction(t *testing.T) {
	items := adaptiveWorkload()
	cfg := adaptiveConfig(0)
	c, err := cache.New(cache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = c

	// Warm the coarse entries with a plain batch (as a fixed-grid
	// production run would).
	if err := engine.SweepBatch(context.Background(), sliceSeq(items), cfg, func(br engine.BatchResult) error {
		if br.CacheHit {
			return fmt.Errorf("item %d hit an empty cache", br.Index)
		}
		return br.Err
	}); err != nil {
		t.Fatal(err)
	}
	warm := c.Stats()

	// First adaptive run: the coarse pass must be served entirely from
	// the warm entries; the refinement pass is cold.
	rcfg := Config{Gap: 0.05, MaxPoints: 12}
	first := collectAdaptive(t, items, cfg, rcfg)
	afterFirst := c.Stats()
	if got := afterFirst.Hits - warm.Hits; got < int64(len(items)) {
		t.Errorf("adaptive coarse pass hit %d warm entries, want at least %d", got, len(items))
	}

	// Second adaptive run: both passes warm — every item is a cache
	// hit and the merged results are identical.
	second := collectAdaptive(t, items, cfg, rcfg)
	for i, br := range second {
		if !br.CacheHit {
			t.Errorf("item %d: fully warm adaptive run not flagged CacheHit", i)
		}
		// Cached Results elide witness payloads, so compare the front
		// artifacts.
		if !reflect.DeepEqual(br.Result.Front, first[i].Result.Front) {
			t.Errorf("item %d: warm front differs from computed one", i)
		}
		if !reflect.DeepEqual(br.Result.Bounds, first[i].Result.Bounds) {
			t.Errorf("item %d: warm bounds differ from computed ones", i)
		}
	}
	afterSecond := c.Stats()
	if afterSecond.Misses != afterFirst.Misses {
		t.Errorf("fully warm adaptive run missed %d times", afterSecond.Misses-afterFirst.Misses)
	}
}

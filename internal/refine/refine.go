// Package refine turns fixed δ-grids into adaptive ones: it scores the
// gaps of a swept Pareto front and emits a refinement grid that places
// new δ values exactly where the front bends.
//
// A fixed geometric grid spends runs uniformly in log-δ space, but the
// (1+δ, 1+1/δ) trade-off is nothing like uniform in objective space:
// fronts are flat across most of the grid and bend sharply near the
// storage-constraint boundary, so a fixed grid over-samples the flats
// and under-samples the bends — the region the bicriteria guarantee is
// about. The refinement rule is purely geometric: adjacent front
// points whose relative gap in (makespan, memory) space exceeds
// Config.Gap get new δ values geometrically subdivided between their
// witness runs' δ parameters, largest gaps first, up to
// Config.MaxPoints per item.
//
// SweepBatchAdaptive is the two-pass pipeline built on this scorer: a
// coarse engine.SweepBatch pass streams fronts as usual, Grid plans a
// per-item refinement grid from each coarse front, and a second pass
// re-enters the batch with per-item Config overrides; coarse and
// refined runs merge into one deduplicated front per item, emitted in
// input order. Both passes are byte-deterministic for a fixed input,
// whatever the worker count.
package refine

import (
	"fmt"
	"math"
	"sort"

	"storagesched/internal/engine"
)

// DefaultGap is the relative-gap threshold used when Config.Gap is 0:
// adjacent front points further than 25% apart (in either objective,
// relative to the larger value) trigger refinement between them.
const DefaultGap = 0.25

// DefaultMaxPoints is the per-item refinement-grid bound used when
// Config.MaxPoints is 0.
const DefaultMaxPoints = 8

// Config parameterizes adaptive refinement.
type Config struct {
	// Gap is the relative-gap threshold above which the span between
	// two adjacent front points is refined. The gap of a pair is
	// max(ΔCmax/Cmax_hi, ΔMmax/Mmax_hi) — the larger of the two
	// objectives' relative jumps — so it is scale-free and lies in
	// [0, 1). 0 means DefaultGap; it must otherwise be a positive
	// finite number.
	Gap float64

	// MaxPoints bounds the refinement grid of one item: at most this
	// many new δ values are planned per item, allocated to the flagged
	// gaps largest-first. 0 means DefaultMaxPoints; it must otherwise
	// be positive.
	MaxPoints int
}

// normalized applies the documented defaults and rejects unusable
// values.
func (c Config) normalized() (Config, error) {
	if c.Gap == 0 {
		c.Gap = DefaultGap
	}
	if !(c.Gap > 0) || math.IsInf(c.Gap, 0) {
		return c, fmt.Errorf("refine: gap threshold %g, need a positive finite number", c.Gap)
	}
	if c.MaxPoints == 0 {
		c.MaxPoints = DefaultMaxPoints
	}
	if c.MaxPoints < 0 {
		return c, fmt.Errorf("refine: max points %d, need a positive count", c.MaxPoints)
	}
	return c, nil
}

// span is one flagged front gap: the δ-interval between the witness
// runs of two adjacent front points whose relative objective gap
// exceeds the threshold.
type span struct {
	lo, hi float64 // witness δ interval, lo < hi
	score  float64 // relative gap in objective space
	order  int     // front position, the deterministic tie-break
	points int     // subdivision points allocated so far
}

// relGap is the scale-free distance between two adjacent front points
// a (lower Cmax, higher Mmax) and b: the larger of the two objectives'
// relative jumps, each normalized by the pair's larger value. A
// non-positive denominator (degenerate zero objectives) contributes
// nothing rather than dividing by zero.
func relGap(a, b engine.FrontPoint) float64 {
	var gC, gM float64
	if b.Value.Cmax > 0 {
		gC = float64(b.Value.Cmax-a.Value.Cmax) / float64(b.Value.Cmax)
	}
	if a.Value.Mmax > 0 {
		gM = float64(a.Value.Mmax-b.Value.Mmax) / float64(a.Value.Mmax)
	}
	return math.Max(gC, gM)
}

// Grid plans the refinement δ-grid for one swept item from its coarse
// Result. graph marks task-DAG items, whose refinement runs the RLS
// family only: every planned point is clamped to δ ≥ 2 (sub-2 points
// would select no runs). The returned grid is sorted ascending,
// contains no duplicates and shares no point with the coarse Runs —
// re-sweeping it adds information or nothing is returned at all.
//
// A front with fewer than two points has no gap to score: Grid returns
// nil for empty and single-point fronts (and for fronts whose flagged
// gaps collapse to a single witness δ), never a spurious refinement
// job. The plan is a pure function of the Result, so adaptive sweeps
// stay deterministic whatever the worker count.
func Grid(res *engine.Result, graph bool, cfg Config) ([]float64, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if res == nil || len(res.Front) < 2 {
		return nil, nil
	}

	// The δ values the coarse pass actually ran, sorted: the spans
	// below widen each flagged witness interval to the grid points
	// bracketing it — achieved values are stepwise in δ, and the step
	// realizing an intermediate value regularly lies on the plateau
	// just outside the witnesses, which the coarse grid has only
	// sampled at its own (too coarse) spacing.
	coarseDeltas := make([]float64, 0, len(res.Runs))
	for _, r := range res.Runs {
		coarseDeltas = append(coarseDeltas, r.Delta)
	}
	sort.Float64s(coarseDeltas)
	coarseDeltas = dedupSorted(coarseDeltas)

	// Score adjacent pairs of the (Cmax-sorted) front and keep the
	// spans that both exceed the threshold and have a nondegenerate
	// δ-interval to subdivide.
	var spans []*span
	for i := 1; i < len(res.Front); i++ {
		a, b := res.Front[i-1], res.Front[i]
		score := relGap(a, b)
		if score <= cfg.Gap {
			continue
		}
		da := res.Runs[a.RunIndex].Delta
		db := res.Runs[b.RunIndex].Delta
		lo, hi := bracket(coarseDeltas, math.Min(da, db), math.Max(da, db))
		if graph && lo < 2 {
			lo = 2
		}
		if !(lo < hi) {
			continue
		}
		spans = append(spans, &span{lo: lo, hi: hi, score: score, order: i})
	}
	if len(spans) == 0 {
		return nil, nil
	}
	// Allocate the point budget one δ at a time to the span whose
	// subdivision is currently the coarsest (largest per-interval
	// geometric ratio), so the refined grid approaches uniform
	// geometric density across every flagged region — a wide span gets
	// proportionally more points, and a single huge gap cannot starve
	// the rest. Exact density ties break by gap score, then by front
	// position, so the plan never depends on sort stability.
	spacing := func(sp *span) float64 {
		return math.Pow(sp.hi/sp.lo, 1/float64(sp.points+1))
	}
	for budget := cfg.MaxPoints; budget > 0; budget-- {
		best := spans[0]
		for _, sp := range spans[1:] {
			ds, bs := spacing(sp), spacing(best)
			if ds > bs || (ds == bs && (sp.score > best.score ||
				(sp.score == best.score && sp.order < best.order))) {
				best = sp
			}
		}
		best.points++
	}

	// Materialize each span's points by geometric subdivision — the
	// natural spacing for δ — and drop anything the coarse pass
	// already ran (or that collides with another span's point): the
	// refinement pass must only ever add new grid points.
	seen := make(map[float64]bool, len(res.Runs))
	for _, r := range res.Runs {
		seen[r.Delta] = true
	}
	var grid []float64
	for _, sp := range spans {
		ratio := sp.hi / sp.lo
		for i := 1; i <= sp.points; i++ {
			d := sp.lo * math.Pow(ratio, float64(i)/float64(sp.points+1))
			if graph && d < 2 {
				continue
			}
			if !(d > 0) || math.IsInf(d, 0) || seen[d] {
				continue
			}
			seen[d] = true
			grid = append(grid, d)
		}
	}
	sort.Float64s(grid)
	return grid, nil
}

// dedupSorted removes exact duplicates from a sorted slice in place.
func dedupSorted(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// bracket widens the witness interval [lo, hi] to the coarse grid
// points adjacent to it: the largest grid δ below lo and the smallest
// above hi (when they exist). deltas is sorted ascending.
func bracket(deltas []float64, lo, hi float64) (float64, float64) {
	i := sort.SearchFloat64s(deltas, lo)
	if i > 0 {
		lo = deltas[i-1]
	}
	j := sort.SearchFloat64s(deltas, hi)
	// j indexes hi itself when hi is a grid point; the next point up
	// is its successor.
	for j < len(deltas) && deltas[j] <= hi {
		j++
	}
	if j < len(deltas) {
		hi = deltas[j]
	}
	return lo, hi
}

// MaxRelGap returns the largest relative gap between adjacent points
// of a (Cmax-sorted) front — the quantity refinement minimizes, and
// the quality metric the ADAPTIVE experiment compares across grids. A
// front with fewer than two points has no gap and scores 0.
func MaxRelGap(front []engine.FrontPoint) float64 {
	var worst float64
	for i := 1; i < len(front); i++ {
		if g := relGap(front[i-1], front[i]); g > worst {
			worst = g
		}
	}
	return worst
}

package refine

// Property-based front invariants over randomized workloads: whatever
// the instance or graph, every emitted front must be sorted, mutually
// non-dominated and achieved by its runs, and an adaptive front must
// pointwise weakly dominate the coarse front it refines. The workloads
// are drawn from the deterministic generators across many seeds, so
// failures reproduce exactly.

import (
	"context"
	"fmt"
	"testing"

	"storagesched/internal/engine"
	"storagesched/internal/gen"
)

// checkFrontInvariants asserts the structural contract of a front:
// strictly increasing Cmax, strictly decreasing Mmax (monotone, no
// duplicate values), pairwise non-domination, and every successful run
// weakly dominated by some front point.
func checkFrontInvariants(t *testing.T, label string, res *engine.Result) {
	t.Helper()
	front := res.Front
	for i := 1; i < len(front); i++ {
		a, b := front[i-1], front[i]
		if b.Value.Cmax <= a.Value.Cmax {
			t.Errorf("%s: front Cmax not strictly increasing at %d: %v then %v", label, i, a.Value, b.Value)
		}
		if b.Value.Mmax >= a.Value.Mmax {
			t.Errorf("%s: front Mmax not strictly decreasing at %d: %v then %v", label, i, a.Value, b.Value)
		}
	}
	for i, p := range front {
		if p.RunIndex < 0 || p.RunIndex >= len(res.Runs) {
			t.Fatalf("%s: front point %d has witness %d out of range", label, i, p.RunIndex)
		}
		if w := res.Runs[p.RunIndex]; w.Err != nil || w.Value != p.Value {
			t.Errorf("%s: front point %d not achieved by its witness run", label, i)
		}
		for j, q := range front {
			if i != j && q.Value.Dominates(p.Value) {
				t.Errorf("%s: front point %v dominated by front point %v", label, p.Value, q.Value)
			}
		}
	}
	for i, r := range res.Runs {
		if r.Err != nil {
			continue
		}
		covered := false
		for _, p := range front {
			if p.Value.WeaklyDominates(r.Value) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("%s: run %d value %v not covered by the front", label, i, r.Value)
		}
	}
}

// checkPointwiseDominance asserts that every point of the coarse front
// is weakly dominated by some point of the adaptive front — refinement
// may only improve.
func checkPointwiseDominance(t *testing.T, label string, coarse, adaptive []engine.FrontPoint) {
	t.Helper()
	for _, cp := range coarse {
		ok := false
		for _, ap := range adaptive {
			if ap.Value.WeaklyDominates(cp.Value) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: coarse front point %v not weakly dominated by the adaptive front", label, cp.Value)
		}
	}
}

func TestFrontInvariantsRandomized(t *testing.T) {
	ctx := context.Background()
	grid, err := engine.GeometricGrid(0.25, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.BatchConfig{Config: engine.Config{Deltas: grid}}
	rcfg := Config{Gap: 0.05, MaxPoints: 10}

	for seed := int64(1); seed <= 8; seed++ {
		items := []engine.BatchItem{
			{Instance: gen.Uniform(60, 6, seed)},
			{Instance: gen.EmbeddedCode(50, 5, seed)},
			{Instance: gen.GridBatch(40, 8, seed)},
			{Graph: gen.ForkJoin(6, 4, 8, seed)},
			{Graph: gen.LayeredDAG(5, 8, 4, seed)},
		}
		var coarse []engine.BatchResult
		if err := engine.SweepBatch(ctx, sliceSeq(items), cfg, func(br engine.BatchResult) error {
			coarse = append(coarse, br)
			return br.Err
		}); err != nil {
			t.Fatal(err)
		}
		var adaptive []engine.BatchResult
		if err := SweepBatchAdaptive(ctx, sliceSeq(items), cfg, rcfg, func(br engine.BatchResult) error {
			adaptive = append(adaptive, br)
			return br.Err
		}); err != nil {
			t.Fatal(err)
		}
		for i := range items {
			label := fmt.Sprintf("seed %d item %d", seed, i)
			checkFrontInvariants(t, label+" coarse", coarse[i].Result)
			checkFrontInvariants(t, label+" adaptive", adaptive[i].Result)
			checkPointwiseDominance(t, label, coarse[i].Result.Front, adaptive[i].Result.Front)
		}
	}
}

package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func text(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return b.String()
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Inc()
	g.Add(10)
	g.Dec()
	if got := g.Value(); got != 10 {
		t.Errorf("gauge = %d, want 10", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Errorf("gauge after Set = %d, want -7", got)
	}

	// Re-registration under the same name returns the same instrument.
	if c2 := r.Counter("c_total", "a counter"); c2 != c {
		t.Error("re-registered counter is a different instrument")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "latency", []float64{1, 0.1, 1, 0.01, math.Inf(1), math.NaN()})
	var want float64
	for _, v := range []float64{0.005, 0.05, 0.5, 5, 0.1} {
		h.Observe(v)
		want += v
	}
	h.Observe(math.NaN()) // dropped
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	out := text(t, r)
	for _, want := range []string{
		`h_seconds_bucket{le="0.01"} 1`,
		`h_seconds_bucket{le="0.1"} 3`, // 0.05, 0.1 — le buckets are inclusive — plus 0.005
		`h_seconds_bucket{le="1"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		`h_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVecAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "reason")
	v.With("queue_full").Inc()
	v.With("queue_full").Inc()
	v.With("weird\"va\\lue\n").Inc()
	v.With().Inc()                // too few values → "_invalid"
	v.With("client_cap", "extra") // too many → truncated
	out := text(t, r)
	for _, want := range []string{
		`req_total{reason="queue_full"} 2`,
		`req_total{reason="weird\"va\\lue\n"} 1`,
		`req_total{reason="_invalid"} 1`,
		`req_total{reason="client_cap"} 0`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCardinalityFoldsToOther(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("cl_total", "per-client", "client")
	for i := 0; i < maxChildren+50; i++ {
		v.With(fmt.Sprintf("client-%05d", i)).Inc()
	}
	out := text(t, r)
	if !strings.Contains(out, `cl_total{client="_other"} 50`+"\n") {
		t.Errorf("overflow children did not fold into _other:\n%.2000s", out)
	}
}

// TestWriteTextDeterministic: two registries reaching the same state
// through different interleavings and registration orders must encode
// to identical bytes — the contract GET /metrics inherits.
func TestWriteTextDeterministic(t *testing.T) {
	build := func(order []int) *Registry {
		r := NewRegistry()
		for _, k := range order {
			switch k {
			case 0:
				r.Counter("a_total", "a").Add(3)
			case 1:
				r.Gauge("b", "b").Set(9)
			case 2:
				v := r.CounterVec("c_total", "c", "x")
				v.With("p").Add(1)
				v.With("q").Add(2)
			case 3:
				r.Histogram("d_seconds", "d", []float64{0.5, 1}).Observe(0.7)
			}
		}
		return r
	}
	a := text(t, build([]int{0, 1, 2, 3}))
	b := text(t, build([]int{3, 2, 1, 0}))
	if a != b {
		t.Errorf("registration order changed the exposition:\n--- a:\n%s--- b:\n%s", a, b)
	}
	if a2 := text(t, build([]int{0, 1, 2, 3})); a2 != a {
		t.Errorf("same state encoded twice differs:\n--- first:\n%s--- second:\n%s", a, a2)
	}
}

func TestFuncCollectors(t *testing.T) {
	r := NewRegistry()
	n := int64(41)
	r.CounterFunc("fc_total", "callback counter", func() int64 { return n })
	r.GaugeFunc("fg", "callback gauge", func() int64 { return -n })
	n++
	out := text(t, r)
	if !strings.Contains(out, "fc_total 42\n") || !strings.Contains(out, "fg -42\n") {
		t.Errorf("callback collectors not read at encode time:\n%s", out)
	}
	// First registration wins: a second callback under the same name
	// is ignored rather than replacing the first.
	r.CounterFunc("fc_total", "other", func() int64 { return 0 })
	if out := text(t, r); !strings.Contains(out, "fc_total 42\n") {
		t.Errorf("second CounterFunc registration replaced the first:\n%s", out)
	}
}

// TestConflictingRegistrationDetaches: a name reused with a different
// kind or label set yields a working but unregistered instrument, and
// the exposition keeps only the first registration.
func TestConflictingRegistrationDetaches(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "counter").Inc()
	g := r.Gauge("x_total", "now a gauge?")
	g.Set(99) // must not panic, must not appear
	v := r.CounterVec("x_total", "now labeled?", "l")
	v.With("a").Inc()
	out := text(t, r)
	if !strings.Contains(out, "x_total 1\n") {
		t.Errorf("original counter lost:\n%s", out)
	}
	if strings.Contains(out, "99") || strings.Contains(out, `{l="a"}`) {
		t.Errorf("conflicting registration leaked into the exposition:\n%s", out)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("n_total", "nil registry")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	g := r.Gauge("ng", "nil")
	g.Inc()
	g.Dec()
	g.Set(5)
	h := r.Histogram("nh", "nil", nil)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram recorded something")
	}
	v := r.CounterVec("nv", "nil", "l")
	v.With("x").Inc()
	r.CounterFunc("nf", "nil", func() int64 { return 1 })
	var b strings.Builder
	if err := r.WriteText(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry encoded %q, err %v", b.String(), err)
	}
}

// TestConcurrentUpdatesAndScrapes races increments against encodes;
// run under -race this is the data-race check, and the final state
// must account for every increment.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "concurrent")
	h := r.Histogram("ch_seconds", "concurrent", []float64{0.5})
	v := r.CounterVec("cv_total", "concurrent", "w")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := fmt.Sprintf("w%d", w%3)
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i%2) * 0.9)
				v.With(lbl).Inc()
				if i%100 == 0 {
					var b strings.Builder
					if err := r.WriteText(&b); err != nil {
						t.Errorf("WriteText: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	out := text(t, r)
	if !strings.Contains(out, fmt.Sprintf("cc_total %d\n", workers*per)) {
		t.Errorf("final exposition does not account for every increment:\n%s", out)
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", "line one\nline \\two")
	out := text(t, r)
	if !strings.Contains(out, `# HELP e_total line one\nline \\two`+"\n") {
		t.Errorf("HELP not escaped:\n%s", out)
	}
}

package metrics

// The text exposition. WriteText renders the registry in the
// Prometheus text format (version 0.0.4): families sorted by name,
// series within a family sorted by rendered label block, numbers
// formatted by strconv with fixed parameters — so a given registry
// state encodes to exactly one byte sequence, however it was reached.
// Both map iterations below are the collect-then-sort shape the
// detrange analyzer requires of anything that feeds an output stream.

import (
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the HTTP Content-Type of the text exposition.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every registered family to w in the Prometheus
// text format. Output is byte-deterministic for a given registry
// state. Concurrent updates during an encode are safe; each sample is
// read atomically (a histogram's buckets may be mid-update relative
// to one another, as in any live scrape).
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.writeText(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// typeName is the TYPE line vocabulary per family kind.
func (k kind) typeName() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// writeText renders one family: HELP and TYPE comments, then its
// series sorted by label block.
func (f *family) writeText(b *strings.Builder) {
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteString("\n# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.kind.typeName())
	b.WriteByte('\n')

	if f.fn != nil {
		writeSample(b, f.name, "", f.fn())
		return
	}

	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for key := range f.children {
		keys = append(keys, key)
	}
	kids := make([]any, len(keys))
	for i, key := range keys {
		kids[i] = f.children[key]
	}
	f.mu.Unlock()
	// Sort series by rendered label block; carry the children along so
	// the encode below never touches the live map.
	sort.Sort(&byKey{keys: keys, kids: kids})

	for i, key := range keys {
		switch c := kids[i].(type) {
		case *Counter:
			writeSample(b, f.name, key, c.Value())
		case *Gauge:
			writeSample(b, f.name, key, c.Value())
		case *Histogram:
			writeHistogram(b, f.name, key, c)
		}
	}
}

// byKey sorts a (label-block, child) pair slice by label block.
type byKey struct {
	keys []string
	kids []any
}

func (s *byKey) Len() int           { return len(s.keys) }
func (s *byKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *byKey) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.kids[i], s.kids[j] = s.kids[j], s.kids[i]
}

// writeSample renders one integer-valued series line.
func writeSample(b *strings.Builder, name, labelBlock string, v int64) {
	b.WriteString(name)
	b.WriteString(labelBlock)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(v, 10))
	b.WriteByte('\n')
}

// writeHistogram renders one histogram series: the cumulative
// _bucket lines (le-labeled), then _sum and _count.
func writeHistogram(b *strings.Builder, name, labelBlock string, h *Histogram) {
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		b.WriteString(name)
		b.WriteString("_bucket")
		b.WriteString(withLabel(labelBlock, "le", le))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(cum, 10))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(labelBlock)
	b.WriteByte(' ')
	b.WriteString(formatFloat(h.Sum()))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(labelBlock)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(cum, 10))
	b.WriteByte('\n')
}

// formatFloat renders a float deterministically (shortest exact form).
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders a label block `{a="x",b="y"}` from parallel
// name/value lists; no labels render as the empty string. The block
// doubles as the child's map key, so sorting keys sorts series.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// withLabel appends one label to an existing block (used for the
// histogram le label).
func withLabel(block, name, value string) string {
	pair := name + `="` + escapeLabel(value) + `"`
	if block == "" {
		return "{" + pair + "}"
	}
	return block[:len(block)-1] + "," + pair + "}"
}

// escapeLabel escapes a label value per the text format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP text per the text format: backslash and
// newline.
func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// Package metrics is a dependency-free metrics layer for the sweep
// stack: atomic counters, gauges and fixed-bucket histograms behind a
// Registry whose text exposition (Prometheus text format, text.go) is
// sorted and byte-deterministic for a given state.
//
// The package exists because the daemon's observability must obey the
// same contract as its output: identical state encodes to identical
// bytes, whatever goroutine interleaving produced that state. Nothing
// here allocates on the increment path, no instrument method can
// panic, and every method is safe on a nil receiver — instrumented
// code reads straight-line (`m.hits.Inc()`) whether or not a registry
// was wired, so hot paths carry no `if metrics != nil` branches.
//
// Registration is idempotent and first-wins: asking a Registry for a
// family that already exists returns the existing instrument when the
// kind and label names agree, and a valid but unregistered ("detached")
// instrument when they conflict — misuse degrades to missing series,
// never to a panic in a serving daemon.
//
// All types are safe for concurrent use.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// kind discriminates the family types in the registry.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// maxChildren bounds a labeled family's cardinality: children past the
// bound fold into a single series whose label values are all "_other",
// so an unbounded label (a client identifier, say) cannot grow the
// registry without bound.
const maxChildren = 1024

// otherLabel is the folded label value of children past maxChildren.
const otherLabel = "_other"

// Registry holds metric families and renders them in the Prometheus
// text format. Construct with NewRegistry; the zero value is not
// usable. A nil *Registry is a valid "metrics off" value for the
// constructors that accept one (they return nil instruments, whose
// methods are no-ops).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric family: its metadata plus its children
// keyed by rendered label block ("" for the scalar child).
type family struct {
	name   string
	help   string
	kind   kind
	labels []string  // label names; empty for scalar families
	bounds []float64 // histogram upper bounds (exclusive of +Inf)
	fn     func() int64

	mu       sync.Mutex
	children map[string]any // *Counter | *Gauge | *Histogram
}

// lookup returns the named family, creating it on first use. A name
// already registered with a different kind or label set yields a
// detached family (not in the map): its instruments work but are never
// encoded, so a registration conflict cannot corrupt the exposition.
func (r *Registry) lookup(name, help string, k kind, labels []string, bounds []float64, fn func() int64) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind == k && equalLabels(f.labels, labels) {
			return f
		}
		return newFamily(name, help, k, labels, bounds, fn)
	}
	f := newFamily(name, help, k, labels, bounds, fn)
	r.families[name] = f
	return f
}

// newFamily builds a family value (registered or detached alike).
func newFamily(name, help string, k kind, labels []string, bounds []float64, fn func() int64) *family {
	return &family{
		name:     name,
		help:     help,
		kind:     k,
		labels:   labels,
		bounds:   bounds,
		fn:       fn,
		children: make(map[string]any),
	}
}

// equalLabels reports whether two label-name lists match exactly.
func equalLabels(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// child returns the family's child at the rendered label-block key,
// creating it with mk on first use. Past maxChildren new keys fold
// into the all-"_other" child.
func (f *family) child(key string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	if key != "" && len(f.children) >= maxChildren {
		folded := renderLabels(f.labels, foldedValues(len(f.labels)))
		if c, ok := f.children[folded]; ok {
			return c
		}
		key = folded
	}
	c := mk()
	f.children[key] = c
	return c
}

// foldedValues returns n copies of the fold marker.
func foldedValues(n int) []string {
	vals := make([]string, n)
	for i := range vals {
		vals[i] = otherLabel
	}
	return vals
}

// Counter is a monotonically increasing value. The zero value is
// ready to use; methods on a nil *Counter are no-ops, so instruments
// obtained from a nil Registry cost one branch per operation.
type Counter struct {
	v atomic.Int64
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, kindCounter, nil, nil, nil)
	if f == nil {
		return nil
	}
	return f.child("", func() any { return new(Counter) }).(*Counter)
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n; negative n is ignored (a counter never goes down).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The zero value is ready;
// methods on a nil *Gauge are no-ops.
type Gauge struct {
	v atomic.Int64
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, kindGauge, nil, nil, nil)
	if f == nil {
		return nil
	}
	return f.child("", func() any { return new(Gauge) }).(*Gauge)
}

// Inc adds one.
func (g *Gauge) Inc() {
	if g != nil {
		g.v.Add(1)
	}
}

// Dec subtracts one.
func (g *Gauge) Dec() {
	if g != nil {
		g.v.Add(-1)
	}
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets are the default histogram bucket upper bounds, in
// seconds: microsecond-scale jobs through ten-second sweeps.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets chosen at
// registration. Observations are cumulative in the exposition (every
// bucket counts values ≤ its bound, the +Inf bucket counts all), as
// the Prometheus format requires. Methods on a nil *Histogram are
// no-ops.
type Histogram struct {
	bounds []float64      // sorted, deduplicated upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits of the running sum
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (nil means
// DefBuckets). Bounds are copied, sorted and deduplicated; an
// implicit +Inf bucket is always present.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	sorted := make([]float64, 0, len(bounds))
	sorted = append(sorted, bounds...)
	sort.Float64s(sorted)
	dedup := sorted[:0]
	for i, b := range sorted {
		if i > 0 && b == sorted[i-1] {
			continue
		}
		if math.IsInf(b, +1) || math.IsNaN(b) {
			continue // +Inf is implicit; NaN is meaningless as a bound
		}
		dedup = append(dedup, b)
	}
	f := r.lookup(name, help, kindHistogram, nil, dedup, nil)
	if f == nil {
		return nil
	}
	return f.child("", func() any { return newHistogram(f.bounds) }).(*Histogram)
}

// newHistogram builds a histogram over prepared (sorted, finite,
// deduplicated) bounds.
func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value. NaN observations are dropped — they
// would poison the sum for every later scrape.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the timing
// idiom: t0 := time.Now(); defer h.ObserveSince(t0).
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// CounterVec is a family of counters split by label values, e.g.
// rejections by reason. Obtain children with With; cardinality is
// bounded (children past an internal cap fold into one "_other"
// series). Methods on a nil *CounterVec are no-ops.
type CounterVec struct {
	fam *family
}

// CounterVec returns the labeled counter family registered under name
// with the given label names, creating it on first use.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.lookup(name, help, kindCounter, labels, nil, nil)
	if f == nil {
		return nil
	}
	return &CounterVec{fam: f}
}

// With returns the child counter at the given label values (in the
// label-name order given at registration). A value count that does
// not match the label count is normalized — missing values become
// "_invalid", extras are dropped — so misuse cannot panic.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	values = normalizeValues(len(v.fam.labels), values)
	key := renderLabels(v.fam.labels, values)
	return v.fam.child(key, func() any { return new(Counter) }).(*Counter)
}

// normalizeValues pads (with "_invalid") or truncates values to n.
func normalizeValues(n int, values []string) []string {
	if len(values) == n {
		return values
	}
	out := make([]string, n)
	for i := range out {
		if i < len(values) {
			out[i] = values[i]
		} else {
			out[i] = "_invalid"
		}
	}
	return out
}

// CounterFunc registers a callback counter: the value is read at
// encoding time, so a subsystem that already maintains its own atomic
// counters (the front cache) exposes them without double accounting.
// The first registration under a name wins; later ones are ignored.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.lookup(name, help, kindCounterFunc, nil, nil, fn)
}

// GaugeFunc registers a callback gauge, read at encoding time.
// The first registration under a name wins; later ones are ignored.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.lookup(name, help, kindGaugeFunc, nil, nil, fn)
}

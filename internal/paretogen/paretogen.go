// Package paretogen generates approximate Pareto fronts for
// P | p_j, s_j | Cmax, Mmax by sweeping the ∆ parameter of the paper's
// algorithms. Section 6 discusses the Pareto-set-approximation
// alternative to absolute approximation and notes that "all algorithms
// we provide can be tuned using the ∆ parameter"; this package makes
// that remark concrete:
//
//   - every SBO∆ schedule is ((1+∆)ρ, (1+1/∆)ρ)-approximate, so the
//     schedules produced by a geometric ∆ grid form a ρ·(1+ε)-
//     approximate Pareto set in the sense of Papadimitriou–Yannakakis
//     (every feasible point is dominated, within the factor pair, by
//     some returned point: pick ∆ so that (1+∆, 1+1/∆) brackets the
//     target's slope; grid granularity contributes the (1+ε));
//   - RLS∆ sweeps and the constrained binary search add further
//     non-dominated candidates that are often much better than the
//     guarantee.
//
// The result is a set of concrete schedules with per-point provenance,
// filtered to the non-dominated subset.
package paretogen

import (
	"fmt"
	"math"
	"sort"

	"storagesched/internal/core"
	"storagesched/internal/makespan"
	"storagesched/internal/model"
)

// Point is one generated schedule with its objective value and the
// configuration that produced it.
type Point struct {
	Value      model.Value
	Assignment model.Assignment

	// Source identifies the generating algorithm ("SBO", "RLS",
	// "constrained").
	Source string
	// Delta is the parameter value used (0 for constrained probes).
	Delta float64
}

// Options shape the sweep.
type Options struct {
	// DeltaMin, DeltaMax bound the geometric ∆ grid for SBO
	// (defaults 1/32 and 32).
	DeltaMin, DeltaMax float64
	// Steps is the number of grid points per sweep (default 24).
	Steps int
	// Algorithm is the SBO sub-algorithm (default LPT).
	Algorithm makespan.Algorithm
	// IncludeRLS adds RLS∆ sweep points (∆ over [2, DeltaMax] when
	// DeltaMax > 2), SPT tie-break.
	IncludeRLS bool
	// ConstrainedProbes, when positive, refines the front with that
	// many memory-budget probes between the extremes (each solved by
	// the Section 7 search).
	ConstrainedProbes int
}

func (o *Options) fill() {
	if o.DeltaMin <= 0 {
		o.DeltaMin = 1.0 / 32
	}
	if o.DeltaMax < o.DeltaMin {
		o.DeltaMax = 32
	}
	if o.Steps <= 0 {
		o.Steps = 24
	}
	if o.Algorithm == nil {
		o.Algorithm = makespan.LPT{}
	}
}

// Generate sweeps the parameter space and returns the non-dominated
// set of schedules found, sorted by increasing Cmax.
func Generate(in *model.Instance, opts Options) ([]Point, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	opts.fill()

	var candidates []Point

	// SBO sweep over a geometric ∆ grid.
	ratio := math.Pow(opts.DeltaMax/opts.DeltaMin, 1/float64(opts.Steps))
	for d := opts.DeltaMin; d <= opts.DeltaMax*(1+1e-12); d *= ratio {
		res, err := core.SBO(in, d, opts.Algorithm, opts.Algorithm)
		if err != nil {
			return nil, fmt.Errorf("paretogen: SBO at delta=%g: %w", d, err)
		}
		candidates = append(candidates, Point{
			Value:      model.Value{Cmax: res.Cmax, Mmax: res.Mmax},
			Assignment: res.Assignment,
			Source:     "SBO",
			Delta:      d,
		})
	}

	// RLS sweep (memory-capped greedy often lands on distinct
	// tradeoff points, especially under pressure).
	if opts.IncludeRLS {
		for _, d := range rlsGrid(opts) {
			res, err := core.RLSIndependent(in, d, core.TieSPT)
			if err != nil {
				return nil, fmt.Errorf("paretogen: RLS at delta=%g: %w", d, err)
			}
			candidates = append(candidates, Point{
				Value:      model.Value{Cmax: res.Cmax, Mmax: res.Mmax},
				Assignment: res.Schedule.Assignment(),
				Source:     "RLS",
				Delta:      d,
			})
		}
	}

	// Constrained probes between the extreme memory values found so
	// far: ask the Section 7 solver for the best Cmax under budgets
	// interpolating the current front's memory range.
	if opts.ConstrainedProbes > 0 && len(candidates) > 0 {
		lo, hi := memRange(candidates)
		for i := 0; i < opts.ConstrainedProbes; i++ {
			frac := float64(i+1) / float64(opts.ConstrainedProbes+1)
			budget := lo + model.Mem(frac*float64(hi-lo))
			a, v, err := core.ConstrainedIndependent(in, budget)
			if err != nil {
				continue // infeasible/uncertified probes just skip
			}
			candidates = append(candidates, Point{
				Value:      v,
				Assignment: a,
				Source:     "constrained",
			})
		}
	}

	return Filter(candidates), nil
}

func rlsGrid(opts Options) []float64 {
	hi := opts.DeltaMax
	if hi < 2 {
		return nil
	}
	grid := []float64{2}
	steps := opts.Steps / 2
	if steps < 1 {
		steps = 1
	}
	ratio := math.Pow(hi/2, 1/float64(steps))
	if ratio <= 1 {
		return grid
	}
	for d := 2 * ratio; d <= hi*(1+1e-12); d *= ratio {
		grid = append(grid, d)
	}
	return grid
}

func memRange(pts []Point) (lo, hi model.Mem) {
	lo, hi = pts[0].Value.Mmax, pts[0].Value.Mmax
	for _, p := range pts[1:] {
		if p.Value.Mmax < lo {
			lo = p.Value.Mmax
		}
		if p.Value.Mmax > hi {
			hi = p.Value.Mmax
		}
	}
	return lo, hi
}

// Filter returns the non-dominated subset (one point per distinct
// value, first occurrence wins), sorted by increasing Cmax.
func Filter(pts []Point) []Point {
	var out []Point
	for _, p := range pts {
		dominated := false
		for _, q := range pts {
			if q.Value != p.Value && q.Value.WeaklyDominates(p.Value) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		dup := false
		for _, o := range out {
			if o.Value == p.Value {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Value.Cmax < out[b].Value.Cmax })
	return out
}

// Values extracts the objective values of a generated front.
func Values(pts []Point) []model.Value {
	vs := make([]model.Value, len(pts))
	for i, p := range pts {
		vs[i] = p.Value
	}
	return vs
}

// EpsilonIndicator measures approximation quality against a reference
// front: the smallest ε such that for every reference value r some
// generated value g satisfies g.Cmax ≤ (1+ε)·r.Cmax and
// g.Mmax ≤ (1+ε)·r.Mmax. Zero means the generated set weakly
// dominates the whole reference front.
func EpsilonIndicator(generated, reference []model.Value) float64 {
	if len(reference) == 0 {
		return 0
	}
	if len(generated) == 0 {
		return math.Inf(1)
	}
	worst := 0.0
	for _, r := range reference {
		best := math.Inf(1)
		for _, g := range generated {
			e := 0.0
			if r.Cmax > 0 {
				e = math.Max(e, float64(g.Cmax)/float64(r.Cmax)-1)
			} else if g.Cmax > 0 {
				e = math.Inf(1)
			}
			if r.Mmax > 0 {
				e = math.Max(e, float64(g.Mmax)/float64(r.Mmax)-1)
			} else if g.Mmax > 0 {
				e = math.Inf(1)
			}
			best = math.Min(best, e)
		}
		worst = math.Max(worst, best)
	}
	return worst
}

// Hypervolume returns the area of the objective-space region dominated
// by the front, relative to a reference (nadir) point. Larger is
// better; used to compare sweep configurations.
func Hypervolume(front []model.Value, refC model.Time, refM model.Mem) float64 {
	pts := append([]model.Value(nil), front...)
	sort.Slice(pts, func(a, b int) bool { return pts[a].Cmax < pts[b].Cmax })
	area := 0.0
	prevM := refM
	for _, p := range pts {
		if p.Cmax > refC || p.Mmax > refM {
			continue
		}
		if p.Mmax < prevM {
			area += float64(refC-p.Cmax) * float64(prevM-p.Mmax)
			prevM = p.Mmax
		}
	}
	return area
}

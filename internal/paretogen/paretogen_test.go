package paretogen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"storagesched/internal/gen"
	"storagesched/internal/model"
	"storagesched/internal/pareto"
)

func TestGenerateBasics(t *testing.T) {
	in := gen.Anticorrelated(30, 4, 3)
	pts, err := Generate(in, Options{IncludeRLS: true, ConstrainedProbes: 4})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(pts) == 0 {
		t.Fatal("empty front")
	}
	// Sorted by Cmax, strictly trading off.
	for i := 1; i < len(pts); i++ {
		if pts[i].Value.Cmax <= pts[i-1].Value.Cmax {
			t.Errorf("front not sorted at %d", i)
		}
		if pts[i].Value.Mmax >= pts[i-1].Value.Mmax {
			t.Errorf("front not trading off at %d", i)
		}
	}
	// Witnesses achieve their stated values.
	for _, p := range pts {
		if got := in.Eval(p.Assignment); got != p.Value {
			t.Errorf("witness value %v != stated %v (source %s)", got, p.Value, p.Source)
		}
		if p.Source == "" {
			t.Error("missing provenance")
		}
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	bad := &model.Instance{M: 0}
	if _, err := Generate(bad, Options{}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestFilter(t *testing.T) {
	pts := []Point{
		{Value: model.Value{Cmax: 1, Mmax: 5}},
		{Value: model.Value{Cmax: 2, Mmax: 5}}, // dominated
		{Value: model.Value{Cmax: 2, Mmax: 3}},
		{Value: model.Value{Cmax: 2, Mmax: 3}}, // duplicate
		{Value: model.Value{Cmax: 4, Mmax: 1}},
	}
	got := Filter(pts)
	if len(got) != 3 {
		t.Fatalf("filtered to %d points, want 3", len(got))
	}
}

func TestEpsilonIndicator(t *testing.T) {
	ref := []model.Value{{Cmax: 10, Mmax: 20}, {Cmax: 20, Mmax: 10}}
	// The reference itself: epsilon 0.
	if e := EpsilonIndicator(ref, ref); e != 0 {
		t.Errorf("self indicator = %g, want 0", e)
	}
	// 10% worse everywhere.
	gend := []model.Value{{Cmax: 11, Mmax: 22}, {Cmax: 22, Mmax: 11}}
	if e := EpsilonIndicator(gend, ref); math.Abs(e-0.1) > 1e-9 {
		t.Errorf("indicator = %g, want 0.1", e)
	}
	// Empty generated set.
	if e := EpsilonIndicator(nil, ref); !math.IsInf(e, 1) {
		t.Errorf("empty generated: %g, want +Inf", e)
	}
	// Empty reference: trivially zero.
	if e := EpsilonIndicator(gend, nil); e != 0 {
		t.Errorf("empty reference: %g, want 0", e)
	}
}

func TestHypervolume(t *testing.T) {
	front := []model.Value{{Cmax: 1, Mmax: 3}, {Cmax: 2, Mmax: 1}}
	// Reference (4, 4): point (1,3) adds (4-1)*(4-3)=3; point (2,1)
	// adds (4-2)*(3-1)=4. Total 7.
	if hv := Hypervolume(front, 4, 4); hv != 7 {
		t.Errorf("hypervolume = %g, want 7", hv)
	}
	// Points beyond the reference contribute nothing.
	if hv := Hypervolume([]model.Value{{Cmax: 9, Mmax: 9}}, 4, 4); hv != 0 {
		t.Errorf("out-of-range hypervolume = %g, want 0", hv)
	}
}

// On small instances the generated front must be within a modest
// epsilon of the exact front: the guarantee form predicts at most
// rho*(grid factor) − 1 with LPT, so 0.75 is a loose envelope.
func TestGeneratedFrontNearExactSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 12; trial++ {
		in := randomInstance(rng, 10, 3)
		exact, err := pareto.Front(in)
		if err != nil {
			t.Fatalf("exact front: %v", err)
		}
		approx, err := Generate(in, Options{IncludeRLS: true, ConstrainedProbes: 6, Steps: 32})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		e := EpsilonIndicator(Values(approx), pareto.Values(exact))
		if e > 0.75 {
			t.Errorf("trial %d: epsilon indicator %.3f too large (exact %v vs approx %v)",
				trial, e, pareto.Values(exact), Values(approx))
		}
	}
}

func randomInstance(rng *rand.Rand, maxN, maxM int) *model.Instance {
	n := 4 + rng.Intn(maxN-3)
	m := 2 + rng.Intn(maxM-1)
	p := make([]model.Time, n)
	s := make([]model.Mem, n)
	for i := 0; i < n; i++ {
		p[i] = rng.Int63n(40) + 1
		s[i] = rng.Int63n(40) + 1
	}
	return model.NewInstance(m, p, s)
}

// No generated point is dominated by any other candidate the sweep
// produced (Filter contract) and none beats the exact front.
func TestPropertyGeneratedPointsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 9, 3)
		approx, err := Generate(in, Options{Steps: 12, IncludeRLS: true})
		if err != nil {
			return false
		}
		exact, err := pareto.Front(in)
		if err != nil {
			return false
		}
		for _, g := range approx {
			for _, e := range exact {
				if g.Value.Dominates(e.Value) {
					return false // impossible: exact front is optimal
				}
			}
		}
		// Antichain check.
		for i := range approx {
			for j := range approx {
				if i != j && approx[i].Value.WeaklyDominates(approx[j].Value) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

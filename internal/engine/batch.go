package engine

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"sync"
	"sync/atomic"

	"storagesched/internal/bounds"
	"storagesched/internal/cache"
	"storagesched/internal/core"
	"storagesched/internal/dag"
	"storagesched/internal/makespan"
	"storagesched/internal/model"
)

// BatchItem is one work item of a batch sweep — an independent-task
// instance or a task DAG, with an optional per-item configuration
// override. Exactly one of Instance and Graph must be set.
type BatchItem struct {
	// Instance is the independent-task instance to sweep.
	Instance *model.Instance

	// Graph is the task DAG to sweep. Graph sweeps run the RLS family
	// only (SBO is defined on independent tasks), so the item's
	// effective grid needs at least one δ ≥ 2 and must not set
	// SkipRLS.
	Graph *dag.Graph

	// Override, when non-nil, replaces the batch-wide base Config for
	// this instance only (its Workers field is ignored — the worker
	// pool is shared by the whole batch).
	Override *Config

	// Err, when non-nil, marks the item as failed at the source (for
	// example a file that did not parse): the instance is not swept
	// and its BatchResult carries this error. Streaming producers use
	// it to report per-item read errors without aborting the batch.
	Err error

	// Tag is opaque per-item context (a filename, a seed, a family
	// label) echoed verbatim on the item's BatchResult. The item
	// sequence is consumed from the batch's producer goroutine, so a
	// tag is the race-free way to hand the consumer side per-item
	// metadata.
	Tag any
}

// BatchOf adapts a slice of instances to the item sequence SweepBatch
// consumes, with no per-instance overrides.
func BatchOf(instances ...*model.Instance) iter.Seq[BatchItem] {
	return func(yield func(BatchItem) bool) {
		for _, in := range instances {
			if !yield(BatchItem{Instance: in}) {
				return
			}
		}
	}
}

// BatchOfGraphs adapts a slice of task DAGs to the item sequence
// SweepBatch consumes, with no per-graph overrides.
func BatchOfGraphs(graphs ...*dag.Graph) iter.Seq[BatchItem] {
	return func(yield func(BatchItem) bool) {
		for _, g := range graphs {
			if !yield(BatchItem{Graph: g}) {
				return
			}
		}
	}
}

// BatchOfItems adapts prepared batch items — mixed kinds, overrides
// and tags intact — to the sequence SweepBatch consumes, yielding
// them in slice order. Unlike a streaming producer, the slice can be
// replayed, which is what the adaptive refinement pipeline's second
// pass needs.
func BatchOfItems(items ...BatchItem) iter.Seq[BatchItem] {
	return func(yield func(BatchItem) bool) {
		for _, item := range items {
			if !yield(item) {
				return
			}
		}
	}
}

// BatchConfig parameterizes SweepBatch. The embedded Config is the
// default sweep configuration of every instance (items may override it
// individually); its Workers field sizes the one pool shared by the
// whole batch.
type BatchConfig struct {
	Config

	// MaxPending bounds how many instances may be in flight — admitted
	// to the pool but not yet emitted — at once, which bounds the
	// batch's memory to O(MaxPending × runs per instance) however many
	// instances the sequence yields. 0 means 2× the worker count, so
	// the pool stays fed across instance boundaries.
	MaxPending int

	// Pool, when non-nil, is a resident worker pool (NewPool) shared
	// with other batches: this batch's jobs are submitted to it instead
	// of a private per-call pool, and the batch's effective worker
	// count is the pool's size (the Config.Workers field is ignored).
	// Output is byte-identical either way; what changes is that jobs of
	// concurrent batches interleave in one pool, so a long-running
	// service keeps its workers — and their warm scratch buffers —
	// across requests.
	Pool *Pool

	// Metrics, when non-nil, is the engine instrument bundle
	// (NewMetrics) the batch's jobs update as they queue, start and
	// finish. Instrumentation observes the job flow without touching
	// results: output bytes are identical with metrics on or off.
	Metrics *Metrics

	// Cache, when non-nil, is the content-addressed front cache the
	// batch consults at admission and writes back at emission: an item
	// whose key (canonical bytes + config fingerprint) is present skips
	// job generation entirely and its cached Result streams out in the
	// usual order. Cached Results reproduce the front artifacts exactly
	// — Bounds, every Run's provenance, objective value and error, and
	// the Front — but carry nil per-run witness payloads (Assignment,
	// SBO, RLS), which are too large to cache profitably; sweep summary
	// output is byte-identical either way, and BatchResult.CacheHit
	// tells the cases apart. A corrupt or undecodable entry is a miss —
	// the item is computed and the entry overwritten. The cache may be
	// shared across batches, goroutines and (via its disk tier) shard
	// processes.
	Cache *cache.Cache
}

// BatchResult is one instance's outcome. Results are delivered in
// instance order regardless of which workers ran the jobs.
type BatchResult struct {
	// Index is the zero-based position of the instance in the input
	// sequence.
	Index int

	// Result is the instance's sweep outcome, exactly what Sweep would
	// have returned for the same instance and config. Nil when Err is
	// non-nil.
	Result *Result

	// Err is a per-instance failure (an invalid instance or override,
	// or a source error carried by the item); the batch continues past
	// it to the remaining instances.
	Err error

	// Tag is the item's Tag, echoed verbatim.
	Tag any

	// CacheHit reports that Result was served from BatchConfig.Cache
	// instead of being computed.
	CacheHit bool
}

// batchJob is one (instance, grid point) evaluation in the shared pool.
type batchJob struct {
	st  *batchState
	idx int
}

// batchState is the in-flight record of one item: its effective
// config, deterministic job list, memoized prepared state (computed
// exactly once, by the first worker to touch the item) and the runs
// landing at their job indexes. Exactly one of in and g is non-nil for
// a sweepable item.
type batchState struct {
	index int
	in    *model.Instance
	g     *dag.Graph
	tag   any
	cfg   Config
	ctx   context.Context
	jobs  []job
	runs  []Run

	prepOnce  sync.Once
	prepSBO   *core.SBOPrepared
	prepRLS   *core.RLSPrepared
	prepGraph *core.RLSGraphPrepared
	bounds    bounds.Record
	err       error

	// cached is the decoded Result of a cache hit (the item ran no
	// jobs); key/writeBack route a computed Result back into the cache
	// at emission.
	cached    *Result
	key       cache.Key
	writeBack bool

	// met is the batch's instrument bundle (nil when uninstrumented);
	// prepared flags the memoized state as built, so later jobs of the
	// item count as memo hits.
	met      *Metrics
	prepared atomic.Bool

	remaining atomic.Int64
	skipped   atomic.Bool
	done      chan struct{}
}

// doPrepare runs prepare and flags the memoized state as built; it is
// the body handed to prepOnce.
func (st *batchState) doPrepare() {
	st.prepare()
	st.prepared.Store(true)
}

// prepare memoizes the per-item state shared by every run — for
// instances the SBO sub-schedules π1/π2, the RLS tie-break orders and
// the lower-bound record; for graphs the topological structure, tie
// ranks and the bounds.ForGraph record. It runs exactly once per item,
// inside the worker pool, so preparation of one item overlaps
// evaluation of another.
func (st *batchState) prepare() {
	if st.g != nil {
		ties := st.cfg.Ties
		if ties == nil {
			ties = DefaultTies
		}
		if st.prepGraph, st.err = core.PrepareRLS(st.g, ties...); st.err != nil {
			return
		}
		st.bounds, st.err = bounds.ForGraph(st.g)
		return
	}
	if !st.cfg.SkipSBO {
		algC, algM := st.cfg.AlgC, st.cfg.AlgM
		if algC == nil {
			algC = makespan.LPT{}
		}
		if algM == nil {
			algM = makespan.LPT{}
		}
		if st.prepSBO, st.err = core.PrepareSBO(st.in, algC, algM); st.err != nil {
			return
		}
	}
	if hasRLS(st.jobs) {
		ties := st.cfg.Ties
		if ties == nil {
			ties = DefaultTies
		}
		if st.prepRLS, st.err = core.PrepareRLSIndependent(st.in, ties...); st.err != nil {
			return
		}
	}
	st.bounds = bounds.ForInstance(st.in)
}

// executeJob runs one job of this item against the memoized prepared
// state, dispatching on the item kind. scr is the worker's reusable
// scratch, shared across every job the worker executes.
func (st *batchState) executeJob(idx int, scr *core.Scratch) Run {
	j := st.jobs[idx]
	if st.g == nil {
		return execute(j, st.prepSBO, st.prepRLS, scr)
	}
	run := Run{Algorithm: j.alg, Tie: j.tie, Delta: j.delta}
	res, err := st.prepGraph.RunScratch(j.delta, j.tie, scr)
	if err != nil {
		run.Err = err
		return run
	}
	run.RLS = res
	run.Value = model.Value{Cmax: res.Cmax, Mmax: res.Mmax}
	run.Assignment = res.Schedule.Assignment()
	return run
}

// run executes one job of a batch against its item's memoized
// prepared state, or skips it when the item's batch was cancelled.
// It is the body shared by per-call workers and resident Pool workers;
// scr is the executing worker's reusable scratch.
func (bj batchJob) run(scr *core.Scratch) {
	st := bj.st
	st.met.jobDequeued()
	select {
	case <-st.ctx.Done():
		// Count the job down but mark the instance skipped so a
		// partial result is never emitted.
		st.skipped.Store(true)
	default:
		already := st.prepared.Load()
		st.prepOnce.Do(st.doPrepare)
		if already {
			st.met.memoHit()
		}
		if st.err == nil {
			t0 := st.met.jobStart()
			st.runs[bj.idx] = st.executeJob(bj.idx, scr)
			st.met.jobEnd(t0)
		}
		if testHookAfterRun != nil {
			testHookAfterRun()
		}
	}
	if st.remaining.Add(-1) == 0 {
		close(st.done)
	}
}

// SweepBatch sweeps every instance of items through one shared worker
// pool and streams each instance's Result — identical to what Sweep
// would return for it — to emit, in instance order, as soon as it
// completes. emit is called sequentially from the calling goroutine;
// returning a non-nil error from it aborts the batch and SweepBatch
// returns that error.
//
// Jobs from different instances interleave freely in the pool, so the
// workers never idle at instance boundaries the way back-to-back Sweep
// calls do, and per-instance state is prepared exactly once, inside
// the pool. At most MaxPending instances are held in memory at a time:
// fronts for thousands of instances stream through in bounded space.
//
// A per-instance failure (invalid instance, invalid override, or an
// item's source error) is delivered as BatchResult.Err and the batch
// continues. On context cancellation the remaining jobs are abandoned
// and SweepBatch returns ctx.Err().
//
// items is consumed from the batch's producer goroutine, concurrently
// with emit: a sequence that shares mutable state with the caller must
// synchronize, or carry per-item context in BatchItem.Tag instead.
func SweepBatch(ctx context.Context, items iter.Seq[BatchItem], cfg BatchConfig, emit func(BatchResult) error) error {
	if items == nil {
		return fmt.Errorf("engine: nil batch item sequence")
	}
	if emit == nil {
		return fmt.Errorf("engine: nil emit callback")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	// A shared resident pool supplies both the job channel and the
	// effective worker count; otherwise the batch runs its own workers
	// over a private channel, torn down when the batch drains.
	shared := cfg.Pool != nil
	jobCh := make(chan batchJob)
	if shared {
		workers = cfg.Pool.Workers()
		jobCh = cfg.Pool.jobs
	}
	pending := cfg.MaxPending
	if pending <= 0 {
		pending = 2 * workers
	}

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	order := make(chan *batchState, pending)
	admit := make(chan struct{}, pending)

	// Producer: admit instances in input order, lay out their
	// deterministic job lists and feed the shared pool. The admit
	// semaphore (released by the emitter loop below) keeps at most
	// `pending` instances in flight. Only a private job channel is
	// closed here — a resident pool outlives the batch.
	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		defer close(order)
		if !shared {
			defer close(jobCh)
		}
		index := 0
		for item := range items {
			st := &batchState{index: index, in: item.Instance, g: item.Graph, tag: item.Tag, ctx: pctx, met: cfg.Metrics, done: make(chan struct{})}
			index++
			eff := cfg.Config
			if item.Override != nil {
				eff = *item.Override
			}
			eff.Workers = workers
			st.cfg = eff
			switch {
			case item.Err != nil:
				st.err = item.Err
				close(st.done)
			case item.Instance == nil && item.Graph == nil:
				st.err = fmt.Errorf("engine: batch item %d has neither instance nor graph", st.index)
				close(st.done)
			case item.Instance != nil && item.Graph != nil:
				st.err = fmt.Errorf("engine: batch item %d has both instance and graph", st.index)
				close(st.done)
			default:
				jobs, err := buildJobs(eff, item.Graph != nil)
				if err != nil {
					st.err = err
					close(st.done)
					break
				}
				// Admission consults the cache before job generation: a
				// decodable hit makes the item jobless and its Result
				// streams out in the usual order. A miss (or a corrupt
				// entry) records the key for write-back at emission.
				if cfg.Cache != nil {
					st.key = itemKey(st)
					if data, ok := cfg.Cache.Get(st.key); ok {
						if res, derr := decodeResult(data); derr == nil {
							st.cached = res
							close(st.done)
							break
						}
					}
					st.writeBack = true
				}
				st.jobs = jobs
				st.runs = make([]Run, len(jobs))
				st.remaining.Store(int64(len(jobs)))
			}
			select {
			case admit <- struct{}{}:
			case <-pctx.Done():
				return
			}
			select {
			case order <- st:
			case <-pctx.Done():
				return
			}
			for i := range st.jobs {
				st.met.jobQueued()
				select {
				case jobCh <- batchJob{st: st, idx: i}:
				case <-pctx.Done():
					st.met.jobUnqueued()
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	if !shared {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// One scratch per worker: the solver loops' per-processor
				// and ready-set buffers are reused across every job this
				// worker runs, so a warm batch allocates only results.
				scr := core.NewScratch()
				for bj := range jobCh {
					bj.run(scr)
				}
			}()
		}
	}

	// Emit completed instances in admission order. A state whose jobs
	// were skipped (or never all enqueued) only occurs under
	// cancellation, which ctx.Err() reports below.
	var emitErr error
emitting:
	for st := range order {
		select {
		case <-st.done:
		case <-pctx.Done():
			// A completed instance takes precedence over simultaneous
			// cancellation so a fully swept front is never dropped.
			select {
			case <-st.done:
			default:
				break emitting
			}
		}
		if st.skipped.Load() {
			break emitting
		}
		br := BatchResult{Index: st.index, Err: st.err, Tag: st.tag}
		switch {
		case st.cached != nil:
			br.Result = st.cached
			br.CacheHit = true
		case st.err == nil:
			br.Result = &Result{Bounds: st.bounds, Runs: st.runs, Front: AssembleFront(st.runs)}
			if st.writeBack {
				if data, eerr := encodeResult(br.Result); eerr == nil {
					cfg.Cache.Put(st.key, data)
				}
			}
		}
		// Drop the prepared state before emitting: only the Result —
		// now owned by the caller — outlives this iteration.
		st.prepSBO, st.prepRLS, st.prepGraph = nil, nil, nil
		if err := emit(br); err != nil {
			emitErr = err
			break
		}
		<-admit
	}
	// Join the producer before returning: a cancelled select unblocks it,
	// and once SweepBatch has returned no goroutine of this batch can
	// still be submitting to a shared pool — the guarantee Pool.Close's
	// quiesce-first contract rests on. Private workers then drain their
	// closed channel and exit; jobs of this batch still queued on a
	// shared pool see the cancelled context and skip, counting themselves
	// down without touching emitted state.
	cancel()
	<-prodDone
	wg.Wait()
	if emitErr != nil {
		return emitErr
	}
	return ctx.Err()
}

// Package engine runs parallel δ-sweeps of the paper's bi-objective
// algorithms and assembles approximate Pareto fronts.
//
// The headline artifact of Saule, Dutot and Mounié is a family of
// (1+δ, 1+1/δ)-approximate schedules parameterized by δ; sweeping δ
// over a grid and keeping the non-dominated (Cmax, Mmax) outcomes
// yields an approximate Pareto front for instances far beyond the
// reach of the exact enumerator (internal/pareto caps at 24 tasks).
// This package is that sweep engine:
//
//   - every (algorithm, δ) pair on the grid is an independent job,
//     executed by a pool of Config.Workers goroutines (default
//     runtime.NumCPU());
//   - per-instance quantities — validation, the Graham lower bounds,
//     the SBO sub-schedules π1/π2 and the RLS tie-break orders — are
//     memoized once per sweep (core.SBOPrepared, core.RLSPrepared)
//     instead of being recomputed once per run;
//   - results land at their job's index, so Result.Runs and the front
//     are deterministic regardless of goroutine interleaving;
//   - the sweep honours context cancellation between jobs.
//
// SweepBatch generalizes the engine to many work items: all (item,
// algorithm, δ) jobs share one worker pool, per-item prepared state is
// still memoized exactly once, and per-item Results stream to a
// callback in item order with at most BatchConfig.MaxPending items
// held in memory — fronts for thousands of items never accumulate.
// Items are independent-task instances or precedence-constrained task
// DAGs (Section 5): graph items run the RLS tie-breaks against
// core.PrepareRLS's memoized topological state, with the lower-bound
// record memoized via bounds.ForGraph, and both kinds mix freely in
// one stream. Sweep and SweepGraph are the single-item special cases.
package engine

import (
	"context"
	"fmt"
	"iter"
	"math"
	"sort"

	"storagesched/internal/bounds"
	"storagesched/internal/core"
	"storagesched/internal/dag"
	"storagesched/internal/makespan"
	"storagesched/internal/model"
)

// Algorithm identifies which algorithm family produced a sweep run.
type Algorithm int

const (
	// AlgSBO is Algorithm 1 (independent tasks, Section 3).
	AlgSBO Algorithm = iota
	// AlgRLS is the Section 5.2 independent-task variant of
	// Algorithm 2, one run per configured tie-break.
	AlgRLS
)

// String implements fmt.Stringer for tables and provenance labels.
func (a Algorithm) String() string {
	switch a {
	case AlgSBO:
		return "SBO"
	case AlgRLS:
		return "RLS"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// DefaultTies is the RLS tie-break set swept when Config.Ties is nil.
var DefaultTies = []core.TieBreak{core.TieByID, core.TieSPT, core.TieLPT, core.TieBottomLevel}

// Config parameterizes one sweep.
type Config struct {
	// Deltas is the δ-grid. Required non-empty; every entry must be
	// finite and > 0. RLS runs are generated only for entries ≥ 2
	// (Lemma 4 gives no guarantee below that, and the algorithm
	// rejects such δ); SBO covers the full grid.
	Deltas []float64

	// Workers bounds the number of concurrent evaluations; 0 or
	// negative means runtime.NumCPU().
	Workers int

	// AlgC and AlgM are the SBO sub-algorithms for the makespan and
	// memory schedules; nil defaults to LPT (the experiments'
	// workhorse configuration).
	AlgC, AlgM makespan.Algorithm

	// Ties selects the RLS tie-breaks to sweep; nil means DefaultTies.
	Ties []core.TieBreak

	// SkipSBO / SkipRLS exclude an algorithm family from the sweep.
	SkipSBO bool
	SkipRLS bool
}

// Run is one algorithm evaluation at one grid point. Runs appear in
// Result.Runs in grid-major order (all algorithms at Deltas[0], then
// Deltas[1], ...) with SBO before the RLS tie-breaks at each δ —
// independent of which worker executed them.
type Run struct {
	Algorithm Algorithm
	// Tie is the RLS tie-break; meaningful only when Algorithm is
	// AlgRLS.
	Tie   core.TieBreak
	Delta float64

	// Value is the achieved (Cmax, Mmax) point and Assignment its
	// witness. Unset when Err is non-nil.
	Value      model.Value
	Assignment model.Assignment

	// SBO / RLS retain the full per-run analysis record of the
	// algorithm that ran (exactly one is non-nil on success).
	SBO *core.SBOResult
	RLS *core.RLSResult

	// Err is a per-run failure (for example ErrCapTooSmall from a
	// constrained variant); the sweep continues past it and the run
	// is excluded from the front.
	Err error
}

// Label renders a short provenance tag such as "SBO(δ=1)" or
// "RLS(δ=3,SPT)".
func (r Run) Label() string {
	if r.Algorithm == AlgRLS {
		return fmt.Sprintf("RLS(δ=%.4g,%s)", r.Delta, r.Tie)
	}
	return fmt.Sprintf("SBO(δ=%.4g)", r.Delta)
}

// FrontPoint is one point of the assembled approximate Pareto front
// with the index (into Result.Runs) of the run that achieved it. When
// several runs achieve the same value, the lowest index wins, keeping
// the witness deterministic.
type FrontPoint struct {
	Value    model.Value
	RunIndex int
}

// Result is the outcome of one sweep.
type Result struct {
	// Bounds is the per-instance lower-bound record, computed once
	// and shared by every run of the sweep.
	Bounds bounds.Record

	// Runs holds every evaluation in deterministic job order.
	Runs []Run

	// Front is the non-dominated hull of the successful runs'
	// values, sorted by increasing Cmax (hence decreasing Mmax).
	Front []FrontPoint
}

// FrontValues extracts just the objective values of the front.
func (res *Result) FrontValues() []model.Value {
	vs := make([]model.Value, len(res.Front))
	for i, p := range res.Front {
		vs[i] = p.Value
	}
	return vs
}

// LinearGrid returns n evenly spaced δ values covering [lo, hi]. It
// reports an error if lo is not a positive finite number, hi is not a
// finite number ≥ lo, or n < 1 — δ must be positive and the grid
// non-empty.
func LinearGrid(lo, hi float64, n int) ([]float64, error) {
	if err := checkGrid(lo, hi, n); err != nil {
		return nil, err
	}
	if n == 1 {
		return []float64{lo}, nil
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out, nil
}

// GeometricGrid returns n geometrically spaced δ values covering
// [lo, hi] — the natural grid for δ, whose two guarantees trade off as
// (1+δ) against (1+1/δ). It errors on the same conditions as
// LinearGrid.
func GeometricGrid(lo, hi float64, n int) ([]float64, error) {
	if err := checkGrid(lo, hi, n); err != nil {
		return nil, err
	}
	if n == 1 {
		return []float64{lo}, nil
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	out[n-1] = hi
	return out, nil
}

func checkGrid(lo, hi float64, n int) error {
	if !(lo > 0) || !(hi >= lo) || math.IsInf(lo, 1) || math.IsInf(hi, 1) || n < 1 {
		return fmt.Errorf("engine: invalid grid lo=%g hi=%g n=%d (need 0 < lo <= hi finite, n >= 1)", lo, hi, n)
	}
	return nil
}

// testHookAfterRun, when non-nil, is invoked by workers after each
// completed job — tests use it to cancel a sweep mid-flight
// deterministically.
var testHookAfterRun func()

// job is one scheduled evaluation; index is its slot in Result.Runs.
type job struct {
	alg   Algorithm
	tie   core.TieBreak
	delta float64
}

// Sweep evaluates the configured algorithms over the δ-grid with a
// worker pool and assembles the approximate Pareto front. On context
// cancellation it abandons the remaining jobs and returns ctx.Err().
//
// Sweep is the single-instance form of SweepBatch: to sweep many
// instances, batch them — the worker pool is then shared across
// instances, so it never idles at instance boundaries.
func Sweep(ctx context.Context, in *model.Instance, cfg Config) (*Result, error) {
	return sweepOne(ctx, BatchOf(in), cfg)
}

// SweepGraph is the task-DAG form of Sweep: it evaluates the RLS
// tie-breaks over the δ ≥ 2 part of the grid against the prepared
// graph (core.PrepareRLS) and assembles the approximate Pareto front
// from the achieved (Cmax, Mmax) points. The Result's Bounds is the
// memoized bounds.ForGraph record, so front ratios are against the
// critical-path-aware makespan lower bound.
//
// SweepGraph is the single-graph form of SweepBatch: to sweep many
// graphs — or a mix of graphs and instances — batch them.
func SweepGraph(ctx context.Context, g *dag.Graph, cfg Config) (*Result, error) {
	return sweepOne(ctx, BatchOfGraphs(g), cfg)
}

// sweepOne runs a one-item batch and unwraps its Result.
func sweepOne(ctx context.Context, items iter.Seq[BatchItem], cfg Config) (*Result, error) {
	var out *Result
	err := SweepBatch(ctx, items, BatchConfig{Config: cfg}, func(br BatchResult) error {
		if br.Err != nil {
			return br.Err
		}
		out = br.Result
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// buildJobs lays out the deterministic job list: grid-major, SBO then
// the tie-breaks at each δ. Graph items run the RLS family only — SBO
// (Algorithm 1) is defined on independent tasks — so for them the grid
// needs at least one δ ≥ 2 and SkipRLS is an error.
func buildJobs(cfg Config, graph bool) ([]job, error) {
	if len(cfg.Deltas) == 0 {
		return nil, fmt.Errorf("engine: empty delta grid")
	}
	for _, d := range cfg.Deltas {
		if !(d > 0) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("engine: delta = %g, need finite delta > 0", d)
		}
	}
	if graph && cfg.SkipRLS {
		return nil, fmt.Errorf("engine: graph sweeps run only the RLS family, but SkipRLS is set")
	}
	if cfg.SkipSBO && cfg.SkipRLS {
		return nil, fmt.Errorf("engine: both algorithm families skipped")
	}
	ties := cfg.Ties
	if ties == nil {
		ties = DefaultTies
	}
	var jobs []job
	for _, d := range cfg.Deltas {
		if !cfg.SkipSBO && !graph {
			jobs = append(jobs, job{alg: AlgSBO, delta: d})
		}
		if !cfg.SkipRLS && d >= 2 {
			for _, tie := range ties {
				jobs = append(jobs, job{alg: AlgRLS, tie: tie, delta: d})
			}
		}
	}
	if len(jobs) == 0 {
		if graph {
			return nil, fmt.Errorf("engine: graph sweep selects no runs (RLS needs some delta >= 2)")
		}
		return nil, fmt.Errorf("engine: sweep selects no runs (RLS needs some delta >= 2)")
	}
	return jobs, nil
}

func hasRLS(jobs []job) bool {
	for _, j := range jobs {
		if j.alg == AlgRLS {
			return true
		}
	}
	return false
}

// execute runs one job against the memoized per-instance state. scr is
// the calling worker's scratch (nil falls back to the solvers' pool);
// passing it through keeps a warm sweep at O(1) allocations per job.
func execute(j job, prepSBO *core.SBOPrepared, prepRLS *core.RLSPrepared, scr *core.Scratch) Run {
	run := Run{Algorithm: j.alg, Tie: j.tie, Delta: j.delta}
	switch j.alg {
	case AlgSBO:
		res, err := prepSBO.RunScratch(j.delta, scr)
		if err != nil {
			run.Err = err
			return run
		}
		run.SBO = res
		run.Value = model.Value{Cmax: res.Cmax, Mmax: res.Mmax}
		run.Assignment = res.Assignment
	case AlgRLS:
		res, err := prepRLS.RunScratch(j.delta, j.tie, scr)
		if err != nil {
			run.Err = err
			return run
		}
		run.RLS = res
		run.Value = model.Value{Cmax: res.Cmax, Mmax: res.Mmax}
		run.Assignment = res.Schedule.Assignment()
	default:
		run.Err = fmt.Errorf("engine: unknown algorithm %d", int(j.alg))
	}
	return run
}

// AssembleFront keeps the non-dominated values of the successful runs,
// one witness per distinct value (lowest run index), sorted by Cmax.
// It is how every sweep Result derives Front from Runs; refinement
// passes (internal/refine) call it to merge coarse and refined run
// lists into one deduplicated front.
func AssembleFront(runs []Run) []FrontPoint {
	var pts []FrontPoint
	for i, r := range runs {
		if r.Err != nil {
			continue
		}
		pts = append(pts, FrontPoint{Value: r.Value, RunIndex: i})
	}
	var front []FrontPoint
	for _, p := range pts {
		dominated := false
		for _, q := range pts {
			if q.Value != p.Value && q.Value.WeaklyDominates(p.Value) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		dup := false
		for _, o := range front {
			if o.Value == p.Value {
				dup = true
				break
			}
		}
		if !dup {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(a, b int) bool { return front[a].Value.Cmax < front[b].Value.Cmax })
	return front
}

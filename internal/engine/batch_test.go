package engine

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"reflect"
	"runtime"
	"testing"

	"storagesched/internal/core"
	"storagesched/internal/gen"
	"storagesched/internal/model"
)

// batchInstances is a mixed bag of instance families, large enough
// that jobs from several instances coexist in the pool.
func batchInstances() []*model.Instance {
	var ins []*model.Instance
	for seed := int64(1); seed <= 3; seed++ {
		ins = append(ins,
			gen.Uniform(60, 4, seed),
			gen.EmbeddedCode(80, 8, seed),
			gen.GridBatch(50, 4, seed))
	}
	return ins
}

// collectBatch runs SweepBatch over the instances and returns the
// results in emission order.
func collectBatch(t *testing.T, ins []*model.Instance, cfg BatchConfig) []BatchResult {
	t.Helper()
	var got []BatchResult
	err := SweepBatch(context.Background(), BatchOf(ins...), cfg, func(br BatchResult) error {
		got = append(got, br)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestSweepBatchDeterministicAcrossWorkerCounts is the batch analogue
// of the single-instance determinism test: the same instances and grid
// must yield byte-identical per-instance runs and fronts whether the
// shared pool has 1, 4 or NumCPU workers, and each must equal what a
// standalone Sweep produces.
func TestSweepBatchDeterministicAcrossWorkerCounts(t *testing.T) {
	ins := batchInstances()
	grid := testGrid()

	var base []BatchResult
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		got := collectBatch(t, ins, BatchConfig{Config: Config{Deltas: grid, Workers: workers}})
		if len(got) != len(ins) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(ins))
		}
		for i, br := range got {
			if br.Index != i {
				t.Fatalf("workers=%d: result %d has index %d", workers, i, br.Index)
			}
			if br.Err != nil {
				t.Fatalf("workers=%d instance %d: %v", workers, i, br.Err)
			}
		}
		if base == nil {
			base = got
			// The pool-shared batch must agree exactly with one
			// standalone Sweep per instance.
			for i, br := range got {
				solo, err := Sweep(context.Background(), ins[i], Config{Deltas: grid, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(br.Result.Front, solo.Front) {
					t.Errorf("instance %d: batch front %v, standalone %v", i, br.Result.Front, solo.Front)
				}
				if !reflect.DeepEqual(br.Result.Runs, solo.Runs) {
					t.Errorf("instance %d: batch runs differ from standalone Sweep", i)
				}
				if br.Result.Bounds != solo.Bounds {
					t.Errorf("instance %d: bounds %+v, standalone %+v", i, br.Result.Bounds, solo.Bounds)
				}
			}
			continue
		}
		for i := range got {
			if !reflect.DeepEqual(got[i].Result.Front, base[i].Result.Front) {
				t.Errorf("workers=%d instance %d: front %v, want %v",
					workers, i, got[i].Result.Front, base[i].Result.Front)
			}
			if !reflect.DeepEqual(got[i].Result.Runs, base[i].Result.Runs) {
				t.Errorf("workers=%d instance %d: runs differ", workers, i)
			}
		}
	}
}

// TestSweepBatchMaxPendingOne forces the tightest streaming window:
// results must still arrive complete and in order.
func TestSweepBatchMaxPendingOne(t *testing.T) {
	ins := batchInstances()
	got := collectBatch(t, ins, BatchConfig{
		Config:     Config{Deltas: []float64{0.5, 1, 3}, Workers: 3},
		MaxPending: 1,
	})
	if len(got) != len(ins) {
		t.Fatalf("%d results, want %d", len(got), len(ins))
	}
	for i, br := range got {
		if br.Index != i || br.Err != nil || len(br.Result.Front) == 0 {
			t.Fatalf("result %d: index=%d err=%v front=%d", i, br.Index, br.Err, len(br.Result.Front))
		}
	}
}

// TestSweepBatchPerInstanceErrors checks that a bad instance, a nil
// instance, an item-borne source error and a bad override each fail
// alone, in order, without taking down the rest of the batch.
func TestSweepBatchPerInstanceErrors(t *testing.T) {
	good := gen.Uniform(30, 3, 1)
	srcErr := errors.New("unparseable file")
	items := []BatchItem{
		{Instance: good},
		{Instance: model.NewInstance(0, nil, nil)}, // invalid: no processors
		{Instance: nil},
		{Instance: good, Err: srcErr},
		{Instance: good, Override: &Config{}}, // invalid override: empty grid
		{Instance: good},
	}
	seq := func(yield func(BatchItem) bool) {
		for _, it := range items {
			if !yield(it) {
				return
			}
		}
	}
	var got []BatchResult
	err := SweepBatch(context.Background(), seq,
		BatchConfig{Config: Config{Deltas: []float64{1, 3}, Workers: 2}},
		func(br BatchResult) error { got = append(got, br); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("%d results, want %d", len(got), len(items))
	}
	for i, br := range got {
		if br.Index != i {
			t.Errorf("result %d has index %d", i, br.Index)
		}
	}
	if got[0].Err != nil || got[5].Err != nil {
		t.Errorf("good instances failed: %v, %v", got[0].Err, got[5].Err)
	}
	for _, i := range []int{1, 2, 3, 4} {
		if got[i].Err == nil {
			t.Errorf("item %d: expected error, got result %+v", i, got[i].Result)
		}
		if got[i].Result != nil {
			t.Errorf("item %d: non-nil result alongside error", i)
		}
	}
	if !errors.Is(got[3].Err, srcErr) {
		t.Errorf("item 3: error %v does not wrap the source error", got[3].Err)
	}
	if !reflect.DeepEqual(got[0].Result.Front, got[5].Result.Front) {
		t.Errorf("identical instances produced different fronts")
	}
}

// TestSweepBatchTagsEchoed checks item tags travel to their results —
// including on per-item failures — so streaming producers can label
// outputs without sharing state across the producer goroutine.
func TestSweepBatchTagsEchoed(t *testing.T) {
	items := []BatchItem{
		{Instance: gen.Uniform(10, 2, 1), Tag: "alpha"},
		{Err: errors.New("bad source"), Tag: "beta"},
		{Instance: gen.Uniform(10, 2, 2)}, // no tag
	}
	seq := func(yield func(BatchItem) bool) {
		for _, it := range items {
			if !yield(it) {
				return
			}
		}
	}
	var tags []any
	err := SweepBatch(context.Background(), seq,
		BatchConfig{Config: Config{Deltas: []float64{1}, SkipRLS: true}},
		func(br BatchResult) error { tags = append(tags, br.Tag); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tags, []any{"alpha", "beta", nil}) {
		t.Errorf("tags = %v", tags)
	}
}

// TestSweepBatchOverrides checks per-item Config overrides take effect
// and match a standalone Sweep with the same config.
func TestSweepBatchOverrides(t *testing.T) {
	in := gen.Uniform(40, 4, 2)
	full := Config{Deltas: []float64{1, 3}}
	sboOnly := Config{Deltas: []float64{1, 3}, SkipRLS: true}
	items := []BatchItem{
		{Instance: in},
		{Instance: in, Override: &sboOnly},
	}
	seq := func(yield func(BatchItem) bool) {
		for _, it := range items {
			if !yield(it) {
				return
			}
		}
	}
	var got []BatchResult
	err := SweepBatch(context.Background(), seq, BatchConfig{Config: full},
		func(br BatchResult) error { got = append(got, br); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d results, want 2", len(got))
	}
	// Base config: SBO at both deltas plus the tie-breaks at δ=3.
	if want := 2 + len(DefaultTies); len(got[0].Result.Runs) != want {
		t.Errorf("base config: %d runs, want %d", len(got[0].Result.Runs), want)
	}
	if len(got[1].Result.Runs) != 2 {
		t.Errorf("override: %d runs, want 2 (SBO only)", len(got[1].Result.Runs))
	}
	solo, err := Sweep(context.Background(), in, sboOnly)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[1].Result.Runs, solo.Runs) {
		t.Errorf("override runs differ from standalone Sweep with the same config")
	}
}

// TestSweepBatchCancelledMidBatch cancels the context from the test
// hook partway through the second instance: SweepBatch must return
// ctx.Err() cleanly without emitting a partial instance.
func TestSweepBatchCancelledMidBatch(t *testing.T) {
	ins := batchInstances()
	grid := testGrid()
	jobsPerInstance := len(grid) // SkipRLS below: one SBO job per grid point

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := 0
	testHookAfterRun = func() {
		done++
		if done == jobsPerInstance+2 {
			cancel()
		}
	}
	defer func() { testHookAfterRun = nil }()

	emitted := 0
	// One worker so the hook counter needs no synchronization and the
	// cancellation point is deterministic.
	err := SweepBatch(ctx, BatchOf(ins...),
		BatchConfig{Config: Config{Deltas: grid, Workers: 1, SkipRLS: true}},
		func(br BatchResult) error {
			if br.Err != nil {
				t.Errorf("instance %d: %v", br.Index, br.Err)
			}
			emitted++
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if emitted != 1 {
		t.Fatalf("emitted %d instances, want exactly the one completed before cancellation", emitted)
	}
	if done >= len(ins)*jobsPerInstance {
		t.Fatalf("batch ran all %d jobs despite cancellation", done)
	}
}

func TestSweepBatchCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := SweepBatch(ctx, BatchOf(gen.Uniform(20, 2, 1)),
		BatchConfig{Config: Config{Deltas: []float64{1}}},
		func(BatchResult) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestSweepBatchEmitErrorAborts checks a callback error stops the
// batch immediately and is returned verbatim.
func TestSweepBatchEmitErrorAborts(t *testing.T) {
	ins := batchInstances()
	stop := errors.New("enough")
	calls := 0
	err := SweepBatch(context.Background(), BatchOf(ins...),
		BatchConfig{Config: Config{Deltas: []float64{1, 3}, Workers: 2}},
		func(BatchResult) error {
			calls++
			if calls == 2 {
				return stop
			}
			return nil
		})
	if !errors.Is(err, stop) {
		t.Fatalf("got %v, want the emit error", err)
	}
	if calls != 2 {
		t.Fatalf("emit called %d times, want 2", calls)
	}
}

func TestSweepBatchEmptyAndInvalidInputs(t *testing.T) {
	ctx := context.Background()
	cfg := BatchConfig{Config: Config{Deltas: []float64{1}}}

	calls := 0
	if err := SweepBatch(ctx, BatchOf(), cfg, func(BatchResult) error { calls++; return nil }); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if calls != 0 {
		t.Fatalf("empty batch emitted %d results", calls)
	}

	if err := SweepBatch(ctx, nil, cfg, func(BatchResult) error { return nil }); err == nil {
		t.Error("nil sequence accepted")
	}
	var seq iter.Seq[BatchItem] = BatchOf(gen.Uniform(5, 2, 1))
	if err := SweepBatch(ctx, seq, cfg, nil); err == nil {
		t.Error("nil emit callback accepted")
	}
}

// TestSweepBatchStreamsManyInstances pushes a four-figure instance
// count through a tiny window as a bounded-memory smoke test: the
// sequence is generated lazily and every front must stream out in
// order.
func TestSweepBatchStreamsManyInstances(t *testing.T) {
	const total = 1200
	seq := func(yield func(BatchItem) bool) {
		for i := 0; i < total; i++ {
			if !yield(BatchItem{Instance: gen.Uniform(8, 2, int64(i))}) {
				return
			}
		}
	}
	next := 0
	err := SweepBatch(context.Background(), seq,
		BatchConfig{Config: Config{Deltas: []float64{1}, SkipRLS: true, Workers: 4}, MaxPending: 2},
		func(br BatchResult) error {
			if br.Err != nil {
				return fmt.Errorf("instance %d: %w", br.Index, br.Err)
			}
			if br.Index != next {
				return fmt.Errorf("emitted index %d, want %d", br.Index, next)
			}
			next++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if next != total {
		t.Fatalf("emitted %d instances, want %d", next, total)
	}
}

// TestSweepBatchPreparesOncePerInstance counts SBO preparations via
// the prepared sub-schedule identity: every run of one instance must
// see the same memoized core.SBOPrepared outcome as a direct call.
func TestSweepBatchPreparesOncePerInstance(t *testing.T) {
	in := gen.Uniform(50, 4, 3)
	got := collectBatch(t, []*model.Instance{in},
		BatchConfig{Config: Config{Deltas: []float64{0.5, 1, 2, 4}, SkipRLS: true, Workers: 4}})
	if len(got) != 1 || got[0].Err != nil {
		t.Fatalf("unexpected batch outcome: %+v", got)
	}
	for _, r := range got[0].Result.Runs {
		direct, err := core.SBOWithLPT(in, r.Delta)
		if err != nil {
			t.Fatal(err)
		}
		if r.Value.Cmax != direct.Cmax || r.Value.Mmax != direct.Mmax {
			t.Errorf("%s: batch %v, direct (%d,%d)", r.Label(), r.Value, direct.Cmax, direct.Mmax)
		}
	}
}

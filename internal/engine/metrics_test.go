package engine

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"storagesched/internal/gen"
	"storagesched/internal/metrics"
	"storagesched/internal/model"
)

// TestBatchMetricsAccounting: a batch wired with a Metrics bundle
// accounts for every job exactly — the job counter matches the runs
// the results report, the queue and in-flight gauges return to zero,
// and items with more than one job record memo hits for the shared
// prepared state.
func TestBatchMetricsAccounting(t *testing.T) {
	ins := []*model.Instance{gen.Uniform(20, 2, 1), gen.Uniform(24, 3, 2)}
	reg := metrics.NewRegistry()
	cfg := BatchConfig{
		Config:  Config{Deltas: []float64{0.5, 1, 2, 4}, Workers: 2},
		Metrics: NewMetrics(reg),
	}

	var runs int
	err := SweepBatch(context.Background(), BatchOf(ins...), cfg, func(br BatchResult) error {
		if br.Err != nil {
			return br.Err
		}
		runs += len(br.Result.Runs)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	want := []string{
		"sched_engine_queue_depth 0\n",
		"sched_engine_jobs_inflight 0\n",
		"sched_engine_job_seconds_count",
	}
	for _, line := range want {
		if !strings.Contains(text, line) {
			t.Errorf("scrape missing %q:\n%s", line, text)
		}
	}
	if got := cfg.Metrics.jobs.Value(); got != int64(runs) {
		t.Errorf("jobs counter = %d, want %d (one per run)", got, runs)
	}
	// Each item runs several jobs against one memoized prepared state;
	// all but the preparing job of each item may observe the memo, and
	// at least one must (jobs per item far exceed the worker count).
	if hits := cfg.Metrics.memoHits.Value(); hits == 0 || hits >= int64(runs) {
		t.Errorf("memo hits = %d, want in (0, %d)", hits, runs)
	}
}

// TestBatchMetricsNilSafe: a nil bundle (no registry) is inert — the
// batch runs identically and every hook is a no-op.
func TestBatchMetricsNilSafe(t *testing.T) {
	if m := NewMetrics(nil); m != nil {
		t.Fatalf("NewMetrics(nil) = %v, want nil", m)
	}
	var m *Metrics
	m.jobQueued()
	m.jobUnqueued()
	m.jobDequeued()
	m.memoHit()
	m.jobEnd(m.jobStart())
	if t0 := m.jobStart(); !t0.IsZero() {
		t.Errorf("nil jobStart = %v, want zero time", t0)
	}

	ins := []*model.Instance{gen.Uniform(10, 2, 3)}
	cfg := BatchConfig{Config: Config{Deltas: []float64{1, 2}, Workers: 2}}
	if err := SweepBatch(context.Background(), BatchOf(ins...), cfg, func(BatchResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

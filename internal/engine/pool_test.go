package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"storagesched/internal/gen"
	"storagesched/internal/model"
)

// poolBatchRuns sweeps the instances through SweepBatch with the given
// BatchConfig and returns a deterministic rendering of every emitted
// result.
func poolBatchRuns(t *testing.T, ins []*model.Instance, cfg BatchConfig) []string {
	t.Helper()
	var out []string
	err := SweepBatch(context.Background(), BatchOf(ins...), cfg, func(br BatchResult) error {
		if br.Err != nil {
			return br.Err
		}
		line := fmt.Sprintf("%d:", br.Index)
		for _, p := range br.Result.Front {
			line += fmt.Sprintf(" (%d,%d)@%s", p.Value.Cmax, p.Value.Mmax, br.Result.Runs[p.RunIndex].Label())
		}
		out = append(out, line)
		return nil
	})
	if err != nil {
		t.Fatalf("SweepBatch: %v", err)
	}
	return out
}

// TestPoolMatchesPrivateWorkers: a batch submitted to a resident Pool
// must produce exactly the results of the same batch on a private
// per-call pool of the same size.
func TestPoolMatchesPrivateWorkers(t *testing.T) {
	ins := make([]*model.Instance, 12)
	for i := range ins {
		ins[i] = gen.Uniform(30, 4, int64(i+1))
	}
	grid, err := GeometricGrid(0.5, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	base := BatchConfig{Config: Config{Deltas: grid, Workers: 3}}
	want := poolBatchRuns(t, ins, base)

	for _, workers := range []int{1, 3, 8} {
		pool := NewPool(workers)
		cfg := base
		cfg.Pool = pool
		got := poolBatchRuns(t, ins, cfg)
		pool.Close()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d item %d:\n got %s\nwant %s", workers, i, got[i], want[i])
			}
		}
	}
}

// TestPoolSharedAcrossConcurrentBatches: several batches submitting to
// one resident pool concurrently must each stream their own results,
// deterministic and complete, with no cross-batch interference.
func TestPoolSharedAcrossConcurrentBatches(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	grid, err := GeometricGrid(0.5, 8, 4)
	if err != nil {
		t.Fatal(err)
	}

	const batches = 5
	var wg sync.WaitGroup
	errs := make([]error, batches)
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			ins := make([]*model.Instance, 8)
			for i := range ins {
				ins[i] = gen.Uniform(24, 3, int64(100*b+i+1))
			}
			next := 0
			errs[b] = SweepBatch(context.Background(), BatchOf(ins...),
				BatchConfig{Config: Config{Deltas: grid}, Pool: pool},
				func(br BatchResult) error {
					if br.Err != nil {
						return br.Err
					}
					if br.Index != next {
						return fmt.Errorf("batch %d: result %d out of order (want %d)", b, br.Index, next)
					}
					next++
					if len(br.Result.Front) == 0 {
						return fmt.Errorf("batch %d item %d: empty front", b, br.Index)
					}
					return nil
				})
			if errs[b] == nil && next != len(ins) {
				errs[b] = fmt.Errorf("batch %d: emitted %d of %d", b, next, len(ins))
			}
		}(b)
	}
	wg.Wait()
	for b, err := range errs {
		if err != nil {
			t.Errorf("batch %d: %v", b, err)
		}
	}
}

// TestPoolCancelledBatchLeavesPoolUsable: cancelling one batch must
// not wedge the shared pool — its queued jobs skip, and a subsequent
// batch on the same pool completes normally.
func TestPoolCancelledBatchLeavesPoolUsable(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	grid, err := GeometricGrid(0.5, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	ins := make([]*model.Instance, 20)
	for i := range ins {
		ins[i] = gen.Uniform(40, 4, int64(i+1))
	}

	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	err = SweepBatch(ctx, BatchOf(ins...), BatchConfig{Config: Config{Deltas: grid}, Pool: pool},
		func(br BatchResult) error {
			seen++
			if seen == 2 {
				cancel()
			}
			return nil
		})
	if err != context.Canceled {
		t.Fatalf("cancelled batch returned %v, want context.Canceled", err)
	}

	// The pool must still execute a fresh batch to completion.
	got := poolBatchRuns(t, ins[:4], BatchConfig{Config: Config{Deltas: grid}, Pool: pool})
	if len(got) != 4 {
		t.Fatalf("post-cancel batch emitted %d results, want 4", len(got))
	}
}

// TestPoolCloseIdempotent: Close twice is a no-op, and Workers reports
// the constructed size (with 0 defaulting to NumCPU > 0).
func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(3)
	if p.Workers() != 3 {
		t.Errorf("Workers() = %d, want 3", p.Workers())
	}
	p.Close()
	p.Close()
	if def := NewPool(0); def.Workers() <= 0 {
		t.Errorf("default pool size %d, want > 0", def.Workers())
	} else {
		def.Close()
	}
}

package engine

// Front caching for SweepBatch. Completed sweep fronts are stored in
// a content-addressed cache (internal/cache) keyed by the item's
// canonical bytes plus a fingerprint of the parts of the effective
// Config that determine the outcome. The batch's admission step
// consults the cache before job generation: a hit skips the item's
// jobs entirely and its Result — front artifacts identical to a
// computed one's, witness payloads elided (see wireResult) — is
// emitted in the usual stream order; a miss records the key so the
// completed front is written back at emission.

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"storagesched/internal/bounds"
	"storagesched/internal/cache"
	"storagesched/internal/core"
	"storagesched/internal/makespan"
	"storagesched/internal/model"
)

// configFingerprint renders the result-determining part of an
// effective sweep config for a given item kind. It is deliberately
// *normalized*: fields that cannot influence the item's Result —
// Workers, the SBO sub-algorithms of a graph item, tie-breaks when no
// RLS run is selected, sub-δ grid points of a graph item — are
// excluded, so configs that differ only in irrelevant ways still share
// cache entries.
func configFingerprint(cfg Config, graph bool) string {
	var b strings.Builder
	b.WriteString("fp1") // bump when the wire format or semantics change
	if graph {
		b.WriteString("|graph")
	}
	runsSBO := !graph && !cfg.SkipSBO
	b.WriteString("|d=")
	runsRLS := false
	for _, d := range cfg.Deltas {
		rls := !cfg.SkipRLS && d >= 2
		runsRLS = runsRLS || rls
		if !runsSBO && !rls {
			// The point generates no job for this item (graph items and
			// SkipSBO configs run nothing below δ = 2); it is inert and
			// must not split cache entries.
			continue
		}
		// Hex float form is exact: distinct float64 grids never alias.
		b.WriteString(strconv.FormatFloat(d, 'x', -1, 64))
		b.WriteByte(',')
	}
	if runsSBO {
		algC, algM := cfg.AlgC, cfg.AlgM
		if algC == nil {
			algC = makespan.LPT{}
		}
		if algM == nil {
			algM = makespan.LPT{}
		}
		// Type plus exported parameters (e.g. PTAS{Epsilon:0.25})
		// identify a sub-algorithm configuration.
		fmt.Fprintf(&b, "|algC=%T%+v|algM=%T%+v", algC, algC, algM, algM)
	}
	if runsRLS {
		ties := cfg.Ties
		if ties == nil {
			ties = DefaultTies
		}
		b.WriteString("|ties=")
		for _, tie := range ties {
			b.WriteString(tie.String())
			b.WriteByte(',')
		}
	}
	return b.String()
}

// itemKey computes the cache key of a valid batch item under its
// effective config.
func itemKey(st *batchState) cache.Key {
	var canonical []byte
	if st.g != nil {
		canonical = cache.CanonicalGraph(st.g)
	} else {
		canonical = cache.CanonicalInstance(st.in)
	}
	return cache.KeyFor(canonical, configFingerprint(st.cfg, st.g != nil))
}

// wireVersion guards the cached-Result encoding; bump it whenever the
// wire structs change shape so stale entries decode as misses.
const wireVersion = 1

// wireResult is the cached form of a Result: the *front artifacts* — the
// bounds record, each run's provenance (algorithm, tie, δ) and achieved
// objective value, and the assembled front. The per-run witness payloads
// (Run.Assignment and the SBO/RLS analysis records) are deliberately not
// cached: they are an order of magnitude larger than the fronts, are not
// part of any sweep summary, and decoding them would cost more than many
// sweeps compute — a front cache that re-reads schedules is slower than
// no cache. A cached Result therefore carries nil witness fields, and
// BatchResult.CacheHit flags it; consumers that need the schedules sweep
// uncached.
type wireResult struct {
	V      int              `json:"v"`
	Bounds bounds.Record    `json:"bounds"`
	Runs   []wireRun        `json:"runs"`
	Front  []wireFrontPoint `json:"front,omitempty"`
}

type wireRun struct {
	Algorithm Algorithm     `json:"alg"`
	Tie       core.TieBreak `json:"tie"`
	Delta     float64       `json:"delta"`
	Cmax      model.Time    `json:"cmax"`
	Mmax      model.Mem     `json:"mmax"`
	Err       string        `json:"err,omitempty"`
}

type wireFrontPoint struct {
	Cmax     model.Time `json:"cmax"`
	Mmax     model.Mem  `json:"mmax"`
	RunIndex int        `json:"run"`
}

// encodeResult serializes a completed Result for the cache.
func encodeResult(res *Result) ([]byte, error) {
	wr := wireResult{V: wireVersion, Bounds: res.Bounds, Runs: make([]wireRun, len(res.Runs))}
	for i, r := range res.Runs {
		w := wireRun{
			Algorithm: r.Algorithm,
			Tie:       r.Tie,
			Delta:     r.Delta,
			Cmax:      r.Value.Cmax,
			Mmax:      r.Value.Mmax,
		}
		if r.Err != nil {
			w.Err = r.Err.Error()
		}
		wr.Runs[i] = w
	}
	for _, p := range res.Front {
		wr.Front = append(wr.Front, wireFrontPoint{Cmax: p.Value.Cmax, Mmax: p.Value.Mmax, RunIndex: p.RunIndex})
	}
	return json.Marshal(wr)
}

// CheckCachedResult reports whether data decodes as a cached sweep
// Result — the integrity check `schedcli cache verify` and the cache
// lifecycle run over stored entries. Any defect the decoder would
// treat as a miss (wrong version, malformed JSON, out-of-range front
// witness) is the returned error.
func CheckCachedResult(data []byte) error {
	_, err := decodeResult(data)
	return err
}

// decodeResult deserializes a cached Result. Any defect — wrong
// version, malformed JSON, out-of-range front witness — is an error,
// which callers treat as a cache miss and recompute.
func decodeResult(data []byte) (*Result, error) {
	var wr wireResult
	if err := json.Unmarshal(data, &wr); err != nil {
		return nil, fmt.Errorf("engine: decoding cached result: %w", err)
	}
	if wr.V != wireVersion {
		return nil, fmt.Errorf("engine: cached result version %d, want %d", wr.V, wireVersion)
	}
	res := &Result{Bounds: wr.Bounds, Runs: make([]Run, len(wr.Runs))}
	for i, w := range wr.Runs {
		r := Run{
			Algorithm: w.Algorithm,
			Tie:       w.Tie,
			Delta:     w.Delta,
			Value:     model.Value{Cmax: w.Cmax, Mmax: w.Mmax},
		}
		if w.Err != "" {
			r.Err = errors.New(w.Err)
		}
		res.Runs[i] = r
	}
	for _, p := range wr.Front {
		if p.RunIndex < 0 || p.RunIndex >= len(res.Runs) {
			return nil, fmt.Errorf("engine: cached front witness %d out of range [0,%d)", p.RunIndex, len(res.Runs))
		}
		res.Front = append(res.Front, FrontPoint{Value: model.Value{Cmax: p.Cmax, Mmax: p.Mmax}, RunIndex: p.RunIndex})
	}
	return res, nil
}

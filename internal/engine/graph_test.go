package engine

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"storagesched/internal/bounds"
	"storagesched/internal/core"
	"storagesched/internal/dag"
	"storagesched/internal/gen"
	"storagesched/internal/model"
)

// graphGrid is the test δ-grid for graph sweeps; entries below 2 are
// silently skipped (RLS territory only), matching the instance rule.
func graphGrid() []float64 { return []float64{0.5, 2, 2.5, 3, 4.75, 8} }

// mixedItems interleaves DAG families with independent-task instances,
// so jobs of both kinds coexist in the shared pool.
func mixedItems() []BatchItem {
	return []BatchItem{
		{Graph: gen.LayeredDAG(4, 10, 4, 1)},
		{Instance: gen.Uniform(60, 4, 1)},
		{Graph: gen.ForkJoin(6, 5, 4, 2)},
		{Graph: gen.ErdosRenyiDAG(4, 40, 0.15, 3)},
		{Instance: gen.EmbeddedCode(80, 8, 2)},
		{Graph: gen.Diamond(5, 6, 4)},
	}
}

func itemsSeq(items []BatchItem) func(yield func(BatchItem) bool) {
	return func(yield func(BatchItem) bool) {
		for _, it := range items {
			if !yield(it) {
				return
			}
		}
	}
}

// TestSweepBatchMixedDeterministicAcrossWorkerCounts is the graph-era
// acceptance test: a mixed stream of graphs and instances must yield
// byte-identical per-item runs and fronts at 1, 4 and NumCPU workers,
// and every graph run must agree with a standalone core.RLS call at
// the same δ and tie-break.
func TestSweepBatchMixedDeterministicAcrossWorkerCounts(t *testing.T) {
	items := mixedItems()
	var base []BatchResult
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		var got []BatchResult
		err := SweepBatch(context.Background(), itemsSeq(items),
			BatchConfig{Config: Config{Deltas: graphGrid(), Workers: workers}},
			func(br BatchResult) error { got = append(got, br); return nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(items) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(items))
		}
		for i, br := range got {
			if br.Index != i || br.Err != nil {
				t.Fatalf("workers=%d item %d: index=%d err=%v", workers, i, br.Index, br.Err)
			}
		}
		if base == nil {
			base = got
			continue
		}
		for i := range got {
			if !reflect.DeepEqual(got[i].Result.Runs, base[i].Result.Runs) {
				t.Errorf("workers=%d item %d: runs differ", workers, i)
			}
			if !reflect.DeepEqual(got[i].Result.Front, base[i].Result.Front) {
				t.Errorf("workers=%d item %d: front %v, want %v",
					workers, i, got[i].Result.Front, base[i].Result.Front)
			}
			if got[i].Result.Bounds != base[i].Result.Bounds {
				t.Errorf("workers=%d item %d: bounds differ", workers, i)
			}
		}
	}

	// Graph runs must match direct core.RLS calls bit for bit, and
	// instance items must be unaffected by the graphs sharing the pool.
	for i, br := range base {
		if items[i].Graph != nil {
			g := items[i].Graph
			rec, err := bounds.ForGraph(g)
			if err != nil {
				t.Fatal(err)
			}
			if br.Result.Bounds != rec {
				t.Errorf("item %d: bounds %+v, want memoized ForGraph %+v", i, br.Result.Bounds, rec)
			}
			for _, r := range br.Result.Runs {
				if r.Algorithm != AlgRLS {
					t.Fatalf("item %d: graph sweep produced non-RLS run %s", i, r.Label())
				}
				if r.Err != nil {
					t.Fatalf("item %d %s: %v", i, r.Label(), r.Err)
				}
				direct, err := core.RLS(g, r.Delta, r.Tie)
				if err != nil {
					t.Fatal(err)
				}
				if r.Value.Cmax != direct.Cmax || r.Value.Mmax != direct.Mmax {
					t.Errorf("item %d %s: engine %v, direct RLS (%d,%d)",
						i, r.Label(), r.Value, direct.Cmax, direct.Mmax)
				}
				if !reflect.DeepEqual(r.Assignment, direct.Schedule.Assignment()) {
					t.Errorf("item %d %s: assignment differs from direct RLS", i, r.Label())
				}
				if r.RLS.LB != direct.LB || r.RLS.Cap != direct.Cap {
					t.Errorf("item %d %s: LB/Cap (%d,%d), direct (%d,%d)",
						i, r.Label(), r.RLS.LB, r.RLS.Cap, direct.LB, direct.Cap)
				}
				if err := r.RLS.Schedule.Validate(g.PredLists()); err != nil {
					t.Errorf("item %d %s: schedule violates precedence: %v", i, r.Label(), err)
				}
			}
		} else {
			solo, err := Sweep(context.Background(), items[i].Instance,
				Config{Deltas: graphGrid(), Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(br.Result.Runs, solo.Runs) {
				t.Errorf("item %d: instance runs differ from standalone Sweep", i)
			}
		}
	}
}

// TestSweepGraphMatchesBatch checks the single-graph wrapper streams
// through the same path as a one-item batch, and the front is the
// non-dominated hull of the RLS runs, sorted by Cmax.
func TestSweepGraphMatchesBatch(t *testing.T) {
	g := gen.LayeredDAG(6, 12, 4, 7)
	res, err := SweepGraph(context.Background(), g, Config{Deltas: graphGrid()})
	if err != nil {
		t.Fatal(err)
	}
	// δ=0.5 contributes nothing; the five δ ≥ 2 points each run all ties.
	if want := 5 * len(DefaultTies); len(res.Runs) != want {
		t.Fatalf("%d runs, want %d", len(res.Runs), want)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	for i, p := range res.Front {
		if i > 0 {
			prev := res.Front[i-1].Value
			if p.Value.Cmax <= prev.Cmax || p.Value.Mmax >= prev.Mmax {
				t.Errorf("front not strictly improving at %d: %v then %v", i, prev, p.Value)
			}
		}
		run := res.Runs[p.RunIndex]
		if run.Err != nil || run.Value != p.Value {
			t.Errorf("front point %d: witness run %d does not achieve %v", i, p.RunIndex, p.Value)
		}
	}
	// Corollary 2: every run respects Mmax ≤ ⌊δ·LB⌋.
	for _, r := range res.Runs {
		if r.RLS.Mmax > r.RLS.Cap {
			t.Errorf("%s: Mmax %d exceeds cap %d", r.Label(), r.RLS.Mmax, r.RLS.Cap)
		}
	}
}

// TestSweepGraphConfigValidation covers the graph-specific config
// errors: nothing at δ ≥ 2, SkipRLS, cyclic graphs, and the
// both-kinds-set item; each must fail alone inside a batch.
func TestSweepGraphConfigValidation(t *testing.T) {
	ctx := context.Background()
	g := gen.OutTree(3, 10, 2, 1)
	if _, err := SweepGraph(ctx, g, Config{Deltas: []float64{0.5, 1}}); err == nil {
		t.Error("grid without delta >= 2 accepted for a graph")
	}
	if _, err := SweepGraph(ctx, g, Config{Deltas: []float64{3}, SkipRLS: true}); err == nil {
		t.Error("SkipRLS accepted for a graph")
	}
	cyc := dag.New(2, []model.Time{1, 1}, []model.Mem{0, 0})
	cyc.AddEdge(0, 1)
	cyc.AddEdge(1, 0)
	items := []BatchItem{
		{Graph: gen.Chain(2, 5, 1)},
		{Graph: cyc},
		{Instance: gen.Uniform(10, 2, 1), Graph: gen.Chain(2, 3, 2)},
		{Graph: gen.Chain(2, 4, 3)},
	}
	var got []BatchResult
	err := SweepBatch(ctx, itemsSeq(items),
		BatchConfig{Config: Config{Deltas: []float64{2, 4}, Workers: 2}},
		func(br BatchResult) error { got = append(got, br); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("%d results, want %d", len(got), len(items))
	}
	if got[0].Err != nil || got[3].Err != nil {
		t.Errorf("good graphs failed: %v, %v", got[0].Err, got[3].Err)
	}
	if got[1].Err == nil {
		t.Error("cyclic graph swept without error")
	}
	if got[2].Err == nil {
		t.Error("item with both instance and graph accepted")
	}
}

// TestSweepGraphChainFront sanity-checks objective accounting on a
// fully sequential workload: a chain's Cmax is Σp at every δ, so the
// front collapses to single-point (Σp, min over δ of Mmax).
func TestSweepGraphChainFront(t *testing.T) {
	g := gen.Chain(4, 12, 5)
	res, err := SweepGraph(context.Background(), g, Config{Deltas: []float64{2, 3, 6}})
	if err != nil {
		t.Fatal(err)
	}
	want := g.TotalWork()
	for _, r := range res.Runs {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Label(), r.Err)
		}
		if r.Value.Cmax != want {
			t.Errorf("%s: chain Cmax = %d, want %d", r.Label(), r.Value.Cmax, want)
		}
	}
	if len(res.Front) != 1 {
		t.Fatalf("chain front has %d points, want 1: %v", len(res.Front), res.Front)
	}
}

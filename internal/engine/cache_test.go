package engine

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"storagesched/internal/cache"
	"storagesched/internal/dag"
	"storagesched/internal/gen"
)

var errForTest = errors.New("engine: synthetic run failure")

// mixedItems is a small mixed instance/graph workload with a repeated
// instance, so one batch already exercises intra-run reuse potential.
func cacheMixedItems() []BatchItem {
	return []BatchItem{
		{Instance: gen.Uniform(40, 4, 1)},
		{Graph: gen.LayeredDAG(4, 10, 3, 2)},
		{Instance: gen.EmbeddedCode(50, 8, 3)},
		{Graph: gen.ForkJoin(4, 4, 3, 4)},
		{Instance: gen.Uniform(40, 4, 1)}, // identical to item 0
	}
}

func itemSeq(items []BatchItem) func(func(BatchItem) bool) {
	return func(yield func(BatchItem) bool) {
		for _, it := range items {
			if !yield(it) {
				return
			}
		}
	}
}

// encodeAll renders every emitted Result with the cache wire encoding —
// the strictest byte-level fingerprint of what consumers observe.
func encodeAll(t *testing.T, results []BatchResult) [][]byte {
	t.Helper()
	out := make([][]byte, len(results))
	for i, br := range results {
		if br.Err != nil {
			t.Fatalf("item %d: %v", br.Index, br.Err)
		}
		data, err := encodeResult(br.Result)
		if err != nil {
			t.Fatalf("encoding item %d: %v", br.Index, err)
		}
		out[i] = data
	}
	return out
}

func runBatch(t *testing.T, items []BatchItem, cfg BatchConfig) []BatchResult {
	t.Helper()
	var got []BatchResult
	err := SweepBatch(context.Background(), itemSeq(items), cfg, func(br BatchResult) error {
		got = append(got, br)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("emitted %d results, want %d", len(got), len(items))
	}
	return got
}

// The tentpole acceptance test: SweepBatch output is byte-identical
// across {cache off, cold cache, warm cache} × {1, 4, NumCPU} workers,
// on a mixed instance/graph workload. Run under -race this also proves
// the cache integration races with nothing.
func TestSweepBatchCacheByteIdenticalOffColdWarm(t *testing.T) {
	grid, err := GeometricGrid(0.5, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	items := cacheMixedItems()

	var reference [][]byte
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		cfg := Config{Deltas: grid, Workers: workers}

		off := encodeAll(t, runBatch(t, items, BatchConfig{Config: cfg}))
		if reference == nil {
			reference = off
		}

		c, err := cache.New(cache.Config{Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		coldResults := runBatch(t, items, BatchConfig{Config: cfg, Cache: c})
		cold := encodeAll(t, coldResults)
		warmResults := runBatch(t, items, BatchConfig{Config: cfg, Cache: c})
		warm := encodeAll(t, warmResults)

		for i := range reference {
			if !bytes.Equal(reference[i], off[i]) {
				t.Errorf("workers=%d item %d: cache-off output differs from reference", workers, i)
			}
			if !bytes.Equal(reference[i], cold[i]) {
				t.Errorf("workers=%d item %d: cold-cache output differs", workers, i)
			}
			if !bytes.Equal(reference[i], warm[i]) {
				t.Errorf("workers=%d item %d: warm-cache output differs", workers, i)
			}
		}
		for i, br := range warmResults {
			if !br.CacheHit {
				t.Errorf("workers=%d item %d: warm run not served from cache", workers, i)
			}
		}
		// On the cold run the duplicate of item 0 may or may not hit
		// depending on completion order; the first item never can.
		if coldResults[0].CacheHit {
			t.Errorf("workers=%d: first cold item claims a cache hit", workers)
		}
		st := c.Stats()
		if st.Hits < int64(len(items)) {
			t.Errorf("workers=%d: %d hits across cold+warm, want >= %d", workers, st.Hits, len(items))
		}
	}
}

// A corrupt or truncated on-disk entry must be treated as a miss: the
// item recomputes, output is unchanged, and the entry heals.
func TestSweepBatchCorruptCacheEntryRecomputes(t *testing.T) {
	grid, err := GeometricGrid(2, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	items := cacheMixedItems()
	cfg := Config{Deltas: grid, Workers: 2}
	dir := t.TempDir()

	c, err := cache.New(cache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := encodeAll(t, runBatch(t, items, BatchConfig{Config: cfg, Cache: c}))

	// Corrupt every on-disk entry: truncate one, garble the rest.
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no cache entries on disk (err=%v)", err)
	}
	for i, name := range names {
		content := []byte("{\"v\":1,\"runs\":not json")
		if i == 0 {
			content = nil
		}
		if err := os.WriteFile(name, content, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// A fresh cache over the same directory (cold memory tier) sees
	// only the corrupt entries.
	c2, err := cache.New(cache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	results := runBatch(t, items, BatchConfig{Config: cfg, Cache: c2})
	for i, br := range results {
		// Item 4 duplicates item 0, so once item 0's recompute heals
		// the shared entry the duplicate may legitimately hit.
		if br.CacheHit && i != 4 {
			t.Errorf("item %d: corrupt entry served as a hit", i)
		}
	}
	got := encodeAll(t, results)
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Errorf("item %d: output differs after corruption-recompute", i)
		}
	}

	// The write-back healed the entries: a third cache hits everything.
	c3, err := cache.New(cache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i, br := range runBatch(t, items, BatchConfig{Config: cfg, Cache: c3}) {
		if !br.CacheHit {
			t.Errorf("item %d: healed entry not hit", i)
		}
	}
}

// Result-affecting config changes must miss; result-irrelevant ones
// (worker count, inert grid points, unused sub-algorithm fields) must
// hit.
func TestCacheFingerprintNormalization(t *testing.T) {
	gridA, err := GeometricGrid(2, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	gridB, err := GeometricGrid(2, 8, 4) // different grid: must miss
	if err != nil {
		t.Fatal(err)
	}
	// gridA plus sub-2 points: for a graph item the extra points are
	// inert (no RLS job below δ=2) and must share the entry.
	gridAPlus := append([]float64{0.5, 1}, gridA...)

	g := gen.LayeredDAG(4, 8, 3, 7)
	c, err := cache.New(cache.Config{})
	if err != nil {
		t.Fatal(err)
	}

	runOne := func(cfg Config) BatchResult {
		t.Helper()
		res := runBatch(t, []BatchItem{{Graph: g}}, BatchConfig{Config: cfg, Cache: c})
		return res[0]
	}

	if br := runOne(Config{Deltas: gridA, Workers: 1}); br.CacheHit {
		t.Error("first run hit an empty cache")
	}
	if br := runOne(Config{Deltas: gridA, Workers: 3}); !br.CacheHit {
		t.Error("worker count perturbed the cache key")
	}
	if br := runOne(Config{Deltas: gridAPlus}); !br.CacheHit {
		t.Error("inert sub-2 grid points perturbed a graph item's key")
	}
	if br := runOne(Config{Deltas: gridA, SkipSBO: true}); !br.CacheHit {
		t.Error("SkipSBO perturbed a graph item's key (graphs never run SBO)")
	}
	if br := runOne(Config{Deltas: gridB}); br.CacheHit {
		t.Error("a different grid produced a false cache hit")
	}
	if br := runOne(Config{Deltas: gridA, Ties: DefaultTies[:2]}); br.CacheHit {
		t.Error("a different tie-break set produced a false cache hit")
	}
}

// An instance and its edgeless graph twin run different algorithm
// families and must never share a cache entry.
func TestCacheInstanceGraphNeverAlias(t *testing.T) {
	grid, err := GeometricGrid(2, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	in := gen.Uniform(20, 3, 5)
	c, err := cache.New(cache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	edgeless := BatchItem{Graph: dag.FromInstance(in)}
	if br := runBatch(t, []BatchItem{{Instance: in}}, BatchConfig{Config: Config{Deltas: grid}, Cache: c})[0]; br.CacheHit {
		t.Error("empty cache hit")
	}
	if br := runBatch(t, []BatchItem{edgeless}, BatchConfig{Config: Config{Deltas: grid}, Cache: c})[0]; br.CacheHit {
		t.Error("edgeless graph aliased its instance twin")
	}
}

func TestDecodeResultRejectsDefects(t *testing.T) {
	if _, err := decodeResult([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := decodeResult([]byte(`{"v":99}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := decodeResult([]byte(`{"v":1,"runs":[],"front":[{"cmax":1,"mmax":1,"run":0}]}`)); err == nil {
		t.Error("out-of-range front witness accepted")
	}
}

// Per-run errors round-trip as messages through the wire format.
func TestWireRoundTripPreservesRunErrors(t *testing.T) {
	res := &Result{Runs: []Run{{Algorithm: AlgRLS, Delta: 3, Err: errForTest}}}
	data, err := encodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Runs[0].Err == nil || back.Runs[0].Err.Error() != errForTest.Error() {
		t.Errorf("run error round-trip = %v, want %v", back.Runs[0].Err, errForTest)
	}
}

package engine

// Engine instrumentation. A Metrics bundle holds the pool-level
// instruments a batch updates as its jobs move through the shared
// worker pool; wire one into a batch via BatchConfig.Metrics (the
// serve session does this for both front ends). Every hook is safe on
// a nil *Metrics, so the hot path carries no conditionals and an
// uninstrumented batch pays one predictable branch per event.
//
// Instrumentation never touches results: the counters observe the job
// flow, the job flow never observes the counters, so the JSONL output
// is byte-identical with metrics on or off (the golden tests pin
// this).

import (
	"time"

	"storagesched/internal/metrics"
)

// Metrics is the engine's instrument bundle, registered under the
// sched_engine_* families. Construct with NewMetrics; a nil *Metrics
// disables instrumentation.
type Metrics struct {
	queueDepth *metrics.Gauge
	inFlight   *metrics.Gauge
	jobs       *metrics.Counter
	memoHits   *metrics.Counter
	jobSeconds *metrics.Histogram
}

// NewMetrics registers the engine families on reg and returns the
// bundle; a nil registry returns nil (instrumentation off).
func NewMetrics(reg *metrics.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		queueDepth: reg.Gauge("sched_engine_queue_depth",
			"jobs admitted to the worker pool and not yet picked up by a worker"),
		inFlight: reg.Gauge("sched_engine_jobs_inflight",
			"jobs executing on a worker right now"),
		jobs: reg.Counter("sched_engine_jobs_total",
			"jobs executed (one per item, algorithm, delta evaluation)"),
		memoHits: reg.Counter("sched_engine_prepared_memo_hits_total",
			"jobs that found their item's prepared state already memoized"),
		jobSeconds: reg.Histogram("sched_engine_job_seconds",
			"wall time of one job against its item's prepared state", nil),
	}
}

// jobQueued records a job handed toward the pool's job channel.
func (m *Metrics) jobQueued() {
	if m != nil {
		m.queueDepth.Inc()
	}
}

// jobUnqueued undoes jobQueued when cancellation stops the hand-off.
func (m *Metrics) jobUnqueued() {
	if m != nil {
		m.queueDepth.Dec()
	}
}

// jobDequeued records a worker picking the job up.
func (m *Metrics) jobDequeued() {
	if m != nil {
		m.queueDepth.Dec()
	}
}

// memoHit records a job that found its item already prepared.
func (m *Metrics) memoHit() {
	if m != nil {
		m.memoHits.Inc()
	}
}

// jobStart marks the beginning of a job execution and returns its
// start time (zero when instrumentation is off, so the hot path pays
// no clock read without a registry).
func (m *Metrics) jobStart() time.Time {
	if m == nil {
		return time.Time{}
	}
	m.inFlight.Inc()
	return time.Now()
}

// jobEnd marks the end of a job execution started at t0.
func (m *Metrics) jobEnd(t0 time.Time) {
	if m == nil {
		return
	}
	m.inFlight.Dec()
	m.jobs.Inc()
	m.jobSeconds.ObserveSince(t0)
}

package engine

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"storagesched/internal/core"
	"storagesched/internal/gen"
	"storagesched/internal/model"
	"storagesched/internal/pareto"
)

// mustGrid unwraps a grid constructor in tests, where the inputs are
// known-valid.
func mustGrid(g []float64, err error) []float64 {
	if err != nil {
		panic(err)
	}
	return g
}

func testGrid() []float64 { return mustGrid(GeometricGrid(0.25, 8, 16)) }

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	in := gen.Uniform(120, 8, 7)
	var base *Result
	for _, workers := range []int{1, 2, 3, 8, 32} {
		res, err := Sweep(context.Background(), in, Config{Deltas: testGrid(), Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = res
			continue
		}
		if len(res.Runs) != len(base.Runs) {
			t.Fatalf("workers=%d: %d runs, want %d", workers, len(res.Runs), len(base.Runs))
		}
		for i := range res.Runs {
			got, want := res.Runs[i], base.Runs[i]
			if got.Algorithm != want.Algorithm || got.Tie != want.Tie || got.Delta != want.Delta {
				t.Fatalf("workers=%d run %d: job (%v,%v,%g), want (%v,%v,%g)",
					workers, i, got.Algorithm, got.Tie, got.Delta, want.Algorithm, want.Tie, want.Delta)
			}
			if got.Value != want.Value {
				t.Fatalf("workers=%d run %d (%s): value %v, want %v",
					workers, i, got.Label(), got.Value, want.Value)
			}
			if !reflect.DeepEqual(got.Assignment, want.Assignment) {
				t.Fatalf("workers=%d run %d (%s): assignment differs", workers, i, got.Label())
			}
		}
		if !reflect.DeepEqual(res.Front, base.Front) {
			t.Fatalf("workers=%d: front %v, want %v", workers, res.Front, base.Front)
		}
	}
	if len(base.Front) == 0 {
		t.Fatal("empty front")
	}
}

func TestSweepFrontIsNonDominatedAndSorted(t *testing.T) {
	in := gen.EmbeddedCode(150, 8, 3)
	res, err := Sweep(context.Background(), in, Config{Deltas: testGrid()})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Front {
		if i > 0 {
			prev := res.Front[i-1].Value
			if p.Value.Cmax <= prev.Cmax || p.Value.Mmax >= prev.Mmax {
				t.Errorf("front not strictly improving at %d: %v then %v", i, prev, p.Value)
			}
		}
		run := res.Runs[p.RunIndex]
		if run.Err != nil || run.Value != p.Value {
			t.Errorf("front point %d: witness run %d does not achieve %v", i, p.RunIndex, p.Value)
		}
		if err := in.ValidateAssignment(run.Assignment); err != nil {
			t.Errorf("front point %d: invalid witness assignment: %v", i, err)
		}
		if got := in.Eval(run.Assignment); got != p.Value {
			t.Errorf("front point %d: assignment evaluates to %v, want %v", i, got, p.Value)
		}
	}
}

// TestSweepAgreesWithExactFront checks the swept front never claims a
// point below the true Pareto front on instances small enough to
// enumerate, and that every swept value is genuinely achievable.
func TestSweepAgreesWithExactFront(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		in := gen.Uniform(10, 3, seed)
		exact, err := pareto.Front(in)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Sweep(context.Background(), in, Config{Deltas: mustGrid(GeometricGrid(0.125, 16, 32))})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range res.Front {
			covered := false
			for _, q := range exact {
				if q.Value.WeaklyDominates(p.Value) {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("seed %d: swept point %v lies below the exact front %v",
					seed, p.Value, pareto.Values(exact))
			}
		}
	}
}

// TestSweepSBOGuarantees checks Properties 1-2 hold for every SBO run
// the engine produces (the memoized π1/π2 must behave exactly like the
// unprepared algorithm).
func TestSweepSBOGuarantees(t *testing.T) {
	in := gen.GridBatch(100, 8, 11)
	res, err := Sweep(context.Background(), in, Config{Deltas: testGrid(), SkipRLS: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Runs {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Label(), r.Err)
		}
		direct, err := core.SBOWithLPT(in, r.Delta)
		if err != nil {
			t.Fatal(err)
		}
		if r.Value.Cmax != direct.Cmax || r.Value.Mmax != direct.Mmax {
			t.Errorf("%s: engine %v, direct SBO (%d,%d)", r.Label(), r.Value, direct.Cmax, direct.Mmax)
		}
		if float64(r.SBO.Cmax) > r.SBO.CmaxBound()+1e-9 {
			t.Errorf("%s: Cmax %d exceeds Property 1 bound %.2f", r.Label(), r.SBO.Cmax, r.SBO.CmaxBound())
		}
		if float64(r.SBO.Mmax) > r.SBO.MmaxBound()+1e-9 {
			t.Errorf("%s: Mmax %d exceeds Property 2 bound %.2f", r.Label(), r.SBO.Mmax, r.SBO.MmaxBound())
		}
	}
}

// TestSweepRLSMatchesUnprepared checks the memoized RLS path returns
// bit-identical results to calling core.RLSIndependent directly.
func TestSweepRLSMatchesUnprepared(t *testing.T) {
	in := gen.Uniform(80, 6, 9)
	res, err := Sweep(context.Background(), in, Config{Deltas: []float64{2, 2.5, 3, 4, 8}, SkipSBO: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 5*len(DefaultTies) {
		t.Fatalf("got %d runs, want %d", len(res.Runs), 5*len(DefaultTies))
	}
	for _, r := range res.Runs {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Label(), r.Err)
		}
		direct, err := core.RLSIndependent(in, r.Delta, r.Tie)
		if err != nil {
			t.Fatal(err)
		}
		if r.Value.Cmax != direct.Cmax || r.Value.Mmax != direct.Mmax {
			t.Errorf("%s: engine %v, direct RLS (%d,%d)", r.Label(), r.Value, direct.Cmax, direct.Mmax)
		}
		if !reflect.DeepEqual(r.Assignment, direct.Schedule.Assignment()) {
			t.Errorf("%s: assignment differs from direct RLS", r.Label())
		}
		if r.RLS.LB != direct.LB || r.RLS.Cap != direct.Cap {
			t.Errorf("%s: LB/Cap (%d,%d), direct (%d,%d)", r.Label(), r.RLS.LB, r.RLS.Cap, direct.LB, direct.Cap)
		}
	}
}

func TestSweepCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := gen.Uniform(50, 4, 1)
	if _, err := Sweep(ctx, in, Config{Deltas: testGrid()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestSweepCancelledMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := 0
	testHookAfterRun = func() {
		done++
		if done == 3 {
			cancel()
		}
	}
	defer func() { testHookAfterRun = nil }()
	in := gen.Uniform(50, 4, 1)
	// One worker so the hook counter needs no synchronization and the
	// cancellation point is deterministic.
	_, err := Sweep(ctx, in, Config{Deltas: testGrid(), Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if done >= len(testGrid())*(1+len(DefaultTies)) {
		t.Fatalf("sweep ran all %d jobs despite cancellation", done)
	}
}

func TestSweepConfigValidation(t *testing.T) {
	in := gen.Uniform(10, 2, 1)
	ctx := context.Background()
	cases := []Config{
		{},                               // empty grid
		{Deltas: []float64{1, -2}},       // negative δ
		{Deltas: []float64{0}},           // zero δ
		{Deltas: []float64{math.Inf(1)}}, // infinite δ
		{Deltas: []float64{math.NaN()}},  // NaN δ
		{Deltas: []float64{1}, SkipSBO: true, SkipRLS: true}, // nothing selected
		{Deltas: []float64{1}, SkipSBO: true},                // RLS needs δ >= 2
	}
	for i, cfg := range cases {
		if _, err := Sweep(ctx, in, cfg); err == nil {
			t.Errorf("case %d: no error for invalid config %+v", i, cfg)
		}
	}
	// δ < 2 entries are silently skipped for RLS but swept by SBO.
	res, err := Sweep(ctx, in, Config{Deltas: []float64{0.5, 3}})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 + len(DefaultTies) // SBO at 0.5 and 3, RLS only at 3
	if len(res.Runs) != want {
		t.Fatalf("got %d runs, want %d", len(res.Runs), want)
	}
	if _, err := Sweep(ctx, model.NewInstance(0, nil, nil), Config{Deltas: []float64{1}}); err == nil {
		t.Error("no error for invalid instance")
	}
}

func TestGrids(t *testing.T) {
	lin := mustGrid(LinearGrid(1, 5, 5))
	if !reflect.DeepEqual(lin, []float64{1, 2, 3, 4, 5}) {
		t.Errorf("LinearGrid = %v", lin)
	}
	geo := mustGrid(GeometricGrid(0.25, 4, 5))
	want := []float64{0.25, 0.5, 1, 2, 4}
	for i := range geo {
		if math.Abs(geo[i]-want[i]) > 1e-12 {
			t.Errorf("GeometricGrid[%d] = %g, want %g", i, geo[i], want[i])
		}
	}
	if g := mustGrid(LinearGrid(3, 3, 1)); !reflect.DeepEqual(g, []float64{3}) {
		t.Errorf("single-point grid = %v", g)
	}
	// Invalid grids report errors (not panics): CLI users get a
	// message, not a stack trace.
	bad := []struct {
		lo, hi float64
		n      int
	}{
		{0, 1, 3},
		{-1, 1, 3},
		{2, 1, 3},
		{1, 2, 0},
		{math.NaN(), 2, 3},
		{1, math.NaN(), 3},
		{1, math.Inf(1), 3},
		{math.Inf(1), math.Inf(1), 3},
	}
	for _, c := range bad {
		if _, err := LinearGrid(c.lo, c.hi, c.n); err == nil {
			t.Errorf("LinearGrid(%g, %g, %d): no error", c.lo, c.hi, c.n)
		}
		if _, err := GeometricGrid(c.lo, c.hi, c.n); err == nil {
			t.Errorf("GeometricGrid(%g, %g, %d): no error", c.lo, c.hi, c.n)
		}
	}
}

func TestFrontPrefersLowestRunIndexWitness(t *testing.T) {
	// All tasks identical: many runs achieve the same value, so the
	// witness must be the earliest run in job order.
	in := model.NewInstance(2, []model.Time{4, 4, 4, 4}, []model.Mem{2, 2, 2, 2})
	res, err := Sweep(context.Background(), in, Config{Deltas: []float64{2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Front {
		for i := 0; i < p.RunIndex; i++ {
			if res.Runs[i].Err == nil && res.Runs[i].Value == p.Value {
				t.Fatalf("front witness %d but run %d already achieved %v", p.RunIndex, i, p.Value)
			}
		}
	}
}

package engine

// Resident worker pools. SweepBatch normally spins up its workers per
// call and tears them down when the batch drains — the right shape for
// a one-shot CLI run. A long-running service wants the opposite: one
// pool of goroutines (and their per-worker core.Scratch buffers) that
// lives for the process lifetime and executes the jobs of every batch
// admitted to it, so concurrent requests share capacity the way
// concurrent instances of one batch already share it. Pool is that
// resident pool; wire it into a batch via BatchConfig.Pool.

import (
	"runtime"
	"sync"

	"storagesched/internal/core"
)

// Pool is a resident worker pool shared across SweepBatch calls. Its
// goroutines (and their reusable scratch buffers) start at NewPool and
// run until Close; every batch whose BatchConfig.Pool points here
// submits its jobs to the shared job channel, so jobs from concurrent
// batches interleave exactly as jobs from concurrent instances of one
// batch do — the pool never idles at batch boundaries.
//
// Determinism is unaffected: results land at their per-item job index
// whatever worker runs them, so each batch's output is byte-identical
// to a run on a private pool of the same size.
//
// A Pool is safe for concurrent use by any number of batches. Close
// must not be called while a batch is still submitting jobs — quiesce
// admissions first (the serve layer's drain does exactly this).
type Pool struct {
	jobs    chan batchJob
	workers int
	wg      sync.WaitGroup
	once    sync.Once
}

// NewPool starts a resident pool of the given size; 0 or negative
// means runtime.NumCPU().
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	p := &Pool{jobs: make(chan batchJob), workers: workers}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			// One scratch per resident worker, reused across every job
			// of every batch this worker ever executes.
			scr := core.NewScratch()
			for bj := range p.jobs {
				bj.run(scr)
			}
		}()
	}
	return p
}

// Workers returns the pool size. Batches sharing the pool inherit it
// as their effective worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops the pool: queued jobs finish, the workers exit, and
// Close returns once they have. Closing twice is a no-op; submitting a
// batch to a closed pool is a caller error (stop admitting batches
// before closing, as a draining server does).
func (p *Pool) Close() {
	p.once.Do(func() { close(p.jobs) })
	p.wg.Wait()
}

package textplot

import (
	"bytes"
	"strings"
	"testing"
)

func TestPlotRendersSeries(t *testing.T) {
	p := New(40, 10, 0, 10, 0, 10)
	p.Add(Series{Name: "diag", Marker: '*', X: []float64{0, 5, 10}, Y: []float64{0, 5, 10}})
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := buf.String()
	canvas := out[:strings.Index(out, "+-")] // strip axis + legend
	if strings.Count(canvas, "*") != 3 {
		t.Errorf("want 3 markers, got %d:\n%s", strings.Count(canvas, "*"), out)
	}
	if !strings.Contains(out, "* = diag") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestPlotClipsOutOfRange(t *testing.T) {
	p := New(20, 6, 0, 1, 0, 1)
	p.Add(Series{Name: "out", Marker: 'x', X: []float64{5, -1}, Y: []float64{5, -1}})
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if strings.Contains(buf.String(), "x = out") && strings.Count(buf.String(), "x") > 1 {
		t.Errorf("clipped points rendered:\n%s", buf.String())
	}
}

func TestPlotPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"tiny canvas": func() { New(2, 2, 0, 1, 0, 1) },
		"bad range":   func() { New(20, 10, 1, 0, 0, 1) },
		"mismatched": func() {
			p := New(20, 10, 0, 1, 0, 1)
			p.Add(Series{X: []float64{1}, Y: nil})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPlotCorners(t *testing.T) {
	// Corner points land on the canvas borders, not outside.
	p := New(30, 8, 0, 1, 0, 1)
	p.Add(Series{Name: "c", Marker: 'o', X: []float64{0, 1, 0, 1}, Y: []float64{0, 0, 1, 1}})
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := buf.String()
	canvas := out[:strings.Index(out, "+-")]
	if got := strings.Count(canvas, "o"); got != 4 {
		t.Errorf("want 4 corner markers, got %d:\n%s", got, out)
	}
}

// Package textplot draws small ASCII scatter plots — enough to render
// Figure 3 (the impossibility domain and the SBO tradeoff curve) in a
// terminal and in EXPERIMENTS.md.
package textplot

import (
	"fmt"
	"io"
	"math"
)

// Series is one set of points drawn with a single marker rune.
type Series struct {
	Name   string
	Marker rune
	X, Y   []float64
}

// Plot is a fixed-size character canvas with linear axes.
type Plot struct {
	Width, Height          int
	XMin, XMax, YMin, YMax float64
	series                 []Series
}

// New creates a plot with the given canvas size and axis ranges.
func New(width, height int, xMin, xMax, yMin, yMax float64) *Plot {
	if width < 10 || height < 5 {
		panic(fmt.Sprintf("textplot: canvas %dx%d too small", width, height))
	}
	if xMax <= xMin || yMax <= yMin {
		panic(fmt.Sprintf("textplot: bad ranges [%g,%g]x[%g,%g]", xMin, xMax, yMin, yMax))
	}
	return &Plot{Width: width, Height: height, XMin: xMin, XMax: xMax, YMin: yMin, YMax: yMax}
}

// Add registers a series. Points outside the ranges are clipped.
func (p *Plot) Add(s Series) {
	if len(s.X) != len(s.Y) {
		panic(fmt.Sprintf("textplot: series %q has %d x and %d y", s.Name, len(s.X), len(s.Y)))
	}
	p.series = append(p.series, s)
}

// Render writes the canvas, axes and legend to w.
func (p *Plot) Render(w io.Writer) error {
	grid := make([][]rune, p.Height)
	for r := range grid {
		grid[r] = make([]rune, p.Width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for _, s := range p.series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || x < p.XMin || x > p.XMax || y < p.YMin || y > p.YMax {
				continue
			}
			c := int((x - p.XMin) / (p.XMax - p.XMin) * float64(p.Width-1))
			r := p.Height - 1 - int((y-p.YMin)/(p.YMax-p.YMin)*float64(p.Height-1))
			grid[r][c] = s.Marker
		}
	}
	for r := 0; r < p.Height; r++ {
		yVal := p.YMax - (p.YMax-p.YMin)*float64(r)/float64(p.Height-1)
		label := "      "
		if r == 0 || r == p.Height-1 || r == p.Height/2 {
			label = fmt.Sprintf("%5.2f ", yVal)
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "      +%s\n", repeat('-', p.Width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "      %-*.2f%*.2f\n", p.Width/2, p.XMin, p.Width-p.Width/2, p.XMax); err != nil {
		return err
	}
	for _, s := range p.series {
		if _, err := fmt.Fprintf(w, "      %c = %s\n", s.Marker, s.Name); err != nil {
			return err
		}
	}
	return nil
}

func repeat(r rune, n int) string {
	out := make([]rune, n)
	for i := range out {
		out[i] = r
	}
	return string(out)
}

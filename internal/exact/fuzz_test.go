package exact

import (
	"errors"
	"math"
	"testing"
)

// FuzzExactCmp differentially fuzzes every exact kernel against its
// big.Rat reference: MulCmp on four int64 operands, Coeff.MulCmp3 with
// the fuzzed coefficient, and FloorMul including its ErrRange contract.
// It runs in the CI fuzz-smoke job alongside the JSON reader fuzzers.
func FuzzExactCmp(f *testing.F) {
	f.Add(int64(3), int64(5), int64(7), int64(11), 2.5, int64(13))
	f.Add(int64(math.MaxInt64), int64(math.MaxInt64), int64(math.MinInt64), int64(1), 1.0/3.0, int64(math.MaxInt64))
	f.Add(int64(1<<53), int64(1<<53+1), int64(-1), int64(0), 5e-324, int64(1<<62))
	f.Add(int64(0), int64(0), int64(0), int64(0), math.MaxFloat64, int64(math.MinInt64))
	f.Add(int64(1), int64(-1), int64(1), int64(-1), -math.Ldexp(1, 53), int64(-1))
	f.Fuzz(func(t *testing.T, a, b, c, d int64, delta float64, n int64) {
		if got, want := MulCmp(a, b, c, d), ratMulCmp(a, b, c, d); got != want {
			t.Fatalf("MulCmp(%d,%d,%d,%d) = %d, want %d", a, b, c, d, got, want)
		}
		co, err := NewCoeff(delta)
		if math.IsNaN(delta) || math.IsInf(delta, 0) {
			if !errors.Is(err, ErrNonFinite) {
				t.Fatalf("NewCoeff(%g): err = %v, want ErrNonFinite", delta, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("NewCoeff(%g): %v", delta, err)
		}
		if got, want := co.MulCmp3(a, b, n, c, d, n), ratMulCmp3(a, b, n, delta, c, d, n); got != want {
			t.Fatalf("MulCmp3(%d,%d,%d; δ=%g; %d,%d,%d) = %d, want %d", a, b, n, delta, c, d, n, got, want)
		}
		if got, want := co.MulCmp(a, b, c, d), ratMulCmp3(a, b, 1, delta, c, d, 1); got != want {
			t.Fatalf("Coeff(%g).MulCmp(%d,%d,%d,%d) = %d, want %d", delta, a, b, c, d, got, want)
		}
		want, fits := ratFloorMul(delta, n)
		got, err := co.FloorMul(n)
		if !fits {
			if !errors.Is(err, ErrRange) {
				t.Fatalf("FloorMul(%g, %d) = (%d, %v), want ErrRange", delta, n, got, err)
			}
			return
		}
		if err != nil || got != want {
			t.Fatalf("FloorMul(%g, %d) = (%d, %v), want (%d, nil)", delta, n, got, err, want)
		}
	})
}

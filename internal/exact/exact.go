// Package exact implements the exact arithmetic the paper's algorithms
// reduce to — rational threshold comparisons (Algorithm 1's
// p_i·M < ∆·s_i·C and its uniform-machine variant) and exact floors
// (Algorithm 2's ⌊∆·LB⌋) — on an overflow-checked int64/uint128 fast
// path that falls back to big.Rat only when a 128-bit product would
// overflow.
//
// The trick is classical: a float64 coefficient ∆ is an exact rational
// mant·2^exp with mant < 2^53 (IEEE-754), so both sides of every
// comparison are integers after scaling by a power of two, and
// Graham-style list scheduling needs nothing beyond integer compares.
// Products of two int64 always fit in 128 bits; three-factor products
// and the mantissa scaling are overflow-checked, and only an overflow
// routes through big.Rat — so the heap-allocating rationals are off the
// per-task hot path entirely while every result stays bit-exact
// (differential tests in this package pin fast path ≡ big.Rat on every
// operand class).
package exact

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/bits"
)

// ErrNonFinite reports a NaN or ±Inf coefficient, which has no exact
// rational form.
var ErrNonFinite = errors.New("exact: coefficient is not finite")

// ErrRange reports a result that does not fit in int64.
var ErrRange = errors.New("exact: result out of int64 range")

// u128 is an unsigned 128-bit accumulator for magnitude products.
type u128 struct{ hi, lo uint64 }

func mul64(a, b uint64) u128 {
	hi, lo := bits.Mul64(a, b)
	return u128{hi, lo}
}

func (x u128) isZero() bool { return x.hi == 0 && x.lo == 0 }

func (x u128) cmp(y u128) int {
	switch {
	case x.hi != y.hi:
		if x.hi < y.hi {
			return -1
		}
		return 1
	case x.lo != y.lo:
		if x.lo < y.lo {
			return -1
		}
		return 1
	}
	return 0
}

// mulCheck multiplies by a 64-bit factor, reporting whether the product
// still fits in 128 bits.
func (x u128) mulCheck(m uint64) (u128, bool) {
	hh, hl := bits.Mul64(x.hi, m)
	if hh != 0 {
		return u128{}, false
	}
	lh, ll := bits.Mul64(x.lo, m)
	hi, carry := bits.Add64(lh, hl, 0)
	if carry != 0 {
		return u128{}, false
	}
	return u128{hi, ll}, true
}

// shl shifts left by k, reporting false when a set bit would be lost.
func (x u128) shl(k uint) (u128, bool) {
	switch {
	case k == 0:
		return x, true
	case k >= 128:
		return u128{}, x.isZero()
	case k >= 64:
		if x.hi != 0 || x.lo>>(128-k) != 0 {
			return u128{}, false
		}
		return u128{hi: x.lo << (k - 64)}, true
	default:
		if x.hi>>(64-k) != 0 {
			return u128{}, false
		}
		return u128{hi: x.hi<<k | x.lo>>(64-k), lo: x.lo << k}, true
	}
}

// shr shifts right by k, also reporting whether any dropped bit was set
// (the inexactness flag floor rounding of negative values needs).
func (x u128) shr(k uint) (u128, bool) {
	switch {
	case k == 0:
		return x, false
	case k >= 128:
		return u128{}, !x.isZero()
	case k >= 64:
		dropped := x.lo != 0 || x.hi<<(128-k) != 0
		return u128{lo: x.hi >> (k - 64)}, dropped
	default:
		dropped := x.lo<<(64-k) != 0
		return u128{hi: x.hi >> k, lo: x.hi<<(64-k) | x.lo>>k}, dropped
	}
}

// abs64 returns |v| as a uint64; MinInt64 maps to 2^63, which a uint64
// represents exactly.
func abs64(v int64) uint64 {
	if v < 0 {
		return uint64(-v)
	}
	return uint64(v)
}

func sign64(v int64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}

// MulCmp returns the sign of a·b − c·d, evaluated exactly. Two-factor
// int64 products always fit in 128 bits, so this kernel has no fallback
// and never allocates.
func MulCmp(a, b, c, d int64) int {
	sab := sign64(a) * sign64(b)
	scd := sign64(c) * sign64(d)
	if sab != scd {
		if sab > scd {
			return 1
		}
		return -1
	}
	if sab == 0 {
		return 0
	}
	mab := mul64(abs64(a), abs64(b))
	mcd := mul64(abs64(c), abs64(d))
	if sab > 0 {
		return mab.cmp(mcd)
	}
	return mcd.cmp(mab)
}

// Coeff is a finite float64 coefficient ∆ decomposed once into sign,
// integer mantissa and binary exponent: |∆| = mant·2^exp with
// mant < 2^53. Every finite float64 — normal, denormal or zero — has
// this exact form, so a sweep decomposes its δ once and pays only
// integer work per task.
type Coeff struct {
	mant uint64
	exp  int
	neg  bool
	f    float64 // original value, for the big.Rat fallback
}

// NewCoeff decomposes delta. It reports ErrNonFinite for NaN and ±Inf.
func NewCoeff(delta float64) (Coeff, error) {
	if math.IsNaN(delta) || math.IsInf(delta, 0) {
		return Coeff{}, fmt.Errorf("%w: %g", ErrNonFinite, delta)
	}
	frac, exp := math.Frexp(math.Abs(delta))
	// frac ∈ [1/2, 1) has at most 53 significand bits, so frac·2^53 is
	// an exact integer < 2^53 (0 for delta = 0).
	return Coeff{
		mant: uint64(math.Ldexp(frac, 53)),
		exp:  exp - 53,
		neg:  math.Signbit(delta),
		f:    delta,
	}, nil
}

// Float returns the coefficient's original float64 value.
func (c Coeff) Float() float64 { return c.f }

func (c Coeff) sign() int {
	switch {
	case c.mant == 0:
		return 0
	case c.neg:
		return -1
	}
	return 1
}

// FloorMul returns ⌊∆·n⌋ exactly. The product mant·|n| is at most
// 2^53·2^63 = 2^116, so the computation never leaves 128 bits; only a
// result outside int64 reports ErrRange.
func (c Coeff) FloorMul(n int64) (int64, error) {
	neg := (c.sign() < 0) != (n < 0)
	mag := mul64(c.mant, abs64(n))
	if mag.isZero() {
		return 0, nil
	}
	var q u128
	var inexact bool
	if c.exp >= 0 {
		shifted, ok := mag.shl(uint(c.exp))
		if !ok {
			return 0, fmt.Errorf("%w: floor(%g * %d)", ErrRange, c.f, n)
		}
		q = shifted
	} else {
		q, inexact = mag.shr(uint(-c.exp))
	}
	// Floor of a negative value with dropped bits rounds away from zero.
	if neg && inexact {
		lo, carry := bits.Add64(q.lo, 1, 0)
		q = u128{hi: q.hi + carry, lo: lo}
	}
	if q.hi != 0 {
		return 0, fmt.Errorf("%w: floor(%g * %d)", ErrRange, c.f, n)
	}
	if neg {
		if q.lo > 1<<63 {
			return 0, fmt.Errorf("%w: floor(%g * %d)", ErrRange, c.f, n)
		}
		if q.lo == 1<<63 {
			return math.MinInt64, nil
		}
		return -int64(q.lo), nil
	}
	if q.lo > math.MaxInt64 {
		return 0, fmt.Errorf("%w: floor(%g * %d)", ErrRange, c.f, n)
	}
	return int64(q.lo), nil
}

// MulCmp returns the sign of a·b − ∆·x·y — the Algorithm 1 threshold
// test p_i·M ⋚ ∆·s_i·C in kernel form.
func (c Coeff) MulCmp(a, b, x, y int64) int {
	return c.MulCmp3(a, b, 1, x, y, 1)
}

// MulCmp3 returns the sign of a1·a2·a3 − ∆·b1·b2·b3 — the ratio-aware
// form the uniform-machine threshold p_i·C.Den·M ⋚ ∆·s_i·C.Num·qmin
// needs when the makespan C is itself a rational Num/Den. The fast path
// covers every operand set whose magnitude products (including the
// mantissa scaling) fit in 128 bits; anything larger falls back to
// big.Rat, with an identical result.
func (c Coeff) MulCmp3(a1, a2, a3, b1, b2, b3 int64) int {
	sa := sign64(a1) * sign64(a2) * sign64(a3)
	sb := c.sign() * sign64(b1) * sign64(b2) * sign64(b3)
	if sa != sb {
		if sa > sb {
			return 1
		}
		return -1
	}
	if sa == 0 {
		return 0
	}
	la, oka := mul64(abs64(a1), abs64(a2)).mulCheck(abs64(a3))
	if oka {
		if rb, ok := mul64(abs64(b1), abs64(b2)).mulCheck(abs64(b3)); ok {
			if r, ok := rb.mulCheck(c.mant); ok {
				cc := cmpShift(la, r, c.exp)
				if sa < 0 {
					return -cc
				}
				return cc
			}
		}
	}
	return c.cmpBig3(a1, a2, a3, b1, b2, b3)
}

// cmpShift compares x against y·2^e exactly; a shift that would exceed
// 128 bits decides the comparison outright (both operands are nonzero
// here, so the shifted side is strictly larger).
func cmpShift(x, y u128, e int) int {
	if e >= 0 {
		ys, ok := y.shl(uint(e))
		if !ok {
			return -1
		}
		return x.cmp(ys)
	}
	xs, ok := x.shl(uint(-e))
	if !ok {
		return 1
	}
	return xs.cmp(y)
}

// cmpBig3 is the big.Rat fallback of MulCmp3, reached only when a
// 128-bit magnitude product overflows.
func (c Coeff) cmpBig3(a1, a2, a3, b1, b2, b3 int64) int {
	lhs := new(big.Rat).SetInt64(a1)
	lhs.Mul(lhs, new(big.Rat).SetInt64(a2))
	lhs.Mul(lhs, new(big.Rat).SetInt64(a3))
	rhs := new(big.Rat).SetFloat64(c.f) // finite by construction
	rhs.Mul(rhs, new(big.Rat).SetInt64(b1))
	rhs.Mul(rhs, new(big.Rat).SetInt64(b2))
	rhs.Mul(rhs, new(big.Rat).SetInt64(b3))
	return lhs.Cmp(rhs)
}

// MulCmpF is the one-shot form of Coeff.MulCmp: the sign of
// a·b − delta·x·y, or ErrNonFinite.
func MulCmpF(a, b int64, delta float64, x, y int64) (int, error) {
	c, err := NewCoeff(delta)
	if err != nil {
		return 0, err
	}
	return c.MulCmp(a, b, x, y), nil
}

// FloorMul is the one-shot form of Coeff.FloorMul: ⌊delta·n⌋ exactly,
// ErrNonFinite for non-finite delta, ErrRange when the floor does not
// fit in int64.
func FloorMul(delta float64, n int64) (int64, error) {
	c, err := NewCoeff(delta)
	if err != nil {
		return 0, err
	}
	return c.FloorMul(n)
}

package exact

import (
	"errors"
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// ratMulCmp is the big-integer reference for MulCmp.
func ratMulCmp(a, b, c, d int64) int {
	lhs := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
	rhs := new(big.Int).Mul(big.NewInt(c), big.NewInt(d))
	return lhs.Cmp(rhs)
}

// ratMulCmp3 is the big.Rat reference for Coeff.MulCmp3.
func ratMulCmp3(a1, a2, a3 int64, delta float64, b1, b2, b3 int64) int {
	lhs := new(big.Rat).SetInt64(a1)
	lhs.Mul(lhs, new(big.Rat).SetInt64(a2))
	lhs.Mul(lhs, new(big.Rat).SetInt64(a3))
	rhs := new(big.Rat).SetFloat64(delta)
	rhs.Mul(rhs, new(big.Rat).SetInt64(b1))
	rhs.Mul(rhs, new(big.Rat).SetInt64(b2))
	rhs.Mul(rhs, new(big.Rat).SetInt64(b3))
	return lhs.Cmp(rhs)
}

// ratFloorMul is the big.Rat reference for FloorMul: the exact floor
// and whether it fits in int64. big.Int.Div floors because a big.Rat
// denominator is always positive.
func ratFloorMul(delta float64, n int64) (int64, bool) {
	r := new(big.Rat).SetFloat64(delta)
	r.Mul(r, new(big.Rat).SetInt64(n))
	floor := new(big.Int).Div(r.Num(), r.Denom())
	if !floor.IsInt64() {
		return 0, false
	}
	return floor.Int64(), true
}

// operand classes that exercise every fast-path branch: zeros, small
// values, values straddling 2^32 (the Mul64 split), 2^53 (the mantissa
// width) and the int64 extremes.
var int64Operands = []int64{
	0, 1, -1, 2, 3, 7, -5,
	1000, 1 << 20, 123456789,
	1<<31 - 1, 1 << 31, 1<<32 + 1,
	1<<53 - 1, 1 << 53, 1<<53 + 1,
	1 << 62, 1<<62 + 12345,
	math.MaxInt64, math.MaxInt64 - 1, math.MinInt64, math.MinInt64 + 1,
}

// float64 coefficients covering exact, inexact, denormal, huge and
// negative cases plus the 2^53 mantissa boundary.
var deltaOperands = []float64{
	0, 1, 2, 0.5, 2.5, 3.0,
	1.0 / 3.0, 0.1, 8.25,
	math.Ldexp(1, 53), math.Ldexp(1, 53) + 2, math.Nextafter(math.Ldexp(1, 53), 0),
	5e-324, 1e-300, math.SmallestNonzeroFloat64,
	1e300, math.MaxFloat64,
	-1, -2.5, -1.0 / 3.0, -5e-324, -math.MaxFloat64,
	math.Copysign(0, -1),
}

func TestMulCmpDifferential(t *testing.T) {
	for _, a := range int64Operands {
		for _, b := range int64Operands {
			for _, c := range int64Operands {
				for _, d := range int64Operands {
					if got, want := MulCmp(a, b, c, d), ratMulCmp(a, b, c, d); got != want {
						t.Fatalf("MulCmp(%d,%d,%d,%d) = %d, want %d", a, b, c, d, got, want)
					}
				}
			}
		}
	}
}

func TestMulCmp3Differential(t *testing.T) {
	// The full cross product is too large; sweep each axis against a
	// fixed core of mixed-magnitude values.
	core := []int64{0, 3, -5, 1<<31 + 7, 1<<53 + 1, math.MaxInt64, math.MinInt64}
	for _, delta := range deltaOperands {
		co, err := NewCoeff(delta)
		if err != nil {
			t.Fatalf("NewCoeff(%g): %v", delta, err)
		}
		for _, a1 := range int64Operands {
			for _, a2 := range core {
				for _, b1 := range core {
					got := co.MulCmp3(a1, a2, 9, b1, a2, 11)
					want := ratMulCmp3(a1, a2, 9, delta, b1, a2, 11)
					if got != want {
						t.Fatalf("MulCmp3(%d,%d,9; δ=%g; %d,%d,11) = %d, want %d",
							a1, a2, delta, b1, a2, got, want)
					}
				}
			}
		}
	}
}

func TestMulCmpTwoFactorForm(t *testing.T) {
	for _, delta := range deltaOperands {
		co, err := NewCoeff(delta)
		if err != nil {
			t.Fatalf("NewCoeff(%g): %v", delta, err)
		}
		for _, a := range int64Operands {
			for _, x := range int64Operands {
				got := co.MulCmp(a, 7, x, 13)
				want := ratMulCmp3(a, 7, 1, delta, x, 13, 1)
				if got != want {
					t.Fatalf("Coeff(%g).MulCmp(%d,7,%d,13) = %d, want %d", delta, a, x, got, want)
				}
			}
		}
	}
}

func TestFloorMulDifferential(t *testing.T) {
	for _, delta := range deltaOperands {
		for _, n := range int64Operands {
			want, fits := ratFloorMul(delta, n)
			got, err := FloorMul(delta, n)
			if !fits {
				if !errors.Is(err, ErrRange) {
					t.Fatalf("FloorMul(%g, %d) = (%d, %v), want ErrRange", delta, n, got, err)
				}
				continue
			}
			if err != nil || got != want {
				t.Fatalf("FloorMul(%g, %d) = (%d, %v), want (%d, nil)", delta, n, got, err, want)
			}
		}
	}
}

func TestNonFinite(t *testing.T) {
	for _, delta := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		if _, err := NewCoeff(delta); !errors.Is(err, ErrNonFinite) {
			t.Errorf("NewCoeff(%g): err = %v, want ErrNonFinite", delta, err)
		}
		if _, err := FloorMul(delta, 10); !errors.Is(err, ErrNonFinite) {
			t.Errorf("FloorMul(%g, 10): err = %v, want ErrNonFinite", delta, err)
		}
		if _, err := MulCmpF(1, 2, delta, 3, 4); !errors.Is(err, ErrNonFinite) {
			t.Errorf("MulCmpF(δ=%g): err = %v, want ErrNonFinite", delta, err)
		}
	}
}

func TestCoeffDecompositionRoundTrip(t *testing.T) {
	// mant·2^exp must reconstruct the coefficient exactly for every
	// finite float64, including denormals.
	for _, delta := range deltaOperands {
		co, err := NewCoeff(delta)
		if err != nil {
			t.Fatalf("NewCoeff(%g): %v", delta, err)
		}
		back := math.Ldexp(float64(co.mant), co.exp)
		if co.neg {
			back = -back
		}
		if back != delta && !(delta == 0 && back == 0) {
			t.Errorf("Coeff(%g) reconstructs to %g", delta, back)
		}
		if co.mant >= 1<<53 {
			t.Errorf("Coeff(%g) mantissa %d >= 2^53", delta, co.mant)
		}
	}
}

// TestPropertyRandomizedDifferential drives all three kernels with a
// mix of random magnitudes (uniform bit-lengths, so small and huge
// operands are equally likely) against the big.Rat reference.
func TestPropertyRandomizedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	randInt64 := func() int64 {
		v := int64(rng.Uint64() >> uint(rng.Intn(64)))
		if rng.Intn(2) == 0 {
			v = -v
		}
		return v
	}
	randDelta := func() float64 {
		switch rng.Intn(4) {
		case 0:
			return float64(rng.Intn(16)) + rng.Float64()
		case 1:
			return math.Ldexp(rng.Float64(), rng.Intn(1200)-600)
		case 2:
			return -math.Ldexp(rng.Float64(), rng.Intn(1200)-600)
		default:
			return deltaOperands[rng.Intn(len(deltaOperands))]
		}
	}
	for i := 0; i < 20000; i++ {
		a, b, c, d := randInt64(), randInt64(), randInt64(), randInt64()
		if got, want := MulCmp(a, b, c, d), ratMulCmp(a, b, c, d); got != want {
			t.Fatalf("MulCmp(%d,%d,%d,%d) = %d, want %d", a, b, c, d, got, want)
		}
		delta := randDelta()
		co, err := NewCoeff(delta)
		if err != nil {
			t.Fatalf("NewCoeff(%g): %v", delta, err)
		}
		e, f := randInt64(), randInt64()
		if got, want := co.MulCmp3(a, b, c, d, e, f), ratMulCmp3(a, b, c, delta, d, e, f); got != want {
			t.Fatalf("MulCmp3(%d,%d,%d; δ=%g; %d,%d,%d) = %d, want %d", a, b, c, delta, d, e, f, got, want)
		}
		want, fits := ratFloorMul(delta, a)
		got, err := co.FloorMul(a)
		if !fits {
			if !errors.Is(err, ErrRange) {
				t.Fatalf("FloorMul(%g, %d) = (%d, %v), want ErrRange", delta, a, got, err)
			}
		} else if err != nil || got != want {
			t.Fatalf("FloorMul(%g, %d) = (%d, %v), want (%d, nil)", delta, a, got, err, want)
		}
	}
}

func BenchmarkMulCmp(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulCmp(int64(i)|1, 123456789, 987654321, int64(i)|3)
	}
}

func BenchmarkCoeffMulCmp(b *testing.B) {
	co, err := NewCoeff(2.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		co.MulCmp(int64(i)|1, 123456789, 987654321, int64(i)|3)
	}
}

func BenchmarkCoeffFloorMul(b *testing.B) {
	co, err := NewCoeff(2.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := co.FloorMul(int64(i) | 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRatMulCmp(b *testing.B) {
	// The big.Rat path the fast kernels replace, for the speedup ratio.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ratMulCmp3(int64(i)|1, 123456789, 1, 2.5, 987654321, int64(i)|3, 1)
	}
}

// Package model defines the task, instance and schedule types shared by
// every algorithm in this repository, together with objective evaluation
// and schedule validation.
//
// The model follows Section 2.1 of Saule, Dutot and Mounié, "Scheduling
// with Storage Constraints" (IPDPS 2008): a set T = {t1..tn} of tasks,
// task i taking p_i time units and occupying s_i memory units, and a set
// Q of m identical processors. A schedule assigns each task to exactly
// one processor; with precedence constraints it additionally fixes a
// start time per task such that a processor runs one task at a time and
// a task starts only after all its predecessors completed.
//
// All quantities are integers, matching the paper's pseudo-code inputs
// ("n integers"). Instances from the inapproximability sections use an
// infinitesimal ε; those are represented with a large integer Scale and
// ε = 1 unit (see package hardness).
package model

import (
	"errors"
	"fmt"
	"sort"
)

// Time is a processing-time quantity (integer time units).
type Time = int64

// Mem is a storage quantity (integer memory units).
type Mem = int64

// Task is a single task: an identifier, a processing time and a storage
// size. IDs are indices into the instance's task slice.
type Task struct {
	ID   int    `json:"id"`
	P    Time   `json:"p"` // processing time p_i > 0
	S    Mem    `json:"s"` // storage size s_i >= 0
	Name string `json:"name,omitempty"`
}

// Instance is a set of independent tasks and a processor count.
type Instance struct {
	M     int    `json:"m"` // number of identical processors, m >= 1
	Tasks []Task `json:"tasks"`
}

// NewInstance builds an instance from parallel p/s slices, assigning IDs
// 0..n-1. It panics if the slices differ in length; use Validate for
// data-dependent checks.
func NewInstance(m int, p []Time, s []Mem) *Instance {
	if len(p) != len(s) {
		panic(fmt.Sprintf("model: len(p)=%d != len(s)=%d", len(p), len(s)))
	}
	tasks := make([]Task, len(p))
	for i := range p {
		tasks[i] = Task{ID: i, P: p[i], S: s[i]}
	}
	return &Instance{M: m, Tasks: tasks}
}

// N returns the number of tasks.
func (in *Instance) N() int { return len(in.Tasks) }

// P returns the processing-time vector (a fresh slice).
func (in *Instance) P() []Time {
	p := make([]Time, len(in.Tasks))
	for i, t := range in.Tasks {
		p[i] = t.P
	}
	return p
}

// S returns the storage-size vector (a fresh slice).
func (in *Instance) S() []Mem {
	s := make([]Mem, len(in.Tasks))
	for i, t := range in.Tasks {
		s[i] = t.S
	}
	return s
}

// TotalWork returns Σ p_i.
func (in *Instance) TotalWork() Time {
	var w Time
	for _, t := range in.Tasks {
		w += t.P
	}
	return w
}

// TotalMem returns Σ s_i.
func (in *Instance) TotalMem() Mem {
	var s Mem
	for _, t := range in.Tasks {
		s += t.S
	}
	return s
}

// MaxP returns max_i p_i (0 for an empty instance).
func (in *Instance) MaxP() Time {
	var mx Time
	for _, t := range in.Tasks {
		if t.P > mx {
			mx = t.P
		}
	}
	return mx
}

// MaxS returns max_i s_i (0 for an empty instance).
func (in *Instance) MaxS() Mem {
	var mx Mem
	for _, t := range in.Tasks {
		if t.S > mx {
			mx = t.S
		}
	}
	return mx
}

// Validate checks structural sanity: m >= 1, IDs are 0..n-1, p_i > 0 and
// s_i >= 0 for every task.
func (in *Instance) Validate() error {
	if in.M < 1 {
		return fmt.Errorf("model: m = %d, need m >= 1", in.M)
	}
	for i, t := range in.Tasks {
		if t.ID != i {
			return fmt.Errorf("model: task %d has ID %d, want %d", i, t.ID, i)
		}
		if t.P <= 0 {
			return fmt.Errorf("model: task %d has p = %d, need p > 0", i, t.P)
		}
		if t.S < 0 {
			return fmt.Errorf("model: task %d has s = %d, need s >= 0", i, t.S)
		}
	}
	return nil
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	tasks := make([]Task, len(in.Tasks))
	copy(tasks, in.Tasks)
	return &Instance{M: in.M, Tasks: tasks}
}

// Swapped returns the instance with the roles of p and s exchanged.
// Section 2.1 notes the two objectives are strictly symmetric on
// independent tasks; several tests exploit this.
func (in *Instance) Swapped() *Instance {
	tasks := make([]Task, len(in.Tasks))
	for i, t := range in.Tasks {
		tasks[i] = Task{ID: t.ID, P: Time(t.S), S: Mem(t.P), Name: t.Name}
	}
	return &Instance{M: in.M, Tasks: tasks}
}

// Assignment maps each task (by ID) to a processor in [0, m).
// It is the "schedule π" of the independent-task sections, where task
// order on a processor is irrelevant to all three objectives.
type Assignment []int

// Objectives of an assignment on an instance.

// Loads returns the per-processor total processing time under a.
func (in *Instance) Loads(a Assignment) []Time {
	loads := make([]Time, in.M)
	for i, t := range in.Tasks {
		loads[a[i]] += t.P
	}
	return loads
}

// MemLoads returns the per-processor total storage under a.
func (in *Instance) MemLoads(a Assignment) []Mem {
	mem := make([]Mem, in.M)
	for i, t := range in.Tasks {
		mem[a[i]] += t.S
	}
	return mem
}

// Cmax returns the makespan of assignment a: the maximum per-processor
// sum of processing times.
func (in *Instance) Cmax(a Assignment) Time {
	var mx Time
	for _, l := range in.Loads(a) {
		if l > mx {
			mx = l
		}
	}
	return mx
}

// Mmax returns the maximum cumulative memory occupation of a processor
// under assignment a.
func (in *Instance) Mmax(a Assignment) Mem {
	var mx Mem
	for _, l := range in.MemLoads(a) {
		if l > mx {
			mx = l
		}
	}
	return mx
}

// SumCi returns the minimum achievable sum of completion times of
// assignment a, i.e. with tasks on each processor run in SPT order
// (shortest first), which is optimal for ΣCi given an assignment.
func (in *Instance) SumCi(a Assignment) Time {
	perProc := make([][]Time, in.M)
	for i, t := range in.Tasks {
		perProc[a[i]] = append(perProc[a[i]], t.P)
	}
	var total Time
	for _, ps := range perProc {
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		var clock Time
		for _, p := range ps {
			clock += p
			total += clock
		}
	}
	return total
}

// ValidateAssignment checks that a assigns every task to a processor in
// [0, m) and has exactly one entry per task.
func (in *Instance) ValidateAssignment(a Assignment) error {
	if len(a) != len(in.Tasks) {
		return fmt.Errorf("model: assignment covers %d tasks, instance has %d", len(a), len(in.Tasks))
	}
	for i, q := range a {
		if q < 0 || q >= in.M {
			return fmt.Errorf("model: task %d assigned to processor %d, want [0,%d)", i, q, in.M)
		}
	}
	return nil
}

// Value is a point in objective space (Cmax, Mmax). It is the currency
// of the Pareto-front packages.
type Value struct {
	Cmax Time
	Mmax Mem
}

// Eval returns the (Cmax, Mmax) value of assignment a.
func (in *Instance) Eval(a Assignment) Value {
	return Value{Cmax: in.Cmax(a), Mmax: in.Mmax(a)}
}

// Dominates reports whether v weakly dominates w with at least one
// strict improvement (standard Pareto dominance, minimization).
func (v Value) Dominates(w Value) bool {
	if v.Cmax > w.Cmax || v.Mmax > w.Mmax {
		return false
	}
	return v.Cmax < w.Cmax || v.Mmax < w.Mmax
}

// WeaklyDominates reports whether v is no worse than w on both
// objectives.
func (v Value) WeaklyDominates(w Value) bool {
	return v.Cmax <= w.Cmax && v.Mmax <= w.Mmax
}

func (v Value) String() string {
	return fmt.Sprintf("(Cmax=%d, Mmax=%d)", v.Cmax, v.Mmax)
}

// ErrEmpty is returned by operations that need at least one task.
var ErrEmpty = errors.New("model: empty instance")

package model

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewInstanceBasics(t *testing.T) {
	in := NewInstance(3, []Time{4, 2, 7}, []Mem{1, 5, 3})
	if in.N() != 3 {
		t.Fatalf("N() = %d, want 3", in.N())
	}
	if got := in.TotalWork(); got != 13 {
		t.Errorf("TotalWork = %d, want 13", got)
	}
	if got := in.TotalMem(); got != 9 {
		t.Errorf("TotalMem = %d, want 9", got)
	}
	if got := in.MaxP(); got != 7 {
		t.Errorf("MaxP = %d, want 7", got)
	}
	if got := in.MaxS(); got != 5 {
		t.Errorf("MaxS = %d, want 5", got)
	}
	if err := in.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewInstancePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched p/s lengths")
		}
	}()
	NewInstance(2, []Time{1, 2}, []Mem{1})
}

func TestValidateRejectsBadData(t *testing.T) {
	cases := []struct {
		name string
		in   *Instance
	}{
		{"zero machines", &Instance{M: 0, Tasks: []Task{{ID: 0, P: 1}}}},
		{"nonpositive p", &Instance{M: 1, Tasks: []Task{{ID: 0, P: 0}}}},
		{"negative s", &Instance{M: 1, Tasks: []Task{{ID: 0, P: 1, S: -1}}}},
		{"bad id", &Instance{M: 1, Tasks: []Task{{ID: 5, P: 1}}}},
	}
	for _, tc := range cases {
		if err := tc.in.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid instance", tc.name)
		}
	}
}

func TestObjectivesSmall(t *testing.T) {
	// Two processors, three tasks. Assignment {0,1,1}.
	in := NewInstance(2, []Time{4, 2, 7}, []Mem{1, 5, 3})
	a := Assignment{0, 1, 1}
	if got := in.Cmax(a); got != 9 {
		t.Errorf("Cmax = %d, want 9", got)
	}
	if got := in.Mmax(a); got != 8 {
		t.Errorf("Mmax = %d, want 8", got)
	}
	// SPT per processor: proc0 = {4} -> 4; proc1 = {2,7} -> 2 + 9 = 11.
	if got := in.SumCi(a); got != 15 {
		t.Errorf("SumCi = %d, want 15", got)
	}
}

func TestValidateAssignment(t *testing.T) {
	in := NewInstance(2, []Time{1, 1}, []Mem{0, 0})
	if err := in.ValidateAssignment(Assignment{0, 1}); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
	if err := in.ValidateAssignment(Assignment{0}); err == nil {
		t.Error("short assignment accepted")
	}
	if err := in.ValidateAssignment(Assignment{0, 2}); err == nil {
		t.Error("out-of-range processor accepted")
	}
}

func TestDominance(t *testing.T) {
	a := Value{Cmax: 1, Mmax: 2}
	b := Value{Cmax: 2, Mmax: 2}
	c := Value{Cmax: 2, Mmax: 1}
	if !a.Dominates(b) {
		t.Error("(1,2) should dominate (2,2)")
	}
	if a.Dominates(c) || c.Dominates(a) {
		t.Error("(1,2) and (2,1) are incomparable")
	}
	if a.Dominates(a) {
		t.Error("a value must not dominate itself")
	}
	if !a.WeaklyDominates(a) {
		t.Error("a value weakly dominates itself")
	}
}

func TestSwappedSymmetry(t *testing.T) {
	in := NewInstance(2, []Time{4, 2, 7}, []Mem{1, 5, 3})
	sw := in.Swapped()
	a := Assignment{0, 1, 0}
	if Time(in.Mmax(a)) != sw.Cmax(a) {
		t.Errorf("Mmax(in) = %d != Cmax(swapped) = %d", in.Mmax(a), sw.Cmax(a))
	}
	if Mem(in.Cmax(a)) != sw.Mmax(a) {
		t.Errorf("Cmax(in) = %d != Mmax(swapped) = %d", in.Cmax(a), sw.Mmax(a))
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := NewInstance(2, []Time{1, 2}, []Mem{3, 4})
	cl := in.Clone()
	cl.Tasks[0].P = 99
	if in.Tasks[0].P == 99 {
		t.Error("Clone shares task storage with the original")
	}
}

func TestFromAssignmentProducesValidSchedule(t *testing.T) {
	in := NewInstance(3, []Time{4, 2, 7, 1, 3}, []Mem{1, 5, 3, 2, 2})
	a := Assignment{0, 1, 1, 2, 0}
	sc := FromAssignment(in, a)
	if err := sc.Validate(nil); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if sc.Cmax() != in.Cmax(a) {
		t.Errorf("schedule Cmax = %d, assignment Cmax = %d", sc.Cmax(), in.Cmax(a))
	}
	if sc.Mmax() != in.Mmax(a) {
		t.Errorf("schedule Mmax = %d, assignment Mmax = %d", sc.Mmax(), in.Mmax(a))
	}
}

func TestFromAssignmentSPTMinimisesSumCi(t *testing.T) {
	in := NewInstance(2, []Time{5, 1, 3, 2}, []Mem{0, 0, 0, 0})
	a := Assignment{0, 0, 0, 1}
	spt := FromAssignmentSPT(in, a)
	if err := spt.Validate(nil); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := spt.SumCi(), in.SumCi(a); got != want {
		t.Errorf("SPT schedule SumCi = %d, optimal per-assignment SumCi = %d", got, want)
	}
	// Arbitrary-order packing can only be worse or equal.
	arb := FromAssignment(in, a)
	if arb.SumCi() < spt.SumCi() {
		t.Errorf("arbitrary order beat SPT: %d < %d", arb.SumCi(), spt.SumCi())
	}
}

func TestScheduleValidateDetectsOverlap(t *testing.T) {
	sc := NewSchedule(1, 2)
	sc.Proc = []int{0, 0}
	sc.Start = []Time{0, 1}
	sc.P = []Time{3, 3}
	sc.S = []Mem{0, 0}
	if err := sc.Validate(nil); err == nil {
		t.Error("overlapping tasks accepted")
	}
}

func TestScheduleValidateDetectsPrecedenceViolation(t *testing.T) {
	sc := NewSchedule(2, 2)
	sc.Proc = []int{0, 1}
	sc.Start = []Time{0, 0}
	sc.P = []Time{3, 3}
	sc.S = []Mem{0, 0}
	prec := [][]int{{}, {0}} // task 1 depends on task 0
	if err := sc.Validate(prec); err == nil {
		t.Error("precedence violation accepted")
	}
	sc.Start[1] = 3
	if err := sc.Validate(prec); err != nil {
		t.Errorf("valid precedence schedule rejected: %v", err)
	}
}

func TestScheduleValidateDetectsUnassigned(t *testing.T) {
	sc := NewSchedule(2, 1)
	sc.P[0] = 1
	if err := sc.Validate(nil); err == nil {
		t.Error("unassigned task accepted")
	}
}

func TestJSONRoundTripInstance(t *testing.T) {
	in := NewInstance(4, []Time{4, 2, 7, 9}, []Mem{1, 5, 3, 0})
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadInstanceJSON(&buf)
	if err != nil {
		t.Fatalf("ReadInstanceJSON: %v", err)
	}
	if back.M != in.M || back.N() != in.N() {
		t.Fatalf("round trip lost shape: m=%d n=%d", back.M, back.N())
	}
	for i := range in.Tasks {
		if in.Tasks[i] != back.Tasks[i] {
			t.Errorf("task %d: %+v != %+v", i, in.Tasks[i], back.Tasks[i])
		}
	}
}

func TestJSONRoundTripSchedule(t *testing.T) {
	in := NewInstance(2, []Time{4, 2}, []Mem{1, 5})
	sc := FromAssignment(in, Assignment{0, 1})
	var buf bytes.Buffer
	if err := sc.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadScheduleJSON(&buf)
	if err != nil {
		t.Fatalf("ReadScheduleJSON: %v", err)
	}
	if back.Cmax() != sc.Cmax() || back.Mmax() != sc.Mmax() {
		t.Errorf("round trip changed objectives")
	}
}

func TestReadInstanceJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadInstanceJSON(bytes.NewBufferString(`{"m":0,"tasks":[]}`)); err == nil {
		t.Error("accepted m=0")
	}
	if _, err := ReadInstanceJSON(bytes.NewBufferString(`not json`)); err == nil {
		t.Error("accepted malformed JSON")
	}
}

// randomInstance builds a reproducible random instance for property
// tests.
func randomInstance(rng *rand.Rand, maxN, maxM int) (*Instance, Assignment) {
	n := 1 + rng.Intn(maxN)
	m := 1 + rng.Intn(maxM)
	p := make([]Time, n)
	s := make([]Mem, n)
	a := make(Assignment, n)
	for i := 0; i < n; i++ {
		p[i] = Time(1 + rng.Intn(100))
		s[i] = Mem(rng.Intn(100))
		a[i] = rng.Intn(m)
	}
	return NewInstance(m, p, s), a
}

func TestPropertyObjectivesMatchScheduleForm(t *testing.T) {
	// For any assignment, the packed schedule has exactly the
	// assignment's Cmax and Mmax, and loads sum to total work.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in, a := randomInstance(rng, 40, 8)
		sc := FromAssignment(in, a)
		if sc.Validate(nil) != nil {
			return false
		}
		var sum Time
		for _, l := range in.Loads(a) {
			sum += l
		}
		return sc.Cmax() == in.Cmax(a) &&
			sc.Mmax() == in.Mmax(a) &&
			sum == in.TotalWork()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertySumCiLowerBoundsAnyOrder(t *testing.T) {
	// Instance.SumCi (SPT per processor) never exceeds the packed
	// arbitrary-order schedule's ΣCi.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in, a := randomInstance(rng, 30, 6)
		return in.SumCi(a) <= FromAssignment(in, a).SumCi()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertySwapTwice(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in, _ := randomInstance(rng, 20, 4)
		back := in.Swapped().Swapped()
		for i := range in.Tasks {
			if in.Tasks[i].P != back.Tasks[i].P || in.Tasks[i].S != back.Tasks[i].S {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestReadInstanceJSONIDContract pins the ID semantics: files without
// IDs (all zero) are renumbered positionally, explicit in-order IDs
// pass, and a reordered file is rejected rather than silently
// reinterpreted.
func TestReadInstanceJSONIDContract(t *testing.T) {
	in, err := ReadInstanceJSON(strings.NewReader(`{"m":2,"tasks":[{"p":1,"s":0},{"p":2,"s":1}]}`))
	if err != nil {
		t.Fatalf("implicit IDs rejected: %v", err)
	}
	if in.Tasks[0].ID != 0 || in.Tasks[1].ID != 1 {
		t.Errorf("implicit IDs not renumbered: %+v", in.Tasks)
	}
	if _, err := ReadInstanceJSON(strings.NewReader(`{"m":2,"tasks":[{"id":0,"p":1,"s":0},{"id":1,"p":2,"s":1}]}`)); err != nil {
		t.Fatalf("explicit in-order IDs rejected: %v", err)
	}
	if _, err := ReadInstanceJSON(strings.NewReader(`{"m":2,"tasks":[{"id":1,"p":1,"s":0},{"id":0,"p":2,"s":1}]}`)); err == nil {
		t.Error("reordered task IDs accepted")
	}
}

package model

import (
	"fmt"
	"sort"
)

// Schedule is a timed schedule: an assignment plus a start time per
// task. It is the (π, σ) pair returned by RLS∆ (Algorithm 2 in the
// paper) and in general by any algorithm for the precedence-constrained
// problem P | p_j, s_j, prec | Cmax, Mmax.
type Schedule struct {
	M     int    `json:"m"`
	Proc  []int  `json:"proc"`  // Proc[i]: processor of task i (the paper's π)
	Start []Time `json:"start"` // Start[i]: start time σ(i)
	P     []Time `json:"p"`     // processing times (copied for self-containment)
	S     []Mem  `json:"s"`     // storage sizes
}

// NewSchedule allocates an empty schedule for n tasks on m processors
// with all tasks unassigned (Proc[i] = -1).
func NewSchedule(m, n int) *Schedule {
	proc := make([]int, n)
	for i := range proc {
		proc[i] = -1
	}
	return &Schedule{
		M:     m,
		Proc:  proc,
		Start: make([]Time, n),
		P:     make([]Time, n),
		S:     make([]Mem, n),
	}
}

// N returns the number of tasks.
func (sc *Schedule) N() int { return len(sc.Proc) }

// Completion returns C_i = σ(i) + p_i of task i.
func (sc *Schedule) Completion(i int) Time { return sc.Start[i] + sc.P[i] }

// Cmax returns max_i C_i, the completion time of the last task.
func (sc *Schedule) Cmax() Time {
	var mx Time
	for i := range sc.Proc {
		if c := sc.Completion(i); c > mx {
			mx = c
		}
	}
	return mx
}

// Mmax returns the maximum cumulative memory occupation over
// processors. Memory is cumulative for the whole run (code storage):
// a task's s_i is charged to its processor for the entire schedule,
// exactly as in the paper.
func (sc *Schedule) Mmax() Mem {
	var mx Mem
	for _, l := range sc.MemLoads() {
		if l > mx {
			mx = l
		}
	}
	return mx
}

// MemLoads returns per-processor cumulative memory.
func (sc *Schedule) MemLoads() []Mem {
	mem := make([]Mem, sc.M)
	for i, q := range sc.Proc {
		if q >= 0 {
			mem[q] += sc.S[i]
		}
	}
	return mem
}

// Loads returns per-processor total processing time (busy time).
func (sc *Schedule) Loads() []Time {
	loads := make([]Time, sc.M)
	for i, q := range sc.Proc {
		if q >= 0 {
			loads[q] += sc.P[i]
		}
	}
	return loads
}

// SumCi returns Σ_i C_i.
func (sc *Schedule) SumCi() Time {
	var total Time
	for i := range sc.Proc {
		total += sc.Completion(i)
	}
	return total
}

// Assignment returns the processor assignment as an Assignment value.
func (sc *Schedule) Assignment() Assignment {
	a := make(Assignment, len(sc.Proc))
	copy(a, sc.Proc)
	return a
}

// Validate checks that the schedule is feasible for the given precedence
// relation (prec[i] lists predecessors of i; pass nil for independent
// tasks):
//
//   - every task is assigned to a processor in [0, m) with Start >= 0,
//   - no two tasks overlap on a processor,
//   - every task starts at or after the completion of each predecessor.
func (sc *Schedule) Validate(prec [][]int) error {
	n := len(sc.Proc)
	if len(sc.Start) != n || len(sc.P) != n || len(sc.S) != n {
		return fmt.Errorf("model: inconsistent schedule slice lengths")
	}
	byProc := make([][]int, sc.M)
	for i, q := range sc.Proc {
		if q < 0 || q >= sc.M {
			return fmt.Errorf("model: task %d on processor %d, want [0,%d)", i, q, sc.M)
		}
		if sc.Start[i] < 0 {
			return fmt.Errorf("model: task %d starts at %d < 0", i, sc.Start[i])
		}
		if sc.P[i] <= 0 {
			return fmt.Errorf("model: task %d has p = %d, need p > 0", i, sc.P[i])
		}
		byProc[q] = append(byProc[q], i)
	}
	for q, ts := range byProc {
		sort.Slice(ts, func(a, b int) bool { return sc.Start[ts[a]] < sc.Start[ts[b]] })
		for k := 1; k < len(ts); k++ {
			prev, cur := ts[k-1], ts[k]
			if sc.Completion(prev) > sc.Start[cur] {
				return fmt.Errorf("model: tasks %d and %d overlap on processor %d ([%d,%d) vs [%d,%d))",
					prev, cur, q,
					sc.Start[prev], sc.Completion(prev),
					sc.Start[cur], sc.Completion(cur))
			}
		}
	}
	if prec != nil {
		for i, preds := range prec {
			for _, j := range preds {
				if sc.Completion(j) > sc.Start[i] {
					return fmt.Errorf("model: task %d starts at %d before predecessor %d completes at %d",
						i, sc.Start[i], j, sc.Completion(j))
				}
			}
		}
	}
	return nil
}

// FromAssignment builds a timed schedule from an independent-task
// assignment by packing each processor's tasks back to back in the
// given order (order is irrelevant to Cmax and Mmax).
func FromAssignment(in *Instance, a Assignment) *Schedule {
	sc := NewSchedule(in.M, in.N())
	clock := make([]Time, in.M)
	for i, t := range in.Tasks {
		q := a[i]
		sc.Proc[i] = q
		sc.Start[i] = clock[q]
		sc.P[i] = t.P
		sc.S[i] = t.S
		clock[q] += t.P
	}
	return sc
}

// FromAssignmentSPT builds a timed schedule from an assignment running
// each processor's tasks in SPT order, which minimises ΣCi for the
// fixed assignment.
func FromAssignmentSPT(in *Instance, a Assignment) *Schedule {
	order := make([]int, in.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		ti, tj := in.Tasks[order[x]], in.Tasks[order[y]]
		if ti.P != tj.P {
			return ti.P < tj.P
		}
		return ti.ID < tj.ID
	})
	sc := NewSchedule(in.M, in.N())
	clock := make([]Time, in.M)
	for _, i := range order {
		t := in.Tasks[i]
		q := a[i]
		sc.Proc[i] = q
		sc.Start[i] = clock[q]
		sc.P[i] = t.P
		sc.S[i] = t.S
		clock[q] += t.P
	}
	return sc
}

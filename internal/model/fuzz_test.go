package model_test

// Native fuzz target for the instance JSON reader, which is fed
// untrusted files by schedcli. The contract under fuzzing: never
// panic, and every accepted instance must survive the canonical
// round trip — re-encoding and re-reading it yields the same
// canonical cache serialization, so content-addressed keys are stable
// across a decode/encode cycle.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"storagesched/internal/cache"
	"storagesched/internal/model"
)

// seedCorpus feeds every committed *.json under the smoke testdata
// (shared with the schedcli golden tests) plus inline edge cases.
func seedCorpus(f *testing.F, literals []string) {
	f.Helper()
	names, err := filepath.Glob(filepath.Join("..", "..", "cmd", "schedcli", "testdata", "smoke", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, lit := range literals {
		f.Add([]byte(lit))
	}
}

func FuzzReadInstanceJSON(f *testing.F) {
	seedCorpus(f, []string{
		`{"m":1,"tasks":[{"p":1,"s":0}]}`,
		`{"m":0,"tasks":[]}`,
		`{"m":2,"tasks":[{"id":1,"p":3,"s":1},{"id":0,"p":2,"s":2}]}`,
		`{"m":2,"tasks":[{"p":-1,"s":-1}]}`,
		`{"m":1,"tasks":[{"p":9223372036854775807,"s":9223372036854775807}]}`,
		`not json`,
		`{}`,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := model.ReadInstanceJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected input; only panics are failures
		}
		canonical := cache.CanonicalInstance(in)

		var buf bytes.Buffer
		if err := in.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted instance failed to encode: %v", err)
		}
		again, err := model.ReadInstanceJSON(&buf)
		if err != nil {
			t.Fatalf("re-encoded instance rejected: %v\ninput: %q", err, data)
		}
		if got := cache.CanonicalInstance(again); !bytes.Equal(got, canonical) {
			t.Fatalf("canonical serialization not stable across a round trip:\n first: %q\nsecond: %q\ninput: %q",
				canonical, got, data)
		}
	})
}

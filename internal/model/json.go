package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// instanceJSON is the on-disk form of an Instance, kept separate from
// the in-memory type so the wire format can stay stable.
type instanceJSON struct {
	M     int    `json:"m"`
	Tasks []Task `json:"tasks"`
}

// WriteJSON encodes the instance to w with indentation.
func (in *Instance) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(instanceJSON{M: in.M, Tasks: in.Tasks})
}

// ReadInstanceJSON decodes an instance from r and validates it.
func ReadInstanceJSON(r io.Reader) (*Instance, error) {
	var ij instanceJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ij); err != nil {
		return nil, fmt.Errorf("model: decoding instance: %w", err)
	}
	in := &Instance{M: ij.M, Tasks: ij.Tasks}
	// Accept files with implicit IDs (all zero): renumber sequentially.
	// Any nonzero ID makes the file explicit, and Validate then holds
	// every ID to its index.
	implicit := true
	for _, t := range in.Tasks {
		if t.ID != 0 {
			implicit = false
			break
		}
	}
	if implicit {
		for i := range in.Tasks {
			in.Tasks[i].ID = i
		}
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// scheduleJSON is the on-disk form of a Schedule.
type scheduleJSON struct {
	M     int    `json:"m"`
	Proc  []int  `json:"proc"`
	Start []Time `json:"start"`
	P     []Time `json:"p"`
	S     []Mem  `json:"s"`
}

// WriteJSON encodes the schedule to w with indentation.
func (sc *Schedule) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(scheduleJSON{M: sc.M, Proc: sc.Proc, Start: sc.Start, P: sc.P, S: sc.S})
}

// ReadScheduleJSON decodes a schedule from r.
func ReadScheduleJSON(r io.Reader) (*Schedule, error) {
	var sj scheduleJSON
	if err := json.NewDecoder(r).Decode(&sj); err != nil {
		return nil, fmt.Errorf("model: decoding schedule: %w", err)
	}
	return &Schedule{M: sj.M, Proc: sj.Proc, Start: sj.Start, P: sj.P, S: sj.S}, nil
}

package lint

// All returns the full schedlint suite in reporting order. The
// multichecker (cmd/schedlint), the vet unit-checker mode and the
// fixture tests all draw from this one registry.
func All() []*Analyzer {
	return []*Analyzer{
		DetRange,
		ExactRat,
		ErrSentinel,
		CtxSend,
		PanicFree,
		DocConvention,
		DetRand,
	}
}

// ByName resolves one analyzer from the registry, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

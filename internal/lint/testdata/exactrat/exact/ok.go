// Fixture for exactrat inside internal/exact: the fallback path may
// use math/big freely, so this file must produce no findings.
package exact

import "math/big"

// CmpBig is a big.Rat fallback like the real kernels carry.
func CmpBig(a, b, c, d int64) int {
	lhs := new(big.Rat).SetInt64(a)
	lhs.Mul(lhs, big.NewRat(b, 1))
	rhs := new(big.Rat).SetInt64(c)
	rhs.Mul(rhs, big.NewRat(d, 1))
	return lhs.Cmp(rhs)
}

// Fixture for exactrat outside internal/exact: every math/big
// Rat/Int reference is a finding.
package engine

import "math/big"

// Threshold reconstructs the SBO merge threshold the slow way.
func Threshold(p, m, s, c int64, delta float64) bool {
	lhs := new(big.Rat).SetInt64(p * m)   // want "use of big.Rat outside storagesched/internal/exact"
	rhs := new(big.Rat).SetFloat64(delta) // want "use of big.Rat outside storagesched/internal/exact"
	rhs.Mul(rhs, big.NewRat(s, 1))        // want "use of big.NewRat outside storagesched/internal/exact"
	rhs.Mul(rhs, big.NewRat(c, 1))        // want "use of big.NewRat outside storagesched/internal/exact"
	return lhs.Cmp(rhs) < 0
}

// Count uses big.Int for a bound that fits in int64.
func Count(n int64) string {
	return big.NewInt(n).String() // want "use of big.NewInt outside storagesched/internal/exact"
}

// Fixture for panicfree in a panic-free package: every panic is a
// finding, whatever the function.
package engine

import "fmt"

// Execute must report failures as errors; this panic is the finding.
func Execute(delta float64) error {
	if delta <= 0 {
		panic(fmt.Sprintf("engine: bad delta %g", delta)) // want "panic in panic-free package"
	}
	return nil
}

// GoodError is the required shape.
func GoodError(delta float64) error {
	if delta <= 0 {
		return fmt.Errorf("engine: bad delta %g", delta)
	}
	return nil
}

// Fixture for panicfree in internal/metrics: a registry that panics
// on misuse turns an observability bug into an outage, so every panic
// is a finding — misuse must degrade (detached instruments, folded
// labels) instead.
package metrics

import "fmt"

// Register must not punish a duplicate registration with a crash.
func Register(name string, taken map[string]bool) {
	if taken[name] {
		panic(fmt.Sprintf("metrics: duplicate %q", name)) // want "panic in panic-free package"
	}
	taken[name] = true
}

// RegisterDetached is the required shape: the conflicting instrument
// still works, it just never appears in a scrape.
func RegisterDetached(name string, taken map[string]bool) bool {
	if taken[name] {
		return false
	}
	taken[name] = true
	return true
}

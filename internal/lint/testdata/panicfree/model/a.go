// Fixture for panicfree in a constructor package: the allowlisted
// invariant constructor may panic, anything else may not.
package model

import "fmt"

// Instance is a minimal stand-in for the real model.Instance.
type Instance struct {
	M    int
	P, S []int64
}

// NewInstance is on the allowlist (programmer-error guard in a
// literal-built constructor), so its panic is accepted.
func NewInstance(m int, p, s []int64) *Instance {
	if len(p) != len(s) {
		panic(fmt.Sprintf("model: len(p)=%d != len(s)=%d", len(p), len(s)))
	}
	return &Instance{M: m, P: p, S: s}
}

// Normalize is not on the allowlist: a new panic site in the
// constructor package is a finding until deliberately recorded.
func Normalize(in *Instance) {
	if in.M < 1 {
		panic("model: no processors") // want "not on the invariant-constructor allowlist"
	}
}

// Fixture for docconvention: exported symbols need docs that start
// with their name; groups may share one doc.
package a

// Documented is a correctly documented function.
func Documented() {}

func Undocumented() {} // want "exported func Undocumented has no doc comment"

// This helper does something. (Does not start with the name.)
func WrongStart() {} // want "doc for func WrongStart does not start with its name"

// Widget is a correctly documented type.
type Widget struct{}

type Naked struct{} // want "exported type Naked has no doc comment"

// The Gadget type. (Leading article violates the bare-name rule.)
type Gadget struct{} // want "doc for type Gadget does not start with its name"

// Limits for the widget family share one group doc, covering both.
const (
	MaxWidgets = 8
	MinWidgets = 1
)

// A missing const/var doc cannot be fixtured here: the want comment
// itself would count as the covering line comment. That case is unit
// tested directly against CheckFileDocs in lint_test.go.
const (
	Documented2 = 1 // Documented2 is covered by its line comment.
)

// unexported needs nothing.
func unexported() {}

var _ = unexported

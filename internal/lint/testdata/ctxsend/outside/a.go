// Fixture for ctxsend outside its enforcement scope: the same bare
// send produces no finding in an unscoped package.
package outside

// BareSendUnscoped would be a finding in engine/serve/shard.
func BareSendUnscoped(out chan int) {
	go func() {
		out <- 1
	}()
}

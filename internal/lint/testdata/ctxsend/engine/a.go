// Fixture for ctxsend inside an enforced package: goroutine sends
// must sit in a select with a cancellation escape.
package engine

import "context"

// BadBareSend parks forever when the consumer goes away.
func BadBareSend(ctx context.Context, out chan int) {
	go func() {
		out <- 1 // want "channel send in a goroutine outside a select"
	}()
}

// BadSelectNoDone has a select, but no escape: both cases are sends.
func BadSelectNoDone(out, alt chan int) {
	go func() {
		select {
		case out <- 1: // want "channel send in a goroutine outside a select"
		case alt <- 2: // want "channel send in a goroutine outside a select"
		}
	}()
}

// BadNestedInCase hides an unguarded send inside a guarded case body.
func BadNestedInCase(ctx context.Context, out, inner chan int) {
	go func() {
		select {
		case out <- 1:
			inner <- 2 // want "channel send in a goroutine outside a select"
		case <-ctx.Done():
		}
	}()
}

// GoodGuarded is the producer shape of engine.SweepBatch.
func GoodGuarded(ctx context.Context, out chan int) {
	go func() {
		select {
		case out <- 1:
		case <-ctx.Done():
		}
	}()
}

// GoodDefault cannot block: the send is abandoned when full.
func GoodDefault(out chan int) {
	go func() {
		select {
		case out <- 1:
		default:
		}
	}()
}

// GoodOutsideGoroutine blocks its caller, not a leaked goroutine; the
// caller's own context discipline applies.
func GoodOutsideGoroutine(out chan int) {
	out <- 1
}

// GoodAllowed documents why the send cannot block.
func GoodAllowed(done chan struct{}) {
	go func() {
		//schedlint:allow ctxsend buffered handoff of capacity 1, receiver always drains
		done <- struct{}{}
	}()
}

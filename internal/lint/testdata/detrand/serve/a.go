// Fixture for detrand outside the generator allowlist: importing
// math/rand on a sweep path is the finding.
package serve

import "math/rand" // want "import of math/rand outside the generator/experiment packages"

// Jitter would silently break byte-determinism.
func Jitter() float64 {
	return rand.Float64()
}

// Fixture for detrand inside the allowlist: the generator packages
// exist to produce seeded random families, so no finding.
package gen

import "math/rand"

// Sizes draws a seeded instance family.
func Sizes(seed int64, n int) []int64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = 1 + r.Int63n(100)
	}
	return out
}

// Fixture for errsentinel: identity comparisons against exported
// wrapped sentinels, and fmt.Errorf calls that mention one without %w.
package a

import (
	"errors"
	"fmt"
)

// ErrInfeasible mirrors the core sentinel shape: exported, wrapped by
// every producer.
var ErrInfeasible = errors.New("infeasible")

// ErrNotCertified is a second sentinel.
var ErrNotCertified = errors.New("not certified")

// errInternal is unexported; identity comparison is out of scope.
var errInternal = errors.New("internal")

// Solve produces wrapped sentinels, correctly.
func Solve(lb, budget int) error {
	if budget < lb {
		return fmt.Errorf("%w (LB=%d, budget=%d)", ErrInfeasible, lb, budget)
	}
	return nil
}

// BadEq compares a wrapped sentinel by identity.
func BadEq(err error) bool {
	return err == ErrInfeasible // want "use errors.Is"
}

// BadNeq is the negated form.
func BadNeq(err error) bool {
	if err != ErrNotCertified { // want "use errors.Is"
		return true
	}
	return false
}

// BadErrorfNoWrap mentions a sentinel with %v, severing the chain.
func BadErrorfNoWrap(lb int) error {
	return fmt.Errorf("solve failed: %v (LB=%d)", ErrInfeasible, lb) // want "without %w"
}

// BadErrorfNoVerb stringifies a sentinel without any wrapping verb.
func BadErrorfNoVerb() error {
	return fmt.Errorf("inner: %s", ErrNotCertified) // want "without %w"
}

// GoodIs is the required consumer shape.
func GoodIs(err error) bool {
	return errors.Is(err, ErrInfeasible)
}

// GoodWrap wraps with %w like the real producers.
func GoodWrap(lb int) error {
	return fmt.Errorf("%w (LB=%d)", ErrNotCertified, lb)
}

// GoodNilCheck is untouched: nil is not a sentinel.
func GoodNilCheck(err error) bool {
	return err == nil
}

// GoodUnexported identity checks on unexported errors are left to
// code review; the exported contract is what crosses packages.
func GoodUnexported(err error) bool {
	return err == errInternal
}

// GoodNonError compares an exported non-error Err-prefixed value.
var ErrCount = 3

// GoodNonErrorCompare must not fire: ErrCount is not an error.
func GoodNonErrorCompare(n int) bool {
	return n == ErrCount
}

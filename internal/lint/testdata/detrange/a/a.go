// Fixture for the detrange analyzer: map iterations whose order can
// reach an output must sort afterwards or carry //schedlint:ordered.
package a

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// BadAppend accumulates map-ordered keys into an escaping slice and
// returns it unsorted.
func BadAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "map iteration appends to a slice that outlives the loop"
	}
	return keys
}

// BadFieldAppend appends into a field, which always outlives the loop.
type sink struct{ keys []string }

func (s *sink) BadFieldAppend(m map[string]int) {
	for k := range m {
		s.keys = append(s.keys, k) // want "map iteration appends to a slice that outlives the loop"
	}
}

// BadEncode writes JSON lines in map order; no later sort can fix the
// emitted bytes.
func BadEncode(m map[string]int, enc *json.Encoder) {
	for k, v := range m {
		_ = enc.Encode(map[string]any{k: fmt.Sprint(v)}) // want "map iteration writes to an encoder or stream"
	}
}

// BadFprintf streams formatted lines in map order.
func BadFprintf(m map[string]int, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "map iteration writes to an encoder or stream"
	}
}

// GoodSortAfter is the collect-then-sort shape of
// internal/engine/engine.go:383 (AssembleFront): the append runs in
// map order, but the subsequent sort.Slice makes the result canonical
// before anyone observes it.
func GoodSortAfter(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// GoodOrderedDirective asserts order is immaterial explicitly.
func GoodOrderedDirective(m map[string]int) []string {
	var keys []string
	//schedlint:ordered order folded away by the caller's set-union
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// GoodLocalSlice appends to a slice that dies inside the loop body,
// so map order cannot escape through it.
func GoodLocalSlice(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		doubled = append(doubled, vs...)
		total += len(doubled)
	}
	return total
}

// GoodSliceRange iterates a slice, not a map: order is deterministic.
func GoodSliceRange(xs []string, w io.Writer) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}

// GoodCounting only aggregates order-independent scalars.
func GoodCounting(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

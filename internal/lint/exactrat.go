package lint

import (
	"go/ast"
	"go/types"
)

// exactPkg is the one package allowed to reference math/big: it owns
// the overflow-checked kernels and their big.Rat fallback paths.
const exactPkg = "storagesched/internal/exact"

// bigNames are the math/big identifiers whose use constitutes an
// arbitrary-precision construction on a potentially hot path.
var bigNames = map[string]bool{
	"Rat":    true,
	"Int":    true,
	"Float":  true,
	"NewRat": true,
	"NewInt": true,
}

// ExactRat reports any math/big rational or integer reference outside
// internal/exact. PR 6 moved every hot-path big.Rat construction
// behind the exact kernels (128-bit fast path, big.Rat only as the
// overflow fallback inside internal/exact); a new big.Rat call site
// anywhere else silently regresses that work, and nothing but this
// check would notice until a profile does.
var ExactRat = &Analyzer{
	Name: "exactrat",
	Doc:  "math/big Rat/Int construction outside internal/exact (use the exact kernels)",
	Run:  runExactRat,
}

func runExactRat(pass *Pass) {
	if pass.Path == exactPkg {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !bigNames[sel.Sel.Name] {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "math/big" {
				return true
			}
			// Only flag package-level references (big.Rat, big.NewRat) —
			// methods like (*big.Rat).Num resolve to math/big too but can
			// only follow a flagged construction or a value handed across
			// the internal/exact boundary on purpose.
			if _, isPkg := pass.Info.Uses[selXIdent(sel)].(*types.PkgName); !isPkg {
				return true
			}
			pass.Reportf(sel.Pos(), "use of big.%s outside %s: route exact arithmetic through the internal/exact kernels", sel.Sel.Name, exactPkg)
			return true
		})
	}
}

// selXIdent returns the selector's base identifier when it is a plain
// ident (the "big" of big.Rat), or nil.
func selXIdent(sel *ast.SelectorExpr) *ast.Ident {
	id, _ := sel.X.(*ast.Ident)
	return id
}

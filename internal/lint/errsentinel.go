package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrSentinel enforces the wrapped-error contract around the repo's
// exported sentinels (core.ErrInfeasible, core.ErrNotCertified,
// exact.ErrNonFinite, exact.ErrRange, ...). Every producer wraps them
// — `fmt.Errorf("%w (LB=%d ...)", ErrInfeasible, lb)` — so a consumer
// comparing with == silently stops matching; it must use errors.Is.
// Symmetrically, an fmt.Errorf that mentions a sentinel without %w
// severs the chain for every downstream errors.Is caller.
var ErrSentinel = &Analyzer{
	Name: "errsentinel",
	Doc:  "== / != against an exported error sentinel (use errors.Is), and fmt.Errorf mentioning one without %w",
	Run:  runErrSentinel,
}

func runErrSentinel(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
}

// checkSentinelCompare flags `x == ErrFoo` and `x != ErrFoo`.
func checkSentinelCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if obj := sentinelObj(pass, side); obj != nil {
			pass.Reportf(be.Pos(), "comparison %s %s: sentinel errors are wrapped by their producers, use errors.Is(err, %s)", be.Op, obj.Name(), obj.Name())
			return
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls that pass a sentinel as an
// argument while the (constant) format string carries no %w verb.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	format, ok := constStringValue(pass, call.Args[0])
	if !ok || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if obj := sentinelObj(pass, arg); obj != nil {
			pass.Reportf(call.Pos(), "fmt.Errorf formats sentinel %s without %%w: downstream errors.Is checks will not match", obj.Name())
			return
		}
	}
}

// sentinelObj resolves expr to an exported package-level error
// variable named Err* (in any package, this module or not), or nil.
func sentinelObj(pass *Pass, expr ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	// Package-level, exported, named like a sentinel, and an error.
	if v.Parent() != v.Pkg().Scope() || !v.Exported() || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if !implementsError(v.Type()) {
		return nil
	}
	return v
}

// constStringValue evaluates expr to a compile-time string.
func constStringValue(pass *Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if types.Identical(t, types.Universe.Lookup("error").Type()) {
		return true
	}
	iface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if iface == nil {
		return false
	}
	return types.Implements(t, iface)
}

package lint

import (
	"go/ast"
	"go/types"
)

// DetRange protects the JSONL byte-determinism contract: iterating a
// map while accumulating into an escaping slice or writing to an
// encoder emits in Go's randomized map order, so the bytes differ run
// to run. The finding is suppressed when the function sorts after the
// loop (the collect-then-sort shape, e.g. engine.AssembleFront) or
// when the loop carries an explicit //schedlint:ordered directive
// asserting that order cannot reach an output.
var DetRange = &Analyzer{
	Name: "detrange",
	Doc:  "map iteration accumulating into an escaping slice or writing to an encoder, with no subsequent sort and no //schedlint:ordered",
	Run:  runDetRange,
}

// writeMethods are the method/function names treated as "writes to an
// encoder or stream" when called inside a map iteration: once bytes
// leave in map order, no later sort can fix them.
var writeMethods = map[string]bool{
	"Encode":      true,
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Fprint":      true,
	"Fprintf":     true,
	"Fprintln":    true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
}

func runDetRange(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncRanges(pass, fd)
		}
	}
}

func checkFuncRanges(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if pass.hasDirective(rng.Pos(), "ordered") {
			return true
		}
		kind, at := mapOrderEscape(pass, rng)
		if kind == "" {
			return true
		}
		if kind == "append" && sortsAfter(pass, fd, rng) {
			return true
		}
		switch kind {
		case "append":
			pass.Reportf(at.Pos(), "map iteration appends to a slice that outlives the loop, and the function never sorts afterwards: map order reaches the result (sort it, or annotate the loop //schedlint:ordered with why order is immaterial)")
		case "write":
			pass.Reportf(at.Pos(), "map iteration writes to an encoder or stream: the bytes leave in randomized map order (collect and sort first, or annotate the loop //schedlint:ordered)")
		}
		return true
	})
}

// mapOrderEscape scans the body of a map range for the two escape
// shapes. It returns which one it found ("append" | "write" | "") and
// where.
func mapOrderEscape(pass *Pass, rng *ast.RangeStmt) (kind string, at ast.Node) {
	var foundAppend, foundWrite ast.Node
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if foundAppend == nil && isEscapingAppend(pass, rng, n) {
				foundAppend = n
			}
		case *ast.CallExpr:
			if foundWrite == nil && isStreamWrite(pass, n) {
				foundWrite = n
			}
		}
		return true
	})
	// A write is the stronger finding: no later sort can repair it.
	if foundWrite != nil {
		return "write", foundWrite
	}
	if foundAppend != nil {
		return "append", foundAppend
	}
	return "", nil
}

// isEscapingAppend matches `target = append(target, ...)` where
// target's storage is declared outside the range statement, so the
// map-ordered elements survive the loop.
func isEscapingAppend(pass *Pass, rng *ast.RangeStmt, as *ast.AssignStmt) bool {
	if len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if b, ok := pass.Info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	switch target := ast.Unparen(call.Args[0]).(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[target]
		if obj == nil {
			return false
		}
		// Declared inside the loop ⇒ the slice dies with the
		// iteration; order cannot escape through it.
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	case *ast.SelectorExpr, *ast.IndexExpr:
		// Fields and elements always outlive the loop body.
		return true
	}
	return false
}

// isStreamWrite matches calls whose name says bytes are leaving —
// encoder.Encode, w.Write, fmt.Fprintf — excluding writes into
// objects created inside this loop (none today; keep it simple and
// name-based, the suppression directive covers deliberate cases).
func isStreamWrite(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !writeMethods[sel.Sel.Name] {
		return false
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil {
		return false
	}
	// fmt.Print* / fmt.Fprint* are package functions; Encode/Write*
	// must be methods (a field or local named Write is not a stream).
	if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		return true
	}
	fn, ok := obj.(*types.Func)
	return ok && fn.Type().(*types.Signature).Recv() != nil
}

// sortsAfter reports whether the function calls into sort or slices
// lexically after the range loop — the collect-then-sort shape that
// makes the accumulated order canonical before anyone observes it.
func sortsAfter(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		if path := obj.Pkg().Path(); path == "sort" || path == "slices" {
			found = true
			return false
		}
		return true
	})
	return found
}

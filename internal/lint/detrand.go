package lint

import "strconv"

// randPkgs are the import paths whose presence marks seeded
// pseudo-randomness.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// randAllowed are the packages that may import math/rand: the
// instance/DAG generators and the experiment harness, which exist to
// produce seeded random families, plus the facade that re-exports the
// generator helpers. None of them is imported by internal/serve or
// internal/engine (the audit in docs/LINTING.md walks the import
// chains), so no sweep path can observe a generator's randomness.
var randAllowed = map[string]bool{
	"storagesched":                    true,
	"storagesched/internal/gen":       true,
	"storagesched/internal/condgraph": true,
	"storagesched/internal/exp":       true,
}

// DetRand reports a math/rand import in any package outside the
// generator/experiment allowlist. The byte-determinism contract says
// identical inputs produce identical JSONL whatever the worker or
// shard count; a rand call on a sweep path breaks that silently, and
// the determinism tests only catch it if the seed happens to vary
// across runs. The check is deliberately lenient — import-level, not
// call-level — because an import in a clean package is already a
// contract change worth a review.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "math/rand import outside the generator/experiment packages (determinism contract)",
	Run:  runDetRand,
}

func runDetRand(pass *Pass) {
	if randAllowed[pass.Path] {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !randPkgs[path] {
				continue
			}
			pass.Reportf(imp.Pos(), "import of %s outside the generator/experiment packages: sweep paths must be deterministic (allowlist in internal/lint/detrand.go)", path)
		}
	}
}

package lint_test

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"storagesched/internal/lint"
	"storagesched/internal/lint/linttest"
)

// fixture resolves a fixture directory under testdata.
func fixture(elem ...string) string {
	return filepath.Join(append([]string{"testdata"}, elem...)...)
}

// Each analyzer has a fixture whose want comments fail without its
// check (the harness errors on unmatched wants), plus negative
// fixtures proving silence where the invariant does not apply.

func TestDetRange(t *testing.T) {
	linttest.Run(t, fixture("detrange", "a"), "a", lint.DetRange)
}

func TestExactRat(t *testing.T) {
	// Outside internal/exact every big.Rat/Int reference is a finding...
	linttest.Run(t, fixture("exactrat", "engine"), "storagesched/internal/engine", lint.ExactRat)
	// ...inside, the fallback path is free to use math/big.
	linttest.Run(t, fixture("exactrat", "exact"), "storagesched/internal/exact", lint.ExactRat)
}

func TestErrSentinel(t *testing.T) {
	linttest.Run(t, fixture("errsentinel", "a"), "a", lint.ErrSentinel)
}

func TestCtxSend(t *testing.T) {
	linttest.Run(t, fixture("ctxsend", "engine"), "storagesched/internal/engine", lint.CtxSend)
	// The same bare send outside the enforced packages stays silent.
	linttest.Run(t, fixture("ctxsend", "outside"), "example.com/outside", lint.CtxSend)
}

func TestPanicFree(t *testing.T) {
	linttest.Run(t, fixture("panicfree", "engine"), "storagesched/internal/engine", lint.PanicFree)
	linttest.Run(t, fixture("panicfree", "model"), "storagesched/internal/model", lint.PanicFree)
	// The metrics registry is panic-free by design: misuse degrades
	// (detached instruments, folded labels) rather than crashing the
	// process that carries the instrumentation.
	linttest.Run(t, fixture("panicfree", "metrics"), "storagesched/internal/metrics", lint.PanicFree)
}

func TestDocConvention(t *testing.T) {
	linttest.Run(t, fixture("docconvention", "a"), "a", lint.DocConvention)
}

// TestDocConventionConstCoverage covers the case a fixture cannot: an
// exported const with no doc at all (a want comment on its line would
// itself count as the covering line comment).
func TestDocConventionConstCoverage(t *testing.T) {
	src := `package p

const (
	Covered = 1 // Covered has a line comment.
	Orphan  = 2
)

var Stray = 3
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	lint.CheckFileDocs(fset, f, func(pos token.Pos, msg string) {
		got = append(got, msg)
	})
	want := []string{
		"exported const Orphan has no doc comment (own, line or group)",
		"exported var Stray has no doc comment (own, line or group)",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings %q, want %d", len(got), got, len(want))
	}
	for i := range want {
		if !strings.Contains(got[i], want[i]) {
			t.Errorf("finding %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDetRand(t *testing.T) {
	linttest.Run(t, fixture("detrand", "serve"), "storagesched/internal/serve", lint.DetRand)
	linttest.Run(t, fixture("detrand", "gen"), "storagesched/internal/gen", lint.DetRand)
}

// TestRegistry pins the suite composition: six invariant analyzers
// plus the lenient detrand audit, resolvable by name.
func TestRegistry(t *testing.T) {
	want := []string{"detrange", "exactrat", "errsentinel", "ctxsend", "panicfree", "docconvention", "detrand"}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d analyzers, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("All()[%d] = %s, want %s", i, all[i].Name, name)
		}
		if lint.ByName(name) != all[i] {
			t.Errorf("ByName(%s) does not resolve to the registry entry", name)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Error("ByName(nosuch) != nil")
	}
}

// TestTreeClean runs the whole suite over the real module and
// requires zero findings — the merge gate CI enforces with
// `go vet -vettool=schedlint ./...`, enforced here too so a plain
// `go test ./...` catches a violation without the CI round trip.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module from source")
	}
	diags, fset, err := lint.Load("../..", []string{"./..."}, lint.All())
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s [%s]", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
}

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
)

// The standalone driver: `schedlint ./...`. It enumerates the
// module's packages with `go list -json`, type-checks them bottom-up
// (standard-library imports resolve through the compiler's source
// importer, so no export data and no network are needed), runs the
// suite over each package and returns the findings. The vet
// unit-checker protocol (vet.go) is the fast path cmd/go drives with
// cached export data; this loader is the self-contained one used by
// tests and ad-hoc runs.

// listedPackage is the slice of `go list -json` output the loader
// needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// Load type-checks the packages matching the patterns (in dir) and
// runs the analyzers over each, returning findings position-sorted
// per package, packages in import-path order.
func Load(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset: fset,
		meta: make(map[string]*listedPackage),
		pkgs: make(map[string]*checkedPackage),
		std:  importer.ForCompiler(fset, "source", nil),
	}
	for _, p := range pkgs {
		ld.meta[p.ImportPath] = p
	}
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		paths = append(paths, p.ImportPath)
	}
	sort.Strings(paths)

	var diags []Diagnostic
	for _, path := range paths {
		cp, err := ld.check(path)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %v", path, err)
		}
		diags = append(diags, runAnalyzers(analyzers, fset, cp.files, cp.pkg, cp.info, path)...)
	}
	return diags, fset, nil
}

// goList shells out to the go command for package metadata — the only
// authority on module-mode import resolution.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		p := new(listedPackage)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// checkedPackage is one type-checked module package with everything a
// Pass needs.
type checkedPackage struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader type-checks module packages recursively: an import of
// another module package checks that package first (memoized), any
// other import falls through to the source importer.
type loader struct {
	fset *token.FileSet
	meta map[string]*listedPackage
	pkgs map[string]*checkedPackage
	std  types.Importer
}

// Import implements types.Importer over the module-or-stdlib split.
func (ld *loader) Import(path string) (*types.Package, error) {
	if cp, ok := ld.pkgs[path]; ok {
		return cp.pkg, nil
	}
	if _, ok := ld.meta[path]; ok {
		cp, err := ld.check(path)
		if err != nil {
			return nil, err
		}
		return cp.pkg, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) check(path string) (*checkedPackage, error) {
	if cp, ok := ld.pkgs[path]; ok {
		return cp, nil
	}
	meta := ld.meta[path]
	var files []*ast.File
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	cp := &checkedPackage{pkg: pkg, files: files, info: info}
	ld.pkgs[path] = cp
	return cp, nil
}

// newTypesInfo allocates the maps every analyzer reads.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

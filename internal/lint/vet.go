package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// The `go vet -vettool` unit-checker protocol, implemented over the
// standard library. cmd/go invokes the tool once per package with a
// single <unit>.cfg argument describing the compilation unit: source
// files, the import map and the export-data file of every dependency
// (already produced by the build cache). The tool type-checks just
// this unit against that export data, runs the analyzers, prints
// findings as "file:line:col: message" lines and exits non-zero when
// there are any. It must also answer -V=full (cmd/go hashes the
// output into its cache key) and write the declared facts output file
// (empty — the suite defines no cross-package facts).

// vetConfig mirrors the fields of cmd/go's vet config JSON that the
// suite consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVet executes one unit-checker invocation against cfgFile and
// returns the process exit code (0 clean, 1 findings, 2 failure).
// Output goes to out (findings) and errOut (failures).
func RunVet(cfgFile string, analyzers []*Analyzer, out, errOut io.Writer) int {
	cfg, err := readVetConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(errOut, "schedlint: %v\n", err)
		return 2
	}
	// Facts must exist even when empty, and even for fact-only
	// invocations on dependencies, or cmd/go reports a missing action
	// output.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(errOut, "schedlint: writing facts: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files, info, pkg, err := typecheckUnit(fset, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(errOut, "schedlint: %v\n", err)
		return 2
	}
	diags := runAnalyzers(analyzers, fset, files, pkg, info, cfg.ImportPath)
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		fmt.Fprintf(out, "%s: %s [%s]\n", posn, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func readVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	return cfg, nil
}

// typecheckUnit parses cfg.GoFiles and checks them against the
// dependency export data cmd/go supplied.
func typecheckUnit(fset *token.FileSet, cfg *vetConfig) ([]*ast.File, *types.Info, *types.Package, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// Export data is keyed by the resolved package path; source
	// imports go through ImportMap first (vendoring, test variants).
	exportImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := newTypesInfo()
	conf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			if mapped, ok := cfg.ImportMap[importPath]; ok {
				importPath = mapped
			}
			return exportImporter.Import(importPath)
		}),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, info, pkg, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// PrintVersion answers -V=full the way cmd/go expects: a single line
// "<name> version <id>" whose id changes whenever the binary does, so
// vet results are cached against the exact tool build.
func PrintVersion(out io.Writer, progname string) {
	id := "devel"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("buildID=%x", sum[:12])
		}
	}
	fmt.Fprintf(out, "%s version devel %s\n", progname, id)
}

// PrintFlags answers -flags: cmd/go asks the tool for its flag
// inventory (as JSON) before forwarding any user-provided vet flags.
func PrintFlags(out io.Writer, analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	flags := []jsonFlag{}
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, _ := json.Marshal(flags)
	fmt.Fprintln(out, string(data))
}

// IsVetInvocation reports whether args look like a cmd/go unit-checker
// call (a single *.cfg argument, possibly after flags).
func IsVetInvocation(args []string) bool {
	return len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg")
}

package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// DocConvention enforces the godoc conventions the facade test
// (godoc_test.go) pioneered, on every package: an exported top-level
// function or type must carry a doc comment that starts with the
// symbol's name, and every exported constant or variable must be
// covered by its own doc, its line comment, or its group's doc.
// Methods are exempt, as in the original facade check. godoc_test.go
// remains as a thin wrapper over CheckFileDocs so the facade contract
// is still exercised by `go test` alone.
var DocConvention = &Analyzer{
	Name: "docconvention",
	Doc:  "exported symbol without a doc comment, or a doc that does not start with the symbol name",
	Run:  runDocConvention,
}

func runDocConvention(pass *Pass) {
	for _, f := range pass.Files {
		CheckFileDocs(pass.Fset, f, func(pos token.Pos, msg string) {
			pass.Reportf(pos, "%s", msg)
		})
	}
}

// CheckFileDocs runs the doc-convention checks over one parsed file,
// reporting each violation. It needs no type information, so the
// facade's godoc_test.go calls it directly on freshly parsed files.
func CheckFileDocs(fset *token.FileSet, f *ast.File, report func(pos token.Pos, msg string)) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Recv != nil || !d.Name.IsExported() {
				continue
			}
			doc := docText(d.Doc)
			if doc == "" {
				report(d.Name.Pos(), "exported func "+d.Name.Name+" has no doc comment")
			} else if !startsWithName(doc, d.Name.Name) {
				report(d.Name.Pos(), "doc for func "+d.Name.Name+" does not start with its name: "+quoteFirstLine(doc))
			}
		case *ast.GenDecl:
			checkGenDeclDocs(d, report)
		}
	}
}

func checkGenDeclDocs(d *ast.GenDecl, report func(pos token.Pos, msg string)) {
	declDoc := docText(d.Doc)
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			ts := spec.(*ast.TypeSpec)
			if !ts.Name.IsExported() {
				continue
			}
			// Grouped specs document themselves; a single spec may use
			// the declaration's doc.
			doc := docText(ts.Doc)
			if doc == "" && len(d.Specs) == 1 {
				doc = declDoc
			}
			if doc == "" {
				report(ts.Name.Pos(), "exported type "+ts.Name.Name+" has no doc comment")
			} else if !startsWithName(doc, ts.Name.Name) {
				report(ts.Name.Pos(), "doc for type "+ts.Name.Name+" does not start with its name: "+quoteFirstLine(doc))
			}
		}
	case token.CONST, token.VAR:
		// Grouped constants/vars may share one declaration doc; each
		// exported spec must be covered by either its own doc, a line
		// comment, or the group doc.
		for _, spec := range d.Specs {
			vs := spec.(*ast.ValueSpec)
			for _, name := range vs.Names {
				if !name.IsExported() {
					continue
				}
				if declDoc == "" && docText(vs.Doc) == "" && docText(vs.Comment) == "" {
					report(name.Pos(), "exported "+d.Tok.String()+" "+name.Name+" has no doc comment (own, line or group)")
				}
			}
		}
	}
}

// docText flattens a comment group to its text, "" when absent.
func docText(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	return strings.TrimSpace(cg.Text())
}

// startsWithName reports whether a doc comment begins with the bare
// symbol name (a leading article does not satisfy the convention).
func startsWithName(doc, name string) bool {
	return doc == name || strings.HasPrefix(doc, name+" ") ||
		strings.HasPrefix(doc, name+".") || strings.HasPrefix(doc, name+",") ||
		strings.HasPrefix(doc, name+":") || strings.HasPrefix(doc, name+"'")
}

func quoteFirstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return "\"" + s + "\""
}

package lint_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"storagesched/internal/lint"
)

// writeVetUnit materializes one unit-checker invocation: a source file,
// its cfg, and the facts output path cmd/go would have assigned.
func writeVetUnit(t *testing.T, src string, mutate func(map[string]any)) (cfgPath, factsPath string) {
	t.Helper()
	dir := t.TempDir()
	goFile := filepath.Join(dir, "p.go")
	if err := os.WriteFile(goFile, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	factsPath = filepath.Join(dir, "p.vetx")
	cfg := map[string]any{
		"ID":          "p",
		"Compiler":    "gc",
		"Dir":         dir,
		"ImportPath":  "p",
		"GoFiles":     []string{goFile},
		"ImportMap":   map[string]string{},
		"PackageFile": map[string]string{},
		"VetxOutput":  factsPath,
	}
	if mutate != nil {
		mutate(cfg)
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath = filepath.Join(dir, "p.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return cfgPath, factsPath
}

func TestRunVetReportsFindings(t *testing.T) {
	// A dependency-free unit with a detrange violation: map iteration
	// appending to a package-level slice, never sorted.
	cfgPath, factsPath := writeVetUnit(t, `package p

var sink []int

func f(m map[int]int) {
	for k := range m {
		sink = append(sink, k)
	}
}
`, nil)
	var out, errOut bytes.Buffer
	code := lint.RunVet(cfgPath, lint.All(), &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[detrange]") {
		t.Errorf("findings missing detrange: %q", out.String())
	}
	// The facts file must exist (cmd/go requires the declared action
	// output) and be empty (the suite defines no facts).
	if data, err := os.ReadFile(factsPath); err != nil || len(data) != 0 {
		t.Errorf("facts file: data=%q err=%v, want empty file", data, err)
	}
}

func TestRunVetCleanUnit(t *testing.T) {
	cfgPath, _ := writeVetUnit(t, `package p

func f(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
`, nil)
	var out, errOut bytes.Buffer
	if code := lint.RunVet(cfgPath, lint.All(), &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0; out: %s stderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected findings: %q", out.String())
	}
}

func TestRunVetVetxOnly(t *testing.T) {
	// Fact-gathering invocations on dependencies skip analysis but must
	// still write the facts file.
	cfgPath, factsPath := writeVetUnit(t, `package p

var sink []int

func f(m map[int]int) {
	for k := range m {
		sink = append(sink, k)
	}
}
`, func(cfg map[string]any) { cfg["VetxOnly"] = true })
	var out, errOut bytes.Buffer
	if code := lint.RunVet(cfgPath, lint.All(), &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if out.Len() != 0 {
		t.Errorf("VetxOnly produced findings: %q", out.String())
	}
	if _, err := os.Stat(factsPath); err != nil {
		t.Errorf("facts file not written: %v", err)
	}
}

func TestRunVetTypecheckFailure(t *testing.T) {
	const broken = `package p

var x undefinedType
`
	cfgPath, _ := writeVetUnit(t, broken, nil)
	var out, errOut bytes.Buffer
	if code := lint.RunVet(cfgPath, lint.All(), &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "undefinedType") {
		t.Errorf("stderr does not name the type error: %q", errOut.String())
	}
	// cmd/go sets SucceedOnTypecheckFailure when the compiler already
	// reported the error; the tool must then stay silent and succeed.
	cfgPath, _ = writeVetUnit(t, broken, func(cfg map[string]any) {
		cfg["SucceedOnTypecheckFailure"] = true
	})
	out.Reset()
	errOut.Reset()
	if code := lint.RunVet(cfgPath, lint.All(), &out, &errOut); code != 0 {
		t.Fatalf("exit with SucceedOnTypecheckFailure = %d, want 0; stderr: %s", code, errOut.String())
	}
}

func TestRunVetMissingExportData(t *testing.T) {
	// An import with no PackageFile entry is a typecheck failure (exit
	// 2), not a crash.
	cfgPath, _ := writeVetUnit(t, `package p

import "fmt"

func f() { fmt.Println("x") }
`, nil)
	var out, errOut bytes.Buffer
	if code := lint.RunVet(cfgPath, lint.All(), &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "export data") {
		t.Errorf("stderr does not mention export data: %q", errOut.String())
	}
}

func TestRunVetWithExportData(t *testing.T) {
	// End-to-end through the gc export-data importer: resolve fmt's
	// export file from the build cache the way cmd/go would pass it.
	exportOut, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", "fmt").Output()
	if err != nil {
		t.Skipf("go list -export fmt: %v", err)
	}
	exportFile := strings.TrimSpace(string(exportOut))
	if exportFile == "" {
		t.Skip("no export data for fmt in the build cache")
	}
	// fmt.Println inside a map range is a detrange stream-write finding.
	cfgPath, _ := writeVetUnit(t, `package p

import "fmt"

func f(m map[int]int) {
	for k := range m {
		fmt.Println(k)
	}
}
`, func(cfg map[string]any) {
		cfg["PackageFile"] = map[string]string{"fmt": exportFile}
	})
	var out, errOut bytes.Buffer
	if code := lint.RunVet(cfgPath, lint.All(), &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1; out: %s stderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "[detrange]") {
		t.Errorf("findings missing detrange: %q", out.String())
	}
}

func TestRunVetBadConfig(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := lint.RunVet(filepath.Join(t.TempDir(), "nope.cfg"), lint.All(), &out, &errOut); code != 2 {
		t.Errorf("missing cfg: exit = %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.cfg")
	if err := os.WriteFile(bad, []byte("{not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	errOut.Reset()
	if code := lint.RunVet(bad, lint.All(), &out, &errOut); code != 2 {
		t.Errorf("malformed cfg: exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "parsing") {
		t.Errorf("stderr does not mention parsing: %q", errOut.String())
	}
}

func TestPrintVersion(t *testing.T) {
	var buf bytes.Buffer
	lint.PrintVersion(&buf, "schedlint")
	line := buf.String()
	if !strings.HasPrefix(line, "schedlint version devel ") || !strings.HasSuffix(line, "\n") {
		t.Errorf("version line = %q", line)
	}
}

func TestPrintFlags(t *testing.T) {
	var buf bytes.Buffer
	lint.PrintFlags(&buf, lint.All())
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(buf.Bytes(), &flags); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, buf.String())
	}
	if len(flags) != len(lint.All()) {
		t.Fatalf("%d flags, want %d", len(flags), len(lint.All()))
	}
	for i, a := range lint.All() {
		if flags[i].Name != a.Name || !flags[i].Bool || flags[i].Usage == "" {
			t.Errorf("flag %d = %+v, want boolean %q with usage", i, flags[i], a.Name)
		}
	}
}

func TestIsVetInvocation(t *testing.T) {
	cases := []struct {
		args []string
		want bool
	}{
		{nil, false},
		{[]string{"./..."}, false},
		{[]string{"/tmp/b001/vet.cfg"}, true},
		{[]string{"-detrange=false", "/tmp/b001/vet.cfg"}, true},
	}
	for _, c := range cases {
		if got := lint.IsVetInvocation(c.args); got != c.want {
			t.Errorf("IsVetInvocation(%q) = %v, want %v", c.args, got, c.want)
		}
	}
}

// Package lint is schedlint: a suite of static analyzers that encode
// the repository's determinism, exact-arithmetic and error-contract
// invariants, so the contracts the tests probe dynamically are also
// checked structurally on every build.
//
// The repo deliberately carries no third-party dependencies (the
// facade's doc conventions were AST-enforced in-tree for the same
// reason), so the suite does not build on golang.org/x/tools; instead
// it implements the small slice of the go/analysis vocabulary it
// needs — Analyzer, Pass, Diagnostic — over the standard library's
// go/ast and go/types, plus two drivers: a standalone loader
// (Main, used as `schedlint ./...`) and the `go vet -vettool`
// unit-checker protocol (RunVet), which cmd/go invokes with a .cfg
// file per package.
//
// Each analyzer's invariant, rationale and suppression directive are
// documented in docs/LINTING.md. Findings in _test.go files are
// never reported: tests intentionally violate invariants (identity
// comparisons in errors.Is contract tests, big.Rat references in
// differential tests), and every analyzer here guards production
// code paths only.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package — the
// in-tree analogue of golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in findings, enable flags and
	// //schedlint:allow directives. Lower-case, no spaces.
	Name string

	// Doc is the one-line invariant statement shown by -flags help.
	Doc string

	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Path is the package's import path with any test-variant suffix
	// ("pkg [pkg.test]") trimmed, so path-scoped analyzers behave
	// identically under the standalone driver and go vet.
	Path string

	diags *[]Diagnostic
}

// Reportf records a finding at pos. The driver filters findings in
// _test.go files and findings suppressed by a //schedlint directive
// before printing them.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// normalizePath trims cmd/go's test-variant decorations from an
// import path: "p [p.test]" → "p". External test packages ("p_test")
// contain only _test.go files, so they never produce findings.
func normalizePath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// Run executes the analyzers over one type-checked package and
// returns the surviving findings in position order — the exported
// form of the driver pipeline, shared by the fixture harness
// (internal/lint/linttest) and the facade's godoc wrapper.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, path string) []Diagnostic {
	return runAnalyzers(analyzers, fset, files, pkg, info, path)
}

// runAnalyzers runs the given analyzers over one package and returns
// the surviving findings in file/offset order: findings in _test.go
// files and findings carrying a suppression directive are dropped
// here, uniformly for every driver.
func runAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, path string) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Path:     normalizePath(path),
			diags:    &diags,
		}
		a.Run(pass)
	}
	sup := newSuppressions(fset, files)
	kept := diags[:0]
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		if strings.HasSuffix(posn.Filename, "_test.go") {
			continue
		}
		if sup.allows(d.Analyzer, posn) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := fset.Position(kept[i].Pos), fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Offset != pj.Offset {
			return pi.Offset < pj.Offset
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}

// suppressions indexes //schedlint:allow directives by file and line.
// A directive suppresses matching findings on its own line and on the
// line directly below it (the comment-above-the-statement shape).
type suppressions struct {
	fset  *token.FileSet
	byLoc map[string]map[int][]string // filename → line → analyzer names
}

// directivePrefix introduces every schedlint comment directive.
const directivePrefix = "//schedlint:"

func newSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{fset: fset, byLoc: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				lines := s.byLoc[posn.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					s.byLoc[posn.Filename] = lines
				}
				lines[posn.Line] = append(lines[posn.Line], names...)
			}
		}
	}
	return s
}

// parseAllow recognizes "//schedlint:allow name1,name2 [rationale]":
// the first whitespace-separated token after "allow" is the
// comma-separated analyzer list, anything after it free-form text.
func parseAllow(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, directivePrefix+"allow ")
	if !ok {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

func (s *suppressions) allows(analyzer string, posn token.Position) bool {
	lines := s.byLoc[posn.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{posn.Line, posn.Line - 1} {
		for _, name := range lines[l] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// hasDirective reports whether the line of pos, or the line directly
// above it, carries the given schedlint directive (for example
// "ordered") in any file of the pass. Analyzer-specific directives
// such as //schedlint:ordered use this.
func (p *Pass) hasDirective(pos token.Pos, directive string) bool {
	posn := p.Fset.Position(pos)
	want := directivePrefix + directive
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if text != want && !strings.HasPrefix(text, want+" ") {
					continue
				}
				cp := p.Fset.Position(c.Pos())
				if cp.Filename == posn.Filename && (cp.Line == posn.Line || cp.Line == posn.Line-1) {
					return true
				}
			}
		}
	}
	return false
}

// pathIn reports whether the pass's package is one of the given
// import paths.
func (p *Pass) pathIn(paths ...string) bool {
	for _, path := range paths {
		if p.Path == path {
			return true
		}
	}
	return false
}

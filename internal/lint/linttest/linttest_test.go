package linttest_test

// The harness is itself exercised by every analyzer test in
// internal/lint; this self-test pins the happy path directly against
// a real fixture so the package carries its own coverage.

import (
	"testing"

	"storagesched/internal/lint"
	"storagesched/internal/lint/linttest"
)

func TestRunMatchesWants(t *testing.T) {
	linttest.Run(t, "../testdata/detrange/a", "a", lint.DetRange)
}

// Package linttest runs a schedlint analyzer over a fixture directory
// and checks its findings against want comments — the in-tree
// analogue of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory of .go files forming one package. Lines
// that must produce a finding carry a trailing comment of the form
//
//	code() // want "regexp"
//	code() // want "first finding" "second finding"
//
// where each quoted string is a regular expression matched against
// the message of a finding reported on that line. The harness fails
// the test for any unmatched want and any unwanted finding, so a
// fixture with wants proves its analyzer fires, and a fixture without
// proves it stays silent.
//
// The fixture's package path is chosen by the caller, which is how
// the path-scoped analyzers (exactrat, ctxsend, panicfree, detrand)
// are tested both inside and outside their enforcement scope.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"storagesched/internal/lint"
)

// wantRe extracts the quoted regexps of one want comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads the fixture directory as one package with the given
// import path, applies the analyzer, and reports mismatches between
// its findings and the fixture's want comments as test errors.
func Run(t *testing.T, dir, pkgpath string, a *lint.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no .go files", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	diags := lint.Run([]*lint.Analyzer{a}, fset, files, pkg, info, pkgpath)

	got := make(map[string][]*finding) // "file:line" → findings
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line)
		got[key] = append(got[key], &finding{msg: d.Message})
	}

	// Walk the want comments and consume matching findings.
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line)
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", key, m[1], err)
						continue
					}
					if !consume(got[key], re) {
						t.Errorf("%s: no %s finding matching %q (got %s)", key, a.Name, m[1], messages(got[key]))
					}
				}
			}
		}
	}
	var leftover []string
	for key, fs := range got {
		for _, f := range fs {
			if !f.matched {
				leftover = append(leftover, fmt.Sprintf("%s: unexpected %s finding: %s", key, a.Name, f.msg))
			}
		}
	}
	sort.Strings(leftover)
	for _, l := range leftover {
		t.Error(l)
	}
}

// finding is one reported diagnostic message and whether a want
// comment has claimed it.
type finding struct {
	msg     string
	matched bool
}

func consume(fs []*finding, re *regexp.Regexp) bool {
	for _, f := range fs {
		if !f.matched && re.MatchString(f.msg) {
			f.matched = true
			return true
		}
	}
	return false
}

func messages(fs []*finding) string {
	if len(fs) == 0 {
		return "none"
	}
	var ms []string
	for _, f := range fs {
		ms = append(ms, fmt.Sprintf("%q", f.msg))
	}
	return strings.Join(ms, ", ")
}

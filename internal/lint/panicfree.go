package lint

import (
	"go/ast"
	"go/types"
)

// panicFreePkgs are the packages where a panic is always a finding:
// the sweep pipeline from the numeric kernels to the daemon converted
// its panics to returned errors (PR 3 made non-finite δ an error
// everywhere after a confirmed nil-dereference family; PR 6 made the
// ⌊∆·LB⌋ overflow an error instead of a silent truncation), and a new
// panic in any of them can take down a worker pool or the daemon.
// internal/metrics is on the list for the same reason from the other
// direction: instrumentation is called from every hot path, and a
// metrics registry that panics on misuse (duplicate registration, a
// label-count mismatch) turns an observability bug into an outage —
// the registry degrades instead (detached instruments, folded labels).
var panicFreePkgs = []string{
	"storagesched/internal/engine",
	"storagesched/internal/serve",
	"storagesched/internal/cache",
	"storagesched/internal/metrics",
	"storagesched/internal/exact",
	"storagesched/internal/refine",
	"storagesched/internal/shard",
	"storagesched/internal/core",
	"storagesched/internal/uniform",
	"storagesched/internal/bounds",
	"storagesched/internal/pareto",
}

// panicAllowlist names the invariant constructors that may panic: they
// guard programmer errors (mismatched slice lengths, out-of-range
// lemma parameters) in packages whose values are built from literals,
// not from untrusted input. Key is the package path, value the set of
// allowed function names ("Func" or "Recv.Method").
var panicAllowlist = map[string]map[string]bool{
	"storagesched/internal/model": {
		"NewInstance": true,
	},
	"storagesched/internal/dag": {
		"New":           true,
		"Graph.AddEdge": true,
	},
	"storagesched/internal/stats": {
		"Acc.Quantile": true,
	},
	"storagesched/internal/hardness": {
		"Lemma1Instance": true,
		"Lemma2Instance": true,
		"Lemma3Instance": true,
		"SBOCurve":       true,
	},
}

// PanicFree reports panic calls outside the allowlisted invariant
// constructors. The sweep pipeline packages must stay panic-free —
// their failure mode is a returned error that fails one item while
// the batch continues; a panic instead kills the whole process. In
// the constructor packages (model, dag, stats, hardness) only the
// recorded allowlist may panic; a new panic site there is a finding
// until it is deliberately added to the list.
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc:  "panic() outside the allowlisted invariant constructors (return an error)",
	Run:  runPanicFree,
}

func runPanicFree(pass *Pass) {
	allowed, constructorPkg := panicAllowlist[pass.Path]
	if !constructorPkg && !pass.pathIn(panicFreePkgs...) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if constructorPkg && allowed[funcKey(fd)] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
					return true
				}
				if constructorPkg {
					pass.Reportf(call.Pos(), "panic in %s.%s is not on the invariant-constructor allowlist: return an error, or record the new constructor in internal/lint/panicfree.go with a rationale", pass.Pkg.Name(), funcKey(fd))
				} else {
					pass.Reportf(call.Pos(), "panic in panic-free package %s: the sweep pipeline reports failures as errors (a panic here kills the worker pool)", pass.Path)
				}
				return true
			})
		}
	}
}

// funcKey names a declaration the way the allowlist does: "Func" for
// functions, "Recv.Method" for methods (pointer receivers included).
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if gen, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = gen.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

package lint

import (
	"go/ast"
	"go/token"
)

// ctxSendPkgs are the packages whose goroutines feed the streaming
// emit paths: a blocking send there outlives its consumer unless it
// can observe cancellation.
var ctxSendPkgs = []string{
	"storagesched/internal/engine",
	"storagesched/internal/serve",
	"storagesched/internal/shard",
}

// CtxSend requires every channel send inside a goroutine of the
// engine/serve/shard packages to sit in a select with a ctx.Done()
// (or a default) case. The disconnect tests hunt this leak class
// dynamically — a client that goes away mid-stream must not strand a
// producer goroutine parked on `order <- st` forever — but a test only
// finds the emit path it exercises; the shape itself is checkable.
var CtxSend = &Analyzer{
	Name: "ctxsend",
	Doc:  "channel send in a goroutine without a select { case <-ctx.Done() } escape (goroutine leak)",
	Run:  runCtxSend,
}

func runCtxSend(pass *Pass) {
	if !pass.pathIn(ctxSendPkgs...) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			// Only function literals have a visible body; `go m.run()`
			// is analyzed where the method is declared if it, too,
			// launches goroutines.
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoroutineBody(pass, lit.Body)
			return true
		})
	}
}

// checkGoroutineBody walks one goroutine's body (including nested
// function literals, which still run on this goroutine unless handed
// off — and a handed-off closure's sends need the same escape) and
// reports unguarded sends.
func checkGoroutineBody(pass *Pass, body *ast.BlockStmt) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if send, ok := n.(*ast.SendStmt); ok && !sendGuarded(stack, send) {
			pass.Reportf(send.Pos(), "channel send in a goroutine outside a select with a ctx.Done() case: a vanished consumer leaks this goroutine (guard it, or annotate //schedlint:allow ctxsend with the reason it cannot block)")
		}
		return true
	})
}

// sendGuarded reports whether the send is itself a select case (not
// merely nested inside one) of a select that also has a cancellation
// escape: another case receiving from a .Done() call, or a default
// case (non-blocking send).
func sendGuarded(stack []ast.Node, send *ast.SendStmt) bool {
	// stack ends [..., SelectStmt, BlockStmt, CommClause, SendStmt]
	// when the send is a case's comm statement.
	if len(stack) < 2 {
		return false
	}
	cc, ok := stack[len(stack)-2].(*ast.CommClause)
	if !ok || cc.Comm != ast.Stmt(send) {
		return false
	}
	for i := len(stack) - 3; i >= 0; i-- {
		if sel, ok := stack[i].(*ast.SelectStmt); ok {
			return selectHasEscape(sel, send)
		}
	}
	return false
}

// selectHasEscape scans the select's other cases for a receive from a
// Done()-shaped call or a default clause.
func selectHasEscape(sel *ast.SelectStmt, send *ast.SendStmt) bool {
	for _, stmt := range sel.Body.List {
		cc, ok := stmt.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default: the send cannot block
		}
		if cc.Comm == ast.Stmt(send) {
			continue
		}
		if recvFromDone(cc.Comm) {
			return true
		}
	}
	return false
}

// recvFromDone matches `<-x.Done()` (and `v := <-x.Done()`), the
// shape of every context cancellation channel.
func recvFromDone(stmt ast.Stmt) bool {
	var expr ast.Expr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	if expr == nil {
		return false
	}
	unary, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || unary.Op != token.ARROW {
		return false
	}
	call, ok := ast.Unparen(unary.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	selx, ok := call.Fun.(*ast.SelectorExpr)
	return ok && selx.Sel.Name == "Done"
}

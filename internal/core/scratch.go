package core

import (
	"sync"

	"storagesched/internal/model"
)

// Scratch holds the reusable non-escaping buffers of the solver loops —
// per-processor loads and memory sizes, and the Algorithm 2 ready-set
// bookkeeping — so a warm sweep performs O(1) allocations per
// (item, δ) job instead of O(n). A Scratch is not safe for concurrent
// use; hold one per worker (the sweep engine does) or pass nil to let
// the solver borrow one from an internal sync.Pool.
type Scratch struct {
	load  []model.Time
	mem   []model.Mem
	done  []bool
	preds []int
	ready []model.Time
}

// NewScratch returns an empty scratch; its buffers grow on first use
// and are reused across runs.
func NewScratch() *Scratch { return &Scratch{} }

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// borrowScratch returns scr as-is, or a pooled scratch (to be handed
// back via releaseScratch) when scr is nil.
func borrowScratch(scr *Scratch) (*Scratch, bool) {
	if scr != nil {
		return scr, false
	}
	return scratchPool.Get().(*Scratch), true
}

func releaseScratch(scr *Scratch, pooled bool) {
	if pooled {
		scratchPool.Put(scr)
	}
}

// loads returns a zeroed Time buffer of length n.
func (scr *Scratch) loads(n int) []model.Time {
	if cap(scr.load) < n {
		scr.load = make([]model.Time, n)
	}
	s := scr.load[:n]
	clear(s)
	return s
}

// mems returns a zeroed Mem buffer of length n.
func (scr *Scratch) mems(n int) []model.Mem {
	if cap(scr.mem) < n {
		scr.mem = make([]model.Mem, n)
	}
	s := scr.mem[:n]
	clear(s)
	return s
}

// doneBuf returns a zeroed bool buffer of length n.
func (scr *Scratch) doneBuf(n int) []bool {
	if cap(scr.done) < n {
		scr.done = make([]bool, n)
	}
	s := scr.done[:n]
	clear(s)
	return s
}

// predsBuf returns an int buffer of length n initialized from src.
func (scr *Scratch) predsBuf(src []int) []int {
	n := len(src)
	if cap(scr.preds) < n {
		scr.preds = make([]int, n)
	}
	s := scr.preds[:n]
	copy(s, src)
	return s
}

// readyBuf returns a zeroed Time buffer of length n, distinct from
// loads so Algorithm 2 can hold both at once.
func (scr *Scratch) readyBuf(n int) []model.Time {
	if cap(scr.ready) < n {
		scr.ready = make([]model.Time, n)
	}
	s := scr.ready[:n]
	clear(s)
	return s
}

// maxTimeOf returns the maximum of a non-empty Time slice, 0 for empty.
func maxTimeOf(s []model.Time) model.Time {
	var mx model.Time
	for _, v := range s {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// maxMemOf returns the maximum of a non-empty Mem slice, 0 for empty.
func maxMemOf(s []model.Mem) model.Mem {
	var mx model.Mem
	for _, v := range s {
		if v > mx {
			mx = v
		}
	}
	return mx
}

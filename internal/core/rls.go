package core

import (
	"fmt"
	"math"
	"sort"

	"storagesched/internal/bounds"
	"storagesched/internal/dag"
	"storagesched/internal/exact"
	"storagesched/internal/model"
)

// TieBreak selects the arbitrary total order Algorithm 2 uses to break
// ties between tasks that can start equally soon. Corollary 4 uses SPT
// on independent tasks; the others are natural ablation choices.
type TieBreak int

const (
	// TieByID orders tasks by index — the paper's "arbitrary total
	// ordering".
	TieByID TieBreak = iota
	// TieSPT prefers shorter processing times (Section 5.2).
	TieSPT
	// TieLPT prefers longer processing times.
	TieLPT
	// TieBottomLevel prefers tasks with the longest remaining chain
	// (critical-path-first), the classic DAG list-scheduling priority.
	TieBottomLevel
)

// String implements fmt.Stringer for experiment tables.
func (t TieBreak) String() string {
	switch t {
	case TieByID:
		return "ID"
	case TieSPT:
		return "SPT"
	case TieLPT:
		return "LPT"
	case TieBottomLevel:
		return "BLevel"
	}
	return fmt.Sprintf("TieBreak(%d)", int(t))
}

// RLSResult is the outcome of one RLS∆ run together with the
// quantities the analysis of Lemmas 4–5 tracks.
type RLSResult struct {
	Delta float64

	// Schedule is the (π, σ) pair returned by Algorithm 2.
	Schedule *model.Schedule

	// LB is the Graham memory lower bound max(max s_i, ⌈Σs_i/m⌉)
	// computed at the top of the algorithm.
	LB model.Mem

	// Cap is the per-processor memory budget actually enforced,
	// ⌊∆·LB⌋ (or the explicit cap for the constrained variant).
	Cap model.Mem

	// Marked[j] is true if processor j was ever skipped because its
	// memory load made it infeasible for some ready task while a
	// higher-loaded processor was chosen (the "marked" processors of
	// Lemma 4).
	Marked []bool

	// Cmax and Mmax are the achieved objectives.
	Cmax model.Time
	Mmax model.Mem
	// SumCi is Σ_i (σ(i)+p_i), used by the tri-objective analysis.
	SumCi model.Time
}

// MarkedCount returns the number of marked processors; Lemma 4 proves
// it never exceeds ⌊m/(∆−1)⌋.
func (r *RLSResult) MarkedCount() int {
	c := 0
	for _, b := range r.Marked {
		if b {
			c++
		}
	}
	return c
}

// RLSCmaxRatio returns the Lemma 5 guarantee on the makespan,
// 2 + 1/(∆−2) − (∆−1)/(m(∆−2)), for ∆ > 2. For 2 < ∆ where the |CP|
// coefficient 1 − (∆−1)/(m(∆−2)) would be negative (very small ∆ or
// m), the bound degenerates to 1 + 1/(∆−2) because the |CP| term only
// helps; the returned value accounts for that. It returns +Inf for
// ∆ ≤ 2 (no guarantee exists there, cf. Lemma 4's discussion).
func RLSCmaxRatio(delta float64, m int) float64 {
	if delta <= 2 {
		return math.Inf(1)
	}
	work := 1 + 1/(delta-2)
	cp := 1 - (delta-1)/(float64(m)*(delta-2))
	if cp < 0 {
		cp = 0
	}
	return work + cp
}

// RLSSumCiRatio returns the Corollary 4 guarantee on ΣCi for the SPT
// variant: 2 + 1/(∆−2) (equivalently 1/ρ + 1 with ρ = (∆−2)/(∆−1),
// Lemma 6). +Inf for ∆ ≤ 2.
func RLSSumCiRatio(delta float64) float64 {
	if delta <= 2 {
		return math.Inf(1)
	}
	return 2 + 1/(delta-2)
}

// checkRLSDelta validates the RLS parameter: ∆ must be a finite number
// ≥ 2 (Lemma 4 gives no guarantee below 2, and a non-finite ∆ has no
// exact rational form — big.Rat.SetFloat64 returns nil for it, which
// used to surface as a nil-pointer panic deep inside memCapFloor).
func checkRLSDelta(delta float64) error {
	if math.IsNaN(delta) || math.IsInf(delta, 0) {
		return fmt.Errorf("core: RLS delta = %g is not finite", delta)
	}
	if delta < 2 {
		return fmt.Errorf("core: RLS delta = %g, need delta >= 2 (Lemma 4)", delta)
	}
	return nil
}

// MemCap returns the per-processor budget ⌊∆·LB⌋ that RLS∆ enforces,
// exported for sweep engines that memoize LB per instance and derive
// each grid point's cap from it. ∆ is a float64 and hence an exact
// rational; the floor is evaluated by exact.FloorMul's overflow-checked
// integer kernel. It reports an error for non-finite ∆ (which has no
// exact rational form) and a range error when ⌊∆·LB⌋ exceeds int64 —
// which previously truncated silently through big.Rat → Int64().
func MemCap(delta float64, lb model.Mem) (model.Mem, error) {
	cap, err := exact.FloorMul(delta, lb)
	if err != nil {
		return 0, fmt.Errorf("core: memory cap floor(%g*%d): %w", delta, lb, err)
	}
	return cap, nil
}

// RLS runs Algorithm 2 (Restricted List Scheduling) on a task DAG with
// parameter ∆ ≥ 2. It schedules, at each step, the ready task that can
// start the soonest on its least-loaded memory-feasible processor,
// breaking start-time ties with the given order. For ∆ ≥ 2 a feasible
// processor always exists (the counting argument behind Lemma 4), so
// the only error conditions are malformed inputs.
func RLS(g *dag.Graph, delta float64, tie TieBreak) (*RLSResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := checkRLSDelta(delta); err != nil {
		return nil, err
	}
	lb := bounds.MemLB(g.S, g.M)
	cap, err := MemCap(delta, lb)
	if err != nil {
		return nil, err
	}
	res, err := rlsWithCap(g, cap, tie)
	if err != nil {
		return nil, err
	}
	res.Delta = delta
	res.LB = lb
	return res, nil
}

// RLSWithCap runs the same loop with an explicit per-processor memory
// budget instead of ∆·LB — the form the Section 7 constrained solver
// needs. It fails with ErrCapTooSmall when some ready task fits on no
// processor, which can only happen for caps below 2·LB.
func RLSWithCap(g *dag.Graph, cap model.Mem, tie TieBreak) (*RLSResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	res, err := rlsWithCap(g, cap, tie)
	if err != nil {
		return nil, err
	}
	res.LB = bounds.MemLB(g.S, g.M)
	if res.LB > 0 {
		res.Delta = float64(cap) / float64(res.LB)
	}
	return res, nil
}

// ErrCapTooSmall reports that the explicit memory cap made some task
// unplaceable.
type ErrCapTooSmall struct {
	Task int
	Cap  model.Mem
}

func (e ErrCapTooSmall) Error() string {
	return fmt.Sprintf("core: task %d fits on no processor under memory cap %d", e.Task, e.Cap)
}

// tieOrder precomputes the scheduling priority order for a tie-break
// rule: order[r] is the task scheduled r-th when all else is equal.
func tieOrder(g *dag.Graph, tie TieBreak) ([]int, error) {
	var bottom []model.Time
	if tie == TieBottomLevel {
		bl, err := g.BottomLevels()
		if err != nil {
			return nil, err
		}
		bottom = bl
	}
	return tieOrderFrom(g, tie, bottom)
}

// tieOrderFrom is tieOrder with the bottom levels supplied by the
// caller (nil unless tie is TieBottomLevel), so prepared sweeps compute
// them once per graph instead of once per tie-break.
func tieOrderFrom(g *dag.Graph, tie TieBreak, bottom []model.Time) ([]int, error) {
	n := g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	switch tie {
	case TieByID:
		// identity
	case TieSPT:
		sort.SliceStable(order, func(a, b int) bool { return g.P[order[a]] < g.P[order[b]] })
	case TieLPT:
		sort.SliceStable(order, func(a, b int) bool { return g.P[order[a]] > g.P[order[b]] })
	case TieBottomLevel:
		sort.SliceStable(order, func(a, b int) bool { return bottom[order[a]] > bottom[order[b]] })
	default:
		return nil, fmt.Errorf("core: unknown tie break %d", int(tie))
	}
	return order, nil
}

// tieRank precomputes the priority rank of every task for a tie-break
// rule (lower rank = scheduled first on ties).
func tieRank(g *dag.Graph, tie TieBreak) ([]int, error) {
	order, err := tieOrder(g, tie)
	if err != nil {
		return nil, err
	}
	return rankOf(order), nil
}

// rankOf inverts a priority order into per-task ranks.
func rankOf(order []int) []int {
	rank := make([]int, len(order))
	for r, i := range order {
		rank[i] = r
	}
	return rank
}

// rlsWithCap is the shared Algorithm 2 entry for unprepared calls.
func rlsWithCap(g *dag.Graph, cap model.Mem, tie TieBreak) (*RLSResult, error) {
	rank, err := tieRank(g, tie)
	if err != nil {
		return nil, err
	}
	return rlsRanked(g, rank, predCounts(g), cap, nil)
}

// predCounts returns the per-task predecessor counts that seed the
// ready-set bookkeeping of the Algorithm 2 loop.
func predCounts(g *dag.Graph) []int {
	np := make([]int, g.N())
	for v := range np {
		np[v] = len(g.Preds(v))
	}
	return np
}

// rlsRanked is the Algorithm 2 loop with a precomputed tie rank and
// predecessor counts. It never mutates rank or npreds, so prepared
// sweeps may run it concurrently against shared slices. scr may be nil;
// only buffers that escape into the result are freshly allocated.
func rlsRanked(g *dag.Graph, rank, npreds []int, cap model.Mem, scr *Scratch) (*RLSResult, error) {
	scr, pooled := borrowScratch(scr)
	defer releaseScratch(scr, pooled)
	n := g.N()
	m := g.M

	sc := model.NewSchedule(m, n)
	copy(sc.P, g.P)
	copy(sc.S, g.S)

	load := scr.loads(m)
	memsize := scr.mems(m)
	marked := make([]bool, m) // escapes via RLSResult.Marked
	done := scr.doneBuf(n)
	pendingPreds := scr.predsBuf(npreds)
	readyTime := scr.readyBuf(n) // max over preds of completion
	var sumCi model.Time

	const inf = model.Time(math.MaxInt64)
	for scheduled := 0; scheduled < n; scheduled++ {
		bestTask, bestProc := -1, -1
		bestStart := inf
		for i := 0; i < n; i++ {
			if done[i] || pendingPreds[i] != 0 {
				continue
			}
			// Least-loaded processor that respects the memory cap.
			proc := -1
			for j := 0; j < m; j++ {
				if memsize[j]+g.S[i] > cap {
					continue
				}
				if proc == -1 || load[j] < load[proc] {
					proc = j
				}
			}
			if proc == -1 {
				// No processor can take this task. Another ready
				// task might still fit; defer i.
				continue
			}
			// Analysis bookkeeping (Lemma 4): every processor with a
			// smaller load than the chosen one was skipped because
			// of memory.
			for j := 0; j < m; j++ {
				if load[j] < load[proc] {
					marked[j] = true
				}
			}
			start := readyTime[i]
			if load[proc] > start {
				start = load[proc]
			}
			if start < bestStart || (start == bestStart && (bestTask == -1 || rank[i] < rank[bestTask])) {
				bestTask, bestProc, bestStart = i, proc, start
			}
		}
		if bestTask == -1 {
			return nil, ErrCapTooSmall{Task: firstUnscheduled(done), Cap: cap}
		}
		i := bestTask
		sc.Proc[i] = bestProc
		sc.Start[i] = bestStart
		load[bestProc] = bestStart + g.P[i]
		memsize[bestProc] += g.S[i]
		sumCi += bestStart + g.P[i]
		done[i] = true
		for _, w := range g.Succs(i) {
			pendingPreds[w]--
			if c := bestStart + g.P[i]; c > readyTime[w] {
				readyTime[w] = c
			}
		}
	}

	// The objectives fall out of the loop's own bookkeeping: the final
	// per-processor loads and memory sizes are exactly what
	// sc.Cmax()/sc.Mmax() would recompute, and ΣCi accumulated per task.
	res := &RLSResult{
		Schedule: sc,
		Cap:      cap,
		Marked:   marked,
		Cmax:     maxTimeOf(load),
		Mmax:     maxMemOf(memsize),
		SumCi:    sumCi,
	}
	return res, nil
}

func firstUnscheduled(done []bool) int {
	for i, d := range done {
		if !d {
			return i
		}
	}
	return -1
}

// RLSIndependent runs the Section 5.2 independent-task variant: tasks
// are taken strictly in the tie-break order (SPT for Corollary 4) and
// each goes to its least-loaded memory-feasible processor. On
// independent tasks this coincides with Algorithm 2 whenever all ready
// times are equal, and it is the form whose ΣCi analysis (Lemma 6)
// requires tasks to be delayed only by order-earlier tasks.
func RLSIndependent(in *model.Instance, delta float64, tie TieBreak) (*RLSResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := checkRLSDelta(delta); err != nil {
		return nil, err
	}
	lb := bounds.MemLB(in.S(), in.M)
	cap, err := MemCap(delta, lb)
	if err != nil {
		return nil, err
	}
	res, err := rlsIndependentWithCap(in, cap, tie)
	if err != nil {
		return nil, err
	}
	res.Delta = delta
	res.LB = lb
	return res, nil
}

// RLSIndependentWithCap is the explicit-cap form of RLSIndependent.
func RLSIndependentWithCap(in *model.Instance, cap model.Mem, tie TieBreak) (*RLSResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	res, err := rlsIndependentWithCap(in, cap, tie)
	if err != nil {
		return nil, err
	}
	res.LB = bounds.MemLB(in.S(), in.M)
	if res.LB > 0 {
		res.Delta = float64(cap) / float64(res.LB)
	}
	return res, nil
}

func rlsIndependentWithCap(in *model.Instance, cap model.Mem, tie TieBreak) (*RLSResult, error) {
	order, err := tieOrder(dag.FromInstance(in), tie)
	if err != nil {
		return nil, err
	}
	return rlsIndependentOrdered(in, order, cap, nil)
}

// rlsIndependentOrdered is the Section 5.2 loop with a precomputed
// scheduling order. It never mutates order, so prepared sweeps may run
// it concurrently against a shared order slice. scr may be nil; only
// buffers that escape into the result are freshly allocated.
func rlsIndependentOrdered(in *model.Instance, order []int, cap model.Mem, scr *Scratch) (*RLSResult, error) {
	scr, pooled := borrowScratch(scr)
	defer releaseScratch(scr, pooled)
	n, m := in.N(), in.M
	sc := model.NewSchedule(m, n)
	for i, t := range in.Tasks {
		sc.P[i] = t.P
		sc.S[i] = t.S
	}
	load := scr.loads(m)
	memsize := scr.mems(m)
	marked := make([]bool, m) // escapes via RLSResult.Marked
	var sumCi model.Time
	for _, i := range order {
		t := in.Tasks[i]
		proc := -1
		for j := 0; j < m; j++ {
			if memsize[j]+t.S > cap {
				continue
			}
			if proc == -1 || load[j] < load[proc] {
				proc = j
			}
		}
		if proc == -1 {
			return nil, ErrCapTooSmall{Task: i, Cap: cap}
		}
		for j := 0; j < m; j++ {
			if load[j] < load[proc] {
				marked[j] = true
			}
		}
		sc.Proc[i] = proc
		sc.Start[i] = load[proc]
		load[proc] += t.P
		memsize[proc] += t.S
		sumCi += load[proc]
	}
	return &RLSResult{
		Schedule: sc,
		Cap:      cap,
		Marked:   marked,
		Cmax:     maxTimeOf(load),
		Mmax:     maxMemOf(memsize),
		SumCi:    sumCi,
	}, nil
}

// RLSPrepared memoizes the δ-independent work of RLSIndependent —
// instance validation, the Graham memory lower bound, and the
// tie-break orders — so a δ-sweep pays each exactly once per instance.
// The prepared value is immutable after PrepareRLSIndependent and safe
// for concurrent Run calls.
type RLSPrepared struct {
	in     *model.Instance
	lb     model.Mem
	orders map[TieBreak][]int
}

// PrepareRLSIndependent validates the instance and precomputes the
// scheduling orders for the given tie-breaks (all four when none are
// given).
func PrepareRLSIndependent(in *model.Instance, ties ...TieBreak) (*RLSPrepared, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if len(ties) == 0 {
		ties = []TieBreak{TieByID, TieSPT, TieLPT, TieBottomLevel}
	}
	g := dag.FromInstance(in)
	orders := make(map[TieBreak][]int, len(ties))
	for _, tie := range ties {
		if _, ok := orders[tie]; ok {
			continue
		}
		order, err := tieOrder(g, tie)
		if err != nil {
			return nil, err
		}
		orders[tie] = order
	}
	return &RLSPrepared{in: in, lb: bounds.MemLB(in.S(), in.M), orders: orders}, nil
}

// LB returns the memoized Graham memory lower bound.
func (prep *RLSPrepared) LB() model.Mem { return prep.lb }

// Run executes one RLS∆ evaluation against the prepared state.
func (prep *RLSPrepared) Run(delta float64, tie TieBreak) (*RLSResult, error) {
	return prep.RunScratch(delta, tie, nil)
}

// RunScratch is Run with caller-owned scratch buffers: the sweep
// engine's workers hold one Scratch each, so a warm sweep allocates
// only what escapes into the result. A nil scr borrows from the
// internal pool.
func (prep *RLSPrepared) RunScratch(delta float64, tie TieBreak, scr *Scratch) (*RLSResult, error) {
	if err := checkRLSDelta(delta); err != nil {
		return nil, err
	}
	cap, err := MemCap(delta, prep.lb)
	if err != nil {
		return nil, err
	}
	order, ok := prep.orders[tie]
	if !ok {
		return nil, fmt.Errorf("core: tie-break %s not prepared", tie)
	}
	res, err := rlsIndependentOrdered(prep.in, order, cap, scr)
	if err != nil {
		return nil, err
	}
	res.Delta = delta
	res.LB = prep.lb
	return res, nil
}

// RunWithCap executes one evaluation under an explicit per-processor
// budget against the prepared state; it matches
// RLSIndependentWithCap(in, cap, tie) bit for bit.
func (prep *RLSPrepared) RunWithCap(cap model.Mem, tie TieBreak) (*RLSResult, error) {
	order, ok := prep.orders[tie]
	if !ok {
		return nil, fmt.Errorf("core: tie-break %s not prepared", tie)
	}
	res, err := rlsIndependentOrdered(prep.in, order, cap, nil)
	if err != nil {
		return nil, err
	}
	res.LB = prep.lb
	if prep.lb > 0 {
		res.Delta = float64(cap) / float64(prep.lb)
	}
	return res, nil
}

// RLSGraphPrepared memoizes the δ-independent work of RLS on a task
// DAG — validation (including the topological cycle check), the Graham
// memory lower bound, the bottom levels and the tie-break ranks — so a
// δ-sweep pays each exactly once per graph. The prepared value is
// immutable after PrepareRLS and safe for concurrent Run calls.
type RLSGraphPrepared struct {
	g      *dag.Graph
	lb     model.Mem
	npreds []int
	bottom []model.Time
	ranks  map[TieBreak][]int
}

// PrepareRLS validates the graph and precomputes the tie ranks for the
// given tie-breaks (all four when none are given) over one shared
// topological pass.
func PrepareRLS(g *dag.Graph, ties ...TieBreak) (*RLSGraphPrepared, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(ties) == 0 {
		ties = []TieBreak{TieByID, TieSPT, TieLPT, TieBottomLevel}
	}
	prep := &RLSGraphPrepared{
		g:      g,
		lb:     bounds.MemLB(g.S, g.M),
		npreds: predCounts(g),
		ranks:  make(map[TieBreak][]int, len(ties)),
	}
	for _, tie := range ties {
		if _, ok := prep.ranks[tie]; ok {
			continue
		}
		if tie == TieBottomLevel && prep.bottom == nil {
			bl, err := g.BottomLevels()
			if err != nil {
				return nil, err
			}
			prep.bottom = bl
		}
		order, err := tieOrderFrom(g, tie, prep.bottom)
		if err != nil {
			return nil, err
		}
		prep.ranks[tie] = rankOf(order)
	}
	return prep, nil
}

// LB returns the memoized Graham memory lower bound.
func (prep *RLSGraphPrepared) LB() model.Mem { return prep.lb }

// Run executes one RLS∆ evaluation against the prepared state; it
// matches RLS(g, delta, tie) bit for bit.
func (prep *RLSGraphPrepared) Run(delta float64, tie TieBreak) (*RLSResult, error) {
	return prep.RunScratch(delta, tie, nil)
}

// RunScratch is Run with caller-owned scratch buffers; a nil scr
// borrows from the internal pool.
func (prep *RLSGraphPrepared) RunScratch(delta float64, tie TieBreak, scr *Scratch) (*RLSResult, error) {
	if err := checkRLSDelta(delta); err != nil {
		return nil, err
	}
	cap, err := MemCap(delta, prep.lb)
	if err != nil {
		return nil, err
	}
	res, err := prep.runRanked(tie, cap, scr)
	if err != nil {
		return nil, err
	}
	res.Delta = delta
	return res, nil
}

// RunWithCap executes one evaluation under an explicit per-processor
// budget; it matches RLSWithCap(g, cap, tie) bit for bit.
func (prep *RLSGraphPrepared) RunWithCap(cap model.Mem, tie TieBreak) (*RLSResult, error) {
	res, err := prep.runRanked(tie, cap, nil)
	if err != nil {
		return nil, err
	}
	if prep.lb > 0 {
		res.Delta = float64(cap) / float64(prep.lb)
	}
	return res, nil
}

func (prep *RLSGraphPrepared) runRanked(tie TieBreak, cap model.Mem, scr *Scratch) (*RLSResult, error) {
	rank, ok := prep.ranks[tie]
	if !ok {
		return nil, fmt.Errorf("core: tie-break %s not prepared", tie)
	}
	res, err := rlsRanked(prep.g, rank, prep.npreds, cap, scr)
	if err != nil {
		return nil, err
	}
	res.LB = prep.lb
	return res, nil
}

package core

import (
	"errors"
	"fmt"
	"math"

	"storagesched/internal/bounds"
	"storagesched/internal/dag"
	"storagesched/internal/makespan"
	"storagesched/internal/model"
)

// Section 7 of the paper explains how the bi-objective machinery
// recovers the original, inapproximable problem "minimize Cmax subject
// to Mmax ≤ M":
//
//   - with precedence constraints, compute the Graham lower bound LB
//     and run RLS with the budget M directly (∆ = M/LB); a solution is
//     guaranteed whenever M ≥ 2·LB and the resulting makespan carries
//     the matching Lemma 5 ratio;
//   - with independent tasks, a parameter that always yields a
//     feasible solution can be computed from Property 2, and the
//     solution is then "tentatively improved by doing a binary search
//     on the parameter".
//
// Both solvers report infeasibility exactly when M < LB (no schedule
// at all fits), and "not certified" in the narrow band LB ≤ M < 2·LB
// where the greedy may legitimately fail (the paper: "only few cases
// can not be handled ... when it is difficult to fit the tasks").

// ErrInfeasible reports that no schedule at all can respect the memory
// budget (the budget is below the Graham lower bound).
var ErrInfeasible = errors.New("core: memory budget below the Graham lower bound; no schedule exists")

// ErrNotCertified reports that the solver failed to produce a schedule
// within the budget although one may exist (budget between LB and
// 2·LB).
var ErrNotCertified = errors.New("core: no schedule found within the memory budget (budget < 2*LB, existence unknown)")

// ConstrainedDAG schedules a task DAG under a hard memory budget capM.
// On success the returned schedule satisfies Mmax ≤ capM.
//
// Each call validates, ranks and solves from scratch. A budget sweep
// over one graph should prepare once with PrepareRLS and call
// Constrained per cap instead — the δ-independent work (validation,
// topological structure, tie ranks) is then paid once for the whole
// sweep.
func ConstrainedDAG(g *dag.Graph, capM model.Mem, tie TieBreak) (*RLSResult, error) {
	prep, err := PrepareRLS(g, tie)
	if err != nil {
		return nil, err
	}
	return prep.Constrained(capM, tie)
}

// Constrained is the Section 7 DAG solver against the prepared state:
// it schedules under the hard memory budget capM via RunWithCap,
// reusing the memoized validation, lower bound and tie ranks instead
// of recomputing them per call. It reports ErrInfeasible below the
// Graham lower bound and ErrNotCertified in the [LB, 2·LB) band where
// the greedy may legitimately fail, exactly like ConstrainedDAG.
func (prep *RLSGraphPrepared) Constrained(capM model.Mem, tie TieBreak) (*RLSResult, error) {
	lb := prep.lb
	if capM < lb {
		return nil, fmt.Errorf("%w (LB=%d, budget=%d)", ErrInfeasible, lb, capM)
	}
	res, err := prep.RunWithCap(capM, tie)
	if err != nil {
		var tooSmall ErrCapTooSmall
		if errors.As(err, &tooSmall) {
			return nil, fmt.Errorf("%w (LB=%d, budget=%d)", ErrNotCertified, lb, capM)
		}
		return nil, err
	}
	return res, nil
}

// Constrained is the independent-task mirror of the DAG solver: it
// schedules under the hard memory budget capM against the prepared
// orders via RunWithCap, with the same ErrInfeasible / ErrNotCertified
// contract. A budget sweep prepares once and calls Constrained per
// budget — the validation and tie-break orders are shared across the
// whole band.
func (prep *RLSPrepared) Constrained(capM model.Mem, tie TieBreak) (*RLSResult, error) {
	lb := prep.lb
	if capM < lb {
		return nil, fmt.Errorf("%w (LB=%d, budget=%d)", ErrInfeasible, lb, capM)
	}
	res, err := prep.RunWithCap(capM, tie)
	if err != nil {
		var tooSmall ErrCapTooSmall
		if errors.As(err, &tooSmall) {
			return nil, fmt.Errorf("%w (LB=%d, budget=%d)", ErrNotCertified, lb, capM)
		}
		return nil, err
	}
	return res, nil
}

// ConstrainedSBOResult carries the best SBO schedule found under a
// memory budget, together with the parameter search trace.
type ConstrainedSBOResult struct {
	*SBOResult

	// GuaranteedDelta is the smallest ∆ for which Property 2 alone
	// certifies feasibility: ∆ ≥ M/(capM − M) (infinite tasks-on-π2
	// when capM == M). The search always evaluates it.
	GuaranteedDelta float64

	// Tried is the number of ∆ values evaluated.
	Tried int
}

// ConstrainedSBO solves "min Cmax s.t. Mmax ≤ capM" on independent
// tasks by searching the ∆ parameter of SBO, per Section 7. steps
// controls the size of the log-spaced ∆ grid (≥ 1; 32 is plenty).
//
// Feasibility is decided by *measurement* (the achieved Mmax), so the
// result is often better than what Property 2 alone certifies. The
// search keeps the feasible schedule with the smallest measured Cmax.
func ConstrainedSBO(in *model.Instance, capM model.Mem, algC, algM makespan.Algorithm, steps int) (*ConstrainedSBOResult, error) {
	prep, err := PrepareSBO(in, algC, algM)
	if err != nil {
		return nil, err
	}
	return prep.Constrained(capM, steps)
}

// Constrained runs the ∆ parameter search against the prepared
// sub-schedules: only the per-∆ merge is paid per grid point, and a
// budget sweep reuses one prepared value for the whole band. It returns
// exactly what ConstrainedSBO returns for the same instance,
// sub-algorithms and steps.
func (prep *SBOPrepared) Constrained(capM model.Mem, steps int) (*ConstrainedSBOResult, error) {
	if steps < 1 {
		steps = 32
	}
	in := prep.in
	lb := bounds.MemLB(prep.s, in.M)
	if capM < lb {
		return nil, fmt.Errorf("%w (LB=%d, budget=%d)", ErrInfeasible, lb, capM)
	}

	// The memory sub-schedule π2 is the most memory-frugal anchor
	// SBO can reach; if even it busts the budget the SBO family
	// cannot certify this budget.
	mVal := prep.m
	if mVal > capM {
		return nil, fmt.Errorf("%w (memory sub-schedule reaches Mmax=%d > budget=%d)", ErrNotCertified, mVal, capM)
	}

	guaranteed := math.Inf(1)
	if capM > mVal {
		guaranteed = float64(mVal) / float64(capM-mVal)
	}

	// Candidate ∆ grid: log-spaced over [1/64, 64] plus the
	// guaranteed parameter. Small ∆ keeps tasks on the time schedule
	// (good Cmax), large ∆ pushes them to the memory schedule (good
	// Mmax); the measured-feasible minimum over the grid is the
	// Section 7 "binary search" made robust to non-monotonicity.
	var deltas []float64
	lo, hi := 1.0/64, 64.0
	if !math.IsInf(guaranteed, 1) && guaranteed > hi {
		hi = guaranteed
	}
	ratio := math.Pow(hi/lo, 1/float64(steps))
	for d := lo; d <= hi*(1+1e-12); d *= ratio {
		deltas = append(deltas, d)
	}
	if !math.IsInf(guaranteed, 1) {
		deltas = append(deltas, guaranteed)
	}

	res := &ConstrainedSBOResult{GuaranteedDelta: guaranteed}
	for _, d := range deltas {
		r, err := prep.Run(d)
		if err != nil {
			return nil, err
		}
		res.Tried++
		if r.Mmax > capM {
			continue
		}
		if res.SBOResult == nil || r.Cmax < res.SBOResult.Cmax {
			res.SBOResult = r
		}
	}
	if res.SBOResult == nil {
		// π2 itself is feasible (checked above), so the all-π2
		// fallback always lands here at worst: force it. The prepared
		// π2 is shared state, so the result gets its own copy.
		r := &SBOResult{
			Delta:           math.Inf(1),
			Assignment:      append(model.Assignment(nil), prep.pi2...),
			FromMemSchedule: make([]bool, in.N()),
			C:               prep.c,
			M:               mVal,
			Cmax:            in.Cmax(prep.pi2),
			Mmax:            mVal,
		}
		for i := range r.FromMemSchedule {
			r.FromMemSchedule[i] = true
		}
		res.SBOResult = r
	}
	return res, nil
}

// ConstrainedIndependent tries both Section 7 routes on an
// independent-task instance — the SBO parameter search and RLS with an
// explicit cap (SPT order) — and returns the assignment with the
// smaller makespan among the feasible ones.
func ConstrainedIndependent(in *model.Instance, capM model.Mem) (model.Assignment, model.Value, error) {
	prep, err := PrepareConstrainedIndependent(in)
	if err != nil {
		return nil, model.Value{}, err
	}
	return prep.Solve(capM)
}

// ConstrainedPrepared memoizes the budget-independent work of
// ConstrainedIndependent — validation, the memory lower bound, the SBO
// sub-schedules (LPT/LPT) and the RLS SPT order — so a sweep over a
// budget band prepares once and calls Solve per budget. The prepared
// value is immutable and safe for concurrent Solve calls.
type ConstrainedPrepared struct {
	sbo *SBOPrepared
	rls *RLSPrepared
	lb  model.Mem
}

// PrepareConstrainedIndependent validates the instance and runs the
// budget-independent halves of both Section 7 routes.
func PrepareConstrainedIndependent(in *model.Instance) (*ConstrainedPrepared, error) {
	sbo, err := PrepareSBO(in, makespan.LPT{}, makespan.LPT{})
	if err != nil {
		return nil, err
	}
	rls, err := PrepareRLSIndependent(in, TieSPT)
	if err != nil {
		return nil, err
	}
	return &ConstrainedPrepared{sbo: sbo, rls: rls, lb: rls.lb}, nil
}

// LB returns the memoized Graham memory lower bound.
func (prep *ConstrainedPrepared) LB() model.Mem { return prep.lb }

// Solve runs both Section 7 routes under the budget against the
// prepared state and returns the assignment with the smaller makespan
// among the feasible ones — exactly what ConstrainedIndependent
// returns for the same instance and budget.
func (prep *ConstrainedPrepared) Solve(capM model.Mem) (model.Assignment, model.Value, error) {
	if capM < prep.lb {
		return nil, model.Value{}, fmt.Errorf("%w (LB=%d, budget=%d)", ErrInfeasible, prep.lb, capM)
	}

	var bestA model.Assignment
	var bestV model.Value

	if sbo, err := prep.sbo.Constrained(capM, 32); err == nil {
		bestA = sbo.Assignment
		bestV = model.Value{Cmax: sbo.Cmax, Mmax: sbo.Mmax}
	}
	if rls, err := prep.rls.RunWithCap(capM, TieSPT); err == nil && rls.Mmax <= capM {
		if bestA == nil || rls.Cmax < bestV.Cmax {
			bestA = rls.Schedule.Assignment()
			bestV = model.Value{Cmax: rls.Cmax, Mmax: rls.Mmax}
		}
	}
	if bestA == nil {
		return nil, model.Value{}, fmt.Errorf("%w (LB=%d, budget=%d)", ErrNotCertified, prep.lb, capM)
	}
	return bestA, bestV, nil
}

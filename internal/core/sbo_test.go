package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"storagesched/internal/makespan"
	"storagesched/internal/model"
)

func randInstance(rng *rand.Rand, maxN, maxM int, maxV int64) *model.Instance {
	n := 1 + rng.Intn(maxN)
	m := 1 + rng.Intn(maxM)
	p := make([]model.Time, n)
	s := make([]model.Mem, n)
	for i := 0; i < n; i++ {
		p[i] = rng.Int63n(maxV) + 1
		s[i] = rng.Int63n(maxV + 1)
	}
	return model.NewInstance(m, p, s)
}

func TestSBORejectsBadInput(t *testing.T) {
	in := model.NewInstance(2, []model.Time{1}, []model.Mem{1})
	if _, err := SBO(in, 0, makespan.LPT{}, makespan.LPT{}); err == nil {
		t.Error("delta = 0 accepted")
	}
	if _, err := SBO(in, -1, makespan.LPT{}, makespan.LPT{}); err == nil {
		t.Error("delta < 0 accepted")
	}
	bad := &model.Instance{M: 0}
	if _, err := SBO(bad, 1, makespan.LPT{}, makespan.LPT{}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestSBOThresholdSplitsAsInPaper(t *testing.T) {
	// Intuition check from Section 3.1: a long task with little
	// memory should follow the makespan schedule; a short task with
	// huge memory should follow the memory schedule.
	in := model.NewInstance(2,
		[]model.Time{100, 1, 50, 50},
		[]model.Mem{1, 100, 50, 50})
	res, err := SBO(in, 1, makespan.LPT{}, makespan.LPT{})
	if err != nil {
		t.Fatalf("SBO: %v", err)
	}
	if res.FromMemSchedule[0] {
		t.Error("task 0 (p=100, s=1) should come from the makespan schedule")
	}
	if !res.FromMemSchedule[1] {
		t.Error("task 1 (p=1, s=100) should come from the memory schedule")
	}
}

func TestSBOAllZeroMemory(t *testing.T) {
	in := model.NewInstance(2, []model.Time{5, 7, 3}, []model.Mem{0, 0, 0})
	res, err := SBO(in, 1, makespan.LPT{}, makespan.LPT{})
	if err != nil {
		t.Fatalf("SBO: %v", err)
	}
	if res.Mmax != 0 {
		t.Errorf("Mmax = %d, want 0", res.Mmax)
	}
	// With M = 0 every task must follow the time schedule.
	for i, b := range res.FromMemSchedule {
		if b {
			t.Errorf("task %d routed to memory schedule with all-zero memory", i)
		}
	}
	if res.Cmax != res.C {
		t.Errorf("Cmax = %d, want C = %d (pure makespan schedule)", res.Cmax, res.C)
	}
}

func TestSBORatioFormula(t *testing.T) {
	c, m := SBORatio(1, 1, 1)
	if c != 2 || m != 2 {
		t.Errorf("SBORatio(1,1,1) = (%g,%g), want (2,2)", c, m)
	}
	c, m = SBORatio(2, 1.5, 1.25)
	if c != 3*1.5 || m != 1.5*1.25 {
		t.Errorf("SBORatio(2,1.5,1.25) = (%g,%g)", c, m)
	}
}

// Property 1 and Property 2, tested exactly as stated: relative to the
// sub-schedule values C and M, independent of the unknown optimum.
func TestPropertySBOGuarantees(t *testing.T) {
	deltas := []float64{0.25, 0.5, 1, 2, 4}
	algos := []makespan.Algorithm{makespan.ListScheduling{}, makespan.LPT{}, makespan.Multifit{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng, 50, 8, 1000)
		delta := deltas[rng.Intn(len(deltas))]
		algC := algos[rng.Intn(len(algos))]
		algM := algos[rng.Intn(len(algos))]
		res, err := SBO(in, delta, algC, algM)
		if err != nil {
			return false
		}
		if in.ValidateAssignment(res.Assignment) != nil {
			return false
		}
		if float64(res.Cmax) > (1+delta)*float64(res.C)+1e-9 {
			return false // Property 1 violated
		}
		if res.M > 0 && float64(res.Mmax) > (1+1/delta)*float64(res.M)+1e-9 {
			return false // Property 2 violated
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Corollary 1 with the PTAS sub-algorithm on instances small enough
// for exact optima: the schedule is within ((1+∆)(1+ε), (1+1/∆)(1+ε))
// of (C*max, M*max).
func TestSBOPTASAgainstExactOptima(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	eps := 0.25
	for trial := 0; trial < 25; trial++ {
		in := randInstance(rng, 9, 3, 50)
		optC, _ := makespan.ExactDP{}.Solve(in.P(), in.M)
		optM, _ := makespan.ExactDP{}.Solve(in.S(), in.M)
		for _, delta := range []float64{0.5, 1, 2} {
			res, err := SBOWithPTAS(in, delta, eps)
			if err != nil {
				t.Fatalf("SBOWithPTAS: %v", err)
			}
			cBound := (1 + delta) * (1 + eps) * float64(optC)
			if float64(res.Cmax) > cBound+1e-9 {
				t.Errorf("trial %d delta=%g: Cmax %d > bound %.2f (C*=%d)",
					trial, delta, res.Cmax, cBound, optC)
			}
			mBound := (1 + 1/delta) * (1 + eps) * float64(optM)
			if optM > 0 && float64(res.Mmax) > mBound+1e-9 {
				t.Errorf("trial %d delta=%g: Mmax %d > bound %.2f (M*=%d)",
					trial, delta, res.Mmax, mBound, optM)
			}
		}
	}
}

// The Corollary 1 remark: a (2·C*max, 2·M*max) solution always exists;
// SBO at ∆ = 1 with the PTAS finds one up to ε.
func TestSBODelta1TwoTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	eps := 0.25
	for trial := 0; trial < 15; trial++ {
		in := randInstance(rng, 8, 3, 30)
		optC, _ := makespan.ExactDP{}.Solve(in.P(), in.M)
		optM, _ := makespan.ExactDP{}.Solve(in.S(), in.M)
		res, err := SBOWithPTAS(in, 1, eps)
		if err != nil {
			t.Fatalf("SBOWithPTAS: %v", err)
		}
		if float64(res.Cmax) > 2*(1+eps)*float64(optC)+1e-9 {
			t.Errorf("trial %d: Cmax %d > 2(1+eps)C* (C*=%d)", trial, res.Cmax, optC)
		}
		if optM > 0 && float64(res.Mmax) > 2*(1+eps)*float64(optM)+1e-9 {
			t.Errorf("trial %d: Mmax %d > 2(1+eps)M* (M*=%d)", trial, res.Mmax, optM)
		}
	}
}

// The symmetry observation of Section 2.1: running SBO on the swapped
// instance with parameter 1/∆ mirrors the guarantees.
func TestPropertySBOSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng, 30, 6, 500)
		// Avoid all-zero memory (swap would make p zero -> invalid).
		for i := range in.Tasks {
			if in.Tasks[i].S == 0 {
				in.Tasks[i].S = 1
			}
		}
		delta := 0.5 + rng.Float64()*3
		alg := makespan.LPT{}
		res, err := SBO(in, delta, alg, alg)
		if err != nil {
			return false
		}
		sw, err := SBO(in.Swapped(), 1/delta, alg, alg)
		if err != nil {
			return false
		}
		// Guarantees mirror exactly.
		okA := float64(res.Cmax) <= (1+delta)*float64(res.C)+1e-9
		okB := float64(sw.Mmax) <= (1+delta)*float64(sw.M)+1e-9
		return okA && okB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSBOConvenienceWrappers(t *testing.T) {
	in := model.NewInstance(3, []model.Time{9, 4, 6, 2}, []model.Mem{3, 8, 1, 5})
	for name, run := range map[string]func() (*SBOResult, error){
		"LS":   func() (*SBOResult, error) { return SBOWithLS(in, 1) },
		"LPT":  func() (*SBOResult, error) { return SBOWithLPT(in, 1) },
		"PTAS": func() (*SBOResult, error) { return SBOWithPTAS(in, 1, 0.3) },
	} {
		res, err := run()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := in.ValidateAssignment(res.Assignment); err != nil {
			t.Errorf("%s: invalid assignment: %v", name, err)
		}
	}
	if _, err := SBOWithPTAS(in, 1, 0); err == nil {
		t.Error("PTAS eps=0 accepted")
	}
	if _, err := SBOWithPTAS(in, 1, 1); err == nil {
		t.Error("PTAS eps=1 accepted")
	}
}

func TestSBOBoundsAccessors(t *testing.T) {
	r := &SBOResult{Delta: 2, C: 10, M: 9}
	if got := r.CmaxBound(); got != 30 {
		t.Errorf("CmaxBound = %g, want 30", got)
	}
	if got := r.MmaxBound(); got != 13.5 {
		t.Errorf("MmaxBound = %g, want 13.5", got)
	}
}

// Monotonicity of the split: raising ∆ can only move tasks toward the
// memory schedule, never back.
func TestPropertySBOSplitMonotoneInDelta(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng, 30, 5, 200)
		alg := makespan.LPT{}
		r1, err1 := SBO(in, 0.5, alg, alg)
		r2, err2 := SBO(in, 2.0, alg, alg)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range r1.FromMemSchedule {
			if r1.FromMemSchedule[i] && !r2.FromMemSchedule[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Huge-value robustness: the exact rational threshold must not
// misroute tasks on ε-scaled instances (values up to 2^40).
func TestSBOHugeValues(t *testing.T) {
	const scale = int64(1) << 40
	in := model.NewInstance(2,
		[]model.Time{scale, scale / 2, scale / 2},
		[]model.Mem{1, scale, scale})
	res, err := SBO(in, 1, makespan.LPT{}, makespan.LPT{})
	if err != nil {
		t.Fatalf("SBO: %v", err)
	}
	if float64(res.Cmax) > 2*float64(res.C)+1 {
		t.Errorf("Property 1 violated at scale: Cmax=%d C=%d", res.Cmax, res.C)
	}
	if float64(res.Mmax) > 2*float64(res.M)+1 {
		t.Errorf("Property 2 violated at scale: Mmax=%d M=%d", res.Mmax, res.M)
	}
}

package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"storagesched/internal/bounds"
	"storagesched/internal/dag"
	"storagesched/internal/makespan"
	"storagesched/internal/model"
)

func TestConstrainedDAGInfeasibleBudget(t *testing.T) {
	g := dag.New(2, []model.Time{1, 1}, []model.Mem{10, 10})
	// LB = 10; budget below it is provably infeasible.
	if _, err := ConstrainedDAG(g, 9, TieByID); !errors.Is(err, ErrInfeasible) {
		t.Errorf("expected ErrInfeasible, got %v", err)
	}
}

func TestConstrainedDAGGenerousBudget(t *testing.T) {
	g := dag.New(2, []model.Time{3, 2, 4, 1}, []model.Mem{5, 5, 5, 5})
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	res, err := ConstrainedDAG(g, 20, TieByID)
	if err != nil {
		t.Fatalf("ConstrainedDAG: %v", err)
	}
	if res.Mmax > 20 {
		t.Errorf("Mmax = %d exceeds budget 20", res.Mmax)
	}
	if err := res.Schedule.Validate(g.PredLists()); err != nil {
		t.Errorf("invalid schedule: %v", err)
	}
}

func TestConstrainedSBOInfeasible(t *testing.T) {
	in := model.NewInstance(2, []model.Time{1, 1}, []model.Mem{10, 10})
	if _, err := ConstrainedSBO(in, 9, makespan.LPT{}, makespan.LPT{}, 8); !errors.Is(err, ErrInfeasible) {
		t.Errorf("expected ErrInfeasible, got %v", err)
	}
}

func TestConstrainedSBOFindsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		in := randInstance(rng, 20, 4, 100)
		lb := bounds.MemLB(in.S(), in.M)
		budget := 2 * lb // always satisfiable by SBO (π2 is a list schedule)
		res, err := ConstrainedSBO(in, budget, makespan.LPT{}, makespan.LPT{}, 16)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Mmax > budget {
			t.Errorf("trial %d: Mmax %d > budget %d", trial, res.Mmax, budget)
		}
		if res.Tried == 0 {
			t.Errorf("trial %d: no parameters tried", trial)
		}
	}
}

func TestConstrainedSBOTightBudgetUsesGuaranteedDelta(t *testing.T) {
	// Budget exactly Mmax(π2): only very large ∆ (all tasks on π2)
	// certainly fits; the solver must still return something feasible.
	in := model.NewInstance(2,
		[]model.Time{8, 8, 1, 1},
		[]model.Mem{1, 1, 8, 8})
	pi2 := makespan.LPT{}.Assign(in.S(), in.M)
	budget := in.Mmax(pi2)
	res, err := ConstrainedSBO(in, budget, makespan.LPT{}, makespan.LPT{}, 16)
	if err != nil {
		t.Fatalf("ConstrainedSBO: %v", err)
	}
	if res.Mmax > budget {
		t.Errorf("Mmax %d > budget %d", res.Mmax, budget)
	}
}

func TestConstrainedIndependentRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		in := randInstance(rng, 16, 4, 60)
		lb := bounds.MemLB(in.S(), in.M)
		a, v, err := ConstrainedIndependent(in, 2*lb)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := in.ValidateAssignment(a); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if v.Mmax > 2*lb {
			t.Errorf("trial %d: Mmax %d > budget %d", trial, v.Mmax, 2*lb)
		}
		if in.Cmax(a) != v.Cmax || in.Mmax(a) != v.Mmax {
			t.Errorf("trial %d: reported value mismatch", trial)
		}
	}
}

func TestConstrainedIndependentInfeasible(t *testing.T) {
	in := model.NewInstance(2, []model.Time{1, 1}, []model.Mem{10, 10})
	if _, _, err := ConstrainedIndependent(in, 5); !errors.Is(err, ErrInfeasible) {
		t.Errorf("expected ErrInfeasible, got %v", err)
	}
}

// Section 7 guarantee: a budget of at least 2·LB is always satisfied
// by both routes (list-schedule memory never exceeds 2·LB and RLS with
// cap ≥ 2·LB never gets stuck).
func TestPropertyConstrainedAlwaysSucceedsAtTwoLB(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng, 30, 6, 100)
		lb := bounds.MemLB(in.S(), in.M)
		a, v, err := ConstrainedIndependent(in, 2*lb)
		if err != nil {
			return false
		}
		if in.ValidateAssignment(a) != nil {
			return false
		}
		return v.Mmax <= 2*lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// The returned makespan under a generous budget should not be worse
// than the Graham guarantee (sanity on solution quality, not just
// feasibility).
func TestPropertyConstrainedQuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng, 25, 5, 80)
		total := in.TotalMem()
		a, v, err := ConstrainedIndependent(in, total) // budget = everything on one proc
		if err != nil {
			return false
		}
		_ = a
		// Anything within 3x of the work/max lower bound is sane
		// (SBO at small delta approaches the LPT schedule, which is
		// within 4/3; keep slack for the grid search).
		r := bounds.ForInstance(in)
		return float64(v.Cmax) <= 3*float64(r.CmaxLB)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConstrainedDAGUncertifiedBand(t *testing.T) {
	// Construct a case in the [LB, 2LB) band where the greedy fails:
	// 3 items of memory 2 on 2 processors, cap 3 (LB = 3). Greedy
	// places two items on different processors (loads 2,2), then the
	// third needs 2 but both are at 2+2=4 > 3? No: memsize 2 each,
	// 2+2=4 > 3, so it is stuck -> ErrNotCertified. (A feasible
	// schedule would need capacity 4.)
	g := dag.New(2, []model.Time{5, 5, 5}, []model.Mem{2, 2, 2})
	_, err := ConstrainedDAG(g, 3, TieByID)
	if err == nil {
		t.Fatal("expected failure in the uncertified band")
	}
	if !errors.Is(err, ErrNotCertified) {
		t.Errorf("expected ErrNotCertified, got %v", err)
	}
}

// TestConstrainedErrorBands walks all three Section 7 solvers through
// the paper's three budget bands on one crafted workload — three tasks
// of storage 2 on two processors, LB = 3:
//
//   - budget < LB: provably infeasible, errors.Is(err, ErrInfeasible);
//   - LB <= budget < 2·LB: the greedy legitimately gets stuck here
//     (two tasks land on different processors, the third fits nowhere
//     under cap 3), errors.Is(err, ErrNotCertified);
//   - budget >= 2·LB: always solved, achieved Mmax within budget.
//
// The errors.Is contract matters because every solver wraps the
// sentinel with %w to attach the (LB, budget) pair.
func TestConstrainedErrorBands(t *testing.T) {
	p := []model.Time{5, 5, 5}
	s := []model.Mem{2, 2, 2}
	in := model.NewInstance(2, p, s)
	lb := bounds.MemLB(s, 2) // = ceil(6/2) = 3

	type result struct {
		err  error
		mmax model.Mem
	}
	solvers := map[string]func(budget model.Mem) result{
		"ConstrainedDAG": func(budget model.Mem) result {
			g := dag.New(2, p, s)
			res, err := ConstrainedDAG(g, budget, TieByID)
			if err != nil {
				return result{err: err}
			}
			return result{mmax: res.Mmax}
		},
		"ConstrainedSBO": func(budget model.Mem) result {
			res, err := ConstrainedSBO(in, budget, makespan.LPT{}, makespan.LPT{}, 8)
			if err != nil {
				return result{err: err}
			}
			return result{mmax: res.Mmax}
		},
		"ConstrainedIndependent": func(budget model.Mem) result {
			_, v, err := ConstrainedIndependent(in, budget)
			if err != nil {
				return result{err: err}
			}
			return result{mmax: v.Mmax}
		},
	}
	for name, solve := range solvers {
		// Band 1: budget < LB.
		r := solve(lb - 1)
		if !errors.Is(r.err, ErrInfeasible) {
			t.Errorf("%s(budget=LB-1): err = %v, want ErrInfeasible", name, r.err)
		}
		if errors.Is(r.err, ErrNotCertified) {
			t.Errorf("%s(budget=LB-1): error matches both sentinels", name)
		}
		// Band 2: LB <= budget < 2·LB, stuck by construction.
		r = solve(lb)
		if !errors.Is(r.err, ErrNotCertified) {
			t.Errorf("%s(budget=LB): err = %v, want ErrNotCertified", name, r.err)
		}
		if errors.Is(r.err, ErrInfeasible) {
			t.Errorf("%s(budget=LB): error matches both sentinels", name)
		}
		// Band 3: budget >= 2·LB always succeeds within budget.
		for _, budget := range []model.Mem{2 * lb, 3 * lb} {
			r = solve(budget)
			if r.err != nil {
				t.Errorf("%s(budget=%d >= 2LB): %v", name, budget, r.err)
				continue
			}
			if r.mmax > budget {
				t.Errorf("%s(budget=%d): achieved Mmax %d exceeds budget", name, budget, r.mmax)
			}
		}
	}
}

// TestConstrainedErrorBandsRandom repeats the band contract on random
// instances: below LB is always ErrInfeasible, at 2·LB always solved;
// in between either outcome is legal, but a failure must be
// ErrNotCertified and a success must respect the budget.
func TestConstrainedErrorBandsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		in := randInstance(rng, 20, 4, 50)
		lb := bounds.MemLB(in.S(), in.M)
		if lb < 2 {
			continue
		}
		if _, _, err := ConstrainedIndependent(in, lb-1); !errors.Is(err, ErrInfeasible) {
			t.Errorf("trial %d: budget below LB: %v", trial, err)
		}
		for budget := lb; budget < 2*lb; budget += maxMem(1, lb/4) {
			_, v, err := ConstrainedIndependent(in, budget)
			if err != nil {
				if !errors.Is(err, ErrNotCertified) {
					t.Errorf("trial %d budget %d: band failure is %v, want ErrNotCertified", trial, budget, err)
				}
				continue
			}
			if v.Mmax > budget {
				t.Errorf("trial %d budget %d: Mmax %d over budget", trial, budget, v.Mmax)
			}
		}
		_, v, err := ConstrainedIndependent(in, 2*lb)
		if err != nil {
			t.Errorf("trial %d: 2LB budget failed: %v", trial, err)
		} else if v.Mmax > 2*lb {
			t.Errorf("trial %d: Mmax %d over 2LB budget", trial, v.Mmax)
		}
	}
}

func maxMem(a, b model.Mem) model.Mem {
	if a > b {
		return a
	}
	return b
}

// A budget sweep over one graph shares a single prepared value across
// all caps: every outcome — success, ErrNotCertified, ErrInfeasible —
// must match a fresh ConstrainedDAG call at the same cap, while the
// validation and tie-ranking work is paid exactly once.
func TestConstrainedDAGPreparedBudgetSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		g := randGraph(rng, 16, 4, 0.3, 50)
		lb := bounds.MemLB(g.S, g.M)
		prep, err := PrepareRLS(g, TieSPT)
		if err != nil {
			t.Fatalf("trial %d: PrepareRLS: %v", trial, err)
		}
		// Sweep the budget from provably infeasible through the
		// uncertified band into the guaranteed region.
		for cap := lb - 1; cap <= 3*lb; cap += maxMem(1, lb/4) {
			got, gotErr := prep.Constrained(cap, TieSPT)
			want, wantErr := ConstrainedDAG(g, cap, TieSPT)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("trial %d cap %d: prepared err %v, fresh err %v", trial, cap, gotErr, wantErr)
			}
			if gotErr != nil {
				if !errors.Is(gotErr, ErrInfeasible) && !errors.Is(gotErr, ErrNotCertified) {
					t.Fatalf("trial %d cap %d: unexpected error %v", trial, cap, gotErr)
				}
				if gotErr.Error() != wantErr.Error() {
					t.Errorf("trial %d cap %d: error %q, want %q", trial, cap, gotErr, wantErr)
				}
				continue
			}
			if got.Cmax != want.Cmax || got.Mmax != want.Mmax || got.Cap != want.Cap {
				t.Errorf("trial %d cap %d: prepared (Cmax=%d,Mmax=%d,Cap=%d), fresh (Cmax=%d,Mmax=%d,Cap=%d)",
					trial, cap, got.Cmax, got.Mmax, got.Cap, want.Cmax, want.Mmax, want.Cap)
			}
			if got.Mmax > cap {
				t.Errorf("trial %d cap %d: Mmax %d exceeds budget", trial, cap, got.Mmax)
			}
			if err := got.Schedule.Validate(g.PredLists()); err != nil {
				t.Errorf("trial %d cap %d: invalid schedule: %v", trial, cap, err)
			}
		}
		// Below-LB budgets are ErrInfeasible without touching the solver.
		if lb > 0 {
			if _, err := prep.Constrained(lb-1, TieSPT); !errors.Is(err, ErrInfeasible) {
				t.Errorf("trial %d: budget below LB: %v", trial, err)
			}
		}
		// An unprepared tie-break surfaces as an error, not a panic.
		if _, err := prep.Constrained(3*lb+1, TieLPT); err == nil {
			t.Errorf("trial %d: unprepared tie-break accepted", trial)
		}
	}
}

// TestRLSPreparedConstrainedParity walks a prepared independent-task
// solver through the whole budget band and checks every outcome —
// schedule, objectives and both error sentinels — against a fresh
// RLSIndependentWithCap call per budget.
func TestRLSPreparedConstrainedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 10; trial++ {
		in := randInstance(rng, 20, 4, 60)
		prep, err := PrepareRLSIndependent(in, TieSPT)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		lb := prep.LB()
		for budget := maxMem(0, lb-2); budget <= 3*lb; budget += maxMem(1, lb/4) {
			got, gotErr := prep.Constrained(budget, TieSPT)
			if budget < lb {
				if !errors.Is(gotErr, ErrInfeasible) {
					t.Fatalf("trial %d budget %d: err = %v, want ErrInfeasible", trial, budget, gotErr)
				}
				continue
			}
			want, wantErr := RLSIndependentWithCap(in, budget, TieSPT)
			if wantErr != nil {
				var tooSmall ErrCapTooSmall
				if !errors.As(wantErr, &tooSmall) {
					t.Fatalf("trial %d budget %d: fresh err %v", trial, budget, wantErr)
				}
				if !errors.Is(gotErr, ErrNotCertified) {
					t.Fatalf("trial %d budget %d: err = %v, want ErrNotCertified", trial, budget, gotErr)
				}
				continue
			}
			if gotErr != nil {
				t.Fatalf("trial %d budget %d: prepared err %v, fresh nil", trial, budget, gotErr)
			}
			if got.Cmax != want.Cmax || got.Mmax != want.Mmax || got.SumCi != want.SumCi ||
				got.Cap != want.Cap || got.Delta != want.Delta || got.LB != want.LB {
				t.Fatalf("trial %d budget %d: prepared (%d,%d,%d) != fresh (%d,%d,%d)",
					trial, budget, got.Cmax, got.Mmax, got.SumCi, want.Cmax, want.Mmax, want.SumCi)
			}
			ga, wa := got.Schedule.Assignment(), want.Schedule.Assignment()
			for i := range ga {
				if ga[i] != wa[i] {
					t.Fatalf("trial %d budget %d: assignment diverges at task %d", trial, budget, i)
				}
			}
		}
	}
}

// TestSBOPreparedConstrainedParity reuses one prepared SBO value over
// the budget band and checks each outcome against a fresh
// ConstrainedSBO call (which prepares from scratch every time).
func TestSBOPreparedConstrainedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 6; trial++ {
		in := randInstance(rng, 18, 4, 60)
		prep, err := PrepareSBO(in, makespan.LPT{}, makespan.LPT{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		lb := bounds.MemLB(in.S(), in.M)
		for budget := maxMem(0, lb-2); budget <= 3*lb; budget += maxMem(1, lb/4) {
			got, gotErr := prep.Constrained(budget, 16)
			want, wantErr := ConstrainedSBO(in, budget, makespan.LPT{}, makespan.LPT{}, 16)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("trial %d budget %d: prepared err %v, fresh err %v", trial, budget, gotErr, wantErr)
			}
			if gotErr != nil {
				if gotErr.Error() != wantErr.Error() {
					t.Fatalf("trial %d budget %d: error text diverges: %v vs %v", trial, budget, gotErr, wantErr)
				}
				continue
			}
			if got.Cmax != want.Cmax || got.Mmax != want.Mmax ||
				got.Tried != want.Tried || got.GuaranteedDelta != want.GuaranteedDelta ||
				got.Delta != want.Delta {
				t.Fatalf("trial %d budget %d: prepared (Cmax=%d Mmax=%d tried=%d) != fresh (Cmax=%d Mmax=%d tried=%d)",
					trial, budget, got.Cmax, got.Mmax, got.Tried, want.Cmax, want.Mmax, want.Tried)
			}
		}
	}
}

// TestConstrainedPreparedSolveParity shares one ConstrainedPrepared
// across the band — concurrently, as a budget sweep would — and checks
// every Solve outcome against a fresh ConstrainedIndependent call.
func TestConstrainedPreparedSolveParity(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 6; trial++ {
		in := randInstance(rng, 18, 4, 60)
		prep, err := PrepareConstrainedIndependent(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		lb := prep.LB()
		var budgets []model.Mem
		for budget := maxMem(0, lb-2); budget <= 3*lb; budget += maxMem(1, lb/4) {
			budgets = append(budgets, budget)
		}
		type outcome struct {
			a   model.Assignment
			v   model.Value
			err error
		}
		got := make([]outcome, len(budgets))
		var wg sync.WaitGroup
		for k, budget := range budgets {
			wg.Add(1)
			go func() {
				defer wg.Done()
				a, v, err := prep.Solve(budget)
				got[k] = outcome{a: a, v: v, err: err}
			}()
		}
		wg.Wait()
		for k, budget := range budgets {
			wantA, wantV, wantErr := ConstrainedIndependent(in, budget)
			g := got[k]
			if (g.err == nil) != (wantErr == nil) {
				t.Fatalf("trial %d budget %d: prepared err %v, fresh err %v", trial, budget, g.err, wantErr)
			}
			if g.err != nil {
				if g.err.Error() != wantErr.Error() {
					t.Fatalf("trial %d budget %d: error text diverges: %v vs %v", trial, budget, g.err, wantErr)
				}
				continue
			}
			if g.v != wantV {
				t.Fatalf("trial %d budget %d: value %v != fresh %v", trial, budget, g.v, wantV)
			}
			for i := range g.a {
				if g.a[i] != wantA[i] {
					t.Fatalf("trial %d budget %d: assignment diverges at task %d", trial, budget, i)
				}
			}
		}
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"storagesched/internal/bounds"
	"storagesched/internal/dag"
	"storagesched/internal/model"
)

func randGraph(rng *rand.Rand, maxN, maxM int, edgeProb float64, maxV int64) *dag.Graph {
	n := 2 + rng.Intn(maxN)
	m := 2 + rng.Intn(maxM-1)
	p := make([]model.Time, n)
	s := make([]model.Mem, n)
	for i := range p {
		p[i] = rng.Int63n(maxV) + 1
		s[i] = rng.Int63n(maxV + 1)
	}
	g := dag.New(m, p, s)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < edgeProb {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestRLSRejectsBadInput(t *testing.T) {
	g := dag.New(2, []model.Time{1}, []model.Mem{1})
	if _, err := RLS(g, 1.5, TieByID); err == nil {
		t.Error("delta < 2 accepted")
	}
	cyc := dag.New(2, []model.Time{1, 1}, []model.Mem{0, 0})
	cyc.AddEdge(0, 1)
	cyc.AddEdge(1, 0)
	if _, err := RLS(cyc, 3, TieByID); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestRLSChainIsSequential(t *testing.T) {
	// A pure chain must run sequentially: Cmax = Σp regardless of m.
	g := dag.New(4, []model.Time{3, 1, 4, 1, 5}, []model.Mem{1, 1, 1, 1, 1})
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	res, err := RLS(g, 3, TieByID)
	if err != nil {
		t.Fatalf("RLS: %v", err)
	}
	if res.Cmax != 14 {
		t.Errorf("chain Cmax = %d, want 14", res.Cmax)
	}
	if err := res.Schedule.Validate(g.PredLists()); err != nil {
		t.Errorf("invalid schedule: %v", err)
	}
}

func TestRLSIndependentNoMemoryPressureIsListScheduling(t *testing.T) {
	// With tiny memory sizes the cap never binds and RLS behaves as
	// plain list scheduling; loads stay within the Graham bound.
	in := model.NewInstance(3, []model.Time{5, 4, 3, 3, 2, 1}, []model.Mem{1, 1, 1, 1, 1, 1})
	res, err := RLSIndependent(in, 3, TieLPT)
	if err != nil {
		t.Fatalf("RLSIndependent: %v", err)
	}
	// LPT on {5,4,3,3,2,1} with m=3: loads 6,6,6 -> Cmax 6 (optimal).
	if res.Cmax != 6 {
		t.Errorf("Cmax = %d, want 6", res.Cmax)
	}
}

func TestRLSMemoryCapIsRespected(t *testing.T) {
	// 4 tasks of memory 10 on 2 processors: LB = 20, delta = 2 ->
	// cap = 40; any split respects it. With delta close to 2 the
	// balanced split is forced.
	in := model.NewInstance(2, []model.Time{1, 1, 1, 1}, []model.Mem{10, 10, 10, 10})
	res, err := RLSIndependent(in, 2, TieByID)
	if err != nil {
		t.Fatalf("RLSIndependent: %v", err)
	}
	if res.Mmax > res.Cap {
		t.Errorf("Mmax %d exceeds cap %d", res.Mmax, res.Cap)
	}
	if res.Mmax != 20 {
		t.Errorf("Mmax = %d, want 20 (balanced)", res.Mmax)
	}
}

func TestRLSCmaxRatioFormula(t *testing.T) {
	// Corollary 3 at delta=3, m=4: 2 + 1 - 2/(4*1) = 2.5.
	if got := RLSCmaxRatio(3, 4); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("RLSCmaxRatio(3,4) = %g, want 2.5", got)
	}
	if !math.IsInf(RLSCmaxRatio(2, 4), 1) {
		t.Error("RLSCmaxRatio(2, ·) should be +Inf")
	}
	// Re-parameterised form from the end of Section 5.1:
	// delta = 2+delta' gives 2 + 1/delta' − (delta'+1)/(m·delta').
	deltaP := 1.5
	m := 6
	want := 2 + 1/deltaP - (deltaP+1)/(float64(m)*deltaP)
	if got := RLSCmaxRatio(2+deltaP, m); math.Abs(got-want) > 1e-12 {
		t.Errorf("reparameterised ratio: got %g, want %g", got, want)
	}
}

func TestRLSSumCiRatioFormula(t *testing.T) {
	if got := RLSSumCiRatio(3); got != 3 {
		t.Errorf("RLSSumCiRatio(3) = %g, want 3", got)
	}
	if got := RLSSumCiRatio(4); got != 2.5 {
		t.Errorf("RLSSumCiRatio(4) = %g, want 2.5", got)
	}
	if !math.IsInf(RLSSumCiRatio(2), 1) {
		t.Error("RLSSumCiRatio(2) should be +Inf")
	}
}

func TestTieBreakString(t *testing.T) {
	for tb, want := range map[TieBreak]string{
		TieByID: "ID", TieSPT: "SPT", TieLPT: "LPT", TieBottomLevel: "BLevel",
	} {
		if tb.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(tb), tb.String(), want)
		}
	}
}

// Corollary 2: Mmax ≤ ∆·LB, plus schedule feasibility, for every tie
// break, on random DAGs.
func TestPropertyRLSMemoryGuarantee(t *testing.T) {
	deltas := []float64{2, 2.5, 3, 4, 8}
	ties := []TieBreak{TieByID, TieSPT, TieLPT, TieBottomLevel}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randGraph(rng, 30, 6, 0.15, 50)
		delta := deltas[rng.Intn(len(deltas))]
		tie := ties[rng.Intn(len(ties))]
		res, err := RLS(g, delta, tie)
		if err != nil {
			return false // must never fail for delta >= 2
		}
		if res.Schedule.Validate(g.PredLists()) != nil {
			return false
		}
		lb := bounds.MemLB(g.S, g.M)
		return float64(res.Mmax) <= delta*float64(lb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Lemma 4: the number of marked processors never exceeds ⌊m/(∆−1)⌋.
func TestPropertyRLSMarkedProcessors(t *testing.T) {
	deltas := []float64{2.5, 3, 4, 6}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randGraph(rng, 25, 8, 0.1, 40)
		delta := deltas[rng.Intn(len(deltas))]
		res, err := RLS(g, delta, TieByID)
		if err != nil {
			return false
		}
		return res.MarkedCount() <= int(float64(g.M)/(delta-1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Lemma 5, in its proof form: Cmax ≤ (1+1/(∆−2))·Σp/m +
// max(0, 1−(∆−1)/(m(∆−2)))·CP, testable without knowing C*max.
func TestPropertyRLSMakespanGuarantee(t *testing.T) {
	deltas := []float64{2.5, 3, 4, 8}
	ties := []TieBreak{TieByID, TieSPT, TieLPT, TieBottomLevel}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randGraph(rng, 30, 6, 0.15, 50)
		delta := deltas[rng.Intn(len(deltas))]
		tie := ties[rng.Intn(len(ties))]
		res, err := RLS(g, delta, tie)
		if err != nil {
			return false
		}
		cp, err := g.CriticalPath()
		if err != nil {
			return false
		}
		work := float64(g.TotalWork()) / float64(g.M)
		coefCP := 1 - (delta-1)/(float64(g.M)*(delta-2))
		if coefCP < 0 {
			coefCP = 0
		}
		bound := (1+1/(delta-2))*work + coefCP*float64(cp)
		return float64(res.Cmax) <= bound+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The aggregate Corollary 3 form: Cmax ≤ ratio · max(Σp/m, CP), since
// both Σp/m and CP lower-bound C*max.
func TestPropertyRLSCorollary3(t *testing.T) {
	deltas := []float64{2.5, 3, 4, 8}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randGraph(rng, 30, 6, 0.2, 50)
		delta := deltas[rng.Intn(len(deltas))]
		res, err := RLS(g, delta, TieByID)
		if err != nil {
			return false
		}
		cp, _ := g.CriticalPath()
		lb := float64(g.TotalWork()) / float64(g.M)
		if float64(cp) > lb {
			lb = float64(cp)
		}
		return float64(res.Cmax) <= RLSCmaxRatio(delta, g.M)*lb+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Lemma 6, tested directly on SPT schedules: ΣCi on q processors is
// at most (m/q + 1)·ΣCi on m ≥ q processors.
func TestPropertyLemma6(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		p := make([]model.Time, n)
		for i := range p {
			p[i] = rng.Int63n(100) + 1
		}
		m := 2 + rng.Intn(8)
		q := 1 + rng.Intn(m)
		full := bounds.SumCiSPT(p, m)
		restricted := bounds.SumCiSPT(p, q)
		bound := (float64(m)/float64(q) + 1) * float64(full)
		return float64(restricted) <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Corollary 4: RLS-SPT on independent tasks is simultaneously
// (2+1/(∆−2)−(∆−1)/(m(∆−2)), ∆, 2+1/(∆−2))-approximate. ΣCi is
// compared against the true optimum (SPT on all m processors).
func TestPropertyRLSTriObjective(t *testing.T) {
	deltas := []float64{2.5, 3, 4, 8}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng, 40, 8, 100)
		if in.M < 2 {
			in.M = 2
		}
		delta := deltas[rng.Intn(len(deltas))]
		res, err := RLSIndependent(in, delta, TieSPT)
		if err != nil {
			return false
		}
		if res.Schedule.Validate(nil) != nil {
			return false
		}
		lbRec := bounds.ForInstance(in)
		// Mmax: Corollary 2.
		if float64(res.Mmax) > delta*float64(lbRec.MmaxLB)+1e-9 {
			return false
		}
		// Cmax: Corollary 3 against max(Σp/m, pmax).
		cLB := float64(in.TotalWork()) / float64(in.M)
		if float64(in.MaxP()) > cLB {
			cLB = float64(in.MaxP())
		}
		if float64(res.Cmax) > RLSCmaxRatio(delta, in.M)*cLB+1e-6 {
			return false
		}
		// ΣCi: Corollary 4 against the SPT optimum.
		opt := bounds.SumCiSPT(in.P(), in.M)
		return float64(res.SumCi) <= RLSSumCiRatio(delta)*float64(opt)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Algorithm 2 on an edgeless DAG and the strict-order independent
// variant agree on guarantees (both are valid instantiations of the
// paper's "arbitrary total ordering").
func TestPropertyRLSVariantsAgreeOnGuarantees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng, 25, 5, 60)
		if in.M < 2 {
			in.M = 2
		}
		delta := 3.0
		g := dag.FromInstance(in)
		r1, err1 := RLS(g, delta, TieSPT)
		r2, err2 := RLSIndependent(in, delta, TieSPT)
		if err1 != nil || err2 != nil {
			return false
		}
		lb := bounds.MemLB(in.S(), in.M)
		return float64(r1.Mmax) <= delta*float64(lb)+1e-9 &&
			float64(r2.Mmax) <= delta*float64(lb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRLSWithCapExplicit(t *testing.T) {
	in := model.NewInstance(2, []model.Time{1, 1, 1, 1}, []model.Mem{10, 10, 10, 10})
	// Cap 20 = LB: perfectly balanced split required; the greedy
	// achieves it here.
	res, err := RLSIndependentWithCap(in, 20, TieByID)
	if err != nil {
		t.Fatalf("RLSIndependentWithCap: %v", err)
	}
	if res.Mmax != 20 {
		t.Errorf("Mmax = %d, want 20", res.Mmax)
	}
	// Cap 19 < LB: some task cannot be placed once both processors
	// hold one task... actually cap 19 < 20=LB means after one task
	// per processor (10 each), the next needs 20 > 19: stuck.
	if _, err := RLSIndependentWithCap(in, 19, TieByID); err == nil {
		t.Error("cap below LB accepted")
	}
}

func TestRLSDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randGraph(rng, 30, 5, 0.2, 50)
	r1, err1 := RLS(g, 3, TieBottomLevel)
	r2, err2 := RLS(g, 3, TieBottomLevel)
	if err1 != nil || err2 != nil {
		t.Fatalf("RLS errors: %v %v", err1, err2)
	}
	for i := range r1.Schedule.Proc {
		if r1.Schedule.Proc[i] != r2.Schedule.Proc[i] || r1.Schedule.Start[i] != r2.Schedule.Start[i] {
			t.Fatalf("non-deterministic schedule at task %d", i)
		}
	}
}

// TestRLSNonFiniteDeltaErrors is the regression test for the nil
// *big.Rat panic: big.Rat.SetFloat64 returns nil for non-finite input,
// so δ = +Inf used to crash memCapFloor with a nil dereference, and
// δ = NaN slipped past the `delta < 2` guard into the same path. Every
// RLS entry point (and the exported MemCap) must return an error
// instead.
func TestRLSNonFiniteDeltaErrors(t *testing.T) {
	in := model.NewInstance(2, []model.Time{3, 2, 4}, []model.Mem{1, 2, 3})
	g := dag.FromInstance(in)
	prepInd, err := PrepareRLSIndependent(in, TieSPT)
	if err != nil {
		t.Fatal(err)
	}
	prepG, err := PrepareRLS(g, TieSPT)
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		if _, err := RLS(g, delta, TieSPT); err == nil {
			t.Errorf("RLS(delta=%g): no error", delta)
		}
		if _, err := RLSIndependent(in, delta, TieSPT); err == nil {
			t.Errorf("RLSIndependent(delta=%g): no error", delta)
		}
		if _, err := prepInd.Run(delta, TieSPT); err == nil {
			t.Errorf("RLSPrepared.Run(delta=%g): no error", delta)
		}
		if _, err := prepG.Run(delta, TieSPT); err == nil {
			t.Errorf("RLSGraphPrepared.Run(delta=%g): no error", delta)
		}
		if _, err := MemCap(delta, 10); err == nil {
			t.Errorf("MemCap(delta=%g): no error", delta)
		}
	}
	// Finite deltas still work through the exported cap helper.
	if cap, err := MemCap(2.5, 10); err != nil || cap != 25 {
		t.Errorf("MemCap(2.5, 10) = (%d, %v), want (25, nil)", cap, err)
	}
}

// TestPrepareRLSMatchesUnprepared checks the graph-prepared path is
// bit-identical to direct RLS / RLSWithCap calls for every tie-break
// across a δ-grid — the contract the sweep engine relies on.
func TestPrepareRLSMatchesUnprepared(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := randGraph(rng, 25, 5, 0.25, 40)
		prep, err := PrepareRLS(g)
		if err != nil {
			t.Fatalf("trial %d: PrepareRLS: %v", trial, err)
		}
		if want := bounds.MemLB(g.S, g.M); prep.LB() != want {
			t.Fatalf("trial %d: LB = %d, want %d", trial, prep.LB(), want)
		}
		for _, tie := range []TieBreak{TieByID, TieSPT, TieLPT, TieBottomLevel} {
			for _, delta := range []float64{2, 2.5, 3, 4.75, 8} {
				got, err := prep.Run(delta, tie)
				if err != nil {
					t.Fatalf("trial %d: prepared Run(%g, %s): %v", trial, delta, tie, err)
				}
				want, err := RLS(g, delta, tie)
				if err != nil {
					t.Fatalf("trial %d: RLS(%g, %s): %v", trial, delta, tie, err)
				}
				if got.Cmax != want.Cmax || got.Mmax != want.Mmax ||
					got.LB != want.LB || got.Cap != want.Cap || got.Delta != want.Delta {
					t.Fatalf("trial %d %s delta=%g: prepared (%d,%d,LB=%d,cap=%d), direct (%d,%d,LB=%d,cap=%d)",
						trial, tie, delta, got.Cmax, got.Mmax, got.LB, got.Cap,
						want.Cmax, want.Mmax, want.LB, want.Cap)
				}
				for i := range got.Schedule.Proc {
					if got.Schedule.Proc[i] != want.Schedule.Proc[i] ||
						got.Schedule.Start[i] != want.Schedule.Start[i] {
						t.Fatalf("trial %d %s delta=%g: schedules differ at task %d", trial, tie, delta, i)
					}
				}
			}
			cap := 2 * bounds.MemLB(g.S, g.M)
			got, err := prep.RunWithCap(cap, tie)
			if err != nil {
				t.Fatalf("trial %d: prepared RunWithCap(%d, %s): %v", trial, cap, tie, err)
			}
			want, err := RLSWithCap(g, cap, tie)
			if err != nil {
				t.Fatalf("trial %d: RLSWithCap(%d, %s): %v", trial, cap, tie, err)
			}
			if got.Cmax != want.Cmax || got.Mmax != want.Mmax || got.Delta != want.Delta {
				t.Fatalf("trial %d %s cap=%d: prepared (%d,%d), direct (%d,%d)",
					trial, tie, cap, got.Cmax, got.Mmax, want.Cmax, want.Mmax)
			}
		}
	}
}

// TestPrepareRLSErrors covers the prepared constructor's failure modes.
func TestPrepareRLSErrors(t *testing.T) {
	cyc := dag.New(2, []model.Time{1, 1}, []model.Mem{0, 0})
	cyc.AddEdge(0, 1)
	cyc.AddEdge(1, 0)
	if _, err := PrepareRLS(cyc); err == nil {
		t.Error("cyclic graph accepted")
	}
	if _, err := PrepareRLS(dag.New(2, []model.Time{1}, []model.Mem{1}), TieBreak(99)); err == nil {
		t.Error("unknown tie-break accepted")
	}
	g := dag.New(2, []model.Time{1, 2}, []model.Mem{1, 1})
	prep, err := PrepareRLS(g, TieSPT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Run(3, TieLPT); err == nil {
		t.Error("unprepared tie-break accepted")
	}
	if _, err := prep.RunWithCap(100, TieLPT); err == nil {
		t.Error("unprepared tie-break accepted by RunWithCap")
	}
}

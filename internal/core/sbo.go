// Package core implements the two algorithm families of Saule, Dutot
// and Mounié, "Scheduling with Storage Constraints" (IPDPS 2008):
//
//   - SBO∆ — the Symmetric Bi-Objective algorithm for independent tasks
//     (Algorithm 1, Section 3), a ((1+∆)ρ1, (1+1/∆)ρ2)-approximation of
//     (Cmax, Mmax) built from any two single-objective sub-algorithms;
//   - RLS∆ — Restricted List Scheduling for precedence-constrained
//     tasks (Algorithm 2, Section 5), a
//     (2 + 1/(∆−2) − (∆−1)/(m(∆−2)), ∆)-approximation for ∆ > 2, and
//     its tri-objective SPT variant (Corollary 4);
//   - the Section 7 constrained solvers that recover the original
//     "minimize Cmax subject to Mmax ≤ M" problem from the bi-objective
//     machinery.
package core

import (
	"fmt"

	"storagesched/internal/exact"
	"storagesched/internal/makespan"
	"storagesched/internal/model"
)

// SBOResult is the outcome of one SBO∆ run, retaining everything the
// analysis of Properties 1 and 2 refers to.
type SBOResult struct {
	Delta float64

	// Assignment is the combined schedule π∆.
	Assignment model.Assignment

	// FromMemSchedule[i] is true when task i was taken from π2, the
	// memory-optimized schedule (the set S2 in the proof of
	// Property 1), false when taken from π1 (the set S1).
	FromMemSchedule []bool

	// C is Cmax(π1), the guaranteed makespan of the time
	// sub-schedule; M is Mmax(π2), the guaranteed memory of the
	// memory sub-schedule. The proven bounds are relative to these:
	// Cmax(π∆) ≤ (1+∆)·C and Mmax(π∆) ≤ (1+1/∆)·M.
	C model.Time
	M model.Mem

	// Cmax and Mmax are the achieved objective values of π∆.
	Cmax model.Time
	Mmax model.Mem
}

// CmaxBound returns the Property 1 guarantee (1+∆)·C as a float.
func (r *SBOResult) CmaxBound() float64 { return (1 + r.Delta) * float64(r.C) }

// MmaxBound returns the Property 2 guarantee (1+1/∆)·M as a float.
func (r *SBOResult) MmaxBound() float64 { return (1 + 1/r.Delta) * float64(r.M) }

// SBO runs Algorithm 1 on an independent-task instance. algC is the
// ρ1-approximation used for the makespan schedule π1, algM the
// ρ2-approximation used (on the s vector) for the memory schedule π2.
// Delta must be > 0.
//
// The threshold test "p_i/C < ∆·s_i/M" is evaluated exactly with
// rational arithmetic so that huge integer instances (the ε-scaled
// hardness instances use values up to 2^40) never suffer float
// rounding.
func SBO(in *model.Instance, delta float64, algC, algM makespan.Algorithm) (*SBOResult, error) {
	prep, err := PrepareSBO(in, algC, algM)
	if err != nil {
		return nil, err
	}
	return prep.Run(delta)
}

// SBOPrepared holds the δ-independent half of Algorithm 1: the two
// single-objective sub-schedules π1 and π2 and their objective values C
// and M. Only the merge (the threshold test per task) depends on ∆, so
// a δ-sweep prepares once and runs the merge per grid point — the
// sub-algorithm cost (the dominant cost with LPT, and overwhelmingly so
// with the PTAS) is paid once per instance instead of once per run.
// The prepared value is immutable after PrepareSBO and safe for
// concurrent Run calls.
type SBOPrepared struct {
	in       *model.Instance
	p        []model.Time
	s        []model.Mem
	pi1, pi2 model.Assignment
	c        model.Time
	m        model.Mem
}

// PrepareSBO validates the instance and runs the two sub-algorithms.
func PrepareSBO(in *model.Instance, algC, algM makespan.Algorithm) (*SBOPrepared, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	p := in.P()
	s := in.S()
	pi1 := algC.Assign(p, in.M)
	pi2 := algM.Assign(s, in.M)
	return &SBOPrepared{
		in:  in,
		p:   p,
		s:   s,
		pi1: pi1,
		pi2: pi2,
		c:   in.Cmax(pi1),
		m:   in.Mmax(pi2),
	}, nil
}

// C returns Cmax(π1), the makespan of the time sub-schedule.
func (prep *SBOPrepared) C() model.Time { return prep.c }

// M returns Mmax(π2), the memory of the memory sub-schedule.
func (prep *SBOPrepared) M() model.Mem { return prep.m }

// Run performs the ∆-dependent merge of Algorithm 1.
func (prep *SBOPrepared) Run(delta float64) (*SBOResult, error) {
	return prep.RunScratch(delta, nil)
}

// RunScratch is Run with caller-owned scratch buffers for the
// objective evaluation: the sweep engine's workers hold one Scratch
// each, so a warm sweep allocates only the result itself. A nil scr
// borrows from the internal pool.
func (prep *SBOPrepared) RunScratch(delta float64, scr *Scratch) (*SBOResult, error) {
	if delta <= 0 {
		return nil, fmt.Errorf("core: SBO delta = %g, need delta > 0", delta)
	}
	// co holds ∆'s exact mantissa/exponent form; every finite float64
	// is a rational, and non-finite ∆ (NaN passes the sign check) has
	// no rational form at all.
	co, err := exact.NewCoeff(delta)
	if err != nil {
		return nil, fmt.Errorf("core: SBO delta = %g is not finite", delta)
	}
	in := prep.in
	res := &SBOResult{
		Delta:           delta,
		Assignment:      make(model.Assignment, in.N()),
		FromMemSchedule: make([]bool, in.N()),
		C:               prep.c,
		M:               prep.m,
	}

	for i := range in.Tasks {
		useMem := false
		if prep.m == 0 {
			// Perfect memory schedule exists (all s_i = 0); memory
			// needs no help, keep every task on the time schedule.
			useMem = false
		} else {
			// p_i/C < ∆·s_i/M  ⇔  p_i·M < ∆·s_i·C (C, M > 0),
			// evaluated on the exact integer kernel so huge instances
			// (ε-scaled hardness values reach 2^40) never suffer float
			// rounding — and the per-task big.Rat allocations are gone.
			useMem = co.MulCmp(prep.p[i], int64(prep.m), int64(prep.s[i]), prep.c) < 0
		}
		if useMem {
			res.Assignment[i] = prep.pi2[i]
		} else {
			res.Assignment[i] = prep.pi1[i]
		}
		res.FromMemSchedule[i] = useMem
	}
	res.Cmax, res.Mmax = evalAssignment(in, res.Assignment, scr)
	return res, nil
}

// evalAssignment computes (Cmax, Mmax) of an assignment in one pass
// over the tasks, against scratch-backed per-processor accumulators —
// equivalent to in.Cmax(a) and in.Mmax(a) without their allocations.
func evalAssignment(in *model.Instance, a model.Assignment, scr *Scratch) (model.Time, model.Mem) {
	scr, pooled := borrowScratch(scr)
	defer releaseScratch(scr, pooled)
	loads := scr.loads(in.M)
	mems := scr.mems(in.M)
	for i, t := range in.Tasks {
		loads[a[i]] += t.P
		mems[a[i]] += t.S
	}
	return maxTimeOf(loads), maxMemOf(mems)
}

// SBOWithLS runs SBO∆ with Graham list scheduling on both objectives —
// the cheapest configuration, ratio ((1+∆)(2−1/m), (1+1/∆)(2−1/m)).
func SBOWithLS(in *model.Instance, delta float64) (*SBOResult, error) {
	return SBO(in, delta, makespan.ListScheduling{}, makespan.ListScheduling{})
}

// SBOWithLPT runs SBO∆ with LPT on both objectives, ratio
// ((1+∆)(4/3−1/3m), (1+1/∆)(4/3−1/3m)).
func SBOWithLPT(in *model.Instance, delta float64) (*SBOResult, error) {
	return SBO(in, delta, makespan.LPT{}, makespan.LPT{})
}

// SBOWithPTAS runs SBO∆ with the Hochbaum–Shmoys PTAS on both
// objectives — the Corollary 1 configuration with ratio
// ((1+∆)(1+ε), (1+1/∆)(1+ε)) ≤ (1+∆+ε', 1+1/∆+ε'). The PTAS dynamic
// program is exponential in 1/ε; see makespan.PTAS.
func SBOWithPTAS(in *model.Instance, delta, eps float64) (*SBOResult, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("core: SBO PTAS eps = %g, need 0 < eps < 1", eps)
	}
	alg := makespan.PTAS{Epsilon: eps}
	return SBO(in, delta, alg, alg)
}

// SBORatio returns the proven approximation pair of SBO∆ given the
// sub-algorithm ratios: ((1+∆)·ρ1, (1+1/∆)·ρ2).
func SBORatio(delta, rho1, rho2 float64) (cmaxRatio, mmaxRatio float64) {
	return (1 + delta) * rho1, (1 + 1/delta) * rho2
}

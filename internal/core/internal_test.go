package core

// White-box tests of the numeric internals the guarantees depend on.

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"storagesched/internal/dag"
	"storagesched/internal/exact"
	"storagesched/internal/makespan"
	"storagesched/internal/model"
)

func TestMemCapFloorExactness(t *testing.T) {
	cases := []struct {
		delta float64
		lb    model.Mem
		want  model.Mem
	}{
		{2.0, 10, 20},
		{2.5, 10, 25},
		{3.0, 1, 3},
		{2.0, 0, 0},
		// Huge LB where float64 multiplication would round: 2^40+1
		// times 2.5 = 2^41 + 2^40/2^40... exact: 2.5*(2^40+1) =
		// 2748779069442.5 -> floor 2748779069442.
		{2.5, (1 << 40) + 1, 2748779069442},
		// delta with a non-terminating binary expansion close to
		// 2.1: float64(2.1) is slightly more than 21/10; the floor
		// must follow the exact float value, not the decimal.
		{2.1, 10, 21},
	}
	for _, tc := range cases {
		got, err := MemCap(tc.delta, tc.lb)
		if err != nil {
			t.Errorf("MemCap(%g, %d): %v", tc.delta, tc.lb, err)
			continue
		}
		if got != tc.want {
			t.Errorf("MemCap(%g, %d) = %d, want %d", tc.delta, tc.lb, got, tc.want)
		}
	}
}

func TestMemCapRangeAndEdges(t *testing.T) {
	// The old float conversion silently truncated out-of-range caps to
	// math.MaxInt64; MemCap must refuse them instead.
	t.Run("overflow", func(t *testing.T) {
		for _, tc := range []struct {
			delta float64
			lb    model.Mem
		}{
			{2.0, math.MaxInt64},
			{2.0, math.MaxInt64/2 + 1},
			{1e300, 1 << 40},
			{math.MaxFloat64, 2},
		} {
			if got, err := MemCap(tc.delta, tc.lb); !errors.Is(err, exact.ErrRange) {
				t.Errorf("MemCap(%g, %d) = (%d, %v), want ErrRange", tc.delta, tc.lb, got, err)
			}
		}
	})
	t.Run("near-maxint64", func(t *testing.T) {
		// ∆ = 1 on the largest LB is exactly representable: the floor
		// is MaxInt64 itself and must round-trip without error.
		got, err := MemCap(1.0, math.MaxInt64)
		if err != nil || got != math.MaxInt64 {
			t.Errorf("MemCap(1, MaxInt64) = (%d, %v), want (MaxInt64, nil)", got, err)
		}
		// Just inside: 0.5·MaxInt64 floors to 2^62 − 1.
		got, err = MemCap(0.5, math.MaxInt64)
		if err != nil || got != 1<<62-1 {
			t.Errorf("MemCap(0.5, MaxInt64) = (%d, %v), want (2^62-1, nil)", got, err)
		}
	})
	t.Run("denormal-delta", func(t *testing.T) {
		// 5e-324 · anything representable floors to 0 — exactly.
		for _, lb := range []model.Mem{0, 1, 1 << 45, math.MaxInt64} {
			if got, err := MemCap(5e-324, lb); err != nil || got != 0 {
				t.Errorf("MemCap(5e-324, %d) = (%d, %v), want (0, nil)", lb, got, err)
			}
		}
	})
	t.Run("mantissa-boundary", func(t *testing.T) {
		two53 := math.Ldexp(1, 53)
		cases := []struct {
			delta float64
			lb    model.Mem
			want  model.Mem
		}{
			{two53, 1, 1 << 53},
			{two53 + 2, 1, 1<<53 + 2},
			{math.Nextafter(two53, 0), 1, 1<<53 - 1},
			{math.Nextafter(two53, 0), 2, 1<<54 - 2},
		}
		for _, tc := range cases {
			got, err := MemCap(tc.delta, tc.lb)
			if err != nil || got != tc.want {
				t.Errorf("MemCap(%g, %d) = (%d, %v), want (%d, nil)", tc.delta, tc.lb, got, err, tc.want)
			}
		}
	})
}

func TestPropertyMemCapFloorBracket(t *testing.T) {
	// floor(delta*lb) is within (delta*lb - 1, delta*lb].
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		delta := 2 + rng.Float64()*8
		lb := model.Mem(rng.Int63n(1 << 45))
		capM, err := MemCap(delta, lb)
		if err != nil {
			return false
		}
		got := float64(capM)
		exact := delta * float64(lb)
		// Allow float slack commensurate with the magnitude.
		slack := math.Max(1, exact*1e-12)
		return got <= exact+slack && got > exact-1-slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestErrCapTooSmallMessage(t *testing.T) {
	err := ErrCapTooSmall{Task: 7, Cap: 42}
	if err.Error() == "" {
		t.Error("empty error message")
	}
	var target ErrCapTooSmall
	if !errors.As(error(err), &target) || target.Task != 7 {
		t.Error("errors.As failed on ErrCapTooSmall")
	}
}

func TestTieRankOrders(t *testing.T) {
	in := model.NewInstance(2, []model.Time{5, 1, 3}, []model.Mem{0, 0, 0})
	g := dag.FromInstance(in)
	spt, err := tieRank(g, TieSPT)
	if err != nil {
		t.Fatal(err)
	}
	// Task 1 (p=1) first, then 2 (p=3), then 0 (p=5).
	if spt[1] != 0 || spt[2] != 1 || spt[0] != 2 {
		t.Errorf("SPT ranks = %v", spt)
	}
	lpt, _ := tieRank(g, TieLPT)
	if lpt[0] != 0 || lpt[2] != 1 || lpt[1] != 2 {
		t.Errorf("LPT ranks = %v", lpt)
	}
	id, _ := tieRank(g, TieByID)
	for i, r := range id {
		if r != i {
			t.Errorf("ID rank[%d] = %d", i, r)
		}
	}
	if _, err := tieRank(g, TieBreak(99)); err == nil {
		t.Error("unknown tie-break accepted")
	}
}

func TestConstrainedSBOAllPi2Fallback(t *testing.T) {
	// Budget exactly Mmax(pi2) with an instance where every grid
	// delta still measures above the budget is hard to construct;
	// instead verify the explicit fallback: when only the forced
	// all-pi2 result is feasible it is returned and marked.
	in := model.NewInstance(2,
		[]model.Time{10, 10, 1, 1},
		[]model.Mem{1, 1, 10, 10})
	alg := makespan.LPT{}
	pi2 := alg.Assign(in.S(), in.M)
	budget := in.Mmax(pi2)
	res, err := ConstrainedSBO(in, budget, alg, alg, 8)
	if err != nil {
		t.Fatalf("ConstrainedSBO: %v", err)
	}
	if res.Mmax > budget {
		t.Errorf("Mmax %d > budget %d", res.Mmax, budget)
	}
	if res.GuaranteedDelta < 0 {
		t.Errorf("GuaranteedDelta = %g", res.GuaranteedDelta)
	}
}

func TestRLSZeroMemoryTasksUnconstrained(t *testing.T) {
	// All-zero memory: LB = 0, cap = 0; memsize+0 <= 0 always holds,
	// so RLS reduces to plain list scheduling and must never fail.
	in := model.NewInstance(3, []model.Time{4, 3, 2, 1}, []model.Mem{0, 0, 0, 0})
	res, err := RLSIndependent(in, 2, TieLPT)
	if err != nil {
		t.Fatalf("RLSIndependent: %v", err)
	}
	if res.Mmax != 0 || res.LB != 0 {
		t.Errorf("Mmax=%d LB=%d, want 0/0", res.Mmax, res.LB)
	}
	// LPT of {4,3,2,1} on 3 machines: loads 4, 3, 3 -> Cmax 4.
	if res.Cmax != 4 {
		t.Errorf("Cmax = %d, want 4", res.Cmax)
	}
}

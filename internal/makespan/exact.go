package makespan

import (
	"fmt"
	"math/bits"
)

// ExactDP computes the optimal makespan by binary-searching the
// capacity and deciding feasibility with the classic bitmask
// bin-packing dynamic program (state: subset of items; value: fewest
// bins, then smallest load in the open bin). Exponential in n — use
// for n ≤ ~20. The paper needs exact optima only to *measure* ratios
// (C*max, M*max in Section 4 instances and Corollary 1 checks), never
// inside an algorithm.
type ExactDP struct{}

// Name implements Algorithm.
func (ExactDP) Name() string { return "ExactDP" }

// Ratio implements Algorithm: exact.
func (ExactDP) Ratio(m int) float64 { return 1 }

// Assign implements Algorithm.
func (e ExactDP) Assign(sizes []Size, m int) Assignment {
	_, a := e.Solve(sizes, m)
	return a
}

// Solve returns the optimal makespan and one optimal assignment.
func (ExactDP) Solve(sizes []Size, m int) (Size, Assignment) {
	validate(sizes, m)
	n := len(sizes)
	if n > 24 {
		panic(fmt.Sprintf("makespan: ExactDP limited to n <= 24, got %d", n))
	}
	if n == 0 {
		return 0, Assignment{}
	}
	lo := LowerBound(sizes, m)
	hi := lo * 2
	if hi < lo {
		hi = lo
	}
	// The Graham bound guarantees a schedule of value < 2·lo exists,
	// so feasible(hi) holds; keep the invariant explicit anyway.
	for !feasibleDP(sizes, m, hi) {
		hi *= 2
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if feasibleDP(sizes, m, mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	a := reconstructDP(sizes, m, hi)
	return hi, a
}

// feasibleDP reports whether sizes pack into m bins of capacity cap.
func feasibleDP(sizes []Size, m int, cap Size) bool {
	bins, _ := packDP(sizes, cap)
	return bins != nil && int(bins[len(bins)-1]) <= m
}

// packDP runs the subset DP. It returns per-mask minimal bin counts
// and last-bin loads; nil if some single item exceeds cap.
func packDP(sizes []Size, cap Size) (bins []int32, last []Size) {
	n := len(sizes)
	for _, x := range sizes {
		if x > cap {
			return nil, nil
		}
	}
	total := 1 << n
	bins = make([]int32, total)
	last = make([]Size, total)
	for mask := 1; mask < total; mask++ {
		bins[mask] = int32(1 << 30)
		last[mask] = 0
	}
	bins[0] = 0
	last[0] = cap // full: the first item always opens a bin
	for mask := 0; mask < total; mask++ {
		if bins[mask] == int32(1<<30) {
			continue
		}
		free := ^mask & (total - 1)
		for f := free; f != 0; f &= f - 1 {
			i := bits.TrailingZeros(uint(f))
			next := mask | 1<<i
			var nb int32
			var nl Size
			if last[mask]+sizes[i] <= cap {
				nb, nl = bins[mask], last[mask]+sizes[i]
			} else {
				nb, nl = bins[mask]+1, sizes[i]
			}
			if nb < bins[next] || (nb == bins[next] && nl < last[next]) {
				bins[next], last[next] = nb, nl
			}
		}
	}
	return bins, last
}

// reconstructDP rebuilds an assignment achieving makespan ≤ cap by
// re-running the DP and walking predecessors.
func reconstructDP(sizes []Size, m int, cap Size) Assignment {
	n := len(sizes)
	bins, last := packDP(sizes, cap)
	if bins == nil {
		return nil
	}
	a := make(Assignment, n)
	mask := (1 << n) - 1
	for mask != 0 {
		found := false
		for i := 0; i < n && !found; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			prev := mask &^ (1 << i)
			if bins[prev] == int32(1<<30) {
				continue
			}
			var nb int32
			var nl Size
			if last[prev]+sizes[i] <= cap {
				nb, nl = bins[prev], last[prev]+sizes[i]
			} else {
				nb, nl = bins[prev]+1, sizes[i]
			}
			if nb == bins[mask] && nl == last[mask] {
				a[i] = int(bins[mask]) - 1
				mask = prev
				found = true
			}
		}
		if !found {
			// Cannot happen if the DP tables are consistent.
			panic("makespan: DP reconstruction failed")
		}
	}
	return a
}

// BranchAndBound is a depth-first exact solver with the standard
// prunings (descending item order, identical-load symmetry breaking,
// work-average and current-max bounds). Practical to n ≈ 30 and often
// far faster than ExactDP, but worst-case exponential.
type BranchAndBound struct {
	// MaxNodes caps the search size; 0 means unlimited. When the cap
	// is hit the incumbent (always feasible, typically LPT-improved)
	// is returned, so the result degrades gracefully to a heuristic.
	MaxNodes int64
}

// Name implements Algorithm.
func (BranchAndBound) Name() string { return "BnB" }

// Ratio implements Algorithm: exact when the node budget suffices.
func (BranchAndBound) Ratio(m int) float64 { return 1 }

// Assign implements Algorithm.
func (b BranchAndBound) Assign(sizes []Size, m int) Assignment {
	_, a := b.Solve(sizes, m)
	return a
}

// Solve returns the optimal makespan and an optimal assignment (or the
// best found within MaxNodes).
func (b BranchAndBound) Solve(sizes []Size, m int) (Size, Assignment) {
	validate(sizes, m)
	n := len(sizes)
	if n == 0 {
		return 0, Assignment{}
	}
	order := descendingOrder(sizes)
	lb := LowerBound(sizes, m)

	// Incumbent: LPT.
	best := LPT{}.Assign(sizes, m)
	bestVal := Cmax(sizes, m, best)
	if bestVal == lb {
		return bestVal, best
	}

	suffix := make([]Size, n+1) // suffix[k] = Σ sizes of order[k:]
	for k := n - 1; k >= 0; k-- {
		suffix[k] = suffix[k+1] + sizes[order[k]]
	}

	cur := make(Assignment, n)
	loads := make([]Size, m)
	var nodes int64

	var rec func(k int, curMax Size)
	rec = func(k int, curMax Size) {
		if bestVal == lb {
			return
		}
		if b.MaxNodes > 0 && nodes > b.MaxNodes {
			return
		}
		nodes++
		if k == n {
			if curMax < bestVal {
				bestVal = curMax
				copy(best, cur)
			}
			return
		}
		// Bound: even spreading the remaining work cannot beat this.
		var totalLoad Size
		for _, l := range loads {
			totalLoad += l
		}
		avg := (totalLoad + suffix[k] + Size(m) - 1) / Size(m)
		bound := curMax
		if avg > bound {
			bound = avg
		}
		if bound >= bestVal {
			return
		}
		i := order[k]
		seen := make(map[Size]bool, m)
		for q := 0; q < m; q++ {
			if seen[loads[q]] {
				continue // symmetric to an already-tried machine
			}
			seen[loads[q]] = true
			if loads[q]+sizes[i] >= bestVal {
				continue
			}
			cur[i] = q
			loads[q] += sizes[i]
			newMax := curMax
			if loads[q] > newMax {
				newMax = loads[q]
			}
			rec(k+1, newMax)
			loads[q] -= sizes[i]
		}
	}
	rec(0, 0)
	return bestVal, best
}

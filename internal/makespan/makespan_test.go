package makespan

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSizes(rng *rand.Rand, maxN int, maxV int64) []Size {
	n := 1 + rng.Intn(maxN)
	xs := make([]Size, n)
	for i := range xs {
		xs[i] = Size(rng.Int63n(maxV)) + 1
	}
	return xs
}

func checkValidAssignment(t *testing.T, name string, sizes []Size, m int, a Assignment) {
	t.Helper()
	if len(a) != len(sizes) {
		t.Fatalf("%s: assignment length %d, want %d", name, len(a), len(sizes))
	}
	for i, q := range a {
		if q < 0 || q >= m {
			t.Fatalf("%s: task %d on processor %d, want [0,%d)", name, i, q, m)
		}
	}
}

func TestLowerBound(t *testing.T) {
	if got := LowerBound([]Size{10, 1, 1}, 4); got != 10 {
		t.Errorf("LowerBound = %d, want 10", got)
	}
	if got := LowerBound([]Size{3, 3, 1}, 2); got != 4 {
		t.Errorf("LowerBound = %d, want 4", got)
	}
}

func TestListSchedulingSmall(t *testing.T) {
	// Sizes 3,3,2,2,2 on 2 machines in order: loads 3/3, then 5/5/7?
	// LS: t0->q0(3), t1->q1(3), t2->q0(5), t3->q1(5), t4->q0(7).
	a := ListScheduling{}.Assign([]Size{3, 3, 2, 2, 2}, 2)
	if got := Cmax([]Size{3, 3, 2, 2, 2}, 2, a); got != 7 {
		t.Errorf("LS Cmax = %d, want 7", got)
	}
}

func TestLPTWorstCaseInstance(t *testing.T) {
	// {3,3,2,2,2} on 2 machines is the classic LPT worst case:
	// LPT gives 7 while the optimum is 6 (ratio exactly 7/6 =
	// 4/3 − 1/(3·2)). Pin both values.
	sizes := []Size{2, 2, 2, 3, 3}
	lpt := LPT{}.Assign(sizes, 2)
	if got := Cmax(sizes, 2, lpt); got != 7 {
		t.Errorf("LPT Cmax = %d, want 7", got)
	}
	opt, _ := ExactDP{}.Solve(sizes, 2)
	if opt != 6 {
		t.Errorf("optimum = %d, want 6", opt)
	}
}

func TestExactDPKnownOptimum(t *testing.T) {
	// Partition {7,5,4,3,1} on 2 machines: total 20, optimum 10.
	opt, a := ExactDP{}.Solve([]Size{7, 5, 4, 3, 1}, 2)
	if opt != 10 {
		t.Errorf("ExactDP opt = %d, want 10", opt)
	}
	if got := Cmax([]Size{7, 5, 4, 3, 1}, 2, a); got != 10 {
		t.Errorf("reconstructed assignment Cmax = %d, want 10", got)
	}
}

func TestExactDPSingleMachine(t *testing.T) {
	opt, a := ExactDP{}.Solve([]Size{4, 4, 4}, 1)
	if opt != 12 {
		t.Errorf("opt = %d, want 12", opt)
	}
	checkValidAssignment(t, "ExactDP", []Size{4, 4, 4}, 1, a)
}

func TestExactDPEmptyAndZeroSizes(t *testing.T) {
	opt, a := ExactDP{}.Solve(nil, 3)
	if opt != 0 || len(a) != 0 {
		t.Errorf("empty: opt=%d len=%d", opt, len(a))
	}
	opt, a = ExactDP{}.Solve([]Size{0, 0, 5}, 2)
	if opt != 5 {
		t.Errorf("opt = %d, want 5", opt)
	}
	checkValidAssignment(t, "ExactDP", []Size{0, 0, 5}, 2, a)
}

func TestBranchAndBoundMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		sizes := randomSizes(rng, 12, 50)
		m := 1 + rng.Intn(4)
		optDP, _ := ExactDP{}.Solve(sizes, m)
		optBB, aBB := BranchAndBound{}.Solve(sizes, m)
		if optDP != optBB {
			t.Fatalf("trial %d: DP opt %d != BnB opt %d (sizes=%v m=%d)", trial, optDP, optBB, sizes, m)
		}
		if got := Cmax(sizes, m, aBB); got != optBB {
			t.Fatalf("BnB assignment value %d != reported %d", got, optBB)
		}
	}
}

func TestBranchAndBoundNodeCapStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sizes := randomSizes(rng, 25, 1000)
	m := 4
	val, a := BranchAndBound{MaxNodes: 50}.Solve(sizes, m)
	checkValidAssignment(t, "BnB-capped", sizes, m, a)
	if got := Cmax(sizes, m, a); got != val {
		t.Errorf("capped BnB value mismatch: %d != %d", got, val)
	}
	if val < LowerBound(sizes, m) {
		t.Errorf("value below lower bound")
	}
}

func TestMultifitSmall(t *testing.T) {
	sizes := []Size{7, 5, 4, 3, 1}
	a := Multifit{}.Assign(sizes, 2)
	checkValidAssignment(t, "Multifit", sizes, 2, a)
	if got := Cmax(sizes, 2, a); got != 10 {
		t.Errorf("Multifit Cmax = %d, want 10", got)
	}
}

func TestPTASFindsNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		sizes := randomSizes(rng, 10, 100)
		m := 1 + rng.Intn(3)
		opt, _ := ExactDP{}.Solve(sizes, m)
		for _, eps := range []float64{0.5, 0.25} {
			a := PTAS{Epsilon: eps}.Assign(sizes, m)
			checkValidAssignment(t, "PTAS", sizes, m, a)
			got := Cmax(sizes, m, a)
			if float64(got) > (1+eps)*float64(opt)+1e-9 {
				t.Errorf("trial %d eps=%g: PTAS Cmax %d > (1+eps)*opt (opt=%d, sizes=%v, m=%d)",
					trial, eps, got, opt, sizes, m)
			}
		}
	}
}

func TestPTASAllZeroSizes(t *testing.T) {
	a := PTAS{Epsilon: 0.3}.Assign([]Size{0, 0, 0}, 2)
	checkValidAssignment(t, "PTAS", []Size{0, 0, 0}, 2, a)
}

func TestPTASPanicsOnBadEpsilon(t *testing.T) {
	for _, eps := range []float64{0, -1, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%g: expected panic", eps)
				}
			}()
			PTAS{Epsilon: eps}.Assign([]Size{1}, 1)
		}()
	}
}

func TestValidatePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("m=0 accepted")
			}
		}()
		ListScheduling{}.Assign([]Size{1}, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative size accepted")
			}
		}()
		LPT{}.Assign([]Size{-1}, 1)
	}()
}

func TestRegistryNamesAndRatios(t *testing.T) {
	algos := Registry()
	if len(algos) != 5 {
		t.Fatalf("registry has %d algorithms, want 5", len(algos))
	}
	seen := map[string]bool{}
	for _, alg := range algos {
		if alg.Name() == "" {
			t.Error("empty algorithm name")
		}
		if seen[alg.Name()] {
			t.Errorf("duplicate name %q", alg.Name())
		}
		seen[alg.Name()] = true
		for _, m := range []int{1, 2, 8} {
			if r := alg.Ratio(m); r < 1 {
				t.Errorf("%s: ratio %g < 1 for m=%d", alg.Name(), r, m)
			}
		}
	}
}

// --- property tests -------------------------------------------------

func TestPropertyGreedyWithinGrahamBound(t *testing.T) {
	// LS makespan ≤ Σ/m + (1−1/m)·max ≤ (2−1/m)·LB: testable without
	// knowing the optimum because LB ≤ OPT.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sizes := randomSizes(rng, 60, 1000)
		m := 1 + rng.Intn(8)
		a := ListScheduling{}.Assign(sizes, m)
		var sum, mx Size
		for _, x := range sizes {
			sum += x
			if x > mx {
				mx = x
			}
		}
		got := Cmax(sizes, m, a)
		bound := float64(sum)/float64(m) + (1-1/float64(m))*float64(mx)
		return float64(got) <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLPTWithinBoundOfExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sizes := randomSizes(rng, 11, 60)
		m := 1 + rng.Intn(4)
		opt, _ := ExactDP{}.Solve(sizes, m)
		got := Cmax(sizes, m, LPT{}.Assign(sizes, m))
		bound := (4.0/3.0 - 1.0/(3.0*float64(m))) * float64(opt)
		return got >= opt && float64(got) <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMultifitNeverWorseThanFFDBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sizes := randomSizes(rng, 11, 60)
		m := 1 + rng.Intn(4)
		opt, _ := ExactDP{}.Solve(sizes, m)
		got := Cmax(sizes, m, Multifit{}.Assign(sizes, m))
		// 13/11 is asymptotic; 1.22 covers all instances (CGJ 1978
		// proved 1.22 for k iterations).
		return got >= opt && float64(got) <= 1.22*float64(opt)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPropertyExactDPIsOptimal(t *testing.T) {
	// DP result is feasible and no random assignment beats it.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sizes := randomSizes(rng, 9, 40)
		m := 1 + rng.Intn(3)
		opt, a := ExactDP{}.Solve(sizes, m)
		if Cmax(sizes, m, a) != opt {
			return false
		}
		if opt < LowerBound(sizes, m) {
			return false
		}
		trial := make(Assignment, len(sizes))
		for t := 0; t < 50; t++ {
			for i := range trial {
				trial[i] = rng.Intn(m)
			}
			if Cmax(sizes, m, trial) < opt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAllAlgorithmsProduceValidAssignments(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sizes := randomSizes(rng, 40, 500)
		m := 1 + rng.Intn(8)
		for _, alg := range Registry() {
			a := alg.Assign(sizes, m)
			if len(a) != len(sizes) {
				return false
			}
			for _, q := range a {
				if q < 0 || q >= m {
					return false
				}
			}
			// Never below the lower bound.
			if Cmax(sizes, m, a) < LowerBound(sizes, m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPTASWithinEpsOfLowerBoundTimesTwo(t *testing.T) {
	// Cheap large-n sanity: PTAS ≤ (1+ε)·2·LB always (dual search is
	// within [LB, 2LB]).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sizes := randomSizes(rng, 30, 200)
		m := 1 + rng.Intn(4)
		eps := 0.5
		a := PTAS{Epsilon: eps}.Assign(sizes, m)
		got := Cmax(sizes, m, a)
		return float64(got) <= (1+eps)*2*float64(LowerBound(sizes, m))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

package makespan

import "container/heap"

// LDM is the Karmarkar–Karp largest differencing method generalised to
// m machines: repeatedly merge the two partial solutions with the
// largest spread, scheduling their load vectors in opposite order.
// Its differencing step makes it markedly stronger than LPT on
// balanced-partition instances (the classic number-partitioning
// result), at O(n log n · m) cost. Useful as a drop-in sub-algorithm
// for SBO when instances have few large tasks.
type LDM struct{}

// Name implements Algorithm.
func (LDM) Name() string { return "LDM" }

// Ratio implements Algorithm: the proven worst-case bound for the
// multiway differencing method matches LPT's 4/3 − 1/(3m) (Fischetti &
// Martello for m=2 give 7/6; for general m no better constant is
// proven), so report LPT's.
func (LDM) Ratio(m int) float64 { return 4.0/3.0 - 1/(3*float64(m)) }

// partial is a partial solution: m loads (ascending) and, per load
// slot, the task ids stacked there.
type partial struct {
	loads []Size
	tasks [][]int
}

// spread is the balancing objective the heap maximises.
func (p *partial) spread() Size { return p.loads[len(p.loads)-1] - p.loads[0] }

// partialHeap is a max-heap on spread.
type partialHeap []*partial

func (h partialHeap) Len() int            { return len(h) }
func (h partialHeap) Less(a, b int) bool  { return h[a].spread() > h[b].spread() }
func (h partialHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *partialHeap) Push(x interface{}) { *h = append(*h, x.(*partial)) }
func (h *partialHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Assign implements Algorithm.
func (LDM) Assign(sizes []Size, m int) Assignment {
	validate(sizes, m)
	n := len(sizes)
	a := make(Assignment, n)
	if n == 0 {
		return a
	}
	if m == 1 {
		return a
	}
	h := &partialHeap{}
	for i := 0; i < n; i++ {
		p := &partial{loads: make([]Size, m), tasks: make([][]int, m)}
		p.loads[m-1] = sizes[i]
		p.tasks[m-1] = []int{i}
		heap.Push(h, p)
	}
	for h.Len() > 1 {
		p1 := heap.Pop(h).(*partial)
		p2 := heap.Pop(h).(*partial)
		// Merge: largest load of p1 with smallest of p2, etc.
		merged := &partial{loads: make([]Size, m), tasks: make([][]int, m)}
		for k := 0; k < m; k++ {
			merged.loads[k] = p1.loads[k] + p2.loads[m-1-k]
			merged.tasks[k] = append(append([]int(nil), p1.tasks[k]...), p2.tasks[m-1-k]...)
		}
		sortPartial(merged)
		heap.Push(h, merged)
	}
	final := heap.Pop(h).(*partial)
	for q, ts := range final.tasks {
		for _, i := range ts {
			a[i] = q
		}
	}
	return a
}

// sortPartial re-establishes ascending load order, carrying the task
// stacks along (insertion sort; m is small).
func sortPartial(p *partial) {
	for i := 1; i < len(p.loads); i++ {
		l, t := p.loads[i], p.tasks[i]
		j := i
		for ; j > 0 && p.loads[j-1] > l; j-- {
			p.loads[j] = p.loads[j-1]
			p.tasks[j] = p.tasks[j-1]
		}
		p.loads[j] = l
		p.tasks[j] = t
	}
}

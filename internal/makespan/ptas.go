package makespan

import (
	"fmt"
	"sort"
)

// PTAS is the Hochbaum–Shmoys dual-approximation scheme for P||Cmax
// (reference [9] of the paper), the sub-algorithm that turns SBO∆ into
// the (1+∆+ε, 1+1/∆+ε) family of Corollary 1.
//
// For a candidate makespan T the dual procedure either proves that no
// schedule of makespan ≤ T exists or produces one of makespan at most
// (1+ε)T:
//
//  1. items larger than εT ("big") are rounded down to multiples of
//     ε²T; a bin of capacity T holds at most 1/ε big items, so the
//     rounding loses at most ε·T per bin;
//  2. rounded big items are packed into a minimum number of bins of
//     rounded capacity ⌊T/ε²T⌋ by exact dynamic programming over
//     count vectors (polynomial for fixed ε since there are at most
//     1/ε² distinct rounded sizes);
//  3. small items are added greedily to the least-loaded bin; if the
//     least-loaded bin already exceeds T the total volume exceeds mT
//     and T is infeasible.
//
// A binary search over T ∈ [LB, 2·LB] then yields makespan at most
// (1+ε)·OPT. The DP is exponential in 1/ε; intended use is ε ≥ 0.2 or
// small instances, which is exactly how the paper's Corollary 1 is
// exercised in the experiments.
type PTAS struct {
	// Epsilon is the accuracy parameter ε ∈ (0, 1). The constructor
	// functions in package core validate it; Assign panics on
	// out-of-range values.
	Epsilon float64
}

// Name implements Algorithm.
func (pt PTAS) Name() string { return fmt.Sprintf("PTAS(eps=%g)", pt.Epsilon) }

// Ratio implements Algorithm: 1 + ε.
func (pt PTAS) Ratio(m int) float64 { return 1 + pt.Epsilon }

// Assign implements Algorithm.
func (pt PTAS) Assign(sizes []Size, m int) Assignment {
	validate(sizes, m)
	if pt.Epsilon <= 0 || pt.Epsilon >= 1 {
		panic(fmt.Sprintf("makespan: PTAS epsilon = %g, need 0 < eps < 1", pt.Epsilon))
	}
	lb := LowerBound(sizes, m)
	if lb == 0 {
		// All sizes are zero; any assignment is optimal.
		return make(Assignment, len(sizes))
	}
	// Binary search the smallest T for which the dual step succeeds.
	// T = 2·lb always succeeds (greedy list scheduling fits below
	// 2·lb), so the interval is well formed.
	lo, hi := lb, 2*lb
	var best Assignment
	for lo < hi {
		mid := lo + (hi-lo)/2
		if a := pt.dual(sizes, m, mid); a != nil {
			best = a
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if best == nil {
		best = pt.dual(sizes, m, hi)
	}
	if best == nil {
		// Unreachable: T = 2·lb is always feasible for the dual step.
		// Fall back to LPT rather than crash.
		return LPT{}.Assign(sizes, m)
	}
	return best
}

// dual is the dual-approximation step: nil means "no schedule of
// makespan ≤ T exists"; otherwise the returned assignment has makespan
// at most (1+ε)T.
func (pt PTAS) dual(sizes []Size, m int, T Size) Assignment {
	eps := pt.Epsilon
	bigThreshold := Size(eps * float64(T))
	grid := Size(eps * eps * float64(T))
	if grid < 1 {
		grid = 1
	}
	var big, small []int
	for i, x := range sizes {
		if x > T {
			return nil // an item exceeds the candidate makespan
		}
		if x > bigThreshold {
			big = append(big, i)
		} else {
			small = append(small, i)
		}
	}
	a := make(Assignment, len(sizes))
	loads := make([]Size, m)

	if len(big) > 0 {
		ok := packBigItems(sizes, big, m, T, grid, a, loads)
		if !ok {
			return nil
		}
	}
	// Greedy placement of small items onto the least-loaded bin.
	// Sorting them descending keeps the result deterministic and
	// slightly tighter; correctness needs no order.
	sort.Slice(small, func(x, y int) bool {
		if sizes[small[x]] != sizes[small[y]] {
			return sizes[small[x]] > sizes[small[y]]
		}
		return small[x] < small[y]
	})
	for _, i := range small {
		q := minLoadProc(loads)
		if loads[q] > T {
			// Every bin exceeds T, so total volume > mT: infeasible.
			return nil
		}
		a[i] = q
		loads[q] += sizes[i]
	}
	return a
}

// packBigItems packs the rounded big items into at most m bins of
// rounded capacity ⌊T/grid⌋ (exact min-bins DP), writing the real
// assignment into a and real loads into loads. It reports false when
// more than m bins are required, which proves T infeasible because
// rounding down can only make packing easier.
func packBigItems(sizes []Size, big []int, m int, T, grid Size, a Assignment, loads []Size) bool {
	capU := T / grid
	// Bucket items by rounded value.
	buckets := map[Size][]int{}
	for _, i := range big {
		r := sizes[i] / grid
		buckets[r] = append(buckets[r], i)
	}
	vals := make([]Size, 0, len(buckets))
	for v := range buckets {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(x, y int) bool { return vals[x] > vals[y] })
	counts := make([]int, len(vals))
	for k, v := range vals {
		counts[k] = len(buckets[v])
		// Items within a bucket are consumed largest-real-size first
		// so reconstruction is deterministic.
		sort.Slice(buckets[v], func(x, y int) bool {
			if sizes[buckets[v][x]] != sizes[buckets[v][y]] {
				return sizes[buckets[v][x]] > sizes[buckets[v][y]]
			}
			return buckets[v][x] < buckets[v][y]
		})
	}

	dp := &binDP{vals: vals, capU: capU, memo: map[string]int{}}
	need := dp.minBins(counts)
	if need > m {
		return false
	}
	// Reconstruct bin by bin: find a maximal configuration whose
	// removal decreases minBins by exactly one.
	remaining := append([]int(nil), counts...)
	bin := 0
	for !allZero(remaining) {
		cfg := dp.extractConfig(remaining)
		for k, c := range cfg {
			for j := 0; j < c; j++ {
				items := buckets[vals[k]]
				i := items[len(items)-1]
				buckets[vals[k]] = items[:len(items)-1]
				a[i] = bin
				loads[bin] += sizes[i]
			}
			remaining[k] -= c
		}
		bin++
		if bin > m {
			// Defensive: reconstruction must match minBins.
			return false
		}
	}
	return true
}

// binDP memoizes the minimum number of capU-bins needed for a count
// vector of rounded values.
type binDP struct {
	vals []Size
	capU Size
	memo map[string]int
}

func encodeCounts(counts []int) string {
	buf := make([]byte, 2*len(counts))
	for i, c := range counts {
		buf[2*i] = byte(c >> 8)
		buf[2*i+1] = byte(c)
	}
	return string(buf)
}

func allZero(counts []int) bool {
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

// minBins returns the minimum number of bins for the count vector.
func (d *binDP) minBins(counts []int) int {
	if allZero(counts) {
		return 0
	}
	key := encodeCounts(counts)
	if v, ok := d.memo[key]; ok {
		return v
	}
	best := 1 << 30
	d.forEachMaximalConfig(counts, func(cfg []int) {
		rest := make([]int, len(counts))
		for k := range counts {
			rest[k] = counts[k] - cfg[k]
		}
		if b := d.minBins(rest) + 1; b < best {
			best = b
		}
	})
	d.memo[key] = best
	return best
}

// extractConfig finds a maximal configuration of remaining whose
// removal is consistent with an optimal packing and returns it.
func (d *binDP) extractConfig(remaining []int) []int {
	total := d.minBins(remaining)
	var chosen []int
	d.forEachMaximalConfig(remaining, func(cfg []int) {
		if chosen != nil {
			return
		}
		rest := make([]int, len(remaining))
		for k := range remaining {
			rest[k] = remaining[k] - cfg[k]
		}
		if d.minBins(rest) == total-1 {
			chosen = append([]int(nil), cfg...)
		}
	})
	return chosen
}

// forEachMaximalConfig enumerates the maximal feasible single-bin
// configurations (vectors cfg ≤ counts with Σ cfg_k·vals_k ≤ capU such
// that no further item fits). Restricting to maximal configurations
// preserves the min-bins optimum.
func (d *binDP) forEachMaximalConfig(counts []int, fn func([]int)) {
	cfg := make([]int, len(counts))
	var rec func(k int, space Size)
	rec = func(k int, space Size) {
		if k == len(counts) {
			// Maximality: no remaining item of any value fits.
			for j := range counts {
				if cfg[j] < counts[j] && d.vals[j] <= space {
					return
				}
			}
			fn(cfg)
			return
		}
		maxC := counts[k]
		if d.vals[k] > 0 {
			if byCap := int(space / d.vals[k]); byCap < maxC {
				maxC = byCap
			}
		}
		// Try larger counts first so reconstruction prefers full bins.
		for c := maxC; c >= 0; c-- {
			cfg[k] = c
			rec(k+1, space-Size(c)*d.vals[k])
		}
		cfg[k] = 0
	}
	rec(0, d.capU)
}

package makespan

// Multifit (Coffman, Garey, Johnson 1978) binary-searches a bin
// capacity C and asks whether first-fit-decreasing packs all sizes into
// m bins of capacity C. The smallest capacity FFD accepts is at most
// 13/11 times the optimal makespan (asymptotic bound; 1.22 proven for
// the classic iteration count).
type Multifit struct {
	// Iterations bounds the binary search; 20 gives capacity
	// resolution far below one time unit for any int64 input while
	// keeping the algorithm strongly polynomial. Zero means 20.
	Iterations int
}

// Name implements Algorithm.
func (Multifit) Name() string { return "Multifit" }

// Ratio implements Algorithm. 13/11 is the tight asymptotic FFD-based
// bound (Yue 1990).
func (Multifit) Ratio(m int) float64 { return 13.0 / 11.0 }

// Assign implements Algorithm.
func (mf Multifit) Assign(sizes []Size, m int) Assignment {
	validate(sizes, m)
	iters := mf.Iterations
	if iters <= 0 {
		iters = 20
	}
	order := descendingOrder(sizes)
	lo := LowerBound(sizes, m) // no packing below the lower bound
	hi := 2 * lo               // FFD always packs at capacity 2·LB
	if hi == 0 {
		hi = 1
	}
	bestA := ffd(sizes, m, order, hi)
	if bestA == nil {
		// Cannot happen (capacity 2·LB always packs: FFD load per bin
		// stays below LB + max <= 2·LB), but fall back defensively to
		// plain greedy rather than returning a nil assignment.
		return assignGreedy(sizes, m, order)
	}
	for it := 0; it < iters && lo < hi; it++ {
		mid := lo + (hi-lo)/2
		if a := ffd(sizes, m, order, mid); a != nil {
			bestA = a
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return bestA
}

// ffd packs sizes (visited in the given descending order) into m bins
// of capacity cap using first-fit; it returns nil if some item does not
// fit anywhere.
func ffd(sizes []Size, m int, order []int, cap Size) Assignment {
	a := make(Assignment, len(sizes))
	loads := make([]Size, m)
	for _, i := range order {
		placed := false
		for q := 0; q < m; q++ {
			if loads[q]+sizes[i] <= cap {
				a[i] = q
				loads[q] += sizes[i]
				placed = true
				break
			}
		}
		if !placed {
			return nil
		}
	}
	return a
}

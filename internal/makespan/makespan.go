// Package makespan solves the single-objective problem P||Cmax over an
// abstract vector of integer sizes. Section 2.1 of the paper observes
// that on independent tasks Cmax and Mmax "are strictly equivalent and
// can be exchanged"; SBO∆ (Algorithm 1) exploits exactly that symmetry
// by running the same single-objective algorithm once on the p vector
// and once on the s vector. Everything here is therefore written
// against plain []int64 sizes and returns a processor assignment.
//
// Provided algorithms, with their classical guarantees:
//
//   - Graham list scheduling in input order  (2 − 1/m)  [Graham 1969]
//   - LPT (longest processing time first)    (4/3 − 1/(3m))
//   - Multifit with FFD inner packing        (13/11 asymptotically)
//   - Hochbaum–Shmoys dual-approximation PTAS (1 + ε)
//   - Exact solvers (bitmask DP, branch and bound) for small n
package makespan

import (
	"fmt"
	"sort"

	"storagesched/internal/model"
)

// Size is the abstract quantity being balanced (either p_i or s_i).
type Size = int64

// Assignment maps task index to processor, as in package model.
type Assignment = model.Assignment

// Loads returns the per-processor total size of assignment a.
func Loads(sizes []Size, m int, a Assignment) []Size {
	loads := make([]Size, m)
	for i, q := range a {
		loads[q] += sizes[i]
	}
	return loads
}

// Cmax returns the maximum processor load of assignment a.
func Cmax(sizes []Size, m int, a Assignment) Size {
	var mx Size
	for _, l := range Loads(sizes, m, a) {
		if l > mx {
			mx = l
		}
	}
	return mx
}

// LowerBound returns max(max_i size_i, ceil(Σ size_i / m)), the Graham
// lower bound on the optimum.
func LowerBound(sizes []Size, m int) Size {
	var mx, sum Size
	for _, x := range sizes {
		if x > mx {
			mx = x
		}
		sum += x
	}
	if avg := (sum + Size(m) - 1) / Size(m); avg > mx {
		return avg
	}
	return mx
}

// Algorithm is a P||Cmax heuristic: it assigns every size to one of m
// processors. Implementations must be deterministic.
type Algorithm interface {
	// Name identifies the algorithm in experiment tables.
	Name() string
	// Ratio returns the proven approximation ratio for m processors
	// (for reporting; +Inf-free: exact solvers return 1).
	Ratio(m int) float64
	// Assign computes the processor assignment.
	Assign(sizes []Size, m int) Assignment
}

// validate panics on malformed inputs; all algorithms share it so
// misuse fails loudly at the boundary rather than corrupting results.
func validate(sizes []Size, m int) {
	if m < 1 {
		panic(fmt.Sprintf("makespan: m = %d, need m >= 1", m))
	}
	for i, x := range sizes {
		if x < 0 {
			panic(fmt.Sprintf("makespan: size[%d] = %d, need >= 0", i, x))
		}
	}
}

// descendingOrder returns task indices sorted by decreasing size,
// breaking ties by index for determinism.
func descendingOrder(sizes []Size) []int {
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if sizes[order[a]] != sizes[order[b]] {
			return sizes[order[a]] > sizes[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// minLoadProc returns the least-loaded processor (lowest index wins
// ties), the core step of Graham's algorithm.
func minLoadProc(loads []Size) int {
	best := 0
	for q := 1; q < len(loads); q++ {
		if loads[q] < loads[best] {
			best = q
		}
	}
	return best
}

// assignGreedy places tasks on the least-loaded processor in the given
// order.
func assignGreedy(sizes []Size, m int, order []int) Assignment {
	a := make(Assignment, len(sizes))
	loads := make([]Size, m)
	for _, i := range order {
		q := minLoadProc(loads)
		a[i] = q
		loads[q] += sizes[i]
	}
	return a
}

// Registry returns every heuristic algorithm in the package, in a
// stable order, for ablation sweeps. Exact solvers are excluded (they
// are exponential-time and exposed separately).
func Registry() []Algorithm {
	return []Algorithm{
		ListScheduling{},
		LPT{},
		LDM{},
		Multifit{Iterations: 20},
		PTAS{Epsilon: 0.25},
	}
}

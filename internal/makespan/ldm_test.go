package makespan

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLDMClassicPartition(t *testing.T) {
	// The textbook differencing example {8,7,6,5,4} on 2 machines:
	// the optimum is 15 ({8,7} vs {6,5,4}), KK differencing reaches
	// 16, plain LPT reaches 17 — KK strictly between LPT and OPT.
	sizes := []Size{8, 7, 6, 5, 4}
	a := LDM{}.Assign(sizes, 2)
	checkValidAssignment(t, "LDM", sizes, 2, a)
	if got := Cmax(sizes, 2, a); got != 16 {
		t.Errorf("LDM Cmax = %d, want 16", got)
	}
	if got := Cmax(sizes, 2, LPT{}.Assign(sizes, 2)); got != 17 {
		t.Errorf("LPT Cmax = %d, want 17 (sanity)", got)
	}
	opt, _ := ExactDP{}.Solve(sizes, 2)
	if opt != 15 {
		t.Errorf("optimum = %d, want 15", opt)
	}
}

func TestLDMThreeMachines(t *testing.T) {
	sizes := []Size{5, 5, 4, 4, 3, 3, 3, 3}
	a := LDM{}.Assign(sizes, 3)
	checkValidAssignment(t, "LDM", sizes, 3, a)
	// Total 30, optimum 10. Multiway differencing lands on 11 here
	// (a known limitation of the m-way generalisation); pin it as a
	// regression value and check it stays within the LPT-style bound.
	opt, _ := ExactDP{}.Solve(sizes, 3)
	if opt != 10 {
		t.Fatalf("optimum = %d, want 10", opt)
	}
	got := Cmax(sizes, 3, a)
	if got != 11 {
		t.Errorf("LDM Cmax = %d, want the pinned 11", got)
	}
	if float64(got) > (4.0/3.0-1.0/9.0)*float64(opt)+1e-9 {
		t.Errorf("LDM exceeded its reported ratio")
	}
}

func TestLDMEdgeCases(t *testing.T) {
	if a := (LDM{}).Assign(nil, 3); len(a) != 0 {
		t.Error("empty input mishandled")
	}
	a := LDM{}.Assign([]Size{7, 3}, 1)
	checkValidAssignment(t, "LDM", []Size{7, 3}, 1, a)
	if got := Cmax([]Size{7, 3}, 1, a); got != 10 {
		t.Errorf("single machine Cmax = %d", got)
	}
	// More machines than tasks.
	a = LDM{}.Assign([]Size{5}, 4)
	checkValidAssignment(t, "LDM", []Size{5}, 4, a)
	if got := Cmax([]Size{5}, 4, a); got != 5 {
		t.Errorf("Cmax = %d, want 5", got)
	}
}

func TestPropertyLDMValidAndWithinLPTBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sizes := randomSizes(rng, 11, 60)
		m := 1 + rng.Intn(4)
		a := LDM{}.Assign(sizes, m)
		if len(a) != len(sizes) {
			return false
		}
		for _, q := range a {
			if q < 0 || q >= m {
				return false
			}
		}
		opt, _ := ExactDP{}.Solve(sizes, m)
		got := Cmax(sizes, m, a)
		// Empirical envelope: within the LPT guarantee of the
		// optimum (the differencing method never does worse in
		// practice; no tighter constant is proven for general m).
		return got >= opt && float64(got) <= (4.0/3.0)*float64(opt)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLDMOftenBeatsLPTOnBalancedInstances(t *testing.T) {
	// Statistical claim: over many balanced random instances, LDM's
	// total regret (vs LB) is no more than LPT's.
	rng := rand.New(rand.NewSource(7))
	var ldmTotal, lptTotal int64
	for trial := 0; trial < 100; trial++ {
		sizes := randomSizes(rng, 24, 1000)
		m := 2 + rng.Intn(3)
		lb := LowerBound(sizes, m)
		ldmTotal += int64(Cmax(sizes, m, LDM{}.Assign(sizes, m)) - lb)
		lptTotal += int64(Cmax(sizes, m, LPT{}.Assign(sizes, m)) - lb)
	}
	if ldmTotal > lptTotal {
		t.Errorf("LDM aggregate regret %d > LPT %d", ldmTotal, lptTotal)
	}
}

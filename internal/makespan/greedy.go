package makespan

// ListScheduling is Graham's list scheduling in input order: each task,
// in turn, goes to the currently least-loaded processor. Guarantee:
// 2 − 1/m. This is the algorithm the paper "recalls in Section 5" as
// the baseline ρ1 = ρ2 = 2 − 1/m choice for SBO∆.
type ListScheduling struct{}

// Name implements Algorithm.
func (ListScheduling) Name() string { return "LS" }

// Ratio implements Algorithm: 2 − 1/m.
func (ListScheduling) Ratio(m int) float64 { return 2 - 1/float64(m) }

// Assign implements Algorithm.
func (ListScheduling) Assign(sizes []Size, m int) Assignment {
	validate(sizes, m)
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = i
	}
	return assignGreedy(sizes, m, order)
}

// LPT is Graham's longest-processing-time rule: list scheduling after
// sorting sizes in decreasing order. Guarantee: 4/3 − 1/(3m).
type LPT struct{}

// Name implements Algorithm.
func (LPT) Name() string { return "LPT" }

// Ratio implements Algorithm: 4/3 − 1/(3m).
func (LPT) Ratio(m int) float64 { return 4.0/3.0 - 1/(3*float64(m)) }

// Assign implements Algorithm.
func (LPT) Assign(sizes []Size, m int) Assignment {
	validate(sizes, m)
	return assignGreedy(sizes, m, descendingOrder(sizes))
}

package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"storagesched/internal/bounds"
	"storagesched/internal/core"
	"storagesched/internal/dag"
	"storagesched/internal/gen"
	"storagesched/internal/model"
)

func TestReplayMatchesScheduleObjectives(t *testing.T) {
	in := gen.Uniform(30, 4, 3)
	res, err := core.RLSIndependent(in, 3, core.TieSPT)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(res.Schedule, nil, res.Cap)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Cmax != res.Cmax || rep.Mmax != res.Mmax || rep.SumCi != res.SumCi {
		t.Errorf("replay objectives (%d,%d,%d) != schedule (%d,%d,%d)",
			rep.Cmax, rep.Mmax, rep.SumCi, res.Cmax, res.Mmax, res.SumCi)
	}
	var busy model.Time
	for q := range rep.BusyTime {
		busy += rep.BusyTime[q]
		if u := rep.Utilization(q); u < 0 || u > 1 {
			t.Errorf("utilization[%d] = %g", q, u)
		}
	}
	if busy != in.TotalWork() {
		t.Errorf("busy time %d != total work %d", busy, in.TotalWork())
	}
}

func TestReplayDAGSchedule(t *testing.T) {
	g := gen.LayeredDAG(4, 6, 3, 5)
	res, err := core.RLS(g, 3, core.TieBottomLevel)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(res.Schedule, g.PredLists(), res.Cap)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Cmax != res.Cmax {
		t.Errorf("replay Cmax %d != %d", rep.Cmax, res.Cmax)
	}
}

func TestReplayCatchesOverlap(t *testing.T) {
	sc := model.NewSchedule(1, 2)
	sc.Proc = []int{0, 0}
	sc.Start = []model.Time{0, 2}
	sc.P = []model.Time{3, 1}
	sc.S = []model.Mem{0, 0}
	if _, err := Replay(sc, nil, 0); err == nil {
		t.Error("overlap not caught")
	}
}

func TestReplayCatchesPrecedenceViolation(t *testing.T) {
	sc := model.NewSchedule(2, 2)
	sc.Proc = []int{0, 1}
	sc.Start = []model.Time{0, 1}
	sc.P = []model.Time{3, 1}
	sc.S = []model.Mem{0, 0}
	prec := [][]int{{}, {0}}
	if _, err := Replay(sc, prec, 0); err == nil {
		t.Error("precedence violation not caught")
	}
}

func TestReplayCatchesMemoryOverflow(t *testing.T) {
	sc := model.NewSchedule(1, 2)
	sc.Proc = []int{0, 0}
	sc.Start = []model.Time{0, 1}
	sc.P = []model.Time{1, 1}
	sc.S = []model.Mem{5, 5}
	if _, err := Replay(sc, nil, 8); err == nil {
		t.Error("memory overflow not caught")
	}
	if _, err := Replay(sc, nil, 10); err != nil {
		t.Errorf("budget 10 wrongly rejected: %v", err)
	}
}

func TestReplayCatchesBadProcessor(t *testing.T) {
	sc := model.NewSchedule(1, 1)
	sc.Proc = []int{5}
	sc.P = []model.Time{1}
	if _, err := Replay(sc, nil, 0); err == nil {
		t.Error("bad processor not caught")
	}
}

func TestReplayBackToBackIsLegal(t *testing.T) {
	sc := model.NewSchedule(1, 2)
	sc.Proc = []int{0, 0}
	sc.Start = []model.Time{0, 3}
	sc.P = []model.Time{3, 2}
	sc.S = []model.Mem{1, 1}
	if _, err := Replay(sc, nil, 0); err != nil {
		t.Errorf("back-to-back rejected: %v", err)
	}
}

func TestOnlineRLSBasics(t *testing.T) {
	tasks := []OnlineTask{
		{P: 4, S: 2, Release: 0},
		{P: 2, S: 2, Release: 0},
		{P: 3, S: 2, Release: 5},
	}
	res, err := OnlineRLS(tasks, 2, 100)
	if err != nil {
		t.Fatalf("OnlineRLS: %v", err)
	}
	// Tasks must start at or after release.
	for i, task := range tasks {
		if res.Schedule.Start[i] < task.Release {
			t.Errorf("task %d started at %d before release %d", i, res.Schedule.Start[i], task.Release)
		}
	}
	if err := res.Schedule.Validate(nil); err != nil {
		t.Errorf("invalid schedule: %v", err)
	}
	if res.MaxRelease != 5 {
		t.Errorf("MaxRelease = %d", res.MaxRelease)
	}
	// t0 on q0, t1 on q1 at 0; t2 at its release on either.
	if res.Cmax != 8 {
		t.Errorf("Cmax = %d, want 8", res.Cmax)
	}
}

func TestOnlineRLSRejectsBadInput(t *testing.T) {
	if _, err := OnlineRLS([]OnlineTask{{P: 0}}, 1, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := OnlineRLS([]OnlineTask{{P: 1, Release: -1}}, 1, 0); err == nil {
		t.Error("negative release accepted")
	}
	if _, err := OnlineRLS(nil, 0, 0); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestOnlineRLSStuckOnTinyBudget(t *testing.T) {
	tasks := []OnlineTask{
		{P: 1, S: 10, Release: 0},
		{P: 1, S: 10, Release: 0},
		{P: 1, S: 10, Release: 0},
	}
	// Budget 10 on one machine: after the first task the second never
	// fits (cumulative memory).
	if _, err := OnlineRLS(tasks, 1, 10); err == nil {
		t.Error("stuck condition not detected")
	}
}

// The online scheduler respects the memory budget and stays within the
// cap-aware competitive envelope:
// Cmax ≤ maxRelease + W·(∆−1)/(m(∆−2)) + pmax for budget ∆·LB, ∆ > 2.
func TestPropertyOnlineRLSGuarantees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		m := 1 + rng.Intn(6)
		tasks := make([]OnlineTask, n)
		s := make([]model.Mem, n)
		var work, maxP model.Time
		for i := range tasks {
			tasks[i] = OnlineTask{
				P:       rng.Int63n(50) + 1,
				S:       rng.Int63n(50),
				Release: rng.Int63n(200),
			}
			s[i] = tasks[i].S
			work += tasks[i].P
			if tasks[i].P > maxP {
				maxP = tasks[i].P
			}
		}
		const delta = 3.0
		lb := bounds.MemLB(s, m)
		cap := model.Mem(delta * float64(lb))
		res, err := OnlineRLS(tasks, m, cap)
		if err != nil {
			return false
		}
		if res.Mmax > cap {
			return false
		}
		if res.Schedule.Validate(nil) != nil {
			return false
		}
		bound := float64(res.MaxRelease) +
			float64(work)*(delta-1)/(float64(m)*(delta-2)) +
			float64(maxP)
		return float64(res.Cmax) <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Replay agrees with Schedule.Validate: whatever one accepts, the
// other accepts (cross-validation of the two checkers).
func TestPropertyReplayAgreesWithValidate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		m := 1 + rng.Intn(4)
		p := make([]model.Time, n)
		s := make([]model.Mem, n)
		for i := range p {
			p[i] = rng.Int63n(20) + 1
			s[i] = rng.Int63n(20)
		}
		g := dag.New(m, p, s)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.2 {
					g.AddEdge(u, v)
				}
			}
		}
		res, err := core.RLS(g, 3, core.TieByID)
		if err != nil {
			return false
		}
		sc := res.Schedule
		// Valid schedule: both accept.
		if sc.Validate(g.PredLists()) != nil {
			return false
		}
		if _, err := Replay(sc, g.PredLists(), 0); err != nil {
			return false
		}
		// Corrupt a start time: both reject (or the corruption
		// happened to stay valid — then both must accept).
		victim := rng.Intn(n)
		old := sc.Start[victim]
		sc.Start[victim] = old / 2
		vErr := sc.Validate(g.PredLists())
		_, rErr := Replay(sc, g.PredLists(), 0)
		sc.Start[victim] = old
		return (vErr == nil) == (rErr == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Package sim is the discrete-event execution substrate: it replays
// static schedules on a simulated machine model (verifying, event by
// event, that processors never overlap, precedences hold and memory
// budgets are respected) and runs an *online* memory-capped list
// scheduler for tasks with release dates — the dynamic setting the
// paper's introduction attributes to multi-SoC systems ("code
// replication for online optimization can make memory constraints a
// key issue").
//
// The replay is an independent check of model.Schedule.Validate: it
// computes objectives from machine events rather than from the
// schedule arrays, so a bug in either implementation is caught by the
// other.
package sim

import (
	"container/heap"
	"fmt"

	"storagesched/internal/model"
)

// Report summarises one simulated execution.
type Report struct {
	Cmax  model.Time
	Mmax  model.Mem
	SumCi model.Time

	// BusyTime[q] is the total running time of processor q;
	// utilization is BusyTime[q]/Cmax.
	BusyTime []model.Time
	// MemUsed[q] is the final cumulative memory of processor q.
	MemUsed []model.Mem
	// Events is the number of simulation events processed.
	Events int
}

// Utilization returns BusyTime[q]/Cmax (0 when the schedule is empty).
func (r *Report) Utilization(q int) float64 {
	if r.Cmax == 0 {
		return 0
	}
	return float64(r.BusyTime[q]) / float64(r.Cmax)
}

// event is a task start or completion in the replay queue.
type event struct {
	at    model.Time
	task  int
	start bool
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(a, b int) bool {
	if q[a].at != q[b].at {
		return q[a].at < q[b].at
	}
	// Completions before starts at the same instant (back-to-back
	// execution on one processor is legal).
	if q[a].start != q[b].start {
		return !q[a].start
	}
	return q[a].task < q[b].task
}
func (q eventQueue) Swap(a, b int)       { q[a], q[b] = q[b], q[a] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// Replay executes the schedule event by event. prec[i] lists the
// predecessors of task i (nil for independent tasks). memCap, when
// positive, is enforced as a hard per-processor budget. The replay
// fails on any overlap, precedence violation or budget overflow.
func Replay(sc *model.Schedule, prec [][]int, memCap model.Mem) (*Report, error) {
	n := sc.N()
	var q eventQueue
	for i := 0; i < n; i++ {
		if sc.Proc[i] < 0 || sc.Proc[i] >= sc.M {
			return nil, fmt.Errorf("sim: task %d on processor %d", i, sc.Proc[i])
		}
		if sc.Start[i] < 0 {
			return nil, fmt.Errorf("sim: task %d starts at %d", i, sc.Start[i])
		}
		heap.Push(&q, event{at: sc.Start[i], task: i, start: true})
		heap.Push(&q, event{at: sc.Start[i] + sc.P[i], task: i, start: false})
	}

	running := make([]int, sc.M) // current task per processor, -1 idle
	for j := range running {
		running[j] = -1
	}
	done := make([]bool, n)
	rep := &Report{
		BusyTime: make([]model.Time, sc.M),
		MemUsed:  make([]model.Mem, sc.M),
	}
	for q.Len() > 0 {
		e := heap.Pop(&q).(event)
		rep.Events++
		j := sc.Proc[e.task]
		if e.start {
			if running[j] != -1 {
				return nil, fmt.Errorf("sim: processor %d busy with task %d when task %d starts at %d",
					j, running[j], e.task, e.at)
			}
			if prec != nil {
				for _, u := range prec[e.task] {
					if !done[u] {
						return nil, fmt.Errorf("sim: task %d starts at %d before predecessor %d completed",
							e.task, e.at, u)
					}
				}
			}
			rep.MemUsed[j] += sc.S[e.task]
			if memCap > 0 && rep.MemUsed[j] > memCap {
				return nil, fmt.Errorf("sim: processor %d exceeds memory budget %d at task %d",
					j, memCap, e.task)
			}
			running[j] = e.task
		} else {
			if running[j] != e.task {
				return nil, fmt.Errorf("sim: completion of task %d on processor %d, but %d is running",
					e.task, j, running[j])
			}
			running[j] = -1
			done[e.task] = true
			rep.BusyTime[j] += sc.P[e.task]
			rep.SumCi += e.at
			if e.at > rep.Cmax {
				rep.Cmax = e.at
			}
		}
	}
	for j, t := range running {
		if t != -1 {
			return nil, fmt.Errorf("sim: task %d never completed on processor %d", t, j)
		}
	}
	for _, l := range rep.MemUsed {
		if l > rep.Mmax {
			rep.Mmax = l
		}
	}
	return rep, nil
}

// OnlineTask is a task with a release date, unknown to the scheduler
// before it arrives.
type OnlineTask struct {
	P       model.Time
	S       model.Mem
	Release model.Time
}

// OnlineResult is the outcome of the online scheduler.
type OnlineResult struct {
	Schedule *model.Schedule
	Cmax     model.Time
	Mmax     model.Mem
	// MaxRelease is max_i r_i, needed by the competitive bound.
	MaxRelease model.Time
}

// OnlineRLS runs the event-driven online variant of Algorithm 2: at
// every release or completion instant, pending tasks (in arrival
// order, ties by index) are placed on idle processors whose memory
// budget admits them; tasks that fit nowhere idle wait for a budget
// that will never grow — so if at any instant nothing runs and nothing
// fits, the cap is too small and an error is returned (impossible for
// cap ≥ 2·LB by the Lemma 4 counting argument).
func OnlineRLS(tasks []OnlineTask, m int, memCap model.Mem) (*OnlineResult, error) {
	if m < 1 {
		return nil, fmt.Errorf("sim: m = %d", m)
	}
	n := len(tasks)
	sc := model.NewSchedule(m, n)
	for i, t := range tasks {
		if t.P <= 0 {
			return nil, fmt.Errorf("sim: task %d has p = %d", i, t.P)
		}
		if t.S < 0 || t.Release < 0 {
			return nil, fmt.Errorf("sim: task %d has negative s or release", i)
		}
		sc.P[i] = t.P
		sc.S[i] = t.S
	}

	freeAt := make([]model.Time, m) // next instant processor is idle
	memUsed := make([]model.Mem, m)
	scheduled := make([]bool, n)
	var maxRelease model.Time
	for _, t := range tasks {
		if t.Release > maxRelease {
			maxRelease = t.Release
		}
	}

	// Event-driven loop: advance the clock to the next release or
	// completion, then greedily place every pending released task on
	// the earliest-free feasible processor that is idle at or before
	// the clock.
	remaining := n
	clock := model.Time(0)
	for remaining > 0 {
		progress := false
		for i := 0; i < n; i++ {
			if scheduled[i] || tasks[i].Release > clock {
				continue
			}
			best := -1
			for j := 0; j < m; j++ {
				if memCap > 0 && memUsed[j]+tasks[i].S > memCap {
					continue
				}
				if freeAt[j] > clock {
					continue
				}
				if best == -1 || freeAt[j] < freeAt[best] {
					best = j
				}
			}
			if best == -1 {
				continue
			}
			sc.Proc[i] = best
			sc.Start[i] = clock
			freeAt[best] = clock + tasks[i].P
			memUsed[best] += tasks[i].S
			scheduled[i] = true
			remaining--
			progress = true
		}
		if remaining == 0 {
			break
		}
		// Advance to the next event: earliest completion after the
		// clock or earliest pending release.
		next := model.Time(-1)
		for j := 0; j < m; j++ {
			if freeAt[j] > clock && (next == -1 || freeAt[j] < next) {
				next = freeAt[j]
			}
		}
		for i := 0; i < n; i++ {
			if !scheduled[i] && tasks[i].Release > clock &&
				(next == -1 || tasks[i].Release < next) {
				next = tasks[i].Release
			}
		}
		if next == -1 {
			if !progress {
				return nil, fmt.Errorf("sim: online scheduler stuck (memory budget %d too small)", memCap)
			}
			// All processors idle and all released: loop once more.
			continue
		}
		clock = next
	}
	return &OnlineResult{
		Schedule:   sc,
		Cmax:       sc.Cmax(),
		Mmax:       sc.Mmax(),
		MaxRelease: maxRelease,
	}, nil
}

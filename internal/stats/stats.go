// Package stats provides the small accumulators the experiment tables
// need: online mean/max/min (Welford) and quantiles over recorded
// samples.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Acc accumulates float64 samples.
type Acc struct {
	n       int
	mean    float64
	m2      float64
	min     float64
	max     float64
	samples []float64
	keep    bool
}

// NewAcc returns an accumulator. keepSamples enables quantiles at the
// cost of retaining every sample.
func NewAcc(keepSamples bool) *Acc {
	return &Acc{min: math.Inf(1), max: math.Inf(-1), keep: keepSamples}
}

// Add records one sample.
func (a *Acc) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	if x < a.min {
		a.min = x
	}
	if x > a.max {
		a.max = x
	}
	if a.keep {
		a.samples = append(a.samples, x)
	}
}

// N returns the sample count.
func (a *Acc) N() int { return a.n }

// Mean returns the running mean (0 for no samples).
func (a *Acc) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.mean
}

// Var returns the unbiased sample variance.
func (a *Acc) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Acc) Std() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest sample (+Inf for none).
func (a *Acc) Min() float64 { return a.min }

// Max returns the largest sample (−Inf for none).
func (a *Acc) Max() float64 { return a.max }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation; it panics unless samples were kept.
func (a *Acc) Quantile(q float64) float64 {
	if !a.keep {
		panic("stats: quantile requested but samples not kept")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g outside [0,1]", q))
	}
	if len(a.samples) == 0 {
		return math.NaN()
	}
	xs := append([]float64(nil), a.samples...)
	sort.Float64s(xs)
	pos := q * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// Summary formats "mean / max (n)" for tables.
func (a *Acc) Summary() string {
	if a.n == 0 {
		return "-"
	}
	return fmt.Sprintf("%.4f / %.4f (n=%d)", a.Mean(), a.Max(), a.n)
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccBasics(t *testing.T) {
	a := NewAcc(true)
	for _, x := range []float64{1, 2, 3, 4} {
		a.Add(x)
	}
	if a.N() != 4 {
		t.Errorf("N = %d, want 4", a.N())
	}
	if a.Mean() != 2.5 {
		t.Errorf("Mean = %g, want 2.5", a.Mean())
	}
	if a.Min() != 1 || a.Max() != 4 {
		t.Errorf("Min/Max = %g/%g", a.Min(), a.Max())
	}
	// Var of {1,2,3,4} = 5/3.
	if math.Abs(a.Var()-5.0/3) > 1e-12 {
		t.Errorf("Var = %g, want 5/3", a.Var())
	}
	if math.Abs(a.Quantile(0.5)-2.5) > 1e-12 {
		t.Errorf("median = %g, want 2.5", a.Quantile(0.5))
	}
	if a.Quantile(0) != 1 || a.Quantile(1) != 4 {
		t.Errorf("extreme quantiles wrong")
	}
}

func TestAccEmpty(t *testing.T) {
	a := NewAcc(false)
	if a.Mean() != 0 || a.Var() != 0 || a.N() != 0 {
		t.Error("empty accumulator not zeroed")
	}
	if a.Summary() != "-" {
		t.Errorf("Summary = %q, want -", a.Summary())
	}
}

func TestQuantilePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("quantile without samples accepted")
			}
		}()
		NewAcc(false).Quantile(0.5)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("quantile out of range accepted")
			}
		}()
		NewAcc(true).Quantile(1.5)
	}()
}

func TestPropertyWelfordMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		a := NewAcc(false)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
			a.Add(xs[i])
		}
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		var v float64
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(n - 1)
		return math.Abs(a.Mean()-mean) < 1e-9 && math.Abs(a.Var()-v) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAcc(true)
		for i := 0; i < 30; i++ {
			a.Add(rng.Float64() * 100)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := a.Quantile(q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

package dag

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"storagesched/internal/model"
)

// diamond builds the 4-node diamond 0 -> {1,2} -> 3 with unit times.
func diamond() *Graph {
	g := New(2, []model.Time{1, 2, 3, 1}, []model.Mem{1, 1, 1, 1})
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	return g
}

func TestAddEdgeAndAdjacency(t *testing.T) {
	g := diamond()
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("adjacency wrong for edge (0,1)")
	}
	g.AddEdge(0, 1) // duplicate must be a no-op
	if g.NumEdges() != 4 {
		t.Errorf("duplicate edge changed count: %d", g.NumEdges())
	}
	if got := g.Preds(3); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Preds(3) = %v, want [1 2]", got)
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New(1, []model.Time{1}, []model.Mem{0})
	for _, fn := range []func(){
		func() { g.AddEdge(0, 0) },
		func() { g.AddEdge(0, 5) },
		func() { g.AddEdge(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	g := diamond()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := make([]int, g.N())
	for i, v := range order {
		pos[v] = i
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Succs(u) {
			if pos[u] >= pos[v] {
				t.Errorf("topological order violated: %d before %d", v, u)
			}
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := New(1, []model.Time{1, 1, 1}, []model.Mem{0, 0, 0})
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, err := g.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted a cyclic graph")
	}
}

func TestValidateRejectsBadValues(t *testing.T) {
	g := New(0, []model.Time{1}, []model.Mem{0})
	if err := g.Validate(); err == nil {
		t.Error("m=0 accepted")
	}
	g2 := New(1, []model.Time{0}, []model.Mem{0})
	if err := g2.Validate(); err == nil {
		t.Error("p=0 accepted")
	}
	g3 := New(1, []model.Time{1}, []model.Mem{-1})
	if err := g3.Validate(); err == nil {
		t.Error("s<0 accepted")
	}
}

func TestLevelsAndCriticalPathDiamond(t *testing.T) {
	g := diamond()
	top, err := g.TopLevels()
	if err != nil {
		t.Fatalf("TopLevels: %v", err)
	}
	want := []model.Time{0, 1, 1, 4} // task 3 waits for 0(1)+2(3)
	for i := range want {
		if top[i] != want[i] {
			t.Errorf("top[%d] = %d, want %d", i, top[i], want[i])
		}
	}
	bottom, err := g.BottomLevels()
	if err != nil {
		t.Fatalf("BottomLevels: %v", err)
	}
	wantB := []model.Time{5, 3, 4, 1} // 0: 1+3+1
	for i := range wantB {
		if bottom[i] != wantB[i] {
			t.Errorf("bottom[%d] = %d, want %d", i, bottom[i], wantB[i])
		}
	}
	cp, err := g.CriticalPath()
	if err != nil {
		t.Fatalf("CriticalPath: %v", err)
	}
	if cp != 5 {
		t.Errorf("CriticalPath = %d, want 5", cp)
	}
	nodes, err := g.CriticalPathNodes()
	if err != nil {
		t.Fatalf("CriticalPathNodes: %v", err)
	}
	var sum model.Time
	for _, v := range nodes {
		sum += g.P[v]
	}
	if sum != cp {
		t.Errorf("critical path node sum = %d, want %d", sum, cp)
	}
	for k := 1; k < len(nodes); k++ {
		if !g.HasEdge(nodes[k-1], nodes[k]) {
			t.Errorf("critical path not a chain: no edge %d->%d", nodes[k-1], nodes[k])
		}
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond()
	if src := g.Sources(); len(src) != 1 || src[0] != 0 {
		t.Errorf("Sources = %v, want [0]", src)
	}
	if snk := g.Sinks(); len(snk) != 1 || snk[0] != 3 {
		t.Errorf("Sinks = %v, want [3]", snk)
	}
}

func TestTransitiveClosure(t *testing.T) {
	g := diamond()
	reach, err := g.TransitiveClosure()
	if err != nil {
		t.Fatalf("TransitiveClosure: %v", err)
	}
	if !Reachable(reach, 0, 3) {
		t.Error("0 should reach 3")
	}
	if Reachable(reach, 1, 2) || Reachable(reach, 3, 0) {
		t.Error("spurious reachability")
	}
	if got := CountReachable(reach, 0); got != 3 {
		t.Errorf("CountReachable(0) = %d, want 3", got)
	}
}

func TestTransitiveReduction(t *testing.T) {
	g := diamond()
	g.AddEdge(0, 3) // redundant: 0 -> 1 -> 3
	red, err := g.TransitiveReduction()
	if err != nil {
		t.Fatalf("TransitiveReduction: %v", err)
	}
	if red.HasEdge(0, 3) {
		t.Error("redundant edge (0,3) survived reduction")
	}
	if red.NumEdges() != 4 {
		t.Errorf("reduced edges = %d, want 4", red.NumEdges())
	}
	// Reduction preserves reachability.
	r1, _ := g.TransitiveClosure()
	r2, _ := red.TransitiveClosure()
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if Reachable(r1, u, v) != Reachable(r2, u, v) {
				t.Errorf("reduction changed reachability %d->%d", u, v)
			}
		}
	}
}

func TestLevelsPartition(t *testing.T) {
	g := diamond()
	levels, err := g.Levels()
	if err != nil {
		t.Fatalf("Levels: %v", err)
	}
	if len(levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(levels))
	}
	if len(levels[0]) != 1 || levels[0][0] != 0 {
		t.Errorf("level 0 = %v, want [0]", levels[0])
	}
	if len(levels[1]) != 2 {
		t.Errorf("level 1 = %v, want two nodes", levels[1])
	}
}

func TestWriteDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := diamond().WriteDOT(&buf, "test"); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "n0 -> n1", "n2 -> n3", "p=1 s=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := diamond()
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Error("Clone shares adjacency with original")
	}
}

func TestFromInstanceEdgeless(t *testing.T) {
	in := model.NewInstance(3, []model.Time{5, 6}, []model.Mem{1, 2})
	g := FromInstance(in)
	if g.NumEdges() != 0 || g.M != 3 || g.N() != 2 {
		t.Errorf("FromInstance wrong shape")
	}
	cp, _ := g.CriticalPath()
	if cp != 6 {
		t.Errorf("critical path of edgeless graph = %d, want max p = 6", cp)
	}
}

// randomDAG builds a random order-DAG: nodes 0..n-1, arcs only from
// lower to higher ids with probability q.
func randomDAG(rng *rand.Rand, maxN int, q float64) *Graph {
	n := 2 + rng.Intn(maxN)
	p := make([]model.Time, n)
	s := make([]model.Mem, n)
	for i := range p {
		p[i] = model.Time(1 + rng.Intn(20))
		s[i] = model.Mem(rng.Intn(20))
	}
	g := New(1+rng.Intn(6), p, s)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < q {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestPropertyTopoOrderValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 30, 0.2)
		order, err := g.TopoOrder()
		if err != nil || len(order) != g.N() {
			return false
		}
		pos := make([]int, g.N())
		for i, v := range order {
			pos[v] = i
		}
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Succs(u) {
				if pos[u] >= pos[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCriticalPathDominatesSampledChains(t *testing.T) {
	// Any random directed walk's processing sum is at most the
	// critical-path length.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 25, 0.3)
		cp, err := g.CriticalPath()
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			v := rng.Intn(g.N())
			sum := g.P[v]
			for len(g.Succs(v)) > 0 {
				v = g.Succs(v)[rng.Intn(len(g.Succs(v)))]
				sum += g.P[v]
			}
			if sum > cp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTopBottomConsistent(t *testing.T) {
	// For every node, top[v] + bottom[v] <= critical path, with
	// equality on at least one node.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 25, 0.25)
		top, err1 := g.TopLevels()
		bottom, err2 := g.BottomLevels()
		cp, err3 := g.CriticalPath()
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		hit := false
		for v := 0; v < g.N(); v++ {
			if top[v]+bottom[v] > cp {
				return false
			}
			if top[v]+bottom[v] == cp {
				hit = true
			}
		}
		return hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertyReductionPreservesClosure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 18, 0.35)
		red, err := g.TransitiveReduction()
		if err != nil {
			return false
		}
		if red.NumEdges() > g.NumEdges() {
			return false
		}
		r1, _ := g.TransitiveClosure()
		r2, _ := red.TransitiveClosure()
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if Reachable(r1, u, v) != Reachable(r2, u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

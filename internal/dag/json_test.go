package dag

import (
	"bytes"
	"strings"
	"testing"

	"storagesched/internal/model"
)

func TestGraphJSONRoundTrip(t *testing.T) {
	g := New(3, []model.Time{4, 2, 7, 1}, []model.Mem{1, 0, 5, 2})
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)

	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadGraphJSON(&buf)
	if err != nil {
		t.Fatalf("ReadGraphJSON: %v", err)
	}
	if got.M != g.M || got.N() != g.N() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: m=%d n=%d e=%d, want m=%d n=%d e=%d",
			got.M, got.N(), got.NumEdges(), g.M, g.N(), g.NumEdges())
	}
	for i := 0; i < g.N(); i++ {
		if got.P[i] != g.P[i] || got.S[i] != g.S[i] {
			t.Errorf("node %d: (p,s) = (%d,%d), want (%d,%d)", i, got.P[i], got.S[i], g.P[i], g.S[i])
		}
	}
	for _, e := range [][2]int{{0, 2}, {1, 2}, {2, 3}} {
		if !got.HasEdge(e[0], e[1]) {
			t.Errorf("edge %v lost in round trip", e)
		}
	}
}

func TestGraphJSONEdgelessRoundTrip(t *testing.T) {
	g := New(2, []model.Time{1, 2}, []model.Mem{3, 4})
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The edges array must be present (not null) so the format is
	// self-describing even for independent tasks.
	if !strings.Contains(buf.String(), `"edges": []`) {
		t.Errorf("edgeless graph encodes without an edges array:\n%s", buf.String())
	}
	got, err := ReadGraphJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 0 || got.N() != 2 {
		t.Errorf("round trip: n=%d e=%d", got.N(), got.NumEdges())
	}
}

func TestReadGraphJSONErrors(t *testing.T) {
	cases := map[string]string{
		"not json":          `{`,
		"edge out of range": `{"m":2,"tasks":[{"p":1,"s":0}],"edges":[[0,5]]}`,
		"negative node":     `{"m":2,"tasks":[{"p":1,"s":0},{"p":1,"s":0}],"edges":[[-1,0]]}`,
		"self-loop":         `{"m":2,"tasks":[{"p":1,"s":0}],"edges":[[0,0]]}`,
		"cycle":             `{"m":2,"tasks":[{"p":1,"s":0},{"p":1,"s":0}],"edges":[[0,1],[1,0]]}`,
		"zero p":            `{"m":2,"tasks":[{"p":0,"s":0}],"edges":[]}`,
		"negative s":        `{"m":2,"tasks":[{"p":1,"s":-1}],"edges":[]}`,
		"no processors":     `{"m":0,"tasks":[{"p":1,"s":0}],"edges":[]}`,
	}
	for name, doc := range cases {
		if _, err := ReadGraphJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted %s", name, doc)
		}
	}
}

// TestReadGraphJSONIDContract pins the ID semantics shared with
// ReadInstanceJSON: all-zero IDs are positional, any nonzero ID makes
// the file explicit and a reordered file is an error — the edge list
// is positional, so accepting it would decode a silently wrong DAG.
func TestReadGraphJSONIDContract(t *testing.T) {
	implicit := `{"m":2,"tasks":[{"p":1,"s":0},{"p":2,"s":1}],"edges":[[0,1]]}`
	g, err := ReadGraphJSON(strings.NewReader(implicit))
	if err != nil {
		t.Fatalf("implicit IDs rejected: %v", err)
	}
	if !g.HasEdge(0, 1) {
		t.Error("implicit-ID graph lost its edge")
	}
	explicit := `{"m":2,"tasks":[{"id":0,"p":1,"s":0},{"id":1,"p":2,"s":1}],"edges":[[0,1]]}`
	if _, err := ReadGraphJSON(strings.NewReader(explicit)); err != nil {
		t.Fatalf("explicit in-order IDs rejected: %v", err)
	}
	reordered := `{"m":2,"tasks":[{"id":1,"p":1,"s":0},{"id":0,"p":2,"s":1}],"edges":[[0,1]]}`
	if _, err := ReadGraphJSON(strings.NewReader(reordered)); err == nil {
		t.Error("reordered task IDs accepted; edges would bind to the wrong tasks")
	}
}

// Package dag provides the directed-acyclic-graph substrate for the
// precedence-constrained problem P | p_j, s_j, prec | Cmax, Mmax of
// Section 5 of the paper. A Graph carries per-task processing times and
// storage sizes together with precedence arcs, and offers the standard
// machinery list scheduling needs: cycle detection, topological orders,
// top/bottom levels and the critical path (the |CP| bound of Lemma 5).
package dag

import (
	"fmt"
	"sort"

	"storagesched/internal/model"
)

// Graph is a task DAG. Node i has processing time P[i] and storage size
// S[i]; an arc u -> v means v cannot start before u completes
// (u ∈ pred(v)).
type Graph struct {
	M int // number of processors the instance targets

	P []model.Time
	S []model.Mem

	preds [][]int // preds[v]: predecessors of v, sorted
	succs [][]int // succs[u]: successors of u, sorted
}

// New creates a DAG with n nodes and no arcs.
func New(m int, p []model.Time, s []model.Mem) *Graph {
	if len(p) != len(s) {
		panic(fmt.Sprintf("dag: len(p)=%d != len(s)=%d", len(p), len(s)))
	}
	n := len(p)
	g := &Graph{
		M:     m,
		P:     append([]model.Time(nil), p...),
		S:     append([]model.Mem(nil), s...),
		preds: make([][]int, n),
		succs: make([][]int, n),
	}
	return g
}

// FromInstance builds an edgeless DAG from an independent-task
// instance; RLS on such a graph is exactly the independent-task variant
// of Section 5.2.
func FromInstance(in *model.Instance) *Graph {
	return New(in.M, in.P(), in.S())
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.P) }

// AddEdge inserts the arc u -> v. Duplicate arcs are ignored. It panics
// on out-of-range nodes or self-loops; acyclicity is checked by
// Validate, not per-edge.
func (g *Graph) AddEdge(u, v int) {
	if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
		panic(fmt.Sprintf("dag: edge (%d,%d) out of range [0,%d)", u, v, g.N()))
	}
	if u == v {
		panic(fmt.Sprintf("dag: self-loop on node %d", u))
	}
	if containsSorted(g.succs[u], v) {
		return
	}
	g.succs[u] = insertSorted(g.succs[u], v)
	g.preds[v] = insertSorted(g.preds[v], u)
}

func containsSorted(xs []int, x int) bool {
	i := sort.SearchInts(xs, x)
	return i < len(xs) && xs[i] == x
}

func insertSorted(xs []int, x int) []int {
	i := sort.SearchInts(xs, x)
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = x
	return xs
}

// Preds returns the predecessors of v (shared slice; do not mutate).
func (g *Graph) Preds(v int) []int { return g.preds[v] }

// Succs returns the successors of u (shared slice; do not mutate).
func (g *Graph) Succs(u int) []int { return g.succs[u] }

// PredLists returns the full predecessor table, suitable for
// model.Schedule.Validate.
func (g *Graph) PredLists() [][]int { return g.preds }

// NumEdges returns the number of arcs.
func (g *Graph) NumEdges() int {
	e := 0
	for _, ss := range g.succs {
		e += len(ss)
	}
	return e
}

// Validate checks m >= 1, p_i > 0, s_i >= 0 and acyclicity.
func (g *Graph) Validate() error {
	if g.M < 1 {
		return fmt.Errorf("dag: m = %d, need m >= 1", g.M)
	}
	for i := range g.P {
		if g.P[i] <= 0 {
			return fmt.Errorf("dag: node %d has p = %d, need p > 0", i, g.P[i])
		}
		if g.S[i] < 0 {
			return fmt.Errorf("dag: node %d has s = %d, need s >= 0", i, g.S[i])
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a topological order (Kahn's algorithm, smallest
// node id first, so the order is deterministic) or an error if the
// graph has a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	n := g.N()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.preds[v])
	}
	// Min-heap on node id keeps the order deterministic.
	heap := &intHeap{}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			heap.push(v)
		}
	}
	order := make([]int, 0, n)
	for heap.len() > 0 {
		u := heap.pop()
		order = append(order, u)
		for _, v := range g.succs[u] {
			indeg[v]--
			if indeg[v] == 0 {
				heap.push(v)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("dag: graph has a cycle (%d of %d nodes ordered)", len(order), n)
	}
	return order, nil
}

// intHeap is a tiny binary min-heap of ints (avoids container/heap
// interface overhead in hot loops).
type intHeap struct{ xs []int }

func (h *intHeap) len() int { return len(h.xs) }

func (h *intHeap) push(x int) {
	h.xs = append(h.xs, x)
	i := len(h.xs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.xs[parent] <= h.xs[i] {
			break
		}
		h.xs[parent], h.xs[i] = h.xs[i], h.xs[parent]
		i = parent
	}
}

func (h *intHeap) pop() int {
	top := h.xs[0]
	last := len(h.xs) - 1
	h.xs[0] = h.xs[last]
	h.xs = h.xs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.xs) && h.xs[l] < h.xs[smallest] {
			smallest = l
		}
		if r < len(h.xs) && h.xs[r] < h.xs[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.xs[i], h.xs[smallest] = h.xs[smallest], h.xs[i]
		i = smallest
	}
	return top
}

// TopLevels returns, for each node, the length of the longest chain of
// processing time ending just before the node starts (the earliest
// possible start time with unlimited processors).
func (g *Graph) TopLevels() ([]model.Time, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	top := make([]model.Time, g.N())
	for _, v := range order {
		for _, u := range g.preds[v] {
			if c := top[u] + g.P[u]; c > top[v] {
				top[v] = c
			}
		}
	}
	return top, nil
}

// BottomLevels returns, for each node, the length of the longest chain
// of processing time starting at (and including) the node. The maximum
// bottom level is the critical-path length.
func (g *Graph) BottomLevels() ([]model.Time, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	bottom := make([]model.Time, g.N())
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		bottom[v] = g.P[v]
		for _, w := range g.succs[v] {
			if c := g.P[v] + bottom[w]; c > bottom[v] {
				bottom[v] = c
			}
		}
	}
	return bottom, nil
}

// CriticalPath returns the length of the longest chain of processing
// times in the graph — the |CP| upper bound in the proof of Lemma 5 and
// a lower bound on C*max.
func (g *Graph) CriticalPath() (model.Time, error) {
	bottom, err := g.BottomLevels()
	if err != nil {
		return 0, err
	}
	var cp model.Time
	for _, b := range bottom {
		if b > cp {
			cp = b
		}
	}
	return cp, nil
}

// CriticalPathNodes returns one longest chain as a node sequence.
func (g *Graph) CriticalPathNodes() ([]int, error) {
	bottom, err := g.BottomLevels()
	if err != nil {
		return nil, err
	}
	// Start from a source node with maximal bottom level.
	best := -1
	for v := 0; v < g.N(); v++ {
		if len(g.preds[v]) != 0 {
			continue
		}
		if best == -1 || bottom[v] > bottom[best] {
			best = v
		}
	}
	if best == -1 && g.N() > 0 {
		return nil, fmt.Errorf("dag: no source node (cycle?)")
	}
	var path []int
	for v := best; v != -1; {
		path = append(path, v)
		next := -1
		for _, w := range g.succs[v] {
			if bottom[w] == bottom[v]-g.P[v] {
				next = w
				break
			}
		}
		v = next
	}
	return path, nil
}

// TotalWork returns Σ p_i.
func (g *Graph) TotalWork() model.Time {
	var w model.Time
	for _, p := range g.P {
		w += p
	}
	return w
}

// TotalMem returns Σ s_i.
func (g *Graph) TotalMem() model.Mem {
	var s model.Mem
	for _, x := range g.S {
		s += x
	}
	return s
}

// MaxS returns max_i s_i (0 for an empty graph).
func (g *Graph) MaxS() model.Mem {
	var mx model.Mem
	for _, x := range g.S {
		if x > mx {
			mx = x
		}
	}
	return mx
}

// Sources returns the nodes with no predecessors, ascending.
func (g *Graph) Sources() []int {
	var src []int
	for v := 0; v < g.N(); v++ {
		if len(g.preds[v]) == 0 {
			src = append(src, v)
		}
	}
	return src
}

// Sinks returns the nodes with no successors, ascending.
func (g *Graph) Sinks() []int {
	var snk []int
	for v := 0; v < g.N(); v++ {
		if len(g.succs[v]) == 0 {
			snk = append(snk, v)
		}
	}
	return snk
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.M, g.P, g.S)
	for u := range g.succs {
		c.succs[u] = append([]int(nil), g.succs[u]...)
		c.preds[u] = append([]int(nil), g.preds[u]...)
	}
	return c
}

// HasEdge reports whether the arc u -> v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
		return false
	}
	return containsSorted(g.succs[u], v)
}

package dag

import (
	"fmt"
	"io"
	"math/bits"
)

// TransitiveClosure returns reach, where reach[u][v>>6]&(1<<(v&63)) != 0
// iff there is a directed path from u to v (u != v). Bitset rows keep
// the closure affordable for the few-thousand-node graphs used in the
// experiments.
func (g *Graph) TransitiveClosure() ([][]uint64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.N()
	words := (n + 63) / 64
	reach := make([][]uint64, n)
	for i := range reach {
		reach[i] = make([]uint64, words)
	}
	// Process in reverse topological order: reach[u] = union over
	// successors v of ({v} ∪ reach[v]).
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		row := reach[u]
		for _, v := range g.succs[u] {
			row[v>>6] |= 1 << (uint(v) & 63)
			vrow := reach[v]
			for w := range row {
				row[w] |= vrow[w]
			}
		}
	}
	return reach, nil
}

// Reachable reports whether v is reachable from u via the closure rows
// produced by TransitiveClosure.
func Reachable(reach [][]uint64, u, v int) bool {
	return reach[u][v>>6]&(1<<(uint(v)&63)) != 0
}

// CountReachable returns the number of nodes reachable from u.
func CountReachable(reach [][]uint64, u int) int {
	c := 0
	for _, w := range reach[u] {
		c += bits.OnesCount64(w)
	}
	return c
}

// TransitiveReduction returns a copy of the graph with every redundant
// arc removed: an arc u -> v is redundant if some other successor of u
// reaches v. The reduction preserves the precedence relation, hence all
// schedules and bounds.
func (g *Graph) TransitiveReduction() (*Graph, error) {
	reach, err := g.TransitiveClosure()
	if err != nil {
		return nil, err
	}
	red := New(g.M, g.P, g.S)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.succs[u] {
			redundant := false
			for _, w := range g.succs[u] {
				if w != v && Reachable(reach, w, v) {
					redundant = true
					break
				}
			}
			if !redundant {
				red.AddEdge(u, v)
			}
		}
	}
	return red, nil
}

// WriteDOT emits the graph in Graphviz DOT format, labelling each node
// with its processing time and storage size.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "dag"
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=box];\n", name); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%d\\np=%d s=%d\"];\n", v, v, g.P[v], g.S[v]); err != nil {
			return err
		}
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.succs[u] {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", u, v); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// Levels partitions nodes by top-level depth measured in hops (not
// processing time): level 0 holds sources, level k+1 holds nodes whose
// deepest predecessor sits at level k. Useful for layered rendering and
// for the layered random generator's self-checks.
func (g *Graph) Levels() ([][]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	depth := make([]int, g.N())
	maxDepth := 0
	for _, v := range order {
		for _, u := range g.preds[v] {
			if d := depth[u] + 1; d > depth[v] {
				depth[v] = d
			}
		}
		if depth[v] > maxDepth {
			maxDepth = depth[v]
		}
	}
	levels := make([][]int, maxDepth+1)
	for _, v := range order {
		levels[depth[v]] = append(levels[depth[v]], v)
	}
	return levels, nil
}

package dag_test

// Native fuzz target for the task-DAG JSON reader (the instance format
// plus a positional edge list), which is fed untrusted *.graph.json
// files by schedcli. The contract under fuzzing: never panic — edge
// indexes out of range, self-loops and cycles must all surface as
// errors — and every accepted graph must survive the canonical round
// trip with an identical cache serialization.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"storagesched/internal/cache"
	"storagesched/internal/dag"
)

// seedCorpus mirrors the helper of the same name in the model fuzz
// test: every committed *.json under the smoke testdata plus inline
// edge cases.
func seedCorpus(f *testing.F, literals []string) {
	f.Helper()
	names, err := filepath.Glob(filepath.Join("..", "..", "cmd", "schedcli", "testdata", "smoke", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, lit := range literals {
		f.Add([]byte(lit))
	}
}

func FuzzReadGraphJSON(f *testing.F) {
	seedCorpus(f, []string{
		`{"m":1,"tasks":[{"p":1,"s":0}],"edges":[]}`,
		`{"m":2,"tasks":[{"p":1,"s":1},{"p":2,"s":2}],"edges":[[0,1]]}`,
		`{"m":2,"tasks":[{"p":1,"s":1},{"p":2,"s":2}],"edges":[[1,0],[0,1]]}`, // cycle
		`{"m":2,"tasks":[{"p":1,"s":1}],"edges":[[0,0]]}`,                     // self-loop
		`{"m":2,"tasks":[{"p":1,"s":1}],"edges":[[0,7]]}`,                     // out of range
		`{"m":2,"tasks":[{"p":1,"s":1}],"edges":[[-1,0]]}`,
		`{"m":2,"tasks":[{"id":1,"p":1,"s":1},{"id":0,"p":1,"s":1}],"edges":[[0,1]]}`, // reordered IDs
		`{}`,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := dag.ReadGraphJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected input; only panics are failures
		}
		canonical := cache.CanonicalGraph(g)

		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted graph failed to encode: %v", err)
		}
		again, err := dag.ReadGraphJSON(&buf)
		if err != nil {
			t.Fatalf("re-encoded graph rejected: %v\ninput: %q", err, data)
		}
		if got := cache.CanonicalGraph(again); !bytes.Equal(got, canonical) {
			t.Fatalf("canonical serialization not stable across a round trip:\n first: %q\nsecond: %q\ninput: %q",
				canonical, got, data)
		}
	})
}

package dag

import (
	"encoding/json"
	"fmt"
	"io"

	"storagesched/internal/model"
)

// graphJSON is the on-disk form of a Graph: the instance fields plus
// an edge list. It extends the instance wire format, so a graph file
// is an instance file with an "edges" array:
//
//	{"m": 2, "tasks": [{"id":0,"p":4,"s":1}, ...], "edges": [[0,1], ...]}
type graphJSON struct {
	M     int          `json:"m"`
	Tasks []model.Task `json:"tasks"`
	Edges [][2]int     `json:"edges"`
}

// WriteJSON encodes the graph to w with indentation.
func (g *Graph) WriteJSON(w io.Writer) error {
	gj := graphJSON{M: g.M, Tasks: make([]model.Task, g.N()), Edges: [][2]int{}}
	for i := range gj.Tasks {
		gj.Tasks[i] = model.Task{ID: i, P: g.P[i], S: g.S[i]}
	}
	for u := range g.succs {
		for _, v := range g.succs[u] {
			gj.Edges = append(gj.Edges, [2]int{u, v})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(gj)
}

// ReadGraphJSON decodes a task DAG from r and validates it (node
// ranges, no self-loops, positive processing times, acyclicity).
// Malformed edges are reported as errors, never panics — the format is
// consumed by CLI tools fed untrusted files.
func ReadGraphJSON(r io.Reader) (*Graph, error) {
	var gj graphJSON
	if err := json.NewDecoder(r).Decode(&gj); err != nil {
		return nil, fmt.Errorf("dag: decoding graph: %w", err)
	}
	n := len(gj.Tasks)
	// Same ID contract as ReadInstanceJSON: files with implicit IDs
	// (all zero) are positional; any nonzero ID makes the file
	// explicit, and every ID must then match its index — the edge list
	// below refers to tasks by position, so a reordered file would
	// otherwise decode into a silently wrong DAG.
	implicit := true
	for _, t := range gj.Tasks {
		if t.ID != 0 {
			implicit = false
			break
		}
	}
	if !implicit {
		for i, t := range gj.Tasks {
			if t.ID != i {
				return nil, fmt.Errorf("dag: task %d has ID %d, want %d (edges are positional)", i, t.ID, i)
			}
		}
	}
	p := make([]model.Time, n)
	s := make([]model.Mem, n)
	for i, t := range gj.Tasks {
		p[i] = t.P
		s[i] = t.S
	}
	g := New(gj.M, p, s)
	for k, e := range gj.Edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("dag: edge %d (%d -> %d) out of range [0, %d)", k, u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("dag: edge %d is a self-loop on node %d", k, u)
		}
		g.AddEdge(u, v)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

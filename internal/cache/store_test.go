package cache

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestDirStoreRoundTrip(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := testKey(1), testKey(2)

	if _, ok := store.Get(k1); ok {
		t.Fatal("Get on empty store hit")
	}
	if _, ok := store.Stat(k1); ok {
		t.Fatal("Stat on empty store hit")
	}
	if err := store.Put(k1, []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(k2, []byte("beta-longer")); err != nil {
		t.Fatal(err)
	}
	if val, ok := store.Get(k1); !ok || !bytes.Equal(val, []byte("alpha")) {
		t.Fatalf("Get(k1) = %q, %v", val, ok)
	}
	info, ok := store.Stat(k2)
	if !ok || info.Key != k2 || info.Size != int64(len("beta-longer")) {
		t.Fatalf("Stat(k2) = %+v, %v", info, ok)
	}
	if info.ModTime.IsZero() {
		t.Error("Stat mod time is zero")
	}

	infos, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("List returned %d entries, want 2", len(infos))
	}
	// List is key-ordered: fixed-width hex names sort as the keys do.
	if infos[0].Key.String() > infos[1].Key.String() {
		t.Errorf("List out of key order: %s before %s", infos[0].Key, infos[1].Key)
	}

	// Overwrite is atomic and replaces the value.
	if err := store.Put(k1, []byte("alpha2")); err != nil {
		t.Fatal(err)
	}
	if val, _ := store.Get(k1); !bytes.Equal(val, []byte("alpha2")) {
		t.Errorf("after overwrite Get(k1) = %q", val)
	}

	if err := store.Delete(k1); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get(k1); ok {
		t.Error("Get after Delete hit")
	}
	// Deleting an absent blob is success (sweeps race benignly).
	if err := store.Delete(k1); err != nil {
		t.Errorf("second Delete: %v", err)
	}
}

func TestDirStoreListSkipsStraysAndKeepsEmptyFiles(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	if err := store.Put(k, []byte("value")); err != nil {
		t.Fatal(err)
	}
	// Strays that must not be listed: a tmp intermediate, a wrong-length
	// name, a mixed-case alias of a valid key, a subdirectory.
	for _, name := range []string{"put-123.tmp", "short.json", "README"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	upper := strings.ToUpper(testKey(2).String()) + blobSuffix
	if err := os.WriteFile(filepath.Join(dir, upper), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, testKey(3).String()+blobSuffix), 0o755); err != nil {
		t.Fatal(err)
	}
	// A truncated-to-empty entry is listed (size 0, so gc can collect
	// it) but Get reports a miss.
	empty := testKey(4)
	if err := os.WriteFile(DirStore{dir: dir}.path(empty), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	infos, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	got := map[Key]int64{}
	for _, info := range infos {
		got[info.Key] = info.Size
	}
	if len(got) != 2 || got[k] != int64(len("value")) {
		t.Fatalf("List = %v, want exactly {k:5, empty:0}", infos)
	}
	if size, ok := got[empty]; !ok || size != 0 {
		t.Errorf("empty entry listed as %d, %v; want 0, true", size, ok)
	}
	if _, ok := store.Get(empty); ok {
		t.Error("Get on empty blob hit")
	}
}

func TestDirStoreSweepOrphans(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	stale := filepath.Join(dir, "put-stale1.tmp")
	fresh := filepath.Join(dir, "put-fresh1.tmp")
	for _, name := range []string{stale, fresh} {
		if err := os.WriteFile(name, []byte("partial"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Chtimes(stale, now.Add(-2*time.Hour), now.Add(-2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	if err := store.Put(k, []byte("value")); err != nil {
		t.Fatal(err)
	}

	removed, err := store.SweepOrphans(now.Add(-time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("SweepOrphans removed %d, want 1", removed)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Error("stale tmp survived the sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("in-flight (fresh) tmp was collected")
	}
	if _, ok := store.Get(k); !ok {
		t.Error("real entry lost to the tmp sweep")
	}
}

func TestNewDirStoreRejectsEmptyAndBadDir(t *testing.T) {
	if _, err := NewDirStore(""); err == nil {
		t.Error("NewDirStore(\"\") succeeded")
	}
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDirStore(filepath.Join(file, "sub")); err == nil {
		t.Error("NewDirStore under a file succeeded")
	}
}

// memStore is the pluggability proof: a map-backed BlobStore (no
// TmpSweeper — a remote store has no tmp files) driving the same cache
// and lifecycle paths DirStore does.
type memStore struct {
	m map[Key][]byte
	t map[Key]time.Time
}

func newMemStore() *memStore {
	return &memStore{m: map[Key][]byte{}, t: map[Key]time.Time{}}
}

func (s *memStore) Get(key Key) ([]byte, bool) {
	val, ok := s.m[key]
	return val, ok && len(val) > 0
}

func (s *memStore) Put(key Key, val []byte) error {
	s.m[key] = append([]byte(nil), val...)
	s.t[key] = s.t[key].Add(time.Second) // deterministic, strictly advancing per key
	return nil
}

func (s *memStore) List() ([]BlobInfo, error) {
	var infos []BlobInfo
	for key, val := range s.m {
		infos = append(infos, BlobInfo{Key: key, Size: int64(len(val)), ModTime: s.t[key]})
	}
	return infos, nil
}

func (s *memStore) Stat(key Key) (BlobInfo, bool) {
	val, ok := s.m[key]
	if !ok {
		return BlobInfo{}, false
	}
	return BlobInfo{Key: key, Size: int64(len(val)), ModTime: s.t[key]}, true
}

func (s *memStore) Delete(key Key) error {
	delete(s.m, key)
	delete(s.t, key)
	return nil
}

func TestCustomBlobStoreBacksTheCache(t *testing.T) {
	store := newMemStore()
	c, err := New(Config{Store: store, MemEntries: -1}) // disk-only: every Get exercises the store
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	c.Put(k, []byte("via custom store"))
	if val, ok := c.Get(k); !ok || string(val) != "via custom store" {
		t.Fatalf("Get through custom store = %q, %v", val, ok)
	}
	if _, ok := store.m[k]; !ok {
		t.Fatal("value did not land in the custom store")
	}
	// The lifecycle drives the same seam: evict everything by size.
	res, err := c.GC(GCPolicy{MaxBytes: 1, Now: time.Unix(1000, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.EvictedSize != 1 || res.Live != 0 {
		t.Fatalf("GC over custom store = %+v, want 1 evicted, 0 live", res)
	}
	if len(store.m) != 0 {
		t.Error("custom store still holds entries after GC evicted everything")
	}
}

package cache

// Cache lifecycle: the persistent tier used to grow without bound —
// every sweep wrote entries, nothing ever removed them, and a crash
// between CreateTemp and Rename stranded a put-*.tmp file forever.
// GC is the eviction sweep (age cap, then a size cap evicting oldest
// first with a deterministic key tie-break, plus orphaned-tmp
// collection); Verify is the integrity pass (decode every entry,
// delete garbage).
//
// Both are safe to run concurrently with live readers and writers, in
// this process or in others sharing the store: writes are atomic, so
// a swept entry is always either fully present or a miss, and a miss
// just recomputes. Deleting an entry a writer is re-creating races
// benignly — whichever operation lands last wins, and both leave the
// store consistent. The memory tier is deliberately untouched: its
// values are content-addressed and therefore never stale, and it has
// its own entry/byte bounds.

import (
	"fmt"
	"sort"
	"time"
)

// DefaultTmpAge is the orphaned-tmp cutoff when GCPolicy.TmpAge is
// zero: a put-*.tmp this old cannot belong to a live write (writes
// complete in milliseconds), only to a process that died mid-Put.
const DefaultTmpAge = time.Hour

// GCPolicy parameterizes one eviction sweep. The zero value of
// MaxBytes/MaxAge falls back to the cache Config's lifecycle caps;
// negative values explicitly unbound the axis for this sweep.
type GCPolicy struct {
	// MaxBytes caps the persistent tier's total entry bytes; the
	// sweep evicts oldest-first (mod time, then key) until under it.
	// 0 falls back to Config.MaxBytes; <= 0 after fallback leaves the
	// size axis unbounded.
	MaxBytes int64

	// MaxAge evicts entries last written longer than this ago,
	// regardless of size. 0 falls back to Config.MaxAge; <= 0 after
	// fallback leaves the age axis unbounded.
	MaxAge time.Duration

	// TmpAge is the orphaned-tmp cutoff; 0 means DefaultTmpAge,
	// negative collects every tmp file regardless of age (only safe
	// when no writer is live).
	TmpAge time.Duration

	// Now overrides the sweep's clock — tests plant mtimes and sweep
	// against a pinned instant. Zero means time.Now().
	Now time.Time
}

// GCResult reports what one eviction sweep saw and did.
type GCResult struct {
	// Scanned and ScannedBytes count the entries the sweep listed.
	Scanned      int
	ScannedBytes int64
	// EvictedAge and EvictedSize count entries removed by the age cap
	// and the size cap respectively; EvictedBytes totals both.
	EvictedAge   int
	EvictedSize  int
	EvictedBytes int64
	// TmpRemoved counts orphaned write intermediates collected.
	TmpRemoved int
	// Live and LiveBytes describe what remains.
	Live      int
	LiveBytes int64
}

// GC runs one eviction sweep over the persistent tier: collect
// orphaned tmps, evict entries past the age cap, then evict
// oldest-first (deterministic key tie-break) until under the size
// cap. A cache without a persistent tier sweeps nothing. Entries that
// vanish or fail to delete mid-sweep are tolerated — concurrent
// writers and competing sweeps race benignly.
func (c *Cache) GC(pol GCPolicy) (GCResult, error) {
	var res GCResult
	if c == nil {
		return res, nil
	}
	st := c.blob()
	if st == nil {
		return res, nil
	}
	defer c.gcRuns.Add(1)
	now := pol.Now
	if now.IsZero() {
		now = time.Now()
	}
	if sw, ok := st.(TmpSweeper); ok {
		tmpAge := pol.TmpAge
		if tmpAge == 0 {
			tmpAge = DefaultTmpAge
		}
		if tmpAge < 0 {
			// Collect everything: a far-future cutoff beats any mtime,
			// including tmps written while this sweep runs.
			tmpAge = -(1 << 62)
		}
		removed, err := sw.SweepOrphans(now.Add(-tmpAge))
		res.TmpRemoved = removed
		c.gcTmpRemoved.Add(int64(removed))
		if err != nil {
			return res, fmt.Errorf("cache: sweeping orphaned tmps: %w", err)
		}
	}

	maxBytes := pol.MaxBytes
	if maxBytes == 0 {
		maxBytes = c.pol.maxBytes
	}
	maxAge := pol.MaxAge
	if maxAge == 0 {
		maxAge = c.pol.maxAge
	}

	infos, err := st.List()
	if err != nil {
		return res, err
	}
	res.Scanned = len(infos)
	for _, info := range infos {
		res.ScannedBytes += info.Size
	}

	evict := func(info BlobInfo, byAge bool) {
		if st.Delete(info.Key) != nil {
			// The entry stays; count it live below. A persistent
			// delete failure will resurface on the next sweep.
			res.Live++
			res.LiveBytes += info.Size
			return
		}
		if byAge {
			res.EvictedAge++
		} else {
			res.EvictedSize++
		}
		res.EvictedBytes += info.Size
		c.gcEvictions.Add(1)
		c.gcEvictedBytes.Add(info.Size)
	}

	// Age pass: anything last written before the cutoff goes,
	// regardless of the size budget.
	survivors := infos[:0]
	if maxAge > 0 {
		cutoff := now.Add(-maxAge)
		for _, info := range infos {
			if info.ModTime.Before(cutoff) {
				evict(info, true)
				continue
			}
			survivors = append(survivors, info)
		}
	} else {
		survivors = infos
	}

	// Size pass: oldest first, ties broken on the key's hex form so
	// two sweeps of the same state — on any machine — evict the same
	// entries in the same order.
	if maxBytes > 0 {
		sort.Slice(survivors, func(i, j int) bool {
			if !survivors[i].ModTime.Equal(survivors[j].ModTime) {
				return survivors[i].ModTime.Before(survivors[j].ModTime)
			}
			return survivors[i].Key.String() < survivors[j].Key.String()
		})
		total := int64(0)
		for _, info := range survivors {
			total += info.Size
		}
		keep := survivors
		for len(keep) > 0 && total > maxBytes {
			info := keep[0]
			keep = keep[1:]
			total -= info.Size
			evict(info, false)
		}
		survivors = keep
	}

	for _, info := range survivors {
		res.Live++
		res.LiveBytes += info.Size
	}
	return res, nil
}

// VerifyResult reports what one integrity pass saw and did.
type VerifyResult struct {
	// Checked counts entries read and handed to the decoder.
	Checked int
	// Removed and RemovedBytes count garbage entries deleted —
	// unreadable, empty, or failing the decode check.
	Removed      int
	RemovedBytes int64
}

// Verify runs an integrity pass over the persistent tier: every entry
// is read and handed to check; entries that cannot be read (torn or
// empty blobs) or that check rejects are deleted. A nil check keeps
// any readable entry. Like GC, Verify runs safely against live
// traffic: a deleted entry is a future miss, and misses recompute.
//
// check receives the entry's key and raw value; the engine's cached
// front decoder is the canonical choice.
func (c *Cache) Verify(check func(key Key, val []byte) error) (VerifyResult, error) {
	var res VerifyResult
	if c == nil {
		return res, nil
	}
	st := c.blob()
	if st == nil {
		return res, nil
	}
	infos, err := st.List()
	if err != nil {
		return res, err
	}
	for _, info := range infos {
		val, ok := st.Get(info.Key)
		if ok {
			res.Checked++
			if check == nil || check(info.Key, val) == nil {
				continue
			}
		} else if _, still := st.Stat(info.Key); !still {
			// Vanished between List and Get: a concurrent sweep or
			// eviction, not garbage. Nothing to remove.
			continue
		}
		if st.Delete(info.Key) != nil {
			continue
		}
		res.Removed++
		res.RemovedBytes += info.Size
		c.gcVerifyRemoved.Add(1)
	}
	return res, nil
}

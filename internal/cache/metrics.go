package cache

// Metrics export. The cache has kept its own atomic counters since it
// landed; RegisterMetrics exposes them through a metrics.Registry as
// callback collectors, so the scrape path reads the very same atomics
// Stats snapshots — one source of truth, no double accounting, and
// GET /v1/cache/stats and the sched_cache_* scrape families can never
// drift apart (a parity test in internal/serve pins this).

import "storagesched/internal/metrics"

// RegisterMetrics registers the cache's counters on reg as the
// sched_cache_* families, read live at scrape time. Registering a nil
// cache or on a nil registry is a no-op. Registration is first-wins
// per family name (the metrics package's contract), so register at
// most one cache per registry.
func (c *Cache) RegisterMetrics(reg *metrics.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.GaugeFunc("sched_cache_entries",
		"memory-tier entries resident right now",
		func() int64 { return int64(c.Len()) })
	reg.CounterFunc("sched_cache_hits_total",
		"Get calls served from either tier",
		c.hits.Load)
	reg.CounterFunc("sched_cache_mem_hits_total",
		"Get calls served from the memory tier",
		c.memHits.Load)
	reg.CounterFunc("sched_cache_disk_hits_total",
		"Get calls served from the disk tier",
		c.diskHits.Load)
	reg.CounterFunc("sched_cache_misses_total",
		"Get calls served by neither tier",
		c.misses.Load)
	reg.CounterFunc("sched_cache_puts_total",
		"values stored",
		c.puts.Load)
	reg.CounterFunc("sched_cache_evictions_total",
		"memory-tier LRU removals",
		c.evictions.Load)
	reg.CounterFunc("sched_cache_write_errors_total",
		"failed best-effort disk writes (the entry stays absent)",
		c.writeErrors.Load)
	reg.GaugeFunc("sched_cache_mem_bytes",
		"memory-tier resident bytes right now",
		c.MemBytes)
	reg.CounterFunc("sched_cache_gc_runs_total",
		"lifecycle eviction sweeps run",
		c.gcRuns.Load)
	reg.CounterFunc("sched_cache_gc_evicted_entries_total",
		"persistent-tier entries evicted by gc age/size caps",
		c.gcEvictions.Load)
	reg.CounterFunc("sched_cache_gc_evicted_bytes_total",
		"bytes evicted by gc age/size caps",
		c.gcEvictedBytes.Load)
	reg.CounterFunc("sched_cache_gc_tmp_removed_total",
		"orphaned write intermediates collected by gc",
		c.gcTmpRemoved.Load)
	reg.CounterFunc("sched_cache_gc_verify_removed_total",
		"garbage entries deleted by integrity verification",
		c.gcVerifyRemoved.Load)
}

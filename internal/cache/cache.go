// Package cache is a content-addressed store for sweep artifacts.
//
// The paper's experiments are embarrassingly repetitive: the same
// instances and task DAGs are re-swept across runs, grids, seeds and
// machines. This package gives every work item a canonical byte
// serialization, addresses cached values by the SHA-256 of those bytes
// plus a configuration fingerprint, and stores values in two tiers —
// an in-memory LRU and a persistent BlobStore (by default a directory
// of one file per key; any implementation of the interface slots in,
// which is what lets shards on different machines share one store).
//
// Keys are *semantic*: the canonical bytes normalize away everything
// the JSON readers already canonicalize (task IDs are positional,
// names are cosmetic), so two files describing the same instance with
// implicit versus explicit sequential IDs hash equal.
//
// The disk tier is corruption-tolerant by contract: a missing,
// truncated or garbled entry is a miss, never an error — callers
// recompute and overwrite. Writes are atomic (temp file + rename) so
// concurrent readers (shard subprocesses sharing a cache directory)
// never observe a torn entry.
//
// All methods are safe for concurrent use.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"storagesched/internal/dag"
	"storagesched/internal/model"
)

// Key is a content address: SHA-256 over the item's canonical bytes
// and the configuration fingerprint.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (the on-disk file stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Hash64 folds the key to 64 bits — the shard-affinity hash: identical
// items route to identical shards, keeping shard-local caches hot.
func (k Key) Hash64() uint64 { return binary.BigEndian.Uint64(k[:8]) }

// KeyFor addresses a value by canonical item bytes plus an opaque
// configuration fingerprint (the grid, algorithm and tie-break
// selection that determine the value). The two parts are length-framed
// so no concatenation of one can collide with another split.
func KeyFor(canonical []byte, fingerprint string) Key {
	h := sha256.New()
	var frame [8]byte
	binary.BigEndian.PutUint64(frame[:], uint64(len(canonical)))
	h.Write(frame[:])
	h.Write(canonical)
	h.Write([]byte(fingerprint))
	var k Key
	h.Sum(k[:0])
	return k
}

// CanonicalInstance returns the canonical byte serialization of an
// independent-task instance. The encoding is positional: task IDs and
// names are omitted, so any ID labelling the JSON readers accept
// (implicit all-zero IDs or explicit sequential ones) and any cosmetic
// naming serialize — and therefore hash — identically. Only m and the
// (p, s) vectors, which are what every algorithm consumes, contribute.
func CanonicalInstance(in *model.Instance) []byte {
	buf := make([]byte, 0, 16+12*len(in.Tasks))
	buf = append(buf, "inst|m="...)
	buf = strconv.AppendInt(buf, int64(in.M), 10)
	buf = append(buf, "|t="...)
	for i, t := range in.Tasks {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, t.P, 10)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, t.S, 10)
	}
	return buf
}

// CanonicalGraph returns the canonical byte serialization of a task
// DAG: the instance part (positional, ID- and name-invariant like
// CanonicalInstance) plus the sorted arc list. An edgeless graph still
// serializes distinctly from the equivalent instance — Algorithm
// selection differs between the two kinds, so they must never alias.
func CanonicalGraph(g *dag.Graph) []byte {
	n := g.N()
	buf := make([]byte, 0, 24+12*n+8*g.NumEdges())
	buf = append(buf, "graph|m="...)
	buf = strconv.AppendInt(buf, int64(g.M), 10)
	buf = append(buf, "|t="...)
	for i := 0; i < n; i++ {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, g.P[i], 10)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, g.S[i], 10)
	}
	buf = append(buf, "|e="...)
	first := true
	for u := 0; u < n; u++ {
		for _, v := range g.Succs(u) {
			if !first {
				buf = append(buf, ',')
			}
			first = false
			buf = strconv.AppendInt(buf, int64(u), 10)
			buf = append(buf, '>')
			buf = strconv.AppendInt(buf, int64(v), 10)
		}
	}
	return buf
}

// Config parameterizes a Cache.
type Config struct {
	// Dir enables the on-disk tier: one file per key under this
	// directory (created if absent), served through a DirStore. Empty
	// disables it (unless Store supplies another persistent tier).
	Dir string

	// Store, when non-nil, is the persistent tier behind the memory
	// LRU — any BlobStore, not just a directory. It takes precedence
	// over Dir. The cache's contracts (atomic writes, corruption
	// tolerance) hold exactly as far as the store keeps its own.
	Store BlobStore

	// MemEntries bounds the in-memory LRU tier's entry count. 0 means
	// DefaultMemEntries; negative disables the memory tier entirely
	// (store-only, useful when many shard processes share Dir).
	MemEntries int

	// MemBytes bounds the in-memory LRU tier's resident bytes. 0
	// means DefaultMemBytes; negative means no byte bound (entry
	// count alone governs). A single value larger than the budget is
	// never promoted to memory — it is still served from the
	// persistent tier.
	MemBytes int64

	// MaxBytes and MaxAge are the lifecycle defaults a GC sweep with
	// a zero GCPolicy enforces on the persistent tier: total bytes
	// capped at MaxBytes (oldest entries evicted first), entries
	// older than MaxAge evicted regardless. Zero leaves the axis
	// unbounded. They bound nothing by themselves — something must
	// call GC (schedd's background ticker, `schedcli cache gc`).
	MaxBytes int64
	MaxAge   time.Duration
}

// DefaultMemEntries is the memory-tier entry capacity when
// Config.MemEntries is zero.
const DefaultMemEntries = 4096

// DefaultMemBytes is the memory-tier byte budget when Config.MemBytes
// is zero: the entry-count bound alone would admit arbitrarily large
// values (a disk hit used to promote unconditionally), so the byte
// budget is what actually bounds resident memory.
const DefaultMemBytes int64 = 64 << 20

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits and Misses count Get outcomes; Hits = MemHits + DiskHits.
	Hits, Misses int64
	// MemHits and DiskHits attribute hits to their tier (DiskHits
	// counts the persistent BlobStore tier, whatever backs it).
	MemHits, DiskHits int64
	// Puts counts stored values; Evictions counts LRU removals.
	Puts, Evictions int64
	// WriteErrors counts failed best-effort disk writes (the cache
	// stays correct — the entry is simply absent).
	WriteErrors int64
	// MemBytes is the memory tier's resident bytes right now.
	MemBytes int64
	// GCRuns counts lifecycle sweeps (Cache.GC calls).
	GCRuns int64
	// GCEvictions and GCEvictedBytes count persistent-tier entries
	// (and their bytes) removed by lifecycle sweeps' age/size caps.
	GCEvictions, GCEvictedBytes int64
	// GCTmpRemoved counts orphaned write intermediates collected.
	GCTmpRemoved int64
	// GCVerifyRemoved counts garbage entries deleted by Verify.
	GCVerifyRemoved int64
}

// Cache is the two-tier content-addressed store. The zero value is not
// usable; construct with New. A nil *Cache is a valid "caching off"
// value: Get always misses and Put is a no-op.
type Cache struct {
	dir   string    // Dir-configured store location ("" when Store or memory-only)
	store BlobStore // persistent tier; nil falls back to dir (see blob)

	mu       sync.Mutex
	entries  map[Key]*entry
	head     *entry // most recently used
	tail     *entry // least recently used
	cap      int
	memBytes int64 // byte budget; <= 0 means unbounded
	bytes    int64 // resident memory-tier bytes

	pol lifecycleDefaults

	hits, misses, memHits, diskHits     atomic.Int64
	puts, evictions, writeErrors        atomic.Int64
	gcRuns, gcEvictions, gcEvictedBytes atomic.Int64
	gcTmpRemoved, gcVerifyRemoved       atomic.Int64
}

// lifecycleDefaults are the Config-supplied caps a zero GCPolicy
// resolves to.
type lifecycleDefaults struct {
	maxBytes int64
	maxAge   time.Duration
}

// entry is one memory-tier value on the intrusive LRU list.
type entry struct {
	key        Key
	val        []byte
	prev, next *entry
}

// New builds a cache from cfg, creating the disk directory when one is
// configured. At least one tier is always active (MemEntries defaults
// when no persistent tier is given either).
func New(cfg Config) (*Cache, error) {
	capN := cfg.MemEntries
	if capN == 0 {
		capN = DefaultMemEntries
	}
	if capN < 0 {
		capN = 0
	}
	if cfg.Dir == "" && cfg.Store == nil && capN == 0 {
		// Store-only was requested without a persistent tier; a cache
		// with no tier at all would silently never hit, so keep the
		// documented invariant instead: the memory tier stays on at
		// its default.
		capN = DefaultMemEntries
	}
	memBytes := cfg.MemBytes
	if memBytes == 0 {
		memBytes = DefaultMemBytes
	}
	c := &Cache{
		store:    cfg.Store,
		cap:      capN,
		memBytes: memBytes,
		pol:      lifecycleDefaults{maxBytes: cfg.MaxBytes, maxAge: cfg.MaxAge},
	}
	if cfg.Store == nil && cfg.Dir != "" {
		st, err := NewDirStore(cfg.Dir)
		if err != nil {
			return nil, err
		}
		c.dir = cfg.Dir
		c.store = st
	}
	if capN > 0 {
		c.entries = make(map[Key]*entry)
	}
	return c, nil
}

// blob returns the persistent tier, deriving a DirStore on the fly for
// caches assembled from a bare dir (the in-package tests' shortcut).
func (c *Cache) blob() BlobStore {
	if c.store != nil {
		return c.store
	}
	if c.dir != "" {
		return DirStore{dir: c.dir}
	}
	return nil
}

// Get returns the value stored at key. A memory hit refreshes the
// entry's LRU position; a disk hit promotes the value to the memory
// tier. Any disk problem — absent, unreadable, empty — is a miss.
func (c *Cache) Get(key Key) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	if c.cap > 0 {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.moveToFront(e)
			val := e.val
			c.mu.Unlock()
			c.hits.Add(1)
			c.memHits.Add(1)
			return val, true
		}
		c.mu.Unlock()
	}
	if st := c.blob(); st != nil {
		if val, ok := st.Get(key); ok && len(val) > 0 {
			c.promote(key, val)
			c.hits.Add(1)
			c.diskHits.Add(1)
			return val, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores val at key in every configured tier. Disk writes are
// best-effort and atomic: failures are counted in Stats.WriteErrors
// and the entry simply stays absent. val must not be mutated by the
// caller afterwards.
func (c *Cache) Put(key Key, val []byte) {
	if c == nil || len(val) == 0 {
		return
	}
	c.puts.Add(1)
	c.promote(key, val)
	st := c.blob()
	if st == nil {
		return
	}
	if err := st.Put(key, val); err != nil {
		c.writeErrors.Add(1)
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		MemHits:         c.memHits.Load(),
		DiskHits:        c.diskHits.Load(),
		Puts:            c.puts.Load(),
		Evictions:       c.evictions.Load(),
		WriteErrors:     c.writeErrors.Load(),
		MemBytes:        c.MemBytes(),
		GCRuns:          c.gcRuns.Load(),
		GCEvictions:     c.gcEvictions.Load(),
		GCEvictedBytes:  c.gcEvictedBytes.Load(),
		GCTmpRemoved:    c.gcTmpRemoved.Load(),
		GCVerifyRemoved: c.gcVerifyRemoved.Load(),
	}
}

// Len returns the number of memory-tier entries (for tests and
// capacity accounting).
func (c *Cache) Len() int {
	if c == nil || c.cap == 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// MemBytes returns the memory tier's resident bytes.
func (c *Cache) MemBytes() int64 {
	if c == nil || c.cap == 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// path is the disk location of a key under a Dir-configured store.
func (c *Cache) path(key Key) string {
	return DirStore{dir: c.dir}.path(key)
}

// promote inserts (or refreshes) a memory-tier entry, evicting from
// the LRU tail past the entry-count cap or the byte budget. A single
// value larger than the whole byte budget is refused — promoting it
// would evict the entire tier for one entry — but remains a valid hit
// from the persistent tier.
func (c *Cache) promote(key Key, val []byte) {
	if c.cap == 0 {
		return
	}
	if c.memBytes > 0 && int64(len(val)) > c.memBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.moveToFront(e)
	} else {
		e := &entry{key: key, val: val}
		c.entries[key] = e
		c.pushFront(e)
		c.bytes += int64(len(val))
	}
	for len(c.entries) > c.cap || (c.memBytes > 0 && c.bytes > c.memBytes) {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
		c.bytes -= int64(len(lru.val))
		c.evictions.Add(1)
	}
}

// pushFront links e as the most recently used entry. Callers hold mu.
func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the LRU list. Callers hold mu.
func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront refreshes e's LRU position. Callers hold mu.
func (c *Cache) moveToFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

package cache

import (
	"bytes"
	"strings"
	"testing"

	"storagesched/internal/metrics"
)

// TestRegisterMetricsReadsLiveCounters: the sched_cache_* families are
// callback collectors over the cache's own atomics, so a scrape after
// traffic must agree with Stats exactly — parity by construction.
func TestRegisterMetricsReadsLiveCounters(t *testing.T) {
	c, err := New(Config{MemEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	c.RegisterMetrics(reg)

	key := KeyFor([]byte("canonical instance bytes"), "deltas=1")
	if _, ok := c.Get(key); ok {
		t.Fatal("cold Get hit; want miss")
	}
	c.Put(key, []byte("front"))
	if _, ok := c.Get(key); !ok {
		t.Fatal("warm Get missed; want hit")
	}

	st := c.Stats()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for family, want := range map[string]int64{
		"sched_cache_entries":            int64(c.Len()),
		"sched_cache_hits_total":         st.Hits,
		"sched_cache_mem_hits_total":     st.MemHits,
		"sched_cache_disk_hits_total":    st.DiskHits,
		"sched_cache_misses_total":       st.Misses,
		"sched_cache_puts_total":         st.Puts,
		"sched_cache_evictions_total":    st.Evictions,
		"sched_cache_write_errors_total": st.WriteErrors,
	} {
		line := family + " " + itoa(want) + "\n"
		if !strings.Contains(text, line) {
			t.Errorf("scrape missing %q (Stats: %+v):\n%s", line, st, text)
		}
	}
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("traffic did not land: %+v", st)
	}
}

// TestRegisterMetricsNilSafe: registering a nil cache or onto a nil
// registry is a no-op, so front ends wire unconditionally.
func TestRegisterMetricsNilSafe(t *testing.T) {
	var c *Cache
	c.RegisterMetrics(metrics.NewRegistry())
	c2, err := New(Config{MemEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	c2.RegisterMetrics(nil)
}

// itoa avoids pulling strconv into the test imports for one call site.
func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

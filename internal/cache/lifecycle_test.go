package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

// plantEntry writes an entry through the store and pins its mtime so
// sweeps rank it deterministically.
func plantEntry(t *testing.T, dir string, key Key, val []byte, mtime time.Time) {
	t.Helper()
	store := DirStore{dir: dir}
	if err := store.Put(key, val); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(store.path(key), mtime, mtime); err != nil {
		t.Fatal(err)
	}
}

// The crash-simulation satellite: a process that died mid-Put leaves
// put-*.tmp behind; gc collects the stale ones while an in-flight
// write's fresh tmp — and every real entry — survives.
func TestGCCollectsStaleTmpsKeepsInFlight(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for i, age := range []time.Duration{3 * time.Hour, 26 * time.Hour} {
		name := filepath.Join(dir, fmt.Sprintf("put-crashed%d.tmp", i))
		if err := os.WriteFile(name, []byte("torn write"), 0o600); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(name, now.Add(-age), now.Add(-age)); err != nil {
			t.Fatal(err)
		}
	}
	inflight := filepath.Join(dir, "put-inflight.tmp")
	if err := os.WriteFile(inflight, []byte("still being written"), 0o600); err != nil {
		t.Fatal(err)
	}
	c.Put(testKey(1), []byte("real entry"))

	res, err := c.GC(GCPolicy{Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if res.TmpRemoved != 2 {
		t.Errorf("TmpRemoved = %d, want 2", res.TmpRemoved)
	}
	if _, err := os.Stat(inflight); err != nil {
		t.Error("in-flight tmp was collected by the default cutoff")
	}
	if val, ok := c.Get(testKey(1)); !ok || string(val) != "real entry" {
		t.Errorf("real entry after gc = %q, %v", val, ok)
	}
	if got := c.Stats().GCTmpRemoved; got != 2 {
		t.Errorf("Stats().GCTmpRemoved = %d, want 2", got)
	}

	// A second sweep with a negative cutoff collects the in-flight tmp
	// too — the explicit "no writer is live" mode.
	res, err = c.GC(GCPolicy{TmpAge: -1, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if res.TmpRemoved != 1 {
		t.Errorf("negative-cutoff sweep removed %d tmps, want 1", res.TmpRemoved)
	}
}

func TestGCAgeCapEvictsOldEntries(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	plantEntry(t, dir, testKey(1), []byte("ancient"), now.Add(-48*time.Hour))
	plantEntry(t, dir, testKey(2), []byte("recent"), now.Add(-time.Hour))

	res, err := c.GC(GCPolicy{MaxAge: 24 * time.Hour, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if res.EvictedAge != 1 || res.Live != 1 {
		t.Fatalf("GC = %+v, want 1 evicted by age, 1 live", res)
	}
	if _, ok := c.Get(testKey(1)); ok {
		t.Error("ancient entry survived the age cap")
	}
	if _, ok := c.Get(testKey(2)); !ok {
		t.Error("recent entry lost")
	}
}

// The size pass is deterministic: oldest first, ties broken on the
// key's hex form — two sweeps of identical states evict identically,
// on any machine.
func TestGCSizeCapEvictsOldestFirstWithKeyTieBreak(t *testing.T) {
	now := time.Now().Truncate(time.Second)
	// Four 10-byte entries: one older, three sharing one mtime (the
	// tie the key order must break).
	keys := []Key{testKey(1), testKey(2), testKey(3), testKey(4)}
	tied := []Key{keys[1], keys[2], keys[3]}
	sort.Slice(tied, func(i, j int) bool { return tied[i].String() < tied[j].String() })

	build := func(t *testing.T) (*Cache, string) {
		dir := t.TempDir()
		c, err := New(Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		plantEntry(t, dir, keys[0], []byte("0123456789"), now.Add(-time.Hour))
		for _, k := range tied {
			plantEntry(t, dir, k, []byte("0123456789"), now)
		}
		return c, dir
	}

	// Budget for two entries: the old one goes first, then the tied
	// entry with the smallest key.
	var survivors [][]Key
	for range 2 {
		c, _ := build(t)
		res, err := c.GC(GCPolicy{MaxBytes: 20, Now: now})
		if err != nil {
			t.Fatal(err)
		}
		if res.EvictedSize != 2 || res.EvictedBytes != 20 || res.Live != 2 {
			t.Fatalf("GC = %+v, want 2 evicted by size (20 bytes), 2 live", res)
		}
		if _, ok := c.Get(keys[0]); ok {
			t.Error("oldest entry survived a binding size cap")
		}
		if _, ok := c.Get(tied[0]); ok {
			t.Error("smallest-key tied entry survived; tie-break is not on key")
		}
		var left []Key
		for _, k := range keys {
			if _, ok := (DirStore{dir: dirOf(c)}).Stat(k); ok {
				left = append(left, k)
			}
		}
		survivors = append(survivors, left)
	}
	if fmt.Sprint(survivors[0]) != fmt.Sprint(survivors[1]) {
		t.Errorf("two sweeps of identical states evicted differently:\n%v\n%v", survivors[0], survivors[1])
	}
}

// dirOf recovers the Dir-configured location for test assertions.
func dirOf(c *Cache) string { return c.dir }

// Config caps are the zero GCPolicy's fallback — what schedd's
// background ticker relies on.
func TestGCZeroPolicyFallsBackToConfigCaps(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Dir: dir, MaxBytes: 12, MaxAge: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	plantEntry(t, dir, testKey(1), []byte("stale entry"), now.Add(-48*time.Hour))
	plantEntry(t, dir, testKey(2), []byte("0123456789"), now.Add(-2*time.Hour))
	plantEntry(t, dir, testKey(3), []byte("0123456789"), now.Add(-time.Hour))

	res, err := c.GC(GCPolicy{Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if res.EvictedAge != 1 {
		t.Errorf("EvictedAge = %d, want 1 (Config.MaxAge fallback)", res.EvictedAge)
	}
	if res.EvictedSize != 1 {
		t.Errorf("EvictedSize = %d, want 1 (Config.MaxBytes fallback)", res.EvictedSize)
	}
	if _, ok := c.Get(testKey(3)); !ok {
		t.Error("newest entry lost")
	}
	// An explicitly negative policy unbinds the axis for one sweep.
	plantEntry(t, dir, testKey(4), []byte("stale again"), now.Add(-48*time.Hour))
	res, err = c.GC(GCPolicy{MaxBytes: -1, MaxAge: -1, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if res.EvictedAge != 0 || res.EvictedSize != 0 {
		t.Errorf("negative policy still evicted: %+v", res)
	}
}

// The memory-tier byte budget satellite: the LRU bounds resident
// bytes, not just entry count, and refuses to promote a single value
// larger than the whole budget (the disk hit is still served).
func TestMemoryTierByteBudget(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Dir: dir, MemEntries: 100, MemBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Four 20-byte values against a 64-byte budget: at most three fit.
	val := func(i int) []byte { return []byte(fmt.Sprintf("value-%d-aaaaaaaaaaaa", i)) }
	for i := range 4 {
		c.Put(testKey(i), val(i))
	}
	if got := c.MemBytes(); got > 64 {
		t.Errorf("MemBytes = %d, budget 64", got)
	}
	if got := c.Len(); got != 3 {
		t.Errorf("Len = %d, want 3 resident 20-byte entries", got)
	}
	if c.Stats().Evictions == 0 {
		t.Error("no byte-budget evictions counted")
	}
	// Every value is still a hit — evicted ones via the disk tier.
	for i := range 4 {
		if got, ok := c.Get(testKey(i)); !ok || string(got) != string(val(i)) {
			t.Fatalf("Get(%d) = %q, %v", i, got, ok)
		}
	}

	// An oversized value must not enter the memory tier (it would evict
	// everything and still bust the budget) but stays a valid disk hit.
	big := make([]byte, 128)
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	c.Put(testKey(99), big)
	st := c.Stats()
	if got, ok := c.Get(testKey(99)); !ok || len(got) != 128 {
		t.Fatalf("oversized Get = %d bytes, %v", len(got), ok)
	}
	if c.Stats().DiskHits != st.DiskHits+1 {
		t.Error("oversized value was served from memory; promotion should have been refused")
	}
	if got := c.MemBytes(); got > 64 {
		t.Errorf("MemBytes = %d after oversized Put, budget 64", got)
	}
}

func TestVerifyRemovesGarbageKeepsDecodable(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(testKey(1), []byte("good-1"))
	c.Put(testKey(3), []byte("good-3"))
	// Garbage lands on disk behind the cache's back (bit rot, a stray
	// writer) — it never passes through the memory tier.
	if err := (DirStore{dir: dir}).Put(testKey(2), []byte("BAD")); err != nil {
		t.Fatal(err)
	}
	// A truncated-to-empty blob: unreadable, removed regardless of the
	// check.
	if err := os.WriteFile(DirStore{dir: dir}.path(testKey(4)), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	check := func(_ Key, val []byte) error {
		if len(val) >= 4 && string(val[:4]) == "good" {
			return nil
		}
		return fmt.Errorf("not a good entry: %q", val)
	}
	res, err := c.Verify(check)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checked != 3 {
		t.Errorf("Checked = %d, want 3 readable entries", res.Checked)
	}
	if res.Removed != 2 {
		t.Errorf("Removed = %d, want 2 (one rejected, one empty)", res.Removed)
	}
	for _, k := range []Key{testKey(1), testKey(3)} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("decodable entry %s lost to Verify", k)
		}
	}
	if _, ok := c.Get(testKey(2)); ok {
		t.Error("rejected entry survived Verify")
	}
	if got := c.Stats().GCVerifyRemoved; got != 2 {
		t.Errorf("Stats().GCVerifyRemoved = %d, want 2", got)
	}

	// A nil check keeps every readable entry.
	res, err = c.Verify(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checked != 2 || res.Removed != 0 {
		t.Errorf("nil-check Verify = %+v, want 2 checked, 0 removed", res)
	}
}

// The concurrency satellite: gc and verify loop against live Put/Get
// traffic (run with -race). With caps that never bind, no valid entry
// may be lost, and the gc counters grow monotonically.
func TestGCConcurrentWithLiveTraffic(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Dir: dir, MemEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		perW    = 40
	)
	stop := make(chan struct{})
	var sweeps sync.WaitGroup
	sweeps.Add(2)
	go func() {
		defer sweeps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.GC(GCPolicy{MaxBytes: 1 << 40}); err != nil {
				t.Errorf("GC: %v", err)
				return
			}
		}
	}()
	go func() {
		defer sweeps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Verify(nil); err != nil {
				t.Errorf("Verify: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := range writers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range perW {
				k := testKey(w*perW + i)
				val := []byte(fmt.Sprintf("entry-%d-%d", w, i))
				c.Put(k, val)
				if got, ok := c.Get(k); !ok || string(got) != string(val) {
					t.Errorf("entry %d/%d lost under concurrent gc: %q, %v", w, i, got, ok)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	sweeps.Wait()

	st := c.Stats()
	if st.GCRuns == 0 {
		t.Error("gc loop never ran")
	}
	if st.GCEvictions != 0 {
		t.Errorf("unbounded gc evicted %d entries", st.GCEvictions)
	}
	// Every written entry is still present after the dust settles.
	for w := range writers {
		for i := range perW {
			if _, ok := c.Get(testKey(w*perW + i)); !ok {
				t.Fatalf("entry %d/%d missing after concurrent sweeps", w, i)
			}
		}
	}
	// Counters are monotone: a final sweep only grows them.
	before := c.Stats()
	if _, err := c.GC(GCPolicy{MaxBytes: 1 << 40}); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.GCRuns <= before.GCRuns {
		t.Errorf("GCRuns not monotone: %d then %d", before.GCRuns, after.GCRuns)
	}
	if after.GCEvictedBytes < before.GCEvictedBytes || after.GCTmpRemoved < before.GCTmpRemoved {
		t.Error("gc byte/tmp counters regressed")
	}
}

package cache

// The blob-store seam. The disk tier used to be welded to os.ReadFile
// and os.Rename, which made the cache single-machine by construction:
// shards on different hosts could only share a warm cache through a
// shared filesystem. BlobStore extracts the five operations the cache
// and its lifecycle actually need, DirStore keeps today's directory
// layout as the first implementation, and a remote store (object
// storage, a cache service) can slot in via Config.Store without the
// Cache, the engine or the lifecycle sweep changing at all.
//
// The contract every implementation must keep is the one the disk tier
// established: Put is atomic (a concurrent Get sees the whole value or
// a miss, never a torn prefix) and Get is corruption-tolerant (absent,
// truncated-to-empty or unreadable blobs report a miss, not an error).

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// BlobInfo describes one stored blob: its key plus the metadata the
// lifecycle sweep ranks entries by.
type BlobInfo struct {
	// Key is the blob's content address.
	Key Key
	// Size is the stored value's length in bytes.
	Size int64
	// ModTime is when the blob was last written — the age axis of the
	// eviction sweep.
	ModTime time.Time
}

// BlobStore is the storage seam behind the cache's persistent tier.
// Implementations must be safe for concurrent use, including across
// processes where the medium allows it (DirStore relies on atomic
// renames for exactly that).
type BlobStore interface {
	// Get returns the value stored at key. Absent, empty or unreadable
	// blobs are a miss (false), never an error: callers recompute and
	// overwrite.
	Get(key Key) ([]byte, bool)

	// Put atomically stores val at key: a reader never observes a torn
	// value. Errors are reported so callers can count them, but a
	// failed Put must leave the store consistent (the old value, or
	// absence — not a partial write).
	Put(key Key, val []byte) error

	// List enumerates the stored blobs in deterministic (key) order.
	// Blobs written or deleted concurrently may or may not appear.
	List() ([]BlobInfo, error)

	// Stat returns the metadata of the blob at key, or false when it
	// is absent or unusable.
	Stat(key Key) (BlobInfo, bool)

	// Delete removes the blob at key. Deleting an absent blob is not
	// an error — concurrent sweeps race benignly.
	Delete(key Key) error
}

// TmpSweeper is implemented by stores whose atomic Put can strand
// intermediate state on a crash (DirStore's put-*.tmp files). The
// lifecycle sweep uses it to collect orphans old enough that no live
// writer can still own them.
type TmpSweeper interface {
	// SweepOrphans removes write intermediates last modified before
	// olderThan and reports how many it removed. In-flight writes —
	// younger than the cutoff — must survive.
	SweepOrphans(olderThan time.Time) (removed int, err error)
}

// tmpPattern names DirStore's write intermediates; SweepOrphans globs
// for exactly this shape.
const tmpPattern = "put-*.tmp"

// blobSuffix is the file suffix of one stored entry under a DirStore.
const blobSuffix = ".json"

// DirStore is the directory-backed BlobStore: one file per key,
// written via temp file + rename so concurrent readers — including
// shard subprocesses sharing the directory — never observe a torn
// entry. The zero value is not usable; construct with NewDirStore.
type DirStore struct {
	dir string
}

// NewDirStore opens (creating if absent) a directory blob store.
func NewDirStore(dir string) (DirStore, error) {
	if dir == "" {
		return DirStore{}, errors.New("cache: blob store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return DirStore{}, fmt.Errorf("cache: creating %s: %w", dir, err)
	}
	return DirStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s DirStore) Dir() string { return s.dir }

// path is the file location of a key.
func (s DirStore) path(key Key) string {
	return filepath.Join(s.dir, key.String()+blobSuffix)
}

// parseBlobName recovers the key from an entry file name; ok is false
// for anything that is not a full-length lowercase-hex key plus the
// blob suffix (tmp files, strays).
func parseBlobName(name string) (Key, bool) {
	var key Key
	stem, found := strings.CutSuffix(name, blobSuffix)
	if !found || len(stem) != hex.EncodedLen(len(key)) {
		return Key{}, false
	}
	raw, err := hex.DecodeString(stem)
	if err != nil {
		return Key{}, false
	}
	copy(key[:], raw)
	// Round-trip guard: hex.DecodeString accepts uppercase, but keys
	// render lowercase; a mixed-case stray must not alias a key.
	if key.String() != stem {
		return Key{}, false
	}
	return key, true
}

// Get implements BlobStore: any problem — absent, unreadable, empty —
// is a miss.
func (s DirStore) Get(key Key) ([]byte, bool) {
	val, err := os.ReadFile(s.path(key))
	if err != nil || len(val) == 0 {
		return nil, false
	}
	return val, true
}

// Put implements BlobStore: temp file + rename, so a concurrent Get
// (in this process or a shard subprocess sharing the directory) sees
// the whole value or a miss.
func (s DirStore) Put(key Key, val []byte) error {
	tmp, err := os.CreateTemp(s.dir, tmpPattern)
	if err != nil {
		return err
	}
	_, werr := tmp.Write(val)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// List implements BlobStore: every regular file named like an entry,
// in key order (os.ReadDir sorts by name, and names are the keys'
// fixed-width hex). Empty files — torn truncations — are listed with
// Size 0 so the lifecycle can collect them; Get still reports them as
// misses.
func (s DirStore) List() ([]BlobInfo, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("cache: listing %s: %w", s.dir, err)
	}
	infos := make([]BlobInfo, 0, len(des))
	for _, de := range des {
		key, ok := parseBlobName(de.Name())
		if !ok || de.IsDir() {
			continue
		}
		fi, err := de.Info()
		if err != nil || !fi.Mode().IsRegular() {
			// Deleted between ReadDir and Info (a racing sweep), or a
			// stray non-file: skip, don't fail the listing.
			continue
		}
		infos = append(infos, BlobInfo{Key: key, Size: fi.Size(), ModTime: fi.ModTime()})
	}
	return infos, nil
}

// Stat implements BlobStore.
func (s DirStore) Stat(key Key) (BlobInfo, bool) {
	fi, err := os.Stat(s.path(key))
	if err != nil || !fi.Mode().IsRegular() {
		return BlobInfo{}, false
	}
	return BlobInfo{Key: key, Size: fi.Size(), ModTime: fi.ModTime()}, true
}

// Delete implements BlobStore; an already-absent blob is success.
func (s DirStore) Delete(key Key) error {
	if err := os.Remove(s.path(key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// SweepOrphans implements TmpSweeper: put-*.tmp files are normally
// renamed away or removed by the writer, so one last modified before
// olderThan can only be the leavings of a process that died mid-Put.
// Younger tmp files belong to in-flight writes and survive.
func (s DirStore) SweepOrphans(olderThan time.Time) (int, error) {
	matches, err := filepath.Glob(filepath.Join(s.dir, tmpPattern))
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, name := range matches {
		fi, err := os.Stat(name)
		if err != nil || !fi.Mode().IsRegular() {
			continue
		}
		if !fi.ModTime().Before(olderThan) {
			continue
		}
		if err := os.Remove(name); err == nil || errors.Is(err, fs.ErrNotExist) {
			removed++
		}
	}
	return removed, nil
}

package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"storagesched/internal/dag"
	"storagesched/internal/model"
)

func testKey(i int) Key {
	return KeyFor([]byte(fmt.Sprintf("item-%d", i)), "fp")
}

// The satellite contract: cache keys are invariant under every task-ID
// labelling the JSON readers canonicalize. A file with implicit IDs
// (all zero) and the same file with explicit sequential IDs decode to
// semantically identical instances and must hash equal; names are
// cosmetic and must not perturb the key either.
func TestCanonicalInstanceInvariantUnderIDRenaming(t *testing.T) {
	implicit := `{"m":2,"tasks":[{"p":4,"s":1},{"p":7,"s":3},{"p":2,"s":5}]}`
	explicit := `{"m":2,"tasks":[{"id":0,"p":4,"s":1},{"id":1,"p":7,"s":3},{"id":2,"p":2,"s":5}]}`
	named := `{"m":2,"tasks":[{"id":0,"p":4,"s":1,"name":"a"},{"id":1,"p":7,"s":3,"name":"b"},{"id":2,"p":2,"s":5}]}`

	var canon [][]byte
	for _, doc := range []string{implicit, explicit, named} {
		in, err := model.ReadInstanceJSON(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("reading %s: %v", doc, err)
		}
		canon = append(canon, CanonicalInstance(in))
	}
	for i := 1; i < len(canon); i++ {
		if !bytes.Equal(canon[0], canon[i]) {
			t.Errorf("canonical bytes differ between variant 0 and %d:\n%q\n%q", i, canon[0], canon[i])
		}
	}
	if KeyFor(canon[0], "fp") != KeyFor(canon[1], "fp") {
		t.Error("keys differ for semantically identical instances")
	}

	// A genuinely different instance must not alias.
	other, err := model.ReadInstanceJSON(strings.NewReader(`{"m":2,"tasks":[{"p":4,"s":1},{"p":7,"s":3},{"p":2,"s":6}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(canon[0], CanonicalInstance(other)) {
		t.Error("different instances share canonical bytes")
	}
}

func TestCanonicalGraphInvariantUnderIDRenaming(t *testing.T) {
	implicit := `{"m":2,"tasks":[{"p":4,"s":1},{"p":7,"s":3}],"edges":[[0,1]]}`
	explicit := `{"m":2,"tasks":[{"id":0,"p":4,"s":1},{"id":1,"p":7,"s":3}],"edges":[[0,1]]}`
	g1, err := dag.ReadGraphJSON(strings.NewReader(implicit))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := dag.ReadGraphJSON(strings.NewReader(explicit))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(CanonicalGraph(g1), CanonicalGraph(g2)) {
		t.Errorf("canonical graph bytes differ:\n%q\n%q", CanonicalGraph(g1), CanonicalGraph(g2))
	}
	// Duplicate-edge insertion must not change the canonical form.
	g3 := g1.Clone()
	g3.AddEdge(0, 1)
	if !bytes.Equal(CanonicalGraph(g1), CanonicalGraph(g3)) {
		t.Error("duplicate AddEdge changed canonical bytes")
	}
}

// An edgeless graph and the equivalent independent-task instance run
// different algorithm selections; their canonical bytes must differ.
func TestCanonicalGraphNeverAliasesInstance(t *testing.T) {
	in := model.NewInstance(2, []model.Time{4, 7}, []model.Mem{1, 3})
	g := dag.FromInstance(in)
	if bytes.Equal(CanonicalInstance(in), CanonicalGraph(g)) {
		t.Error("edgeless graph aliases its instance")
	}
}

func TestKeyForFramesParts(t *testing.T) {
	// The canonical bytes and the fingerprint are length-framed: moving
	// a byte across the boundary must change the key.
	if KeyFor([]byte("ab"), "c") == KeyFor([]byte("a"), "bc") {
		t.Error("keys collide across the canonical/fingerprint boundary")
	}
	if KeyFor([]byte("ab"), "c") == KeyFor([]byte("ab"), "d") {
		t.Error("fingerprint ignored")
	}
}

func TestMemoryTierLRUEvictionBounds(t *testing.T) {
	c, err := New(Config{MemEntries: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Put(testKey(i), []byte{byte(i)})
		if got := c.Len(); got > 3 {
			t.Fatalf("memory tier holds %d entries, cap 3", got)
		}
	}
	st := c.Stats()
	if st.Evictions != 7 {
		t.Errorf("evictions = %d, want 7", st.Evictions)
	}
	// The three most recent survive; older keys are gone.
	for i := 7; i < 10; i++ {
		if _, ok := c.Get(testKey(i)); !ok {
			t.Errorf("recent key %d evicted", i)
		}
	}
	if _, ok := c.Get(testKey(0)); ok {
		t.Error("oldest key survived a full wrap")
	}

	// Touching an entry refreshes it: after touching key 7, inserting
	// two more evicts 8 and 9's elder, not 7.
	c.Get(testKey(7))
	c.Put(testKey(10), []byte{10})
	c.Put(testKey(11), []byte{11})
	if _, ok := c.Get(testKey(7)); !ok {
		t.Error("recently touched key evicted before stale ones")
	}
}

func TestDiskTierRoundTripAndPromotion(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	c1.Put(key, []byte("front"))

	// A second cache over the same directory (fresh memory tier) sees
	// the value via disk and promotes it.
	c2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	val, ok := c2.Get(key)
	if !ok || string(val) != "front" {
		t.Fatalf("disk get = %q, %v", val, ok)
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Errorf("disk hits = %d, want 1", st.DiskHits)
	}
	// Promoted: the next get is a memory hit.
	if _, ok := c2.Get(key); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := c2.Stats(); st.MemHits != 1 {
		t.Errorf("mem hits = %d, want 1", st.MemHits)
	}
}

func TestCorruptDiskEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Dir: dir, MemEntries: -1}) // disk-only
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(2)

	// Truncated-to-empty entry: miss.
	if err := os.WriteFile(c.path(key), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Error("empty entry returned as a hit")
	}

	// Unreadable entry (a directory squatting on the path — robust even
	// when the tests run as root, for whom mode bits are advisory):
	// miss, not an error.
	if err := os.Remove(c.path(key)); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(c.path(key), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Error("unreadable entry returned as a hit")
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Errorf("misses = %d, want 2", st.Misses)
	}

	// Recompute-and-overwrite heals the entry.
	if err := os.Remove(c.path(key)); err != nil {
		t.Fatal(err)
	}
	c.Put(key, []byte("good"))
	if val, ok := c.Get(key); !ok || string(val) != "good" {
		t.Errorf("healed entry = %q, %v", val, ok)
	}
}

func TestDiskWriteErrorsAreCountedNotFatal(t *testing.T) {
	// Point the disk tier at a regular file so temp-file creation fails
	// (mode-bit tricks are unreliable under root); the Put must be
	// counted, not fatal.
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := &Cache{dir: file}
	c.Put(testKey(3), []byte("v"))
	if st := c.Stats(); st.WriteErrors != 1 {
		t.Errorf("write errors = %d, want 1", st.WriteErrors)
	}
}

func TestNilCacheIsCachingOff(t *testing.T) {
	var c *Cache
	if _, ok := c.Get(testKey(0)); ok {
		t.Error("nil cache hit")
	}
	c.Put(testKey(0), []byte("v"))
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
}

// Disk-only without a directory would be a cache with no tier at all;
// New keeps the documented invariant by leaving the memory tier on.
func TestNewNeverBuildsZeroTierCache(t *testing.T) {
	c, err := New(Config{MemEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(testKey(0), []byte("v"))
	if _, ok := c.Get(testKey(0)); !ok {
		t.Error("cache with no disk tier and MemEntries < 0 never hits")
	}
}

func TestNewRejectsUnusableDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Dir: filepath.Join(file, "sub")}); err == nil {
		t.Error("New accepted a directory under a regular file")
	}
}

func TestConcurrentAccessIsSafe(t *testing.T) {
	c, err := New(Config{Dir: t.TempDir(), MemEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := testKey(i % 16)
				if v, ok := c.Get(k); ok && len(v) == 0 {
					t.Error("hit with empty value")
				}
				c.Put(k, []byte{byte(i + 1)})
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("memory tier exceeded cap: %d", c.Len())
	}
}

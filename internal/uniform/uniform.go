// Package uniform extends the paper's algorithms to uniform (related)
// machines — processors with speeds q_j — the "non identical
// processors" direction named in the paper's concluding remarks.
//
// Model: task i placed on machine j contributes p_i/q_j running time
// but its full s_i storage (storage capacity does not scale with
// speed). Makespans are therefore rationals; they are compared by
// cross-multiplication and only converted to float64 for reporting.
//
// Algorithms and what carries over:
//
//   - greedy earliest-completion list scheduling and its LPT variant
//     (the classical uniform-machine heuristics);
//   - SBOUniform, Algorithm 1 with the threshold scaled by the
//     slowest speed: task i follows the memory schedule iff
//     p_i/(C·qmin) < ∆·s_i/M. The Property 1 argument survives
//     verbatim (per-machine extra running time < ∆·C·qmin/q_j ≤ ∆·C),
//     while Property 2 weakens by the speed spread Q = qmax/qmin:
//     Mmax(π∆) ≤ (1 + Q/∆)·M. Both bounds are enforced by tests.
//   - RLSUniform, Algorithm 2's loop with earliest completion in
//     place of least load; Corollary 2 (Mmax ≤ ∆·LB) holds unchanged
//     because the memory argument never involves speeds.
package uniform

import (
	"fmt"
	"math"
	"sort"

	"storagesched/internal/bounds"
	"storagesched/internal/exact"
	"storagesched/internal/model"
)

// Speeds is the machine speed vector; all entries must be >= 1.
type Speeds []int64

// Validate checks the speed vector.
func (q Speeds) Validate() error {
	if len(q) == 0 {
		return fmt.Errorf("uniform: empty speed vector")
	}
	for j, s := range q {
		if s < 1 {
			return fmt.Errorf("uniform: speed[%d] = %d, need >= 1", j, s)
		}
	}
	return nil
}

// Min returns the slowest speed.
func (q Speeds) Min() int64 {
	mn := q[0]
	for _, s := range q[1:] {
		if s < mn {
			mn = s
		}
	}
	return mn
}

// Max returns the fastest speed.
func (q Speeds) Max() int64 {
	mx := q[0]
	for _, s := range q[1:] {
		if s > mx {
			mx = s
		}
	}
	return mx
}

// Spread returns Q = qmax/qmin.
func (q Speeds) Spread() float64 { return float64(q.Max()) / float64(q.Min()) }

// Rat is a non-negative rational time value (Work units / Speed).
type Rat struct {
	Num int64 // work
	Den int64 // speed, > 0
}

// Float converts for reporting.
func (r Rat) Float() float64 { return float64(r.Num) / float64(r.Den) }

// Less compares two rational times exactly. The cross products go
// through the 128-bit kernel, so loads near int64 range (total work up
// to 2^62 times speeds up to 2^20) cannot overflow the comparison.
func (r Rat) Less(o Rat) bool { return exact.MulCmp(r.Num, o.Den, o.Num, r.Den) < 0 }

// LessEq is the non-strict comparison.
func (r Rat) LessEq(o Rat) bool { return exact.MulCmp(r.Num, o.Den, o.Num, r.Den) <= 0 }

// Cmax returns the exact rational makespan of assignment a for work
// vector p on machines with the given speeds.
func Cmax(p []model.Time, q Speeds, a model.Assignment) Rat {
	loads := make([]int64, len(q))
	for i, j := range a {
		loads[j] += p[i]
	}
	best := Rat{Num: 0, Den: 1}
	for j, l := range loads {
		r := Rat{Num: l, Den: q[j]}
		if best.Less(r) {
			best = r
		}
	}
	return best
}

// Mmax returns the maximum per-machine storage (speed-independent).
func Mmax(s []model.Mem, q Speeds, a model.Assignment) model.Mem {
	mem := make([]model.Mem, len(q))
	for i, j := range a {
		mem[j] += s[i]
	}
	var mx model.Mem
	for _, l := range mem {
		if l > mx {
			mx = l
		}
	}
	return mx
}

// CmaxLB returns a lower bound on the uniform-machine makespan:
// max(Σp/Σq, max_i p_i / qmax) as an exact rational (the classical
// area and longest-job bounds).
func CmaxLB(p []model.Time, q Speeds) Rat {
	var work, maxP int64
	for _, x := range p {
		work += x
		if x > maxP {
			maxP = x
		}
	}
	var speedSum int64
	for _, s := range q {
		speedSum += s
	}
	area := Rat{Num: work, Den: speedSum}
	longest := Rat{Num: maxP, Den: q.Max()}
	if area.Less(longest) {
		return longest
	}
	return area
}

// ListUniform assigns tasks, in the given order, to the machine that
// completes them earliest (exact rational comparison; lower machine
// index wins ties). This is the classical uniform-machine greedy.
func ListUniform(p []model.Time, q Speeds, order []int) model.Assignment {
	a := make(model.Assignment, len(p))
	loads := make([]int64, len(q))
	for _, i := range order {
		best := 0
		bestR := Rat{Num: loads[0] + p[i], Den: q[0]}
		for j := 1; j < len(q); j++ {
			r := Rat{Num: loads[j] + p[i], Den: q[j]}
			if r.Less(bestR) {
				best, bestR = j, r
			}
		}
		a[i] = best
		loads[best] += p[i]
	}
	return a
}

// LPTUniform is ListUniform in decreasing-work order (ratio ≤ 2 on
// uniform machines, Gonzalez–Ibarra–Sahni style).
func LPTUniform(p []model.Time, q Speeds) model.Assignment {
	order := make([]int, len(p))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if p[order[a]] != p[order[b]] {
			return p[order[a]] > p[order[b]]
		}
		return order[a] < order[b]
	})
	return ListUniform(p, q, order)
}

// SBOUniformResult carries one SBOUniform run.
type SBOUniformResult struct {
	Delta float64

	Assignment      model.Assignment
	FromMemSchedule []bool

	// C is the rational makespan of the time sub-schedule; M the
	// memory of the memory sub-schedule.
	C Rat
	M model.Mem

	// Achieved objectives.
	Cmax Rat
	Mmax model.Mem

	// SpeedSpread is Q = qmax/qmin, the factor by which the memory
	// guarantee weakens: Mmax ≤ (1 + Q/∆)·M.
	SpeedSpread float64
}

// CmaxBound returns the carried-over Property 1 bound (1+∆)·C.
func (r *SBOUniformResult) CmaxBound() float64 { return (1 + r.Delta) * r.C.Float() }

// MmaxBound returns the weakened Property 2 bound (1 + Q/∆)·M.
func (r *SBOUniformResult) MmaxBound() float64 {
	return (1 + r.SpeedSpread/r.Delta) * float64(r.M)
}

// SBOUniform runs the Algorithm 1 adaptation on uniform machines:
// π1 = LPTUniform on work, π2 = LPT on storage (identical machines —
// storage does not scale), threshold p_i/(C·qmin) < ∆·s_i/M evaluated
// exactly in rationals.
func SBOUniform(in *model.Instance, q Speeds, delta float64) (*SBOUniformResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q) != in.M {
		return nil, fmt.Errorf("uniform: %d speeds for m=%d machines", len(q), in.M)
	}
	if delta <= 0 {
		return nil, fmt.Errorf("uniform: delta = %g, need > 0", delta)
	}
	return sboUniform(in, in.P(), in.S(), q, delta)
}

func sboUniform(in *model.Instance, p []model.Time, s []model.Mem, q Speeds, delta float64) (*SBOUniformResult, error) {
	pi1 := LPTUniform(p, q)
	c := Cmax(p, q, pi1)

	// Memory schedule on identical machines: storage ignores speed.
	pi2 := memLPT(s, in.M)
	mVal := Mmax(s, q, pi2)

	res := &SBOUniformResult{
		Delta:           delta,
		Assignment:      make(model.Assignment, in.N()),
		FromMemSchedule: make([]bool, in.N()),
		C:               c,
		M:               mVal,
		SpeedSpread:     q.Spread(),
	}
	qmin := q.Min()
	// A NaN ∆ passes the callers' sign checks; NewCoeff rejects it (and
	// ±Inf) before the threshold loop can misbehave.
	co, err := exact.NewCoeff(delta)
	if err != nil {
		return nil, fmt.Errorf("uniform: SBO delta = %g is not finite", delta)
	}
	for i := range p {
		useMem := false
		if mVal > 0 {
			// p_i/(C·qmin) < ∆·s_i/M
			// ⇔ p_i·C.Den·M < ∆·s_i·C.Num·qmin  (C = Num/Den),
			// three integer factors per side against the ∆ coefficient —
			// the exact kernel's MulCmp3 form, no rationals allocated.
			useMem = co.MulCmp3(p[i], c.Den, int64(mVal), int64(s[i]), c.Num, qmin) < 0
		}
		if useMem {
			res.Assignment[i] = pi2[i]
		} else {
			res.Assignment[i] = pi1[i]
		}
		res.FromMemSchedule[i] = useMem
	}
	res.Cmax = Cmax(p, q, res.Assignment)
	res.Mmax = Mmax(s, q, res.Assignment)
	return res, nil
}

// memLPT is LPT on storage over identical machines.
func memLPT(s []model.Mem, m int) model.Assignment {
	order := make([]int, len(s))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if s[order[a]] != s[order[b]] {
			return s[order[a]] > s[order[b]]
		}
		return order[a] < order[b]
	})
	a := make(model.Assignment, len(s))
	loads := make([]model.Mem, m)
	for _, i := range order {
		best := 0
		for j := 1; j < m; j++ {
			if loads[j] < loads[best] {
				best = j
			}
		}
		a[i] = best
		loads[best] += s[i]
	}
	return a
}

// RLSUniformResult carries one RLSUniform run.
type RLSUniformResult struct {
	Delta      float64
	Assignment model.Assignment
	LB         model.Mem
	Cap        model.Mem
	Cmax       Rat
	Mmax       model.Mem
}

// RLSUniform adapts Algorithm 2 to uniform machines on independent
// tasks: tasks in SPT-by-work order go to the memory-feasible machine
// with the earliest completion time. Corollary 2 (Mmax ≤ ∆·LB) holds
// unchanged; the makespan guarantee is measured, not proven.
func RLSUniform(in *model.Instance, q Speeds, delta float64) (*RLSUniformResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q) != in.M {
		return nil, fmt.Errorf("uniform: %d speeds for m=%d machines", len(q), in.M)
	}
	if math.IsNaN(delta) || math.IsInf(delta, 0) {
		// +Inf passes the < 2 check and NaN fails every comparison;
		// reject both before the cap computation.
		return nil, fmt.Errorf("uniform: RLS delta = %g is not finite", delta)
	}
	if delta < 2 {
		return nil, fmt.Errorf("uniform: delta = %g, need >= 2", delta)
	}
	p := in.P()
	s := in.S()
	lb := bounds.MemLB(s, in.M)
	cap, err := exact.FloorMul(delta, int64(lb))
	if err != nil {
		return nil, fmt.Errorf("uniform: RLS cap floor(%g*%d): %w", delta, lb, err)
	}

	order := make([]int, in.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if p[order[a]] != p[order[b]] {
			return p[order[a]] < p[order[b]]
		}
		return order[a] < order[b]
	})

	a := make(model.Assignment, in.N())
	loads := make([]int64, in.M)
	mems := make([]model.Mem, in.M)
	for _, i := range order {
		best := -1
		var bestR Rat
		for j := 0; j < in.M; j++ {
			if mems[j]+s[i] > cap {
				continue
			}
			r := Rat{Num: loads[j] + p[i], Den: q[j]}
			if best == -1 || r.Less(bestR) {
				best, bestR = j, r
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("uniform: task %d fits on no machine under cap %d", i, cap)
		}
		a[i] = best
		loads[best] += p[i]
		mems[best] += s[i]
	}
	return &RLSUniformResult{
		Delta:      delta,
		Assignment: a,
		LB:         lb,
		Cap:        cap,
		Cmax:       Cmax(p, q, a),
		Mmax:       Mmax(s, q, a),
	}, nil
}

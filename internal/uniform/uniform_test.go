package uniform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"storagesched/internal/model"
)

func TestSpeedsValidate(t *testing.T) {
	if err := (Speeds{1, 2, 3}).Validate(); err != nil {
		t.Errorf("valid speeds rejected: %v", err)
	}
	if err := (Speeds{}).Validate(); err == nil {
		t.Error("empty speeds accepted")
	}
	if err := (Speeds{1, 0}).Validate(); err == nil {
		t.Error("zero speed accepted")
	}
}

func TestSpeedsMinMaxSpread(t *testing.T) {
	q := Speeds{2, 1, 4}
	if q.Min() != 1 || q.Max() != 4 || q.Spread() != 4 {
		t.Errorf("min/max/spread = %d/%d/%g", q.Min(), q.Max(), q.Spread())
	}
}

func TestRatComparisons(t *testing.T) {
	// 3/2 < 5/3? 9 < 10 yes.
	a := Rat{Num: 3, Den: 2}
	b := Rat{Num: 5, Den: 3}
	if !a.Less(b) || b.Less(a) {
		t.Error("3/2 < 5/3 failed")
	}
	if !a.LessEq(a) {
		t.Error("LessEq not reflexive")
	}
	if a.Float() != 1.5 {
		t.Errorf("Float = %g", a.Float())
	}
}

func TestCmaxUniformExact(t *testing.T) {
	// Two machines with speeds 1 and 2; tasks 4 and 4.
	p := []model.Time{4, 4}
	q := Speeds{1, 2}
	// Both on fast machine: 8/2 = 4. Split: max(4/1, 4/2) = 4. One
	// each reversed: same by symmetry.
	a := model.Assignment{1, 1}
	if got := Cmax(p, q, a); got.Float() != 4 {
		t.Errorf("Cmax = %g, want 4", got.Float())
	}
}

func TestCmaxLB(t *testing.T) {
	p := []model.Time{6, 2}
	q := Speeds{1, 3}
	// Area: 8/4 = 2. Longest: 6/3 = 2. LB = 2.
	lb := CmaxLB(p, q)
	if lb.Float() != 2 {
		t.Errorf("CmaxLB = %g, want 2", lb.Float())
	}
}

func TestListUniformPrefersFastMachine(t *testing.T) {
	p := []model.Time{10}
	q := Speeds{1, 5}
	a := ListUniform(p, q, []int{0})
	if a[0] != 1 {
		t.Errorf("task went to machine %d, want the fast one", a[0])
	}
}

func TestLPTUniformReasonable(t *testing.T) {
	// Work 12 on speeds (1, 2): ideal area bound = 12/3 = 4.
	p := []model.Time{6, 3, 2, 1}
	q := Speeds{1, 2}
	a := LPTUniform(p, q)
	got := Cmax(p, q, a)
	lb := CmaxLB(p, q)
	if got.Float() > 2*lb.Float() {
		t.Errorf("LPTUniform Cmax %g > 2*LB %g", got.Float(), lb.Float())
	}
}

func randUniform(rng *rand.Rand, maxN, maxM int) (*model.Instance, Speeds) {
	n := 1 + rng.Intn(maxN)
	m := 1 + rng.Intn(maxM)
	p := make([]model.Time, n)
	s := make([]model.Mem, n)
	for i := 0; i < n; i++ {
		p[i] = rng.Int63n(100) + 1
		s[i] = rng.Int63n(100)
	}
	q := make(Speeds, m)
	for j := range q {
		q[j] = rng.Int63n(7) + 1
	}
	return model.NewInstance(m, p, s), q
}

func TestSBOUniformValidation(t *testing.T) {
	in := model.NewInstance(2, []model.Time{1}, []model.Mem{1})
	if _, err := SBOUniform(in, Speeds{1}, 1); err == nil {
		t.Error("speed/machine mismatch accepted")
	}
	if _, err := SBOUniform(in, Speeds{1, 2}, 0); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := SBOUniform(in, Speeds{1, 0}, 1); err == nil {
		t.Error("bad speeds accepted")
	}
}

// The derived guarantees: Cmax ≤ (1+∆)·C and Mmax ≤ (1+Q/∆)·M.
func TestPropertySBOUniformGuarantees(t *testing.T) {
	deltas := []float64{0.5, 1, 2, 4}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in, q := randUniform(rng, 40, 6)
		delta := deltas[rng.Intn(len(deltas))]
		res, err := SBOUniform(in, q, delta)
		if err != nil {
			return false
		}
		if in.ValidateAssignment(res.Assignment) != nil {
			return false
		}
		if res.Cmax.Float() > res.CmaxBound()+1e-9 {
			return false
		}
		if res.M > 0 && float64(res.Mmax) > res.MmaxBound()+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// With all speeds equal the memory guarantee collapses back to the
// identical-machine Property 2 bound (Q = 1).
func TestSBOUniformIdenticalSpeedsMatchesPaperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		in, _ := randUniform(rng, 30, 5)
		q := make(Speeds, in.M)
		for j := range q {
			q[j] = 3
		}
		for _, delta := range []float64{0.5, 1, 2} {
			res, err := SBOUniform(in, q, delta)
			if err != nil {
				t.Fatalf("SBOUniform: %v", err)
			}
			if res.M > 0 && float64(res.Mmax) > (1+1/delta)*float64(res.M)+1e-9 {
				t.Errorf("trial %d delta=%g: identical-speed memory bound broken", trial, delta)
			}
		}
	}
}

func TestRLSUniformMemoryGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		in, q := randUniform(rng, 30, 5)
		for _, delta := range []float64{2, 3, 6} {
			res, err := RLSUniform(in, q, delta)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if res.Mmax > res.Cap {
				t.Errorf("trial %d: Mmax %d > cap %d", trial, res.Mmax, res.Cap)
			}
			if in.ValidateAssignment(res.Assignment) != nil {
				t.Errorf("trial %d: invalid assignment", trial)
			}
		}
	}
}

func TestRLSUniformValidation(t *testing.T) {
	in := model.NewInstance(2, []model.Time{1}, []model.Mem{1})
	if _, err := RLSUniform(in, Speeds{1, 1}, 1.5); err == nil {
		t.Error("delta < 2 accepted")
	}
	if _, err := RLSUniform(in, Speeds{1}, 3); err == nil {
		t.Error("speed/machine mismatch accepted")
	}
}

// Greedy earliest-completion is within the classical factor-2 of the
// area/longest lower bound when run in LPT order.
func TestPropertyLPTUniformWithinTwiceLB(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in, q := randUniform(rng, 40, 6)
		a := LPTUniform(in.P(), q)
		got := Cmax(in.P(), q, a)
		lb := CmaxLB(in.P(), q)
		return got.Float() <= 2*lb.Float()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Exactness of the rational comparisons: Cmax over random assignments
// agrees with a float recomputation within tolerance, and the chosen
// max is never smaller than any machine's finish time.
func TestPropertyRationalCmaxConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in, q := randUniform(rng, 25, 5)
		a := make(model.Assignment, in.N())
		for i := range a {
			a[i] = rng.Intn(in.M)
		}
		got := Cmax(in.P(), q, a)
		loads := make([]int64, in.M)
		for i, j := range a {
			loads[j] += in.Tasks[i].P
		}
		for j, l := range loads {
			if float64(l)/float64(q[j]) > got.Float()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestUniformNonFiniteDeltaErrors is the regression test for the nil
// *big.Rat panic family: SetFloat64 returns nil for non-finite input,
// so δ = +Inf (past the sign checks) and δ = NaN (past every
// comparison) used to crash RLSUniform's cap computation and
// sboUniform's threshold. Both must return errors instead.
func TestUniformNonFiniteDeltaErrors(t *testing.T) {
	in := model.NewInstance(2, []model.Time{3, 2, 4}, []model.Mem{1, 2, 3})
	q := Speeds{1, 2}
	for _, delta := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		if _, err := RLSUniform(in, q, delta); err == nil {
			t.Errorf("RLSUniform(delta=%g): no error", delta)
		}
		if _, err := SBOUniform(in, q, delta); err == nil {
			t.Errorf("SBOUniform(delta=%g): no error", delta)
		}
	}
	// Finite deltas keep working.
	if _, err := RLSUniform(in, q, 3); err != nil {
		t.Errorf("RLSUniform(delta=3): %v", err)
	}
	if _, err := SBOUniform(in, q, 1); err != nil {
		t.Errorf("SBOUniform(delta=1): %v", err)
	}
}

package serve

// The JSONL wire format. One FrontLine per item, in input order, is
// what `schedcli sweepbatch` has always written: the field set, field
// order and number formatting are pinned by the golden files under
// cmd/schedcli/testdata/golden and byte-interleaved by `schedcli shard
// merge`, so this file is the single encoder both front ends use —
// docs/API.md documents the schema field by field.

import (
	"encoding/json"
	"io"
	"iter"

	"storagesched/internal/engine"
	"storagesched/internal/model"
)

// FrontLine is the JSONL record written per swept item.
type FrontLine struct {
	// Source names the item: a file name, "stdin:3", "body:1" — the
	// label its producer supplied.
	Source string `json:"source"`

	// Index is the item's zero-based position in the input stream.
	Index int `json:"index"`

	// N and M are the item's task and processor counts.
	N int `json:"n,omitempty"`
	M int `json:"m,omitempty"`

	// Edges is the arc count of a task-DAG item; instance lines omit
	// it.
	Edges int `json:"edges,omitempty"`

	// CmaxLB and MmaxLB are the lower bounds the front ratios are
	// against.
	CmaxLB model.Time `json:"cmax_lb,omitempty"`
	MmaxLB model.Mem  `json:"mmax_lb,omitempty"`

	// Runs counts the (algorithm, δ) evaluations behind the front.
	Runs int `json:"runs,omitempty"`

	// Front is the approximate Pareto front, sorted by increasing
	// Cmax.
	Front []FrontLinePoint `json:"front,omitempty"`

	// Error is the item's failure, when it failed; such lines carry no
	// front.
	Error string `json:"error,omitempty"`
}

// FrontLinePoint is one front point of a FrontLine.
type FrontLinePoint struct {
	// Cmax and Mmax are the achieved objective values.
	Cmax model.Time `json:"cmax"`
	Mmax model.Mem  `json:"mmax"`

	// Witness is the provenance label of the run achieving the point,
	// such as "SBO(δ=1)" or "RLS(δ=3,SPT)".
	Witness string `json:"witness"`
}

// sourceInfo is the per-item metadata that rides on the engine Tag —
// the item sequence is consumed from the engine's producer goroutine,
// so the Tag is the race-free channel back to the emit loop.
type sourceInfo struct {
	name  string
	n, m  int
	edges int
}

// taggedItems adapts a (item, source label) sequence to the engine's
// item sequence, recording each item's label and shape on its Tag.
func taggedItems(items iter.Seq2[engine.BatchItem, string]) iter.Seq[engine.BatchItem] {
	return func(yield func(engine.BatchItem) bool) {
		for item, source := range items {
			info := sourceInfo{name: source}
			switch {
			case item.Instance != nil:
				info.n, info.m = item.Instance.N(), item.Instance.M
			case item.Graph != nil:
				info.n, info.m = item.Graph.N(), item.Graph.M
				info.edges = item.Graph.NumEdges()
			}
			item.Tag = info
			if !yield(item) {
				return
			}
		}
	}
}

// frontLineEmitter returns the emit callback encoding one FrontLine
// per BatchResult onto w, updating st as it goes. The encoder writes
// each line with a single Write call, so a flushing writer (the HTTP
// path) streams whole lines.
func frontLineEmitter(w io.Writer, st *Stats) func(engine.BatchResult) error {
	enc := json.NewEncoder(w)
	return func(br engine.BatchResult) error {
		st.Items++
		src := br.Tag.(sourceInfo)
		line := FrontLine{Source: src.name, Index: br.Index, N: src.n, M: src.m, Edges: src.edges}
		if br.Err != nil {
			st.Failed++
			line.Error = br.Err.Error()
			return enc.Encode(line)
		}
		if br.CacheHit {
			st.CacheHits++
		}
		res := br.Result
		line.CmaxLB = res.Bounds.CmaxLB
		line.MmaxLB = res.Bounds.MmaxLB
		line.Runs = len(res.Runs)
		line.Front = make([]FrontLinePoint, len(res.Front))
		for i, p := range res.Front {
			line.Front[i] = FrontLinePoint{
				Cmax:    p.Value.Cmax,
				Mmax:    p.Value.Mmax,
				Witness: res.Runs[p.RunIndex].Label(),
			}
		}
		return enc.Encode(line)
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"storagesched/internal/cache"
)

// Small deterministic test documents: three instances and one task
// DAG, in the JSON formats the CLI reads from files.
const (
	docInstA = `{"m":2,"tasks":[{"id":0,"p":4,"s":1},{"id":1,"p":3,"s":2},{"id":2,"p":5,"s":3},{"id":3,"p":2,"s":2}]}`
	docInstB = `{"m":3,"tasks":[{"id":0,"p":7,"s":2},{"id":1,"p":1,"s":6},{"id":2,"p":4,"s":1},{"id":3,"p":6,"s":3},{"id":4,"p":2,"s":2}]}`
	docGraph = `{"m":2,"tasks":[{"id":0,"p":4,"s":2},{"id":1,"p":3,"s":5},{"id":2,"p":6,"s":1}],"edges":[[0,1],[0,2]]}`
)

func testBody() string { return docInstA + "\n" + docInstB + "\n" + docGraph + "\n" }

func testSpec(t *testing.T) SweepSpec {
	t.Helper()
	grid, err := BuildGrid("geo", 0.5, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	return SweepSpec{Deltas: grid}
}

// newTestServer builds a resident session plus its HTTP server; both
// are torn down with the test.
func newTestServer(t *testing.T, scfg SessionConfig, cfg ServerConfig) (*Session, *Server, *httptest.Server) {
	t.Helper()
	scfg.Resident = true
	if scfg.Workers == 0 {
		scfg.Workers = 2
	}
	session := NewSession(scfg)
	s := NewServer(session, cfg)
	srv := httptest.NewServer(s)
	t.Cleanup(func() {
		srv.Close()
		session.Close()
	})
	return session, s, srv
}

// TestServeSweepMatchesDirect: the bytes streamed over HTTP must equal
// a direct session Sweep over the same decoded body — the transport
// adds nothing and reorders nothing.
func TestServeSweepMatchesDirect(t *testing.T) {
	session, _, srv := newTestServer(t, SessionConfig{}, ServerConfig{})
	spec := testSpec(t)

	var want bytes.Buffer
	st, err := session.Sweep(context.Background(), DecodeItems("body", strings.NewReader(testBody()), nil), spec, &want)
	if err != nil {
		t.Fatalf("direct Sweep: %v", err)
	}

	resp, err := http.Post(srv.URL+"/v1/sweep?dmin=0.5&dmax=8&points=4", "application/jsonl", strings.NewReader(testBody()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("HTTP body differs from direct sweep:\n got: %s\nwant: %s", got, want.Bytes())
	}
	// Trailers carry the totals, readable only after the body is
	// drained.
	if tr := resp.Trailer.Get(TrailerItems); tr != fmt.Sprint(st.Items) {
		t.Errorf("trailer %s = %q, want %d", TrailerItems, tr, st.Items)
	}
	if tr := resp.Trailer.Get(TrailerFailed); tr != "0" {
		t.Errorf("trailer %s = %q, want 0", TrailerFailed, tr)
	}
	if tr := resp.Trailer.Get(TrailerError); tr != "" {
		t.Errorf("trailer %s = %q, want empty", TrailerError, tr)
	}
}

// TestServeSweepWarmCache: a second identical request against a cached
// session must be served from the cache — same bytes, and the
// cache-hits trailer accounts for every item.
func TestServeSweepWarmCache(t *testing.T) {
	fcache, err := cache.New(cache.Config{MemEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	_, _, srv := newTestServer(t, SessionConfig{Cache: fcache}, ServerConfig{})

	post := func() ([]byte, string) {
		resp, err := http.Post(srv.URL+"/v1/sweep?dmin=0.5&dmax=8&points=4", "application/jsonl", strings.NewReader(testBody()))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		return body, resp.Trailer.Get(TrailerCacheHits)
	}

	cold, coldHits := post()
	warm, warmHits := post()
	if coldHits != "0" {
		t.Errorf("cold request cache hits = %s, want 0", coldHits)
	}
	if warmHits != "3" {
		t.Errorf("warm request cache hits = %s, want 3", warmHits)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm bytes differ from cold:\n cold: %s\n warm: %s", cold, warm)
	}

	// The stats endpoint reflects the same counters.
	resp, err := http.Get(srv.URL + "/v1/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Enabled bool  `json:"enabled"`
		Hits    int64 `json:"hits"`
		Puts    int64 `json:"puts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Enabled {
		t.Error("cache/stats enabled = false, want true")
	}
	if stats.Hits != 3 {
		t.Errorf("cache/stats hits = %d, want 3", stats.Hits)
	}
	if stats.Puts != 3 {
		t.Errorf("cache/stats puts = %d, want 3", stats.Puts)
	}
}

// TestServeSweepBadRequest: malformed query parameters and impossible
// parameter combinations are 400s before any work runs.
func TestServeSweepBadRequest(t *testing.T) {
	_, _, srv := newTestServer(t, SessionConfig{}, ServerConfig{})
	for _, q := range []string{
		"points=three",
		"dmin=low",
		"grid=spiral",
		"refine=maybe",
		"refine=1&shards=2",
		"shard-policy=alphabetical",
	} {
		resp, err := http.Post(srv.URL+"/v1/sweep?"+q, "application/jsonl", strings.NewReader(testBody()))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestServeSweepRefine: ?refine=1 runs the adaptive pipeline — the
// response differs from the plain sweep only the way the CLI's -refine
// output does, which the schedd golden test pins; here we assert it
// parses and covers every item.
func TestServeSweepRefine(t *testing.T) {
	_, _, srv := newTestServer(t, SessionConfig{}, ServerConfig{})
	resp, err := http.Post(srv.URL+"/v1/sweep?dmin=0.5&dmax=8&points=4&refine=1&refine-gap=0.05&refine-max-points=4",
		"application/jsonl", strings.NewReader(testBody()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3: %s", len(lines), body)
	}
	for i, ln := range lines {
		var fl FrontLine
		if err := json.Unmarshal(ln, &fl); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if fl.Index != i || fl.Error != "" || len(fl.Front) == 0 {
			t.Errorf("line %d: index=%d error=%q front=%d", i, fl.Index, fl.Error, len(fl.Front))
		}
	}
}

// heldSweep starts a sweep whose body stays open, so the request holds
// its admission slot until release is called.
func heldSweep(t *testing.T, url string, client string) (release func(), done chan error) {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", url+"/v1/sweep?dmin=0.5&dmax=8&points=4", pr)
	if err != nil {
		t.Fatal(err)
	}
	if client != "" {
		req.Header.Set("X-Client-ID", client)
	}
	started := make(chan struct{})
	done = make(chan error, 1)
	go func() {
		close(started)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- err
			return
		}
		_, err = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		done <- err
	}()
	<-started
	// One decodable document, then hold the stream open.
	if _, err := pw.Write([]byte(docInstA + "\n")); err != nil {
		t.Fatal(err)
	}
	return func() { pw.Close() }, done
}

// TestServeBackpressure: with one run slot and no queue, a second
// sweep is refused immediately with 429 and a Retry-After hint; the
// per-client cap rejects a client's second sweep even when the global
// queue has room.
func TestServeBackpressure(t *testing.T) {
	_, _, srv := newTestServer(t, SessionConfig{},
		ServerConfig{MaxConcurrent: 1, MaxQueue: -1, MaxPerClient: -1, RetryAfter: 3 * time.Second})

	release, done := heldSweep(t, srv.URL, "")
	defer func() {
		release()
		if err := <-done; err != nil {
			t.Errorf("held sweep: %v", err)
		}
	}()

	// The slot is taken once the held sweep is admitted; poll briefly —
	// admission happens before the body is read, so this settles fast.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(srv.URL+"/v1/sweep?dmin=0.5&dmax=8&points=4", "application/jsonl", strings.NewReader(testBody()))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if ra := resp.Header.Get("Retry-After"); ra != "3" {
				t.Errorf("Retry-After = %q, want %q", ra, "3")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw 429 (last status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServePerClientFairness: one client at its per-client cap is
// refused while another client still gets through the same queue.
func TestServePerClientFairness(t *testing.T) {
	_, _, srv := newTestServer(t, SessionConfig{},
		ServerConfig{MaxConcurrent: 2, MaxQueue: 8, MaxPerClient: 1})

	release, done := heldSweep(t, srv.URL, "greedy")
	defer func() {
		release()
		if err := <-done; err != nil {
			t.Errorf("held sweep: %v", err)
		}
	}()

	post := func(client string) int {
		req, err := http.NewRequest("POST", srv.URL+"/v1/sweep?dmin=0.5&dmax=8&points=4", strings.NewReader(testBody()))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := post("greedy"); code == http.StatusTooManyRequests {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("greedy client never hit its per-client cap")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code := post("modest"); code != http.StatusOK {
		t.Errorf("other client got %d, want 200", code)
	}
}

// TestServeDisconnectCancelsSweep: a client vanishing mid-stream must
// cancel the batch and leak no goroutines — the resident pool stays at
// its steady size.
func TestServeDisconnectCancelsSweep(t *testing.T) {
	_, _, srv := newTestServer(t, SessionConfig{Workers: 2}, ServerConfig{})

	// Warm up (routes, pool, transport) before taking the baseline.
	resp, err := http.Post(srv.URL+"/v1/sweep?dmin=0.5&dmax=8&points=4", "application/jsonl", strings.NewReader(docInstA+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	http.DefaultClient.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	// A large batch, cancelled after the first line arrives.
	var big strings.Builder
	for range 200 {
		big.WriteString(docInstB + "\n")
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", srv.URL+"/v1/sweep?dmin=0.5&dmax=8&points=4", strings.NewReader(big.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		t.Fatalf("first byte: %v", err)
	}
	cancel()
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	http.DefaultClient.CloseIdleConnections()

	// The batch's goroutines (producer, emitter, in-flight jobs) must
	// wind down; poll with slack for the runtime to settle.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(25 * time.Millisecond)
	}
}

// TestServeDrain: BeginDrain flips readiness, refuses new sweeps with
// 503 and lets the in-flight sweep run to completion.
func TestServeDrain(t *testing.T) {
	_, s, ts := newTestServer(t, SessionConfig{}, ServerConfig{})

	release, done := heldSweep(t, ts.URL, "")

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before drain: %d", code)
	}
	s.BeginDrain()
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz draining: %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz draining: %d, want 200", code)
	}
	resp, err := http.Post(ts.URL+"/v1/sweep?dmin=0.5&dmax=8&points=4", "application/jsonl", strings.NewReader(testBody()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new sweep while draining: %d, want 503", resp.StatusCode)
	}

	// The sweep admitted before the drain still finishes cleanly.
	release()
	if err := <-done; err != nil {
		t.Errorf("in-flight sweep during drain: %v", err)
	}
}

// Package serve is the session layer between the sweep engine and its
// front ends: the schedcli command line and the schedd HTTP daemon
// share exactly one code path from "a stream of instances and task
// DAGs" to "one JSONL front line per item", so their outputs are
// byte-identical on identical inputs — the contract the golden files,
// the shard merge tool and the CI smoke jobs all pin.
//
// A Session owns what persists across sweeps: an optional resident
// engine.Pool (the daemon keeps one for its whole lifetime; the CLI
// runs per-call pools) and an optional content-addressed front cache.
// A SweepSpec carries what varies per sweep: the δ-grid, family
// selection, streaming window, adaptive-refinement and sharding
// parameters. Session.Sweep executes one spec over one item stream and
// writes the JSONL fronts to an io.Writer, in input order.
//
// Server (server.go) wraps a Session with the HTTP/JSONL API —
// admission control with bounded backpressure and per-client fairness,
// cache statistics, health/readiness probes and graceful drain.
package serve

import (
	"context"
	"fmt"
	"io"
	"iter"
	"runtime"

	"storagesched/internal/cache"
	"storagesched/internal/engine"
	"storagesched/internal/metrics"
	"storagesched/internal/refine"
	"storagesched/internal/shard"
)

// SessionConfig parameterizes a Session.
type SessionConfig struct {
	// Workers sizes the worker pool (resident or per-call); 0 or
	// negative means runtime.NumCPU().
	Workers int

	// Resident keeps one engine.Pool alive for the Session's lifetime:
	// every Sweep submits its jobs there, so concurrent sweeps share
	// workers and their warm scratch buffers. When false each Sweep
	// runs a private pool, torn down when the call returns — the CLI
	// shape.
	Resident bool

	// Cache, when non-nil, is the content-addressed front cache every
	// sweep of the session consults and fills. Shared across sweeps
	// (and safe for their concurrency), it is what makes a warm daemon
	// answer repeated requests without recomputing.
	Cache *cache.Cache

	// Metrics, when non-nil, is the registry the session instruments:
	// sweep/item counters and the sweep wall-time histogram at the
	// session level, the sched_engine_* families for every batch the
	// session runs, and the sched_cache_* families when Cache is set.
	// Nil disables instrumentation; the JSONL output is byte-identical
	// either way.
	Metrics *metrics.Registry
}

// Session is one long-lived sweep execution context: the pool
// configuration plus the shared front cache. Both front ends construct
// one — the CLI per command invocation, the daemon per process — and
// run every sweep through it. A Session is safe for concurrent Sweep
// calls.
type Session struct {
	workers int
	cache   *cache.Cache
	pool    *engine.Pool
	reg     *metrics.Registry
	met     *sessionMetrics
	engMet  *engine.Metrics
}

// NewSession builds a session; close it with Close when done (a
// must for resident sessions, a no-op otherwise).
func NewSession(cfg SessionConfig) *Session {
	s := &Session{workers: cfg.Workers, cache: cfg.Cache, reg: cfg.Metrics}
	if s.workers <= 0 {
		s.workers = runtime.NumCPU()
	}
	if cfg.Resident {
		s.pool = engine.NewPool(s.workers)
	}
	s.met = newSessionMetrics(s.reg)
	s.engMet = engine.NewMetrics(s.reg)
	s.cache.RegisterMetrics(s.reg)
	return s
}

// Workers returns the session's effective pool size.
func (s *Session) Workers() int { return s.workers }

// Cache returns the session's front cache (nil when caching is off) —
// the daemon's statistics endpoint reads counters from it.
func (s *Session) Cache() *cache.Cache { return s.cache }

// Registry returns the session's metrics registry (nil when
// instrumentation is off) — the daemon's /metrics endpoint and the
// CLI's -stats flag encode it.
func (s *Session) Registry() *metrics.Registry { return s.reg }

// Close releases the resident pool, if any: queued jobs finish and the
// workers exit. Callers must quiesce Sweep calls first; a draining
// server does this by construction.
func (s *Session) Close() {
	if s.pool != nil {
		s.pool.Close()
	}
}

// OpenCache builds the front cache selected by the -cache-dir and
// -cache-mem knobs both front ends expose; both zero means caching off
// (a nil cache).
func OpenCache(dir string, mem int) (*cache.Cache, error) {
	if dir == "" && mem == 0 {
		return nil, nil
	}
	return cache.New(cache.Config{Dir: dir, MemEntries: mem})
}

// SweepSpec is one sweep's parameters — everything a request (CLI
// flags or HTTP query) may vary.
type SweepSpec struct {
	// Deltas is the resolved δ-grid (see BuildGrid). Required
	// non-empty.
	Deltas []float64

	// SkipSBO / SkipRLS exclude an algorithm family.
	SkipSBO, SkipRLS bool

	// MaxPending bounds the items in flight; 0 means twice the worker
	// count.
	MaxPending int

	// Refine enables the adaptive two-pass pipeline: a coarse sweep at
	// Deltas, then targeted re-sweeps of the δ-intervals where each
	// front's relative gap exceeds RefineGap. Does not compose with
	// Shards > 1.
	Refine bool

	// RefineGap and RefineMaxPoints parameterize refinement; zero
	// values resolve to refine.DefaultGap / refine.DefaultMaxPoints.
	RefineGap       float64
	RefineMaxPoints int

	// Shards > 1 runs the batch as K deterministic in-process shards
	// merged back into input order (byte-identical to an unsharded
	// run). Shard pools are private per shard — a resident session
	// pool is not used on this path.
	Shards int

	// ShardPolicy places items on shards when Shards > 1.
	ShardPolicy shard.Policy
}

// Validate reports whether the spec is executable; front ends call it
// early so flag and query errors surface before any work runs.
func (sp SweepSpec) Validate() error {
	if sp.Refine && sp.Shards > 1 {
		return fmt.Errorf("-refine runs the batch through the two-pass adaptive pipeline and does not compose with -shards")
	}
	return nil
}

// BuildGrid resolves a named grid spacing ("geo" | "lin") over
// [dmin, dmax] with the given point count — the grid vocabulary both
// front ends expose.
func BuildGrid(kind string, dmin, dmax float64, points int) ([]float64, error) {
	switch kind {
	case "geo":
		return engine.GeometricGrid(dmin, dmax, points)
	case "lin":
		return engine.LinearGrid(dmin, dmax, points)
	}
	return nil, fmt.Errorf("unknown grid spacing %q", kind)
}

// Stats summarizes one Sweep call.
type Stats struct {
	// Items counts emitted lines; Failed counts those carrying a
	// per-item error.
	Items, Failed int

	// CacheHits counts items whose Result was served entirely from the
	// session cache.
	CacheHits int
}

// Sweep executes one spec over the item stream and writes one JSONL
// front line per item to w, in input order (see FrontLine for the line
// schema — the bytes are the sweepbatch golden contract). Per-item
// failures become error lines and count in Stats.Failed; the sweep
// continues past them. A fatal error — context cancellation, a write
// failure on w, an invalid spec — aborts the stream and is returned.
//
// items yields (item, source label) pairs; the label names the item in
// its output line. The stream is consumed concurrently with emission,
// and any Tag on the items is replaced by the session's own per-item
// metadata.
func (s *Session) Sweep(ctx context.Context, items iter.Seq2[engine.BatchItem, string], spec SweepSpec, w io.Writer) (Stats, error) {
	var st Stats
	if err := spec.Validate(); err != nil {
		return st, err
	}
	s.met.sweepStarted()
	t0 := s.met.clockStart()
	bcfg := engine.BatchConfig{
		Config: engine.Config{
			Deltas:  spec.Deltas,
			Workers: s.workers,
			SkipSBO: spec.SkipSBO,
			SkipRLS: spec.SkipRLS,
		},
		MaxPending: spec.MaxPending,
		Cache:      s.cache,
		Pool:       s.pool,
		Metrics:    s.engMet,
	}
	tagged := taggedItems(items)
	emit := frontLineEmitter(w, &st)

	var err error
	switch {
	case spec.Shards > 1:
		// Sharded: materialize the stream, place items
		// deterministically and run one private pool per shard;
		// results merge back in input order, so the output is
		// byte-identical to an unsharded run.
		var all []engine.BatchItem
		tagged(func(it engine.BatchItem) bool { all = append(all, it); return true })
		var plan *shard.Plan
		plan, err = shard.NewPlan(spec.Shards, spec.ShardPolicy, all)
		if err != nil {
			return st, err
		}
		bcfg.Pool = nil
		err = shard.Run(ctx, all, plan, bcfg, emit)
	case spec.Refine:
		// Adaptive: a coarse pass at the configured grid, then a
		// refinement pass targeting each front's bends; one merged
		// front per line, still in input order.
		rcfg := refine.Config{Gap: spec.RefineGap, MaxPoints: spec.RefineMaxPoints}
		err = refine.SweepBatchAdaptive(ctx, tagged, bcfg, rcfg, emit)
	default:
		err = engine.SweepBatch(ctx, tagged, bcfg, emit)
	}
	s.met.sweepDone(st, err, t0)
	return st, err
}

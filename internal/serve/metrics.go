package serve

// Session- and server-level instrumentation. The session bundle
// counts sweeps and items wherever the session runs (daemon or CLI —
// `schedcli sweepbatch -stats` prints the same registry the daemon
// scrapes); the server bundle counts what only exists at the HTTP
// boundary: admission refusals by reason, per-client fairness
// rejections, drain transitions, admission-queue wait and streamed
// bytes. All hooks are nil-safe, so an unwired session or server pays
// one branch per event and no instrumentation can perturb the JSONL
// bytes (the goldens pin this).

import (
	"time"

	"storagesched/internal/metrics"
)

// Admission-refusal reason labels on sched_refusals_total.
const (
	// RefusalQueueFull labels 429s from the global held-slot bound.
	RefusalQueueFull = "queue_full"
	// RefusalClientCap labels 429s from the per-client fairness cap.
	RefusalClientCap = "client_cap"
	// RefusalDraining labels 503s refused because the server drains.
	RefusalDraining = "draining"
)

// sessionMetrics is the per-session instrument bundle: sweep and item
// totals plus the per-sweep wall-time histogram.
type sessionMetrics struct {
	sweepsStarted   *metrics.Counter
	sweepsCompleted *metrics.Counter
	sweepsFailed    *metrics.Counter
	items           *metrics.Counter
	itemFailures    *metrics.Counter
	cacheHitItems   *metrics.Counter
	sweepSeconds    *metrics.Histogram
}

// newSessionMetrics registers the session families on reg; a nil
// registry returns nil (instrumentation off).
func newSessionMetrics(reg *metrics.Registry) *sessionMetrics {
	if reg == nil {
		return nil
	}
	return &sessionMetrics{
		sweepsStarted: reg.Counter("sched_sweeps_started_total",
			"sweeps begun (Session.Sweep calls)"),
		sweepsCompleted: reg.Counter("sched_sweeps_completed_total",
			"sweeps that ran to the end of their stream"),
		sweepsFailed: reg.Counter("sched_sweeps_failed_total",
			"sweeps aborted by a fatal error (cancellation, invalid spec, write failure)"),
		items: reg.Counter("sched_sweep_items_total",
			"front lines emitted across all sweeps"),
		itemFailures: reg.Counter("sched_sweep_item_failures_total",
			"emitted lines carrying a per-item error"),
		cacheHitItems: reg.Counter("sched_sweep_cache_hit_items_total",
			"items served entirely from the front cache"),
		sweepSeconds: reg.Histogram("sched_sweep_seconds",
			"wall time of one whole sweep (stream decode to last line)", nil),
	}
}

// sweepStarted counts one Sweep call passing spec validation.
func (m *sessionMetrics) sweepStarted() {
	if m != nil {
		m.sweepsStarted.Inc()
	}
}

// clockStart returns the sweep's start time — zero when
// instrumentation is off, so an unwired session pays no clock read.
func (m *sessionMetrics) clockStart() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// sweepDone folds one finished Sweep call, started at t0, into the
// counters and the wall-time histogram.
func (m *sessionMetrics) sweepDone(st Stats, err error, t0 time.Time) {
	if m == nil {
		return
	}
	if err != nil {
		m.sweepsFailed.Inc()
	} else {
		m.sweepsCompleted.Inc()
	}
	m.items.Add(int64(st.Items))
	m.itemFailures.Add(int64(st.Failed))
	m.cacheHitItems.Add(int64(st.CacheHits))
	m.sweepSeconds.ObserveSince(t0)
}

// serverMetrics is the HTTP-boundary instrument bundle.
type serverMetrics struct {
	refusals         *metrics.CounterVec // by reason
	clientRefusals   *metrics.CounterVec // fairness rejections by client
	drainTransitions *metrics.Counter
	bytesStreamed    *metrics.Counter
	admissionWait    *metrics.Histogram
	sweepsInFlight   *metrics.Gauge
}

// newServerMetrics registers the server families on reg; a nil
// registry returns nil (instrumentation off).
func newServerMetrics(reg *metrics.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	return &serverMetrics{
		refusals: reg.CounterVec("sched_refusals_total",
			"sweep requests refused before running (429s by reason, plus refusals while draining)",
			"reason"),
		clientRefusals: reg.CounterVec("sched_client_refusals_total",
			"per-client fairness rejections (cardinality-capped; overflow folds into _other)",
			"client"),
		drainTransitions: reg.Counter("sched_drain_transitions_total",
			"times the server flipped from admitting to draining"),
		bytesStreamed: reg.Counter("sched_sweep_bytes_streamed_total",
			"response-body bytes streamed by /v1/sweep"),
		admissionWait: reg.Histogram("sched_admission_wait_seconds",
			"time an admitted sweep waited for a run slot", nil),
		sweepsInFlight: reg.Gauge("sched_sweeps_inflight",
			"sweep requests holding a run slot right now"),
	}
}

// refused counts one refusal; client is recorded only for fairness
// rejections, where one aggressive client is the story worth telling.
func (m *serverMetrics) refused(reason, client string) {
	if m == nil {
		return
	}
	m.refusals.With(reason).Inc()
	if reason == RefusalClientCap {
		m.clientRefusals.With(client).Inc()
	}
}

// slotWaitStart returns the moment an admitted sweep began waiting for
// a run slot — zero when instrumentation is off, so an unwired server
// pays no clock read.
func (m *serverMetrics) slotWaitStart() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// admitted records the slot wait that started at t0 and the sweep
// entering execution.
func (m *serverMetrics) admitted(t0 time.Time) {
	if m == nil {
		return
	}
	m.admissionWait.ObserveSince(t0)
	m.sweepsInFlight.Inc()
}

// finished records the sweep leaving execution and its streamed body
// bytes.
func (m *serverMetrics) finished(bytes int64) {
	if m == nil {
		return
	}
	m.sweepsInFlight.Dec()
	m.bytesStreamed.Add(bytes)
}

// drained counts one admitting-to-draining transition.
func (m *serverMetrics) drained() {
	if m == nil {
		return
	}
	m.drainTransitions.Inc()
}

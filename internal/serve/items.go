package serve

// Decoding item streams. Both front ends accept the same documents —
// an instance {"m","tasks"}, a task DAG {"m","tasks","edges"} (the
// presence of "edges", even empty, selects the DAG kind), or an
// envelope {"source": "...", "item": {...}} naming its payload — and
// the same two stream shapes: a stream of concatenated JSON values
// (compact JSONL and indented documents alike) and a line-oriented
// JSONL file where each bad line fails alone.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"iter"
	"strings"

	"storagesched/internal/dag"
	"storagesched/internal/engine"
	"storagesched/internal/model"
)

// itemProbe sniffs a document's top-level keys to classify it without
// committing to a decode: an envelope carries "item", a graph carries
// "edges", anything else decodes as an instance.
type itemProbe struct {
	Source *string         `json:"source"`
	Item   json.RawMessage `json:"item"`
	Edges  json.RawMessage `json:"edges"`
}

// decodeOne turns one raw document into a batch item and its source
// label; source is the default label used when the document is not an
// envelope (or is one without a "source").
func decodeOne(raw json.RawMessage, source string) (engine.BatchItem, string) {
	var probe itemProbe
	// A non-object document (array, number) fails below in the kind
	// decoder with its real error; the probe only classifies.
	_ = json.Unmarshal(raw, &probe)
	if probe.Item != nil {
		if probe.Source != nil && *probe.Source != "" {
			source = *probe.Source
		}
		raw = probe.Item
		probe = itemProbe{}
		_ = json.Unmarshal(raw, &probe)
	}
	item := engine.BatchItem{}
	if probe.Edges != nil {
		g, err := dag.ReadGraphJSON(bytes.NewReader(raw))
		if err != nil {
			item.Err = fmt.Errorf("%s: %w", source, err)
		} else {
			item.Graph = g
		}
		return item, source
	}
	in, err := model.ReadInstanceJSON(bytes.NewReader(raw))
	if err != nil {
		item.Err = fmt.Errorf("%s: %w", source, err)
	} else {
		item.Instance = in
	}
	return item, source
}

// DecodeItems yields one item per JSON document decoded from r —
// accepting compact JSONL, indented multi-line documents and envelopes
// alike — labelling them "label:1", "label:2", ... unless an envelope
// names its own source. c, when non-nil, is closed once the stream is
// drained. A malformed document poisons the rest of the stream (there
// is no line boundary to resynchronize on), so it is reported once as
// a final error item and the stream ends; a document that parses but
// fails item validation rides its error on the item and fails alone.
func DecodeItems(label string, r io.Reader, c io.Closer) iter.Seq2[engine.BatchItem, string] {
	return func(yield func(engine.BatchItem, string) bool) {
		if c != nil {
			defer c.Close()
		}
		dec := json.NewDecoder(r)
		for k := 1; ; k++ {
			var raw json.RawMessage
			if err := dec.Decode(&raw); err != nil {
				if err != io.EOF {
					yield(engine.BatchItem{Err: fmt.Errorf("%s value %d: %w", label, k, err)},
						fmt.Sprintf("%s:%d", label, k))
				}
				return
			}
			item, source := decodeOne(raw, fmt.Sprintf("%s:%d", label, k))
			if !yield(item, source) {
				return
			}
		}
	}
}

// DecodeJSONLItems yields one item per non-empty line of r, closing c
// (when non-nil) once the stream is drained. Unlike DecodeItems, a bad
// line fails alone — the line boundary resynchronizes the stream — and
// the remaining lines still sweep.
func DecodeJSONLItems(label string, r io.Reader, c io.Closer) iter.Seq2[engine.BatchItem, string] {
	return func(yield func(engine.BatchItem, string) bool) {
		if c != nil {
			defer c.Close()
		}
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			text := strings.TrimSpace(sc.Text())
			if text == "" {
				continue
			}
			item, source := decodeOne(json.RawMessage(text), fmt.Sprintf("%s:%d", label, lineNo))
			if !yield(item, source) {
				return
			}
		}
		if err := sc.Err(); err != nil {
			yield(engine.BatchItem{Err: fmt.Errorf("%s: %w", label, err)}, label)
		}
	}
}

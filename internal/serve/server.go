package serve

// The schedd HTTP layer. A Server wraps one Session — one resident
// pool, one warm cache — with the JSON/JSONL API documented in
// docs/API.md: POST /v1/sweep streams front lines as they complete,
// GET /v1/cache/stats snapshots the cache counters, and the health
// probes plus BeginDrain give the daemon a graceful exit. Admission is
// a bounded queue with a per-client fairness cap; a request the queue
// cannot hold is refused with 429 and a Retry-After hint rather than
// queued without bound.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"storagesched/internal/metrics"
	"storagesched/internal/refine"
	"storagesched/internal/shard"
)

// Default admission limits (see ServerConfig).
const (
	DefaultMaxConcurrent = 2
	DefaultMaxQueue      = 8
	DefaultMaxPerClient  = 2
	DefaultMaxBodyBytes  = 64 << 20
	DefaultRetryAfter    = 2 * time.Second
)

// ServerConfig parameterizes a Server.
type ServerConfig struct {
	// MaxConcurrent bounds the sweeps running at once; 0 means
	// DefaultMaxConcurrent.
	MaxConcurrent int

	// MaxQueue bounds the admitted-but-waiting sweeps beyond
	// MaxConcurrent; 0 means DefaultMaxQueue, negative means no queue
	// (admit only what can run immediately).
	MaxQueue int

	// MaxPerClient caps one client's held slots (running plus queued),
	// so a single aggressive client cannot occupy the whole queue; 0
	// means DefaultMaxPerClient, negative means no per-client cap.
	MaxPerClient int

	// MaxBodyBytes bounds a sweep request body; 0 means
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64

	// RetryAfter is the hint returned with 429 responses; 0 means
	// DefaultRetryAfter.
	RetryAfter time.Duration

	// AccessLog, when non-nil, receives one structured line per
	// finished request: id, method, path, client, status, bytes,
	// duration. The daemon wires a JSON handler here (JSONL on stderr);
	// nil disables access logging.
	AccessLog *slog.Logger
}

// Server is the HTTP front end over a Session. Construct with
// NewServer; it implements http.Handler.
type Server struct {
	session   *Session
	mux       *http.ServeMux
	adm       *admission
	maxBody   int64
	retry     time.Duration
	draining  atomic.Bool
	reg       *metrics.Registry
	met       *serverMetrics
	accessLog *slog.Logger
	bootID    string
	reqSeq    atomic.Uint64
}

// NewServer wraps the session with the HTTP API. The server does not
// own the session: closing it (after draining) is the caller's job,
// because drain order — stop admitting, finish in flight, then close —
// is only visible at the daemon level.
func NewServer(session *Session, cfg ServerConfig) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = DefaultMaxQueue
	} else if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.MaxPerClient == 0 {
		cfg.MaxPerClient = DefaultMaxPerClient
	} else if cfg.MaxPerClient < 0 {
		cfg.MaxPerClient = math.MaxInt
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	s := &Server{
		session: session,
		adm: &admission{
			slots:        make(chan struct{}, cfg.MaxConcurrent),
			maxHeld:      cfg.MaxConcurrent + cfg.MaxQueue,
			maxPerClient: cfg.MaxPerClient,
			perClient:    make(map[string]int),
		},
		maxBody:   cfg.MaxBodyBytes,
		retry:     cfg.RetryAfter,
		accessLog: cfg.AccessLog,
	}
	s.reg = session.Registry()
	if s.reg == nil {
		// /metrics always answers; without a session registry it shows
		// the HTTP-boundary families only.
		s.reg = metrics.NewRegistry()
	}
	s.met = newServerMetrics(s.reg)
	var boot [4]byte
	rand.Read(boot[:])
	s.bootID = hex.EncodeToString(boot[:])
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/cache/stats", s.handleCacheStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s
}

// RequestIDHeader carries the server-assigned request ID: a header on
// every response, and additionally a trailer on /v1/sweep (where the
// header copy is withdrawn so the ID rides the stream's tail next to
// X-Sweep-Error).
const RequestIDHeader = "X-Request-ID"

// requestIDKey carries the request ID through the request context.
type requestIDKey struct{}

// requestIDFrom extracts the middleware-assigned request ID.
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// nextRequestID mints a process-unique request ID: a random boot
// prefix (so IDs from different daemon runs never collide in
// aggregated logs) plus a monotone sequence number.
func (s *Server) nextRequestID() string {
	return s.bootID + "-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
}

// logResponseWriter observes status and body bytes for the access
// log. Unwrap keeps http.ResponseController controls (flush, full
// duplex) working through the wrapper.
type logResponseWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (lw *logResponseWriter) WriteHeader(code int) {
	if lw.status == 0 {
		lw.status = code
	}
	lw.ResponseWriter.WriteHeader(code)
}

func (lw *logResponseWriter) Write(p []byte) (int, error) {
	if lw.status == 0 {
		lw.status = http.StatusOK
	}
	n, err := lw.ResponseWriter.Write(p)
	lw.bytes += int64(n)
	return n, err
}

func (lw *logResponseWriter) Unwrap() http.ResponseWriter { return lw.ResponseWriter }

// ServeHTTP implements http.Handler: it assigns the request ID,
// dispatches, and writes the access-log line.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := s.nextRequestID()
	w.Header().Set(RequestIDHeader, id)
	r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))
	if s.accessLog == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	lw := &logResponseWriter{ResponseWriter: w}
	t0 := time.Now()
	s.mux.ServeHTTP(lw, r)
	status := lw.status
	if status == 0 {
		status = http.StatusOK
	}
	s.accessLog.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("client", clientKey(r)),
		slog.Int("status", status),
		slog.Int64("bytes", lw.bytes),
		slog.Duration("duration", time.Since(t0)),
	)
}

// BeginDrain stops admitting sweeps: /readyz flips to 503 so load
// balancers stop routing here, new sweeps are refused with 503, and
// in-flight sweeps run to completion (waited on by http.Server
// Shutdown, not here).
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.met.drained()
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Trailer names on /v1/sweep responses: the sweep totals are only
// known once the stream ends, so they arrive as HTTP trailers.
const (
	TrailerItems     = "X-Sweep-Items"
	TrailerFailed    = "X-Sweep-Failed"
	TrailerCacheHits = "X-Sweep-Cache-Hits"
	TrailerError     = "X-Sweep-Error"

	// TrailerRequestID is RequestIDHeader delivered as a trailer on
	// the streamed sweep response (see RequestIDHeader).
	TrailerRequestID = RequestIDHeader
)

// admission is the bounded two-stage gate in front of the session: a
// request first takes a hold (a place in the building, bounded by
// maxHeld, at most maxPerClient per client), then waits for one of the
// run slots. Rejection is immediate — there is no unbounded queue.
type admission struct {
	slots        chan struct{} // semaphore: sweeps running
	maxHeld      int           // running + queued bound
	maxPerClient int

	mu        sync.Mutex
	held      int
	perClient map[string]int
}

var (
	errQueueFull  = errors.New("sweep queue is full")
	errClientFull = errors.New("client has too many sweeps in flight")
)

// hold reserves a place for the client, or reports why it cannot.
func (a *admission) hold(client string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.perClient[client] >= a.maxPerClient {
		return errClientFull
	}
	if a.held >= a.maxHeld {
		return errQueueFull
	}
	a.held++
	a.perClient[client]++
	return nil
}

// release returns the client's place.
func (a *admission) release(client string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.held--
	if a.perClient[client]--; a.perClient[client] <= 0 {
		delete(a.perClient, client)
	}
}

// clientKey identifies the requester for the per-client cap: the
// X-Client-ID header when the client sends one, else its remote host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// reject writes a 429 with the Retry-After hint.
func (s *Server) reject(w http.ResponseWriter, reason error) {
	w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.retry.Seconds()))))
	http.Error(w, reason.Error(), http.StatusTooManyRequests)
}

// sweepSpecFromQuery builds the SweepSpec from /v1/sweep query
// parameters. The names and defaults mirror the schedcli sweepbatch
// flags one for one (dmin, dmax, points, grid, no-sbo, no-rls,
// pending, refine, refine-gap, refine-max-points, shards,
// shard-policy); docs/API.md is the reference.
func sweepSpecFromQuery(q url.Values) (SweepSpec, error) {
	var spec SweepSpec
	dmin, err := floatParam(q, "dmin", 0.25)
	if err != nil {
		return spec, err
	}
	dmax, err := floatParam(q, "dmax", 8)
	if err != nil {
		return spec, err
	}
	points, err := intParam(q, "points", 32)
	if err != nil {
		return spec, err
	}
	gridKind := q.Get("grid")
	if gridKind == "" {
		gridKind = "geo"
	}
	if spec.Deltas, err = BuildGrid(gridKind, dmin, dmax, points); err != nil {
		return spec, err
	}
	if spec.SkipSBO, err = boolParam(q, "no-sbo"); err != nil {
		return spec, err
	}
	if spec.SkipRLS, err = boolParam(q, "no-rls"); err != nil {
		return spec, err
	}
	if spec.MaxPending, err = intParam(q, "pending", 0); err != nil {
		return spec, err
	}
	if spec.Refine, err = boolParam(q, "refine"); err != nil {
		return spec, err
	}
	if spec.RefineGap, err = floatParam(q, "refine-gap", refine.DefaultGap); err != nil {
		return spec, err
	}
	if spec.RefineMaxPoints, err = intParam(q, "refine-max-points", refine.DefaultMaxPoints); err != nil {
		return spec, err
	}
	if spec.Shards, err = intParam(q, "shards", 1); err != nil {
		return spec, err
	}
	policy := q.Get("shard-policy")
	if policy == "" {
		policy = "hash"
	}
	if spec.ShardPolicy, err = shard.ParsePolicy(policy); err != nil {
		return spec, err
	}
	return spec, spec.Validate()
}

func floatParam(q url.Values, name string, def float64) (float64, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("query parameter %s=%q: not a number", name, v)
	}
	return f, nil
}

func intParam(q url.Values, name string, def int) (int, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("query parameter %s=%q: not an integer", name, v)
	}
	return n, nil
}

func boolParam(q url.Values, name string) (bool, error) {
	v := q.Get(name)
	if v == "" {
		return false, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("query parameter %s=%q: not a boolean", name, v)
	}
	return b, nil
}

// flushWriter flushes after every Write so each JSONL line reaches the
// client as its item completes — the encoder writes one line per call.
type flushWriter struct {
	w     http.ResponseWriter
	rc    *http.ResponseController
	wrote bool
	bytes int64
}

func (fw *flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if n > 0 {
		fw.wrote = true
		fw.bytes += int64(n)
	}
	if err != nil {
		return n, err
	}
	if ferr := fw.rc.Flush(); ferr != nil && !errors.Is(ferr, http.ErrNotSupported) {
		return n, ferr
	}
	return n, nil
}

// handleSweep is POST /v1/sweep: decode the body's instances and task
// DAGs, run them through the session, stream one JSONL front line per
// item. The bytes match `schedcli sweepbatch` on the same input; the
// totals arrive as trailers.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	client := clientKey(r)
	if s.draining.Load() {
		s.met.refused(RefusalDraining, client)
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	spec, err := sweepSpecFromQuery(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	if err := s.adm.hold(client); err != nil {
		reason := RefusalQueueFull
		if errors.Is(err, errClientFull) {
			reason = RefusalClientCap
		}
		s.met.refused(reason, client)
		s.reject(w, err)
		return
	}
	defer s.adm.release(client)

	// Wait for a run slot; a client that gives up while queued frees
	// its hold without running.
	wait0 := s.met.slotWaitStart()
	select {
	case s.adm.slots <- struct{}{}:
		defer func() { <-s.adm.slots }()
	case <-r.Context().Done():
		return
	}
	s.met.admitted(wait0)
	var streamed int64
	defer func() { s.met.finished(streamed) }()

	id := requestIDFrom(r.Context())
	h := w.Header()
	// The ID rides the stream's tail: withdraw the middleware's header
	// copy so it appears exactly once, as a trailer.
	h.Del(RequestIDHeader)
	h.Set("Content-Type", "application/jsonl; charset=utf-8")
	h.Set("Trailer", TrailerItems+", "+TrailerFailed+", "+TrailerCacheHits+", "+TrailerError+", "+TrailerRequestID)

	// The sweep is a streaming pipeline: front lines go out while later
	// request-body items are still being decoded. Without full duplex
	// the HTTP/1.x server closes the request body on the first response
	// write, failing the remaining items mid-stream.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil && !errors.Is(err, http.ErrNotSupported) {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	fw := &flushWriter{w: w, rc: rc}
	items := DecodeItems("body", http.MaxBytesReader(w, r.Body, s.maxBody), nil)
	st, serr := s.session.Sweep(r.Context(), items, spec, fw)
	streamed = fw.bytes

	if serr != nil && !fw.wrote {
		// Nothing streamed yet — a real error status is still
		// possible, and the ID returns to its header position.
		h.Set(RequestIDHeader, id)
		http.Error(w, serr.Error(), http.StatusInternalServerError)
		return
	}
	h.Set(TrailerItems, strconv.Itoa(st.Items))
	h.Set(TrailerFailed, strconv.Itoa(st.Failed))
	h.Set(TrailerCacheHits, strconv.Itoa(st.CacheHits))
	h.Set(TrailerRequestID, id)
	switch {
	case serr != nil:
		h.Set(TrailerError, "request "+id+": "+serr.Error())
	case st.Failed > 0:
		// No fatal error, but some items carried per-item errors: the
		// trailer summarizes so a client that discards line bodies
		// still learns the stream was not clean, and which request to
		// grep in the access log.
		h.Set(TrailerError, fmt.Sprintf("request %s: %d of %d items failed", id, st.Failed, st.Items))
	}
}

// handleMetrics is GET /metrics: the Prometheus text exposition of the
// server's registry — session, engine and cache families when the
// session carries a registry, plus the HTTP-boundary families. The
// encoding is byte-deterministic for a given state, so scrapes diff
// cleanly.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.ContentType)
	s.reg.WriteText(w)
}

// handleCacheStats is GET /v1/cache/stats: a JSON snapshot of the
// session cache counters, plus whether caching is enabled at all.
func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	type statsBody struct {
		Enabled         bool  `json:"enabled"`
		Entries         int   `json:"entries"`
		MemBytes        int64 `json:"mem_bytes"`
		Hits            int64 `json:"hits"`
		MemHits         int64 `json:"mem_hits"`
		DiskHits        int64 `json:"disk_hits"`
		Misses          int64 `json:"misses"`
		Puts            int64 `json:"puts"`
		Evictions       int64 `json:"evictions"`
		WriteErrors     int64 `json:"write_errors"`
		GCRuns          int64 `json:"gc_runs"`
		GCEvictions     int64 `json:"gc_evictions"`
		GCEvictedBytes  int64 `json:"gc_evicted_bytes"`
		GCTmpRemoved    int64 `json:"gc_tmp_removed"`
		GCVerifyRemoved int64 `json:"gc_verify_removed"`
	}
	var body statsBody
	if c := s.session.Cache(); c != nil {
		st := c.Stats()
		body = statsBody{
			Enabled:         true,
			Entries:         c.Len(),
			MemBytes:        st.MemBytes,
			Hits:            st.Hits,
			MemHits:         st.MemHits,
			DiskHits:        st.DiskHits,
			Misses:          st.Misses,
			Puts:            st.Puts,
			Evictions:       st.Evictions,
			WriteErrors:     st.WriteErrors,
			GCRuns:          st.GCRuns,
			GCEvictions:     st.GCEvictions,
			GCEvictedBytes:  st.GCEvictedBytes,
			GCTmpRemoved:    st.GCTmpRemoved,
			GCVerifyRemoved: st.GCVerifyRemoved,
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(body)
}

// handleHealthz is GET /healthz: liveness — the process serves.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// handleReadyz is GET /readyz: readiness — 200 while admitting, 503
// once draining.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

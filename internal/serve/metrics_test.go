package serve

// Tests for the observability surface: the /metrics exposition, its
// parity with /v1/cache/stats, request-ID propagation into the sweep
// trailers, access logging, and the hard contract that instrumentation
// never perturbs the streamed JSONL bytes — even under concurrent
// scrapes while sweeps run.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"storagesched/internal/cache"
	"storagesched/internal/metrics"
)

// scrapeMetrics fetches /metrics and returns both the parsed samples
// (full "name{labels}" key to rendered value) and the raw body.
func scrapeMetrics(t *testing.T, base string) (map[string]string, string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, metrics.ContentType)
	}
	samples := make(map[string]string)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		samples[line[:i]] = line[i+1:]
	}
	return samples, string(body)
}

// sampleInt parses one sample as an integer; a missing sample is a
// test failure (every family registers at construction, so even a
// zero counter has a line).
func sampleInt(t *testing.T, samples map[string]string, key string) int64 {
	t.Helper()
	v, ok := samples[key]
	if !ok {
		t.Fatalf("sample %q missing from scrape", key)
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("sample %q = %q: %v", key, v, err)
	}
	return n
}

func postSweep(t *testing.T, base string) []byte {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweep?dmin=0.5&dmax=8&points=4", "application/jsonl", strings.NewReader(testBody()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	return body
}

// TestMetricsCacheStatsParity: the sched_cache_* scrape families and
// the GET /v1/cache/stats JSON snapshot read the same atomics, so
// after identical traffic they must agree field for field.
func TestMetricsCacheStatsParity(t *testing.T) {
	fcache, err := cache.New(cache.Config{MemEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	_, _, srv := newTestServer(t, SessionConfig{Cache: fcache, Metrics: metrics.NewRegistry()}, ServerConfig{})

	postSweep(t, srv.URL) // cold: fills the cache
	postSweep(t, srv.URL) // warm: hits it

	resp, err := http.Get(srv.URL + "/v1/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var js struct {
		Enabled         bool  `json:"enabled"`
		Entries         int64 `json:"entries"`
		MemBytes        int64 `json:"mem_bytes"`
		Hits            int64 `json:"hits"`
		MemHits         int64 `json:"mem_hits"`
		DiskHits        int64 `json:"disk_hits"`
		Misses          int64 `json:"misses"`
		Puts            int64 `json:"puts"`
		Evictions       int64 `json:"evictions"`
		WriteErrors     int64 `json:"write_errors"`
		GCRuns          int64 `json:"gc_runs"`
		GCEvictions     int64 `json:"gc_evictions"`
		GCEvictedBytes  int64 `json:"gc_evicted_bytes"`
		GCTmpRemoved    int64 `json:"gc_tmp_removed"`
		GCVerifyRemoved int64 `json:"gc_verify_removed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	if !js.Enabled {
		t.Fatal("cache/stats enabled = false, want true")
	}
	if js.Hits == 0 || js.Puts == 0 {
		t.Fatalf("warm cache saw no traffic: %+v", js)
	}

	samples, _ := scrapeMetrics(t, srv.URL)
	for key, want := range map[string]int64{
		"sched_cache_entries":                  js.Entries,
		"sched_cache_mem_bytes":                js.MemBytes,
		"sched_cache_hits_total":               js.Hits,
		"sched_cache_mem_hits_total":           js.MemHits,
		"sched_cache_disk_hits_total":          js.DiskHits,
		"sched_cache_misses_total":             js.Misses,
		"sched_cache_puts_total":               js.Puts,
		"sched_cache_evictions_total":          js.Evictions,
		"sched_cache_write_errors_total":       js.WriteErrors,
		"sched_cache_gc_runs_total":            js.GCRuns,
		"sched_cache_gc_evicted_entries_total": js.GCEvictions,
		"sched_cache_gc_evicted_bytes_total":   js.GCEvictedBytes,
		"sched_cache_gc_tmp_removed_total":     js.GCTmpRemoved,
		"sched_cache_gc_verify_removed_total":  js.GCVerifyRemoved,
	} {
		if got := sampleInt(t, samples, key); got != want {
			t.Errorf("%s = %d, /v1/cache/stats says %d", key, got, want)
		}
	}
}

// TestSweepTrailerRequestID: the streamed sweep response carries its
// request ID as a trailer (the header copy is withdrawn), and a
// mid-stream item failure surfaces in X-Sweep-Error prefixed with the
// same ID — both trailers ride one response.
func TestSweepTrailerRequestID(t *testing.T) {
	_, _, srv := newTestServer(t, SessionConfig{Metrics: metrics.NewRegistry()}, ServerConfig{})

	body := docInstA + "\n" + `{"m":0,"tasks":[]}` + "\n" + docInstB + "\n"
	resp, err := http.Post(srv.URL+"/v1/sweep?dmin=0.5&dmax=8&points=4", "application/jsonl", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if h := resp.Header.Get(RequestIDHeader); h != "" {
		t.Errorf("header %s = %q on a streamed sweep, want withdrawn (trailer only)", RequestIDHeader, h)
	}
	id := resp.Trailer.Get(TrailerRequestID)
	if id == "" {
		t.Fatalf("trailer %s empty, want a request ID", TrailerRequestID)
	}
	if failed := resp.Trailer.Get(TrailerFailed); failed != "1" {
		t.Errorf("trailer %s = %q, want 1", TrailerFailed, failed)
	}
	serr := resp.Trailer.Get(TrailerError)
	wantPrefix := "request " + id + ": "
	if !strings.HasPrefix(serr, wantPrefix) {
		t.Errorf("trailer %s = %q, want prefix %q", TrailerError, serr, wantPrefix)
	}
	if !strings.Contains(serr, "1 of 3 items failed") {
		t.Errorf("trailer %s = %q, want item-failure summary", TrailerError, serr)
	}

	// Non-streaming endpoints answer with the ID as a plain header.
	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.Header.Get(RequestIDHeader) == "" {
		t.Errorf("/healthz response missing %s header", RequestIDHeader)
	}
}

// TestMetricsScrapeDeterministic: with no traffic between scrapes, two
// /metrics responses must be byte-identical — the encoder is
// deterministic for a given registry state.
func TestMetricsScrapeDeterministic(t *testing.T) {
	_, _, srv := newTestServer(t, SessionConfig{Metrics: metrics.NewRegistry()}, ServerConfig{})
	postSweep(t, srv.URL)
	_, first := scrapeMetrics(t, srv.URL)
	_, second := scrapeMetrics(t, srv.URL)
	if first != second {
		t.Errorf("back-to-back scrapes differ:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	for _, family := range []string{
		"sched_sweeps_started_total", "sched_sweeps_completed_total", "sched_sweeps_failed_total",
		"sched_sweep_items_total", "sched_sweep_item_failures_total", "sched_sweep_seconds_count",
		"sched_refusals_total", "sched_drain_transitions_total", "sched_sweep_bytes_streamed_total",
		"sched_admission_wait_seconds_count", "sched_sweeps_inflight",
		"sched_engine_jobs_total", "sched_engine_queue_depth", "sched_engine_jobs_inflight",
		"sched_engine_prepared_memo_hits_total", "sched_engine_job_seconds_count",
	} {
		if !strings.Contains(first, family) {
			t.Errorf("scrape missing family %s", family)
		}
	}
}

// TestRefusalAndDrainMetrics: admission refusals count by reason (with
// the per-client family naming the capped client), and BeginDrain
// counts exactly one transition however often it is called.
func TestRefusalAndDrainMetrics(t *testing.T) {
	_, s, srv := newTestServer(t, SessionConfig{Metrics: metrics.NewRegistry()},
		ServerConfig{MaxConcurrent: 1, MaxQueue: -1, MaxPerClient: 1})

	release, done := heldSweep(t, srv.URL, "greedy")

	post := func(client string) int {
		req, err := http.NewRequest("POST", srv.URL+"/v1/sweep?dmin=0.5&dmax=8&points=4", strings.NewReader(testBody()))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Once the held sweep is admitted, greedy's next request trips the
	// per-client cap and any other client trips the full queue.
	deadline := time.Now().Add(5 * time.Second)
	for post("greedy") != http.StatusTooManyRequests {
		if time.Now().After(deadline) {
			t.Fatal("greedy client never hit its per-client cap")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code := post("modest"); code != http.StatusTooManyRequests {
		t.Fatalf("modest client got %d, want 429 (queue full)", code)
	}

	release()
	if err := <-done; err != nil {
		t.Errorf("held sweep: %v", err)
	}

	samples, _ := scrapeMetrics(t, srv.URL)
	if n := sampleInt(t, samples, `sched_refusals_total{reason="client_cap"}`); n < 1 {
		t.Errorf("client_cap refusals = %d, want >= 1", n)
	}
	if n := sampleInt(t, samples, `sched_refusals_total{reason="queue_full"}`); n < 1 {
		t.Errorf("queue_full refusals = %d, want >= 1", n)
	}
	if n := sampleInt(t, samples, `sched_client_refusals_total{client="greedy"}`); n < 1 {
		t.Errorf("greedy client refusals = %d, want >= 1", n)
	}

	s.BeginDrain()
	s.BeginDrain() // idempotent: still one transition
	if code := post("greedy"); code != http.StatusServiceUnavailable {
		t.Fatalf("sweep while draining got %d, want 503", code)
	}
	samples, _ = scrapeMetrics(t, srv.URL)
	if n := sampleInt(t, samples, "sched_drain_transitions_total"); n != 1 {
		t.Errorf("drain transitions = %d, want 1", n)
	}
	if n := sampleInt(t, samples, `sched_refusals_total{reason="draining"}`); n != 1 {
		t.Errorf("draining refusals = %d, want 1", n)
	}
}

// syncBuffer is a goroutine-safe log sink for the access-log test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestAccessLogLine: with an AccessLog configured, each finished
// request produces one JSON line whose ID matches the response's
// request ID, and the streamed JSONL bytes are unchanged.
func TestAccessLogLine(t *testing.T) {
	var logbuf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logbuf, nil))
	session, _, srv := newTestServer(t, SessionConfig{Metrics: metrics.NewRegistry()}, ServerConfig{AccessLog: logger})

	var want bytes.Buffer
	if _, err := session.Sweep(t.Context(), DecodeItems("body", strings.NewReader(testBody()), nil), testSpec(t), &want); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(srv.URL+"/v1/sweep?dmin=0.5&dmax=8&points=4", "application/jsonl", strings.NewReader(testBody()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("logged sweep bytes differ from direct sweep:\n got: %s\nwant: %s", got, want.Bytes())
	}
	id := resp.Trailer.Get(TrailerRequestID)

	// The access line lands once the handler returns; trailers arriving
	// means it already has, but poll with slack to stay unflaky.
	deadline := time.Now().Add(5 * time.Second)
	var line struct {
		Msg    string `json:"msg"`
		ID     string `json:"id"`
		Method string `json:"method"`
		Path   string `json:"path"`
		Status int    `json:"status"`
		Bytes  int64  `json:"bytes"`
	}
	for {
		if raw := strings.TrimSpace(logbuf.String()); raw != "" {
			last := raw[strings.LastIndexByte(raw, '\n')+1:]
			if err := json.Unmarshal([]byte(last), &line); err != nil {
				t.Fatalf("access line %q: %v", last, err)
			}
			if line.ID == id {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no access line for request %q; log: %s", id, logbuf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if line.Msg != "request" || line.Method != "POST" || line.Path != "/v1/sweep" {
		t.Errorf("access line = %+v, want msg=request method=POST path=/v1/sweep", line)
	}
	if line.Status != http.StatusOK {
		t.Errorf("access line status = %d, want 200", line.Status)
	}
	if line.Bytes != int64(len(got)) {
		t.Errorf("access line bytes = %d, want %d", line.Bytes, len(got))
	}
}

// TestMetricsConcurrentSweepsAndScrapes: scraping /metrics while
// several clients sweep a warm daemon must observe monotone counters,
// every client must receive byte-identical JSONL, the final counts
// must account for every sweep exactly, and no goroutines may linger
// once the traffic stops. Run with -race, this is also the data-race
// proof for the whole instrumentation path.
func TestMetricsConcurrentSweepsAndScrapes(t *testing.T) {
	fcache, err := cache.New(cache.Config{MemEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	_, _, srv := newTestServer(t, SessionConfig{Cache: fcache, Workers: 2, Metrics: metrics.NewRegistry()},
		ServerConfig{MaxConcurrent: 4, MaxQueue: 64, MaxPerClient: -1})

	golden := postSweep(t, srv.URL) // warm the cache and pin the bytes
	http.DefaultClient.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	const clients, rounds = 4, 3
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range rounds {
				resp, err := http.Post(srv.URL+"/v1/sweep?dmin=0.5&dmax=8&points=4", "application/jsonl", strings.NewReader(testBody()))
				if err != nil {
					errCh <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("client %d: status %d", c, resp.StatusCode)
					return
				}
				if !bytes.Equal(body, golden) {
					errCh <- fmt.Errorf("client %d: sweep bytes drifted under concurrent scraping", c)
					return
				}
			}
		}()
	}
	sweepsDone := make(chan struct{})
	go func() { wg.Wait(); close(sweepsDone) }()

	// Scrape continuously until the traffic stops, checking that every
	// watched counter only ever moves forward.
	watched := []string{
		"sched_sweeps_started_total",
		"sched_sweeps_completed_total",
		"sched_sweep_items_total",
		"sched_sweep_bytes_streamed_total",
		"sched_engine_jobs_total",
		"sched_cache_hits_total",
	}
	last := make(map[string]int64)
	check := func() {
		samples, _ := scrapeMetrics(t, srv.URL)
		for _, key := range watched {
			if n := sampleInt(t, samples, key); n < last[key] {
				t.Errorf("counter %s went backwards: %d after %d", key, n, last[key])
			} else {
				last[key] = n
			}
		}
	}
	for scraping := true; scraping; {
		select {
		case <-sweepsDone:
			scraping = false
		default:
			check()
			time.Sleep(2 * time.Millisecond)
		}
	}
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Final accounting: the warm-up sweep plus every client round.
	check()
	const total = 1 + clients*rounds
	if got := last["sched_sweeps_completed_total"]; got != total {
		t.Errorf("sweeps completed = %d, want %d", got, total)
	}
	if got := last["sched_sweep_items_total"]; got != total*3 {
		t.Errorf("items = %d, want %d", got, total*3)
	}
	samples, _ := scrapeMetrics(t, srv.URL)
	for _, gauge := range []string{"sched_sweeps_inflight", "sched_engine_queue_depth", "sched_engine_jobs_inflight"} {
		if n := sampleInt(t, samples, gauge); n != 0 {
			t.Errorf("idle gauge %s = %d, want 0", gauge, n)
		}
	}

	// No goroutine may outlive the traffic.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(25 * time.Millisecond)
	}
}

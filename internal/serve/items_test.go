package serve

import (
	"strings"
	"testing"

	"storagesched/internal/engine"
)

// collect drains a decoded sequence into parallel slices.
func collect(seq func(func(engine.BatchItem, string) bool)) (items []engine.BatchItem, sources []string) {
	seq(func(it engine.BatchItem, src string) bool {
		items = append(items, it)
		sources = append(sources, src)
		return true
	})
	return
}

// TestDecodeItemsKinds: instances, graphs (selected by "edges") and
// envelopes (selected by "item", optionally naming their source) all
// decode from one concatenated stream, with positional labels filling
// in for anonymous documents.
func TestDecodeItemsKinds(t *testing.T) {
	in := docInstA + "\n" +
		docGraph + "\n" +
		`{"source":"named.json","item":` + docInstB + "}\n" +
		`{"item":` + docGraph + "}\n"
	items, sources := collect(DecodeItems("body", strings.NewReader(in), nil))
	if len(items) != 4 {
		t.Fatalf("%d items, want 4", len(items))
	}
	wantSources := []string{"body:1", "body:2", "named.json", "body:4"}
	for i, want := range wantSources {
		if sources[i] != want {
			t.Errorf("item %d source = %q, want %q", i, sources[i], want)
		}
	}
	for i, wantGraph := range []bool{false, true, false, true} {
		if items[i].Err != nil {
			t.Errorf("item %d: unexpected error %v", i, items[i].Err)
		}
		if gotGraph := items[i].Graph != nil; gotGraph != wantGraph {
			t.Errorf("item %d: graph=%v, want %v", i, gotGraph, wantGraph)
		}
	}
}

// TestDecodeItemsPoisoning: a syntactically broken document ends the
// stream with one error item (no line boundary to resynchronize on),
// while a well-formed document that fails validation rides its error
// and the stream continues.
func TestDecodeItemsPoisoning(t *testing.T) {
	in := docInstA + "\n" + `{"m":0,"tasks":[]}` + "\n" + docInstB + "\n" + "{broken\n" + docGraph + "\n"
	items, sources := collect(DecodeItems("stdin", strings.NewReader(in), nil))
	if len(items) != 4 {
		t.Fatalf("%d items, want 4 (two good, one invalid, one poison)", len(items))
	}
	if items[0].Err != nil || items[2].Err != nil {
		t.Errorf("good items carried errors: %v, %v", items[0].Err, items[2].Err)
	}
	if items[1].Err == nil {
		t.Error("invalid instance (m=0) decoded without error")
	}
	last := items[3]
	if last.Err == nil || !strings.Contains(last.Err.Error(), "stdin value 4:") {
		t.Errorf("poison item error = %v, want 'stdin value 4: ...'", last.Err)
	}
	if sources[3] != "stdin:4" {
		t.Errorf("poison source = %q, want stdin:4", sources[3])
	}
}

// TestDecodeJSONLItemsIsolation: with line framing, a bad line fails
// alone — subsequent lines still decode, and labels count physical
// lines (blank lines skipped but counted).
func TestDecodeJSONLItemsIsolation(t *testing.T) {
	in := docInstA + "\n\n{broken\n" + docInstB + "\n"
	items, sources := collect(DecodeJSONLItems("batch.jsonl", strings.NewReader(in), nil))
	if len(items) != 3 {
		t.Fatalf("%d items, want 3", len(items))
	}
	if items[0].Err != nil || items[2].Err != nil {
		t.Errorf("good lines carried errors: %v, %v", items[0].Err, items[2].Err)
	}
	if items[1].Err == nil {
		t.Error("broken line decoded without error")
	}
	want := []string{"batch.jsonl:1", "batch.jsonl:3", "batch.jsonl:4"}
	for i, w := range want {
		if sources[i] != w {
			t.Errorf("source %d = %q, want %q", i, sources[i], w)
		}
	}
}

package gen

import (
	"fmt"
	"math/rand"

	"storagesched/internal/dag"
	"storagesched/internal/model"
)

// DAG generators. Section 5 motivates precedence constraints with
// embedded-system applications; the families below are the standard
// task-graph shapes of the DAG-scheduling literature: random layered
// graphs, random order-DAGs (Erdős–Rényi over a fixed topological
// order), fork-join, in/out-trees, diamond meshes (stencils), FFT
// butterflies, Gaussian-elimination graphs and series-parallel graphs.
// All take (m, size parameters, seed) and fill p, s uniformly from
// small ranges unless noted.

func randomWeights(rng *rand.Rand, n int, maxP, maxS int64) ([]model.Time, []model.Mem) {
	p := make([]model.Time, n)
	s := make([]model.Mem, n)
	for i := 0; i < n; i++ {
		p[i] = rng.Int63n(maxP) + 1
		s[i] = rng.Int63n(maxS + 1)
	}
	return p, s
}

// LayeredDAG builds `layers` layers of `width` nodes; each node gets
// 1..3 predecessors from the previous layer.
func LayeredDAG(m, layers, width int, seed int64) *dag.Graph {
	if layers < 1 || width < 1 {
		panic(fmt.Sprintf("gen: layered DAG needs layers, width >= 1, got %d, %d", layers, width))
	}
	rng := rand.New(rand.NewSource(seed))
	n := layers * width
	p, s := randomWeights(rng, n, 50, 50)
	g := dag.New(m, p, s)
	for l := 1; l < layers; l++ {
		for w := 0; w < width; w++ {
			v := l*width + w
			deg := 1 + rng.Intn(3)
			for d := 0; d < deg; d++ {
				u := (l-1)*width + rng.Intn(width)
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// ErdosRenyiDAG draws each forward arc (u, v), u < v, independently
// with probability prob.
func ErdosRenyiDAG(m, n int, prob float64, seed int64) *dag.Graph {
	if n < 1 || prob < 0 || prob > 1 {
		panic(fmt.Sprintf("gen: bad Erdős–Rényi parameters n=%d prob=%g", n, prob))
	}
	rng := rand.New(rand.NewSource(seed))
	p, s := randomWeights(rng, n, 50, 50)
	g := dag.New(m, p, s)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < prob {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// ForkJoin builds `stages` sequential stages, each a fork of `width`
// parallel tasks between a fork node and a join node:
// fork -> w parallel tasks -> join -> fork -> ...
func ForkJoin(m, stages, width int, seed int64) *dag.Graph {
	if stages < 1 || width < 1 {
		panic(fmt.Sprintf("gen: fork-join needs stages, width >= 1, got %d, %d", stages, width))
	}
	rng := rand.New(rand.NewSource(seed))
	n := stages*(width+1) + 1
	p, s := randomWeights(rng, n, 50, 50)
	g := dag.New(m, p, s)
	join := 0 // node 0 is the initial fork
	next := 1
	for st := 0; st < stages; st++ {
		first := next
		for w := 0; w < width; w++ {
			g.AddEdge(join, next)
			next++
		}
		for w := 0; w < width; w++ {
			g.AddEdge(first+w, next)
		}
		join = next
		next++
	}
	return g
}

// OutTree builds a complete `arity`-ary out-tree with n nodes (root
// first, children follow breadth-first).
func OutTree(m, n, arity int, seed int64) *dag.Graph {
	if n < 1 || arity < 1 {
		panic(fmt.Sprintf("gen: out-tree needs n, arity >= 1, got %d, %d", n, arity))
	}
	rng := rand.New(rand.NewSource(seed))
	p, s := randomWeights(rng, n, 50, 50)
	g := dag.New(m, p, s)
	for v := 1; v < n; v++ {
		g.AddEdge((v-1)/arity, v)
	}
	return g
}

// InTree is the reversal of OutTree: leaves first, edges point toward
// the root (node n−1). Models reductions.
func InTree(m, n, arity int, seed int64) *dag.Graph {
	if n < 1 || arity < 1 {
		panic(fmt.Sprintf("gen: in-tree needs n, arity >= 1, got %d, %d", n, arity))
	}
	rng := rand.New(rand.NewSource(seed))
	p, s := randomWeights(rng, n, 50, 50)
	g := dag.New(m, p, s)
	for v := 1; v < n; v++ {
		// Mirror of OutTree: edge v -> parent, with node ids
		// reversed so the root is last.
		g.AddEdge(n-1-v, n-1-(v-1)/arity)
	}
	return g
}

// Diamond builds a size×size diamond mesh (wavefront/stencil): node
// (i, j) precedes (i+1, j) and (i, j+1).
func Diamond(m, size int, seed int64) *dag.Graph {
	if size < 1 {
		panic(fmt.Sprintf("gen: diamond needs size >= 1, got %d", size))
	}
	rng := rand.New(rand.NewSource(seed))
	n := size * size
	p, s := randomWeights(rng, n, 50, 50)
	g := dag.New(m, p, s)
	id := func(i, j int) int { return i*size + j }
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			if i+1 < size {
				g.AddEdge(id(i, j), id(i+1, j))
			}
			if j+1 < size {
				g.AddEdge(id(i, j), id(i, j+1))
			}
		}
	}
	return g
}

// FFT builds the butterfly graph of a 2^logN-point FFT: logN+1 ranks
// of 2^logN nodes; node (r, i) feeds (r+1, i) and (r+1, i XOR 2^r).
func FFT(m, logN int, seed int64) *dag.Graph {
	if logN < 1 || logN > 10 {
		panic(fmt.Sprintf("gen: FFT needs 1 <= logN <= 10, got %d", logN))
	}
	rng := rand.New(rand.NewSource(seed))
	width := 1 << logN
	n := (logN + 1) * width
	p, s := randomWeights(rng, n, 20, 20)
	g := dag.New(m, p, s)
	id := func(r, i int) int { return r*width + i }
	for r := 0; r < logN; r++ {
		for i := 0; i < width; i++ {
			g.AddEdge(id(r, i), id(r+1, i))
			g.AddEdge(id(r, i), id(r+1, i^(1<<r)))
		}
	}
	return g
}

// GaussianElimination builds the task graph of column-oriented
// Gaussian elimination on a k×k matrix: pivot task T(j,j) precedes
// updates T(j,i) for i > j, and T(j,i) precedes T(j+1,i). This is the
// classic "GE" benchmark DAG of the scheduling literature.
func GaussianElimination(m, k int, seed int64) *dag.Graph {
	if k < 2 {
		panic(fmt.Sprintf("gen: Gaussian elimination needs k >= 2, got %d", k))
	}
	rng := rand.New(rand.NewSource(seed))
	// Tasks T(j,i) for 0 <= j < k-1 (step), j <= i < k; T(j,j) is the
	// pivot of step j.
	type key struct{ j, i int }
	ids := map[key]int{}
	n := 0
	for j := 0; j < k-1; j++ {
		for i := j; i < k; i++ {
			ids[key{j, i}] = n
			n++
		}
	}
	p, s := randomWeights(rng, n, 50, 50)
	g := dag.New(m, p, s)
	for j := 0; j < k-1; j++ {
		for i := j + 1; i < k; i++ {
			g.AddEdge(ids[key{j, j}], ids[key{j, i}]) // pivot -> update
			if j+1 < k-1 && i >= j+1 {
				g.AddEdge(ids[key{j, i}], ids[key{j + 1, i}]) // update -> next step
			}
		}
	}
	return g
}

// SeriesParallel builds a random series-parallel graph by recursive
// composition (depth controls the recursion, each level choosing
// series or parallel composition at random).
func SeriesParallel(m, depth int, seed int64) *dag.Graph {
	if depth < 0 || depth > 12 {
		panic(fmt.Sprintf("gen: series-parallel needs 0 <= depth <= 12, got %d", depth))
	}
	rng := rand.New(rand.NewSource(seed))
	type edge struct{ u, v int }
	var edges []edge
	nodes := 2 // 0 = source, 1 = sink
	// expand replaces the edge (u, v) recursively.
	var expand func(u, v, d int)
	expand = func(u, v, d int) {
		if d == 0 {
			edges = append(edges, edge{u, v})
			return
		}
		if rng.Intn(2) == 0 {
			// Series: u -> w -> v.
			w := nodes
			nodes++
			expand(u, w, d-1)
			expand(w, v, d-1)
		} else {
			// Parallel: two branches u -> v.
			expand(u, v, d-1)
			expand(u, v, d-1)
		}
	}
	expand(0, 1, depth)
	p, s := randomWeights(rng, nodes, 50, 50)
	g := dag.New(m, p, s)
	for _, e := range edges {
		g.AddEdge(e.u, e.v)
	}
	return g
}

// Chain builds a simple n-node chain — the worst case for parallelism
// and a useful calibration instance (Cmax must equal Σp).
func Chain(m, n int, seed int64) *dag.Graph {
	if n < 1 {
		panic(fmt.Sprintf("gen: chain needs n >= 1, got %d", n))
	}
	rng := rand.New(rand.NewSource(seed))
	p, s := randomWeights(rng, n, 50, 50)
	g := dag.New(m, p, s)
	for v := 1; v < n; v++ {
		g.AddEdge(v-1, v)
	}
	return g
}

// NamedDAGFamily pairs a DAG family name with a sized generator.
type NamedDAGFamily struct {
	Name string
	// Gen builds a graph of roughly n nodes on m processors.
	Gen func(m, n int, seed int64) *dag.Graph
}

// DAGFamilies returns the named DAG families scaled by a single
// target size, for sweep experiments.
func DAGFamilies() []NamedDAGFamily {
	return []NamedDAGFamily{
		{"layered", func(m, n int, seed int64) *dag.Graph {
			width := 4
			layers := (n + width - 1) / width
			if layers < 1 {
				layers = 1
			}
			return LayeredDAG(m, layers, width, seed)
		}},
		{"erdos", func(m, n int, seed int64) *dag.Graph {
			return ErdosRenyiDAG(m, n, 0.1, seed)
		}},
		{"forkjoin", func(m, n int, seed int64) *dag.Graph {
			width := 6
			stages := n / (width + 1)
			if stages < 1 {
				stages = 1
			}
			return ForkJoin(m, stages, width, seed)
		}},
		{"outtree", func(m, n int, seed int64) *dag.Graph {
			return OutTree(m, n, 3, seed)
		}},
		{"diamond", func(m, n int, seed int64) *dag.Graph {
			size := 2
			for size*size < n {
				size++
			}
			return Diamond(m, size, seed)
		}},
		{"gauss", func(m, n int, seed int64) *dag.Graph {
			k := 2
			for k*(k+1)/2 < n {
				k++
			}
			return GaussianElimination(m, k, seed)
		}},
	}
}

package gen

import (
	"testing"
	"testing/quick"

	"storagesched/internal/dag"
)

func TestInstanceValidation(t *testing.T) {
	bad := []Config{
		{N: 0, M: 1, PMin: 1, PMax: 2},
		{N: 1, M: 0, PMin: 1, PMax: 2},
		{N: 1, M: 1, PMin: 0, PMax: 2},
		{N: 1, M: 1, PMin: 3, PMax: 2},
		{N: 1, M: 1, PMin: 1, PMax: 2, SMin: -1},
		{N: 1, M: 1, PMin: 1, PMax: 2, SMin: 3, SMax: 2},
		{N: 1, M: 1, PMin: 1, PMax: 2, Correlation: 2},
		{N: 1, M: 1, PMin: 1, PMax: 2, BimodalFraction: -0.5},
	}
	for i, cfg := range bad {
		if _, err := Instance(cfg, 1); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestInstanceDeterministic(t *testing.T) {
	cfg := Config{N: 50, M: 4, PMin: 1, PMax: 100, SMin: 0, SMax: 50, Correlation: 0.5}
	a, err := Instance(cfg, 7)
	if err != nil {
		t.Fatalf("Instance: %v", err)
	}
	b, _ := Instance(cfg, 7)
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatalf("same seed, different task %d", i)
		}
	}
	c, _ := Instance(cfg, 8)
	same := true
	for i := range a.Tasks {
		if a.Tasks[i] != c.Tasks[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical instances")
	}
}

func TestInstanceRespectsRanges(t *testing.T) {
	cfg := Config{N: 300, M: 4, PMin: 5, PMax: 10, SMin: 2, SMax: 8, Correlation: 0.8, BimodalFraction: 0.2}
	in, err := Instance(cfg, 3)
	if err != nil {
		t.Fatalf("Instance: %v", err)
	}
	for _, task := range in.Tasks {
		if task.P < 5 || task.P > 10 {
			t.Fatalf("p = %d outside [5,10]", task.P)
		}
		if task.S < 2 || task.S > 8 {
			t.Fatalf("s = %d outside [2,8]", task.S)
		}
	}
}

func TestCorrelationSign(t *testing.T) {
	// Empirical Pearson correlation should be clearly positive for
	// Correlated and clearly negative for Anticorrelated.
	pos := Correlated(2000, 4, 11)
	neg := Anticorrelated(2000, 4, 11)
	if r := pearson(pos); r < 0.5 {
		t.Errorf("correlated family: r = %.3f, want > 0.5", r)
	}
	if r := pearson(neg); r > -0.5 {
		t.Errorf("anticorrelated family: r = %.3f, want < -0.5", r)
	}
}

func pearson(in interface {
	P() []int64
	S() []int64
}) float64 {
	p := in.P()
	s := in.S()
	n := float64(len(p))
	var mp, ms float64
	for i := range p {
		mp += float64(p[i])
		ms += float64(s[i])
	}
	mp /= n
	ms /= n
	var cov, vp, vs float64
	for i := range p {
		dp := float64(p[i]) - mp
		ds := float64(s[i]) - ms
		cov += dp * ds
		vp += dp * dp
		vs += ds * ds
	}
	if vp == 0 || vs == 0 {
		return 0
	}
	return cov / (sqrt(vp) * sqrt(vs))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func TestAdversarialCross(t *testing.T) {
	in := AdversarialCross(4, 1000)
	if err := in.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if in.N() != 8 || in.M != 4 {
		t.Fatalf("shape n=%d m=%d, want 8/4", in.N(), in.M)
	}
	// First group is time-heavy/memory-light, second the mirror.
	if in.Tasks[0].P != 1000-8 || in.Tasks[0].S != 1 {
		t.Errorf("task 0 = %+v", in.Tasks[0])
	}
	if in.Tasks[4].P != 1 || in.Tasks[4].S != 1000-8 {
		t.Errorf("task 4 = %+v", in.Tasks[4])
	}
	defer func() {
		if recover() == nil {
			t.Error("K <= 4m accepted")
		}
	}()
	AdversarialCross(4, 16)
}

func TestFamiliesProduceValidInstances(t *testing.T) {
	for _, fam := range Families() {
		in := fam.Gen(40, 4, 5)
		if err := in.Validate(); err != nil {
			t.Errorf("family %s: %v", fam.Name, err)
		}
		if in.N() != 40 || in.M != 4 {
			t.Errorf("family %s: wrong shape n=%d m=%d", fam.Name, in.N(), in.M)
		}
	}
}

func checkDAG(t *testing.T, name string, g *dag.Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("%s: invalid DAG: %v", name, err)
	}
}

func TestLayeredDAGShape(t *testing.T) {
	g := LayeredDAG(4, 5, 3, 2)
	checkDAG(t, "layered", g)
	if g.N() != 15 {
		t.Errorf("n = %d, want 15", g.N())
	}
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 5 {
		t.Errorf("levels = %d, want 5", len(levels))
	}
}

func TestForkJoinShape(t *testing.T) {
	g := ForkJoin(4, 3, 4, 2)
	checkDAG(t, "forkjoin", g)
	if g.N() != 3*(4+1)+1 {
		t.Errorf("n = %d, want %d", g.N(), 3*5+1)
	}
	// Exactly one source (initial fork) and one sink (last join).
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Errorf("sources/sinks = %d/%d, want 1/1", len(g.Sources()), len(g.Sinks()))
	}
}

func TestTreeShapes(t *testing.T) {
	out := OutTree(2, 13, 3, 1)
	checkDAG(t, "outtree", out)
	if len(out.Sources()) != 1 {
		t.Errorf("out-tree sources = %d, want 1", len(out.Sources()))
	}
	in := InTree(2, 13, 3, 1)
	checkDAG(t, "intree", in)
	if len(in.Sinks()) != 1 {
		t.Errorf("in-tree sinks = %d, want 1", len(in.Sinks()))
	}
	// Every non-root node of the out-tree has exactly one pred.
	for v := 1; v < out.N(); v++ {
		if len(out.Preds(v)) != 1 {
			t.Errorf("out-tree node %d has %d preds", v, len(out.Preds(v)))
		}
	}
}

func TestDiamondShape(t *testing.T) {
	g := Diamond(2, 4, 1)
	checkDAG(t, "diamond", g)
	if g.N() != 16 {
		t.Errorf("n = %d, want 16", g.N())
	}
	// Corner-to-corner critical path visits 2*size-1 nodes.
	levels, _ := g.Levels()
	if len(levels) != 7 {
		t.Errorf("levels = %d, want 7", len(levels))
	}
}

func TestFFTShape(t *testing.T) {
	g := FFT(4, 3, 1)
	checkDAG(t, "fft", g)
	if g.N() != 4*8 {
		t.Errorf("n = %d, want 32", g.N())
	}
	// All rank-0 nodes are sources; all last-rank nodes are sinks.
	if len(g.Sources()) != 8 || len(g.Sinks()) != 8 {
		t.Errorf("sources/sinks = %d/%d, want 8/8", len(g.Sources()), len(g.Sinks()))
	}
	// Interior nodes have exactly 2 preds (butterfly).
	for v := 8; v < g.N(); v++ {
		if len(g.Preds(v)) != 2 {
			t.Errorf("node %d has %d preds, want 2", v, len(g.Preds(v)))
		}
	}
}

func TestGaussianEliminationShape(t *testing.T) {
	g := GaussianElimination(2, 4, 1)
	checkDAG(t, "gauss", g)
	// k=4: steps j=0..2 with k-j tasks: 4+3+2 = 9 tasks.
	if g.N() != 9 {
		t.Errorf("n = %d, want 9", g.N())
	}
}

func TestSeriesParallelShape(t *testing.T) {
	g := SeriesParallel(2, 5, 3)
	checkDAG(t, "sp", g)
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Errorf("sources/sinks = %d/%d, want 1/1", len(g.Sources()), len(g.Sinks()))
	}
}

func TestChainShape(t *testing.T) {
	g := Chain(4, 6, 1)
	checkDAG(t, "chain", g)
	cp, _ := g.CriticalPath()
	if cp != g.TotalWork() {
		t.Errorf("chain critical path %d != total work %d", cp, g.TotalWork())
	}
}

func TestDAGFamiliesValidAndRoughlySized(t *testing.T) {
	for _, fam := range DAGFamilies() {
		g := fam.Gen(4, 40, 9)
		checkDAG(t, fam.Name, g)
		if g.N() < 10 || g.N() > 160 {
			t.Errorf("family %s: n = %d, wildly off target 40", fam.Name, g.N())
		}
		if g.M != 4 {
			t.Errorf("family %s: m = %d, want 4", fam.Name, g.M)
		}
	}
}

func TestPropertyGeneratorsAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		for _, fam := range Families() {
			if fam.Gen(20, 3, seed).Validate() != nil {
				return false
			}
		}
		for _, fam := range DAGFamilies() {
			if fam.Gen(3, 25, seed).Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"layered":  func() { LayeredDAG(1, 0, 1, 1) },
		"erdos":    func() { ErdosRenyiDAG(1, 0, 0.5, 1) },
		"forkjoin": func() { ForkJoin(1, 0, 1, 1) },
		"outtree":  func() { OutTree(1, 0, 1, 1) },
		"intree":   func() { InTree(1, 0, 1, 1) },
		"diamond":  func() { Diamond(1, 0, 1) },
		"fft":      func() { FFT(1, 0, 1) },
		"gauss":    func() { GaussianElimination(1, 1, 1) },
		"sp":       func() { SeriesParallel(1, -1, 1) },
		"chain":    func() { Chain(1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

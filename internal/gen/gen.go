// Package gen produces the synthetic workloads the experiments run on.
// The paper motivates the problem with two application domains —
// multi-SoC embedded systems storing instruction code and grid physics
// batches storing results — and evaluates nothing empirically, so the
// instance families here are the standard ones used by the scheduling
// literature for simulation studies: uniform, bimodal, correlated and
// anti-correlated (p, s) mixes, plus domain-flavoured presets for the
// two motivating applications. All generators take an explicit seed
// and are deterministic.
package gen

import (
	"fmt"
	"math/rand"

	"storagesched/internal/model"
)

// Config shapes an independent-task instance generator.
type Config struct {
	N int // number of tasks (> 0)
	M int // number of processors (> 0)

	// PMin, PMax bound processing times (inclusive; both > 0).
	PMin, PMax int64
	// SMin, SMax bound storage sizes (inclusive; SMin >= 0).
	SMin, SMax int64

	// Correlation couples s to p: 0 leaves them independent, +1
	// makes s a noisy increasing function of p, −1 a noisy
	// decreasing one. Values in [−1, 1].
	Correlation float64

	// BimodalFraction, when positive, makes that fraction of tasks
	// "heavy": their p and s are drawn from the top decile of the
	// ranges. Models the few long jobs / huge codes that dominate
	// real mixes.
	BimodalFraction float64
}

func (c Config) validate() error {
	if c.N <= 0 || c.M <= 0 {
		return fmt.Errorf("gen: need N > 0 and M > 0, got N=%d M=%d", c.N, c.M)
	}
	if c.PMin <= 0 || c.PMax < c.PMin {
		return fmt.Errorf("gen: bad processing range [%d, %d]", c.PMin, c.PMax)
	}
	if c.SMin < 0 || c.SMax < c.SMin {
		return fmt.Errorf("gen: bad storage range [%d, %d]", c.SMin, c.SMax)
	}
	if c.Correlation < -1 || c.Correlation > 1 {
		return fmt.Errorf("gen: correlation %g outside [-1, 1]", c.Correlation)
	}
	if c.BimodalFraction < 0 || c.BimodalFraction > 1 {
		return fmt.Errorf("gen: bimodal fraction %g outside [0, 1]", c.BimodalFraction)
	}
	return nil
}

// span returns a uniform draw in [lo, hi].
func span(rng *rand.Rand, lo, hi int64) int64 {
	if hi == lo {
		return lo
	}
	return lo + rng.Int63n(hi-lo+1)
}

// Instance draws one instance from the configuration.
func Instance(cfg Config, seed int64) (*model.Instance, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	p := make([]model.Time, cfg.N)
	s := make([]model.Mem, cfg.N)
	for i := 0; i < cfg.N; i++ {
		heavy := cfg.BimodalFraction > 0 && rng.Float64() < cfg.BimodalFraction
		pLo, pHi := cfg.PMin, cfg.PMax
		sLo, sHi := cfg.SMin, cfg.SMax
		if heavy {
			pLo = cfg.PMin + 9*(cfg.PMax-cfg.PMin)/10
			sLo = cfg.SMin + 9*(cfg.SMax-cfg.SMin)/10
		}
		p[i] = span(rng, pLo, pHi)
		if cfg.Correlation == 0 {
			s[i] = span(rng, sLo, sHi)
			continue
		}
		// Blend a p-derived value with an independent draw.
		var frac float64
		if cfg.PMax > cfg.PMin {
			frac = float64(p[i]-cfg.PMin) / float64(cfg.PMax-cfg.PMin)
		}
		if cfg.Correlation < 0 {
			frac = 1 - frac
		}
		w := cfg.Correlation
		if w < 0 {
			w = -w
		}
		base := float64(sLo) + frac*float64(sHi-sLo)
		noise := float64(span(rng, sLo, sHi))
		v := int64(w*base + (1-w)*noise)
		if v < cfg.SMin {
			v = cfg.SMin
		}
		if v > cfg.SMax {
			v = cfg.SMax
		}
		s[i] = v
	}
	return model.NewInstance(cfg.M, p, s), nil
}

// Uniform is the plain family: p and s uniform and independent.
func Uniform(n, m int, seed int64) *model.Instance {
	in, err := Instance(Config{N: n, M: m, PMin: 1, PMax: 100, SMin: 0, SMax: 100}, seed)
	if err != nil {
		panic(err) // static config; cannot fail
	}
	return in
}

// Correlated couples storage to processing time (long jobs keep big
// intermediate results), the regime where one schedule serves both
// objectives well.
func Correlated(n, m int, seed int64) *model.Instance {
	in, err := Instance(Config{N: n, M: m, PMin: 1, PMax: 100, SMin: 1, SMax: 100, Correlation: 0.9}, seed)
	if err != nil {
		panic(err)
	}
	return in
}

// Anticorrelated opposes the objectives (quick jobs with huge code,
// long jobs with tiny code) — the adversarial regime SBO's threshold
// is designed for (Section 3.1's intuition).
func Anticorrelated(n, m int, seed int64) *model.Instance {
	in, err := Instance(Config{N: n, M: m, PMin: 1, PMax: 100, SMin: 1, SMax: 100, Correlation: -0.9}, seed)
	if err != nil {
		panic(err)
	}
	return in
}

// EmbeddedCode models the multi-SoC scenario of the introduction:
// many small routines plus a few large replicated kernels, storage
// dominated by code size, short execution bursts.
func EmbeddedCode(n, m int, seed int64) *model.Instance {
	in, err := Instance(Config{
		N: n, M: m,
		PMin: 1, PMax: 20,
		SMin: 8, SMax: 512,
		BimodalFraction: 0.15,
	}, seed)
	if err != nil {
		panic(err)
	}
	return in
}

// GridBatch models the large-physics batch of the introduction
// (ATLAS-style production): long jobs whose output size tracks
// processing time.
func GridBatch(n, m int, seed int64) *model.Instance {
	in, err := Instance(Config{
		N: n, M: m,
		PMin: 50, PMax: 5000,
		SMin: 10, SMax: 2000,
		Correlation:     0.7,
		BimodalFraction: 0.05,
	}, seed)
	if err != nil {
		panic(err)
	}
	return in
}

// AdversarialCross builds the regime Section 3.1's intuition is about:
// m "long, memory-light" tasks and m "short, memory-heavy" tasks with
// one slightly lighter task in each group. A schedule optimized for
// one objective alone piles the whole opposite group onto the lighter
// task's processor (its load stays minimal), blowing the other
// objective up by a factor ~m, while SBO's per-task threshold spreads
// both groups. K is the heavy magnitude and must exceed 4m.
func AdversarialCross(m int, k int64) *model.Instance {
	if m < 2 || k <= 4*int64(m) {
		panic(fmt.Sprintf("gen: AdversarialCross needs m >= 2 and K > 4m, got m=%d K=%d", m, k))
	}
	n := 2 * m
	p := make([]model.Time, n)
	s := make([]model.Mem, n)
	// Long tasks: one lighter (K−2m), the rest K; all memory 1.
	p[0], s[0] = k-2*int64(m), 1
	for i := 1; i < m; i++ {
		p[i], s[i] = k, 1
	}
	// Short tasks: mirror image on the memory axis.
	p[m], s[m] = 1, k-2*int64(m)
	for i := m + 1; i < n; i++ {
		p[i], s[i] = 1, k
	}
	return model.NewInstance(m, p, s)
}

// Families returns the named independent-task families for sweep
// experiments, in a stable order.
func Families() []NamedFamily {
	return []NamedFamily{
		{"uniform", Uniform},
		{"correlated", Correlated},
		{"anticorrelated", Anticorrelated},
		{"embedded", EmbeddedCode},
		{"gridbatch", GridBatch},
	}
}

// NamedFamily pairs a family name with its generator.
type NamedFamily struct {
	Name string
	Gen  func(n, m int, seed int64) *model.Instance
}

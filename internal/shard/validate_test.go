package shard

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"storagesched/internal/engine"
)

// The Validate satellite, both directions: plans with out-of-range
// placements (negative, or >= K — hand-edited or corrupted plan files)
// are rejected with a clean error everywhere a plan is consumed, and
// every plan NewPlan builds validates.
func TestPlanValidate(t *testing.T) {
	bad := []*Plan{
		nil,
		{K: 0, Shards: []int{0}},
		{K: 2, Shards: []int{0, -1}},
		{K: 2, Shards: []int{0, 2}},
		{K: 3, Shards: []int{0, 1, 7}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d validated: %+v", i, p)
		}
	}
	good := []*Plan{
		{K: 1, Shards: nil},
		{K: 2, Shards: []int{1, 0, 1}},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("good plan %d rejected: %v", i, err)
		}
	}
	items := make([]engine.BatchItem, 9)
	for _, policy := range []Policy{RoundRobin, HashAffine} {
		for k := 1; k <= 4; k++ {
			p, err := NewPlan(k, policy, items)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Errorf("NewPlan(%d, %v) built an invalid plan: %v", k, policy, err)
			}
		}
	}
}

// A corrupt plan must fail Run and MergeJSONL with the validation
// error, not panic inside Locals — the regression this guards was an
// index-out-of-range crash.
func TestRunAndMergeRejectCorruptPlans(t *testing.T) {
	items := []engine.BatchItem{{}, {}}
	for _, plan := range []*Plan{
		{K: 2, Policy: RoundRobin, Shards: []int{0, 2}},
		{K: 2, Policy: RoundRobin, Shards: []int{-1, 0}},
	} {
		err := Run(context.Background(), items, plan, engine.BatchConfig{}, func(engine.BatchResult) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "want [0,2)") {
			t.Errorf("Run(%v) error = %v, want placement-range validation", plan.Shards, err)
		}
		var out bytes.Buffer
		readers := make([]io.Reader, plan.K)
		for i := range readers {
			readers[i] = strings.NewReader("")
		}
		err = MergeJSONL(&out, plan, readers, nil)
		if err == nil || !strings.Contains(err.Error(), "want [0,2)") {
			t.Errorf("MergeJSONL(%v) error = %v, want placement-range validation", plan.Shards, err)
		}
	}
}

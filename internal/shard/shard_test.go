package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"storagesched/internal/cache"
	"storagesched/internal/engine"
	"storagesched/internal/gen"
)

// testItems is a mixed workload: instances, graphs, a duplicated
// instance (hash-affinity target) and a per-item source error.
func testItems(t *testing.T) []engine.BatchItem {
	t.Helper()
	return []engine.BatchItem{
		{Instance: gen.Uniform(30, 3, 1)},
		{Graph: gen.LayeredDAG(3, 6, 3, 2)},
		{Err: errors.New("shard_test: broken source a")},
		{Instance: gen.EmbeddedCode(40, 4, 3)},
		{Instance: gen.Uniform(30, 3, 1)}, // duplicate of item 0
		{Graph: gen.ForkJoin(3, 3, 3, 4)},
		{Err: errors.New("shard_test: broken source b")},
		{Instance: gen.GridBatch(25, 3, 5)},
	}
}

func testGrid(t *testing.T) []float64 {
	t.Helper()
	grid, err := engine.GeometricGrid(0.5, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	return grid
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{
		{"rr", RoundRobin}, {"round-robin", RoundRobin}, {"RoundRobin", RoundRobin},
		{"hash", HashAffine}, {"hash-affine", HashAffine}, {"affine", HashAffine},
	} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		// String forms round-trip.
		if back, err := ParsePolicy(got.String()); err != nil || back != got {
			t.Errorf("ParsePolicy(%v.String()) = %v, %v", got, back, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestNewPlanRoundRobin(t *testing.T) {
	items := testItems(t)
	plan, err := NewPlan(3, RoundRobin, items)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range plan.Shards {
		if s != i%3 {
			t.Errorf("item %d on shard %d, want %d", i, s, i%3)
		}
	}
	counts := plan.Counts()
	if counts[0]+counts[1]+counts[2] != len(items) {
		t.Errorf("counts %v do not sum to %d", counts, len(items))
	}
}

func TestNewPlanHashAffineRoutesDuplicatesTogether(t *testing.T) {
	items := testItems(t)
	plan, err := NewPlan(3, HashAffine, items)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Shards[0] != plan.Shards[4] {
		t.Errorf("duplicate items on shards %d and %d, want equal", plan.Shards[0], plan.Shards[4])
	}
	// Error items fall back to round-robin positions.
	if plan.Shards[2] != 2%3 || plan.Shards[6] != 6%3 {
		t.Errorf("error items on shards %d,%d, want round-robin 2,0", plan.Shards[2], plan.Shards[6])
	}
	// Determinism: the same inputs replan identically.
	again, err := NewPlan(3, HashAffine, items)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, again) {
		t.Error("replanning the same items diverged")
	}
}

func TestNewPlanRejectsBadInputs(t *testing.T) {
	if _, err := NewPlan(0, RoundRobin, nil); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := NewPlan(2, Policy(42), testItems(t)); err == nil {
		t.Error("unknown policy accepted")
	}
}

// The acceptance criterion: for K ∈ {1, 2, 4} under both policies, the
// sharded run emits exactly the unsharded batch — same order, same
// per-item errors, same results.
func TestRunMatchesUnshardedAcrossKAndPolicies(t *testing.T) {
	items := testItems(t)
	cfg := engine.BatchConfig{Config: engine.Config{Deltas: testGrid(t), Workers: 2}}

	var want []engine.BatchResult
	if err := engine.SweepBatch(context.Background(), seqOf(items), cfg, func(br engine.BatchResult) error {
		want = append(want, br)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	for _, policy := range []Policy{RoundRobin, HashAffine} {
		for _, k := range []int{1, 2, 4} {
			plan, err := NewPlan(k, policy, items)
			if err != nil {
				t.Fatal(err)
			}
			var got []engine.BatchResult
			err = Run(context.Background(), items, plan, cfg, func(br engine.BatchResult) error {
				got = append(got, br)
				return nil
			})
			if err != nil {
				t.Fatalf("policy=%v k=%d: %v", policy, k, err)
			}
			if len(got) != len(want) {
				t.Fatalf("policy=%v k=%d: emitted %d, want %d", policy, k, len(got), len(want))
			}
			for i := range want {
				if got[i].Index != want[i].Index {
					t.Errorf("policy=%v k=%d pos %d: index %d, want %d", policy, k, i, got[i].Index, want[i].Index)
				}
				if (got[i].Err == nil) != (want[i].Err == nil) {
					t.Errorf("policy=%v k=%d item %d: err %v, want %v", policy, k, i, got[i].Err, want[i].Err)
					continue
				}
				if want[i].Err != nil {
					if got[i].Err.Error() != want[i].Err.Error() {
						t.Errorf("policy=%v k=%d item %d: err %q, want %q", policy, k, i, got[i].Err, want[i].Err)
					}
					continue
				}
				if !reflect.DeepEqual(got[i].Result, want[i].Result) {
					t.Errorf("policy=%v k=%d item %d: results differ", policy, k, i)
				}
			}
		}
	}
}

// Sharded runs may share one cache; hash affinity keeps each item's
// entries on one shard, and a second pass hits everywhere.
func TestRunWithSharedCacheWarmsAcrossPasses(t *testing.T) {
	items := testItems(t)
	c, err := cache.New(cache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.BatchConfig{Config: engine.Config{Deltas: testGrid(t), Workers: 1}, Cache: c}
	plan, err := NewPlan(2, HashAffine, items)
	if err != nil {
		t.Fatal(err)
	}
	pass := func() (hits int) {
		t.Helper()
		if err := Run(context.Background(), items, plan, cfg, func(br engine.BatchResult) error {
			if br.CacheHit {
				hits++
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return hits
	}
	pass()
	valid := 0
	for _, it := range items {
		if it.Err == nil {
			valid++
		}
	}
	if hits := pass(); hits != valid {
		t.Errorf("warm pass hit %d of %d valid items", hits, valid)
	}
}

func TestRunEmitErrorAborts(t *testing.T) {
	items := testItems(t)
	plan, err := NewPlan(2, RoundRobin, items)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("shard_test: stop")
	cfg := engine.BatchConfig{Config: engine.Config{Deltas: testGrid(t), Workers: 1}}
	err = Run(context.Background(), items, plan, cfg, func(engine.BatchResult) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}
}

func TestRunCancelledContext(t *testing.T) {
	items := testItems(t)
	plan, err := NewPlan(2, RoundRobin, items)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := engine.BatchConfig{Config: engine.Config{Deltas: testGrid(t), Workers: 1}}
	err = Run(ctx, items, plan, cfg, func(engine.BatchResult) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	items := testItems(t)
	plan, err := NewPlan(2, RoundRobin, items)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.BatchConfig{Config: engine.Config{Deltas: testGrid(t)}}
	if err := Run(context.Background(), items, nil, cfg, func(engine.BatchResult) error { return nil }); err == nil {
		t.Error("nil plan accepted")
	}
	if err := Run(context.Background(), items[:3], plan, cfg, func(engine.BatchResult) error { return nil }); err == nil {
		t.Error("plan/items length mismatch accepted")
	}
	if err := Run(context.Background(), items, plan, cfg, nil); err == nil {
		t.Error("nil emit accepted")
	}
}

// MergeJSONL interleaves shard outputs back into plan order, rewriting
// each line with its global index.
func TestMergeJSONL(t *testing.T) {
	// 5 items on 2 shards: plan order 0→s0, 1→s1, 2→s0, 3→s0, 4→s1.
	plan := &Plan{K: 2, Policy: RoundRobin, Shards: []int{0, 1, 0, 0, 1}}
	s0 := "local0\nlocal1\n\nlocal2\n" // blank lines are skipped
	s1 := "localA\nlocalB\n"
	var out bytes.Buffer
	err := MergeJSONL(&out, plan, []io.Reader{strings.NewReader(s0), strings.NewReader(s1)},
		func(line []byte, g int) ([]byte, error) {
			return []byte(fmt.Sprintf("%s@%d", line, g)), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want := "local0@0\nlocalA@1\nlocal1@2\nlocal2@3\nlocalB@4\n"
	if out.String() != want {
		t.Errorf("merged:\n%q\nwant:\n%q", out.String(), want)
	}
}

func TestMergeJSONLStrictness(t *testing.T) {
	plan := &Plan{K: 2, Policy: RoundRobin, Shards: []int{0, 1, 0}}

	// Short shard output: error naming the shard and position.
	var out bytes.Buffer
	err := MergeJSONL(&out, plan, []io.Reader{strings.NewReader("a\n"), strings.NewReader("b\n")}, nil)
	if err == nil || !strings.Contains(err.Error(), "ended before") {
		t.Errorf("short output: err = %v", err)
	}

	// Extra lines: also an error.
	out.Reset()
	err = MergeJSONL(&out, plan, []io.Reader{strings.NewReader("a\nc\nextra\n"), strings.NewReader("b\n")}, nil)
	if err == nil || !strings.Contains(err.Error(), "beyond its plan slice") {
		t.Errorf("extra output: err = %v", err)
	}

	// Wrong shard count.
	if err := MergeJSONL(&out, plan, []io.Reader{strings.NewReader("")}, nil); err == nil {
		t.Error("shard count mismatch accepted")
	}
	// Rewrite failures propagate.
	err = MergeJSONL(&out, plan, []io.Reader{strings.NewReader("a\nc\n"), strings.NewReader("b\n")},
		func([]byte, int) ([]byte, error) { return nil, errors.New("bad line") })
	if err == nil || !strings.Contains(err.Error(), "bad line") {
		t.Errorf("rewrite error: err = %v", err)
	}
}

func seqOf(items []engine.BatchItem) func(func(engine.BatchItem) bool) {
	return func(yield func(engine.BatchItem) bool) {
		for _, it := range items {
			if !yield(it) {
				return
			}
		}
	}
}

// Package shard coordinates cluster-scale sweeps: it splits a batch of
// work items into K deterministic shards, runs each shard through its
// own engine.SweepBatch pool — in this process or in subprocesses
// driving `schedcli sweepbatch` — and merges the per-shard outputs
// back into input order, so a sharded run is byte-identical to an
// unsharded one.
//
// Two placement policies exist. RoundRobin deals items out cyclically,
// balancing counts. HashAffine places items by their content hash
// (the same canonical bytes internal/cache keys on), so identical
// items always land on the same shard — shard-local caches stay hot
// and repeated instances never warm two shards with the same front.
//
// The merge side is deliberately simple: because the plan is
// deterministic, the item at global position g lives at a known
// position of a known shard, and each shard emits its slice in order.
// Merging is therefore a sequential walk of the plan, pulling the next
// result from the owning shard — no reorder buffer beyond each
// shard's bounded channel.
package shard

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"storagesched/internal/cache"
	"storagesched/internal/engine"
)

// Policy selects how items are placed on shards.
type Policy int

const (
	// RoundRobin deals items out cyclically: item i goes to shard
	// i mod K. Balances item counts regardless of content.
	RoundRobin Policy = iota
	// HashAffine places each item by its content hash modulo K, so
	// identical items always share a shard (hot shard-local caches).
	// Items with no content (source errors) fall back to round-robin.
	HashAffine
)

// String implements fmt.Stringer; the forms parse back via
// ParsePolicy.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "rr"
	case HashAffine:
		return "hash"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy parses a policy name as accepted on command lines.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "rr", "roundrobin", "round-robin":
		return RoundRobin, nil
	case "hash", "hash-affine", "affine":
		return HashAffine, nil
	}
	return 0, fmt.Errorf("shard: unknown policy %q (want rr | hash)", s)
}

// Plan is a deterministic placement of n items onto K shards.
type Plan struct {
	K      int
	Policy Policy
	// Shards[i] is the shard of input item i.
	Shards []int
}

// ItemHash returns the content hash used for hash-affine placement:
// the 64-bit fold of the item's canonical bytes. ok is false for items
// with no content (source errors, empty items), which the planner
// places round-robin instead.
func ItemHash(item engine.BatchItem) (uint64, bool) {
	switch {
	case item.Err != nil:
		return 0, false
	case item.Graph != nil:
		return cache.KeyFor(cache.CanonicalGraph(item.Graph), "").Hash64(), true
	case item.Instance != nil:
		return cache.KeyFor(cache.CanonicalInstance(item.Instance), "").Hash64(), true
	}
	return 0, false
}

// NewPlan places items onto k shards under the policy. The placement
// depends only on (k, policy, item contents), never on timing, so the
// same inputs always produce the same plan — on every machine of a
// cluster.
func NewPlan(k int, policy Policy, items []engine.BatchItem) (*Plan, error) {
	if k < 1 {
		return nil, fmt.Errorf("shard: k = %d, need k >= 1", k)
	}
	p := &Plan{K: k, Policy: policy, Shards: make([]int, len(items))}
	for i, item := range items {
		switch policy {
		case RoundRobin:
			p.Shards[i] = i % k
		case HashAffine:
			if h, ok := ItemHash(item); ok {
				p.Shards[i] = int(h % uint64(k))
			} else {
				p.Shards[i] = i % k
			}
		default:
			return nil, fmt.Errorf("shard: unknown policy %v", policy)
		}
	}
	return p, nil
}

// Validate checks the plan's internal consistency: K is at least 1
// and every placement is a shard in [0, K). Run, MergeJSONL and the
// CLI's plan reader all validate before indexing by placement, so a
// hand-edited or corrupted plan file reports a clean error instead of
// panicking inside Locals.
func (p *Plan) Validate() error {
	if p == nil {
		return fmt.Errorf("shard: nil plan")
	}
	if p.K < 1 {
		return fmt.Errorf("shard: plan has k = %d, need k >= 1", p.K)
	}
	for i, s := range p.Shards {
		if s < 0 || s >= p.K {
			return fmt.Errorf("shard: item %d placed on shard %d, want [0,%d)", i, s, p.K)
		}
	}
	return nil
}

// Counts returns the number of items per shard.
func (p *Plan) Counts() []int {
	counts := make([]int, p.K)
	for _, s := range p.Shards {
		counts[s]++
	}
	return counts
}

// Locals returns, per shard, the global indexes of its items in global
// order — the shard's slice of the input, and the key to relabelling a
// shard's local output indexes back to global ones.
func (p *Plan) Locals() [][]int {
	locals := make([][]int, p.K)
	for g, s := range p.Shards {
		locals[s] = append(locals[s], g)
	}
	return locals
}

// Run executes the plan in-process: one engine.SweepBatch pool per
// shard, all running concurrently, with results merged back into
// global input order and streamed to emit (sequentially, like
// SweepBatch itself). Emitted BatchResult.Index values are global.
// cfg applies to every shard — in particular cfg.Workers sizes each
// shard's pool, so total parallelism is K × workers.
//
// A shard that runs ahead of the merge blocks on its bounded channel,
// so memory stays O(K × window) however many items the plan covers.
// Per-item failures flow through as BatchResult.Err exactly as in an
// unsharded batch; a shard-level failure (or an emit error) cancels
// every shard and is returned.
func Run(ctx context.Context, items []engine.BatchItem, plan *Plan, cfg engine.BatchConfig, emit func(engine.BatchResult) error) error {
	if err := plan.Validate(); err != nil {
		return err
	}
	if len(plan.Shards) != len(items) {
		return fmt.Errorf("shard: plan covers %d items, got %d", len(plan.Shards), len(items))
	}
	if emit == nil {
		return fmt.Errorf("shard: nil emit callback")
	}

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	locals := plan.Locals()
	window := cfg.MaxPending
	if window <= 0 {
		window = 4
	}
	chans := make([]chan engine.BatchResult, plan.K)
	errs := make([]error, plan.K)
	var wg sync.WaitGroup
	for s := 0; s < plan.K; s++ {
		chans[s] = make(chan engine.BatchResult, window)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			defer close(chans[s])
			mine := locals[s]
			seq := func(yield func(engine.BatchItem) bool) {
				for _, g := range mine {
					if !yield(items[g]) {
						return
					}
				}
			}
			local := 0
			errs[s] = engine.SweepBatch(sctx, seq, cfg, func(br engine.BatchResult) error {
				br.Index = mine[local]
				local++
				select {
				case chans[s] <- br:
					return nil
				case <-sctx.Done():
					return sctx.Err()
				}
			})
		}(s)
	}

	var emitErr error
	emitted := 0
	for g := range plan.Shards {
		br, ok := <-chans[plan.Shards[g]]
		if !ok {
			// The owning shard ended early; its error is reported after
			// the goroutines drain.
			break
		}
		if err := emit(br); err != nil {
			emitErr = err
			break
		}
		emitted++
	}
	if emitted != len(plan.Shards) {
		// Early termination only: cancel the shards and drain their
		// channels so pools parked on a send wind down. On the success
		// path the shards have already returned — cancelling before
		// they observe their own completion would turn their final
		// ctx.Err() check into a spurious failure.
		cancel()
		for _, ch := range chans {
			go func(ch chan engine.BatchResult) {
				for range ch {
				}
			}(ch)
		}
	}
	wg.Wait()
	if emitErr != nil {
		return emitErr
	}
	for s, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if emitted != len(plan.Shards) {
		// Unreachable unless an engine invariant breaks, but a silent
		// short merge must never look like success.
		return fmt.Errorf("shard: merged %d of %d items", emitted, len(plan.Shards))
	}
	return nil
}

// MergeJSONL merges per-shard JSONL outputs (one line per item, in
// each shard's local order) back into global input order. For global
// position g the next line of shard plan.Shards[g] is passed to
// rewrite together with g — the caller relabels its local index to the
// global one (nil rewrite passes lines through) — and written to w
// with a trailing newline.
//
// The merge is strict: a shard output with fewer or more non-empty
// lines than its plan slice is an error, because a silent mismatch
// would misattribute every later front to the wrong item.
func MergeJSONL(w io.Writer, plan *Plan, shardOutputs []io.Reader, rewrite func(line []byte, globalIndex int) ([]byte, error)) error {
	if err := plan.Validate(); err != nil {
		return err
	}
	if len(shardOutputs) != plan.K {
		return fmt.Errorf("shard: %d outputs for %d shards", len(shardOutputs), plan.K)
	}
	scanners := make([]*bufio.Scanner, plan.K)
	for s, r := range shardOutputs {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
		scanners[s] = sc
	}
	next := func(s int) ([]byte, error) {
		sc := scanners[s]
		for sc.Scan() {
			line := sc.Bytes()
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			return line, nil
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("shard: reading shard %d output: %w", s, err)
		}
		return nil, nil
	}
	bw := bufio.NewWriter(w)
	for g, s := range plan.Shards {
		line, err := next(s)
		if err != nil {
			return err
		}
		if line == nil {
			return fmt.Errorf("shard: shard %d output ended before item %d", s, g)
		}
		if rewrite != nil {
			if line, err = rewrite(line, g); err != nil {
				return fmt.Errorf("shard: rewriting item %d (shard %d): %w", g, s, err)
			}
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	for s := range scanners {
		if line, err := next(s); err != nil {
			return err
		} else if line != nil {
			return fmt.Errorf("shard: shard %d output has lines beyond its plan slice", s)
		}
	}
	return bw.Flush()
}

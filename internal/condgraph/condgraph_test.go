package condgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"storagesched/internal/core"
	"storagesched/internal/dag"
	"storagesched/internal/model"
)

// branchy builds: 0 -> {1, 2} (branch: either 1 or 2), 1 -> 3, 2 -> 3.
func branchy(t *testing.T) *CondGraph {
	t.Helper()
	g := dag.New(2, []model.Time{1, 4, 2, 1}, []model.Mem{1, 5, 3, 1})
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	cg := New(g)
	if err := cg.AddBranch(0, [][]int{{1}, {2}}, []float64{0.7, 0.3}); err != nil {
		t.Fatalf("AddBranch: %v", err)
	}
	return cg
}

func TestAddBranchValidation(t *testing.T) {
	g := dag.New(1, []model.Time{1, 1, 1}, []model.Mem{0, 0, 0})
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	cg := New(g)
	cases := []struct {
		name string
		err  func() error
	}{
		{"out of range", func() error { return cg.AddBranch(9, [][]int{{1}, {2}}, []float64{0.5, 0.5}) }},
		{"one alternative", func() error { return cg.AddBranch(0, [][]int{{1}}, []float64{1}) }},
		{"prob mismatch", func() error { return cg.AddBranch(0, [][]int{{1}, {2}}, []float64{1}) }},
		{"empty alt", func() error { return cg.AddBranch(0, [][]int{{}, {2}}, []float64{0.5, 0.5}) }},
		{"non successor", func() error { return cg.AddBranch(0, [][]int{{1}, {0}}, []float64{0.5, 0.5}) }},
		{"overlap", func() error { return cg.AddBranch(0, [][]int{{1}, {1}}, []float64{0.5, 0.5}) }},
		{"bad probs", func() error { return cg.AddBranch(0, [][]int{{1}, {2}}, []float64{0.9, 0.3}) }},
		{"zero prob", func() error { return cg.AddBranch(0, [][]int{{1}, {2}}, []float64{1, 0}) }},
	}
	for _, tc := range cases {
		if tc.err() == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := cg.AddBranch(0, [][]int{{1}, {2}}, []float64{0.5, 0.5}); err != nil {
		t.Fatalf("valid branch rejected: %v", err)
	}
	if err := cg.AddBranch(0, [][]int{{1}, {2}}, []float64{0.5, 0.5}); err == nil {
		t.Error("duplicate branch accepted")
	}
}

func TestResolveActivity(t *testing.T) {
	cg := branchy(t)
	// Choice 0: select {1}. Node 2 inactive; 3 active via 1.
	sc := cg.Resolve([]int{0})
	want := []bool{true, true, false, true}
	for v, w := range want {
		if sc.Active[v] != w {
			t.Errorf("choice 0: active[%d] = %v, want %v", v, sc.Active[v], w)
		}
	}
	// Choice 1: select {2}.
	sc = cg.Resolve([]int{1})
	want = []bool{true, false, true, true}
	for v, w := range want {
		if sc.Active[v] != w {
			t.Errorf("choice 1: active[%d] = %v, want %v", v, sc.Active[v], w)
		}
	}
}

func TestResolveCascadingDeactivation(t *testing.T) {
	// 0 -> 1 -> 2: deselecting 1 must deactivate 2 as well.
	g := dag.New(1, []model.Time{1, 1, 1, 1}, []model.Mem{0, 0, 0, 0})
	g.AddEdge(0, 1)
	g.AddEdge(0, 3)
	g.AddEdge(1, 2)
	cg := New(g)
	if err := cg.AddBranch(0, [][]int{{1}, {3}}, []float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	sc := cg.Resolve([]int{1}) // select {3}
	if sc.Active[1] || sc.Active[2] {
		t.Errorf("deselected chain still active: %v", sc.Active)
	}
	if !sc.Active[3] {
		t.Error("selected node inactive")
	}
}

func TestSampleProbabilities(t *testing.T) {
	cg := branchy(t)
	rng := rand.New(rand.NewSource(1))
	const trials = 20000
	count := 0
	for i := 0; i < trials; i++ {
		sc := cg.Sample(rng)
		if sc.Choice[0] == 0 {
			count++
		}
	}
	frac := float64(count) / trials
	if math.Abs(frac-0.7) > 0.02 {
		t.Errorf("alternative 0 frequency %.3f, want ~0.7", frac)
	}
}

func TestInducedSubgraph(t *testing.T) {
	cg := branchy(t)
	ind, orig := cg.Induced(cg.Resolve([]int{0}))
	if ind.N() != 3 {
		t.Fatalf("induced n = %d, want 3", ind.N())
	}
	// orig maps back: {0, 1, 3}.
	want := []int{0, 1, 3}
	for k, v := range want {
		if orig[k] != v {
			t.Errorf("orig[%d] = %d, want %d", k, orig[k], v)
		}
	}
	if err := ind.Validate(); err != nil {
		t.Fatalf("induced graph invalid: %v", err)
	}
	// Edge 0->1 and 1->3 survive as 0->1, 1->2.
	if !ind.HasEdge(0, 1) || !ind.HasEdge(1, 2) {
		t.Error("induced edges wrong")
	}
}

func TestExecuteStaticNeverWorseThanFull(t *testing.T) {
	cg := branchy(t)
	full, err := core.RLS(cg.G, 3, core.TieBottomLevel)
	if err != nil {
		t.Fatal(err)
	}
	for _, choice := range [][]int{{0}, {1}} {
		scen := cg.Resolve(choice)
		c, m := cg.ExecuteStatic(full.Schedule, scen)
		if c > full.Cmax {
			t.Errorf("choice %v: scenario Cmax %d > full %d", choice, c, full.Cmax)
		}
		if m > full.Mmax {
			t.Errorf("choice %v: scenario Mmax %d > full %d", choice, m, full.Mmax)
		}
	}
}

func TestMonteCarloBasics(t *testing.T) {
	cg := branchy(t)
	res, err := MonteCarlo(cg, 3, 200, 7)
	if err != nil {
		t.Fatalf("MonteCarlo: %v", err)
	}
	if res.Trials != 200 {
		t.Errorf("trials = %d", res.Trials)
	}
	if res.MeanActive <= 0 || res.MeanActive > 1 {
		t.Errorf("mean active fraction %g out of range", res.MeanActive)
	}
	// Static scenario means never exceed the full-schedule values.
	if res.StaticMeanCmax > float64(res.StaticFullCmax)+1e-9 {
		t.Errorf("static mean Cmax %g > full %d", res.StaticMeanCmax, res.StaticFullCmax)
	}
	if res.StaticMeanMmax > float64(res.StaticFullMmax)+1e-9 {
		t.Errorf("static mean Mmax %g > full %d", res.StaticMeanMmax, res.StaticFullMmax)
	}
	if _, err := MonteCarlo(cg, 3, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

// randomCondGraph builds a random layered DAG with branches at random
// multi-successor nodes.
func randomCondGraph(rng *rand.Rand) *CondGraph {
	n := 8 + rng.Intn(20)
	m := 2 + rng.Intn(4)
	p := make([]model.Time, n)
	s := make([]model.Mem, n)
	for i := range p {
		p[i] = rng.Int63n(20) + 1
		s[i] = rng.Int63n(20)
	}
	g := dag.New(m, p, s)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.2 {
				g.AddEdge(u, v)
			}
		}
	}
	cg := New(g)
	for u := 0; u < n; u++ {
		succs := g.Succs(u)
		if len(succs) >= 2 && rng.Float64() < 0.5 {
			alts := [][]int{{succs[0]}, {succs[1]}}
			if err := cg.AddBranch(u, alts, []float64{0.5, 0.5}); err != nil {
				panic(err)
			}
		}
	}
	return cg
}

// Hard invariants across random conditional graphs: scenario execution
// of the static schedule never exceeds full-schedule objectives, and
// the dynamic policy's schedules honour the RLS memory bound on the
// induced instance.
func TestPropertyCondGraphInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cg := randomCondGraph(rng)
		full, err := core.RLS(cg.G, 3, core.TieBottomLevel)
		if err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			scen := cg.Sample(rng)
			c, m := cg.ExecuteStatic(full.Schedule, scen)
			if c > full.Cmax || m > full.Mmax {
				return false
			}
			ind, _ := cg.Induced(scen)
			if ind.N() == 0 {
				continue
			}
			dres, err := core.RLS(ind, 3, core.TieBottomLevel)
			if err != nil {
				return false
			}
			if dres.Schedule.Validate(ind.PredLists()) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// With a single always-selected alternative... a degenerate two-way
// branch with probabilities (1-eps, eps) at eps -> the sampled
// behaviour approaches deterministic; Resolve with explicit choices is
// what matters: full activation when every branch selects a superset
// path that reaches all nodes. Here: no branches at all.
func TestNoBranchesMeansAllActive(t *testing.T) {
	g := dag.New(2, []model.Time{1, 2, 3}, []model.Mem{1, 1, 1})
	g.AddEdge(0, 1)
	cg := New(g)
	sc := cg.Resolve(nil)
	for v, a := range sc.Active {
		if !a {
			t.Errorf("node %d inactive without branches", v)
		}
	}
	ind, _ := cg.Induced(sc)
	if ind.N() != 3 || ind.NumEdges() != 1 {
		t.Errorf("induced graph differs from original: n=%d e=%d", ind.N(), ind.NumEdges())
	}
}

// Package condgraph implements conditional task graphs — DAGs in which
// a branch node selects exactly one of several successor alternatives
// at run time — the first "more realistic model extension" named in
// the paper's concluding remarks (and the setting of its reference [5],
// Choudhury et al., on hybrid scheduling under memory and time
// constraints).
//
// Semantics: every original source is always active; a non-source node
// becomes active when at least one *selected* incoming edge leaves an
// active node. A branch selection keeps the edges toward the chosen
// alternative and drops the others. Tasks that never activate do not
// execute and occupy no memory.
//
// Two scheduling policies are provided:
//
//   - Static-conservative: run RLS∆ once on the full graph (as if all
//     branches executed) and, per scenario, execute only the active
//     tasks keeping the processor assignment and per-processor order.
//     Start times can only shrink when tasks drop out, so the full-
//     graph Cmax and Mmax bound every scenario — the memory guarantee
//     Mmax ≤ ∆·LB(full) holds unconditionally.
//   - Clairvoyant-dynamic: re-run RLS∆ on each scenario's induced
//     subgraph (knows the branch outcomes in advance); its own
//     guarantees hold per scenario against the scenario's bounds.
//
// The gap between the two policies is the price of not knowing branch
// outcomes; the MonteCarlo driver estimates it.
package condgraph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"storagesched/internal/core"
	"storagesched/internal/dag"
	"storagesched/internal/model"
)

// Branch is one conditional choice point: when node Cond completes,
// exactly one alternative (a set of successor nodes of Cond) is
// activated, with the given probabilities.
type Branch struct {
	Cond         int
	Alternatives [][]int
	Probs        []float64
}

// CondGraph is a task DAG plus branch annotations.
type CondGraph struct {
	G        *dag.Graph
	Branches []Branch
}

// New wraps a validated DAG.
func New(g *dag.Graph) *CondGraph { return &CondGraph{G: g} }

// AddBranch declares a choice point. Every alternative must be a
// non-empty subset of Cond's successors, alternatives must be
// disjoint, and probabilities must be positive and sum to 1.
func (cg *CondGraph) AddBranch(cond int, alternatives [][]int, probs []float64) error {
	if cond < 0 || cond >= cg.G.N() {
		return fmt.Errorf("condgraph: branch node %d out of range", cond)
	}
	if len(alternatives) < 2 {
		return fmt.Errorf("condgraph: branch at %d needs >= 2 alternatives", cond)
	}
	if len(alternatives) != len(probs) {
		return fmt.Errorf("condgraph: %d alternatives but %d probabilities", len(alternatives), len(probs))
	}
	for _, b := range cg.Branches {
		if b.Cond == cond {
			return fmt.Errorf("condgraph: node %d already has a branch", cond)
		}
	}
	succs := map[int]bool{}
	for _, v := range cg.G.Succs(cond) {
		succs[v] = true
	}
	seen := map[int]bool{}
	total := 0.0
	for k, alt := range alternatives {
		if len(alt) == 0 {
			return fmt.Errorf("condgraph: empty alternative %d at node %d", k, cond)
		}
		for _, v := range alt {
			if !succs[v] {
				return fmt.Errorf("condgraph: alternative member %d is not a successor of %d", v, cond)
			}
			if seen[v] {
				return fmt.Errorf("condgraph: node %d appears in two alternatives of %d", v, cond)
			}
			seen[v] = true
		}
		if probs[k] <= 0 {
			return fmt.Errorf("condgraph: probability %g of alternative %d must be > 0", probs[k], k)
		}
		total += probs[k]
	}
	if math.Abs(total-1) > 1e-9 {
		return fmt.Errorf("condgraph: probabilities sum to %g, want 1", total)
	}
	cg.Branches = append(cg.Branches, Branch{Cond: cond, Alternatives: alternatives, Probs: probs})
	return nil
}

// Scenario fixes one outcome per branch.
type Scenario struct {
	// Choice[b] is the selected alternative index of Branches[b].
	Choice []int
	// Active[v] reports whether task v executes.
	Active []bool
}

// Sample draws a scenario.
func (cg *CondGraph) Sample(rng *rand.Rand) Scenario {
	choice := make([]int, len(cg.Branches))
	for b, br := range cg.Branches {
		x := rng.Float64()
		acc := 0.0
		choice[b] = len(br.Probs) - 1
		for k, p := range br.Probs {
			acc += p
			if x < acc {
				choice[b] = k
				break
			}
		}
	}
	return cg.Resolve(choice)
}

// Resolve computes the active set for explicit branch choices.
func (cg *CondGraph) Resolve(choice []int) Scenario {
	if len(choice) != len(cg.Branches) {
		panic(fmt.Sprintf("condgraph: %d choices for %d branches", len(choice), len(cg.Branches)))
	}
	n := cg.G.N()
	// dropped[u][v] marks de-selected edges.
	dropped := make(map[[2]int]bool)
	for b, br := range cg.Branches {
		for k, alt := range br.Alternatives {
			if k == choice[b] {
				continue
			}
			for _, v := range alt {
				dropped[[2]int{br.Cond, v}] = true
			}
		}
	}
	active := make([]bool, n)
	order, err := cg.G.TopoOrder()
	if err != nil {
		panic(fmt.Sprintf("condgraph: %v", err))
	}
	for _, v := range order {
		if len(cg.G.Preds(v)) == 0 {
			active[v] = true
			continue
		}
		for _, u := range cg.G.Preds(v) {
			if active[u] && !dropped[[2]int{u, v}] {
				active[v] = true
				break
			}
		}
	}
	return Scenario{Choice: append([]int(nil), choice...), Active: active}
}

// Induced builds the subgraph of active tasks (edges restricted to
// selected, active-to-active ones) plus the mapping from induced ids
// back to original ids.
func (cg *CondGraph) Induced(sc Scenario) (*dag.Graph, []int) {
	var orig []int
	newID := make([]int, cg.G.N())
	for v := range newID {
		newID[v] = -1
	}
	for v := 0; v < cg.G.N(); v++ {
		if sc.Active[v] {
			newID[v] = len(orig)
			orig = append(orig, v)
		}
	}
	p := make([]model.Time, len(orig))
	s := make([]model.Mem, len(orig))
	for k, v := range orig {
		p[k] = cg.G.P[v]
		s[k] = cg.G.S[v]
	}
	dropped := cg.droppedEdges(sc.Choice)
	ind := dag.New(cg.G.M, p, s)
	for _, u := range orig {
		for _, v := range cg.G.Succs(u) {
			if newID[v] >= 0 && !dropped[[2]int{u, v}] {
				ind.AddEdge(newID[u], newID[v])
			}
		}
	}
	return ind, orig
}

func (cg *CondGraph) droppedEdges(choice []int) map[[2]int]bool {
	dropped := make(map[[2]int]bool)
	for b, br := range cg.Branches {
		for k, alt := range br.Alternatives {
			if k == choice[b] {
				continue
			}
			for _, v := range alt {
				dropped[[2]int{br.Cond, v}] = true
			}
		}
	}
	return dropped
}

// ExecuteStatic evaluates a full-graph schedule under a scenario:
// inactive tasks are skipped, the processor assignment and the
// per-processor start-time order are kept, and start times are
// recomputed as max(previous task on the processor, active
// predecessors). Because constraints only disappear, every start time
// is at most its full-schedule value.
func (cg *CondGraph) ExecuteStatic(sc *model.Schedule, scen Scenario) (model.Time, model.Mem) {
	n := cg.G.N()
	byProc := make([][]int, sc.M)
	for i := 0; i < n; i++ {
		if scen.Active[i] {
			byProc[sc.Proc[i]] = append(byProc[sc.Proc[i]], i)
		}
	}
	for q := range byProc {
		sort.Slice(byProc[q], func(a, b int) bool {
			ta, tb := byProc[q][a], byProc[q][b]
			if sc.Start[ta] != sc.Start[tb] {
				return sc.Start[ta] < sc.Start[tb]
			}
			return ta < tb
		})
	}
	dropped := cg.droppedEdges(scen.Choice)
	completion := make([]model.Time, n)
	// Process tasks in full-schedule start order so predecessors are
	// final before dependents (ties broken by id; a valid schedule
	// has pred completion <= succ start, so this order is safe).
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if scen.Active[i] {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if sc.Start[order[a]] != sc.Start[order[b]] {
			return sc.Start[order[a]] < sc.Start[order[b]]
		}
		return order[a] < order[b]
	})
	procClock := make([]model.Time, sc.M)
	var cmax model.Time
	mem := make([]model.Mem, sc.M)
	for _, i := range order {
		start := procClock[sc.Proc[i]]
		for _, u := range cg.G.Preds(i) {
			if scen.Active[u] && !dropped[[2]int{u, i}] && completion[u] > start {
				start = completion[u]
			}
		}
		completion[i] = start + sc.P[i]
		procClock[sc.Proc[i]] = completion[i]
		mem[sc.Proc[i]] += sc.S[i]
		if completion[i] > cmax {
			cmax = completion[i]
		}
	}
	var mmax model.Mem
	for _, l := range mem {
		if l > mmax {
			mmax = l
		}
	}
	return cmax, mmax
}

// MCResult aggregates a Monte Carlo comparison of the two policies.
type MCResult struct {
	Trials int

	// Static-conservative policy (one RLS schedule on the full graph).
	StaticFullCmax model.Time // the full-graph schedule's makespan
	StaticFullMmax model.Mem
	StaticMeanCmax float64
	StaticMeanMmax float64

	// Clairvoyant-dynamic policy (RLS per scenario).
	DynamicMeanCmax float64
	DynamicMeanMmax float64

	// MeanActive is the average fraction of tasks that execute.
	MeanActive float64
}

// MonteCarlo samples `trials` scenarios and evaluates both policies
// with RLS∆ (bottom-level tie-break).
func MonteCarlo(cg *CondGraph, delta float64, trials int, seed int64) (*MCResult, error) {
	if trials < 1 {
		return nil, fmt.Errorf("condgraph: trials = %d, need >= 1", trials)
	}
	full, err := core.RLS(cg.G, delta, core.TieBottomLevel)
	if err != nil {
		return nil, err
	}
	res := &MCResult{
		Trials:         trials,
		StaticFullCmax: full.Cmax,
		StaticFullMmax: full.Mmax,
	}
	rng := rand.New(rand.NewSource(seed))
	for t := 0; t < trials; t++ {
		scen := cg.Sample(rng)
		nActive := 0
		for _, a := range scen.Active {
			if a {
				nActive++
			}
		}
		res.MeanActive += float64(nActive) / float64(cg.G.N())

		c, m := cg.ExecuteStatic(full.Schedule, scen)
		res.StaticMeanCmax += float64(c)
		res.StaticMeanMmax += float64(m)

		ind, _ := cg.Induced(scen)
		if ind.N() > 0 {
			dres, err := core.RLS(ind, delta, core.TieBottomLevel)
			if err != nil {
				return nil, err
			}
			res.DynamicMeanCmax += float64(dres.Cmax)
			res.DynamicMeanMmax += float64(dres.Mmax)
		}
	}
	f := float64(trials)
	res.StaticMeanCmax /= f
	res.StaticMeanMmax /= f
	res.DynamicMeanCmax /= f
	res.DynamicMeanMmax /= f
	res.MeanActive /= f
	return res, nil
}

package exp

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ABL1", "ABL2", "ABL3",
		"ADAPTIVE",
		"CACHEABL",
		"COR1", "COR23", "COR4",
		"DAGSWEEP",
		"EXT1", "EXT2", "EXT3", "EXT4",
		"FIG1", "FIG2", "FIG3",
		"LEM12", "LEM3", "LEM6",
		"PROP12", "SEC7", "SWEEP",
	}
	got := Registry()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("%s: incomplete metadata", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("FIG1"); !ok {
		t.Error("FIG1 not found")
	}
	if _, ok := ByID("NOPE"); ok {
		t.Error("bogus ID found")
	}
}

// Every experiment must run clean: no claim violations, non-empty
// report.
func TestAllExperimentsPassTheirClaims(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("claim check failed: %v\n%s", err, buf.String())
			}
			if buf.Len() == 0 {
				t.Error("empty report")
			}
			if strings.Contains(buf.String(), "VIOLATED") {
				t.Errorf("report contains a violation:\n%s", buf.String())
			}
		})
	}
}

func TestRunAllAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll duplicates per-experiment tests")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	out := buf.String()
	for _, id := range []string{"FIG1", "PROP12", "COR23", "SEC7"} {
		if !strings.Contains(out, "==== "+id) {
			t.Errorf("RunAll output missing %s section", id)
		}
	}
	if !strings.Contains(out, "claim check: OK") {
		t.Error("no OK claim checks in RunAll output")
	}
}

func TestFigureReportsContainGanttAndPlot(t *testing.T) {
	var buf bytes.Buffer
	fig1, _ := ByID("FIG1")
	if err := fig1.Run(&buf); err != nil {
		t.Fatalf("FIG1: %v", err)
	}
	if !strings.Contains(buf.String(), "P0") || !strings.Contains(buf.String(), "Cmax=") {
		t.Errorf("FIG1 report lacks Gantt rows:\n%s", buf.String())
	}

	buf.Reset()
	fig3, _ := ByID("FIG3")
	if err := fig3.Run(&buf); err != nil {
		t.Fatalf("FIG3: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "SBO curve") || !strings.Contains(out, "Lemma 2 frontier, m=2") {
		t.Errorf("FIG3 report lacks plot legend:\n%s", out)
	}
}

func TestRatioRowFormatting(t *testing.T) {
	var buf bytes.Buffer
	if viol := ratioRow(&buf, "test", 1.0, 2.0); viol {
		t.Error("1.0 <= 2.0 flagged as violation")
	}
	if !strings.Contains(buf.String(), "[ok]") {
		t.Errorf("missing ok marker: %q", buf.String())
	}
	buf.Reset()
	if viol := ratioRow(&buf, "test", 3.0, 2.0); !viol {
		t.Error("3.0 > 2.0 not flagged")
	}
	if !strings.Contains(buf.String(), "VIOLATED") {
		t.Errorf("missing VIOLATED marker: %q", buf.String())
	}
}

var _ io.Writer = (*bytes.Buffer)(nil)

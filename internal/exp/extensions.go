package exp

import (
	"fmt"
	"io"
	"math/rand"

	"storagesched/internal/bounds"
	"storagesched/internal/condgraph"
	"storagesched/internal/core"
	"storagesched/internal/gen"
	"storagesched/internal/model"
	"storagesched/internal/pareto"
	"storagesched/internal/paretogen"
	"storagesched/internal/sim"
	"storagesched/internal/stats"
	"storagesched/internal/uniform"
)

// Extension experiments: the paper's "future works" directions built
// out and measured. They are not claims of the paper; their checks
// enforce the guarantees we derived (documented inline) plus basic
// sanity of the measurements.

func init() {
	register(Experiment{
		ID:    "EXT1",
		Title: "Extension — approximate Pareto-set generation by delta sweep (Section 6 remark)",
		Paper: "\"all algorithms we provide can be tuned using the delta parameter\"; quality vs exact fronts",
		Run:   runExt1,
	})
	register(Experiment{
		ID:    "EXT2",
		Title: "Extension — uniform (related) machines (future work: non-identical processors)",
		Paper: "derived guarantee: Cmax <= (1+d)*C and Mmax <= (1+Q/d)*M with Q the speed spread",
		Run:   runExt2,
	})
	register(Experiment{
		ID:    "EXT3",
		Title: "Extension — conditional task graphs (future work: conditional task graphs)",
		Paper: "static-conservative RLS bounds every scenario; measure its gap to clairvoyant per-scenario RLS",
		Run:   runExt3,
	})
	register(Experiment{
		ID:    "EXT4",
		Title: "Extension — online scheduling with release dates (the SoC online-optimization setting)",
		Paper: "cap-aware competitive envelope Cmax <= maxR + W(d-1)/(m(d-2)) + pmax; memory cap holds online",
		Run:   runExt4,
	})
}

func runExt1(w io.Writer) error {
	rng := rand.New(rand.NewSource(5))
	fmt.Fprintf(w, "small instances (n<=10): epsilon-indicator of the generated front vs the exact front\n\n")
	fmt.Fprintf(w, "%-6s %6s %8s %10s %12s\n", "seed", "n", "exact", "generated", "epsilon")
	accEps := stats.NewAcc(true)
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(5)
		m := 2 + rng.Intn(2)
		p := make([]model.Time, n)
		s := make([]model.Mem, n)
		for i := 0; i < n; i++ {
			p[i] = rng.Int63n(40) + 1
			s[i] = rng.Int63n(40) + 1
		}
		in := model.NewInstance(m, p, s)
		exact, err := pareto.Front(in)
		if err != nil {
			return err
		}
		approx, err := paretogen.Generate(in, paretogen.Options{Steps: 32, IncludeRLS: true, ConstrainedProbes: 6})
		if err != nil {
			return err
		}
		eps := paretogen.EpsilonIndicator(paretogen.Values(approx), pareto.Values(exact))
		accEps.Add(eps)
		fmt.Fprintf(w, "%-6d %6d %8d %10d %12.4f\n", trial, n, len(exact), len(approx), eps)
	}
	fmt.Fprintf(w, "\nepsilon indicator: mean %.4f, max %.4f (0 = generated set covers the exact front)\n",
		accEps.Mean(), accEps.Max())
	// The LPT-based sweep guarantee implies the generated set is a
	// rho(1+grid)-approximate Pareto set; 0.75 is a loose cap on the
	// measured indicator.
	if accEps.Max() > 0.75 {
		return fmt.Errorf("epsilon indicator %.3f exceeds the sweep guarantee envelope", accEps.Max())
	}

	// Hypervolume comparison of sweep configurations on a larger
	// instance (reference = 2x lower bounds).
	in := gen.Anticorrelated(80, 8, 11)
	rec := bounds.ForInstance(in)
	refC, refM := 3*rec.CmaxLB, 3*rec.MmaxLB
	fmt.Fprintf(w, "\nhypervolume on anticorrelated n=80 m=8 (higher = better front):\n")
	for _, cfg := range []struct {
		name string
		opts paretogen.Options
	}{
		{"SBO only", paretogen.Options{Steps: 24}},
		{"SBO+RLS", paretogen.Options{Steps: 24, IncludeRLS: true}},
		{"SBO+RLS+constrained", paretogen.Options{Steps: 24, IncludeRLS: true, ConstrainedProbes: 8}},
	} {
		pts, err := paretogen.Generate(in, cfg.opts)
		if err != nil {
			return err
		}
		hv := paretogen.Hypervolume(paretogen.Values(pts), refC, refM)
		fmt.Fprintf(w, "  %-22s %3d points  hypervolume %.3e\n", cfg.name, len(pts), hv)
	}
	return nil
}

func runExt2(w io.Writer) error {
	rng := rand.New(rand.NewSource(21))
	deltas := []float64{0.5, 1, 2, 4}
	spreads := []int64{1, 2, 4, 8}
	fmt.Fprintf(w, "SBOUniform on n=120 tasks, m=8 machines; worst ratios over 6 seeds per cell\n\n")
	fmt.Fprintf(w, "%6s %6s  %10s %10s  %10s %10s\n", "Q", "delta", "Cmax/C", "(1+d)", "Mmax/M", "(1+Q/d)")
	violated := false
	for _, q := range spreads {
		speeds := make(uniform.Speeds, 8)
		for j := range speeds {
			if j%2 == 0 {
				speeds[j] = 1
			} else {
				speeds[j] = q
			}
		}
		for _, d := range deltas {
			accC := stats.NewAcc(false)
			accM := stats.NewAcc(false)
			for seed := int64(0); seed < 6; seed++ {
				in := gen.Uniform(120, 8, rng.Int63())
				_ = seed
				res, err := uniform.SBOUniform(in, speeds, d)
				if err != nil {
					return err
				}
				accC.Add(res.Cmax.Float() / res.C.Float())
				if res.M > 0 {
					accM.Add(float64(res.Mmax) / float64(res.M))
				}
			}
			cb := 1 + d
			mb := 1 + speeds.Spread()/d
			status := ""
			if accC.Max() > cb+1e-9 || accM.Max() > mb+1e-9 {
				status = "  VIOLATED"
				violated = true
			}
			fmt.Fprintf(w, "%6d %6.2f  %10.4f %10.4f  %10.4f %10.4f%s\n",
				q, d, accC.Max(), cb, accM.Max(), mb, status)
		}
	}
	if violated {
		return fmt.Errorf("a derived uniform-machine bound was exceeded")
	}
	fmt.Fprintf(w, "\nRLSUniform memory guarantee (Mmax <= d*LB holds unchanged):\n")
	for _, q := range spreads {
		speeds := make(uniform.Speeds, 8)
		for j := range speeds {
			speeds[j] = 1 + int64(j)%q
		}
		in := gen.EmbeddedCode(120, 8, 3)
		res, err := uniform.RLSUniform(in, speeds, 3)
		if err != nil {
			return err
		}
		if res.Mmax > res.Cap {
			return fmt.Errorf("RLSUniform broke the memory cap at Q=%d", q)
		}
		lbRat := uniform.CmaxLB(in.P(), speeds)
		fmt.Fprintf(w, "  Q<=%d: Cmax=%.2f (%.4fxLB) Mmax=%d (cap %d)\n",
			q, res.Cmax.Float(), res.Cmax.Float()/lbRat.Float(), res.Mmax, res.Cap)
	}
	fmt.Fprintf(w, "\nshape: the memory bound degrades linearly in the speed spread Q — scheduling fast\n")
	fmt.Fprintf(w, "machines first concentrates storage; the identical-machine case (Q=1) recovers Property 2\n")
	return nil
}

func runExt3(w io.Writer) error {
	const delta = 3.0
	fmt.Fprintf(w, "fork-join pipelines with branch nodes; static-conservative vs clairvoyant-dynamic RLS (delta=%.0f)\n\n", delta)
	fmt.Fprintf(w, "%-8s %10s %12s %12s %12s %10s\n",
		"branchP", "active%", "static E[C]", "dynamic E[C]", "gap", "staticMmax")
	for _, pTake := range []float64{0.25, 0.5, 0.75} {
		g := gen.ForkJoin(4, 6, 4, 9)
		cg := condgraph.New(g)
		// Turn every fork node into a branch over its first two
		// successor filters: with prob pTake take filter A (plus the
		// rest), else filter B (plus the rest). Here: alternative 1 =
		// {succ0}, alternative 2 = {succ1}; remaining successors stay
		// unconditional.
		branches := 0
		for v := 0; v < g.N() && branches < 3; v++ {
			succs := g.Succs(v)
			if len(succs) >= 3 {
				if err := cg.AddBranch(v, [][]int{{succs[0]}, {succs[1]}}, []float64{pTake, 1 - pTake}); err != nil {
					return err
				}
				branches++
			}
		}
		if branches == 0 {
			return fmt.Errorf("no branch sites found in the pipeline")
		}
		res, err := condgraph.MonteCarlo(cg, delta, 300, 17)
		if err != nil {
			return err
		}
		if res.StaticMeanCmax > float64(res.StaticFullCmax)+1e-9 {
			return fmt.Errorf("scenario execution exceeded the full-schedule makespan")
		}
		gap := res.StaticMeanCmax / res.DynamicMeanCmax
		fmt.Fprintf(w, "%-8.2f %9.1f%% %12.1f %12.1f %12.4f %10d\n",
			pTake, 100*res.MeanActive, res.StaticMeanCmax, res.DynamicMeanCmax, gap, res.StaticFullMmax)
	}
	fmt.Fprintf(w, "\nstatic-conservative keeps the unconditional guarantee (its full-graph Mmax bounds every\n")
	fmt.Fprintf(w, "scenario); clairvoyance buys a modest makespan factor — the price of branch uncertainty\n")
	return nil
}

func runExt4(w io.Writer) error {
	rng := rand.New(rand.NewSource(33))
	const delta = 3.0
	fmt.Fprintf(w, "online RLS with release dates vs clairvoyant offline RLS; memory cap delta=%.0f*LB\n\n", delta)
	fmt.Fprintf(w, "%-10s %10s %12s %12s %10s\n", "spread", "maxR", "online Cmax", "offline Cmax", "ratio")
	accRatio := stats.NewAcc(false)
	for _, releaseSpread := range []int64{0, 100, 1000} {
		for seed := 0; seed < 4; seed++ {
			in := gen.Uniform(80, 8, rng.Int63())
			lb := bounds.MemLB(in.S(), in.M)
			cap := model.Mem(delta * float64(lb))
			tasks := make([]sim.OnlineTask, in.N())
			var work, maxP model.Time
			for i, task := range in.Tasks {
				rel := model.Time(0)
				if releaseSpread > 0 {
					rel = rng.Int63n(releaseSpread)
				}
				tasks[i] = sim.OnlineTask{P: task.P, S: task.S, Release: rel}
				work += task.P
				if task.P > maxP {
					maxP = task.P
				}
			}
			on, err := sim.OnlineRLS(tasks, in.M, cap)
			if err != nil {
				return err
			}
			if on.Mmax > cap {
				return fmt.Errorf("online run broke the memory cap")
			}
			bound := float64(on.MaxRelease) +
				float64(work)*(delta-1)/(float64(in.M)*(delta-2)) +
				float64(maxP)
			if float64(on.Cmax) > bound+1e-9 {
				return fmt.Errorf("online Cmax %d exceeded the competitive envelope %.1f", on.Cmax, bound)
			}
			off, err := core.RLSIndependent(in, delta, core.TieSPT)
			if err != nil {
				return err
			}
			ratio := float64(on.Cmax) / float64(off.Cmax)
			accRatio.Add(ratio)
			fmt.Fprintf(w, "%-10d %10d %12d %12d %10.4f\n",
				releaseSpread, on.MaxRelease, on.Cmax, off.Cmax, ratio)
		}
	}
	fmt.Fprintf(w, "\nonline/offline Cmax ratio: mean %.4f, max %.4f — release-date uncertainty costs little\n",
		accRatio.Mean(), accRatio.Max())
	fmt.Fprintf(w, "until releases dominate the horizon, and the storage cap holds throughout\n")
	return nil
}

package exp

import (
	"fmt"
	"io"

	"storagesched/internal/gantt"
	"storagesched/internal/hardness"
	"storagesched/internal/model"
	"storagesched/internal/pareto"
	"storagesched/internal/textplot"
)

// figScale keeps the ε-instances exact but the enumeration instant.
const figScale = int64(1) << 12

func init() {
	register(Experiment{
		ID:    "FIG1",
		Title: "Figure 1 — the two Pareto-optimal schedules of the Section 4.1 instance",
		Paper: "m=2, p=(1,1/2,1/2), s=(eps,1,1): front {(1,2), (3/2,1+eps)}; (2,2+eps) dominated",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "FIG2",
		Title: "Figure 2 — the three Pareto-optimal schedules of the Section 4.3 instance",
		Paper: "m=2, p=(1,eps,1-eps), s=(eps,1,1-eps): front {(1,2-eps), (1+eps,1+eps), (2-eps,1)}",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "FIG3",
		Title: "Figure 3 — impossibility domain for m=2..6 and the SBO tradeoff curve",
		Paper: "no algorithm beats the Lemma 2/3 frontier; the dashed (1+d, 1+1/d) curve is achievable",
		Run:   runFig3,
	})
}

func runFig1(w io.Writer) error {
	in := hardness.Lemma1Instance(figScale)
	pts, err := pareto.Front(in)
	if err != nil {
		return err
	}
	want := hardness.Lemma1Front(figScale)
	fmt.Fprintf(w, "instance: scale=%d (eps = 1/scale)\n", figScale)
	printFrontComparison(w, pareto.Values(pts), want, figScale)
	if !pareto.SameFront(pareto.Values(pts), want) {
		return fmt.Errorf("enumerated front differs from the paper's Figure 1 front")
	}
	for i, p := range pts {
		fmt.Fprintf(w, "\nPareto schedule %d — value (%.4f, %.4f) in units of the optimum:\n",
			i+1, float64(p.Value.Cmax)/float64(figScale), float64(p.Value.Mmax)/float64(figScale))
		if err := gantt.RenderAssignment(w, in, p.Assignment, gantt.Options{Width: 48, ShowMemory: true}); err != nil {
			return err
		}
	}
	return nil
}

func runFig2(w io.Writer) error {
	eps := figScale / 8
	in := hardness.Lemma3Instance(figScale, eps)
	pts, err := pareto.Front(in)
	if err != nil {
		return err
	}
	want := hardness.Lemma3Front(figScale, eps)
	fmt.Fprintf(w, "instance: scale=%d, eps=%d (eps = 1/8)\n", figScale, eps)
	printFrontComparison(w, pareto.Values(pts), want, figScale)
	if !pareto.SameFront(pareto.Values(pts), want) {
		return fmt.Errorf("enumerated front differs from the paper's Figure 2 front")
	}
	for i, p := range pts {
		fmt.Fprintf(w, "\nPareto schedule %d:\n", i+1)
		if err := gantt.RenderAssignment(w, in, p.Assignment, gantt.Options{Width: 48, ShowMemory: true}); err != nil {
			return err
		}
	}
	return nil
}

func printFrontComparison(w io.Writer, got, want []model.Value, scale int64) {
	fmt.Fprintf(w, "%-28s %-28s\n", "enumerated (Cmax, Mmax)", "paper closed form")
	n := len(got)
	if len(want) > n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		g, p := "-", "-"
		if i < len(got) {
			g = fmt.Sprintf("(%.4f, %.4f)", float64(got[i].Cmax)/float64(scale), float64(got[i].Mmax)/float64(scale))
		}
		if i < len(want) {
			p = fmt.Sprintf("(%.4f, %.4f)", float64(want[i].Cmax)/float64(scale), float64(want[i].Mmax)/float64(scale))
		}
		fmt.Fprintf(w, "%-28s %-28s\n", g, p)
	}
}

func runFig3(w io.Writer) error {
	const kMax = 64
	plot := textplot.New(72, 24, 1, 4, 1, 3)
	markers := map[int]rune{2: '2', 3: '3', 4: '4', 5: '5', 6: '6'}
	for m := 2; m <= 6; m++ {
		env := hardness.FrontierEnvelope(m, 300)
		var xs, ys []float64
		for _, p := range env {
			xs = append(xs, p.Rc)
			ys = append(ys, p.Rm)
			sp := hardness.SwapRatio(p)
			xs = append(xs, sp.Rc)
			ys = append(ys, sp.Rm)
		}
		plot.Add(textplot.Series{
			Name:   fmt.Sprintf("Lemma 2 frontier, m=%d (and symmetric)", m),
			Marker: markers[m],
			X:      xs, Y: ys,
		})
	}
	l3 := hardness.Lemma3Point()
	plot.Add(textplot.Series{Name: "Lemma 3 point (3/2,3/2), m=2", Marker: 'L', X: []float64{l3.Rc}, Y: []float64{l3.Rm}})

	curve := hardness.SBOCurve(0.05, 20, 400)
	var cx, cy []float64
	for _, p := range curve {
		cx = append(cx, p.Rc)
		cy = append(cy, p.Rm)
	}
	plot.Add(textplot.Series{Name: "SBO curve (1+d, 1+1/d) — achievable (dashed in the paper)", Marker: '*', X: cx, Y: cy})
	if err := plot.Render(w); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nLemma 2 corner points (k=4):\n")
	for m := 2; m <= 6; m++ {
		fmt.Fprintf(w, "  m=%d:", m)
		for _, p := range hardness.Lemma2FrontierPoints(m, 4) {
			fmt.Fprintf(w, " (%.3f,%.3f)", p.Rc, p.Rm)
		}
		fmt.Fprintln(w)
	}

	// Consistency check: the achievable SBO curve never enters the
	// impossibility domain, for any m.
	for m := 2; m <= 6; m++ {
		for _, p := range curve {
			if hardness.Impossible(p, m, kMax) {
				return fmt.Errorf("SBO point (%.4f, %.4f) lies inside the impossible domain for m=%d", p.Rc, p.Rm, m)
			}
		}
	}
	// And spot-check that the domain is non-trivial: (1, 1.9) and
	// (1.45, 1.45) must be impossible (Lemmas 1 and 3).
	if !hardness.Impossible(hardness.RatioPoint{Rc: 1, Rm: 1.9}, 2, kMax) {
		return fmt.Errorf("(1,1.9) not recognised impossible (Lemma 1)")
	}
	if !hardness.Impossible(hardness.RatioPoint{Rc: 1.45, Rm: 1.45}, 2, kMax) {
		return fmt.Errorf("(1.45,1.45) not recognised impossible (Lemma 3)")
	}
	return nil
}

package exp

import (
	"context"
	"fmt"
	"io"

	"storagesched/internal/engine"
	"storagesched/internal/gen"
	"storagesched/internal/model"
	"storagesched/internal/pareto"
)

func init() {
	register(Experiment{
		ID:    "SWEEP",
		Title: "Approximate Pareto fronts — batched δ-sweep of SBO and RLS",
		Paper: "the (1+d, 1+1/d) family swept over d; non-dominated hull vs the exact front where enumerable",
		Run:   runSweep,
	})
}

func runSweep(w io.Writer) error {
	ctx := context.Background()
	grid, err := engine.GeometricGrid(0.125, 16, 32)
	if err != nil {
		return err
	}

	// One batch sweeps the four enumerable instances and the large one
	// through a single shared worker pool, streaming each front out in
	// instance order.
	smallSeeds := []int64{31, 32, 33, 34}
	ins := make([]*model.Instance, 0, len(smallSeeds)+1)
	exacts := make([][]pareto.Point, len(smallSeeds))
	for i, seed := range smallSeeds {
		in := gen.Uniform(10, 3, seed)
		exact, err := pareto.Front(in)
		if err != nil {
			return err
		}
		ins = append(ins, in)
		exacts[i] = exact
	}
	large := gen.EmbeddedCode(200, 16, 99)
	ins = append(ins, large)

	// Small instances: the swept front must never claim a point below
	// the exact front, and should cover a good share of it.
	fmt.Fprintf(w, "small instances (n=10, m=3): swept front vs exact enumeration, one batch with the large instance\n\n")
	fmt.Fprintf(w, "%-6s %-8s %-8s %-10s\n", "seed", "exact", "swept", "matched")

	err = engine.SweepBatch(ctx, engine.BatchOf(ins...),
		batchConfig(engine.Config{Deltas: grid}),
		func(br engine.BatchResult) error {
			if br.Err != nil {
				return br.Err
			}
			res := br.Result
			if br.Index < len(smallSeeds) {
				seed := smallSeeds[br.Index]
				exact := exacts[br.Index]
				matched := 0
				for _, p := range res.Front {
					// Dominated by the exact front is fine
					// (approximation); below it would mean a
					// miscounted objective.
					covered, onFront := false, false
					for _, q := range exact {
						if q.Value == p.Value {
							onFront = true
						}
						if q.Value.WeaklyDominates(p.Value) {
							covered = true
						}
					}
					if !covered {
						return fmt.Errorf("seed %d: swept point %v below the exact front", seed, p.Value)
					}
					if onFront {
						matched++
					}
				}
				fmt.Fprintf(w, "%-6d %-8d %-8d %-10d\n", seed, len(exact), len(res.Front), matched)
				return nil
			}

			// Large instance: far beyond the enumerator's reach; report
			// the front with provenance and check internal
			// non-domination.
			fmt.Fprintf(w, "\nlarge instance (n=200, m=16): %d runs -> %d front points (Cmax LB=%d, Mmax LB=%d)\n\n",
				len(res.Runs), len(res.Front), res.Bounds.CmaxLB, res.Bounds.MmaxLB)
			fmt.Fprintf(w, "%-10s %-10s %-9s %-9s %s\n", "Cmax", "Mmax", "Cmax/LB", "Mmax/LB", "witness")
			for i, p := range res.Front {
				if i > 0 {
					prev := res.Front[i-1].Value
					if p.Value.Cmax <= prev.Cmax || p.Value.Mmax >= prev.Mmax {
						return fmt.Errorf("front not non-dominated at %d: %v after %v", i, p.Value, prev)
					}
				}
				fmt.Fprintf(w, "%-10d %-10d %-9.4f %-9.4f %s\n",
					p.Value.Cmax, p.Value.Mmax,
					float64(p.Value.Cmax)/float64(res.Bounds.CmaxLB),
					float64(p.Value.Mmax)/float64(res.Bounds.MmaxLB),
					res.Runs[p.RunIndex].Label())
			}
			return nil
		})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nshape: walking the front trades Cmax for Mmax exactly as the (1+d, 1+1/d) family predicts\n")
	return nil
}

// Package exp defines the reproduction experiments: one named,
// self-checking experiment per figure and per quantitative claim of
// the paper (see DESIGN.md §4 for the index). Every experiment writes
// a human-readable report — the same rows/series the paper presents —
// and returns a non-nil error if a paper-claimed bound is violated, so
// the whole reproduction is enforceable by tests and CI.
package exp

import (
	"fmt"
	"io"
	"sort"

	"storagesched/internal/engine"
)

// Experiment is one reproducible unit: a figure, lemma, corollary or
// ablation.
type Experiment struct {
	// ID is the DESIGN.md identifier (FIG1, PROP12, ...).
	ID string
	// Title is a one-line description.
	Title string
	// Paper states what the paper claims or depicts.
	Paper string
	// Run writes the report and self-checks the claims.
	Run func(w io.Writer) error
}

// sweepWorkers overrides the worker count of engine-backed
// experiments; 0 keeps the engine default (one worker per CPU).
var sweepWorkers int

// SetSweepWorkers sets the worker count used by the engine-backed
// experiments (cmd/experiments exposes it as -workers). n <= 0
// restores the default.
func SetSweepWorkers(n int) {
	if n < 0 {
		n = 0
	}
	sweepWorkers = n
}

// sweepPending overrides the batch in-flight window of engine-backed
// experiments; 0 keeps the engine default (2× the worker count).
var sweepPending int

// SetSweepPending sets the maximum number of in-flight instances used
// by the batch-backed experiments (cmd/experiments exposes it as
// -pending). n <= 0 restores the default.
func SetSweepPending(n int) {
	if n < 0 {
		n = 0
	}
	sweepPending = n
}

// batchConfig wraps a per-instance sweep config with the experiment
// overrides for the shared pool and streaming window.
func batchConfig(cfg engine.Config) engine.BatchConfig {
	cfg.Workers = sweepWorkers
	return engine.BatchConfig{Config: cfg, MaxPending: sweepPending}
}

// registry is populated by the per-file init functions.
var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// Registry returns all experiments sorted by ID.
func Registry() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment by its identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in ID order, writing each report to
// w, and returns the first claim violation (after running everything).
func RunAll(w io.Writer) error {
	var firstErr error
	for _, e := range Registry() {
		fmt.Fprintf(w, "==== %s — %s ====\n", e.ID, e.Title)
		fmt.Fprintf(w, "paper: %s\n\n", e.Paper)
		if err := e.Run(w); err != nil {
			fmt.Fprintf(w, "CLAIM CHECK FAILED: %v\n", err)
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", e.ID, err)
			}
		} else {
			fmt.Fprintf(w, "claim check: OK\n")
		}
		fmt.Fprintln(w)
	}
	return firstErr
}

// ratioRow formats a measured-vs-bound row and reports violation.
func ratioRow(w io.Writer, label string, measured, bound float64) bool {
	status := "ok"
	viol := measured > bound+1e-6
	if viol {
		status = "VIOLATED"
	}
	fmt.Fprintf(w, "%-34s measured=%8.4f  bound=%8.4f  [%s]\n", label, measured, bound, status)
	return viol
}

package exp

import (
	"context"
	"fmt"
	"io"

	"storagesched/internal/cache"
	"storagesched/internal/dag"
	"storagesched/internal/engine"
	"storagesched/internal/gen"
	"storagesched/internal/model"
	"storagesched/internal/refine"
)

func init() {
	register(Experiment{
		ID:    "ADAPTIVE",
		Title: "Adaptive δ-grid refinement — front quality per run versus fixed grids",
		Paper: "the (1+δ, 1+1/δ) trade-off bends sharply near the storage-constraint boundary; refining δ only where the swept front bends must match or beat a fixed geometric grid of at least the same total run budget on the front's largest relative gap, while coarse cache entries stay reusable",
		Run:   runAdaptive,
	})
}

// adaptiveItem is one workload row: an instance or graph with the
// label the report prints.
type adaptiveItem struct {
	label string
	in    *model.Instance
	g     *dag.Graph
}

// adaptiveWorkload draws the experiment families: large instances
// whose fronts have resolvable bends, and fork-join DAGs exercising
// the RLS-only (δ ≥ 2) refinement path via a per-item override.
func adaptiveWorkload() []adaptiveItem {
	var items []adaptiveItem
	for _, seed := range []int64{1, 3, 4, 6} {
		items = append(items, adaptiveItem{
			label: fmt.Sprintf("uniform(200,16,s%d)", seed),
			in:    gen.Uniform(200, 16, seed),
		})
	}
	for _, seed := range []int64{1, 2, 3} {
		items = append(items, adaptiveItem{
			label: fmt.Sprintf("embedded(200,16,s%d)", seed),
			in:    gen.EmbeddedCode(200, 16, seed),
		})
	}
	for _, seed := range []int64{1, 2} {
		items = append(items, adaptiveItem{
			label: fmt.Sprintf("forkjoin(8,6,10,s%d)", seed),
			g:     gen.ForkJoin(8, 6, 10, seed),
		})
	}
	return items
}

func runAdaptive(w io.Writer) error {
	ctx := context.Background()
	// A deliberately wide, deliberately coarse base grid: most of
	// [1/16, 256] is plateau, which is exactly the regime where a
	// fixed grid wastes runs and refinement concentrates them.
	coarseGrid, err := engine.GeometricGrid(0.0625, 256, 6)
	if err != nil {
		return err
	}
	graphGrid, err := engine.GeometricGrid(2, 64, 5)
	if err != nil {
		return err
	}
	graphOverride := engine.Config{Deltas: graphGrid}
	rcfg := refine.Config{Gap: 0.05, MaxPoints: 12}

	items := adaptiveWorkload()
	batch := make([]engine.BatchItem, len(items))
	for i, it := range items {
		batch[i] = engine.BatchItem{Instance: it.in, Graph: it.g}
		if it.g != nil {
			batch[i].Override = &graphOverride
		}
	}
	seq := engine.BatchOfItems(batch...)

	c, err := cache.New(cache.Config{})
	if err != nil {
		return err
	}
	cfg := batchConfig(engine.Config{Deltas: coarseGrid})
	cfg.Cache = c

	// Round A — the fixed coarse grid, as a plain production batch
	// would run it. Populates the cache.
	coarse := make([]*engine.Result, len(items))
	if err := engine.SweepBatch(ctx, seq, cfg, func(br engine.BatchResult) error {
		if br.Err != nil {
			return fmt.Errorf("coarse item %d: %w", br.Index, br.Err)
		}
		coarse[br.Index] = br.Result
		return nil
	}); err != nil {
		return err
	}
	warm := c.Stats()

	// Round B — the adaptive pipeline over the same items and cache.
	// Its coarse pass must be served from the entries round A wrote:
	// refinement landing must not cost the coarse sweeps again.
	merged := make([]*engine.Result, len(items))
	if err := refine.SweepBatchAdaptive(ctx, seq, cfg, rcfg, func(br engine.BatchResult) error {
		if br.Err != nil {
			return fmt.Errorf("adaptive item %d: %w", br.Index, br.Err)
		}
		merged[br.Index] = br.Result
		return nil
	}); err != nil {
		return err
	}
	afterB := c.Stats()
	if got := afterB.Hits - warm.Hits; got < int64(len(items)) {
		return fmt.Errorf("adaptive coarse pass hit %d warm cache entries, want at least %d", got, len(items))
	}

	// Round C — adaptive again: both passes warm, every item a hit.
	if err := refine.SweepBatchAdaptive(ctx, seq, cfg, rcfg, func(br engine.BatchResult) error {
		if br.Err != nil {
			return fmt.Errorf("warm adaptive item %d: %w", br.Index, br.Err)
		}
		if !br.CacheHit {
			return fmt.Errorf("warm adaptive item %d missed the cache", br.Index)
		}
		return nil
	}); err != nil {
		return err
	}
	afterC := c.Stats()
	if afterC.Misses != afterB.Misses {
		return fmt.Errorf("fully warm adaptive round missed %d entries", afterC.Misses-afterB.Misses)
	}

	fmt.Fprintf(w, "workload: %d items, coarse grid %d points over [%g, %g] (graphs: %d over [%g, %g])\n",
		len(items), len(coarseGrid), coarseGrid[0], coarseGrid[len(coarseGrid)-1],
		len(graphGrid), graphGrid[0], graphGrid[len(graphGrid)-1])
	fmt.Fprintf(w, "refine: gap threshold %.2f, max %d points per item\n\n", rcfg.Gap, rcfg.MaxPoints)
	fmt.Fprintf(w, "%-22s %5s %7s | %5s %7s | %5s %7s  %s\n",
		"item", "runs", "gap", "runs", "gap", "runs", "gap", "verdict")
	fmt.Fprintf(w, "%-22s %13s | %13s | %13s\n", "", "coarse", "adaptive", "fixed(equal+)")

	// Per item: a fixed geometric grid over the same δ-range with at
	// least the adaptive run budget is the equal-budget baseline the
	// claim is against.
	var violations int
	var refinedItems int
	var sumAdaptive, sumFixed float64
	for i, it := range items {
		lo, hi, basePts := coarseGrid[0], coarseGrid[len(coarseGrid)-1], len(coarseGrid)
		if it.g != nil {
			lo, hi, basePts = graphGrid[0], graphGrid[len(graphGrid)-1], len(graphGrid)
		}
		// Size the baseline grid arithmetically — one SBO run per point
		// (instances only) plus the tie-break family at every δ ≥ 2 —
		// so each item is swept exactly once, at the first point count
		// whose run budget reaches the adaptive one.
		runsFor := func(grid []float64) int {
			runs := 0
			for _, d := range grid {
				if it.g == nil {
					runs++
				}
				if d >= 2 {
					runs += len(engine.DefaultTies)
				}
			}
			return runs
		}
		pts := basePts
		var fixedGrid []float64
		for {
			pts++
			fixedGrid, err = engine.GeometricGrid(lo, hi, pts)
			if err != nil {
				return err
			}
			if runsFor(fixedGrid) >= len(merged[i].Runs) {
				break
			}
		}
		var fixed *engine.Result
		fcfg := engine.Config{Deltas: fixedGrid, Workers: sweepWorkers}
		if it.g != nil {
			fixed, err = engine.SweepGraph(ctx, it.g, fcfg)
		} else {
			fixed, err = engine.Sweep(ctx, it.in, fcfg)
		}
		if err != nil {
			return err
		}
		if len(merged[i].Runs) > len(coarse[i].Runs) {
			refinedItems++
		}
		aGap := refine.MaxRelGap(merged[i].Front)
		fGap := refine.MaxRelGap(fixed.Front)
		sumAdaptive += aGap
		sumFixed += fGap
		verdict := "ok"
		if aGap > fGap+1e-9 {
			verdict = "VIOLATED"
			violations++
		}
		fmt.Fprintf(w, "%-22s %5d %7.4f | %5d %7.4f | %5d %7.4f  [%s]\n",
			it.label, len(coarse[i].Runs), refine.MaxRelGap(coarse[i].Front),
			len(merged[i].Runs), aGap, len(fixed.Runs), fGap, verdict)

		// Refinement may only improve: the merged front must pointwise
		// weakly dominate the coarse one.
		for _, cp := range coarse[i].Front {
			dominated := false
			for _, mp := range merged[i].Front {
				if mp.Value.WeaklyDominates(cp.Value) {
					dominated = true
					break
				}
			}
			if !dominated {
				return fmt.Errorf("%s: coarse front point %v not dominated by the adaptive front", it.label, cp.Value)
			}
		}
	}
	fmt.Fprintf(w, "\nmean largest relative gap: adaptive %.4f, equal-budget fixed %.4f\n",
		sumAdaptive/float64(len(items)), sumFixed/float64(len(items)))
	fmt.Fprintf(w, "refined items: %d/%d; warm coarse entries reused by the adaptive pass: yes\n",
		refinedItems, len(items))
	if refinedItems == 0 {
		return fmt.Errorf("no item planned any refinement; the workload must exercise the second pass")
	}
	if violations > 0 {
		return fmt.Errorf("%d of %d items: adaptive front's largest gap worse than the equal-budget fixed grid", violations, len(items))
	}
	return nil
}

package exp

import (
	"context"
	"fmt"
	"io"

	"storagesched/internal/core"
	"storagesched/internal/dag"
	"storagesched/internal/engine"
	"storagesched/internal/gen"
	"storagesched/internal/model"
)

func init() {
	register(Experiment{
		ID:    "DAGSWEEP",
		Title: "Approximate Pareto fronts on task DAGs — batched δ-sweep of RLS",
		Paper: "the (Lemma 5, d) family swept over d on precedence-constrained graphs; fronts streamed alongside independent instances",
		Run:   runDAGSweep,
	})
}

func runDAGSweep(w io.Writer) error {
	deltas := []float64{2.5, 3, 4, 6, 10}
	seeds := []int64{1, 2}
	const n, m = 60, 6

	// One batch mixes every (family, seed) DAG with an independent
	// instance: graph jobs and SBO/RLS instance jobs interleave in the
	// same worker pool, and fronts stream back in item order.
	type itemInfo struct {
		label string
		g     *dag.Graph
	}
	var items []engine.BatchItem
	for _, fam := range gen.DAGFamilies() {
		for _, seed := range seeds {
			g := fam.Gen(m, n, seed)
			items = append(items, engine.BatchItem{
				Graph: g,
				Tag:   itemInfo{label: fmt.Sprintf("%s/%d", fam.Name, seed), g: g},
			})
		}
	}
	items = append(items, engine.BatchItem{
		Instance: gen.Uniform(n, m, 7),
		Tag:      itemInfo{label: "independent/7"},
	})

	fmt.Fprintf(w, "DAG families x %d seeds (~%d nodes, m=%d) plus one independent instance, one shared pool\n\n",
		len(seeds), n, m)
	fmt.Fprintf(w, "%-12s %6s %6s  %6s  %10s %10s  %9s %7s\n",
		"item", "nodes", "edges", "runs", "front", "Cmax/LB*", "Mmax<=cap", "marked")

	violated := false
	err := engine.SweepBatch(context.Background(),
		func(yield func(engine.BatchItem) bool) {
			for _, it := range items {
				if !yield(it) {
					return
				}
			}
		},
		batchConfig(engine.Config{Deltas: deltas}),
		func(br engine.BatchResult) error {
			if br.Err != nil {
				return br.Err
			}
			info := br.Tag.(itemInfo)
			res := br.Result

			// The front must be strictly improving in both objectives.
			for i := 1; i < len(res.Front); i++ {
				prev, cur := res.Front[i-1].Value, res.Front[i].Value
				if cur.Cmax <= prev.Cmax || cur.Mmax >= prev.Mmax {
					return fmt.Errorf("%s: front not non-dominated at %d: %v after %v", info.label, i, prev, cur)
				}
			}

			if info.g == nil {
				// The independent rider: SBO runs must be present — the
				// mixed stream really carries both job kinds.
				sbo := 0
				for _, r := range res.Runs {
					if r.Algorithm == engine.AlgSBO {
						sbo++
					}
				}
				if sbo == 0 {
					return fmt.Errorf("%s: no SBO runs in the mixed batch", info.label)
				}
				fmt.Fprintf(w, "%-12s %6d %6s  %6d  %10d %10s  %9s %7s\n",
					info.label, n, "-", len(res.Runs), len(res.Front), "-", "-", "-")
				return nil
			}

			g := info.g
			worstC := 0.0
			okMem := true
			maxMarked := 0
			for _, r := range res.Runs {
				if r.Err != nil {
					return fmt.Errorf("%s %s: %w", info.label, r.Label(), r.Err)
				}
				// Corollary 2: the achieved memory respects ⌊δ·LB⌋.
				if r.RLS.Mmax > r.RLS.Cap {
					okMem = false
				}
				// Lemma 4: marked processors never exceed ⌊m/(δ−1)⌋.
				if mc := r.RLS.MarkedCount(); mc > int(float64(m)/(r.Delta-1)) {
					return fmt.Errorf("%s %s: %d marked processors exceed floor(m/(d-1))", info.label, r.Label(), r.RLS.MarkedCount())
				} else if mc > maxMarked {
					maxMarked = mc
				}
				// Lemma 5 for δ > 2 against the critical-path-aware LB.
				ratio := float64(r.Value.Cmax) / float64(res.Bounds.CmaxLB)
				if ratio > worstC {
					worstC = ratio
				}
				if bound := core.RLSCmaxRatio(r.Delta, m); r.Delta > 2 && ratio > bound+1e-9 {
					return fmt.Errorf("%s %s: Cmax ratio %.4f exceeds Lemma 5 bound %.4f", info.label, r.Label(), ratio, bound)
				}
				if err := r.RLS.Schedule.Validate(g.PredLists()); err != nil {
					return fmt.Errorf("%s %s: schedule violates precedence: %w", info.label, r.Label(), err)
				}
			}

			// The engine's memoized path must agree with a standalone
			// core.RLS run at the same grid point (spot-check the first
			// and last runs to keep the experiment fast).
			for _, idx := range []int{0, len(res.Runs) - 1} {
				r := res.Runs[idx]
				direct, err := core.RLS(g, r.Delta, r.Tie)
				if err != nil {
					return err
				}
				if r.Value != (model.Value{Cmax: direct.Cmax, Mmax: direct.Mmax}) {
					return fmt.Errorf("%s %s: engine %v, direct RLS (%d,%d)",
						info.label, r.Label(), r.Value, direct.Cmax, direct.Mmax)
				}
			}

			status := ""
			if !okMem {
				status = "  VIOLATED"
				violated = true
			}
			fmt.Fprintf(w, "%-12s %6d %6d  %6d  %10d %10.4f  %9v %7d%s\n",
				info.label, g.N(), g.NumEdges(), len(res.Runs), len(res.Front), worstC, okMem, maxMarked, status)
			return nil
		})
	if err != nil {
		return err
	}
	if violated {
		return fmt.Errorf("a Corollary 2 memory cap was exceeded")
	}
	fmt.Fprintf(w, "\nshape: larger d buys makespan (toward the Lemma 5 floor) at the cost of d*LB memory, per family\n")
	return nil
}

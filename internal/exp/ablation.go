package exp

import (
	"context"
	"fmt"
	"io"

	"storagesched/internal/bounds"
	"storagesched/internal/core"
	"storagesched/internal/engine"
	"storagesched/internal/gen"
	"storagesched/internal/makespan"
	"storagesched/internal/model"
	"storagesched/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "ABL1",
		Title: "Ablation — RLS tie-break order (the paper's 'arbitrary total ordering')",
		Paper: "any total order preserves the guarantees; orders differ only in constants",
		Run:   runAbl1,
	})
	register(Experiment{
		ID:    "ABL2",
		Title: "Ablation — SBO sub-algorithm pairs (rho1, rho2)",
		Paper: "Properties 1-2 scale with the sub-algorithm ratios; better rho gives better absolute values",
		Run:   runAbl2,
	})
	register(Experiment{
		ID:    "ABL3",
		Title: "Ablation — SBO threshold rule vs whole-schedule baselines",
		Paper: "the per-task threshold beats taking either sub-schedule wholesale on the combined objective",
		Run:   runAbl3,
	})
}

func runAbl1(w io.Writer) error {
	ties := []core.TieBreak{core.TieByID, core.TieSPT, core.TieLPT, core.TieBottomLevel}
	const n, m, delta = 120, 8, 3.0
	seeds := []int64{1, 2, 3, 4, 5}
	fmt.Fprintf(w, "RLS delta=%.1f on DAG families, ~%d nodes, m=%d; mean Cmax/LBc per tie-break\n\n", delta, n, m)
	fmt.Fprintf(w, "%-10s", "family")
	for _, tb := range ties {
		fmt.Fprintf(w, " %10s", tb)
	}
	fmt.Fprintln(w)
	for _, fam := range gen.DAGFamilies() {
		fmt.Fprintf(w, "%-10s", fam.Name)
		for _, tb := range ties {
			acc := stats.NewAcc(false)
			for _, seed := range seeds {
				g := fam.Gen(m, n, seed)
				res, err := core.RLS(g, delta, tb)
				if err != nil {
					return err
				}
				rec, err := bounds.ForGraph(g)
				if err != nil {
					return err
				}
				ratio := float64(res.Cmax) / float64(rec.CmaxLB)
				if ratio > core.RLSCmaxRatio(delta, m)+1e-9 {
					return fmt.Errorf("tie-break %v broke the Corollary 3 bound on %s", tb, fam.Name)
				}
				acc.Add(ratio)
			}
			fmt.Fprintf(w, " %10.4f", acc.Mean())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nall orders stay within the Corollary 3 bound; bottom-level is typically best on deep graphs\n")
	return nil
}

func runAbl2(w io.Writer) error {
	pairs := []struct {
		name string
		alg  makespan.Algorithm
	}{
		{"LS", makespan.ListScheduling{}},
		{"LPT", makespan.LPT{}},
		{"Multifit", makespan.Multifit{}},
	}
	const n, m, delta = 200, 8, 1.0
	seeds := []int64{1, 2, 3, 4, 5, 6}
	fmt.Fprintf(w, "SBO delta=%.0f with each sub-algorithm pair, n=%d m=%d; mean achieved ratios vs lower bounds\n\n", delta, n, m)
	fmt.Fprintf(w, "%-10s %12s %12s %16s\n", "pair", "Cmax/LBc", "Mmax/LBm", "guarantee (2rho)")

	// All pair × seed evaluations run as one batch: each item carries a
	// per-instance Config override selecting its sub-algorithm pair, so
	// the whole ablation shares one worker pool. Items are pair-major,
	// and results stream back in that order.
	items := make([]engine.BatchItem, 0, len(pairs)*len(seeds))
	for _, pr := range pairs {
		cfg := &engine.Config{Deltas: []float64{delta}, AlgC: pr.alg, AlgM: pr.alg, SkipRLS: true}
		for _, seed := range seeds {
			items = append(items, engine.BatchItem{
				Instance: gen.Anticorrelated(n, m, seed),
				Override: cfg,
			})
		}
	}
	seq := func(yield func(engine.BatchItem) bool) {
		for _, it := range items {
			if !yield(it) {
				return
			}
		}
	}
	accC := make([]*stats.Acc, len(pairs))
	accM := make([]*stats.Acc, len(pairs))
	for i := range pairs {
		accC[i] = stats.NewAcc(false)
		accM[i] = stats.NewAcc(false)
	}
	err := engine.SweepBatch(context.Background(), seq, batchConfig(engine.Config{}),
		func(br engine.BatchResult) error {
			if br.Err != nil {
				return br.Err
			}
			pr := pairs[br.Index/len(seeds)]
			run := br.Result.Runs[0]
			if run.Err != nil {
				return run.Err
			}
			res := run.SBO
			rec := br.Result.Bounds
			accC[br.Index/len(seeds)].Add(float64(res.Cmax) / float64(rec.CmaxLB))
			accM[br.Index/len(seeds)].Add(float64(res.Mmax) / float64(rec.MmaxLB))
			// Property check relative to the sub-schedules.
			if float64(res.Cmax) > (1+delta)*float64(res.C)+1e-9 {
				return fmt.Errorf("pair %s broke Property 1", pr.name)
			}
			if res.M > 0 && float64(res.Mmax) > (1+1/delta)*float64(res.M)+1e-9 {
				return fmt.Errorf("pair %s broke Property 2", pr.name)
			}
			return nil
		})
	if err != nil {
		return err
	}
	for i, pr := range pairs {
		fmt.Fprintf(w, "%-10s %12.4f %12.4f %16.4f\n",
			pr.name, accC[i].Mean(), accM[i].Mean(), 2*pr.alg.Ratio(m))
	}
	fmt.Fprintf(w, "\ntighter sub-algorithms (LPT, Multifit) shift the whole achieved curve down, as Corollary 1 predicts\n")
	return nil
}

func runAbl3(w io.Writer) error {
	alg := makespan.LPT{}
	const delta = 1.0
	score := func(rec bounds.Record, c, mm float64) float64 {
		a := c / float64(rec.CmaxLB)
		b := mm / float64(rec.MmaxLB)
		if a > b {
			return a
		}
		return b
	}
	evalAll := func(inst *model.Instance, rec bounds.Record, m int) (sbo, pi1, pi2 float64, err error) {
		res, err := core.SBO(inst, delta, alg, alg)
		if err != nil {
			return 0, 0, 0, err
		}
		sbo = score(rec, float64(res.Cmax), float64(res.Mmax))
		a1 := alg.Assign(inst.P(), m)
		pi1 = score(rec, float64(inst.Cmax(a1)), float64(inst.Mmax(a1)))
		a2 := alg.Assign(inst.S(), m)
		pi2 = score(rec, float64(inst.Cmax(a2)), float64(inst.Mmax(a2)))
		return sbo, pi1, pi2, nil
	}

	// Regime 1 — adversarial cross-structured instances (the
	// Section 3.1 intuition): wholesale schedules blow up by ~m.
	fmt.Fprintf(w, "regime 1: adversarial cross instances (m long/memory-light + m short/memory-heavy tasks)\n")
	fmt.Fprintf(w, "score = max(Cmax/LBc, Mmax/LBm)\n\n")
	fmt.Fprintf(w, "%4s %12s %12s %12s\n", "m", "SBO", "pi1 only", "pi2 only")
	for _, m := range []int{4, 8, 16} {
		in := gen.AdversarialCross(m, int64(100*m))
		rec := bounds.ForInstance(in)
		sbo, pi1, pi2, err := evalAll(in, rec, m)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%4d %12.4f %12.4f %12.4f\n", m, sbo, pi1, pi2)
		if sbo >= pi1 || sbo >= pi2 {
			return fmt.Errorf("m=%d: threshold rule (%.3f) did not beat wholesale baselines (%.3f, %.3f)", m, sbo, pi1, pi2)
		}
		if pi1 < float64(m)/2 && pi2 < float64(m)/2 {
			return fmt.Errorf("m=%d: adversarial instance failed to punish wholesale schedules", m)
		}
	}

	// Regime 2 — large i.i.d. anticorrelated mixes: balancing either
	// objective self-averages the other, so all three are close. The
	// threshold must never *break* the guarantees there.
	fmt.Fprintf(w, "\nregime 2: i.i.d. anticorrelated, n=200 m=8 (self-averaging; mean over 8 seeds)\n\n")
	accSBO := stats.NewAcc(false)
	accPi1 := stats.NewAcc(false)
	accPi2 := stats.NewAcc(false)
	for seed := int64(1); seed <= 8; seed++ {
		in := gen.Anticorrelated(200, 8, seed)
		rec := bounds.ForInstance(in)
		sbo, pi1, pi2, err := evalAll(in, rec, 8)
		if err != nil {
			return err
		}
		accSBO.Add(sbo)
		accPi1.Add(pi1)
		accPi2.Add(pi2)
	}
	fmt.Fprintf(w, "%-26s %10.4f\n", "SBO per-task threshold", accSBO.Mean())
	fmt.Fprintf(w, "%-26s %10.4f\n", "pi1 wholesale (time only)", accPi1.Mean())
	fmt.Fprintf(w, "%-26s %10.4f\n", "pi2 wholesale (mem only)", accPi2.Mean())
	if accSBO.Mean() > 2+1e-9 {
		return fmt.Errorf("SBO exceeded its (2,2) envelope on the self-averaging regime")
	}
	fmt.Fprintf(w, "\nfinding: the split is worth ~m on structured mixes and costs a few percent when\n")
	fmt.Fprintf(w, "balancing is self-averaging — the guarantee, not the average case, is what it buys\n")
	return nil
}

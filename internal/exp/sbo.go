package exp

import (
	"context"
	"fmt"
	"io"

	"storagesched/internal/core"
	"storagesched/internal/engine"
	"storagesched/internal/gen"
	"storagesched/internal/hardness"
	"storagesched/internal/makespan"
	"storagesched/internal/model"
	"storagesched/internal/pareto"
	"storagesched/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "PROP12",
		Title: "Properties 1-2 — SBO is ((1+d)r1, (1+1/d)r2)-approximate",
		Paper: "Cmax(pi_d) <= (1+d)*Cmax(pi_1) and Mmax(pi_d) <= (1+1/d)*Mmax(pi_2), all instances",
		Run:   runProp12,
	})
	register(Experiment{
		ID:    "COR1",
		Title: "Corollary 1 — SBO with the PTAS is (1+d+eps, 1+1/d+eps); (2,2) always exists",
		Paper: "with exact optima on small instances: ratios within (1+d)(1+eps) and (1+1/d)(1+eps); d=1 gives (2,2)",
		Run:   runCor1,
	})
	register(Experiment{
		ID:    "LEM12",
		Title: "Lemmas 1-2 — Pareto fronts of the Section 4.1/4.2 family match the closed form",
		Paper: "k+1 Pareto points: (1+i/(km), k+(k-i)(m-1)) for i<k and (1+1/m, k+eps) at i=k",
		Run:   runLem12,
	})
	register(Experiment{
		ID:    "LEM3",
		Title: "Lemma 3 — the Section 4.3 instance has exactly the three stated Pareto points",
		Paper: "front {(1,2-eps), (1+eps,1+eps), (2-eps,1)} for eps < 1/2",
		Run:   runLem3,
	})
}

func runProp12(w io.Writer) error {
	deltas := []float64{0.25, 0.5, 1, 2, 4}
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	const n, m = 200, 16
	violated := false
	fmt.Fprintf(w, "families x deltas, n=%d m=%d, %d seeds, sub-algorithm LPT; worst ratios over seeds\n\n", n, m, len(seeds))
	fmt.Fprintf(w, "%-16s %6s  %10s %10s  %10s %10s\n", "family", "delta", "Cmax/C", "(1+d)", "Mmax/M", "(1+1/d)")
	for _, fam := range gen.Families() {
		// One batch sweep per family streams all seeds through the
		// shared worker pool; the sub-schedules π1/π2 are computed once
		// per instance and the runs come back in grid order, so the
		// table is identical to the old serial loop.
		accC := make([]*stats.Acc, len(deltas))
		accM := make([]*stats.Acc, len(deltas))
		for i := range deltas {
			accC[i] = stats.NewAcc(false)
			accM[i] = stats.NewAcc(false)
		}
		ins := make([]*model.Instance, len(seeds))
		for i, seed := range seeds {
			ins[i] = fam.Gen(n, m, seed)
		}
		err := engine.SweepBatch(context.Background(), engine.BatchOf(ins...),
			batchConfig(engine.Config{
				Deltas:  deltas,
				AlgC:    makespan.LPT{},
				AlgM:    makespan.LPT{},
				SkipRLS: true,
			}),
			func(br engine.BatchResult) error {
				if br.Err != nil {
					return br.Err
				}
				for i, run := range br.Result.Runs {
					if run.Err != nil {
						return run.Err
					}
					if run.Delta != deltas[i] {
						return fmt.Errorf("PROP12: run %d has delta %g, want %g", i, run.Delta, deltas[i])
					}
					accC[i].Add(float64(run.SBO.Cmax) / float64(run.SBO.C))
					if run.SBO.M > 0 {
						accM[i].Add(float64(run.SBO.Mmax) / float64(run.SBO.M))
					}
				}
				return nil
			})
		if err != nil {
			return err
		}
		for i, d := range deltas {
			cb, mb := 1+d, 1+1/d
			okC := accC[i].Max() <= cb+1e-9
			okM := accM[i].Max() <= mb+1e-9
			status := ""
			if !okC || !okM {
				status = "  VIOLATED"
				violated = true
			}
			fmt.Fprintf(w, "%-16s %6.2f  %10.4f %10.4f  %10.4f %10.4f%s\n",
				fam.Name, d, accC[i].Max(), cb, accM[i].Max(), mb, status)
		}
	}
	if violated {
		return fmt.Errorf("a Property 1/2 bound was exceeded")
	}
	fmt.Fprintf(w, "\nshape: the Cmax ratio grows with delta while the Mmax ratio shrinks — the paper's tradeoff\n")
	return nil
}

func runCor1(w io.Writer) error {
	const eps = 0.25
	seeds := []int64{11, 12, 13, 14, 15, 16, 17, 18, 19, 20}
	deltas := []float64{0.5, 1, 2}
	violated := false
	fmt.Fprintf(w, "n=10, m=2..3, exact optima via DP, PTAS eps=%.2f; worst ratios over %d seeds\n\n", eps, len(seeds))
	fmt.Fprintf(w, "%6s  %12s %12s  %12s %12s\n", "delta", "Cmax/C*max", "(1+d)(1+e)", "Mmax/M*max", "(1+1/d)(1+e)")
	for _, d := range deltas {
		accC := stats.NewAcc(false)
		accM := stats.NewAcc(false)
		for _, seed := range seeds {
			in := gen.Uniform(10, 2+int(seed)%2, seed)
			optC, _ := makespan.ExactDP{}.Solve(in.P(), in.M)
			optM, _ := makespan.ExactDP{}.Solve(in.S(), in.M)
			res, err := core.SBOWithPTAS(in, d, eps)
			if err != nil {
				return err
			}
			accC.Add(float64(res.Cmax) / float64(optC))
			if optM > 0 {
				accM.Add(float64(res.Mmax) / float64(optM))
			}
		}
		cb := (1 + d) * (1 + eps)
		mb := (1 + 1/d) * (1 + eps)
		if ratioRowQuiet(w, d, accC.Max(), cb, accM.Max(), mb) {
			violated = true
		}
	}
	if violated {
		return fmt.Errorf("a Corollary 1 bound was exceeded")
	}
	fmt.Fprintf(w, "\nat delta=1 both bounds equal 2(1+eps): the (2,2)-existence remark of Corollary 1\n")
	return nil
}

func ratioRowQuiet(w io.Writer, d, mc, cb, mm, mb float64) bool {
	status := ""
	viol := mc > cb+1e-9 || mm > mb+1e-9
	if viol {
		status = "  VIOLATED"
	}
	fmt.Fprintf(w, "%6.2f  %12.4f %12.4f  %12.4f %12.4f%s\n", d, mc, cb, mm, mb, status)
	return viol
}

func runLem12(w io.Writer) error {
	// Enumerable configurations: n = km+m-1 <= 13.
	enumCases := []struct{ m, k int }{{2, 2}, {2, 3}, {2, 4}, {3, 2}, {4, 2}}
	fmt.Fprintf(w, "enumerated fronts vs closed form (scale chosen per k*m):\n\n")
	for _, c := range enumCases {
		scale := int64(c.k*c.m) * 64
		in := hardness.Lemma2Instance(c.m, c.k, scale)
		pts, err := pareto.Front(in)
		if err != nil {
			return err
		}
		want := hardness.Lemma2Front(c.m, c.k, scale)
		match := pareto.SameFront(pareto.Values(pts), want)
		fmt.Fprintf(w, "m=%d k=%d n=%d: %d front points, closed form %d, match=%v\n",
			c.m, c.k, in.N(), len(pts), len(want), match)
		if !match {
			fmt.Fprintf(w, "  got:  %v\n  want: %v\n", pareto.Values(pts), want)
			return fmt.Errorf("Lemma 2 front mismatch at m=%d k=%d", c.m, c.k)
		}
	}
	fmt.Fprintf(w, "\nclosed-form impossibility corners (larger m, k — Figure 3 inputs):\n")
	for _, m := range []int{2, 4, 6} {
		fmt.Fprintf(w, "  m=%d k=8:", m)
		pts := hardness.Lemma2FrontierPoints(m, 8)
		// print the k=8 slice only (last 9 points).
		for _, p := range pts[len(pts)-9:] {
			fmt.Fprintf(w, " (%.3f,%.3f)", p.Rc, p.Rm)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runLem3(w io.Writer) error {
	scale := int64(1) << 12
	for _, frac := range []int64{8, 4, 3} {
		eps := scale / frac
		in := hardness.Lemma3Instance(scale, eps)
		pts, err := pareto.Front(in)
		if err != nil {
			return err
		}
		want := hardness.Lemma3Front(scale, eps)
		match := pareto.SameFront(pareto.Values(pts), want)
		fmt.Fprintf(w, "eps=1/%d: %d front points, match=%v\n", frac, len(pts), match)
		printFrontComparison(w, pareto.Values(pts), want, scale)
		if !match {
			return fmt.Errorf("Lemma 3 front mismatch at eps=1/%d", frac)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "as eps -> 1/2 the middle point approaches (3/2, 3/2): no algorithm beats (3/2, 3/2)\n")
	return nil
}

package exp

import (
	"context"
	"errors"
	"fmt"
	"io"

	"storagesched/internal/bounds"
	"storagesched/internal/core"
	"storagesched/internal/engine"
	"storagesched/internal/gen"
	"storagesched/internal/model"
	"storagesched/internal/pareto"
	"storagesched/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "COR23",
		Title: "Lemmas 4-5, Corollaries 2-3 — RLS is (2+1/(d-2)-(d-1)/(m(d-2)), d) on DAGs",
		Paper: "Mmax <= d*LB; marked processors <= floor(m/(d-1)); Cmax within the Lemma 5 bound",
		Run:   runCor23,
	})
	register(Experiment{
		ID:    "LEM6",
		Title: "Lemma 6 — SPT on rho*m processors degrades SumCi by at most 1/rho + 1",
		Paper: "SumCi(pi2) <= (1/rho + 1) * SumCi(pi1) for SPT schedules on m and rho*m processors",
		Run:   runLem6,
	})
	register(Experiment{
		ID:    "COR4",
		Title: "Corollary 4 — tri-objective RLS-SPT on independent tasks",
		Paper: "(Cmax, Mmax, SumCi) within (2+1/(d-2)-(d-1)/(m(d-2)), d, 2+1/(d-2))",
		Run:   runCor4,
	})
	register(Experiment{
		ID:    "SEC7",
		Title: "Section 7 — solving 'min Cmax s.t. Mmax <= M' by parameter search",
		Paper: "budget < LB infeasible; budget >= 2LB always solved; quality vs the exact constrained optimum",
		Run:   runSec7,
	})
}

func runCor23(w io.Writer) error {
	deltas := []float64{2.5, 3, 4, 6, 8}
	seeds := []int64{1, 2, 3, 4, 5}
	const n, m = 120, 8
	violated := false
	fmt.Fprintf(w, "DAG families x deltas, ~%d nodes, m=%d, %d seeds, tie-break bottom-level; worst ratios\n\n", n, m, len(seeds))
	fmt.Fprintf(w, "%-10s %6s  %9s %6s  %9s %9s  %7s %7s\n",
		"family", "delta", "Mmax/LB", "d", "Cmax/LBc", "Lemma5", "marked", "floor")
	for _, fam := range gen.DAGFamilies() {
		for _, d := range deltas {
			accM := stats.NewAcc(false)
			accC := stats.NewAcc(false)
			maxMarked := 0
			for _, seed := range seeds {
				g := fam.Gen(m, n, seed)
				res, err := core.RLS(g, d, core.TieBottomLevel)
				if err != nil {
					return err
				}
				rec, err := bounds.ForGraph(g)
				if err != nil {
					return err
				}
				accM.Add(float64(res.Mmax) / float64(rec.MmaxLB))
				cLB := float64(g.TotalWork()) / float64(m)
				if cp := float64(rec.CriticalPath); cp > cLB {
					cLB = cp
				}
				accC.Add(float64(res.Cmax) / cLB)
				if mc := res.MarkedCount(); mc > maxMarked {
					maxMarked = mc
				}
			}
			floorMark := int(float64(m) / (d - 1))
			cBound := core.RLSCmaxRatio(d, m)
			okM := accM.Max() <= d+1e-9
			okC := accC.Max() <= cBound+1e-9
			okK := maxMarked <= floorMark
			status := ""
			if !okM || !okC || !okK {
				status = "  VIOLATED"
				violated = true
			}
			fmt.Fprintf(w, "%-10s %6.2f  %9.4f %6.2f  %9.4f %9.4f  %7d %7d%s\n",
				fam.Name, d, accM.Max(), d, accC.Max(), cBound, maxMarked, floorMark, status)
		}
	}
	if violated {
		return fmt.Errorf("a Corollary 2/3 or Lemma 4 bound was exceeded")
	}
	fmt.Fprintf(w, "\nshape: the Cmax bound falls toward 2-1/m as delta grows; the memory bound rises as delta\n")
	return nil
}

func runLem6(w io.Writer) error {
	const n, m = 100, 12
	seeds := []int64{3, 4, 5, 6}
	violated := false
	fmt.Fprintf(w, "SPT schedules of %d uniform tasks on q vs m=%d processors; worst over %d seeds\n\n", n, m, len(seeds))
	fmt.Fprintf(w, "%4s %8s  %14s %10s\n", "q", "rho", "SumCi(q)/(m)", "1/rho+1")
	for q := 1; q <= m; q++ {
		acc := stats.NewAcc(false)
		for _, seed := range seeds {
			in := gen.Uniform(n, m, seed)
			full := bounds.SumCiSPT(in.P(), m)
			restricted := bounds.SumCiSPT(in.P(), q)
			acc.Add(float64(restricted) / float64(full))
		}
		rho := float64(q) / float64(m)
		bound := 1/rho + 1
		status := ""
		if acc.Max() > bound+1e-9 {
			status = "  VIOLATED"
			violated = true
		}
		fmt.Fprintf(w, "%4d %8.3f  %14.4f %10.4f%s\n", q, rho, acc.Max(), bound, status)
	}
	if violated {
		return fmt.Errorf("a Lemma 6 bound was exceeded")
	}
	return nil
}

func runCor4(w io.Writer) error {
	deltas := []float64{2.5, 3, 4, 6, 8}
	seeds := []int64{1, 2, 3, 4, 5, 6}
	const n, m = 150, 8
	violated := false
	fmt.Fprintf(w, "independent families x deltas, n=%d m=%d, SPT tie-break; worst ratios over %d seeds\n\n", n, m, len(seeds))
	fmt.Fprintf(w, "%-16s %6s  %9s %9s  %9s %6s  %9s %9s\n",
		"family", "delta", "Cmax/LB", "bound", "Mmax/LB", "d", "SumCi/opt", "2+1/(d-2)")
	for _, fam := range gen.Families() {
		// One batch sweep per family streams all seeds through the
		// shared pool with the SPT tie-break; the lower-bound record is
		// memoized by the engine, so each instance is bounded once
		// instead of once per δ. Runs come back in grid order, so the
		// table is identical to the old serial loop.
		accC := make([]*stats.Acc, len(deltas))
		accM := make([]*stats.Acc, len(deltas))
		accS := make([]*stats.Acc, len(deltas))
		for i := range deltas {
			accC[i] = stats.NewAcc(false)
			accM[i] = stats.NewAcc(false)
			accS[i] = stats.NewAcc(false)
		}
		ins := make([]*model.Instance, len(seeds))
		for i, seed := range seeds {
			ins[i] = fam.Gen(n, m, seed)
		}
		err := engine.SweepBatch(context.Background(), engine.BatchOf(ins...),
			batchConfig(engine.Config{
				Deltas:  deltas,
				Ties:    []core.TieBreak{core.TieSPT},
				SkipSBO: true,
			}),
			func(br engine.BatchResult) error {
				if br.Err != nil {
					return br.Err
				}
				rec := br.Result.Bounds
				for i, run := range br.Result.Runs {
					if run.Err != nil {
						return run.Err
					}
					// The engine drops RLS jobs for δ < 2, so a grid
					// edit could silently misalign runs and
					// accumulators.
					if run.Delta != deltas[i] {
						return fmt.Errorf("COR4: run %d has delta %g, want %g (all grid deltas must be >= 2)",
							i, run.Delta, deltas[i])
					}
					accC[i].Add(float64(run.RLS.Cmax) / float64(rec.CmaxLB))
					accM[i].Add(float64(run.RLS.Mmax) / float64(rec.MmaxLB))
					accS[i].Add(float64(run.RLS.SumCi) / float64(rec.SumCiLB))
				}
				return nil
			})
		if err != nil {
			return err
		}
		for i, d := range deltas {
			cBound := core.RLSCmaxRatio(d, m)
			sBound := core.RLSSumCiRatio(d)
			okC := accC[i].Max() <= cBound+1e-9
			okM := accM[i].Max() <= d+1e-9
			okS := accS[i].Max() <= sBound+1e-9
			status := ""
			if !okC || !okM || !okS {
				status = "  VIOLATED"
				violated = true
			}
			fmt.Fprintf(w, "%-16s %6.2f  %9.4f %9.4f  %9.4f %6.2f  %9.4f %9.4f%s\n",
				fam.Name, d, accC[i].Max(), cBound, accM[i].Max(), d, accS[i].Max(), sBound, status)
		}
	}
	if violated {
		return fmt.Errorf("a Corollary 4 bound was exceeded")
	}
	return nil
}

func runSec7(w io.Writer) error {
	// Small instances: compare against the exact constrained optimum
	// obtained from the full Pareto front.
	seeds := []int64{21, 22, 23, 24, 25, 26, 27, 28}
	fmt.Fprintf(w, "small instances (n=10, m=2): solver vs exact constrained optimum over a budget sweep\n\n")
	fmt.Fprintf(w, "%-6s %-10s %-12s %-12s %-8s\n", "seed", "budget", "solver Cmax", "opt Cmax", "ratio")
	worst := 0.0
	var solved, uncertified int
	for _, seed := range seeds {
		in := gen.Uniform(10, 2, seed)
		pts, err := pareto.Front(in)
		if err != nil {
			return err
		}
		lb := bounds.MemLB(in.S(), in.M)
		total := in.TotalMem()
		for _, budget := range []model.Mem{lb, (lb + total) / 2, 2 * lb, total} {
			if budget > total {
				budget = total
			}
			optC := exactConstrainedCmax(pts, budget)
			a, v, err := core.ConstrainedIndependent(in, budget)
			switch {
			case errors.Is(err, core.ErrNotCertified):
				uncertified++
				fmt.Fprintf(w, "%-6d %-10d %-12s %-12d %-8s\n", seed, budget, "uncert.", optC, "-")
				continue
			case err != nil:
				return err
			}
			if verr := in.ValidateAssignment(a); verr != nil {
				return verr
			}
			if v.Mmax > budget {
				return fmt.Errorf("seed %d budget %d: returned Mmax %d exceeds budget", seed, budget, v.Mmax)
			}
			solved++
			ratio := float64(v.Cmax) / float64(optC)
			if ratio > worst {
				worst = ratio
			}
			fmt.Fprintf(w, "%-6d %-10d %-12d %-12d %-8.4f\n", seed, budget, v.Cmax, optC, ratio)
		}
	}
	fmt.Fprintf(w, "\nsolved=%d uncertified=%d worst Cmax ratio vs exact constrained optimum = %.4f\n", solved, uncertified, worst)
	// The paper gives no uniform guarantee here (the constrained
	// problem is inapproximable in general); sanity-check that the
	// measured ratio stays within the SBO/RLS envelope on these
	// instances and that every >= 2LB budget was solved.
	if worst > 3 {
		return fmt.Errorf("constrained solver ratio %.3f unexpectedly bad", worst)
	}
	// Large-instance feasibility demonstration.
	fmt.Fprintf(w, "\nlarge instance (n=400, m=16): budget sweep feasibility\n")
	in := gen.EmbeddedCode(400, 16, 99)
	lb := bounds.MemLB(in.S(), in.M)
	for _, mult := range []float64{1.0, 1.2, 1.5, 2.0, 3.0} {
		budget := model.Mem(float64(lb) * mult)
		_, v, err := core.ConstrainedIndependent(in, budget)
		switch {
		case errors.Is(err, core.ErrNotCertified):
			fmt.Fprintf(w, "  budget=%.1fxLB: not certified\n", mult)
			if mult >= 2 {
				return fmt.Errorf("budget %.1fxLB >= 2LB must always be solved", mult)
			}
		case err != nil:
			return err
		default:
			fmt.Fprintf(w, "  budget=%.1fxLB: Cmax=%d Mmax=%d (Cmax/LBc=%.4f)\n",
				mult, v.Cmax, v.Mmax, float64(v.Cmax)/float64(bounds.ForInstance(in).CmaxLB))
		}
	}
	return nil
}

// exactConstrainedCmax reads the optimal constrained makespan off the
// exact Pareto front.
func exactConstrainedCmax(pts []pareto.Point, budget model.Mem) model.Time {
	best := model.Time(-1)
	for _, p := range pts {
		if p.Value.Mmax <= budget && (best == -1 || p.Value.Cmax < best) {
			best = p.Value.Cmax
		}
	}
	return best
}

package exp

import (
	"context"
	"fmt"
	"io"
	"reflect"

	"storagesched/internal/cache"
	"storagesched/internal/engine"
	"storagesched/internal/gen"
	"storagesched/internal/shard"
)

func init() {
	register(Experiment{
		ID:    "CACHEABL",
		Title: "Content-addressed front cache — hit rate and front reuse on repeated sweeps",
		Paper: "the experiment families re-sweep identical instances across runs; cached fronts must be reused verbatim (hit rate (r-1)/r over r rounds) and sharded passes must reproduce them",
		Run:   runCacheAbl,
	})
}

// cacheFamily is one named slice of the SWEEP/DAGSWEEP workload mix.
type cacheFamily struct {
	name  string
	items []engine.BatchItem
}

// cacheFamilies rebuilds the deterministic workload: the instance
// families the SWEEP experiment draws from and the graph families of
// DAGSWEEP, at sizes small enough for a self-checking experiment.
func cacheFamilies() []cacheFamily {
	var uniform, embedded, graphs []engine.BatchItem
	for seed := int64(1); seed <= 3; seed++ {
		uniform = append(uniform, engine.BatchItem{Instance: gen.Uniform(24, 3, seed)})
		embedded = append(embedded, engine.BatchItem{Instance: gen.EmbeddedCode(30, 4, seed)})
	}
	graphs = append(graphs,
		engine.BatchItem{Graph: gen.LayeredDAG(3, 8, 3, 1)},
		engine.BatchItem{Graph: gen.ForkJoin(3, 3, 3, 2)},
	)
	return []cacheFamily{
		{name: "uniform(n=24,m=3)", items: uniform},
		{name: "embedded(n=30,m=4)", items: embedded},
		{name: "dag(layered+forkjoin)", items: graphs},
	}
}

func runCacheAbl(w io.Writer) error {
	ctx := context.Background()
	grid, err := engine.GeometricGrid(0.5, 8, 8)
	if err != nil {
		return err
	}
	families := cacheFamilies()
	var items []engine.BatchItem
	famOf := map[int]string{}
	for _, f := range families {
		for _, it := range f.items {
			famOf[len(items)] = f.name
			items = append(items, it)
		}
	}

	c, err := cache.New(cache.Config{})
	if err != nil {
		return err
	}
	cfg := batchConfig(engine.Config{Deltas: grid})
	cfg.Cache = c

	seq := func(yield func(engine.BatchItem) bool) {
		for _, it := range items {
			if !yield(it) {
				return
			}
		}
	}

	// Round 1 populates; rounds 2..r must be served entirely from the
	// cache with byte-for-byte identical fronts.
	const rounds = 3
	fronts := make([][]engine.FrontPoint, len(items))
	hitsByFamily := map[string]int{}
	runsByFamily := map[string]int{}
	for round := 1; round <= rounds; round++ {
		err := engine.SweepBatch(ctx, seq, cfg, func(br engine.BatchResult) error {
			if br.Err != nil {
				return fmt.Errorf("round %d item %d: %w", round, br.Index, br.Err)
			}
			runsByFamily[famOf[br.Index]]++
			if br.CacheHit {
				hitsByFamily[famOf[br.Index]]++
			}
			switch {
			case round == 1 && br.CacheHit:
				return fmt.Errorf("round 1 item %d served from an empty cache", br.Index)
			case round > 1 && !br.CacheHit:
				return fmt.Errorf("round %d item %d missed a warm cache", round, br.Index)
			}
			if round == 1 {
				fronts[br.Index] = br.Result.Front
			} else if !reflect.DeepEqual(fronts[br.Index], br.Result.Front) {
				return fmt.Errorf("round %d item %d: cached front differs from computed one", round, br.Index)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}

	st := c.Stats()
	fmt.Fprintf(w, "workload: %d items (%d families), %d rounds, %d grid points\n\n",
		len(items), len(families), rounds, len(grid))
	fmt.Fprintf(w, "%-24s %-8s %-8s %s\n", "family", "sweeps", "hits", "hit rate")
	for _, f := range families {
		sw, h := runsByFamily[f.name], hitsByFamily[f.name]
		fmt.Fprintf(w, "%-24s %-8d %-8d %.3f\n", f.name, sw, h, float64(h)/float64(sw))
	}
	fmt.Fprintf(w, "%-24s %-8d %-8d %.3f\n", "total", st.Hits+st.Misses, st.Hits,
		float64(st.Hits)/float64(st.Hits+st.Misses))

	wantHits := int64((rounds - 1) * len(items))
	if st.Hits != wantHits || st.Misses != int64(len(items)) {
		return fmt.Errorf("cache stats hits=%d misses=%d, want hits=%d misses=%d",
			st.Hits, st.Misses, wantHits, len(items))
	}

	// A sharded pass over the warm cache must reproduce the same fronts
	// in the same global order — the cluster path reuses fronts too.
	plan, err := shard.NewPlan(2, shard.HashAffine, items)
	if err != nil {
		return err
	}
	next := 0
	err = shard.Run(ctx, items, plan, cfg, func(br engine.BatchResult) error {
		if br.Err != nil {
			return fmt.Errorf("sharded item %d: %w", br.Index, br.Err)
		}
		if br.Index != next {
			return fmt.Errorf("sharded emission order broke: got item %d, want %d", br.Index, next)
		}
		next++
		if !br.CacheHit {
			return fmt.Errorf("sharded item %d missed the warm cache", br.Index)
		}
		if !reflect.DeepEqual(fronts[br.Index], br.Result.Front) {
			return fmt.Errorf("sharded item %d: front differs from the unsharded one", br.Index)
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nsharded pass (K=2, hash-affine): %d items reused from cache in input order\n", next)
	fmt.Fprintf(w, "reuse: every warm front byte-identical to its computed original across %d rounds\n", rounds)
	return nil
}

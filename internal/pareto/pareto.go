// Package pareto enumerates the exact Pareto front of small
// independent-task instances of P | p_j, s_j | Cmax, Mmax. Section 4
// of the paper derives its inapproximability results from the exact
// fronts of three instance families; this package recomputes those
// fronts mechanically (branch-and-bound over assignments with
// machine-symmetry and dominance pruning) so Figures 1 and 2 and
// Lemmas 1–3 can be verified rather than transcribed.
package pareto

import (
	"fmt"
	"sort"

	"storagesched/internal/model"
)

// Point is one Pareto-optimal objective value together with a witness
// assignment achieving it.
type Point struct {
	Value      model.Value
	Assignment model.Assignment
}

// MaxTasks guards the exhaustive search; fronts are exponential to
// enumerate and anything beyond this is a programming error, not a
// workload.
const MaxTasks = 24

// Front returns the exact Pareto front of the instance, sorted by
// increasing Cmax (hence decreasing Mmax). One witness assignment is
// kept per distinct non-dominated value.
func Front(in *model.Instance) ([]Point, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := in.N()
	if n > MaxTasks {
		return nil, fmt.Errorf("pareto: n = %d exceeds the enumeration limit %d", n, MaxTasks)
	}
	if n == 0 {
		return []Point{{Value: model.Value{}, Assignment: model.Assignment{}}}, nil
	}

	// Visit heavy tasks first: partial loads climb quickly, so the
	// dominance pruning bites earlier.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		wa := in.Tasks[order[a]].P + model.Time(in.Tasks[order[a]].S)
		wb := in.Tasks[order[b]].P + model.Time(in.Tasks[order[b]].S)
		if wa != wb {
			return wa > wb
		}
		return order[a] < order[b]
	})

	// Global lower bounds: any completion's objectives are at least
	// these, which sharpens the dominance test near the root.
	var totalP model.Time
	var totalS model.Mem
	for _, t := range in.Tasks {
		totalP += t.P
		totalS += t.S
	}
	m64 := int64(in.M)
	globalC := (totalP + m64 - 1) / m64
	globalM := (totalS + m64 - 1) / m64

	e := &enumerator{
		in:      in,
		order:   order,
		loads:   make([]model.Time, in.M),
		mems:    make([]model.Mem, in.M),
		assign:  make(model.Assignment, n),
		globalC: globalC,
		globalM: globalM,
	}
	e.rec(0, 0)

	pts := e.archive
	sort.Slice(pts, func(a, b int) bool { return pts[a].Value.Cmax < pts[b].Value.Cmax })
	return pts, nil
}

type enumerator struct {
	in      *model.Instance
	order   []int
	loads   []model.Time
	mems    []model.Mem
	assign  model.Assignment
	archive []Point

	globalC model.Time
	globalM model.Mem
}

// dominatedByArchive reports whether some archived value weakly
// dominates (c, m); any branch whose objective lower bound is weakly
// dominated cannot contribute a new front value.
func (e *enumerator) dominatedByArchive(c model.Time, m model.Mem) bool {
	for _, p := range e.archive {
		if p.Value.Cmax <= c && p.Value.Mmax <= m {
			return true
		}
	}
	return false
}

// insert adds a value to the archive, dropping the newly dominated.
func (e *enumerator) insert(v model.Value, a model.Assignment) {
	kept := e.archive[:0]
	for _, p := range e.archive {
		if v.Dominates(p.Value) {
			continue
		}
		kept = append(kept, p)
	}
	e.archive = kept
	e.archive = append(e.archive, Point{Value: v, Assignment: append(model.Assignment(nil), a...)})
}

func (e *enumerator) rec(k int, usedProcs int) {
	// Current partial maxima are lower bounds on any completion.
	var curC model.Time
	var curM model.Mem
	for q := 0; q < e.in.M; q++ {
		if e.loads[q] > curC {
			curC = e.loads[q]
		}
		if e.mems[q] > curM {
			curM = e.mems[q]
		}
	}
	if curC < e.globalC {
		curC = e.globalC
	}
	if curM < e.globalM {
		curM = e.globalM
	}
	if e.dominatedByArchive(curC, curM) {
		return
	}
	if k == len(e.order) {
		v := e.in.Eval(e.assign)
		if !e.dominatedByArchive(v.Cmax, v.Mmax) {
			e.insert(v, e.assign)
		}
		return
	}
	i := e.order[k]
	t := e.in.Tasks[i]
	// Machine symmetry: the task may open at most one fresh
	// processor.
	limit := usedProcs + 1
	if limit > e.in.M {
		limit = e.in.M
	}
	for q := 0; q < limit; q++ {
		e.assign[i] = q
		e.loads[q] += t.P
		e.mems[q] += t.S
		next := usedProcs
		if q == usedProcs {
			next++
		}
		e.rec(k+1, next)
		e.loads[q] -= t.P
		e.mems[q] -= t.S
	}
}

// BruteForceFront enumerates all m^n assignments without pruning — a
// reference implementation for cross-checking Front on tiny instances.
func BruteForceFront(in *model.Instance) ([]Point, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := in.N()
	if n > 12 {
		return nil, fmt.Errorf("pareto: brute force limited to n <= 12, got %d", n)
	}
	var pts []Point
	a := make(model.Assignment, n)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			v := in.Eval(a)
			pts = insertValue(pts, v, a)
			return
		}
		for q := 0; q < in.M; q++ {
			a[k] = q
			rec(k + 1)
		}
	}
	rec(0)
	sort.Slice(pts, func(x, y int) bool { return pts[x].Value.Cmax < pts[y].Value.Cmax })
	return pts, nil
}

func insertValue(pts []Point, v model.Value, a model.Assignment) []Point {
	for _, p := range pts {
		if p.Value.WeaklyDominates(v) {
			return pts
		}
	}
	kept := pts[:0]
	for _, p := range pts {
		if v.Dominates(p.Value) {
			continue
		}
		kept = append(kept, p)
	}
	return append(kept, Point{Value: v, Assignment: append(model.Assignment(nil), a...)})
}

// Values extracts just the objective values of a front.
func Values(pts []Point) []model.Value {
	vs := make([]model.Value, len(pts))
	for i, p := range pts {
		vs[i] = p.Value
	}
	return vs
}

// FilterDominated returns the non-dominated subset of values (one
// representative per distinct value), sorted by Cmax.
func FilterDominated(vs []model.Value) []model.Value {
	var out []model.Value
	for _, v := range vs {
		dominated := false
		for _, w := range vs {
			if w != v && w.WeaklyDominates(v) && (w.Cmax < v.Cmax || w.Mmax < v.Mmax) {
				dominated = true
				break
			}
		}
		if !dominated {
			dup := false
			for _, o := range out {
				if o == v {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Cmax < out[b].Cmax })
	return out
}

// SameFront reports whether two fronts carry exactly the same values
// in the same (sorted) order.
func SameFront(a, b []model.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

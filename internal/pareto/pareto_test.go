package pareto

import (
	"math/rand"
	"testing"
	"testing/quick"

	"storagesched/internal/model"
)

func TestFrontTinyKnownInstance(t *testing.T) {
	// The Section 4.1 instance at scale 4: p = (4,2,2), s = (ε,4,4)
	// with ε = 1. Expected front: (4, 8) and (6, 5).
	in := model.NewInstance(2, []model.Time{4, 2, 2}, []model.Mem{1, 4, 4})
	pts, err := Front(in)
	if err != nil {
		t.Fatalf("Front: %v", err)
	}
	want := []model.Value{{Cmax: 4, Mmax: 8}, {Cmax: 6, Mmax: 5}}
	if !SameFront(Values(pts), want) {
		t.Errorf("front = %v, want %v", Values(pts), want)
	}
}

func TestFrontSingleProcessor(t *testing.T) {
	in := model.NewInstance(1, []model.Time{3, 4}, []model.Mem{2, 5})
	pts, err := Front(in)
	if err != nil {
		t.Fatalf("Front: %v", err)
	}
	if len(pts) != 1 || pts[0].Value != (model.Value{Cmax: 7, Mmax: 7}) {
		t.Errorf("front = %v, want [(7,7)]", Values(pts))
	}
}

func TestFrontEmptyInstance(t *testing.T) {
	in := &model.Instance{M: 2}
	pts, err := Front(in)
	if err != nil {
		t.Fatalf("Front: %v", err)
	}
	if len(pts) != 1 || pts[0].Value != (model.Value{}) {
		t.Errorf("front = %v, want [(0,0)]", Values(pts))
	}
}

func TestFrontRejectsTooLarge(t *testing.T) {
	p := make([]model.Time, MaxTasks+1)
	s := make([]model.Mem, MaxTasks+1)
	for i := range p {
		p[i] = 1
	}
	in := model.NewInstance(2, p, s)
	if _, err := Front(in); err == nil {
		t.Error("oversized instance accepted")
	}
}

func TestWitnessAssignmentsAchieveValues(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(rng, 8, 3)
		pts, err := Front(in)
		if err != nil {
			t.Fatalf("Front: %v", err)
		}
		for _, p := range pts {
			if got := in.Eval(p.Assignment); got != p.Value {
				t.Errorf("witness evaluates to %v, front says %v", got, p.Value)
			}
		}
	}
}

func TestFilterDominated(t *testing.T) {
	vs := []model.Value{
		{Cmax: 1, Mmax: 5},
		{Cmax: 2, Mmax: 5}, // dominated
		{Cmax: 2, Mmax: 3},
		{Cmax: 3, Mmax: 3}, // dominated
		{Cmax: 2, Mmax: 3}, // duplicate
		{Cmax: 4, Mmax: 1},
	}
	got := FilterDominated(vs)
	want := []model.Value{{Cmax: 1, Mmax: 5}, {Cmax: 2, Mmax: 3}, {Cmax: 4, Mmax: 1}}
	if !SameFront(got, want) {
		t.Errorf("FilterDominated = %v, want %v", got, want)
	}
}

func TestSameFront(t *testing.T) {
	a := []model.Value{{Cmax: 1, Mmax: 2}}
	b := []model.Value{{Cmax: 1, Mmax: 2}}
	if !SameFront(a, b) {
		t.Error("identical fronts reported different")
	}
	if SameFront(a, nil) {
		t.Error("different lengths reported same")
	}
	if SameFront(a, []model.Value{{Cmax: 1, Mmax: 3}}) {
		t.Error("different values reported same")
	}
}

func randomInstance(rng *rand.Rand, maxN, maxM int) *model.Instance {
	n := 1 + rng.Intn(maxN)
	m := 1 + rng.Intn(maxM)
	p := make([]model.Time, n)
	s := make([]model.Mem, n)
	for i := 0; i < n; i++ {
		p[i] = rng.Int63n(12) + 1
		s[i] = rng.Int63n(13)
	}
	return model.NewInstance(m, p, s)
}

// The pruned search and the brute force agree on every tiny instance.
func TestPropertyFrontMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 7, 3)
		fast, err1 := Front(in)
		slow, err2 := BruteForceFront(in)
		if err1 != nil || err2 != nil {
			return false
		}
		return SameFront(Values(fast), Values(slow))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Fronts are antichains: no value weakly dominates another.
func TestPropertyFrontIsAntichain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 9, 3)
		pts, err := Front(in)
		if err != nil {
			return false
		}
		for i := range pts {
			for j := range pts {
				if i != j && pts[i].Value.WeaklyDominates(pts[j].Value) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Every front contains the lexicographic optima: the minimum possible
// Cmax appears as the first point's Cmax, and the minimum Mmax as the
// last point's Mmax.
func TestPropertyFrontContainsLexOptima(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 7, 3)
		pts, err := Front(in)
		if err != nil || len(pts) == 0 {
			return false
		}
		slow, err := BruteForceFront(in)
		if err != nil {
			return false
		}
		return pts[0].Value.Cmax == slow[0].Value.Cmax &&
			pts[len(pts)-1].Value.Mmax == slow[len(slow)-1].Value.Mmax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Random schedules never dominate a front point.
func TestPropertyNoScheduleBeatsFront(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 9, 3)
		pts, err := Front(in)
		if err != nil {
			return false
		}
		a := make(model.Assignment, in.N())
		for trial := 0; trial < 60; trial++ {
			for i := range a {
				a[i] = rng.Intn(in.M)
			}
			v := in.Eval(a)
			for _, p := range pts {
				if v.Dominates(p.Value) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

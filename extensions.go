package storagesched

// Facade over the extension subsystems: uniform (related) machines,
// conditional task graphs, approximate Pareto-set generation, the
// discrete-event simulator and CSV trace interchange. These implement
// the future-work directions of the paper's concluding remarks; the
// derived guarantees are documented in the respective internal
// packages and enforced by their tests and the EXT* experiments.

import (
	"io"
	"math/rand"

	"storagesched/internal/condgraph"
	"storagesched/internal/dag"
	"storagesched/internal/paretogen"
	"storagesched/internal/sim"
	"storagesched/internal/trace"
	"storagesched/internal/uniform"
)

// Uniform (related) machines.
type (
	// Speeds is the machine speed vector (all >= 1).
	Speeds = uniform.Speeds
	// UniformRat is an exact rational time (work/speed).
	UniformRat = uniform.Rat
	// SBOUniformResult is an SBO run on uniform machines.
	SBOUniformResult = uniform.SBOUniformResult
	// RLSUniformResult is an RLS run on uniform machines.
	RLSUniformResult = uniform.RLSUniformResult
)

// SBOUniform runs Algorithm 1 adapted to machine speeds; guarantee
// (Cmax ≤ (1+∆)·C, Mmax ≤ (1+Q/∆)·M) with Q the speed spread.
func SBOUniform(in *Instance, speeds Speeds, delta float64) (*SBOUniformResult, error) {
	return uniform.SBOUniform(in, speeds, delta)
}

// RLSUniform runs the memory-capped earliest-completion greedy on
// uniform machines; Mmax ≤ ∆·LB holds unchanged.
func RLSUniform(in *Instance, speeds Speeds, delta float64) (*RLSUniformResult, error) {
	return uniform.RLSUniform(in, speeds, delta)
}

// UniformCmax evaluates the exact rational makespan of an assignment
// under machine speeds.
func UniformCmax(p []Time, speeds Speeds, a Assignment) UniformRat {
	return uniform.Cmax(p, speeds, a)
}

// Conditional task graphs.
type (
	// CondGraph is a DAG with branch annotations.
	CondGraph = condgraph.CondGraph
	// CondScenario fixes branch outcomes and the active task set.
	CondScenario = condgraph.Scenario
	// CondMCResult aggregates a Monte Carlo policy comparison.
	CondMCResult = condgraph.MCResult
)

// NewCondGraph wraps a DAG for branch annotation via AddBranch.
func NewCondGraph(g *Graph) *CondGraph { return condgraph.New(g) }

// CondMonteCarlo compares the static-conservative and clairvoyant-
// dynamic RLS policies over sampled scenarios.
func CondMonteCarlo(cg *CondGraph, delta float64, trials int, seed int64) (*CondMCResult, error) {
	return condgraph.MonteCarlo(cg, delta, trials, seed)
}

// SampleScenario draws one branch outcome per choice point.
func SampleScenario(cg *CondGraph, rng *rand.Rand) CondScenario { return cg.Sample(rng) }

// InducedGraph extracts the active subgraph of a scenario together
// with the mapping from induced to original task ids.
func InducedGraph(cg *CondGraph, sc CondScenario) (*Graph, []int) {
	g, orig := cg.Induced(sc)
	var _ *dag.Graph = g
	return g, orig
}

// Approximate Pareto-set generation.
type (
	// FrontPoint is one generated tradeoff schedule with provenance.
	FrontPoint = paretogen.Point
	// FrontOptions shape the delta sweep.
	FrontOptions = paretogen.Options
)

// GenerateFront sweeps ∆ across SBO/RLS (plus optional constrained
// probes) and returns the non-dominated schedules found.
func GenerateFront(in *Instance, opts FrontOptions) ([]FrontPoint, error) {
	return paretogen.Generate(in, opts)
}

// FrontEpsilon measures how closely a generated front covers a
// reference front (0 = full coverage).
func FrontEpsilon(generated, reference []Value) float64 {
	return paretogen.EpsilonIndicator(generated, reference)
}

// Discrete-event simulation.
type (
	// SimReport summarises a replayed execution.
	SimReport = sim.Report
	// OnlineTask is a task with a release date.
	OnlineTask = sim.OnlineTask
	// OnlineResult is an online scheduling run.
	OnlineResult = sim.OnlineResult
)

// ReplaySchedule executes a schedule event by event, independently
// verifying overlap, precedence and the memory budget (0 = no budget).
func ReplaySchedule(sc *Schedule, prec [][]int, memCap Mem) (*SimReport, error) {
	return sim.Replay(sc, prec, memCap)
}

// OnlineRLS schedules released tasks greedily under a hard memory cap.
func OnlineRLS(tasks []OnlineTask, m int, memCap Mem) (*OnlineResult, error) {
	return sim.OnlineRLS(tasks, m, memCap)
}

// CSV trace interchange.

// WriteInstanceCSV emits "id,p,s,name" rows.
func WriteInstanceCSV(w io.Writer, in *Instance) error { return trace.WriteInstanceCSV(w, in) }

// ReadInstanceCSV parses a task table for m processors.
func ReadInstanceCSV(r io.Reader, m int) (*Instance, error) { return trace.ReadInstanceCSV(r, m) }

// WriteScheduleCSV emits "id,proc,start,p,s" rows.
func WriteScheduleCSV(w io.Writer, sc *Schedule) error { return trace.WriteScheduleCSV(w, sc) }

// ReadScheduleCSV parses a schedule table for m processors.
func ReadScheduleCSV(r io.Reader, m int) (*Schedule, error) { return trace.ReadScheduleCSV(r, m) }

package storagesched

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestFacadeUniform(t *testing.T) {
	in := GenUniform(30, 4, 2)
	speeds := Speeds{1, 2, 2, 4}
	res, err := SBOUniform(in, speeds, 1)
	if err != nil {
		t.Fatalf("SBOUniform: %v", err)
	}
	if res.Cmax.Float() > res.CmaxBound()+1e-9 {
		t.Error("uniform Cmax bound violated")
	}
	rls, err := RLSUniform(in, speeds, 3)
	if err != nil {
		t.Fatalf("RLSUniform: %v", err)
	}
	if rls.Mmax > rls.Cap {
		t.Error("uniform memory cap violated")
	}
}

func TestFacadeCondGraph(t *testing.T) {
	g := NewGraph(2, []Time{1, 4, 2, 1}, []Mem{1, 5, 3, 1})
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	cg := NewCondGraph(g)
	if err := cg.AddBranch(0, [][]int{{1}, {2}}, []float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	res, err := CondMonteCarlo(cg, 3, 50, 1)
	if err != nil {
		t.Fatalf("CondMonteCarlo: %v", err)
	}
	if res.StaticMeanCmax > float64(res.StaticFullCmax) {
		t.Error("static scenario mean exceeds full schedule")
	}
	rng := rand.New(rand.NewSource(2))
	scen := SampleScenario(cg, rng)
	ind, orig := InducedGraph(cg, scen)
	if ind.N() != len(orig) {
		t.Error("induced graph / mapping mismatch")
	}
}

func TestFacadeGenerateFront(t *testing.T) {
	in := GenUniform(12, 3, 5)
	pts, err := GenerateFront(in, FrontOptions{Steps: 8, IncludeRLS: true})
	if err != nil {
		t.Fatalf("GenerateFront: %v", err)
	}
	if len(pts) == 0 {
		t.Fatal("empty front")
	}
	var vals []Value
	for _, p := range pts {
		vals = append(vals, p.Value)
	}
	if eps := FrontEpsilon(vals, vals); eps != 0 {
		t.Errorf("self epsilon = %g", eps)
	}
}

func TestFacadeSim(t *testing.T) {
	in := GenUniform(20, 3, 7)
	res, err := RLSIndependent(in, 3, TieSPT)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplaySchedule(res.Schedule, nil, res.Cap)
	if err != nil {
		t.Fatalf("ReplaySchedule: %v", err)
	}
	if rep.Cmax != res.Cmax {
		t.Error("replay disagrees with schedule")
	}
	on, err := OnlineRLS([]OnlineTask{{P: 3, S: 1, Release: 0}, {P: 2, S: 1, Release: 4}}, 2, 100)
	if err != nil {
		t.Fatalf("OnlineRLS: %v", err)
	}
	if on.Cmax != 6 {
		t.Errorf("online Cmax = %d, want 6", on.Cmax)
	}
}

func TestFacadeCSV(t *testing.T) {
	in := GenEmbeddedCode(15, 3, 4)
	var buf bytes.Buffer
	if err := WriteInstanceCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstanceCSV(&buf, in.M)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != in.N() {
		t.Error("instance CSV round trip lost tasks")
	}
	sc := ScheduleFromAssignment(in, make(Assignment, in.N()))
	buf.Reset()
	if err := WriteScheduleCSV(&buf, sc); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadScheduleCSV(&buf, in.M); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeLDMAndRegistryAlgorithms(t *testing.T) {
	sizes := []int64{8, 7, 6, 5, 4}
	a := LDM{}.Assign(sizes, 2)
	if len(a) != 5 {
		t.Fatal("LDM assignment wrong length")
	}
	var alg MakespanAlgorithm = LDM{}
	if alg.Name() != "LDM" {
		t.Errorf("Name = %q", alg.Name())
	}
}

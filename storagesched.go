// Package storagesched is a Go implementation of the algorithms of
// Saule, Dutot and Mounié, "Scheduling with Storage Constraints"
// (IPDPS 2008): bi-objective scheduling of tasks on identical
// processors minimizing both the makespan Cmax and the maximum
// cumulative memory occupation Mmax.
//
// The package exposes, over the internal substrates:
//
//   - the task/instance/schedule model (independent tasks and DAGs),
//   - SBO∆ (Algorithm 1), the ((1+∆)ρ1, (1+1/∆)ρ2)-approximation for
//     independent tasks built from two single-objective sub-algorithms,
//   - RLS∆ (Algorithm 2), the (2+1/(∆−2)−(∆−1)/(m(∆−2)), ∆)-
//     approximation for precedence-constrained tasks, including the
//     tri-objective SPT variant of Corollary 4,
//   - the Section 7 constrained solvers for "min Cmax s.t. Mmax ≤ M",
//   - the P||Cmax toolbox (list scheduling, LPT, Multifit, the
//     Hochbaum–Shmoys PTAS and exact solvers),
//   - exact Pareto-front enumeration for small instances and the
//     Section 4 hardness instances,
//   - a parallel δ-sweep engine (Sweep) producing approximate Pareto
//     fronts at any instance size,
//   - deterministic workload generators and ASCII Gantt rendering.
//
// Quickstart:
//
//	in := storagesched.NewInstance(4,
//		[]storagesched.Time{9, 4, 6, 2},
//		[]storagesched.Mem{3, 8, 1, 5})
//	res, err := storagesched.SBOWithLPT(in, 1.0)
//	// res.Assignment places each task; res.Cmax/res.Mmax are achieved.
//
// # Sweeps and approximate Pareto fronts
//
// The paper's headline artifact is the family of (1+δ, 1+1/δ)-
// approximate schedules swept over δ. ParetoFront enumerates the exact
// front but is exponential and capped at 24 tasks; Sweep instead
// evaluates SBO and all four RLS tie-breaks across a δ-grid with a
// worker pool (one worker per CPU by default) and keeps the
// non-dominated hull of the achieved (Cmax, Mmax) points — an
// approximate front that scales to arbitrary instance sizes:
//
//	in := storagesched.GenUniform(200, 16, 1)
//	grid, err := storagesched.SweepGeometricGrid(0.25, 8, 32)
//	res, err := storagesched.Sweep(context.Background(), in,
//		storagesched.SweepConfig{Deltas: grid})
//	for _, p := range res.Front {
//		fmt.Println(p.Value, res.Runs[p.RunIndex].Label())
//	}
//
// Results are deterministic: runs are reported in grid order and the
// front is identical whatever the worker count or goroutine
// interleaving. Per-instance state (lower bounds, the SBO
// sub-schedules, the RLS tie-break orders) is computed once per sweep,
// not once per run; cancel the context to abandon a sweep mid-flight.
//
// # Batched sweeps
//
// Experiments sweep families × seeds of instances back to back.
// SweepBatch runs all of them through one shared worker pool — the
// pool never idles at instance boundaries — and streams each
// per-instance SweepResult to a callback in instance order, holding at
// most BatchConfig.MaxPending instances in memory however many the
// input sequence yields:
//
//	err := storagesched.SweepBatch(ctx,
//		storagesched.BatchOf(instances...),
//		storagesched.BatchConfig{Config: storagesched.SweepConfig{Deltas: grid}},
//		func(br storagesched.BatchResult) error {
//			if br.Err != nil {
//				return br.Err // or log and continue
//			}
//			fmt.Println(br.Index, br.Result.FrontValues())
//			return nil
//		})
//
// Each streamed Result is identical to what Sweep would return for the
// same instance and config, whatever the worker count. Items may carry
// per-instance config overrides, and a bad instance fails alone —
// BatchResult.Err — without stopping the batch.
//
// Batches mix task DAGs with independent-task instances: a BatchItem
// carries either an Instance or a Graph, and graph items sweep the RLS
// tie-breaks (Algorithm 2) over the δ ≥ 2 grid points against memoized
// per-graph state — SweepGraph is the single-graph special case:
//
//	g := storagesched.GenLayeredDAG(8, 25, 4, 1)
//	res, err := storagesched.SweepGraph(context.Background(), g,
//		storagesched.SweepConfig{Deltas: grid})
package storagesched

import (
	"context"
	"io"
	"iter"

	"storagesched/internal/bounds"
	"storagesched/internal/cache"
	"storagesched/internal/core"
	"storagesched/internal/dag"
	"storagesched/internal/engine"
	"storagesched/internal/gantt"
	"storagesched/internal/gen"
	"storagesched/internal/makespan"
	"storagesched/internal/model"
	"storagesched/internal/pareto"
	"storagesched/internal/refine"
	"storagesched/internal/shard"
)

// Model types.
type (
	// Time is an integer processing-time quantity.
	Time = model.Time
	// Mem is an integer storage quantity.
	Mem = model.Mem
	// Task is one task (ID, processing time P, storage size S).
	Task = model.Task
	// Instance is a set of independent tasks on M identical processors.
	Instance = model.Instance
	// Assignment maps task index to processor.
	Assignment = model.Assignment
	// Schedule is a timed schedule (assignment plus start times).
	Schedule = model.Schedule
	// Value is a point (Cmax, Mmax) in objective space.
	Value = model.Value
	// Graph is a task DAG for the precedence-constrained problem.
	Graph = dag.Graph
)

// NewInstance builds an independent-task instance from parallel
// processing-time and storage vectors.
func NewInstance(m int, p []Time, s []Mem) *Instance { return model.NewInstance(m, p, s) }

// ReadInstanceJSON decodes an instance from JSON.
func ReadInstanceJSON(r io.Reader) (*Instance, error) { return model.ReadInstanceJSON(r) }

// NewGraph builds a task DAG with no arcs; add precedence with
// (*Graph).AddEdge(u, v) meaning u must complete before v starts.
func NewGraph(m int, p []Time, s []Mem) *Graph { return dag.New(m, p, s) }

// ReadGraphJSON decodes a task DAG from JSON — the instance format
// plus an "edges" array of [u, v] pairs — and validates it.
func ReadGraphJSON(r io.Reader) (*Graph, error) { return dag.ReadGraphJSON(r) }

// GraphFromInstance wraps independent tasks as an edgeless DAG.
func GraphFromInstance(in *Instance) *Graph { return dag.FromInstance(in) }

// Single-objective P||Cmax algorithms, usable as SBO sub-algorithms.
type (
	// MakespanAlgorithm assigns abstract sizes to processors.
	MakespanAlgorithm = makespan.Algorithm
	// ListScheduling is Graham's 2−1/m list scheduling.
	ListScheduling = makespan.ListScheduling
	// LPT is longest-processing-time-first, 4/3−1/(3m).
	LPT = makespan.LPT
	// LDM is the Karmarkar–Karp largest differencing method.
	LDM = makespan.LDM
	// Multifit is the 13/11 MULTIFIT algorithm.
	Multifit = makespan.Multifit
	// PTAS is the Hochbaum–Shmoys dual-approximation scheme (1+ε).
	PTAS = makespan.PTAS
	// ExactDP solves P||Cmax exactly for n ≤ 24 (exponential).
	ExactDP = makespan.ExactDP
	// BranchAndBound solves P||Cmax exactly with DFS pruning.
	BranchAndBound = makespan.BranchAndBound
)

// SBOResult is the outcome of one SBO∆ run (Algorithm 1): the
// combined assignment π∆, its achieved (Cmax, Mmax), and the analysis
// bookkeeping of the two sub-schedules it merged.
type SBOResult = core.SBOResult

// SBO runs Algorithm 1 with explicit sub-algorithms for the makespan
// (algC, a ρ1-approximation) and memory (algM, ρ2) schedules.
func SBO(in *Instance, delta float64, algC, algM MakespanAlgorithm) (*SBOResult, error) {
	return core.SBO(in, delta, algC, algM)
}

// SBOWithLS runs SBO∆ with Graham list scheduling on both objectives.
func SBOWithLS(in *Instance, delta float64) (*SBOResult, error) { return core.SBOWithLS(in, delta) }

// SBOWithLPT runs SBO∆ with LPT on both objectives.
func SBOWithLPT(in *Instance, delta float64) (*SBOResult, error) { return core.SBOWithLPT(in, delta) }

// SBOWithPTAS runs SBO∆ with the PTAS on both objectives — the
// Corollary 1 configuration (1+∆+ε, 1+1/∆+ε).
func SBOWithPTAS(in *Instance, delta, eps float64) (*SBOResult, error) {
	return core.SBOWithPTAS(in, delta, eps)
}

// SBORatio returns ((1+∆)ρ1, (1+1/∆)ρ2), the Properties 1–2 pair.
func SBORatio(delta, rho1, rho2 float64) (float64, float64) { return core.SBORatio(delta, rho1, rho2) }

// SBOPrepared memoizes the ∆-independent half of Algorithm 1 (the two
// sub-schedules π1/π2 and their objective values); Run and Constrained
// evaluate against it without re-running the sub-algorithms.
type SBOPrepared = core.SBOPrepared

// PrepareSBO validates the instance and runs the two sub-algorithms
// once, for repeated SBO evaluations over a ∆- or budget-sweep.
func PrepareSBO(in *Instance, algC, algM MakespanAlgorithm) (*SBOPrepared, error) {
	return core.PrepareSBO(in, algC, algM)
}

// RLS results, orders and runners (Algorithm 2).
type (
	// RLSResult is one RLS∆ run with its analysis bookkeeping.
	RLSResult = core.RLSResult
	// TieBreak selects the total order used to break start-time ties.
	TieBreak = core.TieBreak
)

// Tie-break orders for RLS.
const (
	TieByID        = core.TieByID
	TieSPT         = core.TieSPT
	TieLPT         = core.TieLPT
	TieBottomLevel = core.TieBottomLevel
)

// RLS runs Restricted List Scheduling on a task DAG with ∆ ≥ 2.
func RLS(g *Graph, delta float64, tie TieBreak) (*RLSResult, error) { return core.RLS(g, delta, tie) }

// RLSGraphPrepared memoizes the ∆-independent work of RLS on a task
// DAG (validation, topological structure, tie ranks); Run, RunWithCap
// and Constrained evaluate against it without re-ranking per call.
type RLSGraphPrepared = core.RLSGraphPrepared

// PrepareRLS validates the graph and precomputes tie ranks (all four
// tie-breaks when none are given) for repeated RLS evaluations — a
// ∆- or budget-sweep over one graph prepares once and runs per point.
func PrepareRLS(g *Graph, ties ...TieBreak) (*RLSGraphPrepared, error) {
	return core.PrepareRLS(g, ties...)
}

// RLSIndependent runs the Section 5.2 independent-task variant (use
// TieSPT for the tri-objective guarantee of Corollary 4).
func RLSIndependent(in *Instance, delta float64, tie TieBreak) (*RLSResult, error) {
	return core.RLSIndependent(in, delta, tie)
}

// RLSPrepared memoizes the ∆-independent work of RLSIndependent
// (validation, the memory lower bound, the tie-break orders); Run,
// RunWithCap and Constrained evaluate against it per grid point.
type RLSPrepared = core.RLSPrepared

// PrepareRLSIndependent validates the instance and precomputes the
// scheduling orders for the given tie-breaks (all four when none are
// given) for repeated independent-task RLS evaluations.
func PrepareRLSIndependent(in *Instance, ties ...TieBreak) (*RLSPrepared, error) {
	return core.PrepareRLSIndependent(in, ties...)
}

// RLSCmaxRatio returns the Lemma 5 makespan guarantee for ∆ > 2.
func RLSCmaxRatio(delta float64, m int) float64 { return core.RLSCmaxRatio(delta, m) }

// RLSSumCiRatio returns the Corollary 4 ΣCi guarantee, 2 + 1/(∆−2).
func RLSSumCiRatio(delta float64) float64 { return core.RLSSumCiRatio(delta) }

// Constrained solvers (Section 7).
var (
	// ErrInfeasible: the memory budget is below the Graham lower
	// bound, so no schedule exists.
	ErrInfeasible = core.ErrInfeasible
	// ErrNotCertified: no schedule found although one may exist
	// (budget in the [LB, 2·LB) band).
	ErrNotCertified = core.ErrNotCertified
)

// ConstrainedDAG schedules a DAG under a hard memory budget. For a
// budget sweep over one graph, PrepareRLS once and call
// (*RLSGraphPrepared).Constrained per budget instead.
func ConstrainedDAG(g *Graph, budget Mem, tie TieBreak) (*RLSResult, error) {
	return core.ConstrainedDAG(g, budget, tie)
}

// ConstrainedIndependent solves "min Cmax s.t. Mmax ≤ budget" on
// independent tasks via the SBO parameter search and capped RLS,
// returning the better feasible assignment. For a budget sweep over
// one instance, PrepareConstrainedIndependent once and call Solve per
// budget instead.
func ConstrainedIndependent(in *Instance, budget Mem) (Assignment, Value, error) {
	return core.ConstrainedIndependent(in, budget)
}

// ConstrainedPrepared memoizes the budget-independent work of
// ConstrainedIndependent (both Section 7 routes' prepared halves);
// Solve evaluates one budget against it.
type ConstrainedPrepared = core.ConstrainedPrepared

// PrepareConstrainedIndependent prepares an instance for a budget
// sweep of the constrained solver.
func PrepareConstrainedIndependent(in *Instance) (*ConstrainedPrepared, error) {
	return core.PrepareConstrainedIndependent(in)
}

// BoundsRecord collects every makespan and memory lower bound for an
// item (work/m, max task, critical path, the Graham memory bound) —
// the denominators of all approximation ratios reported here.
type BoundsRecord = bounds.Record

// BoundsForInstance computes every lower bound for an instance.
func BoundsForInstance(in *Instance) BoundsRecord { return bounds.ForInstance(in) }

// BoundsForGraph computes every lower bound for a DAG.
func BoundsForGraph(g *Graph) (BoundsRecord, error) { return bounds.ForGraph(g) }

// MemLB returns the Graham memory lower bound max(max s, ⌈Σs/m⌉).
func MemLB(s []Mem, m int) Mem { return bounds.MemLB(s, m) }

// ParetoPoint is one exact Pareto-front point: its (Cmax, Mmax) value
// and a witness assignment achieving it.
type ParetoPoint = pareto.Point

// ParetoFront enumerates the exact Pareto front (n ≤ 24).
func ParetoFront(in *Instance) ([]ParetoPoint, error) { return pareto.Front(in) }

// Parallel δ-sweeps (approximate Pareto fronts at any size).
type (
	// SweepConfig selects the δ-grid, worker count, SBO
	// sub-algorithms and RLS tie-breaks of a sweep.
	SweepConfig = engine.Config
	// SweepResult carries the per-run outcomes (deterministic grid
	// order), the assembled front and the memoized lower bounds.
	SweepResult = engine.Result
	// SweepRun is one (algorithm, δ) evaluation inside a sweep.
	SweepRun = engine.Run
	// SweepFrontPoint is one approximate-front point with the index
	// of its witness run.
	SweepFrontPoint = engine.FrontPoint
	// SweepAlgorithm tags a run as SBO or RLS.
	SweepAlgorithm = engine.Algorithm
)

// Sweep algorithm tags.
const (
	SweepSBO = engine.AlgSBO
	SweepRLS = engine.AlgRLS
)

// Sweep evaluates SBO and RLS over a δ-grid concurrently and returns
// the approximate Pareto front; see the package documentation.
func Sweep(ctx context.Context, in *Instance, cfg SweepConfig) (*SweepResult, error) {
	return engine.Sweep(ctx, in, cfg)
}

// SweepGraph is the task-DAG form of Sweep: it runs the RLS tie-breaks
// over the δ ≥ 2 part of the grid against memoized per-graph state
// (topological structure, bottom levels, tie ranks, bounds) and
// assembles the approximate Pareto front of the achieved (Cmax, Mmax)
// points. SBO is defined on independent tasks and does not run.
func SweepGraph(ctx context.Context, g *Graph, cfg SweepConfig) (*SweepResult, error) {
	return engine.SweepGraph(ctx, g, cfg)
}

// Batched multi-instance sweeps (streaming fronts in bounded memory).
type (
	// BatchItem is one work item of a batch sweep — an instance or a
	// task DAG — with an optional per-item config override or source
	// error.
	BatchItem = engine.BatchItem
	// BatchConfig is the batch-wide sweep default plus the shared pool
	// size (Workers), the streaming window (MaxPending), an optional
	// front cache (Cache) and an optional resident pool (Pool).
	BatchConfig = engine.BatchConfig
	// BatchResult is one instance's sweep outcome, streamed in
	// instance order.
	BatchResult = engine.BatchResult
)

// SweepBatch sweeps every instance of items through one shared worker
// pool and streams each per-instance SweepResult to emit in instance
// order; at most cfg.MaxPending instances are held in memory at once.
// See the package documentation.
func SweepBatch(ctx context.Context, items iter.Seq[BatchItem], cfg BatchConfig, emit func(BatchResult) error) error {
	return engine.SweepBatch(ctx, items, cfg, emit)
}

// SweepPool is a resident worker pool shared across batch sweeps: set
// it on BatchConfig.Pool to submit many SweepBatch calls — concurrent
// or back to back — to one long-lived set of workers and their warm
// scratch buffers, the schedd daemon shape. Every batch's results are
// byte-identical to the same batch on a private per-call pool.
type SweepPool = engine.Pool

// NewSweepPool starts a resident pool of the given size (0 = one per
// CPU). Close it only after every batch using it has returned.
func NewSweepPool(workers int) *SweepPool { return engine.NewPool(workers) }

// BatchOf adapts a slice of instances to the item sequence SweepBatch
// consumes.
func BatchOf(instances ...*Instance) iter.Seq[BatchItem] { return engine.BatchOf(instances...) }

// BatchOfGraphs adapts a slice of task DAGs to the item sequence
// SweepBatch consumes; graph and instance items mix freely in one
// batch (set BatchItem.Graph or BatchItem.Instance per item).
func BatchOfGraphs(graphs ...*Graph) iter.Seq[BatchItem] { return engine.BatchOfGraphs(graphs...) }

// BatchOfItems adapts prepared batch items — mixed kinds, overrides
// and tags intact — to the sequence SweepBatch and SweepBatchAdaptive
// consume, yielding them in slice order.
func BatchOfItems(items ...BatchItem) iter.Seq[BatchItem] { return engine.BatchOfItems(items...) }

// Adaptive δ-grid refinement (see internal/refine): a two-pass sweep
// that spends extra grid points only where the front bends.
type (
	// RefineConfig selects the relative-gap threshold and the per-item
	// refinement point budget of an adaptive sweep.
	RefineConfig = refine.Config
)

// Adaptive-refinement defaults (RefineConfig zero values resolve to
// these).
const (
	DefaultRefineGap       = refine.DefaultGap
	DefaultRefineMaxPoints = refine.DefaultMaxPoints
)

// SweepBatchAdaptive runs a coarse SweepBatch pass at cfg's grid, then
// a refinement pass whose per-item config overrides subdivide δ where
// each coarse front's relative gaps exceed rcfg.Gap (graph items plan
// RLS-eligible points only, δ ≥ 2). Coarse and refined runs merge into
// one deduplicated front per item, emitted in input order. Both passes
// share cfg's pool and cache; coarse entries are interchangeable with
// plain SweepBatch runs of the same grid, refined entries key on their
// own grid's fingerprint. Unlike SweepBatch, the pipeline holds every
// item's coarse front until refinement completes — memory is O(items).
func SweepBatchAdaptive(ctx context.Context, items iter.Seq[BatchItem], cfg BatchConfig, rcfg RefineConfig, emit func(BatchResult) error) error {
	return refine.SweepBatchAdaptive(ctx, items, cfg, rcfg, emit)
}

// RefineGrid plans the refinement δ-grid for one swept Result: the
// δ-intervals bracketing adjacent front points whose relative gap
// exceeds cfg.Gap, geometrically subdivided within cfg.MaxPoints.
// graph marks task-DAG results, whose planned points are clamped to
// δ ≥ 2. Fronts with fewer than two points plan nothing.
func RefineGrid(res *SweepResult, graph bool, cfg RefineConfig) ([]float64, error) {
	return refine.Grid(res, graph, cfg)
}

// FrontMaxRelGap returns the largest relative gap between adjacent
// front points — the front-quality metric adaptive refinement drives
// down.
func FrontMaxRelGap(front []SweepFrontPoint) float64 { return refine.MaxRelGap(front) }

// Content-addressed front caching (see internal/cache): sweeps keyed
// by canonical item bytes + config fingerprint, stored in an in-memory
// LRU tier and an optional corruption-tolerant disk tier.
type (
	// SweepCache is the two-tier content-addressed front cache; set it
	// on BatchConfig.Cache to skip recomputing known fronts. A nil
	// *SweepCache means caching off.
	SweepCache = cache.Cache
	// CacheConfig selects the cache directory (disk tier) and the
	// memory-tier entry bound.
	CacheConfig = cache.Config
	// CacheStats is a snapshot of hit/miss/eviction counters.
	CacheStats = cache.Stats
	// CacheKey is a cache entry's content address.
	CacheKey = cache.Key
	// BlobStore is the storage seam behind the cache's persistent
	// tier; set CacheConfig.Store to plug in a cluster-shared store.
	BlobStore = cache.BlobStore
	// BlobInfo describes one stored blob (key, size, mod time).
	BlobInfo = cache.BlobInfo
	// DirStore is the directory-backed BlobStore — one file per key,
	// atomic via temp file + rename.
	DirStore = cache.DirStore
	// CacheGCPolicy parameterizes one lifecycle eviction sweep (size
	// cap, age cap, orphaned-tmp cutoff).
	CacheGCPolicy = cache.GCPolicy
	// CacheGCResult reports what one eviction sweep saw and did.
	CacheGCResult = cache.GCResult
	// CacheVerifyResult reports what one integrity pass saw and did.
	CacheVerifyResult = cache.VerifyResult
)

// NewDirStore opens (creating if absent) a directory blob store — the
// same store CacheConfig.Dir builds implicitly.
func NewDirStore(dir string) (DirStore, error) { return cache.NewDirStore(dir) }

// NewSweepCache builds a front cache; wire it into a batch via
// BatchConfig.Cache. Results served from it reproduce the front
// artifacts (bounds, run provenance and values, the front) exactly and
// are flagged BatchResult.CacheHit; the per-run witness schedules are
// not retained — consumers that need them sweep uncached.
func NewSweepCache(cfg CacheConfig) (*SweepCache, error) { return cache.New(cfg) }

// Shard coordination (see internal/shard): deterministic splitting of
// a batch across K pools or processes with order-preserving merges.
type (
	// ShardPolicy places items on shards (round-robin or hash-affine).
	ShardPolicy = shard.Policy
	// ShardPlan is a deterministic placement of items onto K shards.
	ShardPlan = shard.Plan
)

// Shard placement policies. Hash-affine placement routes identical
// items to the same shard, keeping shard-local caches hot.
const (
	ShardRoundRobin = shard.RoundRobin
	ShardHashAffine = shard.HashAffine
)

// ParseShardPolicy parses a policy name ("rr" | "hash") as accepted on
// command lines.
func ParseShardPolicy(s string) (ShardPolicy, error) { return shard.ParsePolicy(s) }

// NewShardPlan places items onto k shards under the policy; the plan
// depends only on the inputs, never on timing.
func NewShardPlan(k int, policy ShardPolicy, items []BatchItem) (*ShardPlan, error) {
	return shard.NewPlan(k, policy, items)
}

// ShardedSweepBatch runs the plan with one SweepBatch pool per shard
// and streams results to emit in global input order — byte-identical
// to an unsharded SweepBatch over the same items and config.
func ShardedSweepBatch(ctx context.Context, items []BatchItem, plan *ShardPlan, cfg BatchConfig, emit func(BatchResult) error) error {
	return shard.Run(ctx, items, plan, cfg, emit)
}

// SweepLinearGrid returns n evenly spaced δ values covering [lo, hi],
// or an error for an invalid grid shape.
func SweepLinearGrid(lo, hi float64, n int) ([]float64, error) { return engine.LinearGrid(lo, hi, n) }

// SweepGeometricGrid returns n geometrically spaced δ values covering
// [lo, hi] — the natural spacing for the (1+δ, 1+1/δ) trade-off — or
// an error for an invalid grid shape.
func SweepGeometricGrid(lo, hi float64, n int) ([]float64, error) {
	return engine.GeometricGrid(lo, hi, n)
}

// GanttOptions configure ASCII Gantt rendering (chart width, memory
// annotations).
type GanttOptions = gantt.Options

// RenderGantt writes an ASCII Gantt chart of a timed schedule.
func RenderGantt(w io.Writer, sc *Schedule, opts GanttOptions) error {
	return gantt.Render(w, sc, opts)
}

// RenderAssignment renders an independent-task assignment.
func RenderAssignment(w io.Writer, in *Instance, a Assignment, opts GanttOptions) error {
	return gantt.RenderAssignment(w, in, a, opts)
}

// ScheduleFromAssignment packs an assignment into a timed schedule.
func ScheduleFromAssignment(in *Instance, a Assignment) *Schedule {
	return model.FromAssignment(in, a)
}

// ScheduleFromAssignmentSPT packs an assignment running each
// processor's tasks shortest-first, which minimises ΣCi for the fixed
// assignment.
func ScheduleFromAssignmentSPT(in *Instance, a Assignment) *Schedule {
	return model.FromAssignmentSPT(in, a)
}

// Generators (deterministic; see internal/gen for the full set).

// GenUniform draws n tasks with uniform independent p and s.
func GenUniform(n, m int, seed int64) *Instance { return gen.Uniform(n, m, seed) }

// GenEmbeddedCode draws the multi-SoC code-placement mix.
func GenEmbeddedCode(n, m int, seed int64) *Instance { return gen.EmbeddedCode(n, m, seed) }

// GenGridBatch draws the grid-physics batch mix.
func GenGridBatch(n, m int, seed int64) *Instance { return gen.GridBatch(n, m, seed) }

// GenLayeredDAG builds a random layered task graph.
func GenLayeredDAG(m, layers, width int, seed int64) *Graph {
	return gen.LayeredDAG(m, layers, width, seed)
}

// GenForkJoin builds a staged fork-join task graph.
func GenForkJoin(m, stages, width int, seed int64) *Graph {
	return gen.ForkJoin(m, stages, width, seed)
}

module storagesched

go 1.24

package storagesched

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// The facade is exercised end to end the way README's quickstart does.
func TestFacadeQuickstart(t *testing.T) {
	in := NewInstance(4,
		[]Time{9, 4, 6, 2, 7, 3, 8, 5},
		[]Mem{3, 8, 1, 5, 2, 9, 4, 6})
	res, err := SBOWithLPT(in, 1.0)
	if err != nil {
		t.Fatalf("SBOWithLPT: %v", err)
	}
	if err := in.ValidateAssignment(res.Assignment); err != nil {
		t.Fatalf("assignment invalid: %v", err)
	}
	if float64(res.Cmax) > 2*float64(res.C) || (res.M > 0 && float64(res.Mmax) > 2*float64(res.M)) {
		t.Errorf("SBO guarantees violated at delta=1")
	}
}

// TestFacadeSweep is the acceptance scenario: a 32-point δ-grid on a
// 200-task instance returns a deterministic non-dominated front.
func TestFacadeSweep(t *testing.T) {
	in := GenUniform(200, 16, 1)
	grid, err := SweepGeometricGrid(0.25, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	var first *SweepResult
	for _, workers := range []int{1, 4, 0} { // serial, fixed, NumCPU
		res, err := Sweep(context.Background(), in, SweepConfig{Deltas: grid, Workers: workers})
		if err != nil {
			t.Fatalf("Sweep(workers=%d): %v", workers, err)
		}
		if len(res.Front) == 0 {
			t.Fatal("empty front")
		}
		for i, p := range res.Front {
			if i > 0 && (p.Value.Cmax <= res.Front[i-1].Value.Cmax ||
				p.Value.Mmax >= res.Front[i-1].Value.Mmax) {
				t.Fatalf("front not non-dominated at %d: %v after %v",
					i, p.Value, res.Front[i-1].Value)
			}
			run := res.Runs[p.RunIndex]
			if err := in.ValidateAssignment(run.Assignment); err != nil {
				t.Fatalf("front witness %s invalid: %v", run.Label(), err)
			}
		}
		if first == nil {
			first = res
		} else if !reflect.DeepEqual(res.Front, first.Front) {
			t.Fatalf("front depends on worker count: %v vs %v", res.Front, first.Front)
		}
	}
	if first.Bounds.MmaxLB != MemLB(in.S(), in.M) {
		t.Errorf("sweep bounds record disagrees with MemLB")
	}
}

// TestFacadeSweepBatch streams a small instance family through the
// batch engine and checks each front equals its standalone sweep.
func TestFacadeSweepBatch(t *testing.T) {
	grid, err := SweepGeometricGrid(0.5, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	instances := []*Instance{
		GenUniform(60, 4, 1),
		GenEmbeddedCode(60, 4, 2),
		GenGridBatch(60, 4, 3),
	}
	cfg := BatchConfig{Config: SweepConfig{Deltas: grid, Workers: 2}, MaxPending: 2}
	next := 0
	err = SweepBatch(context.Background(), BatchOf(instances...), cfg,
		func(br BatchResult) error {
			if br.Err != nil {
				t.Fatalf("instance %d: %v", br.Index, br.Err)
			}
			if br.Index != next {
				t.Fatalf("result index %d, want %d", br.Index, next)
			}
			next++
			solo, err := Sweep(context.Background(), instances[br.Index], cfg.Config)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(br.Result.Front, solo.Front) {
				t.Errorf("instance %d: batch front %v, standalone %v",
					br.Index, br.Result.Front, solo.Front)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("SweepBatch: %v", err)
	}
	if next != len(instances) {
		t.Fatalf("emitted %d results, want %d", next, len(instances))
	}
}

func TestFacadeGridErrors(t *testing.T) {
	if _, err := SweepGeometricGrid(0, 8, 32); err == nil {
		t.Error("SweepGeometricGrid accepted lo=0")
	}
	if _, err := SweepLinearGrid(4, 2, 8); err == nil {
		t.Error("SweepLinearGrid accepted hi < lo")
	}
}

func TestFacadeRLSOnDAG(t *testing.T) {
	g := NewGraph(2, []Time{3, 1, 4, 1, 5}, []Mem{2, 2, 2, 2, 2})
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(2, 4)
	res, err := RLS(g, 3, TieBottomLevel)
	if err != nil {
		t.Fatalf("RLS: %v", err)
	}
	if err := res.Schedule.Validate(g.PredLists()); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	if res.Mmax > 3*MemLB(g.S, g.M) {
		t.Errorf("Corollary 2 violated")
	}
}

func TestFacadeConstrained(t *testing.T) {
	in := GenEmbeddedCode(40, 4, 7)
	lb := MemLB(in.S(), in.M)
	a, v, err := ConstrainedIndependent(in, 2*lb)
	if err != nil {
		t.Fatalf("ConstrainedIndependent: %v", err)
	}
	if v.Mmax > 2*lb {
		t.Errorf("budget exceeded: %d > %d", v.Mmax, 2*lb)
	}
	if err := in.ValidateAssignment(a); err != nil {
		t.Fatalf("assignment invalid: %v", err)
	}
	// Budget below LB must fail loudly.
	if _, _, err := ConstrainedIndependent(in, lb-1); err == nil {
		t.Error("infeasible budget accepted")
	}
}

func TestFacadeParetoAndRender(t *testing.T) {
	in := NewInstance(2, []Time{4, 2, 2}, []Mem{1, 4, 4})
	pts, err := ParetoFront(in)
	if err != nil {
		t.Fatalf("ParetoFront: %v", err)
	}
	if len(pts) != 2 {
		t.Fatalf("front size %d, want 2 (Figure 1 instance)", len(pts))
	}
	var buf bytes.Buffer
	if err := RenderAssignment(&buf, in, pts[0].Assignment, GanttOptions{Width: 30, ShowMemory: true}); err != nil {
		t.Fatalf("RenderAssignment: %v", err)
	}
	if !strings.Contains(buf.String(), "Cmax=") {
		t.Errorf("render output incomplete:\n%s", buf.String())
	}
}

func TestFacadeRatios(t *testing.T) {
	c, m := SBORatio(1, 1, 1)
	if c != 2 || m != 2 {
		t.Errorf("SBORatio(1,1,1) = (%g,%g)", c, m)
	}
	if RLSCmaxRatio(3, 4) != 2.5 {
		t.Errorf("RLSCmaxRatio(3,4) = %g", RLSCmaxRatio(3, 4))
	}
	if RLSSumCiRatio(4) != 2.5 {
		t.Errorf("RLSSumCiRatio(4) = %g", RLSSumCiRatio(4))
	}
}

func TestFacadeBounds(t *testing.T) {
	in := GenUniform(30, 4, 3)
	rec := BoundsForInstance(in)
	if rec.CmaxLB <= 0 || rec.MmaxLB < 0 {
		t.Errorf("degenerate bounds: %+v", rec)
	}
	g := GraphFromInstance(in)
	grec, err := BoundsForGraph(g)
	if err != nil {
		t.Fatalf("BoundsForGraph: %v", err)
	}
	if grec.CmaxLB != rec.CmaxLB {
		t.Errorf("edgeless graph bound %d != instance bound %d", grec.CmaxLB, rec.CmaxLB)
	}
}

func TestFacadeGenerators(t *testing.T) {
	if err := GenGridBatch(25, 3, 1).Validate(); err != nil {
		t.Errorf("GenGridBatch: %v", err)
	}
	if err := GenLayeredDAG(3, 4, 3, 1).Validate(); err != nil {
		t.Errorf("GenLayeredDAG: %v", err)
	}
	if err := GenForkJoin(3, 2, 4, 1).Validate(); err != nil {
		t.Errorf("GenForkJoin: %v", err)
	}
}

func TestFacadeExactSolvers(t *testing.T) {
	sizes := []int64{7, 5, 4, 3, 1}
	opt, a := ExactDP{}.Solve(sizes, 2)
	if opt != 10 {
		t.Errorf("ExactDP opt = %d, want 10", opt)
	}
	_ = a
	optB, _ := BranchAndBound{}.Solve(sizes, 2)
	if optB != opt {
		t.Errorf("BnB %d != DP %d", optB, opt)
	}
}

// TestFacadeSweepGraph drives the graph-sweep surface end to end: the
// JSON graph format round-trips through the facade, SweepGraph builds
// an RLS-only front, and a mixed graph/instance batch streams both
// kinds in order.
func TestFacadeSweepGraph(t *testing.T) {
	g := GenForkJoin(4, 4, 3, 2)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadGraphJSON(&buf)
	if err != nil {
		t.Fatalf("ReadGraphJSON: %v", err)
	}
	if decoded.N() != g.N() || decoded.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip lost structure: n=%d e=%d, want n=%d e=%d",
			decoded.N(), decoded.NumEdges(), g.N(), g.NumEdges())
	}

	grid, err := SweepGeometricGrid(2, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SweepGraph(context.Background(), decoded, SweepConfig{Deltas: grid})
	if err != nil {
		t.Fatalf("SweepGraph: %v", err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty graph front")
	}
	for _, r := range res.Runs {
		if r.Algorithm != SweepRLS {
			t.Fatalf("graph sweep ran %s", r.Label())
		}
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Label(), r.Err)
		}
		if err := r.RLS.Schedule.Validate(decoded.PredLists()); err != nil {
			t.Fatalf("%s: schedule violates precedence: %v", r.Label(), err)
		}
	}

	// Mixed batch: a graph and an instance through one pool.
	var got []BatchResult
	err = SweepBatch(context.Background(),
		func(yield func(BatchItem) bool) {
			_ = yield(BatchItem{Graph: decoded}) && yield(BatchItem{Instance: GenUniform(30, 4, 1)})
		},
		BatchConfig{Config: SweepConfig{Deltas: grid}},
		func(br BatchResult) error { got = append(got, br); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Err != nil || got[1].Err != nil {
		t.Fatalf("mixed batch: %+v", got)
	}
	if !reflect.DeepEqual(got[0].Result.Front, res.Front) {
		t.Errorf("batched graph front differs from SweepGraph")
	}
}

// TestFacadeCacheAndShards drives the cluster-scale surface end to
// end: a front cache serves a warm batch byte-for-byte, a shard plan
// routes identical items together, and a sharded batch reproduces the
// unsharded stream.
func TestFacadeCacheAndShards(t *testing.T) {
	grid, err := SweepGeometricGrid(0.5, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	items := []BatchItem{
		{Instance: GenUniform(30, 4, 1)},
		{Graph: GenForkJoin(4, 3, 3, 2)},
		{Instance: GenUniform(30, 4, 1)}, // duplicate of item 0
	}

	c, err := NewSweepCache(CacheConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := BatchConfig{Config: SweepConfig{Deltas: grid}, Cache: c}
	seq := func(yield func(BatchItem) bool) {
		for _, it := range items {
			if !yield(it) {
				return
			}
		}
	}
	collect := func() []BatchResult {
		t.Helper()
		var got []BatchResult
		if err := SweepBatch(context.Background(), seq, cfg, func(br BatchResult) error {
			got = append(got, br)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	cold := collect()
	warm := collect()
	var st CacheStats = c.Stats()
	if st.Hits < int64(len(items)) || st.Misses == 0 {
		t.Fatalf("cache stats %+v after cold+warm passes", st)
	}
	for i := range items {
		if !warm[i].CacheHit {
			t.Errorf("warm item %d not served from cache", i)
		}
		if !reflect.DeepEqual(cold[i].Result.Front, warm[i].Result.Front) {
			t.Errorf("item %d: warm front differs from cold", i)
		}
	}

	plan, err := NewShardPlan(2, ShardHashAffine, items)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Shards[0] != plan.Shards[2] {
		t.Error("hash-affine plan split identical items")
	}
	if _, err := ParseShardPolicy("rr"); err != nil {
		t.Errorf("ParseShardPolicy(rr): %v", err)
	}
	var sharded []BatchResult
	if err := ShardedSweepBatch(context.Background(), items, plan, cfg, func(br BatchResult) error {
		sharded = append(sharded, br)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range items {
		if sharded[i].Index != i {
			t.Fatalf("sharded order: got %d at position %d", sharded[i].Index, i)
		}
		if !reflect.DeepEqual(sharded[i].Result.Front, cold[i].Result.Front) {
			t.Errorf("item %d: sharded front differs", i)
		}
	}
}

// TestFacadeAdaptiveSweep exercises the adaptive-refinement surface:
// a two-pass batch whose merged fronts pointwise weakly dominate the
// coarse ones, plus the grid planner and the gap metric.
func TestFacadeAdaptiveSweep(t *testing.T) {
	grid, err := SweepGeometricGrid(0.0625, 256, 6)
	if err != nil {
		t.Fatal(err)
	}
	items := []BatchItem{
		{Instance: GenUniform(200, 16, 1)},
		{Graph: GenForkJoin(8, 6, 10, 1)},
	}
	seq := BatchOfItems(items...)
	cfg := BatchConfig{Config: SweepConfig{Deltas: grid}}

	var coarse []BatchResult
	if err := SweepBatch(context.Background(), seq, cfg, func(br BatchResult) error {
		coarse = append(coarse, br)
		return br.Err
	}); err != nil {
		t.Fatal(err)
	}
	rcfg := RefineConfig{Gap: 0.05, MaxPoints: 12}
	var merged []BatchResult
	if err := SweepBatchAdaptive(context.Background(), seq, cfg, rcfg, func(br BatchResult) error {
		merged = append(merged, br)
		return br.Err
	}); err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(items) {
		t.Fatalf("adaptive emitted %d results, want %d", len(merged), len(items))
	}
	refined := false
	for i := range items {
		if len(merged[i].Result.Runs) > len(coarse[i].Result.Runs) {
			refined = true
		}
		if g, c := FrontMaxRelGap(merged[i].Result.Front), FrontMaxRelGap(coarse[i].Result.Front); g > c {
			t.Errorf("item %d: adaptive max gap %.4f worse than coarse %.4f", i, g, c)
		}
		for _, cp := range coarse[i].Result.Front {
			ok := false
			for _, mp := range merged[i].Result.Front {
				if mp.Value.WeaklyDominates(cp.Value) {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("item %d: coarse point %v not dominated by adaptive front", i, cp.Value)
			}
		}
	}
	if !refined {
		t.Error("no item was refined")
	}

	// The planner surface: the instance's coarse front plans points,
	// and degenerate fronts plan nothing.
	plan, err := RefineGrid(coarse[0].Result, false, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) == 0 || len(plan) > rcfg.MaxPoints {
		t.Errorf("planned %d points, want 1..%d", len(plan), rcfg.MaxPoints)
	}
	if got, err := RefineGrid(&SweepResult{}, false, rcfg); err != nil || len(got) != 0 {
		t.Errorf("empty result planned %v (err %v)", got, err)
	}
}

// TestFacadePreparedConstrainedDAG exercises the budget-sweep reuse
// surface: one PrepareRLS value serves every cap.
func TestFacadePreparedConstrainedDAG(t *testing.T) {
	g := GenLayeredDAG(3, 6, 3, 9)
	prep, err := PrepareRLS(g, TieSPT)
	if err != nil {
		t.Fatal(err)
	}
	lb := prep.LB()
	for cap := 2 * lb; cap <= 3*lb; cap += lb {
		got, err := prep.Constrained(cap, TieSPT)
		if err != nil {
			t.Fatalf("cap %d: %v", cap, err)
		}
		want, err := ConstrainedDAG(g, cap, TieSPT)
		if err != nil {
			t.Fatalf("cap %d fresh: %v", cap, err)
		}
		if got.Cmax != want.Cmax || got.Mmax != want.Mmax {
			t.Errorf("cap %d: prepared (%d,%d) != fresh (%d,%d)", cap, got.Cmax, got.Mmax, want.Cmax, want.Mmax)
		}
	}
	if _, err := prep.Constrained(lb-1, TieSPT); !errors.Is(err, ErrInfeasible) {
		t.Errorf("below-LB budget: %v", err)
	}
}

package storagesched_test

// Runnable examples for the batch-sweep surface. These execute under
// `go test` and their Output blocks are checked, so they double as
// determinism tests: the printed fronts must come out identical on
// every machine, worker count and scheduling order.

import (
	"context"
	"fmt"

	sched "storagesched"
)

// exampleItems returns three small deterministic instances.
func exampleItems() []*sched.Instance {
	return []*sched.Instance{
		sched.NewInstance(2, []sched.Time{9, 4, 6, 2}, []sched.Mem{3, 8, 1, 5}),
		sched.NewInstance(2, []sched.Time{5, 5, 5, 5}, []sched.Mem{1, 2, 3, 4}),
		sched.NewInstance(3, []sched.Time{7, 1, 4, 6, 2}, []sched.Mem{2, 6, 1, 3, 2}),
	}
}

// ExampleSweepBatch sweeps three instances through one worker pool and
// streams each approximate front in input order.
func ExampleSweepBatch() {
	grid, err := sched.SweepGeometricGrid(0.5, 8, 4)
	if err != nil {
		panic(err)
	}
	err = sched.SweepBatch(context.Background(),
		sched.BatchOf(exampleItems()...),
		sched.BatchConfig{Config: sched.SweepConfig{Deltas: grid}},
		func(br sched.BatchResult) error {
			if br.Err != nil {
				return br.Err
			}
			fmt.Printf("item %d: front %v\n", br.Index, br.Result.FrontValues())
			return nil
		})
	if err != nil {
		panic(err)
	}
	// Output:
	// item 0: front [(Cmax=11, Mmax=9)]
	// item 1: front [(Cmax=10, Mmax=5)]
	// item 2: front [(Cmax=7, Mmax=9) (Cmax=8, Mmax=8) (Cmax=10, Mmax=6)]
}

// ExampleNewSweepCache wires a content-addressed front cache into two
// identical batches: the second is served without recomputation, with
// identical results.
func ExampleNewSweepCache() {
	fcache, err := sched.NewSweepCache(sched.CacheConfig{MemEntries: 16})
	if err != nil {
		panic(err)
	}
	grid, err := sched.SweepGeometricGrid(0.5, 8, 4)
	if err != nil {
		panic(err)
	}
	cfg := sched.BatchConfig{
		Config: sched.SweepConfig{Deltas: grid},
		Cache:  fcache,
	}
	for pass := range 2 {
		hits := 0
		err := sched.SweepBatch(context.Background(),
			sched.BatchOf(exampleItems()...), cfg,
			func(br sched.BatchResult) error {
				if br.Err != nil {
					return br.Err
				}
				if br.CacheHit {
					hits++
				}
				return nil
			})
		if err != nil {
			panic(err)
		}
		fmt.Printf("pass %d: %d of 3 served from cache\n", pass, hits)
	}
	// Output:
	// pass 0: 0 of 3 served from cache
	// pass 1: 3 of 3 served from cache
}

// ExampleSweepBatchAdaptive runs the two-pass adaptive pipeline: a
// coarse sweep, then targeted refinement where each front's relative
// gap exceeds the threshold.
func ExampleSweepBatchAdaptive() {
	grid, err := sched.SweepGeometricGrid(0.5, 8, 3)
	if err != nil {
		panic(err)
	}
	err = sched.SweepBatchAdaptive(context.Background(),
		sched.BatchOf(exampleItems()...),
		sched.BatchConfig{Config: sched.SweepConfig{Deltas: grid}},
		sched.RefineConfig{Gap: 0.05, MaxPoints: 4},
		func(br sched.BatchResult) error {
			if br.Err != nil {
				return br.Err
			}
			fmt.Printf("item %d: %d runs -> %d front points\n",
				br.Index, len(br.Result.Runs), len(br.Result.Front))
			return nil
		})
	if err != nil {
		panic(err)
	}
	// Output:
	// item 0: 11 runs -> 1 front points
	// item 1: 11 runs -> 1 front points
	// item 2: 17 runs -> 3 front points
}

// ExampleNewSweepPool shares one resident worker pool across several
// batches — the long-running daemon shape — with results identical to
// per-call pools.
func ExampleNewSweepPool() {
	pool := sched.NewSweepPool(2)
	defer pool.Close()
	grid, err := sched.SweepGeometricGrid(0.5, 8, 4)
	if err != nil {
		panic(err)
	}
	for batch := range 2 {
		err := sched.SweepBatch(context.Background(),
			sched.BatchOf(exampleItems()...),
			sched.BatchConfig{Config: sched.SweepConfig{Deltas: grid}, Pool: pool},
			func(br sched.BatchResult) error {
				if br.Err != nil {
					return br.Err
				}
				if br.Index == 0 {
					fmt.Printf("batch %d item 0: front %v\n", batch, br.Result.FrontValues())
				}
				return nil
			})
		if err != nil {
			panic(err)
		}
	}
	// Output:
	// batch 0 item 0: front [(Cmax=11, Mmax=9)]
	// batch 1 item 0: front [(Cmax=11, Mmax=9)]
}

// Quickstart: build a small instance, run both algorithm families and
// print the schedules. This is the README example, runnable as
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	sched "storagesched"
)

func main() {
	// Eight tasks on four processors. Task i runs for p[i] time units
	// and keeps s[i] memory units resident on its processor for the
	// whole run (code/results storage, as in the paper's model).
	in := sched.NewInstance(4,
		[]sched.Time{9, 4, 6, 2, 7, 3, 8, 5},
		[]sched.Mem{3, 8, 1, 5, 2, 9, 4, 6})

	rec := sched.BoundsForInstance(in)
	fmt.Printf("lower bounds: Cmax >= %d, Mmax >= %d\n\n", rec.CmaxLB, rec.MmaxLB)

	// --- SBO (Algorithm 1): pick the tradeoff with delta. ---------
	// delta = 1 balances both objectives: guarantee (2rho, 2rho).
	res, err := sched.SBOWithLPT(in, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	rc, rm := sched.SBORatio(1.0, sched.LPT{}.Ratio(in.M), sched.LPT{}.Ratio(in.M))
	fmt.Printf("SBO(delta=1, LPT sub-algorithm): guarantee (%.2f, %.2f)\n", rc, rm)
	fmt.Printf("achieved: Cmax=%d Mmax=%d\n", res.Cmax, res.Mmax)
	if err := sched.RenderAssignment(os.Stdout, in, res.Assignment, sched.GanttOptions{Width: 40, ShowMemory: true}); err != nil {
		log.Fatal(err)
	}

	// --- RLS (Algorithm 2) on the same tasks, tri-objective. ------
	// delta = 3 caps every processor at 3x the memory lower bound
	// and additionally guarantees the mean completion time (SPT
	// order, Corollary 4).
	rls, err := sched.RLSIndependent(in, 3.0, sched.TieSPT)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRLS(delta=3, SPT): guarantees (Cmax %.2f, Mmax %.2f, SumCi %.2f)\n",
		sched.RLSCmaxRatio(3, in.M), 3.0, sched.RLSSumCiRatio(3))
	fmt.Printf("achieved: Cmax=%d Mmax=%d SumCi=%d (optimal SumCi=%d)\n",
		rls.Cmax, rls.Mmax, rls.SumCi, rec.SumCiLB)
	if err := sched.RenderGantt(os.Stdout, rls.Schedule, sched.GanttOptions{Width: 40, ShowMemory: true}); err != nil {
		log.Fatal(err)
	}

	// --- The original constrained problem (Section 7). ------------
	budget := 2 * rec.MmaxLB
	a, v, err := sched.ConstrainedIndependent(in, budget)
	if err != nil {
		log.Fatal(err)
	}
	_ = a
	fmt.Printf("\nconstrained: min Cmax s.t. Mmax <= %d  ->  Cmax=%d, Mmax=%d\n", budget, v.Cmax, v.Mmax)
}

// Grid physics batch: the large-physics motivation from the paper's
// introduction (ATLAS-style production on a grid site). Jobs store
// their output on the worker node that ran them; the site wants short
// total runs (Cmax), bounded per-node storage (Mmax) *and* early
// partial results (mean completion time) — the tri-objective setting
// of Section 5.2.
//
// The run has two parts:
//
//  1. the tri-objective RLS-SPT sweep over delta, which shows a finding
//     worth knowing: on statistically mixed batches the storage
//     guarantee is nearly free (measured Mmax sits close to the lower
//     bound whatever delta allows — delta is worst-case protection);
//
//  2. a hard per-node storage budget sweep (the Section 7 constrained
//     problem), where tight budgets genuinely cost makespan and mean
//     completion time — the practical tradeoff a site operator tunes.
//
//     go run ./examples/gridphysics
package main

import (
	"errors"
	"fmt"
	"log"

	sched "storagesched"
)

func main() {
	const (
		nJobs  = 250
		nNodes = 16
		seed   = 7
	)
	in := sched.GenGridBatch(nJobs, nNodes, seed)
	rec := sched.BoundsForInstance(in)
	fmt.Printf("grid batch: %d jobs on %d worker nodes\n", in.N(), in.M)
	fmt.Printf("lower bounds: Cmax >= %d, per-node storage >= %d, SumCi >= %d\n\n",
		rec.CmaxLB, rec.MmaxLB, rec.SumCiLB)

	// Part 1 — tri-objective RLS-SPT (Corollary 4).
	fmt.Println("part 1: RLS-SPT delta sweep (guarantees vs measurements)")
	fmt.Printf("%6s | %8s %18s | %8s %14s | %8s %14s\n",
		"delta", "Cmax", "ratio (bound)", "Mmax", "ratio (bound)", "meanCi", "ratio (bound)")
	for _, delta := range []float64{2.5, 3, 4, 10} {
		res, err := sched.RLSIndependent(in, delta, sched.TieSPT)
		if err != nil {
			log.Fatal(err)
		}
		meanCi := float64(res.SumCi) / float64(in.N())
		optMean := float64(rec.SumCiLB) / float64(in.N())
		fmt.Printf("%6.1f | %8d %8.4f (%6.3f) | %8d %6.4f (%4.1f) | %8.0f %6.4f (%5.2f)\n",
			delta,
			res.Cmax, float64(res.Cmax)/float64(rec.CmaxLB), sched.RLSCmaxRatio(delta, in.M),
			res.Mmax, float64(res.Mmax)/float64(rec.MmaxLB), delta,
			meanCi, meanCi/optMean, sched.RLSSumCiRatio(delta))
	}
	fmt.Println("finding: measured ratios sit far below every bound and barely move —")
	fmt.Println("on mixed batches, storage balance comes almost for free; delta is insurance.")

	// Part 2 — hard per-node storage budgets (Section 7).
	fmt.Println("\npart 2: hard per-node storage budget sweep (constrained solver)")
	fmt.Printf("%10s | %10s %8s | %12s | %10s %8s\n",
		"budget", "Cmax", "ratio", "store used", "meanCi", "ratio")
	for _, mult := range []float64{1.02, 1.05, 1.1, 1.2, 1.5, 2.0} {
		budget := sched.Mem(float64(rec.MmaxLB) * mult)
		a, v, err := sched.ConstrainedIndependent(in, budget)
		if errors.Is(err, sched.ErrNotCertified) {
			fmt.Printf("%7.2fxLB | %10s\n", mult, "no placement found (hard band)")
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		sc := sched.ScheduleFromAssignmentSPT(in, a)
		meanCi := float64(sc.SumCi()) / float64(in.N())
		optMean := float64(rec.SumCiLB) / float64(in.N())
		fmt.Printf("%7.2fxLB | %10d %8.4f | %7d/%4d | %10.0f %8.4f\n",
			mult, v.Cmax, float64(v.Cmax)/float64(rec.CmaxLB),
			v.Mmax, budget, meanCi, meanCi/optMean)
	}
	fmt.Println("tight budgets force output concentration trade-offs; from ~1.2xLB the")
	fmt.Println("constraint stops binding and both time objectives reach their optima.")

	// Users watching for early results: completion profile of the
	// first decile under the tightest feasible budget vs no budget.
	tightBudget := sched.Mem(float64(rec.MmaxLB) * 1.05)
	aTight, _, err := sched.ConstrainedIndependent(in, tightBudget)
	if err != nil {
		// Fall back to a looser budget if 1.05x is uncertifiable on
		// this seed.
		aTight, _, err = sched.ConstrainedIndependent(in, sched.Mem(float64(rec.MmaxLB)*1.2))
		if err != nil {
			log.Fatal(err)
		}
	}
	free, err := sched.RLSIndependent(in, 10, sched.TieSPT)
	if err != nil {
		log.Fatal(err)
	}
	k := in.N() / 10
	fmt.Printf("\nfirst 10%% of jobs finished by: t=%d (tight budget) vs t=%d (no budget)\n",
		decileCompletion(sched.ScheduleFromAssignmentSPT(in, aTight), k),
		decileCompletion(free.Schedule, k))
}

// decileCompletion returns the time by which k jobs have completed.
func decileCompletion(sc *sched.Schedule, k int) sched.Time {
	comps := make([]sched.Time, sc.N())
	for i := range comps {
		comps[i] = sc.Completion(i)
	}
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && comps[j] < comps[j-1]; j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
	if k < 1 {
		k = 1
	}
	return comps[k-1]
}

// Multi-SoC code placement: the embedded scenario from the paper's
// introduction. Each SoC processor has a hard per-processor storage
// capacity for instruction code; tasks carry their code size and must
// be placed so that no SoC overflows while the schedule stays short.
//
// The run shows the Section 7 resolution of the constrained problem:
//
//   - budgets below the Graham bound are proven infeasible,
//
//   - budgets >= 2*LB are always solved,
//
//   - in between, the solver either finds a placement or reports that
//     existence is unknown (the inapproximable band).
//
//     go run ./examples/soccodeplacement
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	sched "storagesched"
)

func main() {
	const (
		nRoutines = 60 // routines to place
		nSoC      = 6  // SoC processors
		seed      = 42
	)
	// The embedded mix: many small routines, a few big replicated
	// kernels (bimodal code sizes), short execution bursts.
	in := sched.GenEmbeddedCode(nRoutines, nSoC, seed)
	lb := sched.MemLB(in.S(), in.M)
	rec := sched.BoundsForInstance(in)
	fmt.Printf("multi-SoC instance: %d routines on %d SoCs\n", in.N(), in.M)
	fmt.Printf("code-store lower bound per SoC: %d units; makespan lower bound: %d\n\n", lb, rec.CmaxLB)

	// Sweep hardware capacities from impossibly small to generous.
	for _, mult := range []float64{0.8, 1.0, 1.1, 1.3, 1.6, 2.0, 3.0} {
		capacity := sched.Mem(float64(lb) * mult)
		a, v, err := sched.ConstrainedIndependent(in, capacity)
		switch {
		case errors.Is(err, sched.ErrInfeasible):
			fmt.Printf("capacity %5d (%.1fxLB): provably infeasible (below the Graham bound)\n", capacity, mult)
			continue
		case errors.Is(err, sched.ErrNotCertified):
			fmt.Printf("capacity %5d (%.1fxLB): no placement found; existence unknown (hard band)\n", capacity, mult)
			continue
		case err != nil:
			log.Fatal(err)
		}
		_ = a
		fmt.Printf("capacity %5d (%.1fxLB): placed; Cmax=%d (%.3fxLB), worst SoC store %d/%d\n",
			capacity, mult, v.Cmax, float64(v.Cmax)/float64(rec.CmaxLB), v.Mmax, capacity)
	}

	// Show the placement for the 1.6x capacity in detail.
	capacity := sched.Mem(float64(lb) * 1.6)
	a, v, err := sched.ConstrainedIndependent(in, capacity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplacement at capacity %d (Cmax=%d, Mmax=%d):\n", capacity, v.Cmax, v.Mmax)
	if err := sched.RenderAssignment(os.Stdout, in, a, sched.GanttOptions{Width: 64, ShowMemory: true}); err != nil {
		log.Fatal(err)
	}
}

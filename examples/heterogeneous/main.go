// Heterogeneous cluster: the "non identical processors" extension from
// the paper's concluding remarks. A site mixes fast and slow worker
// nodes (uniform/related machines); storage capacity does NOT scale
// with speed, so memory pressure concentrates on the fast nodes that
// attract more work — the guarantee pair degrades from
// ((1+d)r, (1+1/d)r) to ((1+d)r, (1+Q/d)r) with Q the speed spread.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	sched "storagesched"
)

func main() {
	const (
		nJobs = 120
		seed  = 13
	)
	// 8 nodes: four fast (speed 4), four slow (speed 1): Q = 4.
	speeds := sched.Speeds{4, 4, 4, 4, 1, 1, 1, 1}
	in := sched.GenGridBatch(nJobs, len(speeds), seed)

	fmt.Printf("heterogeneous cluster: %d jobs, speeds %v (spread Q=%.0f)\n\n",
		in.N(), speeds, speeds.Spread())

	fmt.Println("SBOUniform delta sweep (worst-case pair: Cmax <= (1+d)C, Mmax <= (1+Q/d)M):")
	fmt.Printf("%6s | %10s %10s | %10s %12s\n", "delta", "Cmax", "(1+d)C", "Mmax", "(1+Q/d)M")
	for _, delta := range []float64{0.5, 1, 2, 4, 8} {
		res, err := sched.SBOUniform(in, speeds, delta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.1f | %10.1f %10.1f | %10d %12.1f\n",
			delta, res.Cmax.Float(), res.CmaxBound(), res.Mmax, res.MmaxBound())
	}
	fmt.Println("\nsmall delta favours the speed-aware time schedule; large delta")
	fmt.Println("pushes storage-heavy jobs to the storage-balanced placement.")

	// RLSUniform keeps the unchanged memory guarantee Mmax <= d*LB.
	fmt.Println("\nRLSUniform (memory capped at d*LB, earliest completion first):")
	for _, delta := range []float64{2, 3, 6} {
		res, err := sched.RLSUniform(in, speeds, delta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  d=%.0f: Cmax=%.1f Mmax=%d (cap %d, LB %d)\n",
			delta, res.Cmax.Float(), res.Mmax, res.Cap, res.LB)
	}

	// Sanity: the identical-speed special case recovers the paper.
	flat := make(sched.Speeds, len(speeds))
	for i := range flat {
		flat[i] = 1
	}
	res, err := sched.SBOUniform(in, flat, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nidentical speeds (Q=1, delta=1): guarantee pair collapses to the paper's (2C, 2M): "+
		"Cmax=%.0f<=%.0f Mmax=%d<=%.0f\n",
		res.Cmax.Float(), res.CmaxBound(), res.Mmax, res.MmaxBound())
}

// DAG pipeline: precedence-constrained scheduling with storage limits,
// the embedded-system setting of Section 5. A staged fork-join
// pipeline (sensor frontend -> parallel filters -> fusion -> ...) is
// scheduled with RLS across a sweep of the storage-degradation
// parameter delta, showing the Corollary 3 tradeoff and the marked-
// processor accounting of Lemma 4.
//
//	go run ./examples/dagpipeline
package main

import (
	"fmt"
	"log"
	"os"

	sched "storagesched"
)

func main() {
	const (
		nProcs = 6
		stages = 8
		width  = 5
		seed   = 3
	)
	g := sched.GenForkJoin(nProcs, stages, width, seed)
	rec, err := sched.BoundsForGraph(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline DAG: %d tasks, %d arcs, %d processors\n", g.N(), g.NumEdges(), g.M)
	fmt.Printf("lower bounds: critical path %d, work/m %d, memory %d\n\n",
		rec.CriticalPath, rec.WorkOverM, rec.MmaxLB)

	fmt.Printf("%6s | %8s %9s %9s | %8s %7s | %7s %7s\n",
		"delta", "Cmax", "ratio", "bound", "Mmax", "ratio", "marked", "limit")
	for _, delta := range []float64{2.2, 2.5, 3, 4, 6, 10} {
		res, err := sched.RLS(g, delta, sched.TieBottomLevel)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Schedule.Validate(g.PredLists()); err != nil {
			log.Fatalf("invalid schedule: %v", err)
		}
		fmt.Printf("%6.1f | %8d %9.4f %9.4f | %8d %7.4f | %7d %7d\n",
			delta,
			res.Cmax, float64(res.Cmax)/float64(rec.CmaxLB), sched.RLSCmaxRatio(delta, g.M),
			res.Mmax, float64(res.Mmax)/float64(rec.MmaxLB),
			res.MarkedCount(), int(float64(g.M)/(delta-1)))
	}

	fmt.Println("\nthe delta knob trades storage balance against schedule length;")
	fmt.Println("'marked' counts processors ever refused for memory (Lemma 4 caps it).")

	// Render the tightest schedule.
	res, err := sched.RLS(g, 2.5, sched.TieBottomLevel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nschedule at delta=2.5:\n")
	if err := sched.RenderGantt(os.Stdout, res.Schedule, sched.GanttOptions{Width: 72}); err != nil {
		log.Fatal(err)
	}

	// Hard storage budget on the DAG (Section 7).
	budget := 2 * rec.MmaxLB
	cres, err := sched.ConstrainedDAG(g, budget, sched.TieBottomLevel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhard budget %d: Cmax=%d, Mmax=%d (within budget: %v)\n",
		budget, cres.Cmax, cres.Mmax, cres.Mmax <= budget)
}

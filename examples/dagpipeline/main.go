// DAG pipeline: precedence-constrained scheduling with storage limits,
// the embedded-system setting of Section 5. A staged fork-join
// pipeline (sensor frontend -> parallel filters -> fusion -> ...) is
// swept across a δ-grid with the graph-sweep engine: SweepGraph runs
// every RLS tie-break at every δ ≥ 2 against memoized per-graph state
// and assembles the approximate (Cmax, Mmax) Pareto front, so the
// Corollary 3 trade-off appears as a front walk instead of a manual
// δ-loop.
//
//	go run ./examples/dagpipeline
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	sched "storagesched"
)

func main() {
	const (
		nProcs = 4
		stages = 4
		width  = 10
		seed   = 3
	)
	g := sched.GenForkJoin(nProcs, stages, width, seed)
	rec, err := sched.BoundsForGraph(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline DAG: %d tasks, %d arcs, %d processors\n", g.N(), g.NumEdges(), g.M)
	fmt.Printf("lower bounds: critical path %d, work/m %d, memory %d\n\n",
		rec.CriticalPath, rec.WorkOverM, rec.MmaxLB)

	// One sweep call replaces the per-δ loop: all four tie-breaks at
	// every δ ≥ 2, topological structure and tie orders prepared once.
	grid, err := sched.SweepGeometricGrid(2.2, 10, 8)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sched.SweepGraph(context.Background(), g, sched.SweepConfig{Deltas: grid})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep: %d RLS runs -> %d front points\n\n", len(res.Runs), len(res.Front))
	fmt.Printf("%-10s %-10s %-9s %-9s %s\n", "Cmax", "Mmax", "Cmax/LB", "Mmax/LB", "witness")
	for _, p := range res.Front {
		fmt.Printf("%-10d %-10d %-9.4f %-9.4f %s\n",
			p.Value.Cmax, p.Value.Mmax,
			float64(p.Value.Cmax)/float64(rec.CmaxLB),
			float64(p.Value.Mmax)/float64(rec.MmaxLB),
			res.Runs[p.RunIndex].Label())
	}
	fmt.Println("\nwalking the front trades storage balance against schedule length;")
	fmt.Println("every point is a Lemma 4/5-certified RLS schedule of the pipeline.")

	// Per-run analysis is retained: the Lemma 4 marked-processor cap
	// holds at every grid point.
	for _, r := range res.Runs {
		if limit := int(float64(g.M) / (r.Delta - 1)); r.RLS.MarkedCount() > limit {
			log.Fatalf("%s: %d marked processors exceed the Lemma 4 cap %d",
				r.Label(), r.RLS.MarkedCount(), limit)
		}
	}

	// Render the witness of the tightest-memory front point (the last
	// front entry has the smallest Mmax).
	best := res.Front[len(res.Front)-1]
	run := res.Runs[best.RunIndex]
	if err := run.RLS.Schedule.Validate(g.PredLists()); err != nil {
		log.Fatalf("invalid schedule: %v", err)
	}
	fmt.Printf("\nschedule of %s (tightest memory on the front):\n", run.Label())
	if err := sched.RenderGantt(os.Stdout, run.RLS.Schedule, sched.GanttOptions{Width: 72}); err != nil {
		log.Fatal(err)
	}

	// Hard storage budget on the DAG (Section 7): the constrained
	// solver reuses the same RLS machinery with an explicit cap.
	budget := 2 * rec.MmaxLB
	cres, err := sched.ConstrainedDAG(g, budget, sched.TieBottomLevel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhard budget %d: Cmax=%d, Mmax=%d (within budget: %v)\n",
		budget, cres.Cmax, cres.Mmax, cres.Mmax <= budget)
}

package storagesched

// Cross-module integration tests: each walks a realistic pipeline
// through several subsystems and checks the joints, not the units.

import (
	"bytes"
	"math/rand"
	"testing"
)

// gen -> SBO -> schedule -> CSV -> replay: the full "schedule a batch
// and audit it" round trip.
func TestIntegrationScheduleAuditRoundTrip(t *testing.T) {
	in := GenGridBatch(60, 8, 4)
	res, err := SBOWithLPT(in, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sc := ScheduleFromAssignmentSPT(in, res.Assignment)

	var csvBuf bytes.Buffer
	if err := WriteScheduleCSV(&csvBuf, sc); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScheduleCSV(&csvBuf, in.M)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplaySchedule(back, nil, 0)
	if err != nil {
		t.Fatalf("replay of round-tripped schedule: %v", err)
	}
	if rep.Cmax != res.Cmax || rep.Mmax != res.Mmax {
		t.Errorf("replay objectives (%d,%d) != SBO result (%d,%d)",
			rep.Cmax, rep.Mmax, res.Cmax, res.Mmax)
	}
}

// gen DAG -> RLS -> replay with the RLS cap: the simulator must accept
// exactly the budget the algorithm promised.
func TestIntegrationRLSCapHonouredBySimulator(t *testing.T) {
	g := GenLayeredDAG(6, 10, 4, 2)
	res, err := RLS(g, 2.5, TieBottomLevel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplaySchedule(res.Schedule, g.PredLists(), res.Cap); err != nil {
		t.Fatalf("simulator rejected an RLS schedule under its own cap: %v", err)
	}
	// A budget one unit below the achieved Mmax must be rejected.
	if res.Mmax > 0 {
		if _, err := ReplaySchedule(res.Schedule, g.PredLists(), res.Mmax-1); err == nil {
			t.Error("simulator accepted a busted budget")
		}
	}
}

// instance CSV -> constrained solve -> Pareto cross-check on a small
// instance: the solver's point must not dominate the exact front.
func TestIntegrationConstrainedVsExactFront(t *testing.T) {
	in := GenUniform(10, 3, 11)
	var buf bytes.Buffer
	if err := WriteInstanceCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstanceCSV(&buf, in.M)
	if err != nil {
		t.Fatal(err)
	}
	front, err := ParetoFront(back)
	if err != nil {
		t.Fatal(err)
	}
	lb := MemLB(back.S(), back.M)
	a, v, err := ConstrainedIndependent(back, 2*lb)
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	for _, p := range front {
		if v.Dominates(p.Value) {
			t.Fatalf("heuristic value %v dominates exact front point %v", v, p.Value)
		}
	}
}

// conditional graph -> induced scenario -> RLS -> replay: scenario
// schedules honour precedence and the memory bound end to end.
func TestIntegrationConditionalScenarioPipeline(t *testing.T) {
	g := GenForkJoin(4, 5, 4, 6)
	cg := NewCondGraph(g)
	added := 0
	for v := 0; v < g.N() && added < 2; v++ {
		succs := g.Succs(v)
		if len(succs) >= 3 {
			if err := cg.AddBranch(v, [][]int{{succs[0]}, {succs[1]}}, []float64{0.5, 0.5}); err != nil {
				t.Fatal(err)
			}
			added++
		}
	}
	if added == 0 {
		t.Fatal("no branch sites")
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		scen := SampleScenario(cg, rng)
		ind, _ := InducedGraph(cg, scen)
		if ind.N() == 0 {
			continue
		}
		res, err := RLS(ind, 3, TieBottomLevel)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ReplaySchedule(res.Schedule, ind.PredLists(), res.Cap); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// online arrivals -> replay: the online scheduler's output is a valid
// schedule under the same budget in the simulator.
func TestIntegrationOnlinePipeline(t *testing.T) {
	in := GenEmbeddedCode(50, 6, 9)
	lb := MemLB(in.S(), in.M)
	cap := 3 * lb
	rng := rand.New(rand.NewSource(1))
	tasks := make([]OnlineTask, in.N())
	for i, task := range in.Tasks {
		tasks[i] = OnlineTask{P: task.P, S: task.S, Release: rng.Int63n(100)}
	}
	res, err := OnlineRLS(tasks, in.M, cap)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplaySchedule(res.Schedule, nil, cap)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Cmax != res.Cmax || rep.Mmax != res.Mmax {
		t.Errorf("replay (%d,%d) != online result (%d,%d)", rep.Cmax, rep.Mmax, res.Cmax, res.Mmax)
	}
}

// delta sweep front -> all witnesses replayable; epsilon vs exact on a
// small instance within the sweep envelope.
func TestIntegrationGeneratedFrontPipeline(t *testing.T) {
	in := GenUniform(9, 3, 21)
	approx, err := GenerateFront(in, FrontOptions{Steps: 16, IncludeRLS: true, ConstrainedProbes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(approx) == 0 {
		t.Fatal("empty generated front")
	}
	for _, p := range approx {
		sc := ScheduleFromAssignment(in, p.Assignment)
		if _, err := ReplaySchedule(sc, nil, 0); err != nil {
			t.Fatalf("witness replay: %v", err)
		}
	}
	exact, err := ParetoFront(in)
	if err != nil {
		t.Fatal(err)
	}
	var exactVals, approxVals []Value
	for _, p := range exact {
		exactVals = append(exactVals, p.Value)
	}
	for _, p := range approx {
		approxVals = append(approxVals, p.Value)
	}
	if eps := FrontEpsilon(approxVals, exactVals); eps > 0.75 {
		t.Errorf("front epsilon %.3f beyond the sweep envelope", eps)
	}
}

// uniform machines: SBOUniform assignment replays cleanly when mapped
// to a plain schedule at unit speed scaling (work = p on its machine).
func TestIntegrationUniformFacade(t *testing.T) {
	in := GenUniform(40, 6, 2)
	speeds := Speeds{1, 1, 2, 2, 4, 4}
	res, err := SBOUniform(in, speeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ValidateAssignment(res.Assignment); err != nil {
		t.Fatal(err)
	}
	got := UniformCmax(in.P(), speeds, res.Assignment)
	if got.Float() != res.Cmax.Float() {
		t.Errorf("UniformCmax %g != result %g", got.Float(), res.Cmax.Float())
	}
}

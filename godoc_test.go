package storagesched_test

// The facade is the documented surface of the module: every exported
// symbol in storagesched.go / extensions.go must carry a godoc
// comment, and type and function docs must start with the symbol name
// (the go doc convention, so `go doc storagesched.Foo` reads as a
// sentence). The AST inspection lives in internal/lint as the
// docconvention analyzer — shared with `go vet -vettool=schedlint` —
// and this test is a thin wrapper keeping the facade gate in plain
// `go test`.

import (
	"go/parser"
	"go/token"
	"testing"

	"storagesched/internal/lint"
)

func TestFacadeGodoc(t *testing.T) {
	fset := token.NewFileSet()
	for _, file := range []string{"storagesched.go", "extensions.go"} {
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		lint.CheckFileDocs(fset, f, func(pos token.Pos, msg string) {
			t.Errorf("%s: %s", fset.Position(pos), msg)
		})
	}
}

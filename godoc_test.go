package storagesched_test

// The facade is the documented surface of the module: every exported
// symbol in storagesched.go / extensions.go must carry a godoc
// comment, and type and function docs must start with the symbol name
// (the go doc convention, so `go doc storagesched.Foo` reads as a
// sentence). Enforced by AST inspection since the repo carries no
// linter dependency.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// docText flattens a comment group to its text, "" when absent.
func docText(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	return strings.TrimSpace(cg.Text())
}

// startsWithName reports whether a doc comment begins with the symbol
// name (allowing a leading article is NOT allowed — the convention is
// the bare name).
func startsWithName(doc, name string) bool {
	return doc == name || strings.HasPrefix(doc, name+" ") ||
		strings.HasPrefix(doc, name+".") || strings.HasPrefix(doc, name+",") ||
		strings.HasPrefix(doc, name+":")
}

func TestFacadeGodoc(t *testing.T) {
	fset := token.NewFileSet()
	for _, file := range []string{"storagesched.go", "extensions.go"} {
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !d.Name.IsExported() {
					continue
				}
				doc := docText(d.Doc)
				if doc == "" {
					t.Errorf("%s: exported func %s has no doc comment", file, d.Name.Name)
				} else if !startsWithName(doc, d.Name.Name) {
					t.Errorf("%s: doc for func %s does not start with its name: %q", file, d.Name.Name, firstLine(doc))
				}
			case *ast.GenDecl:
				checkGenDecl(t, file, d)
			}
		}
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func checkGenDecl(t *testing.T, file string, d *ast.GenDecl) {
	t.Helper()
	declDoc := docText(d.Doc)
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			ts := spec.(*ast.TypeSpec)
			if !ts.Name.IsExported() {
				continue
			}
			// Grouped specs document themselves; a single spec may use
			// the declaration's doc.
			doc := docText(ts.Doc)
			if doc == "" && len(d.Specs) == 1 {
				doc = declDoc
			}
			if doc == "" {
				t.Errorf("%s: exported type %s has no doc comment", file, ts.Name.Name)
			} else if !startsWithName(doc, ts.Name.Name) {
				t.Errorf("%s: doc for type %s does not start with its name: %q", file, ts.Name.Name, firstLine(doc))
			}
		}
	case token.CONST, token.VAR:
		// Grouped constants/vars may share one declaration doc; each
		// exported spec must be covered by either its own doc, a line
		// comment, or the group doc.
		for _, spec := range d.Specs {
			vs := spec.(*ast.ValueSpec)
			for _, name := range vs.Names {
				if !name.IsExported() {
					continue
				}
				if declDoc == "" && docText(vs.Doc) == "" && docText(vs.Comment) == "" {
					t.Errorf("%s: exported %s %s has no doc comment (own or group)", file, d.Tok, name.Name)
				}
			}
		}
	}
}

package storagesched

// One benchmark per figure and claim of the paper (regenerating the
// corresponding experiment end to end; see DESIGN.md §4 and
// EXPERIMENTS.md), plus microbenchmarks of every algorithm at the
// sizes the experiments use. Run with:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFIG3 -benchmem   # one figure only

import (
	"context"
	"fmt"
	"io"
	"iter"
	"runtime"
	"testing"

	"storagesched/internal/cache"
	"storagesched/internal/core"
	"storagesched/internal/dag"
	"storagesched/internal/engine"
	"storagesched/internal/exp"
	"storagesched/internal/gen"
	"storagesched/internal/hardness"
	"storagesched/internal/makespan"
	"storagesched/internal/model"
	"storagesched/internal/pareto"
	"storagesched/internal/refine"
	"storagesched/internal/serve"
)

// benchExperiment regenerates one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// Figures.

func BenchmarkFIG1(b *testing.B) { benchExperiment(b, "FIG1") }
func BenchmarkFIG2(b *testing.B) { benchExperiment(b, "FIG2") }
func BenchmarkFIG3(b *testing.B) { benchExperiment(b, "FIG3") }

// Quantitative claims.

func BenchmarkPROP12(b *testing.B) { benchExperiment(b, "PROP12") }
func BenchmarkCOR1(b *testing.B)   { benchExperiment(b, "COR1") }
func BenchmarkLEM12(b *testing.B)  { benchExperiment(b, "LEM12") }
func BenchmarkLEM3(b *testing.B)   { benchExperiment(b, "LEM3") }
func BenchmarkCOR23(b *testing.B)  { benchExperiment(b, "COR23") }
func BenchmarkLEM6(b *testing.B)   { benchExperiment(b, "LEM6") }
func BenchmarkCOR4(b *testing.B)   { benchExperiment(b, "COR4") }
func BenchmarkSEC7(b *testing.B)   { benchExperiment(b, "SEC7") }

// Ablations.

func BenchmarkABL1(b *testing.B) { benchExperiment(b, "ABL1") }
func BenchmarkABL2(b *testing.B) { benchExperiment(b, "ABL2") }
func BenchmarkABL3(b *testing.B) { benchExperiment(b, "ABL3") }

// Extensions (the paper's future-work directions, built out).

func BenchmarkEXT1(b *testing.B) { benchExperiment(b, "EXT1") }
func BenchmarkEXT2(b *testing.B) { benchExperiment(b, "EXT2") }
func BenchmarkEXT3(b *testing.B) { benchExperiment(b, "EXT3") }
func BenchmarkEXT4(b *testing.B) { benchExperiment(b, "EXT4") }

// Sweep engine.

func BenchmarkSWEEP(b *testing.B)    { benchExperiment(b, "SWEEP") }
func BenchmarkDAGSWEEP(b *testing.B) { benchExperiment(b, "DAGSWEEP") }

// benchSweep runs the acceptance workload — a 32-point δ-grid over a
// 200-task instance, SBO plus all four RLS tie-breaks — at a fixed
// worker count. Compare the serial and parallel variants for the
// engine's speedup (parallel is expected ≥ 2× serial on ≥ 4 cores):
//
//	go test -bench 'BenchmarkSweep_(Serial|Parallel)' -benchtime=2s
func benchGrid(b *testing.B, g []float64, err error) []float64 {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchSweep(b *testing.B, workers int) {
	in := gen.Uniform(200, 16, 1)
	grid, err := engine.GeometricGrid(0.25, 8, 32)
	cfg := engine.Config{
		Deltas:  benchGrid(b, grid, err),
		Workers: workers,
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Sweep(ctx, in, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweep_Serial(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkSweep_Parallel(b *testing.B) { benchSweep(b, runtime.NumCPU()) }

func BenchmarkSweep_Parallel_n1000(b *testing.B) {
	in := gen.Uniform(1000, 32, 1)
	grid, err := engine.GeometricGrid(0.25, 8, 32)
	cfg := engine.Config{Deltas: benchGrid(b, grid, err)}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Sweep(ctx, in, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Batched sweeps: the acceptance workload is 50 instances through one
// shared pool versus 50 back-to-back Sweep calls at the same worker
// count. A back-to-back Sweep pays a serial preparation phase plus a
// pool tail (idle workers on the last round of jobs) per instance —
// with 10 jobs per instance the pool drains every few rounds — while
// the batch interleaves jobs across instances so neither gap exists.
// The gain is a multi-core effect (≥1.5× expected at 4+ cores); on a
// single-CPU machine both run at the work-sum rate.
//
//	go test -bench 'BenchmarkSweep(Batch|Sequential)' -benchtime=3x

const sweepBatchInstances = 50

func sweepBatchWorkload(b *testing.B) ([]*model.Instance, engine.Config) {
	b.Helper()
	ins := make([]*model.Instance, sweepBatchInstances)
	for i := range ins {
		ins[i] = gen.Uniform(120, 8, int64(i+1))
	}
	// Two grid points ≥ 2: one SBO plus four RLS tie-break jobs each —
	// the small-jobs-per-instance regime batching exists for.
	grid, err := engine.GeometricGrid(2.5, 8, 2)
	return ins, engine.Config{Deltas: benchGrid(b, grid, err), Workers: runtime.NumCPU()}
}

func BenchmarkSweepBatch_n50(b *testing.B) {
	ins, cfg := sweepBatchWorkload(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emitted := 0
		err := engine.SweepBatch(ctx, engine.BatchOf(ins...), engine.BatchConfig{Config: cfg},
			func(br engine.BatchResult) error {
				if br.Err != nil {
					return br.Err
				}
				emitted++
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
		if emitted != len(ins) {
			b.Fatalf("emitted %d fronts, want %d", emitted, len(ins))
		}
	}
}

// Adaptive batch sweeps: the 50-instance workload through the
// two-pass refinement pipeline (coarse pass, bend detection, targeted
// second pass, merged fronts). Tracked in the BENCH_sweep.json
// artifact next to the fixed-grid batch benchmarks: the adaptive cost
// should stay within a small factor of a fixed-grid sweep of the same
// total run count, since both passes share one pool configuration.
func BenchmarkSweepBatchAdaptive_n50(b *testing.B) {
	ins := make([]*model.Instance, sweepBatchInstances)
	for i := range ins {
		ins[i] = gen.Uniform(120, 8, int64(i+1))
	}
	// A coarse 4-point grid whose fronts leave refinable gaps; the
	// refinement pass adds up to 8 δ values per instance.
	grid, err := engine.GeometricGrid(0.5, 8, 4)
	cfg := engine.BatchConfig{Config: engine.Config{Deltas: benchGrid(b, grid, err), Workers: runtime.NumCPU()}}
	rcfg := refine.Config{Gap: 0.05, MaxPoints: 8}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emitted := 0
		err := refine.SweepBatchAdaptive(ctx, engine.BatchOf(ins...), cfg, rcfg,
			func(br engine.BatchResult) error {
				if br.Err != nil {
					return br.Err
				}
				emitted++
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
		if emitted != len(ins) {
			b.Fatalf("emitted %d fronts, want %d", emitted, len(ins))
		}
	}
}

// DAG batch sweeps: 30 layered graphs through one shared pool — the
// graph analogue of BenchmarkSweepBatch_n50, tracking the prepared-RLS
// path (memoized topological structure and tie ranks) in the
// BENCH_sweep.json artifact. Matched by the CI `-bench BenchmarkSweep`
// pattern alongside the instance benchmarks.
func BenchmarkSweepBatchDAG_n30(b *testing.B) {
	graphs := make([]*dag.Graph, 30)
	for i := range graphs {
		graphs[i] = gen.LayeredDAG(8, 25, 4, int64(i+1)) // 100 nodes each
	}
	grid, err := engine.GeometricGrid(2.5, 8, 2)
	cfg := engine.Config{Deltas: benchGrid(b, grid, err), Workers: runtime.NumCPU()}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emitted := 0
		err := engine.SweepBatch(ctx, engine.BatchOfGraphs(graphs...), engine.BatchConfig{Config: cfg},
			func(br engine.BatchResult) error {
				if br.Err != nil {
					return br.Err
				}
				emitted++
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
		if emitted != len(graphs) {
			b.Fatalf("emitted %d fronts, want %d", emitted, len(graphs))
		}
	}
}

// Cached batch sweeps: the same 50-instance workload against a
// content-addressed front cache. Cold pays the full sweep plus hashing
// and write-back; warm serves every front from the cache — on a
// repeated-instance batch (re-running an experiment grid, re-sweeping
// a corpus across machines) the warm path is expected ≥ 5× the cold
// one, and the pair is tracked in the BENCH_sweep.json artifact.
//
//	go test -bench 'BenchmarkSweepBatchCached' -benchtime=3x

func benchSweepBatchCached(b *testing.B, c *cache.Cache) {
	ins, cfg := sweepBatchWorkload(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emitted := 0
		err := engine.SweepBatch(ctx, engine.BatchOf(ins...), engine.BatchConfig{Config: cfg, Cache: c},
			func(br engine.BatchResult) error {
				if br.Err != nil {
					return br.Err
				}
				emitted++
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
		if emitted != len(ins) {
			b.Fatalf("emitted %d fronts, want %d", emitted, len(ins))
		}
	}
}

func BenchmarkSweepBatchCachedCold_n50(b *testing.B) {
	// A fresh memory-only cache per iteration: every front misses, is
	// computed and written back — the full cold-path overhead.
	ins, cfg := sweepBatchWorkload(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := cache.New(cache.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		err = engine.SweepBatch(ctx, engine.BatchOf(ins...), engine.BatchConfig{Config: cfg, Cache: c},
			func(br engine.BatchResult) error { return br.Err })
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepBatchCachedWarm_n50(b *testing.B) {
	c, err := cache.New(cache.Config{})
	if err != nil {
		b.Fatal(err)
	}
	// Populate outside the timer, then measure the all-hit path.
	ins, cfg := sweepBatchWorkload(b)
	err = engine.SweepBatch(context.Background(), engine.BatchOf(ins...),
		engine.BatchConfig{Config: cfg, Cache: c},
		func(br engine.BatchResult) error { return br.Err })
	if err != nil {
		b.Fatal(err)
	}
	benchSweepBatchCached(b, c)
}

// The session layer: the same 50-instance workload through
// serve.Session — the code path shared by `schedcli sweepbatch` and
// the schedd daemon — with a resident pool and JSONL encoding to
// io.Discard. Measures the full request cost the daemon pays per sweep
// (decode-free: items arrive materialized) over the raw engine cost of
// BenchmarkSweepBatch_n50; tracked in the BENCH_sweep.json artifact.
func BenchmarkServeSweep_n50(b *testing.B) {
	ins, cfg := sweepBatchWorkload(b)
	var items iter.Seq2[engine.BatchItem, string] = func(yield func(engine.BatchItem, string) bool) {
		for i, in := range ins {
			if !yield(engine.BatchItem{Instance: in}, fmt.Sprintf("bench:%d", i+1)) {
				return
			}
		}
	}
	session := serve.NewSession(serve.SessionConfig{Workers: cfg.Workers, Resident: true})
	defer session.Close()
	spec := serve.SweepSpec{Deltas: cfg.Deltas}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := session.Sweep(ctx, items, spec, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if st.Items != len(ins) || st.Failed != 0 {
			b.Fatalf("emitted %d fronts (%d failed), want %d clean", st.Items, st.Failed, len(ins))
		}
	}
}

func BenchmarkSweepSequential_n50(b *testing.B) {
	ins, cfg := sweepBatchWorkload(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range ins {
			if _, err := engine.Sweep(ctx, in, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Algorithm microbenchmarks.

func benchSBO(b *testing.B, n, m int, alg makespan.Algorithm) {
	in := gen.Uniform(n, m, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SBO(in, 1.0, alg, alg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSBO_LS_n100(b *testing.B)   { benchSBO(b, 100, 8, makespan.ListScheduling{}) }
func BenchmarkSBO_LPT_n100(b *testing.B)  { benchSBO(b, 100, 8, makespan.LPT{}) }
func BenchmarkSBO_LPT_n1000(b *testing.B) { benchSBO(b, 1000, 32, makespan.LPT{}) }
func BenchmarkSBO_LPT_n10000(b *testing.B) {
	benchSBO(b, 10000, 64, makespan.LPT{})
}

func benchRLSDag(b *testing.B, n, m int) {
	g := gen.LayeredDAG(m, n/4, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RLS(g, 3.0, core.TieBottomLevel); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRLS_DAG_n100(b *testing.B)  { benchRLSDag(b, 100, 8) }
func BenchmarkRLS_DAG_n400(b *testing.B)  { benchRLSDag(b, 400, 16) }
func BenchmarkRLS_DAG_n1000(b *testing.B) { benchRLSDag(b, 1000, 32) }

func BenchmarkRLS_Independent_n1000(b *testing.B) {
	in := gen.Uniform(1000, 32, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RLSIndependent(in, 3.0, core.TieSPT); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstrainedIndependent_n200(b *testing.B) {
	in := gen.EmbeddedCode(200, 16, 1)
	lb := MemLB(in.S(), in.M)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.ConstrainedIndependent(in, 2*lb); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMakespan(b *testing.B, alg makespan.Algorithm, n, m int) {
	in := gen.Uniform(n, m, 1)
	sizes := in.P()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Assign(sizes, m)
	}
}

func BenchmarkMakespan_LS_n1000(b *testing.B)       { benchMakespan(b, makespan.ListScheduling{}, 1000, 32) }
func BenchmarkMakespan_LPT_n1000(b *testing.B)      { benchMakespan(b, makespan.LPT{}, 1000, 32) }
func BenchmarkMakespan_Multifit_n1000(b *testing.B) { benchMakespan(b, makespan.Multifit{}, 1000, 32) }
func BenchmarkMakespan_PTAS_eps50_n100(b *testing.B) {
	benchMakespan(b, makespan.PTAS{Epsilon: 0.5}, 100, 8)
}
func BenchmarkMakespan_PTAS_eps25_n40(b *testing.B) {
	benchMakespan(b, makespan.PTAS{Epsilon: 0.25}, 40, 8)
}

func BenchmarkMakespan_ExactDP_n16(b *testing.B) {
	in := gen.Uniform(16, 4, 1)
	sizes := in.P()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		makespan.ExactDP{}.Solve(sizes, 4)
	}
}

func BenchmarkMakespan_BnB_n24(b *testing.B) {
	in := gen.Uniform(24, 4, 1)
	sizes := in.P()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		makespan.BranchAndBound{}.Solve(sizes, 4)
	}
}

func BenchmarkParetoFront_n12(b *testing.B) {
	in := gen.Uniform(12, 3, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pareto.Front(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParetoFront_Lemma2_m3k3(b *testing.B) {
	in := hardness.Lemma2Instance(3, 3, 9*64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pareto.Front(in); err != nil {
			b.Fatal(err)
		}
	}
}

// Command schedlint is the repo's multichecker: it runs the
// internal/lint analyzer suite (determinism, exact-arithmetic,
// error-contract, panic-policy and doc-convention invariants — see
// docs/LINTING.md) in either of two modes.
//
// Standalone, over import-path patterns:
//
//	schedlint ./...
//	schedlint -detrange=false ./internal/serve
//
// As a vet tool, driven by cmd/go with per-package build-cache export
// data (the CI shape — fast and incremental):
//
//	go vet -vettool=$(pwd)/schedlint ./...
//
// Exit status: 0 clean, 1 findings, 2 operational failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"storagesched/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("schedlint", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: schedlint [-<analyzer>=false ...] [packages | unit.cfg]\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	version := fs.String("V", "", "print version and exit (-V=full for cmd/go)")
	flagsJSON := fs.Bool("flags", false, "print analyzer flags as JSON (for cmd/go) and exit")
	enabled := make(map[string]*bool)
	for _, a := range lint.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version != "" {
		lint.PrintVersion(os.Stdout, "schedlint")
		return 0
	}
	if *flagsJSON {
		lint.PrintFlags(os.Stdout, lint.All())
		return 0
	}
	var analyzers []*lint.Analyzer
	for _, a := range lint.All() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	rest := fs.Args()
	if lint.IsVetInvocation(rest) {
		return lint.RunVet(rest[len(rest)-1], analyzers, os.Stdout, os.Stderr)
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 2
	}
	diags, fset, err := lint.Load(dir, patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Printf("%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// startDaemon runs the daemon in-process on an ephemeral port and
// returns its base URL plus a shutdown func that drains it and
// reports run's exit error.
func startDaemon(t *testing.T, args ...string) (baseURL string, shutdown func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), io.Discard, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		cancel()
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return "http://" + addr, func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(15 * time.Second):
			return fmt.Errorf("daemon did not exit after drain")
		}
	}
}

// smokeEnvelopes builds the request body for the schedcli smoke
// testdata: one envelope per file, named by base name, in sorted order
// — exactly the items `sweepbatch -in testdata/smoke` sweeps, so the
// response must match the CLI golden byte for byte.
func smokeEnvelopes(t *testing.T) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join("..", "schedcli", "testdata", "smoke", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("no smoke testdata found")
	}
	var b strings.Builder
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "{\"source\":%q,\"item\":%s}\n", filepath.Base(name), data)
	}
	return b.String()
}

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "schedcli", "testdata", "golden", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestScheddGoldenOverHTTP: the daemon's streamed JSONL for the smoke
// batch must be byte-identical to the `schedcli sweepbatch` golden
// files — the same contract the CLI golden test pins, proven across
// the HTTP transport, for both the plain and the refined pipeline.
func TestScheddGoldenOverHTTP(t *testing.T) {
	base, shutdown := startDaemon(t, "-cache-mem", "64", "-workers", "2")
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	body := smokeEnvelopes(t)

	for _, tc := range []struct {
		golden string
		query  string
	}{
		{"sweepbatch.jsonl", "dmin=0.5&dmax=8&points=6"},
		{"sweepbatch_refine.jsonl", "dmin=0.5&dmax=8&points=6&refine=1&refine-gap=0.05&refine-max-points=6"},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			resp, err := http.Post(base+"/v1/sweep?"+tc.query, "application/jsonl", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			got, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, got)
			}
			if want := readGolden(t, tc.golden); !bytes.Equal(got, want) {
				t.Errorf("response differs from golden %s:\n got: %s\nwant: %s", tc.golden, got, want)
			}
			if failed := resp.Trailer.Get("X-Sweep-Failed"); failed != "0" {
				t.Errorf("X-Sweep-Failed = %q, want 0", failed)
			}
		})
	}
}

// TestScheddMetricsAndPprof: /metrics serves the Prometheus text
// families and advances across a sweep; /debug/pprof/ answers only
// when -pprof is set.
func TestScheddMetricsAndPprof(t *testing.T) {
	base, shutdown := startDaemon(t, "-cache-mem", "64", "-workers", "2", "-pprof")
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	scrape := func() string {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics = %d: %s", resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Fatalf("/metrics Content-Type = %q", ct)
		}
		return string(body)
	}

	before := scrape()
	if !strings.Contains(before, "sched_sweeps_completed_total 0") {
		t.Errorf("fresh daemon scrape missing zeroed sweep counter:\n%s", before)
	}

	resp, err := http.Post(base+"/v1/sweep?dmin=0.5&dmax=8&points=6", "application/jsonl", strings.NewReader(smokeEnvelopes(t)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	after := scrape()
	if !strings.Contains(after, "sched_sweeps_completed_total 1") {
		t.Errorf("scrape after one sweep did not advance:\n%s", after)
	}
	for _, family := range []string{"sched_sweep_items_total", "sched_engine_jobs_total", "sched_cache_puts_total"} {
		if !strings.Contains(after, family) {
			t.Errorf("scrape missing family %s", family)
		}
	}

	presp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Errorf("-pprof daemon /debug/pprof/cmdline = %d, want 200", presp.StatusCode)
	}
}

// TestScheddPprofOffByDefault: without -pprof the profile endpoints do
// not exist.
func TestScheddPprofOffByDefault(t *testing.T) {
	base, shutdown := startDaemon(t)
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	resp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("default daemon /debug/pprof/cmdline = %d, want 404", resp.StatusCode)
	}
}

// TestScheddAccessLog: the daemon's stderr stream carries one JSON
// access line per request, with the same ID the response returns.
func TestScheddAccessLog(t *testing.T) {
	var mu sync.Mutex
	var logbuf bytes.Buffer
	logw := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return logbuf.Write(p)
	})

	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0"}, logw, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		cancel()
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Error("response missing X-Request-ID header")
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("daemon exit: %v", err)
	}

	mu.Lock()
	logs := logbuf.String()
	mu.Unlock()
	var sawAccess bool
	for _, line := range strings.Split(strings.TrimSpace(logs), "\n") {
		var ev struct {
			Msg  string `json:"msg"`
			ID   string `json:"id"`
			Path string `json:"path"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		if ev.Msg == "request" && ev.Path == "/healthz" && ev.ID == id {
			sawAccess = true
		}
	}
	if !sawAccess {
		t.Errorf("no access line for /healthz request %q in logs:\n%s", id, logs)
	}
	for _, lifecycle := range []string{`"msg":"listening"`, `"msg":"drained"`} {
		if !strings.Contains(logs, lifecycle) {
			t.Errorf("logs missing lifecycle event %s:\n%s", lifecycle, logs)
		}
	}
}

// writerFunc adapts a function to io.Writer.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestScheddLifecycle: health and readiness probes respond, cache
// stats reflect a warm sweep, and cancellation drains the daemon to a
// clean exit.
func TestScheddLifecycle(t *testing.T) {
	base, shutdown := startDaemon(t, "-cache-mem", "64")

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", code)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz = %d, want 200", code)
	}
	if code, body := get("/v1/cache/stats"); code != http.StatusOK || !strings.Contains(body, `"enabled":true`) {
		t.Errorf("/v1/cache/stats = %d %q, want 200 with enabled:true", code, body)
	}

	// Sweep twice; the second run is served entirely from the warm
	// cache. The cold run's count is 0 or 1: the smoke set carries one
	// duplicate instance, and whether it hits depends on whether the
	// original's write-back (at emission) lands before the duplicate's
	// admission — the bytes are identical either way.
	body := smokeEnvelopes(t)
	for i, wantHits := range [][]string{{"0", "1"}, {"4"}} {
		resp, err := http.Post(base+"/v1/sweep?dmin=0.5&dmax=8&points=6", "application/jsonl", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if hits := resp.Trailer.Get("X-Sweep-Cache-Hits"); !slices.Contains(wantHits, hits) {
			t.Errorf("request %d: X-Sweep-Cache-Hits = %q, want one of %v", i, hits, wantHits)
		}
	}

	if err := shutdown(); err != nil {
		t.Errorf("drain exit: %v", err)
	}
}

// TestScheddCacheGC: the daemon's background lifecycle sweep collects
// a crashed writer's stale tmp, evicts a planted garbage entry past
// the age cap, and surfaces all of it in the sched_cache_gc_* metric
// families and the /v1/cache/stats snapshot.
func TestScheddCacheGC(t *testing.T) {
	cacheDir := t.TempDir()
	long := time.Now().Add(-2 * time.Hour)

	// A crashed writer's leavings: a stale tmp (default 1h cutoff) and
	// an aged garbage entry the -cache-max-age cap must evict.
	stale := filepath.Join(cacheDir, "put-crashed.tmp")
	if err := os.WriteFile(stale, []byte("torn"), 0o600); err != nil {
		t.Fatal(err)
	}
	aged := filepath.Join(cacheDir, strings.Repeat("ab", 32)+".json")
	if err := os.WriteFile(aged, []byte("old entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{stale, aged} {
		if err := os.Chtimes(name, long, long); err != nil {
			t.Fatal(err)
		}
	}

	base, shutdown := startDaemon(t,
		"-cache-dir", cacheDir,
		"-cache-max-age", "1h",
		"-cache-gc-interval", "1h") // the startup sweep is the one under test

	// The startup sweep runs asynchronously; poll the stats endpoint.
	deadline := time.Now().Add(10 * time.Second)
	var js struct {
		GCRuns       int64 `json:"gc_runs"`
		GCEvictions  int64 `json:"gc_evictions"`
		GCTmpRemoved int64 `json:"gc_tmp_removed"`
	}
	for {
		resp, err := http.Get(base + "/v1/cache/stats")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&js)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if js.GCRuns > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if js.GCRuns == 0 {
		t.Fatal("startup gc sweep never ran")
	}
	if js.GCTmpRemoved != 1 {
		t.Errorf("gc_tmp_removed = %d, want 1", js.GCTmpRemoved)
	}
	if js.GCEvictions != 1 {
		t.Errorf("gc_evictions = %d, want 1 (the aged entry)", js.GCEvictions)
	}
	if _, err := os.Stat(stale); err == nil {
		t.Error("stale tmp survived the startup sweep")
	}
	if _, err := os.Stat(aged); err == nil {
		t.Error("aged entry survived -cache-max-age")
	}

	// The families are on /metrics too.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"sched_cache_gc_runs_total",
		"sched_cache_gc_tmp_removed_total 1",
		"sched_cache_gc_evicted_entries_total 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestScheddRejectsCapsWithoutDir: lifecycle caps without a persistent
// tier are a configuration error, not a silent no-op.
func TestScheddRejectsCapsWithoutDir(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-cache-max-bytes", "1000"}, io.Discard, nil)
	if err == nil || !strings.Contains(err.Error(), "-cache-dir") {
		t.Errorf("caps without -cache-dir: err = %v, want a -cache-dir error", err)
	}
}

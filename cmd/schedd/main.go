// Command schedd is the long-running sweep daemon: one process, one
// resident worker pool, one warm content-addressed front cache, and an
// HTTP/JSONL API over them. Where `schedcli sweepbatch` pays pool
// startup and a cold cache on every invocation, schedd keeps both hot
// for its lifetime and serves repeated sweeps from the same session —
// the outputs are byte-identical to the CLI on identical inputs,
// because both run the internal/serve session layer.
//
// Endpoints (see docs/API.md for the wire reference):
//
//	POST /v1/sweep       sweep the body's instances/DAGs, stream JSONL fronts
//	GET  /v1/cache/stats front-cache counters as JSON
//	GET  /metrics        Prometheus text exposition of the daemon's counters
//	GET  /healthz        liveness probe
//	GET  /readyz         readiness probe (503 once draining)
//	GET  /debug/pprof/   runtime profiles (only with -pprof)
//
// Logs are structured JSONL on stderr via log/slog: lifecycle events
// plus one access line per finished request, carrying the same request
// ID the response returns as X-Request-ID.
//
// With -cache-dir the daemon also runs the cache lifecycle: one gc
// sweep at startup and one per -cache-gc-interval, enforcing the
// -cache-max-bytes size cap (deterministic oldest-first eviction) and
// the -cache-max-age age cap, and collecting put-*.tmp orphans left by
// crashed writers. Sweeps are logged and counted in the
// sched_cache_gc_* metric families.
//
// On SIGINT/SIGTERM the daemon drains gracefully: it stops admitting
// sweeps, finishes those in flight, stops the gc ticker, then releases
// the pool and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"storagesched/internal/cache"
	"storagesched/internal/metrics"
	"storagesched/internal/serve"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "schedd: %v\n", err)
		os.Exit(1)
	}
}

// run is the daemon body, separated from main so tests can drive a
// full process lifecycle in-process: ready (when non-nil) receives the
// listener's address once the server accepts connections, and ctx
// cancellation triggers the same graceful drain as SIGTERM.
func run(ctx context.Context, args []string, logw io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("schedd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7440", "listen address")
	workers := fs.Int("workers", 0, "resident pool size (0 = one per CPU)")
	cacheDir := fs.String("cache-dir", "", "content-addressed front cache directory (disk tier)")
	cacheMem := fs.Int("cache-mem", 0, "front cache memory-tier entries (0 = default when caching; < 0 = disk-only)")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "persistent cache tier size cap enforced by the gc sweep (0 = unbounded)")
	cacheMaxAge := fs.Duration("cache-max-age", 0, "evict cache entries last written longer than this ago (0 = unbounded)")
	cacheGCInterval := fs.Duration("cache-gc-interval", 5*time.Minute, "background cache gc period; 0 disables the sweep")
	maxConcurrent := fs.Int("max-concurrent", serve.DefaultMaxConcurrent, "sweeps running at once")
	maxQueue := fs.Int("max-queue", serve.DefaultMaxQueue, "sweeps queued beyond -max-concurrent before 429 (-1 = none)")
	maxPerClient := fs.Int("max-per-client", serve.DefaultMaxPerClient, "one client's sweeps in flight before 429 (-1 = no cap)")
	maxBody := fs.Int64("max-body", serve.DefaultMaxBodyBytes, "request body byte limit")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "grace period for in-flight sweeps on shutdown")
	pprofOn := fs.Bool("pprof", false, "serve runtime profiles on /debug/pprof/ (off by default: profiles expose internals)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logh := slog.NewJSONHandler(logw, nil)
	logger := slog.New(logh)

	if (*cacheMaxBytes != 0 || *cacheMaxAge != 0) && *cacheDir == "" {
		return fmt.Errorf("-cache-max-bytes/-cache-max-age need -cache-dir (only the persistent tier has a lifecycle)")
	}
	// Like serve.OpenCache, but carrying the lifecycle caps so the
	// background sweep (and any `schedcli cache gc` run with a zero
	// policy against this cache) enforces them.
	var fcache *cache.Cache
	if *cacheDir != "" || *cacheMem != 0 {
		c, err := cache.New(cache.Config{
			Dir:        *cacheDir,
			MemEntries: *cacheMem,
			MaxBytes:   *cacheMaxBytes,
			MaxAge:     *cacheMaxAge,
		})
		if err != nil {
			return err
		}
		fcache = c
	}
	session := serve.NewSession(serve.SessionConfig{
		Workers:  *workers,
		Resident: true,
		Cache:    fcache,
		Metrics:  metrics.NewRegistry(),
	})
	defer session.Close()

	srv := serve.NewServer(session, serve.ServerConfig{
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		MaxPerClient:  *maxPerClient,
		MaxBodyBytes:  *maxBody,
		AccessLog:     logger,
	})
	var handler http.Handler = srv
	if *pprofOn {
		// pprof mounts beside the API; everything else still flows
		// through the server (request IDs, access logs, admission).
		mux := http.NewServeMux()
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
	}
	httpSrv := &http.Server{
		Handler:  handler,
		ErrorLog: slog.NewLogLogger(logh, slog.LevelError),
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("listening",
		"addr", ln.Addr().String(),
		"workers", session.Workers(),
		"cache", fcache != nil,
		"pprof", *pprofOn)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	// Background cache gc: one sweep at start (collecting whatever a
	// previous process left behind), then one per -cache-gc-interval.
	// The zero GCPolicy resolves to the -cache-max-* caps carried by
	// the cache config. The sweep runs safely against in-flight sweeps
	// — an evicted entry is just a future miss — and is stopped after
	// the HTTP drain, before the session releases the pool.
	stopGC := func() {}
	if fcache != nil && *cacheDir != "" && *cacheGCInterval > 0 {
		gcDone := make(chan struct{})
		gcStopped := make(chan struct{})
		go func() {
			defer close(gcStopped)
			ticker := time.NewTicker(*cacheGCInterval)
			defer ticker.Stop()
			for {
				if res, err := fcache.GC(cache.GCPolicy{}); err != nil {
					logger.Warn("cache gc failed", "err", err.Error())
				} else {
					logger.Info("cache gc",
						"scanned", res.Scanned,
						"evicted_age", res.EvictedAge,
						"evicted_size", res.EvictedSize,
						"evicted_bytes", res.EvictedBytes,
						"tmp_removed", res.TmpRemoved,
						"live", res.Live,
						"live_bytes", res.LiveBytes)
				}
				select {
				case <-ticker.C:
				case <-gcDone:
					return
				}
			}
		}()
		stopGC = func() { close(gcDone); <-gcStopped }
	}
	defer stopGC()

	// Serve until signalled; then drain: stop admitting, finish
	// in-flight sweeps (bounded by -drain-timeout), release the pool.
	sigCtx, stop := signal.NotifyContext(ctx, syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-sigCtx.Done():
	}
	logger.Info("draining", "msg", "no new sweeps admitted, waiting for in-flight work")
	srv.BeginDrain()

	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("drained")
	return nil
}

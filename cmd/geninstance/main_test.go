package main

import (
	"bytes"
	"testing"

	"storagesched/internal/model"
)

func TestEmitFamilies(t *testing.T) {
	for _, family := range []string{"uniform", "correlated", "anticorrelated", "embedded", "gridbatch"} {
		var buf bytes.Buffer
		if err := emit(&buf, family, 12, 3, 1, 4096); err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		in, err := model.ReadInstanceJSON(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", family, err)
		}
		if in.N() != 12 || in.M != 3 {
			t.Errorf("%s: shape n=%d m=%d", family, in.N(), in.M)
		}
	}
}

func TestEmitLemmaInstances(t *testing.T) {
	var buf bytes.Buffer
	if err := emit(&buf, "lemma1", 0, 0, 0, 64); err != nil {
		t.Fatalf("lemma1: %v", err)
	}
	in, err := model.ReadInstanceJSON(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if in.N() != 3 || in.M != 2 {
		t.Errorf("lemma1 shape n=%d m=%d", in.N(), in.M)
	}
	buf.Reset()
	if err := emit(&buf, "lemma3", 0, 0, 0, 64); err != nil {
		t.Fatalf("lemma3: %v", err)
	}
}

func TestEmitUnknownFamily(t *testing.T) {
	var buf bytes.Buffer
	if err := emit(&buf, "nope", 1, 1, 1, 64); err == nil {
		t.Error("unknown family accepted")
	}
}

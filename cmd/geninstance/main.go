// Command geninstance emits a random instance as JSON for schedcli and
// paretoviz.
//
//	geninstance -family uniform -n 20 -m 4 -seed 7 > instance.json
//	geninstance -family lemma1 > fig1.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"storagesched/internal/gen"
	"storagesched/internal/hardness"
	"storagesched/internal/model"
)

func main() {
	family := flag.String("family", "uniform",
		"family: uniform | correlated | anticorrelated | embedded | gridbatch | lemma1 | lemma3")
	n := flag.Int("n", 20, "number of tasks")
	m := flag.Int("m", 4, "number of processors")
	seed := flag.Int64("seed", 1, "random seed")
	scale := flag.Int64("scale", 4096, "scale for the lemma instances (eps = 1/scale)")
	flag.Parse()

	if err := emit(os.Stdout, *family, *n, *m, *seed, *scale); err != nil {
		fmt.Fprintf(os.Stderr, "geninstance: %v\n", err)
		os.Exit(1)
	}
}

// emit writes the requested instance as JSON.
func emit(w io.Writer, family string, n, m int, seed, scale int64) error {
	var in *model.Instance
	switch family {
	case "lemma1":
		in = hardness.Lemma1Instance(scale)
	case "lemma3":
		in = hardness.Lemma3Instance(scale, scale/8)
	default:
		for _, fam := range gen.Families() {
			if fam.Name == family {
				in = fam.Gen(n, m, seed)
				break
			}
		}
		if in == nil {
			return fmt.Errorf("unknown family %q", family)
		}
	}
	return in.WriteJSON(w)
}

package main

// The cache subcommand operates on a front-cache directory (the one
// sweepbatch, shard exec and schedd share via -cache-dir):
//
//	schedcli cache stats  -dir ~/.sweepcache
//	schedcli cache gc     -dir ~/.sweepcache -max-bytes 1000000 -max-age 720h
//	schedcli cache verify -dir ~/.sweepcache
//
// stats lists what the persistent tier holds. gc runs one lifecycle
// sweep: orphaned put-*.tmp files older than -tmp-age are collected,
// entries older than -max-age evicted, then oldest entries (ties broken
// on key, so identical states sweep identically on any machine) until
// the tier fits -max-bytes. verify decodes every entry with the
// engine's cached-front decoder and deletes garbage. All three run
// safely against live sweeps — an evicted entry is just a future miss.

import (
	"flag"
	"fmt"
	"io"
	"time"

	sched "storagesched"
	"storagesched/internal/engine"
)

func runCache(args []string, w io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("cache: need a verb: stats | gc | verify")
	}
	switch args[0] {
	case "stats":
		return runCacheStats(args[1:], w)
	case "gc":
		return runCacheGC(args[1:], w)
	case "verify":
		return runCacheVerify(args[1:], w)
	}
	return fmt.Errorf("cache: unknown verb %q (want stats | gc | verify)", args[0])
}

// cacheDirFlag registers the shared -dir flag.
func cacheDirFlag(fs *flag.FlagSet) *string {
	return fs.String("dir", "", "front cache directory (as passed to sweepbatch -cache-dir)")
}

// runCacheStats implements `schedcli cache stats`.
func runCacheStats(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cache stats", flag.ContinueOnError)
	dir := cacheDirFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("cache stats: -dir is required")
	}
	store, err := sched.NewDirStore(*dir)
	if err != nil {
		return err
	}
	infos, err := store.List()
	if err != nil {
		return err
	}
	var bytes int64
	var oldest, newest time.Time
	for _, info := range infos {
		bytes += info.Size
		if oldest.IsZero() || info.ModTime.Before(oldest) {
			oldest = info.ModTime
		}
		if info.ModTime.After(newest) {
			newest = info.ModTime
		}
	}
	fmt.Fprintf(w, "entries: %d\n", len(infos))
	fmt.Fprintf(w, "bytes: %d\n", bytes)
	if len(infos) > 0 {
		fmt.Fprintf(w, "oldest: %s\n", oldest.UTC().Format(time.RFC3339))
		fmt.Fprintf(w, "newest: %s\n", newest.UTC().Format(time.RFC3339))
	}
	return nil
}

// runCacheGC implements `schedcli cache gc`.
func runCacheGC(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cache gc", flag.ContinueOnError)
	dir := cacheDirFlag(fs)
	maxBytes := fs.Int64("max-bytes", 0, "size cap for the persistent tier; 0 = unbounded")
	maxAge := fs.Duration("max-age", 0, "evict entries last written longer than this ago; 0 = unbounded")
	tmpAge := fs.Duration("tmp-age", 0, "collect orphaned put-*.tmp files older than this (0 = 1h; negative = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("cache gc: -dir is required")
	}
	c, err := openCacheDir(*dir)
	if err != nil {
		return err
	}
	res, err := c.GC(sched.CacheGCPolicy{MaxBytes: *maxBytes, MaxAge: *maxAge, TmpAge: *tmpAge})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "scanned %d entries (%d bytes)\n", res.Scanned, res.ScannedBytes)
	fmt.Fprintf(w, "evicted %d by age, %d by size (%d bytes)\n", res.EvictedAge, res.EvictedSize, res.EvictedBytes)
	fmt.Fprintf(w, "removed %d orphaned tmp files\n", res.TmpRemoved)
	fmt.Fprintf(w, "live: %d entries (%d bytes)\n", res.Live, res.LiveBytes)
	return nil
}

// runCacheVerify implements `schedcli cache verify`.
func runCacheVerify(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cache verify", flag.ContinueOnError)
	dir := cacheDirFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("cache verify: -dir is required")
	}
	c, err := openCacheDir(*dir)
	if err != nil {
		return err
	}
	res, err := c.Verify(func(_ sched.CacheKey, val []byte) error {
		return engine.CheckCachedResult(val)
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "checked %d entries\n", res.Checked)
	fmt.Fprintf(w, "removed %d garbage entries (%d bytes)\n", res.Removed, res.RemovedBytes)
	return nil
}

// openCacheDir opens a cache over an existing directory's persistent
// tier only (no memory budget matters here — lifecycle operations
// never touch the memory tier).
func openCacheDir(dir string) (*sched.SweepCache, error) {
	store, err := sched.NewDirStore(dir)
	if err != nil {
		return nil, err
	}
	return sched.NewSweepCache(sched.CacheConfig{Store: store})
}

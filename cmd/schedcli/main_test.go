package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	sched "storagesched"
)

// writeInstance writes a small JSON instance to a temp file.
func writeInstance(t *testing.T) string {
	t.Helper()
	in := sched.NewInstance(2,
		[]sched.Time{9, 4, 6, 2, 7},
		[]sched.Mem{3, 8, 1, 5, 2})
	path := filepath.Join(t.TempDir(), "inst.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := in.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAlgorithms(t *testing.T) {
	path := writeInstance(t)
	// Redirect stdout noise away from the test log.
	old := os.Stdout
	devnull, _ := os.Open(os.DevNull)
	defer devnull.Close()
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	for _, alg := range []string{"sbo", "rls", "lpt", "ls"} {
		if err := run(path, alg, 3, "spt", -1, true, 40); err != nil {
			t.Errorf("alg %s: %v", alg, err)
		}
	}
	if err := run(path, "constrained", 1, "spt", 100, false, 40); err != nil {
		t.Errorf("constrained: %v", err)
	}
}

func TestRunSweepSubcommand(t *testing.T) {
	path := writeInstance(t)
	var buf strings.Builder
	err := runSweep([]string{"-in", path, "-dmin", "0.5", "-dmax", "8", "-points", "16"}, &buf)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"lower bounds", "front points", "witness", "Cmax/LB"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
	// Both spacings and family filters run end to end.
	for _, extra := range [][]string{
		{"-grid", "lin"},
		{"-no-sbo"},
		{"-no-rls"},
		{"-workers", "2"},
	} {
		buf.Reset()
		args := append([]string{"-in", path}, extra...)
		if err := runSweep(args, &buf); err != nil {
			t.Errorf("sweep %v: %v", extra, err)
		}
	}
}

func TestRunSweepRejectsBadInputs(t *testing.T) {
	path := writeInstance(t)
	var buf strings.Builder
	cases := [][]string{
		{"-in", path, "-dmin", "0"},
		{"-in", path, "-dmin", "4", "-dmax", "2"},
		{"-in", path, "-points", "0"},
		{"-in", path, "-grid", "bogus"},
		{"-in", path, "-no-sbo", "-no-rls"},
		{"-in", filepath.Join(t.TempDir(), "missing.json")},
	}
	for _, args := range cases {
		if err := runSweep(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// writeInstanceDir writes k distinct JSON instances into a fresh
// directory and returns it.
func writeInstanceDir(t *testing.T, k int) string {
	t.Helper()
	dir := t.TempDir()
	for i := 0; i < k; i++ {
		in := sched.GenUniform(12+i, 2, int64(i+1))
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("inst%02d.json", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := in.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return dir
}

// decodeLines parses every JSONL line of the sweepbatch output.
func decodeLines(t *testing.T, out string) []map[string]any {
	t.Helper()
	var lines []map[string]any
	for _, ln := range strings.Split(strings.TrimSpace(out), "\n") {
		if ln == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		lines = append(lines, m)
	}
	return lines
}

func TestRunSweepBatchDirectory(t *testing.T) {
	dir := writeInstanceDir(t, 3)
	var buf strings.Builder
	err := runSweepBatch([]string{"-in", dir, "-dmin", "0.5", "-dmax", "8", "-points", "8"}, nil, &buf)
	if err != nil {
		t.Fatalf("sweepbatch: %v", err)
	}
	lines := decodeLines(t, buf.String())
	if len(lines) != 3 {
		t.Fatalf("%d output lines, want 3:\n%s", len(lines), buf.String())
	}
	for i, m := range lines {
		if m["source"] != fmt.Sprintf("inst%02d.json", i) {
			t.Errorf("line %d source = %v (input order must be preserved)", i, m["source"])
		}
		if int(m["index"].(float64)) != i {
			t.Errorf("line %d index = %v", i, m["index"])
		}
		if _, ok := m["error"]; ok {
			t.Errorf("line %d unexpectedly failed: %v", i, m["error"])
		}
		if front, ok := m["front"].([]any); !ok || len(front) == 0 {
			t.Errorf("line %d has no front points: %v", i, m["front"])
		}
		if m["cmax_lb"] == nil || m["mmax_lb"] == nil {
			t.Errorf("line %d missing lower bounds", i)
		}
	}
}

func TestRunSweepBatchJSONLWithBadLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "batch.jsonl")
	var sb strings.Builder
	for i := 0; i < 2; i++ {
		var one bytes.Buffer
		if err := sched.GenUniform(10, 2, int64(i+1)).WriteJSON(&one); err != nil {
			t.Fatal(err)
		}
		sb.WriteString(strings.ReplaceAll(one.String(), "\n", "") + "\n")
	}
	sb.WriteString("{not json}\n")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	err := runSweepBatch([]string{"-in", path, "-points", "4", "-dmin", "1", "-dmax", "4"}, nil, &buf)
	if err == nil {
		t.Fatal("batch with a bad line reported success")
	}
	if !strings.Contains(err.Error(), "1 of 3") {
		t.Errorf("error %q does not count the failure", err)
	}
	lines := decodeLines(t, buf.String())
	if len(lines) != 3 {
		t.Fatalf("%d output lines, want 3 (bad line must fail alone)", len(lines))
	}
	if _, ok := lines[2]["error"]; !ok {
		t.Errorf("bad line produced no error record: %v", lines[2])
	}
	for i := 0; i < 2; i++ {
		if _, ok := lines[i]["error"]; ok {
			t.Errorf("good line %d failed: %v", i, lines[i]["error"])
		}
	}
}

func TestRunSweepBatchStdinAndOutFile(t *testing.T) {
	// stdin is a stream of concatenated JSON values — indented
	// documents exactly as geninstance pipes them, no JSONL
	// flattening required.
	var stream bytes.Buffer
	for seed := int64(5); seed <= 6; seed++ {
		if err := sched.GenUniform(10, 2, seed).WriteJSON(&stream); err != nil {
			t.Fatal(err)
		}
	}
	outPath := filepath.Join(t.TempDir(), "fronts.jsonl")
	var buf strings.Builder
	err := runSweepBatch([]string{"-out", outPath, "-points", "4", "-dmin", "1", "-dmax", "4"}, &stream, &buf)
	if err != nil {
		t.Fatalf("sweepbatch via stdin: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("-out set but stdout written: %q", buf.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := decodeLines(t, string(data))
	if len(lines) != 2 || lines[0]["source"] != "stdin:1" || lines[1]["source"] != "stdin:2" {
		t.Fatalf("unexpected output: %v", lines)
	}
}

func TestRunSweepBatchStdinGarbageValue(t *testing.T) {
	var stream bytes.Buffer
	if err := sched.GenUniform(10, 2, 7).WriteJSON(&stream); err != nil {
		t.Fatal(err)
	}
	stream.WriteString("{broken\n")
	var buf strings.Builder
	err := runSweepBatch([]string{"-points", "4", "-dmin", "1", "-dmax", "4"}, &stream, &buf)
	if err == nil {
		t.Fatal("garbage stdin value reported success")
	}
	lines := decodeLines(t, buf.String())
	if len(lines) != 2 {
		t.Fatalf("%d output lines, want 2 (good value + error record):\n%s", len(lines), buf.String())
	}
	if _, ok := lines[0]["error"]; ok {
		t.Errorf("good value failed: %v", lines[0]["error"])
	}
	if _, ok := lines[1]["error"]; !ok {
		t.Errorf("garbage value produced no error record: %v", lines[1])
	}
}

func TestRunSweepBatchRejectsBadInputs(t *testing.T) {
	dir := writeInstanceDir(t, 1)
	var buf strings.Builder
	cases := [][]string{
		{"-in", dir, "-dmin", "0"},
		{"-in", dir, "-dmin", "4", "-dmax", "2"},
		{"-in", dir, "-points", "0"},
		{"-in", dir, "-grid", "bogus"},
		{"-in", dir, "-no-sbo", "-no-rls"},
		{"-in", filepath.Join(t.TempDir(), "missing")},
		{"-in", t.TempDir()}, // no *.json files
		{"-in", dir, "-refine", "-shards", "2"},
		{"-in", dir, "-refine", "-refine-gap", "-0.5"},
		{"-in", dir, "-refine", "-refine-max-points", "-2"},
	}
	for _, args := range cases {
		if err := runSweepBatch(args, strings.NewReader(""), &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	path := writeInstance(t)
	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	if err := run(path, "bogus", 1, "spt", -1, false, 40); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(path, "rls", 3, "bogus", -1, false, 40); err == nil {
		t.Error("unknown tie-break accepted")
	}
	if err := run(path, "constrained", 1, "spt", -1, false, 40); err == nil {
		t.Error("constrained without budget accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "missing.json"), "sbo", 1, "spt", -1, false, 40); err == nil {
		t.Error("missing file accepted")
	}
}

// writeGraph writes a small task DAG as *.graph.json into dir.
func writeGraph(t *testing.T, dir, name string) string {
	t.Helper()
	g := sched.NewGraph(2,
		[]sched.Time{4, 3, 5, 2},
		[]sched.Mem{2, 1, 3, 2})
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunSweepBatchMixedGraphDirectory sweeps a directory mixing
// instance files with a *.graph.json DAG: both kinds must stream
// through one batch, in name order, the graph line carrying its edge
// count and an RLS-only front.
func TestRunSweepBatchMixedGraphDirectory(t *testing.T) {
	dir := writeInstanceDir(t, 2)
	writeGraph(t, dir, "apipeline.graph.json")
	var buf strings.Builder
	err := runSweepBatch([]string{"-in", dir, "-dmin", "0.5", "-dmax", "8", "-points", "8"}, nil, &buf)
	if err != nil {
		t.Fatalf("sweepbatch: %v", err)
	}
	lines := decodeLines(t, buf.String())
	if len(lines) != 3 {
		t.Fatalf("%d output lines, want 3:\n%s", len(lines), buf.String())
	}
	// Glob order: apipeline.graph.json sorts before inst*.json.
	if lines[0]["source"] != "apipeline.graph.json" {
		t.Fatalf("line 0 source = %v", lines[0]["source"])
	}
	if _, ok := lines[0]["error"]; ok {
		t.Fatalf("graph item failed: %v", lines[0]["error"])
	}
	if int(lines[0]["edges"].(float64)) != 2 {
		t.Errorf("graph line edges = %v, want 2", lines[0]["edges"])
	}
	if front, ok := lines[0]["front"].([]any); !ok || len(front) == 0 {
		t.Errorf("graph line has no front points: %v", lines[0]["front"])
	}
	for i := 1; i <= 2; i++ {
		if _, ok := lines[i]["error"]; ok {
			t.Errorf("instance line %d failed: %v", i, lines[i]["error"])
		}
		if _, ok := lines[i]["edges"]; ok {
			t.Errorf("instance line %d carries an edge count: %v", i, lines[i])
		}
	}
}

// TestRunSweepBatchSingleGraphFile names one *.graph.json directly.
func TestRunSweepBatchSingleGraphFile(t *testing.T) {
	path := writeGraph(t, t.TempDir(), "dag.graph.json")
	var buf strings.Builder
	err := runSweepBatch([]string{"-in", path, "-dmin", "2", "-dmax", "6", "-points", "4"}, nil, &buf)
	if err != nil {
		t.Fatalf("sweepbatch: %v", err)
	}
	lines := decodeLines(t, buf.String())
	if len(lines) != 1 || lines[0]["source"] != "dag.graph.json" {
		t.Fatalf("unexpected output: %v", lines)
	}
	if front, ok := lines[0]["front"].([]any); !ok || len(front) == 0 {
		t.Errorf("no front points: %v", lines[0]["front"])
	}
}

// TestRunSweepBatchBadGraphFailsAlone checks a malformed graph file is
// one error line, not a batch abort.
func TestRunSweepBatchBadGraphFailsAlone(t *testing.T) {
	dir := writeInstanceDir(t, 1)
	bad := filepath.Join(dir, "bad.graph.json")
	if err := os.WriteFile(bad, []byte(`{"m":2,"tasks":[{"p":1,"s":0}],"edges":[[0,7]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	err := runSweepBatch([]string{"-in", dir, "-dmin", "2", "-dmax", "4", "-points", "2"}, nil, &buf)
	if err == nil {
		t.Fatal("batch with a bad graph reported success")
	}
	lines := decodeLines(t, buf.String())
	if len(lines) != 2 {
		t.Fatalf("%d output lines, want 2:\n%s", len(lines), buf.String())
	}
	if _, ok := lines[0]["error"]; !ok {
		t.Errorf("bad graph produced no error record: %v", lines[0])
	}
	if _, ok := lines[1]["error"]; ok {
		t.Errorf("good instance failed: %v", lines[1]["error"])
	}
}

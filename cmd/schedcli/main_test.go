package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	sched "storagesched"
)

// writeInstance writes a small JSON instance to a temp file.
func writeInstance(t *testing.T) string {
	t.Helper()
	in := sched.NewInstance(2,
		[]sched.Time{9, 4, 6, 2, 7},
		[]sched.Mem{3, 8, 1, 5, 2})
	path := filepath.Join(t.TempDir(), "inst.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := in.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAlgorithms(t *testing.T) {
	path := writeInstance(t)
	// Redirect stdout noise away from the test log.
	old := os.Stdout
	devnull, _ := os.Open(os.DevNull)
	defer devnull.Close()
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	for _, alg := range []string{"sbo", "rls", "lpt", "ls"} {
		if err := run(path, alg, 3, "spt", -1, true, 40); err != nil {
			t.Errorf("alg %s: %v", alg, err)
		}
	}
	if err := run(path, "constrained", 1, "spt", 100, false, 40); err != nil {
		t.Errorf("constrained: %v", err)
	}
}

func TestRunSweepSubcommand(t *testing.T) {
	path := writeInstance(t)
	var buf strings.Builder
	err := runSweep([]string{"-in", path, "-dmin", "0.5", "-dmax", "8", "-points", "16"}, &buf)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"lower bounds", "front points", "witness", "Cmax/LB"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
	// Both spacings and family filters run end to end.
	for _, extra := range [][]string{
		{"-grid", "lin"},
		{"-no-sbo"},
		{"-no-rls"},
		{"-workers", "2"},
	} {
		buf.Reset()
		args := append([]string{"-in", path}, extra...)
		if err := runSweep(args, &buf); err != nil {
			t.Errorf("sweep %v: %v", extra, err)
		}
	}
}

func TestRunSweepRejectsBadInputs(t *testing.T) {
	path := writeInstance(t)
	var buf strings.Builder
	cases := [][]string{
		{"-in", path, "-dmin", "0"},
		{"-in", path, "-dmin", "4", "-dmax", "2"},
		{"-in", path, "-points", "0"},
		{"-in", path, "-grid", "bogus"},
		{"-in", path, "-no-sbo", "-no-rls"},
		{"-in", filepath.Join(t.TempDir(), "missing.json")},
	}
	for _, args := range cases {
		if err := runSweep(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	path := writeInstance(t)
	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	if err := run(path, "bogus", 1, "spt", -1, false, 40); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(path, "rls", 3, "bogus", -1, false, 40); err == nil {
		t.Error("unknown tie-break accepted")
	}
	if err := run(path, "constrained", 1, "spt", -1, false, 40); err == nil {
		t.Error("constrained without budget accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "missing.json"), "sbo", 1, "spt", -1, false, 40); err == nil {
		t.Error("missing file accepted")
	}
}

// Command schedcli schedules a JSON instance with a chosen algorithm
// and prints the objectives and an ASCII Gantt chart.
//
//	schedcli -alg sbo -delta 1 < instance.json
//	schedcli -in instance.json -alg rls -delta 3 -tie spt
//	schedcli -in instance.json -alg constrained -budget 120
//
// The instance format is the one produced by geninstance:
//
//	{"m": 2, "tasks": [{"id":0,"p":4,"s":1}, ...]}
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	sched "storagesched"
)

func main() {
	inPath := flag.String("in", "", "instance JSON file (default: stdin)")
	alg := flag.String("alg", "sbo", "algorithm: sbo | rls | lpt | ls | constrained")
	delta := flag.Float64("delta", 1.0, "SBO/RLS parameter delta")
	tieName := flag.String("tie", "spt", "RLS tie-break: id | spt | lpt | blevel")
	budget := flag.Int64("budget", -1, "memory budget for -alg constrained")
	showGantt := flag.Bool("gantt", true, "render an ASCII Gantt chart")
	width := flag.Int("width", 60, "Gantt width in columns")
	flag.Parse()

	if err := run(*inPath, *alg, *delta, *tieName, *budget, *showGantt, *width); err != nil {
		fmt.Fprintf(os.Stderr, "schedcli: %v\n", err)
		os.Exit(1)
	}
}

func run(inPath, alg string, delta float64, tieName string, budget int64, showGantt bool, width int) error {
	var r io.Reader = os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	in, err := sched.ReadInstanceJSON(r)
	if err != nil {
		return err
	}

	var tie sched.TieBreak
	switch tieName {
	case "id":
		tie = sched.TieByID
	case "spt":
		tie = sched.TieSPT
	case "lpt":
		tie = sched.TieLPT
	case "blevel":
		tie = sched.TieBottomLevel
	default:
		return fmt.Errorf("unknown tie-break %q", tieName)
	}

	rec := sched.BoundsForInstance(in)
	fmt.Printf("instance: n=%d m=%d  lower bounds: Cmax >= %d, Mmax >= %d\n\n", in.N(), in.M, rec.CmaxLB, rec.MmaxLB)

	var a sched.Assignment
	switch alg {
	case "sbo":
		res, err := sched.SBOWithLPT(in, delta)
		if err != nil {
			return err
		}
		a = res.Assignment
		rc, rm := sched.SBORatio(delta, sched.LPT{}.Ratio(in.M), sched.LPT{}.Ratio(in.M))
		fmt.Printf("SBO(delta=%g, LPT): guarantee (%.3f, %.3f)\n", delta, rc, rm)
	case "rls":
		res, err := sched.RLSIndependent(in, delta, tie)
		if err != nil {
			return err
		}
		a = res.Schedule.Assignment()
		fmt.Printf("RLS(delta=%g, tie=%s): Mmax guarantee %.3f*LB, Cmax guarantee %.3f\n",
			delta, tie, delta, sched.RLSCmaxRatio(delta, in.M))
	case "lpt":
		a = sched.LPT{}.Assign(in.P(), in.M)
		fmt.Printf("LPT on processing times only (memory unmanaged)\n")
	case "ls":
		a = sched.ListScheduling{}.Assign(in.P(), in.M)
		fmt.Printf("List scheduling on processing times only (memory unmanaged)\n")
	case "constrained":
		if budget < 0 {
			return fmt.Errorf("-alg constrained needs -budget")
		}
		res, v, err := sched.ConstrainedIndependent(in, budget)
		if err != nil {
			return err
		}
		a = res
		fmt.Printf("constrained solve: budget=%d achieved (Cmax=%d, Mmax=%d)\n", budget, v.Cmax, v.Mmax)
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}

	fmt.Printf("objectives: Cmax=%d (ratio %.4f vs LB)  Mmax=%d (ratio %.4f vs LB)\n\n",
		in.Cmax(a), float64(in.Cmax(a))/float64(rec.CmaxLB),
		in.Mmax(a), float64(in.Mmax(a))/float64(rec.MmaxLB))
	if showGantt {
		return sched.RenderAssignment(os.Stdout, in, a, sched.GanttOptions{Width: width, ShowMemory: true})
	}
	return nil
}

// Command schedcli schedules a JSON instance with a chosen algorithm
// and prints the objectives and an ASCII Gantt chart.
//
//	schedcli -alg sbo -delta 1 < instance.json
//	schedcli -in instance.json -alg rls -delta 3 -tie spt
//	schedcli -in instance.json -alg constrained -budget 120
//
// The sweep subcommand runs the parallel δ-sweep engine and prints the
// approximate Pareto front with per-point provenance:
//
//	schedcli sweep -in instance.json -dmin 0.25 -dmax 8 -points 32
//
// The sweepbatch subcommand sweeps many instances through one shared
// worker pool and writes one JSON front per line (JSONL), streaming in
// input order with bounded memory. -in accepts a directory of *.json
// instances, a .jsonl file with one instance per line, or a single
// .json file; with no -in it reads a stream of JSON documents from
// stdin (compact JSONL or indented, as geninstance emits — instances,
// task DAGs carrying an "edges" key, or {"source","item"} envelopes
// that name their payload):
//
//	schedcli sweepbatch -in instances/ -out fronts.jsonl
//	geninstance ... | schedcli sweepbatch -points 16
//
// Files named *.graph.json are task DAGs and sweep the RLS family over
// the δ ≥ 2 grid points; they mix freely with instance files in one
// directory (or name one directly with -in). The instance format is
// the one produced by geninstance, and a graph file adds an edge list:
//
//	{"m": 2, "tasks": [{"id":0,"p":4,"s":1}, ...]}
//	{"m": 2, "tasks": [...], "edges": [[0,1], [1,2]]}
//
// With -refine the batch runs the adaptive two-pass pipeline: a coarse
// sweep at the configured grid, then a refinement pass that re-sweeps
// each item only where its front's relative gap exceeds -refine-gap
// (at most -refine-max-points new δ values per item; task DAGs plan
// RLS-eligible points only). The merged fronts print in the same JSONL
// format, one deduplicated front per item:
//
//	schedcli sweepbatch -in instances/ -refine -refine-gap 0.1
//
// Repeated sweeps reuse fronts through a content-addressed cache
// (-cache-dir for a disk tier shared across runs and machines,
// -cache-mem for the in-process LRU bound), and large batches split
// into K deterministic in-process shards merged back in input order
// (-shards, -shard-policy) — the output is byte-identical either way:
//
//	schedcli sweepbatch -in instances/ -cache-dir ~/.sweepcache -shards 4
//
// The shard subcommand runs the same split across processes or
// machines: `shard plan` writes plan.json plus one shard-<k>.list per
// shard (each a valid sweepbatch -in input), `shard merge` interleaves
// the per-shard JSONL outputs back into input order, and `shard exec`
// drives the whole flow with one sweepbatch subprocess per shard:
//
//	schedcli shard plan -in instances/ -shards 4 -policy hash -out-dir plans/
//	schedcli shard merge -plan plans/plan.json -out fronts.jsonl s0.jsonl s1.jsonl s2.jsonl s3.jsonl
//	schedcli shard exec -in instances/ -shards 4 -out fronts.jsonl
//
// The cache subcommand maintains a front-cache directory: stats lists
// what the persistent tier holds, gc runs one lifecycle sweep (size
// and age caps with deterministic oldest-first eviction, orphaned-tmp
// collection), and verify decodes every entry with the engine's
// cached-front decoder and deletes garbage:
//
//	schedcli cache stats -dir ~/.sweepcache
//	schedcli cache gc -dir ~/.sweepcache -max-bytes 100000000 -max-age 720h
//	schedcli cache verify -dir ~/.sweepcache
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"iter"
	"os"
	"path/filepath"
	"sort"
	"strings"

	sched "storagesched"
	"storagesched/internal/metrics"
	"storagesched/internal/serve"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		if err := runSweep(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "schedcli: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "sweepbatch" {
		if err := runSweepBatch(os.Args[2:], os.Stdin, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "schedcli: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "shard" {
		if err := runShard(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "schedcli: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "cache" {
		if err := runCache(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "schedcli: %v\n", err)
			os.Exit(1)
		}
		return
	}

	inPath := flag.String("in", "", "instance JSON file (default: stdin)")
	alg := flag.String("alg", "sbo", "algorithm: sbo | rls | lpt | ls | constrained")
	delta := flag.Float64("delta", 1.0, "SBO/RLS parameter delta")
	tieName := flag.String("tie", "spt", "RLS tie-break: id | spt | lpt | blevel")
	budget := flag.Int64("budget", -1, "memory budget for -alg constrained")
	showGantt := flag.Bool("gantt", true, "render an ASCII Gantt chart")
	width := flag.Int("width", 60, "Gantt width in columns")
	flag.Parse()

	if err := run(*inPath, *alg, *delta, *tieName, *budget, *showGantt, *width); err != nil {
		fmt.Fprintf(os.Stderr, "schedcli: %v\n", err)
		os.Exit(1)
	}
}

// runSweep implements the sweep subcommand.
func runSweep(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	inPath := fs.String("in", "", "instance JSON file (default: stdin)")
	dmin := fs.Float64("dmin", 0.25, "smallest delta of the grid")
	dmax := fs.Float64("dmax", 8, "largest delta of the grid")
	points := fs.Int("points", 32, "number of grid points")
	gridKind := fs.String("grid", "geo", "grid spacing: geo | lin")
	workers := fs.Int("workers", 0, "worker count (0 = one per CPU)")
	noSBO := fs.Bool("no-sbo", false, "skip the SBO family")
	noRLS := fs.Bool("no-rls", false, "skip the RLS family")
	if err := fs.Parse(args); err != nil {
		return err
	}
	grid, err := buildGrid(*gridKind, *dmin, *dmax, *points)
	if err != nil {
		return err
	}

	in, err := readInstance(*inPath)
	if err != nil {
		return err
	}

	res, err := sched.Sweep(context.Background(), in, sched.SweepConfig{
		Deltas:  grid,
		Workers: *workers,
		SkipSBO: *noSBO,
		SkipRLS: *noRLS,
	})
	if err != nil {
		return err
	}

	failed := 0
	for _, run := range res.Runs {
		if run.Err != nil {
			failed++
		}
	}
	fmt.Fprintf(w, "instance: n=%d m=%d  lower bounds: Cmax >= %d, Mmax >= %d\n",
		in.N(), in.M, res.Bounds.CmaxLB, res.Bounds.MmaxLB)
	fmt.Fprintf(w, "sweep: %d runs over %d grid points (%d failed) -> %d front points\n\n",
		len(res.Runs), *points, failed, len(res.Front))
	fmt.Fprintf(w, "%-10s %-10s %-9s %-9s %s\n", "Cmax", "Mmax", "Cmax/LB", "Mmax/LB", "witness")
	for _, p := range res.Front {
		fmt.Fprintf(w, "%-10d %-10d %-9.4f %-9.4f %s\n",
			p.Value.Cmax, p.Value.Mmax,
			float64(p.Value.Cmax)/float64(res.Bounds.CmaxLB),
			float64(p.Value.Mmax)/float64(res.Bounds.MmaxLB),
			res.Runs[p.RunIndex].Label())
	}
	return nil
}

// buildGrid constructs the δ-grid for the sweep subcommands; grid
// shape errors surface as messages, not stack traces. The vocabulary
// lives in the serve session layer so schedd speaks it too.
func buildGrid(kind string, dmin, dmax float64, points int) ([]float64, error) {
	return serve.BuildGrid(kind, dmin, dmax, points)
}

// runSweepBatch implements the sweepbatch subcommand: a streaming
// batch sweep over a directory, JSONL file or stdin, one front per
// output line, in input order.
func runSweepBatch(args []string, stdin io.Reader, w io.Writer) error {
	fs := flag.NewFlagSet("sweepbatch", flag.ContinueOnError)
	inPath := fs.String("in", "", "directory of *.json instances and *.graph.json task DAGs, a .jsonl file (one instance per line), a .list file (one instance/graph path per line), or a single .json/.graph.json file (default: a stream of JSON documents on stdin — compact JSONL or indented alike)")
	outPath := fs.String("out", "", "output JSONL file (default: stdout)")
	dmin := fs.Float64("dmin", 0.25, "smallest delta of the grid")
	dmax := fs.Float64("dmax", 8, "largest delta of the grid")
	points := fs.Int("points", 32, "number of grid points")
	gridKind := fs.String("grid", "geo", "grid spacing: geo | lin")
	workers := fs.Int("workers", 0, "shared pool size (0 = one per CPU; with -shards, per shard)")
	pending := fs.Int("pending", 0, "max instances in flight (0 = twice the workers)")
	noSBO := fs.Bool("no-sbo", false, "skip the SBO family")
	noRLS := fs.Bool("no-rls", false, "skip the RLS family")
	cacheDir := fs.String("cache-dir", "", "content-addressed front cache directory (disk tier)")
	cacheMem := fs.Int("cache-mem", 0, "front cache memory-tier entries (0 = default when caching; < 0 = disk-only)")
	shards := fs.Int("shards", 1, "run the batch as K in-process shards merged in input order (does not compose with -refine)")
	shardPolicy := fs.String("shard-policy", "hash", "shard placement with -shards: rr | hash (hash keeps identical items on one shard)")
	doRefine := fs.Bool("refine", false, "adaptive two-pass sweep: re-sweep δ-intervals where each front's relative gap exceeds -refine-gap (does not compose with -shards)")
	refineGap := fs.Float64("refine-gap", sched.DefaultRefineGap, "relative front gap above which the δ-interval is refined")
	refineMax := fs.Int("refine-max-points", sched.DefaultRefineMaxPoints, "refinement δ points budgeted per item")
	stats := fs.Bool("stats", false, "print the batch's metrics registry (Prometheus text format) to stderr when done — the same families a schedd /metrics scrape exposes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := serve.SweepSpec{
		SkipSBO:         *noSBO,
		SkipRLS:         *noRLS,
		MaxPending:      *pending,
		Refine:          *doRefine,
		RefineGap:       *refineGap,
		RefineMaxPoints: *refineMax,
		Shards:          *shards,
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	grid, err := buildGrid(*gridKind, *dmin, *dmax, *points)
	if err != nil {
		return err
	}
	spec.Deltas = grid
	fcache, err := serve.OpenCache(*cacheDir, *cacheMem)
	if err != nil {
		return err
	}

	items, err := batchItems(*inPath, stdin)
	if err != nil {
		return err
	}

	out := w
	var outFile *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		outFile = f
		out = f
	}
	bw := bufio.NewWriter(out)

	if *shards > 1 {
		if spec.ShardPolicy, err = sched.ParseShardPolicy(*shardPolicy); err != nil {
			return err
		}
	}
	// The session layer (shared with the schedd daemon) runs the whole
	// pipeline — tagging, the sweep itself (sharded, adaptive or plain)
	// and the JSONL encoding — so the CLI and HTTP outputs are
	// byte-identical on identical inputs.
	scfg := serve.SessionConfig{Workers: *workers, Cache: fcache}
	if *stats {
		scfg.Metrics = metrics.NewRegistry()
	}
	session := serve.NewSession(scfg)
	defer session.Close()
	st, err := session.Sweep(context.Background(), items, spec, bw)
	if fcache != nil {
		cst := fcache.Stats()
		fmt.Fprintf(os.Stderr, "schedcli: cache %d hits (%d mem, %d disk), %d misses, %d evictions\n",
			cst.Hits, cst.MemHits, cst.DiskHits, cst.Misses, cst.Evictions)
	}
	if *stats {
		// The registry snapshot goes to stderr so the JSONL fronts on
		// stdout stay byte-identical with or without -stats.
		session.Registry().WriteText(os.Stderr)
	}
	if err != nil {
		if outFile != nil {
			outFile.Close()
		}
		return err
	}
	if err := bw.Flush(); err != nil {
		if outFile != nil {
			outFile.Close()
		}
		return err
	}
	// Close explicitly: a write-back error surfacing at close (full
	// disk, NFS) must fail the command, not vanish in a defer.
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			return err
		}
	}
	if st.Failed > 0 {
		return fmt.Errorf("sweepbatch: %d of %d instances failed (see the error lines in the output)", st.Failed, st.Items)
	}
	return nil
}

// batchItems lazily yields (item, source label) pairs from a directory
// of *.json files, a .jsonl stream, a single .json file, or stdin (a
// stream of concatenated JSON values — compact JSONL and indented
// documents both work). Read and parse failures are carried on the
// item, so one bad file fails alone inside the batch instead of
// aborting it.
func batchItems(inPath string, stdin io.Reader) (iter.Seq2[sched.BatchItem, string], error) {
	if inPath == "" {
		return serve.DecodeItems("stdin", stdin, nil), nil
	}
	info, err := os.Stat(inPath)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		names, err := filepath.Glob(filepath.Join(inPath, "*.json"))
		if err != nil {
			return nil, err
		}
		sort.Strings(names)
		if len(names) == 0 {
			return nil, fmt.Errorf("no *.json instances in %s", inPath)
		}
		return func(yield func(sched.BatchItem, string) bool) {
			for _, name := range names {
				if !yield(fileItem(name), filepath.Base(name)) {
					return
				}
			}
		}, nil
	}
	if strings.HasSuffix(inPath, ".jsonl") {
		f, err := os.Open(inPath)
		if err != nil {
			return nil, err
		}
		return serve.DecodeJSONLItems(filepath.Base(inPath), f, f), nil
	}
	if strings.HasSuffix(inPath, ".list") {
		paths, err := readListFile(inPath)
		if err != nil {
			return nil, err
		}
		return func(yield func(sched.BatchItem, string) bool) {
			for _, name := range paths {
				if !yield(fileItem(name), filepath.Base(name)) {
					return
				}
			}
		}, nil
	}
	// Single instance or graph JSON file.
	return func(yield func(sched.BatchItem, string) bool) {
		yield(fileItem(inPath), filepath.Base(inPath))
	}, nil
}

// readListFile reads a .list file: one instance/graph path per line,
// used verbatim (blank lines and #-comments skipped). The shard plan
// subcommand emits these so `sweepbatch -in shard-K.list` subprocesses
// sweep exactly their slice of a planned batch. An empty list is a
// valid empty batch — a plan with more shards than items legitimately
// leaves some shards without work, and their sweep must still produce
// an (empty) output for the merge.
func readListFile(name string) ([]string, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		paths = append(paths, line)
	}
	return paths, nil
}

// fileItem reads one *.json file as a batch item: files named
// *.graph.json decode as task DAGs, everything else as instances. Read
// and parse failures ride on the item, so one bad file fails alone.
func fileItem(name string) sched.BatchItem {
	item := sched.BatchItem{}
	if strings.HasSuffix(name, ".graph.json") {
		g, err := readGraph(name)
		if err != nil {
			item.Err = fmt.Errorf("%s: %w", name, err)
		} else {
			item.Graph = g
		}
		return item
	}
	if in, err := readInstance(name); err != nil {
		item.Err = fmt.Errorf("%s: %w", name, err)
	} else {
		item.Instance = in
	}
	return item
}

// readGraph decodes a JSON task DAG from the given file.
func readGraph(name string) (*sched.Graph, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sched.ReadGraphJSON(f)
}

// readInstance decodes a JSON instance from the given file, or from
// stdin when the path is empty.
func readInstance(inPath string) (*sched.Instance, error) {
	var r io.Reader = os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return sched.ReadInstanceJSON(r)
}

func run(inPath, alg string, delta float64, tieName string, budget int64, showGantt bool, width int) error {
	in, err := readInstance(inPath)
	if err != nil {
		return err
	}

	var tie sched.TieBreak
	switch tieName {
	case "id":
		tie = sched.TieByID
	case "spt":
		tie = sched.TieSPT
	case "lpt":
		tie = sched.TieLPT
	case "blevel":
		tie = sched.TieBottomLevel
	default:
		return fmt.Errorf("unknown tie-break %q", tieName)
	}

	rec := sched.BoundsForInstance(in)
	fmt.Printf("instance: n=%d m=%d  lower bounds: Cmax >= %d, Mmax >= %d\n\n", in.N(), in.M, rec.CmaxLB, rec.MmaxLB)

	var a sched.Assignment
	switch alg {
	case "sbo":
		res, err := sched.SBOWithLPT(in, delta)
		if err != nil {
			return err
		}
		a = res.Assignment
		rc, rm := sched.SBORatio(delta, sched.LPT{}.Ratio(in.M), sched.LPT{}.Ratio(in.M))
		fmt.Printf("SBO(delta=%g, LPT): guarantee (%.3f, %.3f)\n", delta, rc, rm)
	case "rls":
		res, err := sched.RLSIndependent(in, delta, tie)
		if err != nil {
			return err
		}
		a = res.Schedule.Assignment()
		fmt.Printf("RLS(delta=%g, tie=%s): Mmax guarantee %.3f*LB, Cmax guarantee %.3f\n",
			delta, tie, delta, sched.RLSCmaxRatio(delta, in.M))
	case "lpt":
		a = sched.LPT{}.Assign(in.P(), in.M)
		fmt.Printf("LPT on processing times only (memory unmanaged)\n")
	case "ls":
		a = sched.ListScheduling{}.Assign(in.P(), in.M)
		fmt.Printf("List scheduling on processing times only (memory unmanaged)\n")
	case "constrained":
		if budget < 0 {
			return fmt.Errorf("-alg constrained needs -budget")
		}
		res, v, err := sched.ConstrainedIndependent(in, budget)
		if err != nil {
			return err
		}
		a = res
		fmt.Printf("constrained solve: budget=%d achieved (Cmax=%d, Mmax=%d)\n", budget, v.Cmax, v.Mmax)
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}

	fmt.Printf("objectives: Cmax=%d (ratio %.4f vs LB)  Mmax=%d (ratio %.4f vs LB)\n\n",
		in.Cmax(a), float64(in.Cmax(a))/float64(rec.CmaxLB),
		in.Mmax(a), float64(in.Mmax(a))/float64(rec.MmaxLB))
	if showGantt {
		return sched.RenderAssignment(os.Stdout, in, a, sched.GanttOptions{Width: width, ShowMemory: true})
	}
	return nil
}

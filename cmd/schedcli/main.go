// Command schedcli schedules a JSON instance with a chosen algorithm
// and prints the objectives and an ASCII Gantt chart.
//
//	schedcli -alg sbo -delta 1 < instance.json
//	schedcli -in instance.json -alg rls -delta 3 -tie spt
//	schedcli -in instance.json -alg constrained -budget 120
//
// The sweep subcommand runs the parallel δ-sweep engine and prints the
// approximate Pareto front with per-point provenance:
//
//	schedcli sweep -in instance.json -dmin 0.25 -dmax 8 -points 32
//
// The instance format is the one produced by geninstance:
//
//	{"m": 2, "tasks": [{"id":0,"p":4,"s":1}, ...]}
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	sched "storagesched"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		if err := runSweep(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "schedcli: %v\n", err)
			os.Exit(1)
		}
		return
	}

	inPath := flag.String("in", "", "instance JSON file (default: stdin)")
	alg := flag.String("alg", "sbo", "algorithm: sbo | rls | lpt | ls | constrained")
	delta := flag.Float64("delta", 1.0, "SBO/RLS parameter delta")
	tieName := flag.String("tie", "spt", "RLS tie-break: id | spt | lpt | blevel")
	budget := flag.Int64("budget", -1, "memory budget for -alg constrained")
	showGantt := flag.Bool("gantt", true, "render an ASCII Gantt chart")
	width := flag.Int("width", 60, "Gantt width in columns")
	flag.Parse()

	if err := run(*inPath, *alg, *delta, *tieName, *budget, *showGantt, *width); err != nil {
		fmt.Fprintf(os.Stderr, "schedcli: %v\n", err)
		os.Exit(1)
	}
}

// runSweep implements the sweep subcommand.
func runSweep(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	inPath := fs.String("in", "", "instance JSON file (default: stdin)")
	dmin := fs.Float64("dmin", 0.25, "smallest delta of the grid")
	dmax := fs.Float64("dmax", 8, "largest delta of the grid")
	points := fs.Int("points", 32, "number of grid points")
	gridKind := fs.String("grid", "geo", "grid spacing: geo | lin")
	workers := fs.Int("workers", 0, "worker count (0 = one per CPU)")
	noSBO := fs.Bool("no-sbo", false, "skip the SBO family")
	noRLS := fs.Bool("no-rls", false, "skip the RLS family")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !(*dmin > 0) || *dmax < *dmin || *points < 1 {
		return fmt.Errorf("invalid grid: dmin=%g dmax=%g points=%d", *dmin, *dmax, *points)
	}
	var grid []float64
	switch *gridKind {
	case "geo":
		grid = sched.SweepGeometricGrid(*dmin, *dmax, *points)
	case "lin":
		grid = sched.SweepLinearGrid(*dmin, *dmax, *points)
	default:
		return fmt.Errorf("unknown grid spacing %q", *gridKind)
	}

	in, err := readInstance(*inPath)
	if err != nil {
		return err
	}

	res, err := sched.Sweep(context.Background(), in, sched.SweepConfig{
		Deltas:  grid,
		Workers: *workers,
		SkipSBO: *noSBO,
		SkipRLS: *noRLS,
	})
	if err != nil {
		return err
	}

	failed := 0
	for _, run := range res.Runs {
		if run.Err != nil {
			failed++
		}
	}
	fmt.Fprintf(w, "instance: n=%d m=%d  lower bounds: Cmax >= %d, Mmax >= %d\n",
		in.N(), in.M, res.Bounds.CmaxLB, res.Bounds.MmaxLB)
	fmt.Fprintf(w, "sweep: %d runs over %d grid points (%d failed) -> %d front points\n\n",
		len(res.Runs), *points, failed, len(res.Front))
	fmt.Fprintf(w, "%-10s %-10s %-9s %-9s %s\n", "Cmax", "Mmax", "Cmax/LB", "Mmax/LB", "witness")
	for _, p := range res.Front {
		fmt.Fprintf(w, "%-10d %-10d %-9.4f %-9.4f %s\n",
			p.Value.Cmax, p.Value.Mmax,
			float64(p.Value.Cmax)/float64(res.Bounds.CmaxLB),
			float64(p.Value.Mmax)/float64(res.Bounds.MmaxLB),
			res.Runs[p.RunIndex].Label())
	}
	return nil
}

// readInstance decodes a JSON instance from the given file, or from
// stdin when the path is empty.
func readInstance(inPath string) (*sched.Instance, error) {
	var r io.Reader = os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return sched.ReadInstanceJSON(r)
}

func run(inPath, alg string, delta float64, tieName string, budget int64, showGantt bool, width int) error {
	in, err := readInstance(inPath)
	if err != nil {
		return err
	}

	var tie sched.TieBreak
	switch tieName {
	case "id":
		tie = sched.TieByID
	case "spt":
		tie = sched.TieSPT
	case "lpt":
		tie = sched.TieLPT
	case "blevel":
		tie = sched.TieBottomLevel
	default:
		return fmt.Errorf("unknown tie-break %q", tieName)
	}

	rec := sched.BoundsForInstance(in)
	fmt.Printf("instance: n=%d m=%d  lower bounds: Cmax >= %d, Mmax >= %d\n\n", in.N(), in.M, rec.CmaxLB, rec.MmaxLB)

	var a sched.Assignment
	switch alg {
	case "sbo":
		res, err := sched.SBOWithLPT(in, delta)
		if err != nil {
			return err
		}
		a = res.Assignment
		rc, rm := sched.SBORatio(delta, sched.LPT{}.Ratio(in.M), sched.LPT{}.Ratio(in.M))
		fmt.Printf("SBO(delta=%g, LPT): guarantee (%.3f, %.3f)\n", delta, rc, rm)
	case "rls":
		res, err := sched.RLSIndependent(in, delta, tie)
		if err != nil {
			return err
		}
		a = res.Schedule.Assignment()
		fmt.Printf("RLS(delta=%g, tie=%s): Mmax guarantee %.3f*LB, Cmax guarantee %.3f\n",
			delta, tie, delta, sched.RLSCmaxRatio(delta, in.M))
	case "lpt":
		a = sched.LPT{}.Assign(in.P(), in.M)
		fmt.Printf("LPT on processing times only (memory unmanaged)\n")
	case "ls":
		a = sched.ListScheduling{}.Assign(in.P(), in.M)
		fmt.Printf("List scheduling on processing times only (memory unmanaged)\n")
	case "constrained":
		if budget < 0 {
			return fmt.Errorf("-alg constrained needs -budget")
		}
		res, v, err := sched.ConstrainedIndependent(in, budget)
		if err != nil {
			return err
		}
		a = res
		fmt.Printf("constrained solve: budget=%d achieved (Cmax=%d, Mmax=%d)\n", budget, v.Cmax, v.Mmax)
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}

	fmt.Printf("objectives: Cmax=%d (ratio %.4f vs LB)  Mmax=%d (ratio %.4f vs LB)\n\n",
		in.Cmax(a), float64(in.Cmax(a))/float64(rec.CmaxLB),
		in.Mmax(a), float64(in.Mmax(a))/float64(rec.MmaxLB))
	if showGantt {
		return sched.RenderAssignment(os.Stdout, in, a, sched.GanttOptions{Width: width, ShowMemory: true})
	}
	return nil
}

package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestCacheRejectsBadInputs(t *testing.T) {
	if err := runCache(nil, os.Stdout); err == nil {
		t.Error("missing verb accepted")
	}
	if err := runCache([]string{"bogus"}, os.Stdout); err == nil {
		t.Error("unknown verb accepted")
	}
	for _, verb := range []string{"stats", "gc", "verify"} {
		if err := runCache([]string{verb}, os.Stdout); err == nil {
			t.Errorf("%s without -dir accepted", verb)
		}
	}
}

// captureStderr redirects os.Stderr around fn and returns what was
// written (the cache summary and shard summaries go there, keeping
// stdout byte-deterministic).
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	defer func() {
		os.Stderr = old
	}()
	fn()
	w.Close()
	os.Stderr = old
	return <-done
}

// The acceptance scenario: a cache directory accumulating sweeps,
// stale put-*.tmp orphans from a crashed writer and one corrupted
// entry. verify deletes exactly the garbage entry, gc collects the
// orphans and brings the tier under the size cap, and a warm sweep
// over the survivors still hits — with output byte-identical to the
// cold run.
func TestCacheLifecycleAcceptance(t *testing.T) {
	dir := mixedDir(t, false)
	cacheDir := filepath.Join(t.TempDir(), "fronts")

	cold, err := sweepDir(t, dir, "-cache-dir", cacheDir)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.json"))
	if err != nil || len(entries) < 2 {
		t.Fatalf("want >= 2 cache entries, got %d (err=%v)", len(entries), err)
	}

	// A crashed writer's leavings and one rotten entry.
	stale := filepath.Join(cacheDir, "put-crashed.tmp")
	if err := os.WriteFile(stale, []byte("torn"), 0o600); err != nil {
		t.Fatal(err)
	}
	long := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, long, long); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[0], []byte("not a cached front"), 0o644); err != nil {
		t.Fatal(err)
	}

	var stats strings.Builder
	if err := runCache([]string{"stats", "-dir", cacheDir}, &stats); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if want := fmt.Sprintf("entries: %d\n", len(entries)); !strings.Contains(stats.String(), want) {
		t.Errorf("stats output missing %q:\n%s", want, stats.String())
	}

	var verify strings.Builder
	if err := runCache([]string{"verify", "-dir", cacheDir}, &verify); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !strings.Contains(verify.String(), "removed 1 garbage entries") {
		t.Errorf("verify did not remove exactly the corrupted entry:\n%s", verify.String())
	}
	if _, err := os.Stat(entries[0]); err == nil {
		t.Error("corrupted entry still present after verify")
	}

	var gc strings.Builder
	if err := runCache([]string{"gc", "-dir", cacheDir, "-max-bytes", "1"}, &gc); err != nil {
		t.Fatalf("gc: %v", err)
	}
	if !strings.Contains(gc.String(), "removed 1 orphaned tmp files") {
		t.Errorf("gc did not collect the stale tmp:\n%s", gc.String())
	}
	if _, err := os.Stat(stale); err == nil {
		t.Error("stale tmp still present after gc")
	}
	if !strings.Contains(gc.String(), "live: 0 entries (0 bytes)") {
		t.Errorf("a 1-byte cap should evict every entry:\n%s", gc.String())
	}

	// The golden byte-equality contract: gc evicted everything, so the
	// next run recomputes — and must still emit the cold bytes.
	rebuilt, err := sweepDir(t, dir, "-cache-dir", cacheDir)
	if err != nil {
		t.Fatalf("rebuilt: %v", err)
	}
	if rebuilt != cold {
		t.Errorf("output differs after gc evicted the cache:\ngot:\n%s\nwant:\n%s", rebuilt, cold)
	}

	// A generous cap keeps everything; the warm run hits every entry.
	var gc2 strings.Builder
	if err := runCache([]string{"gc", "-dir", cacheDir, "-max-bytes", "100000000"}, &gc2); err != nil {
		t.Fatalf("gc2: %v", err)
	}
	if !strings.Contains(gc2.String(), "evicted 0 by age, 0 by size") {
		t.Errorf("generous cap evicted entries:\n%s", gc2.String())
	}
	var warm string
	stderr := captureStderr(t, func() {
		warm, err = sweepDir(t, dir, "-cache-dir", cacheDir)
	})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if warm != cold {
		t.Error("warm output differs from cold after a non-evicting gc")
	}
	if !strings.Contains(stderr, "cache") || strings.Contains(stderr, "cache 0 hits") {
		t.Errorf("warm run after non-evicting gc reported no hits:\n%s", stderr)
	}
}

// gc with an age cap evicts by mtime, oldest first, without touching
// fresh entries — driven through the CLI flags.
func TestCacheGCMaxAgeFlag(t *testing.T) {
	dir := mixedDir(t, false)
	cacheDir := filepath.Join(t.TempDir(), "fronts")
	if _, err := sweepDir(t, dir, "-cache-dir", cacheDir); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.json"))
	if err != nil || len(entries) < 2 {
		t.Fatalf("want >= 2 entries, got %d", len(entries))
	}
	old := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(entries[0], old, old); err != nil {
		t.Fatal(err)
	}
	var gc strings.Builder
	if err := runCache([]string{"gc", "-dir", cacheDir, "-max-age", "24h"}, &gc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gc.String(), "evicted 1 by age") {
		t.Errorf("age cap evicted the wrong count:\n%s", gc.String())
	}
	if _, err := os.Stat(entries[0]); err == nil {
		t.Error("aged entry survived -max-age")
	}
	if _, err := os.Stat(entries[1]); err != nil {
		t.Error("fresh entry evicted by -max-age")
	}
}

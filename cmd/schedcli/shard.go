package main

// The shard subcommand is the cluster-scale face of the sweep engine:
//
//	schedcli shard plan  -in instances/ -shards 4 -policy hash -out-dir plans/
//	schedcli shard merge -plan plans/plan.json -out fronts.jsonl s0.jsonl s1.jsonl s2.jsonl s3.jsonl
//	schedcli shard exec  -in instances/ -shards 4 -out fronts.jsonl
//
// plan deterministically places every *.json item of a directory onto
// K shards (round-robin or hash-affine — the latter routes identical
// items to the same shard, keeping shard-local caches hot) and writes
// plan.json plus one shard-<k>.list file per shard. Each list is a
// valid `sweepbatch -in` input, so the shards can run as independent
// `schedcli sweepbatch` processes on any machines. merge interleaves
// the per-shard JSONL outputs back into the plan's input order,
// relabelling each line's local index with its global one — the result
// is byte-identical to an unsharded sweep of the directory. exec is
// the one-machine convenience that does all three steps, driving one
// sweepbatch subprocess per shard.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	sched "storagesched"
	"storagesched/internal/serve"
	"storagesched/internal/shard"
)

// tailWriter retains the last max bytes written through it — enough of
// a shard subprocess's stderr to attach as a hint when it fails.
type tailWriter struct {
	mu  sync.Mutex
	buf []byte
	max int
}

func (t *tailWriter) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > t.max {
		t.buf = t.buf[len(t.buf)-t.max:]
	}
	return len(p), nil
}

// stderrHint renders the last non-empty stderr line as an error
// suffix, or nothing when the subprocess was silent.
func stderrHint(t *tailWriter) string {
	t.mu.Lock()
	tail := strings.TrimSpace(string(t.buf))
	t.mu.Unlock()
	if tail == "" {
		return ""
	}
	if i := strings.LastIndexByte(tail, '\n'); i >= 0 {
		tail = strings.TrimSpace(tail[i+1:])
	}
	return " (stderr: " + tail + ")"
}

// countOutputLines counts the non-empty lines of a shard's JSONL
// output — zero with items planned means the subprocess died before
// writing anything, a shard-level failure rather than item failures.
func countOutputLines(path string) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		// The subprocess died before creating its output at all.
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	n := 0
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) > 0 {
			n++
		}
	}
	return n, sc.Err()
}

func runShard(args []string, w io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("shard: need a verb: plan | merge | exec")
	}
	switch args[0] {
	case "plan":
		return runShardPlan(args[1:], w)
	case "merge":
		return runShardMerge(args[1:], w)
	case "exec":
		return runShardExec(args[1:], w)
	}
	return fmt.Errorf("shard: unknown verb %q (want plan | merge | exec)", args[0])
}

// planFile is the on-disk shard plan: enough to reconstruct the
// placement and to relabel shard-local output indexes to global ones.
type planFile struct {
	Shards int            `json:"shards"`
	Policy string         `json:"policy"`
	Items  []planItemJSON `json:"items"`
}

type planItemJSON struct {
	Index  int    `json:"index"`
	Shard  int    `json:"shard"`
	Source string `json:"source"`
}

// planDirectory builds the deterministic plan of a directory's *.json
// items (the same sorted set `sweepbatch -in dir` sweeps).
func planDirectory(inDir string, shards int, policyName string) (*shard.Plan, []string, error) {
	policy, err := sched.ParseShardPolicy(policyName)
	if err != nil {
		return nil, nil, err
	}
	info, err := os.Stat(inDir)
	if err != nil {
		return nil, nil, err
	}
	if !info.IsDir() {
		return nil, nil, fmt.Errorf("shard plan: -in must be a directory, got %s", inDir)
	}
	names, err := filepath.Glob(filepath.Join(inDir, "*.json"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("no *.json instances in %s", inDir)
	}
	items := make([]sched.BatchItem, len(names))
	for i, name := range names {
		items[i] = fileItem(name)
	}
	plan, err := sched.NewShardPlan(shards, policy, items)
	if err != nil {
		return nil, nil, err
	}
	return plan, names, nil
}

// writePlan materializes plan.json and the per-shard .list files under
// outDir and returns the list paths.
func writePlan(plan *shard.Plan, names []string, outDir string) (planPath string, listPaths []string, err error) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return "", nil, err
	}
	pf := planFile{Shards: plan.K, Policy: plan.Policy.String()}
	for i, s := range plan.Shards {
		pf.Items = append(pf.Items, planItemJSON{Index: i, Shard: s, Source: names[i]})
	}
	planPath = filepath.Join(outDir, "plan.json")
	data, err := json.MarshalIndent(pf, "", "  ")
	if err != nil {
		return "", nil, err
	}
	if err := os.WriteFile(planPath, append(data, '\n'), 0o644); err != nil {
		return "", nil, err
	}
	for s, local := range plan.Locals() {
		var buf []byte
		for _, g := range local {
			buf = append(buf, names[g]...)
			buf = append(buf, '\n')
		}
		path := filepath.Join(outDir, "shard-"+strconv.Itoa(s)+".list")
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			return "", nil, err
		}
		listPaths = append(listPaths, path)
	}
	return planPath, listPaths, nil
}

// runShardPlan implements `schedcli shard plan`.
func runShardPlan(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("shard plan", flag.ContinueOnError)
	inDir := fs.String("in", "", "directory of *.json instances/graphs to place")
	shards := fs.Int("shards", 2, "number of shards")
	policy := fs.String("policy", "hash", "placement policy: rr | hash")
	outDir := fs.String("out-dir", ".", "directory for plan.json and shard-<k>.list files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inDir == "" {
		return fmt.Errorf("shard plan: -in is required")
	}
	plan, names, err := planDirectory(*inDir, *shards, *policy)
	if err != nil {
		return err
	}
	planPath, listPaths, err := writePlan(plan, names, *outDir)
	if err != nil {
		return err
	}
	counts := plan.Counts()
	fmt.Fprintf(w, "planned %d items onto %d shards (%s): %v\n", len(names), plan.K, plan.Policy, counts)
	fmt.Fprintf(w, "plan: %s\n", planPath)
	for s, p := range listPaths {
		fmt.Fprintf(w, "shard %d: %s (%d items)\n", s, p, counts[s])
	}
	return nil
}

// readPlan loads a plan.json back into a shard.Plan plus the source
// paths in global order.
func readPlan(path string) (*shard.Plan, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var pf planFile
	if err := json.Unmarshal(data, &pf); err != nil {
		return nil, nil, fmt.Errorf("shard: decoding plan %s: %w", path, err)
	}
	if pf.Shards < 1 {
		return nil, nil, fmt.Errorf("shard: plan %s has %d shards", path, pf.Shards)
	}
	policy, err := sched.ParseShardPolicy(pf.Policy)
	if err != nil {
		return nil, nil, err
	}
	plan := &shard.Plan{K: pf.Shards, Policy: policy, Shards: make([]int, len(pf.Items))}
	names := make([]string, len(pf.Items))
	for i, it := range pf.Items {
		if it.Index != i {
			return nil, nil, fmt.Errorf("shard: plan %s item %d has index %d (must be dense and ordered)", path, i, it.Index)
		}
		plan.Shards[i] = it.Shard
		names[i] = it.Source
	}
	if err := plan.Validate(); err != nil {
		return nil, nil, fmt.Errorf("shard: plan %s: %w", path, err)
	}
	return plan, names, nil
}

// mergeOutputs interleaves the shard JSONL files back into global
// order, relabelling local indexes, and reports how many merged lines
// carry per-item errors.
func mergeOutputs(plan *shard.Plan, shardFiles []string, out io.Writer) (failed int, err error) {
	readers := make([]io.Reader, len(shardFiles))
	closers := make([]io.Closer, 0, len(shardFiles))
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	for i, name := range shardFiles {
		f, err := os.Open(name)
		if err != nil {
			return 0, err
		}
		readers[i] = f
		closers = append(closers, f)
	}
	err = shard.MergeJSONL(out, plan, readers, func(line []byte, g int) ([]byte, error) {
		var fl serve.FrontLine
		if err := json.Unmarshal(line, &fl); err != nil {
			return nil, err
		}
		fl.Index = g
		if fl.Error != "" {
			failed++
		}
		// Re-encode with the same struct and marshaller sweepbatch
		// uses, so the merged line is byte-identical to the line an
		// unsharded run would have written.
		return json.Marshal(fl)
	})
	return failed, err
}

// runShardMerge implements `schedcli shard merge`.
func runShardMerge(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("shard merge", flag.ContinueOnError)
	planPath := fs.String("plan", "", "plan.json written by shard plan")
	outPath := fs.String("out", "", "merged JSONL output (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *planPath == "" {
		return fmt.Errorf("shard merge: -plan is required")
	}
	plan, _, err := readPlan(*planPath)
	if err != nil {
		return err
	}
	shardFiles := fs.Args()
	if len(shardFiles) != plan.K {
		return fmt.Errorf("shard merge: %d shard outputs for %d shards (pass one JSONL per shard, in shard order)", len(shardFiles), plan.K)
	}
	out := w
	var outFile *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		outFile = f
		out = f
	}
	failed, err := mergeOutputs(plan, shardFiles, out)
	if outFile != nil {
		if cerr := outFile.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("shard merge: %d of %d items failed (see the error lines in the output)", failed, len(plan.Shards))
	}
	return nil
}

// runShardExec implements `schedcli shard exec`: plan a directory,
// drive one `sweepbatch` subprocess per shard concurrently, then merge
// — the single-machine rehearsal of the cluster flow.
func runShardExec(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("shard exec", flag.ContinueOnError)
	inDir := fs.String("in", "", "directory of *.json instances/graphs")
	shards := fs.Int("shards", 2, "number of shards / subprocesses")
	policy := fs.String("policy", "hash", "placement policy: rr | hash")
	outPath := fs.String("out", "", "merged JSONL output (default: stdout)")
	bin := fs.String("bin", "", "schedcli binary to drive (default: this executable)")
	workDir := fs.String("work-dir", "", "directory for plans and per-shard outputs (default: a temp dir, removed afterwards)")
	dmin := fs.Float64("dmin", 0.25, "smallest delta of the grid")
	dmax := fs.Float64("dmax", 8, "largest delta of the grid")
	points := fs.Int("points", 32, "number of grid points")
	gridKind := fs.String("grid", "geo", "grid spacing: geo | lin")
	workers := fs.Int("workers", 0, "pool size per shard (0 = one per CPU)")
	noSBO := fs.Bool("no-sbo", false, "skip the SBO family")
	noRLS := fs.Bool("no-rls", false, "skip the RLS family")
	cacheDir := fs.String("cache-dir", "", "front cache directory shared by the shard subprocesses")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inDir == "" {
		return fmt.Errorf("shard exec: -in is required")
	}
	if *bin == "" {
		self, err := os.Executable()
		if err != nil {
			return fmt.Errorf("shard exec: cannot locate this executable (pass -bin): %w", err)
		}
		*bin = self
	}
	dir := *workDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "schedcli-shard-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	plan, names, err := planDirectory(*inDir, *shards, *policy)
	if err != nil {
		return err
	}
	_, listPaths, err := writePlan(plan, names, dir)
	if err != nil {
		return err
	}

	// One sweepbatch subprocess per shard, concurrently. Stderr passes
	// through (with a bounded tail retained per shard, for failure
	// hints); an item-failure exit (the subprocess still wrote its
	// error lines) does not abort the merge, matching unsharded
	// behavior where bad items fail alone.
	shardFiles := make([]string, plan.K)
	cmdErrs := make([]error, plan.K)
	elapsed := make([]time.Duration, plan.K)
	tails := make([]*tailWriter, plan.K)
	var wg sync.WaitGroup
	for s := 0; s < plan.K; s++ {
		shardFiles[s] = filepath.Join(dir, "shard-"+strconv.Itoa(s)+".jsonl")
		sargs := []string{"sweepbatch",
			"-in", listPaths[s],
			"-out", shardFiles[s],
			"-dmin", strconv.FormatFloat(*dmin, 'g', -1, 64),
			"-dmax", strconv.FormatFloat(*dmax, 'g', -1, 64),
			"-points", strconv.Itoa(*points),
			"-grid", *gridKind,
			"-workers", strconv.Itoa(*workers),
		}
		if *noSBO {
			sargs = append(sargs, "-no-sbo")
		}
		if *noRLS {
			sargs = append(sargs, "-no-rls")
		}
		if *cacheDir != "" {
			sargs = append(sargs, "-cache-dir", *cacheDir)
		}
		tails[s] = &tailWriter{max: 4096}
		wg.Add(1)
		go func(s int, sargs []string) {
			defer wg.Done()
			cmd := exec.Command(*bin, sargs...)
			cmd.Stderr = io.MultiWriter(os.Stderr, tails[s])
			start := time.Now()
			cmdErrs[s] = cmd.Run()
			elapsed[s] = time.Since(start)
		}(s, sargs)
	}
	wg.Wait()

	// Classify each shard's exit before merging. A nonzero exit whose
	// output still covers the shard's items means per-item failures —
	// those ride in the output lines and surface after the merge, like
	// an unsharded batch. A signal kill or an exit that wrote nothing
	// is a shard-level failure: merging would only report "output ended
	// before item N" and mask the real cause, so report the status and
	// the stderr tail instead. Either way the per-shard summary line —
	// items, outcome, wall clock — goes to stderr so the merged JSONL
	// on stdout stays byte-identical to an unsharded sweep.
	counts := plan.Counts()
	for s, err := range cmdErrs {
		if err == nil {
			fmt.Fprintf(os.Stderr, "shard %d: %d items ok in %s\n", s, counts[s], elapsed[s].Round(time.Millisecond))
			continue
		}
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) {
			return fmt.Errorf("shard exec: shard %d: %w", s, err)
		}
		if exitErr.ExitCode() == -1 {
			return fmt.Errorf("shard exec: shard %d killed by a signal (%v)%s", s, exitErr, stderrHint(tails[s]))
		}
		if n, cerr := countOutputLines(shardFiles[s]); cerr == nil && n == 0 && counts[s] > 0 {
			return fmt.Errorf("shard exec: shard %d wrote no output (exit status %d)%s", s, exitErr.ExitCode(), stderrHint(tails[s]))
		}
		fmt.Fprintf(os.Stderr, "shard %d: %d items, exit status %d (per-item failures ride in the output) in %s\n",
			s, counts[s], exitErr.ExitCode(), elapsed[s].Round(time.Millisecond))
	}

	out := w
	var outFile *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		outFile = f
		out = f
	}
	failed, err := mergeOutputs(plan, shardFiles, out)
	if outFile != nil {
		if cerr := outFile.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("shard exec: %d of %d items failed (see the error lines in the output)", failed, len(plan.Shards))
	}
	return nil
}

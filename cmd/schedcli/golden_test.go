package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./cmd/schedcli -run TestSweepBatchGolden -update
var update = flag.Bool("update", false, "rewrite the sweepbatch golden files")

// The sweepbatch JSONL output is a contract: shard merge interleaves
// these lines byte-wise, and the CI smoke job diffs whole files. The
// golden tests pin the exact bytes for the smoke testdata — with and
// without adaptive refinement — so any drift in field order, number
// formatting or front assembly fails loudly here instead of silently
// breaking the merge contract downstream.
func TestSweepBatchGolden(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"sweepbatch.jsonl", []string{
			"-in", filepath.Join("testdata", "smoke"),
			"-dmin", "0.5", "-dmax", "8", "-points", "6",
		}},
		{"sweepbatch_refine.jsonl", []string{
			"-in", filepath.Join("testdata", "smoke"),
			"-dmin", "0.5", "-dmax", "8", "-points", "6",
			"-refine", "-refine-gap", "0.05", "-refine-max-points", "6",
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := runSweepBatch(tc.args, strings.NewReader(""), &buf); err != nil {
				t.Fatalf("sweepbatch %v: %v", tc.args, err)
			}
			golden := filepath.Join("testdata", "golden", tc.name)
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("sweepbatch output drifted from %s\ngot:\n%swant:\n%s", golden, buf.Bytes(), want)
			}
		})
	}
}

// The refined golden must not degenerate into the plain one: the smoke
// fronts have flagged gaps at these settings, so refinement adds runs.
func TestSweepBatchGoldenRefineDiffers(t *testing.T) {
	plain, err := os.ReadFile(filepath.Join("testdata", "golden", "sweepbatch.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	refined, err := os.ReadFile(filepath.Join("testdata", "golden", "sweepbatch_refine.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(plain, refined) {
		t.Error("refined golden identical to the plain one; refinement never fired on the smoke data")
	}
}

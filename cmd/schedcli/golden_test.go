package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./cmd/schedcli -run TestSweepBatchGolden -update
var update = flag.Bool("update", false, "rewrite the sweepbatch golden files")

// The sweepbatch JSONL output is a contract: shard merge interleaves
// these lines byte-wise, and the CI smoke job diffs whole files. The
// golden tests pin the exact bytes for the smoke testdata — with and
// without adaptive refinement — so any drift in field order, number
// formatting or front assembly fails loudly here instead of silently
// breaking the merge contract downstream.
func TestSweepBatchGolden(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"sweepbatch.jsonl", []string{
			"-in", filepath.Join("testdata", "smoke"),
			"-dmin", "0.5", "-dmax", "8", "-points", "6",
		}},
		{"sweepbatch_refine.jsonl", []string{
			"-in", filepath.Join("testdata", "smoke"),
			"-dmin", "0.5", "-dmax", "8", "-points", "6",
			"-refine", "-refine-gap", "0.05", "-refine-max-points", "6",
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := runSweepBatch(tc.args, strings.NewReader(""), &buf); err != nil {
				t.Fatalf("sweepbatch %v: %v", tc.args, err)
			}
			golden := filepath.Join("testdata", "golden", tc.name)
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("sweepbatch output drifted from %s\ngot:\n%swant:\n%s", golden, buf.Bytes(), want)
			}
		})
	}
}

// TestSweepBatchGoldenWithStats: -stats must leave the JSONL on
// stdout byte-identical to the golden (instrumentation never perturbs
// the output contract) while printing the registry snapshot — the
// same families a schedd /metrics scrape exposes — to stderr.
func TestSweepBatchGoldenWithStats(t *testing.T) {
	oldStderr := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w

	var buf bytes.Buffer
	runErr := runSweepBatch([]string{
		"-in", filepath.Join("testdata", "smoke"),
		"-dmin", "0.5", "-dmax", "8", "-points", "6",
		"-stats",
	}, strings.NewReader(""), &buf)
	w.Close()
	os.Stderr = oldStderr
	captured, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("sweepbatch -stats: %v", runErr)
	}

	want, err := os.ReadFile(filepath.Join("testdata", "golden", "sweepbatch.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-stats perturbed the JSONL output\ngot:\n%swant:\n%s", buf.Bytes(), want)
	}
	text := string(captured)
	for _, family := range []string{
		"# TYPE sched_sweeps_completed_total counter",
		"sched_sweeps_completed_total 1",
		"sched_sweep_items_total 4",
		"sched_engine_jobs_total",
		"sched_sweep_seconds_count 1",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("-stats output missing %q:\n%s", family, text)
		}
	}
}

// The refined golden must not degenerate into the plain one: the smoke
// fronts have flagged gaps at these settings, so refinement adds runs.
func TestSweepBatchGoldenRefineDiffers(t *testing.T) {
	plain, err := os.ReadFile(filepath.Join("testdata", "golden", "sweepbatch.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	refined, err := os.ReadFile(filepath.Join("testdata", "golden", "sweepbatch_refine.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(plain, refined) {
		t.Error("refined golden identical to the plain one; refinement never fired on the smoke data")
	}
}

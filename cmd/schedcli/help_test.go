package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// sweepBatchHelp captures the sweepbatch -h usage text (the FlagSet
// prints its defaults to stderr under ContinueOnError).
func sweepBatchHelp(t *testing.T) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	runErr := runSweepBatch([]string{"-h"}, strings.NewReader(""), io.Discard)
	w.Close()
	os.Stderr = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr == nil {
		t.Fatal("sweepbatch -h returned nil, want flag.ErrHelp")
	}
	return string(out)
}

// TestSweepBatchHelpCoversEveryFlag: the -h output must document every
// flag the subcommand registers — a new flag without a usage string,
// or a renamed flag leaving its old name in the docs, fails here.
func TestSweepBatchHelpCoversEveryFlag(t *testing.T) {
	help := sweepBatchHelp(t)
	for _, name := range []string{
		"-in", "-out", "-dmin", "-dmax", "-points", "-grid",
		"-workers", "-pending", "-no-sbo", "-no-rls",
		"-cache-dir", "-cache-mem", "-shards", "-shard-policy",
		"-refine", "-refine-gap", "-refine-max-points", "-stats",
	} {
		if !strings.Contains(help, "\n  "+name+" ") && !strings.Contains(help, "\n  "+name+"\n") {
			t.Errorf("sweepbatch -h does not document %s", name)
		}
	}
}

// TestSweepBatchHelpTellsTheTruth: spot-check the usage strings that
// have drifted before — -in must mention task DAGs and the stdin
// stream shape, and the two flags that do not compose must both say
// so.
func TestSweepBatchHelpTellsTheTruth(t *testing.T) {
	help := sweepBatchHelp(t)
	for _, want := range []string{
		"*.graph.json",                  // -in accepts DAG files
		"stream of JSON documents",      // stdin is not line-framed JSONL only
		"does not compose with -refine", // -shards
		"does not compose with -shards", // -refine
	} {
		if !strings.Contains(help, want) {
			t.Errorf("sweepbatch -h missing %q", want)
		}
	}
}

// TestReadmeDocumentsBatchFlags: every advanced sweepbatch flag the
// README promises a table row for must actually appear there.
func TestReadmeDocumentsBatchFlags(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(readme)
	for _, name := range []string{
		"-cache-dir", "-cache-mem", "-shards", "-shard-policy",
		"-refine", "-refine-gap", "-refine-max-points",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("README.md does not mention %s", name)
		}
	}
}

package main

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// mixedDir writes a directory with instances, a graph and (optionally)
// a broken file — the workload the shard smoke paths sweep.
func mixedDir(t *testing.T, withBad bool) string {
	t.Helper()
	dir := writeInstanceDir(t, 4)
	writeGraph(t, dir, "apipeline.graph.json")
	// A duplicate of inst00 under another name: hash-affine placement
	// must route it to the same shard as the original.
	src, err := os.ReadFile(filepath.Join(dir, "inst00.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "zdup00.json"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if withBad {
		if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte("{nope"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// sweepDir runs runSweepBatch over dir with the given extra flags and
// returns the raw JSONL output and error.
func sweepDir(t *testing.T, dir string, extra ...string) (string, error) {
	t.Helper()
	var buf strings.Builder
	args := append([]string{"-in", dir, "-dmin", "0.5", "-dmax", "8", "-points", "6"}, extra...)
	err := runSweepBatch(args, nil, &buf)
	return buf.String(), err
}

// The CLI acceptance criterion: -shards K output is byte-identical to
// the unsharded run for K ∈ {1, 2, 4}, under both policies, including
// per-item error lines.
func TestRunSweepBatchShardedMatchesUnsharded(t *testing.T) {
	dir := mixedDir(t, true)
	want, wantErr := sweepDir(t, dir)
	if wantErr == nil {
		t.Fatal("unsharded run with a broken file reported success")
	}
	for _, policy := range []string{"rr", "hash"} {
		for _, k := range []string{"1", "2", "4"} {
			got, gotErr := sweepDir(t, dir, "-shards", k, "-shard-policy", policy)
			if got != want {
				t.Errorf("policy=%s shards=%s: output differs from unsharded\ngot:\n%s\nwant:\n%s", policy, k, got, want)
			}
			if gotErr == nil || gotErr.Error() != wantErr.Error() {
				t.Errorf("policy=%s shards=%s: err %v, want %v", policy, k, gotErr, wantErr)
			}
		}
	}
}

func TestRunSweepBatchShardedRejectsBadPolicy(t *testing.T) {
	dir := writeInstanceDir(t, 1)
	if _, err := sweepDir(t, dir, "-shards", "2", "-shard-policy", "bogus"); err == nil {
		t.Error("bogus shard policy accepted")
	}
}

// Cold and warm cache runs are byte-identical, entries land on disk,
// and a corrupt entry heals transparently.
func TestRunSweepBatchCacheColdWarmByteIdentical(t *testing.T) {
	dir := mixedDir(t, false)
	cacheDir := filepath.Join(t.TempDir(), "fronts")

	cold, err := sweepDir(t, dir, "-cache-dir", cacheDir)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries written (err=%v)", err)
	}
	warm, err := sweepDir(t, dir, "-cache-dir", cacheDir)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if cold != warm {
		t.Errorf("cold and warm outputs differ:\n%s\nvs\n%s", cold, warm)
	}
	// Corrupt one entry; the run still matches and heals it.
	if err := os.WriteFile(entries[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	healed, err := sweepDir(t, dir, "-cache-dir", cacheDir)
	if err != nil {
		t.Fatalf("healed: %v", err)
	}
	if healed != cold {
		t.Error("output differs after entry corruption")
	}
	// Memory-only caching works too (second run within one process is
	// not observable here, but the flag path must not error).
	if _, err := sweepDir(t, dir, "-cache-mem", "64"); err != nil {
		t.Fatalf("-cache-mem: %v", err)
	}
}

// The cluster flow by hand: plan a directory, sweep each shard list as
// its own runSweepBatch call, merge — byte-identical to unsharded.
func TestShardPlanSweepMergeRoundTrip(t *testing.T) {
	dir := mixedDir(t, false)
	want, err := sweepDir(t, dir)
	if err != nil {
		t.Fatal(err)
	}

	planDir := t.TempDir()
	var planOut strings.Builder
	if err := runShard([]string{"plan", "-in", dir, "-shards", "3", "-policy", "hash", "-out-dir", planDir}, &planOut); err != nil {
		t.Fatalf("plan: %v", err)
	}
	for _, wantLine := range []string{"planned 6 items onto 3 shards", "plan.json"} {
		if !strings.Contains(planOut.String(), wantLine) {
			t.Errorf("plan output missing %q:\n%s", wantLine, planOut.String())
		}
	}

	// The duplicate instance shares a shard with its original.
	planBytes, err := os.ReadFile(filepath.Join(planDir, "plan.json"))
	if err != nil {
		t.Fatal(err)
	}
	plan := string(planBytes)
	shardOf := func(source string) string {
		t.Helper()
		i := strings.Index(plan, source)
		if i < 0 {
			t.Fatalf("plan.json lacks %s:\n%s", source, plan)
		}
		// "shard": N precedes "source" in each item object.
		head := plan[:i]
		j := strings.LastIndex(head, `"shard": `)
		return head[j+len(`"shard": `) : j+len(`"shard": `)+1]
	}
	if shardOf("inst00.json") != shardOf("zdup00.json") {
		t.Error("hash-affine plan split identical items across shards")
	}

	// Sweep each shard list separately, as subprocesses would.
	var shardFiles []string
	for s := 0; s < 3; s++ {
		list := filepath.Join(planDir, fmt.Sprintf("shard-%d.list", s))
		var buf strings.Builder
		if err := runSweepBatch([]string{"-in", list, "-dmin", "0.5", "-dmax", "8", "-points", "6"}, nil, &buf); err != nil {
			t.Fatalf("shard %d sweep: %v", s, err)
		}
		out := filepath.Join(planDir, fmt.Sprintf("shard-%d.jsonl", s))
		if err := os.WriteFile(out, []byte(buf.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		shardFiles = append(shardFiles, out)
	}

	merged := filepath.Join(planDir, "merged.jsonl")
	args := append([]string{"merge", "-plan", filepath.Join(planDir, "plan.json"), "-out", merged}, shardFiles...)
	var mergeOut strings.Builder
	if err := runShard(args, &mergeOut); err != nil {
		t.Fatalf("merge: %v", err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("merged output differs from unsharded:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// More shards than items: the empty shard's .list is a valid empty
// batch, its output is empty, and the merge still reproduces the
// unsharded sweep.
func TestShardPlanWithEmptyShard(t *testing.T) {
	dir := writeInstanceDir(t, 1)
	want, err := sweepDir(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	planDir := t.TempDir()
	if err := runShard([]string{"plan", "-in", dir, "-shards", "2", "-policy", "rr", "-out-dir", planDir}, io.Discard); err != nil {
		t.Fatalf("plan: %v", err)
	}
	var shardFiles []string
	for s := 0; s < 2; s++ {
		list := filepath.Join(planDir, fmt.Sprintf("shard-%d.list", s))
		var buf strings.Builder
		if err := runSweepBatch([]string{"-in", list, "-dmin", "0.5", "-dmax", "8", "-points", "6"}, nil, &buf); err != nil {
			t.Fatalf("shard %d sweep: %v", s, err)
		}
		out := filepath.Join(planDir, fmt.Sprintf("shard-%d.jsonl", s))
		if err := os.WriteFile(out, []byte(buf.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		shardFiles = append(shardFiles, out)
	}
	merged := filepath.Join(planDir, "merged.jsonl")
	args := append([]string{"merge", "-plan", filepath.Join(planDir, "plan.json"), "-out", merged}, shardFiles...)
	if err := runShard(args, io.Discard); err != nil {
		t.Fatalf("merge: %v", err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("merged output differs from unsharded:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestShardRejectsBadInputs(t *testing.T) {
	if err := runShard(nil, os.Stdout); err == nil {
		t.Error("missing verb accepted")
	}
	if err := runShard([]string{"bogus"}, os.Stdout); err == nil {
		t.Error("unknown verb accepted")
	}
	if err := runShard([]string{"plan"}, os.Stdout); err == nil {
		t.Error("plan without -in accepted")
	}
	if err := runShard([]string{"plan", "-in", writeInstance(t)}, os.Stdout); err == nil {
		t.Error("plan over a non-directory accepted")
	}
	if err := runShard([]string{"merge"}, os.Stdout); err == nil {
		t.Error("merge without -plan accepted")
	}
	dir := writeInstanceDir(t, 2)
	planDir := t.TempDir()
	if err := runShard([]string{"plan", "-in", dir, "-shards", "2", "-out-dir", planDir}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	// Wrong shard-output count.
	if err := runShard([]string{"merge", "-plan", filepath.Join(planDir, "plan.json")}, os.Stdout); err == nil {
		t.Error("merge with no shard outputs accepted")
	}
}

// The full subprocess flow: shard exec drives one real `schedcli
// sweepbatch` process per shard and merges. Builds the binary once
// with the local toolchain.
func TestShardExecSubprocesses(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns subprocesses")
	}
	bin := filepath.Join(t.TempDir(), "schedcli")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Skipf("cannot build schedcli binary: %v", err)
	}

	dir := mixedDir(t, false)
	want, err := sweepDir(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	merged := filepath.Join(t.TempDir(), "merged.jsonl")
	stderr := captureStderr(t, func() {
		err = runShard([]string{"exec",
			"-in", dir, "-shards", "2", "-policy", "hash",
			"-out", merged, "-bin", bin,
			"-dmin", "0.5", "-dmax", "8", "-points", "6",
		}, os.Stdout)
	})
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	// Each shard reports its item count and wall clock on stderr.
	for s := 0; s < 2; s++ {
		if !strings.Contains(stderr, fmt.Sprintf("shard %d: ", s)) || !strings.Contains(stderr, " items ok in ") {
			t.Errorf("missing per-shard summary for shard %d:\n%s", s, stderr)
		}
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("exec-merged output differs from unsharded:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// writeFakeBin materializes an executable shell script standing in for
// the schedcli binary, so exit classification is tested without a build.
func writeFakeBin(t *testing.T, script string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "fakecli")
	if err := os.WriteFile(bin, []byte("#!/bin/sh\n"+script), 0o755); err != nil {
		t.Fatal(err)
	}
	return bin
}

// The exit-classification satellite: a subprocess that dies without
// writing output is a shard-level failure reported with its exit
// status and a stderr hint — not mislabelled as per-item failures and
// not left to surface as an opaque merge error.
func TestShardExecClassifiesSilentExit(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := writeInstanceDir(t, 2)
	bin := writeFakeBin(t, `echo "boom: disk full" >&2; exit 3`)
	err := runShard([]string{"exec", "-in", dir, "-shards", "2", "-policy", "rr", "-bin", bin}, io.Discard)
	if err == nil {
		t.Fatal("silent nonzero exit reported success")
	}
	for _, want := range []string{"exit status 3", "wrote no output", "boom: disk full"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestShardExecClassifiesSignalKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := writeInstanceDir(t, 2)
	bin := writeFakeBin(t, `echo "going down" >&2; kill -KILL $$`)
	err := runShard([]string{"exec", "-in", dir, "-shards", "2", "-policy", "rr", "-bin", bin}, io.Discard)
	if err == nil {
		t.Fatal("signal-killed subprocess reported success")
	}
	for _, want := range []string{"killed by a signal", "going down"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// A nonzero exit whose output still covers the shard's items keeps the
// old behavior: the per-item error lines merge and surface afterwards.
func TestShardExecItemFailuresStillMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := writeInstanceDir(t, 2)
	// The fake bin writes one (bogus) line per planned item, then fails
	// like sweepbatch does when items failed. Parse -in/-out by position:
	// args are: sweepbatch -in LIST -out OUT ...
	bin := writeFakeBin(t, `
list=$3; out=$5
: > "$out"
while read -r src; do
  printf '{"index":0,"source":"%s","error":"injected"}\n' "$src" >> "$out"
done < "$list"
exit 1`)
	err := runShard([]string{"exec", "-in", dir, "-shards", "2", "-policy", "rr", "-bin", bin}, io.Discard)
	if err == nil {
		t.Fatal("per-item failures reported success")
	}
	if !strings.Contains(err.Error(), "2 of 2 items failed") {
		t.Errorf("error %q, want the merged per-item failure summary", err)
	}
}
